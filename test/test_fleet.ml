(* Tests for the heterogeneous fleet scheduler: compatibility routing
   with typed rejects, cost-aware vs round-robin placement, the
   superoptimizer workload, determinism, and the same discipline driven
   over Cricket RPC as a multi-device session. *)

module Cluster = Fleet.Cluster
module Session = Fleet.Session
module Device = Gpusim.Device

let check = Alcotest.check

(* The acceptance test for the best_image fix: a fat binary holding only
   sm_52 and sm_70 images must be a typed reject on an A100-only (sm_80)
   cluster. Under the pre-fix rule (any arch <= cc) the sm_70 image
   would have been selected and the module would have loaded. *)
let test_cross_major_typed_reject () =
  let cluster = Cluster.create [ Device.a100 ] in
  let data = Apps.Superopt.fatbin ~archs:[ (5, 2); (7, 0) ] () in
  (match Cluster.load_module cluster data with
  | Error Cluster.No_compatible_image -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Cluster.error_message e)
  | Ok _ -> Alcotest.fail "sm_70 image must not load on an sm_80 device");
  (* garbage bytes get the parse error, not the compatibility one *)
  match Cluster.load_module cluster "not a container" with
  | Error (Cluster.Bad_module _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Cluster.error_message e)
  | Ok _ -> Alcotest.fail "garbage module must not load"

(* A (7,5)-only fatbin on the mixed node: exactly the two T4s are
   eligible, every launch lands on one of them, and the compatibility
   backstop counter stays zero. *)
let test_only_eligible_devices_launch () =
  let cluster = Cluster.create Device.gpu_node in
  let data = Apps.Superopt.fatbin ~archs:[ (7, 5) ] () in
  match Cluster.load_module cluster data with
  | Error e -> Alcotest.failf "load: %s" (Cluster.error_message e)
  | Ok m -> (
      check (Alcotest.list Alcotest.int) "eligible = the two T4s" [ 1; 2 ]
        (Cluster.eligible m);
      match Cluster.get_function cluster m Apps.Superopt.kernel_name with
      | Error e -> Alcotest.failf "get_function: %s" (Cluster.error_message e)
      | Ok func ->
          let bufs =
            List.map
              (fun dev ->
                let mem = Gpusim.Gpu.memory (Cluster.gpu cluster dev) in
                ( dev,
                  (Gpusim.Memory.alloc mem 256, Gpusim.Memory.alloc mem 64) ))
              (Cluster.eligible m)
          in
          for i = 0 to 9 do
            let mk dev =
              let d_table, d_flags = List.assoc dev bufs in
              {
                Gpusim.Kernels.grid = { x = 1; y = 1; z = 1 };
                block = { x = 64; y = 1; z = 1 };
                shared_mem = 0;
                args =
                  [|
                    Gpusim.Kernels.Ptr d_table;
                    Gpusim.Kernels.Ptr d_flags;
                    Gpusim.Kernels.I64 (Int64.of_int (i * 64));
                    Gpusim.Kernels.I32 64l;
                    Gpusim.Kernels.I32 2l;
                  |];
              }
            in
            match Cluster.launch cluster func mk with
            | Error e -> Alcotest.failf "launch: %s" (Cluster.error_message e)
            | Ok (dev, _) ->
                check Alcotest.bool "placed on a T4" true (dev = 1 || dev = 2)
          done;
          ignore (Cluster.barrier cluster);
          check Alcotest.int "no incompatible launches" 0
            (Cluster.incompatible_launches cluster);
          check Alcotest.int "all launches accounted" 10
            (Cluster.total_launches cluster);
          List.iter
            (fun s ->
              let expected_idle =
                s.Cluster.ds_id = 0 || s.Cluster.ds_id = 3
              in
              if expected_idle then
                check Alcotest.int
                  (Printf.sprintf "device %d idle" s.Cluster.ds_id)
                  0 s.Cluster.ds_launches
              else
                check Alcotest.bool
                  (Printf.sprintf "device %d used" s.Cluster.ds_id)
                  true
                  (s.Cluster.ds_launches > 0))
            (Cluster.stats cluster))

let run_search policy spec ~max_len =
  let cluster = Cluster.create ~policy Device.gpu_node in
  match Apps.Superopt.search ~cluster ~max_len spec with
  | Error e -> Alcotest.failf "search: %s" (Cluster.error_message e)
  | Ok r -> (cluster, r)

(* The searches with known answers: the fleet discovers the shortest
   equivalent program, not merely some equivalent. *)
let test_superopt_finds_shortest () =
  let expect spec program =
    let _, r = run_search Cluster.Cost_aware spec ~max_len:3 in
    check
      (Alcotest.option (Alcotest.list Alcotest.int))
      spec.Apps.Superopt.spec_name program r.Apps.Superopt.program;
    check Alcotest.bool "evaluated candidates" true
      (r.Apps.Superopt.candidates > 0)
  in
  (* NOT;INC is two's complement: NEG. Four ROLs are a nibble swap. *)
  expect { Apps.Superopt.spec_name = "neg"; reference = [ 2; 0 ] } (Some [ 3 ]);
  expect
    { Apps.Superopt.spec_name = "swap"; reference = [ 6; 6; 6; 6 ] }
    (Some [ 7 ]);
  (* -a-2 has no length-1 equivalent; NOT;DEC is the shortest. *)
  expect
    { Apps.Superopt.spec_name = "negsub2"; reference = [ 2; 1 ] }
    (Some [ 2; 1 ]);
  (* depth-6 pipeline: nothing of length <= 3 matches *)
  let _, r =
    run_search Cluster.Cost_aware
      { Apps.Superopt.spec_name = "deep"; reference = [ 0; 6; 2; 7; 1; 5 ] }
      ~max_len:3
  in
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "deep not found below length 4" None r.Apps.Superopt.program

(* Cost-aware placement must beat round-robin on makespan for the mixed
   A100/T4/T4/P40 node: round-robin hands the slow P40 an equal share and
   it gates completion; the cost model starves it proportionally. *)
let test_cost_aware_beats_round_robin () =
  let deep =
    { Apps.Superopt.spec_name = "deep"; reference = [ 0; 6; 2; 7; 1; 5 ] }
  in
  let run policy =
    let cluster, r = run_search policy deep ~max_len:4 in
    (Cluster.makespan cluster, r)
  in
  let rr_makespan, rr = run Cluster.Round_robin in
  let cost_makespan, cost = run Cluster.Cost_aware in
  check Alcotest.bool "same search outcome" true
    (rr.Apps.Superopt.program = cost.Apps.Superopt.program
    && rr.Apps.Superopt.candidates = cost.Apps.Superopt.candidates);
  check Alcotest.bool
    (Printf.sprintf "cost %Ld < rr %Ld" cost_makespan rr_makespan)
    true
    (Int64.compare cost_makespan rr_makespan < 0)

(* Same cluster, same workload, run twice: identical merge digests and
   per-device stats — the determinism benchctl's byte-diff CI leg rests
   on. *)
let test_deterministic_digest () =
  let deep =
    { Apps.Superopt.spec_name = "deep"; reference = [ 0; 6; 2; 7; 1; 5 ] }
  in
  let run () =
    let cluster, r = run_search Cluster.Cost_aware deep ~max_len:3 in
    (Cluster.digest cluster, Cluster.stats cluster, r.Apps.Superopt.launches)
  in
  let d1, s1, l1 = run () in
  let d2, s2, l2 = run () in
  check Alcotest.int64 "digest" d1 d2;
  check Alcotest.int "launches" l1 l2;
  check Alcotest.bool "stats" true (s1 = s2)

(* The fleet discipline over real RPC: eligibility steering, per-device
   server-side accounting, lease ledger draining to zero across devices,
   and the typed set_device error. *)
let test_session_over_rpc () =
  let engine = Simnet.Engine.create () in
  let clock = Cudasim.Context.engine_clock engine in
  let server = Cricket.Server.create ~devices:Device.gpu_node ~clock () in
  let registry =
    Tenancy.Lease.create
      ~now:(fun () -> clock.Cudasim.Context.now ())
      ~ctx:(fun () -> Cricket.Server.context server)
      ()
  in
  Tenancy.Lease.install registry server;
  ignore (Tenancy.Lease.grant registry ~tenant:"t0" Tenancy.Lease.default_caps);
  let client = Cricket.Local.connect_for server ~tenant:"t0" in
  let session = Session.connect client in
  check Alcotest.int "device count over RPC" 4 (Session.device_count session);
  let data = Apps.Superopt.fatbin ~archs:[ (7, 0); (8, 0) ] () in
  match Session.load_module session data with
  | Error e -> Alcotest.failf "load: %s" (Cluster.error_message e)
  | Ok m -> (
      (* P40 is sm_61: ineligible for an sm_70+sm_80 container *)
      check (Alcotest.list Alcotest.int) "eligible" [ 0; 1; 2 ]
        (Session.eligible m);
      match Session.get_function session m Apps.Superopt.kernel_name with
      | Error e -> Alcotest.failf "get_function: %s" (Cluster.error_message e)
      | Ok func ->
          let table = Apps.Superopt.table_of_program [ 2; 0 ] in
          let bufs =
            List.map
              (fun dev ->
                Cricket.Client.set_device client dev;
                let d_table = Cricket.Client.malloc client 256 in
                let d_flags = Cricket.Client.malloc client 64 in
                Cricket.Client.memcpy_h2d client ~dst:d_table table;
                (dev, (d_table, d_flags)))
              (Session.eligible m)
          in
          for i = 0 to 7 do
            match
              Session.launch session func
                ~grid:{ Cricket.Client.x = 1; y = 1; z = 1 }
                ~block:{ Cricket.Client.x = 64; y = 1; z = 1 }
                (fun dev ->
                  let d_table, d_flags = List.assoc dev bufs in
                  [|
                    Gpusim.Kernels.Ptr (Int64.to_int d_table);
                    Gpusim.Kernels.Ptr (Int64.to_int d_flags);
                    Gpusim.Kernels.I64 (Int64.of_int (i * 8));
                    Gpusim.Kernels.I32 8l;
                    Gpusim.Kernels.I32 1l;
                  |])
            with
            | Error e -> Alcotest.failf "launch: %s" (Cluster.error_message e)
            | Ok dev ->
                check Alcotest.bool "launched on eligible device" true
                  (List.mem dev (Session.eligible m))
          done;
          Session.synchronize session;
          check Alcotest.int "session launch total" 8
            (List.fold_left (fun a (_, n) -> a + n) 0 (Session.launches session));
          check Alcotest.int "no session launches on the P40" 0
            (List.assoc 3 (Session.launches session));
          (* device 3 saw only the discovery-time property query *)
          let dev_calls = Cricket.Server.device_calls server in
          check Alcotest.bool "per-device RPC traffic on eligible devices"
            true
            (List.for_all (fun d -> List.assoc d dev_calls > 0) [ 0; 1; 2 ]);
          (* the lease ledger must account allocations per (device, ptr):
             the three devices' arenas hand out identical pointer values,
             and all of them must drain on free *)
          (match Tenancy.Lease.find registry "t0" with
          | None -> Alcotest.fail "lease missing"
          | Some lease ->
              check Alcotest.int "lease charges all devices"
                (3 * (256 + 64))
                lease.Tenancy.Lease.mem_used);
          List.iter
            (fun (dev, (d_table, d_flags)) ->
              Cricket.Client.set_device client dev;
              Cricket.Client.free client d_table;
              Cricket.Client.free client d_flags)
            bufs;
          (match Tenancy.Lease.find registry "t0" with
          | None -> Alcotest.fail "lease missing"
          | Some lease ->
              check Alcotest.int "lease drains to zero after frees" 0
                lease.Tenancy.Lease.mem_used);
          (* out-of-range device selection is a typed CUDA error over the
             wire, never a crash *)
          (match Cricket.Client.set_device client (-1) with
          | () -> Alcotest.fail "set_device(-1) must fail"
          | exception Cudasim.Error.Cuda_error Cudasim.Error.Invalid_device ->
              ());
          match Cricket.Client.set_device client 99 with
          | () -> Alcotest.fail "set_device(99) must fail"
          | exception Cudasim.Error.Cuda_error Cudasim.Error.Invalid_device ->
              ())

let suite =
  [
    Alcotest.test_case "cross-major module is a typed reject" `Quick
      test_cross_major_typed_reject;
    Alcotest.test_case "launches land only on eligible devices" `Quick
      test_only_eligible_devices_launch;
    Alcotest.test_case "superopt finds shortest programs" `Quick
      test_superopt_finds_shortest;
    Alcotest.test_case "cost-aware beats round-robin makespan" `Quick
      test_cost_aware_beats_round_robin;
    Alcotest.test_case "deterministic digest and stats" `Quick
      test_deterministic_digest;
    Alcotest.test_case "multi-device session over RPC" `Quick
      test_session_over_rpc;
  ]
