(* Tests for the cubin-analogue module format: LZSS compression, image
   build/parse (compressed and not), fatbin container, parameter-buffer
   packing/unpacking. *)

let check = Alcotest.check

(* --- LZSS --- *)

let rt s =
  match Cubin.Lzss.decompress (Cubin.Lzss.compress s) with
  | Ok s' -> s'
  | Error e -> Alcotest.failf "decompress failed: %s" e

let test_lzss_basics () =
  check Alcotest.string "empty" "" (rt "");
  check Alcotest.string "single" "x" (rt "x");
  check Alcotest.string "ascii" "hello, world" (rt "hello, world");
  let repetitive = String.concat "" (List.init 200 (fun _ -> "abcabcabc")) in
  check Alcotest.string "repetitive" repetitive (rt repetitive);
  check Alcotest.bool "compresses repetition" true
    (Cubin.Lzss.ratio repetitive < 0.2)

let test_lzss_incompressible () =
  (* pseudo-random bytes shouldn't explode in size beyond flag overhead *)
  let state = ref 12345 in
  let s =
    String.init 4096 (fun _ ->
        state := (!state * 1103515245) + 12345;
        Char.chr ((!state lsr 16) land 0xff))
  in
  check Alcotest.string "roundtrip" s (rt s);
  check Alcotest.bool "bounded expansion" true (Cubin.Lzss.ratio s <= 1.2)

let test_lzss_overlapping_match () =
  (* run-length case: match overlaps its own output *)
  let s = String.make 1000 'z' in
  check Alcotest.string "rle" s (rt s);
  (* 2-byte tokens for 18-byte matches bound the best ratio near 0.12 *)
  check Alcotest.bool "rle compresses hard" true (Cubin.Lzss.ratio s < 0.15)

let test_lzss_malformed () =
  (* a match token pointing before the start of output *)
  let bogus = "\x01\xff\xff" in
  match Cubin.Lzss.decompress bogus with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected decompress error"

let prop_lzss_roundtrip =
  QCheck.Test.make ~count:300 ~name:"lzss roundtrip"
    QCheck.(string_of_size (Gen.int_range 0 4096))
    (fun s -> rt s = s)

let prop_lzss_roundtrip_structured =
  (* structured, repetitive inputs like real SASS sections *)
  QCheck.Test.make ~count:100 ~name:"lzss roundtrip (structured)"
    QCheck.(pair (string_of_size (Gen.int_range 1 64)) (int_range 1 100))
    (fun (unit_, reps) ->
      let s = String.concat "" (List.init reps (fun _ -> unit_)) in
      rt s = s)

(* --- image format --- *)

let sample_image () =
  {
    Cubin.Image.arch = (8, 0);
    kernels =
      [
        { Cubin.Image.name = "k1";
          params = [ Gpusim.Kernels.P_ptr; Gpusim.Kernels.P_i32 ];
          max_threads_per_block = 1024 };
        { Cubin.Image.name = "k2";
          params = [ Gpusim.Kernels.P_f64; Gpusim.Kernels.P_f32 ];
          max_threads_per_block = 256 };
      ];
    globals =
      [
        { Cubin.Image.name = "g_scale"; size = 4;
          init = Some (Bytes.of_string "\x00\x00\x80\x3f") };
        { Cubin.Image.name = "g_table"; size = 1024; init = None };
      ];
    code = Bytes.of_string (String.concat "" (List.init 50 (fun i -> Printf.sprintf "op%d;" i)));
  }

let test_image_roundtrip_uncompressed () =
  let img = sample_image () in
  let wire = Cubin.Image.build ~compress:false img in
  check Alcotest.bool "not compressed" false (Cubin.Image.is_compressed wire);
  match Cubin.Image.parse wire with
  | Ok img' -> check Alcotest.bool "equal" true (img = img')
  | Error e -> Alcotest.fail e

let test_image_roundtrip_compressed () =
  let img = sample_image () in
  let wire = Cubin.Image.build ~compress:true img in
  check Alcotest.bool "compressed flag" true (Cubin.Image.is_compressed wire);
  match Cubin.Image.parse wire with
  | Ok img' -> check Alcotest.bool "equal" true (img = img')
  | Error e -> Alcotest.fail e

let test_image_metadata_access () =
  let img = sample_image () in
  (match Cubin.Image.find_kernel img "k2" with
  | Some k -> check Alcotest.int "params" 2 (List.length k.Cubin.Image.params)
  | None -> Alcotest.fail "k2 missing");
  check Alcotest.bool "missing kernel" true
    (Cubin.Image.find_kernel img "nope" = None)

let test_image_malformed () =
  List.iter
    (fun s ->
      match Cubin.Image.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" s)
    [
      ""; "XXXX"; "CBIN"; "CBIN\x01\x00\x00\x00\xff\xff\xff\xff";
      (* truncated image: declared payload length exceeds the data *)
      (let wire = Cubin.Image.build (sample_image ()) in
       String.sub wire 0 (String.length wire - 5));
    ]

let test_of_registry () =
  let img =
    Cubin.Image.of_registry
      [ Gpusim.Kernels.matrix_mul_name; Gpusim.Kernels.saxpy_name ]
  in
  check Alcotest.int "kernels" 2 (List.length img.Cubin.Image.kernels);
  (match Cubin.Image.find_kernel img Gpusim.Kernels.saxpy_name with
  | Some k ->
      check Alcotest.bool "params from registry" true
        (k.Cubin.Image.params
        = [ Gpusim.Kernels.P_f32; Gpusim.Kernels.P_ptr; Gpusim.Kernels.P_ptr;
            Gpusim.Kernels.P_i32 ])
  | None -> Alcotest.fail "saxpy missing");
  match Cubin.Image.of_registry [ "unknown_kernel" ] with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

(* --- parameter buffers --- *)

let test_param_packing () =
  let info =
    { Cubin.Image.name = "k";
      params =
        [ Gpusim.Kernels.P_i32; Gpusim.Kernels.P_ptr; Gpusim.Kernels.P_f32;
          Gpusim.Kernels.P_f64 ];
      max_threads_per_block = 1024 }
  in
  (* natural alignment: i32 @0, ptr @8, f32 @16, f64 @24 -> 32 bytes *)
  check Alcotest.int "buffer size" 32 (Cubin.Image.param_buffer_size info);
  let args =
    [| Gpusim.Kernels.I32 7l; Gpusim.Kernels.Ptr 0xdead00;
       Gpusim.Kernels.F32 1.5; Gpusim.Kernels.F64 2.5 |]
  in
  match Cubin.Image.pack_args info args with
  | Error e -> Alcotest.fail e
  | Ok buf -> (
      check Alcotest.int "packed size" 32 (Bytes.length buf);
      match Cubin.Image.unpack_args info buf with
      | Error e -> Alcotest.fail e
      | Ok args' -> check Alcotest.bool "roundtrip" true (args = args'))

let test_param_packing_errors () =
  let info =
    { Cubin.Image.name = "k"; params = [ Gpusim.Kernels.P_i32 ];
      max_threads_per_block = 1024 }
  in
  (match Cubin.Image.pack_args info [||] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity must fail");
  (match Cubin.Image.pack_args info [| Gpusim.Kernels.F64 1.0 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type must fail");
  match Cubin.Image.unpack_args info (Bytes.create 3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "size must fail"

let prop_param_roundtrip =
  let gen_param =
    QCheck.Gen.oneofl
      [ Gpusim.Kernels.P_i32; Gpusim.Kernels.P_i64; Gpusim.Kernels.P_f32;
        Gpusim.Kernels.P_f64; Gpusim.Kernels.P_ptr ]
  in
  QCheck.Test.make ~count:200 ~name:"param buffer roundtrip"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 12) gen_param))
    (fun params ->
      let info =
        { Cubin.Image.name = "k"; params; max_threads_per_block = 256 }
      in
      let arg_of = function
        | Gpusim.Kernels.P_i32 -> Gpusim.Kernels.I32 123l
        | Gpusim.Kernels.P_i64 -> Gpusim.Kernels.I64 (-9L)
        | Gpusim.Kernels.P_f32 -> Gpusim.Kernels.F32 0.5
        | Gpusim.Kernels.P_f64 -> Gpusim.Kernels.F64 (-2.25)
        | Gpusim.Kernels.P_ptr -> Gpusim.Kernels.Ptr 0x1000
      in
      let args = Array.of_list (List.map arg_of params) in
      match Cubin.Image.pack_args info args with
      | Error _ -> false
      | Ok buf -> (
          match Cubin.Image.unpack_args info buf with
          | Ok args' -> args = args'
          | Error _ -> false))

(* --- fatbin --- *)

let test_fatbin_roundtrip () =
  let img80 = Cubin.Image.build (sample_image ()) in
  let img70 =
    Cubin.Image.build { (sample_image ()) with Cubin.Image.arch = (7, 0) }
  in
  let fb = { Cubin.Fatbin.images = [ ((7, 0), img70); ((8, 0), img80) ] } in
  let wire = Cubin.Fatbin.build fb in
  check Alcotest.bool "is fatbin" true (Cubin.Fatbin.is_fatbin wire);
  match Cubin.Fatbin.parse wire with
  | Error e -> Alcotest.fail e
  | Ok fb' -> check Alcotest.bool "equal" true (fb = fb')

let test_fatbin_best_image () =
  let fb =
    { Cubin.Fatbin.images =
        [ ((6, 1), "p40"); ((7, 5), "t4"); ((8, 0), "a100") ] }
  in
  check (Alcotest.option Alcotest.string) "exact" (Some "a100")
    (Cubin.Fatbin.best_image fb ~cc:(8, 0));
  (* SASS does not carry forward across majors: an sm_90 device cannot
     run any of these images even though they are all "older". *)
  check (Alcotest.option Alcotest.string) "newer major" None
    (Cubin.Fatbin.best_image fb ~cc:(9, 0));
  check (Alcotest.option Alcotest.string) "within major" (Some "t4")
    (Cubin.Fatbin.best_image fb ~cc:(7, 9));
  check (Alcotest.option Alcotest.string) "minor too new" None
    (Cubin.Fatbin.best_image fb ~cc:(7, 4));
  check (Alcotest.option Alcotest.string) "same major, higher minor"
    (Some "p40")
    (Cubin.Fatbin.best_image fb ~cc:(6, 9));
  check (Alcotest.option Alcotest.string) "too old" None
    (Cubin.Fatbin.best_image fb ~cc:(5, 2))

(* The regression that motivated the fix: a container holding only sm_52
   and sm_70 images must NOT hand the sm_70 image to an sm_80 device. The
   pre-fix rule (any [arch <= cc]) returned [Some "sm_70"] here. *)
let test_fatbin_no_cross_major () =
  let fb = { Cubin.Fatbin.images = [ ((5, 2), "sm_52"); ((7, 0), "sm_70") ] } in
  check (Alcotest.option Alcotest.string) "sm_80 device" None
    (Cubin.Fatbin.best_image fb ~cc:(8, 0));
  check (Alcotest.option Alcotest.string) "sm_70 device" (Some "sm_70")
    (Cubin.Fatbin.best_image fb ~cc:(7, 0));
  check (Alcotest.option Alcotest.string) "sm_52 device" (Some "sm_52")
    (Cubin.Fatbin.best_image fb ~cc:(5, 2));
  check Alcotest.bool "compat predicate" false
    (Cubin.Fatbin.image_compatible ~cc:(8, 0) (7, 0))

let arch_gen = QCheck.Gen.(pair (int_range 3 9) (int_range 0 9))

let prop_best_image_compatible =
  (* whatever best_image selects satisfies the compatibility predicate,
     and is the highest-arch image that does *)
  QCheck.Test.make ~count:500 ~name:"best_image picks a compatible maximum"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 8) (make arch_gen))
        (make arch_gen))
    (fun (archs, cc) ->
      let images =
        List.map (fun (mj, mn) -> ((mj, mn), Printf.sprintf "%d.%d" mj mn)) archs
      in
      let fb = { Cubin.Fatbin.images } in
      let compat = List.filter (Cubin.Fatbin.image_compatible ~cc) archs in
      match Cubin.Fatbin.best_image fb ~cc with
      | None -> compat = []
      | Some img ->
          let arch = Scanf.sscanf img "%d.%d" (fun a b -> (a, b)) in
          Cubin.Fatbin.image_compatible ~cc arch
          && List.for_all (fun a -> compare a arch <= 0) compat)

(* Mixed-architecture fleet round-trip: build real images for each arch in
   the gpu_node catalog, serialize, parse back, and check best_image routes
   every catalog device to its own-major image — then corrupt the wire. *)
let test_fatbin_fleet_roundtrip () =
  let archs = [ (6, 1); (7, 5); (8, 0) ] in
  let images =
    List.map
      (fun arch ->
        (arch, Cubin.Image.build { (sample_image ()) with Cubin.Image.arch = arch }))
      archs
  in
  let fb = { Cubin.Fatbin.images } in
  let wire = Cubin.Fatbin.build fb in
  (match Cubin.Fatbin.parse wire with
  | Error e -> Alcotest.fail e
  | Ok fb' ->
      check Alcotest.bool "roundtrip equal" true (fb = fb');
      List.iter
        (fun dev ->
          let cc = dev.Gpusim.Device.compute_major, dev.Gpusim.Device.compute_minor in
          match Cubin.Fatbin.best_image fb' ~cc with
          | None -> Alcotest.failf "no image for %s" dev.Gpusim.Device.name
          | Some img -> (
              match Cubin.Image.parse img with
              | Error e -> Alcotest.fail e
              | Ok parsed ->
                  check Alcotest.int "image major matches device"
                    dev.Gpusim.Device.compute_major
                    (fst parsed.Cubin.Image.arch)))
        Gpusim.Device.gpu_node);
  (* every strict prefix must fail to parse; so must trailing garbage *)
  for cut = 0 to String.length wire - 1 do
    match Cubin.Fatbin.parse (String.sub wire 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted truncation at %d" cut
  done;
  match Cubin.Fatbin.parse (wire ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing byte"

let test_fatbin_malformed () =
  List.iter
    (fun s ->
      match Cubin.Fatbin.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" s)
    [ ""; "FATB"; "FATB\x01\x00\x02\x00\x00\x00" ]

let suite =
  [
    Alcotest.test_case "lzss basics" `Quick test_lzss_basics;
    Alcotest.test_case "lzss incompressible" `Quick test_lzss_incompressible;
    Alcotest.test_case "lzss overlapping match" `Quick
      test_lzss_overlapping_match;
    Alcotest.test_case "lzss malformed" `Quick test_lzss_malformed;
    Alcotest.test_case "image roundtrip (plain)" `Quick
      test_image_roundtrip_uncompressed;
    Alcotest.test_case "image roundtrip (compressed)" `Quick
      test_image_roundtrip_compressed;
    Alcotest.test_case "image metadata" `Quick test_image_metadata_access;
    Alcotest.test_case "image malformed" `Quick test_image_malformed;
    Alcotest.test_case "image from registry" `Quick test_of_registry;
    Alcotest.test_case "param packing" `Quick test_param_packing;
    Alcotest.test_case "param packing errors" `Quick test_param_packing_errors;
    Alcotest.test_case "fatbin roundtrip" `Quick test_fatbin_roundtrip;
    Alcotest.test_case "fatbin best image" `Quick test_fatbin_best_image;
    Alcotest.test_case "fatbin no cross-major selection" `Quick
      test_fatbin_no_cross_major;
    Alcotest.test_case "fatbin fleet roundtrip + corruption" `Quick
      test_fatbin_fleet_roundtrip;
    Alcotest.test_case "fatbin malformed" `Quick test_fatbin_malformed;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_lzss_roundtrip;
        prop_lzss_roundtrip_structured;
        prop_param_roundtrip;
        prop_best_image_compatible;
      ]
