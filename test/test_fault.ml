(* Fault injection end to end: the seeded fault plan, client retries with
   virtual-time backoff, the server's at-most-once duplicate-request cache,
   and Cricket session recovery (checkpoint + journal replay + handle
   remap) after a mid-workload server crash. The acceptance property
   throughout: a faulty run finishes with a digest bit-identical to the
   fault-free run, counters prove the machinery actually fired, and
   everything is deterministic under the plan's seed. *)

module Time = Simnet.Time
module E = Xdr.Encode
module D = Xdr.Decode

let check = Alcotest.check

let cfg = Unikernel.Config.hermit

let mm_params = { Apps.Matrix_mul.ha = 64; wa = 64; wb = 64; iterations = 200 }

let clean_mm_digest =
  lazy
    (let digest = ref "" in
     ignore
       (Unikernel.Runner.run ~functional:true cfg
          (Apps.Matrix_mul.run ~verify:true ~digest_out:digest mm_params));
     !digest)

(* --- acceptance: 1 % drops + a scheduled crash, bit-identical result --- *)

let drop_crash_plan =
  {
    Simnet.Fault.none with
    Simnet.Fault.seed = 7;
    drop_rate = 0.01;
    crashes =
      [ { Simnet.Fault.after_records = 300; down_for = Time.ms 2 } ];
  }

let run_mm plan =
  let digest = ref "" in
  let report =
    Unikernel.Runner.run_with_faults ~plan cfg
      (Apps.Matrix_mul.run ~verify:true ~digest_out:digest mm_params)
  in
  (report, !digest)

let test_matrixmul_survives_drops_and_crash () =
  let report, digest = run_mm drop_crash_plan in
  check Alcotest.string "digest identical to fault-free run"
    (Lazy.force clean_mm_digest) digest;
  check Alcotest.bool "records were dropped" true
    (report.Unikernel.Runner.faults.Simnet.Fault.dropped > 0);
  check Alcotest.bool "client retried" true
    (report.Unikernel.Runner.rpc_retries > 0);
  check Alcotest.int "crash fired" 1 report.Unikernel.Runner.crashes;
  check Alcotest.int "one recovery" 1 report.Unikernel.Runner.recoveries;
  check Alcotest.bool "journal tail replayed" true
    (report.Unikernel.Runner.replayed_calls > 0)

let test_fault_run_deterministic () =
  let r1, d1 = run_mm drop_crash_plan in
  let r2, d2 = run_mm drop_crash_plan in
  check Alcotest.string "same digest" d1 d2;
  check Alcotest.int "same virtual elapsed" 0
    (Time.compare r1.Unikernel.Runner.measurement.Unikernel.Runner.elapsed
       r2.Unikernel.Runner.measurement.Unikernel.Runner.elapsed);
  check Alcotest.int "same retries" r1.Unikernel.Runner.rpc_retries
    r2.Unikernel.Runner.rpc_retries;
  check Alcotest.int "same injected"
    (Simnet.Fault.injected r1.Unikernel.Runner.faults)
    (Simnet.Fault.injected r2.Unikernel.Runner.faults);
  check Alcotest.int "same dup hits" r1.Unikernel.Runner.dup_hits
    r2.Unikernel.Runner.dup_hits

(* --- crash in the middle of a one-way upload_async batch --- *)

(* 16 async 1 KiB uploads to distinct offsets, then a synchronize and a
   readback. The one-way records sit in the channel outbox until the sync
   flushes them; the crash schedule below lands inside that batch, so
   recovery must replay journaled one-ways whose original records died
   with the old server process. *)
let upload_async_app digest (env : Unikernel.Runner.env) =
  let client = env.Unikernel.Runner.client in
  let chunk = 1024 and n = 16 in
  let d_buf = Cricket.Client.malloc client (chunk * n) in
  for i = 0 to n - 1 do
    let data = Bytes.make chunk (Char.chr (0x30 + i)) in
    Cricket.Client.memcpy_h2d_async client
      ~dst:(Int64.add d_buf (Int64.of_int (i * chunk)))
      ~stream:0L data
  done;
  Cricket.Client.device_synchronize client;
  let out = Cricket.Client.memcpy_d2h client ~src:d_buf ~len:(chunk * n) in
  Cricket.Client.free client d_buf;
  digest := Digest.to_hex (Digest.bytes out)

let test_crash_mid_upload_async () =
  let clean = ref "" in
  ignore (Unikernel.Runner.run ~functional:true cfg (upload_async_app clean));
  let faulty = ref "" in
  let plan =
    {
      Simnet.Fault.none with
      Simnet.Fault.seed = 3;
      crashes = [ { Simnet.Fault.after_records = 14; down_for = Time.ms 1 } ];
    }
  in
  let report =
    Unikernel.Runner.run_with_faults ~plan ~checkpoint_every:8 cfg
      (upload_async_app faulty)
  in
  check Alcotest.int "crash fired" 1 report.Unikernel.Runner.crashes;
  check Alcotest.int "recovered" 1 report.Unikernel.Runner.recoveries;
  check Alcotest.string "uploaded data intact" !clean !faulty

(* --- crash in the middle of a pipelined Cricket.Stream batch --- *)

let stream_batch_app digest (env : Unikernel.Runner.env) =
  let client = env.Unikernel.Runner.client in
  let n = 256 in
  let modul = Apps.Workload.load_standard_module client in
  let saxpy =
    Apps.Workload.get_kernel client ~modul Gpusim.Kernels.saxpy_name
  in
  let d_x = Cricket.Client.malloc client (4 * n) in
  let d_y = Cricket.Client.malloc client (4 * n) in
  let s = Cricket.Stream.create client in
  Cricket.Stream.memcpy_h2d_async s ~dst:d_x
    (Apps.Workload.f32_bytes (Apps.Workload.fill_constant n 1.0));
  Cricket.Stream.memset_async s ~ptr:d_y ~value:0 ~len:(4 * n);
  for _ = 1 to 24 do
    Cricket.Stream.launch_async s saxpy
      ~grid:{ Cricket.Client.x = (n + 255) / 256; y = 1; z = 1 }
      ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
      [|
        Gpusim.Kernels.F32 0.5;
        Gpusim.Kernels.Ptr (Int64.to_int d_x);
        Gpusim.Kernels.Ptr (Int64.to_int d_y);
        Gpusim.Kernels.I32 (Int32.of_int n);
      |]
  done;
  let out = Cricket.Stream.download s ~src:d_y ~len:(4 * n) in
  Cricket.Stream.destroy s;
  digest := Digest.to_hex (Digest.bytes out)

let test_crash_mid_pipelined_batch () =
  let clean = ref "" in
  ignore (Unikernel.Runner.run ~functional:true cfg (stream_batch_app clean));
  check Alcotest.bool "reference digest computed" true (!clean <> "");
  let faulty = ref "" in
  let plan =
    {
      Simnet.Fault.none with
      Simnet.Fault.seed = 11;
      crashes = [ { Simnet.Fault.after_records = 30; down_for = Time.ms 1 } ];
    }
  in
  let report =
    Unikernel.Runner.run_with_faults ~plan ~checkpoint_every:16 cfg
      (stream_batch_app faulty)
  in
  check Alcotest.int "crash fired" 1 report.Unikernel.Runner.crashes;
  check Alcotest.int "recovered" 1 report.Unikernel.Runner.recoveries;
  check Alcotest.string "pipelined result intact" !clean !faulty

(* --- at-most-once: the duplicate-request cache --- *)

let test_dup_cache_executes_once () =
  let server = Oncrpc.Server.create () in
  let executions = ref 0 in
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [
      ( 1,
        fun dec enc ->
          incr executions;
          E.int enc (D.int dec * 2) );
    ];
  Oncrpc.Server.set_dup_cache server;
  let enc = E.create () in
  Oncrpc.Message.encode enc
    (Oncrpc.Message.call ~xid:77l ~prog:300000 ~vers:1 ~proc:1 ());
  E.int enc 21;
  let request = E.to_string enc in
  let reply1 = Oncrpc.Server.dispatch server request in
  (* a retransmission is byte-identical — same xid, same proc, same args *)
  let reply2 = Oncrpc.Server.dispatch server request in
  check Alcotest.int "handler executed once" 1 !executions;
  check Alcotest.string "cached reply identical" reply1 reply2;
  check Alcotest.int "dup hit counted" 1 (Oncrpc.Server.dup_hits server);
  (* a different xid is a new call, not a duplicate *)
  let enc = E.create () in
  Oncrpc.Message.encode enc
    (Oncrpc.Message.call ~xid:78l ~prog:300000 ~vers:1 ~proc:1 ());
  E.int enc 21;
  ignore (Oncrpc.Server.dispatch server (E.to_string enc));
  check Alcotest.int "new xid executes" 2 !executions

(* --- unrecoverable sessions: sticky Session_lost, never a hang --- *)

let test_session_lost_is_sticky () =
  (* the second crash lands while recovery from the first is replaying the
     journal: by design that is unrecoverable and must surface as a sticky
     Session_lost on every subsequent call *)
  let plan =
    {
      Simnet.Fault.none with
      Simnet.Fault.seed = 5;
      crashes =
        [
          { Simnet.Fault.after_records = 60; down_for = Time.us 100 };
          { Simnet.Fault.after_records = 66; down_for = Time.us 100 };
        ];
    }
  in
  let lost = ref 0 in
  let saw_sticky = ref false in
  let app (env : Unikernel.Runner.env) =
    let client = env.Unikernel.Runner.client in
    (try
       for _ = 1 to 100 do
         ignore (Cricket.Client.malloc client 256)
       done
     with Cricket.Client.Session_lost _ -> incr lost);
    check Alcotest.bool "client flags the lost session" true
      (Cricket.Client.session_lost client);
    (* every later call fails immediately with the same error — no hang,
       no retry loop *)
    (match Cricket.Client.get_device_count client with
    | _ -> ()
    | exception Cricket.Client.Session_lost _ -> saw_sticky := true);
    ()
  in
  let report =
    Unikernel.Runner.run_with_faults ~plan ~checkpoint_every:16 cfg app
  in
  check Alcotest.int "workload hit Session_lost" 1 !lost;
  check Alcotest.bool "subsequent calls also raise Session_lost" true
    !saw_sticky;
  check Alcotest.int "both crashes fired" 2 report.Unikernel.Runner.crashes

(* --- UDP: retransmissions reuse the xid; late duplicates are skipped --- *)

let test_udp_retransmit_reuses_xid () =
  (* a bare socket plays server: swallow the first datagram, answer the
     retransmission, and assert both transmissions are byte-identical —
     same xid, so the server-side dup cache would recognise them *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let server = Oncrpc.Server.create () in
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [ (1, fun dec enc -> E.int enc (D.int dec + 1)) ];
  let first = ref Bytes.empty in
  let second = ref Bytes.empty in
  let responder =
    Thread.create
      (fun () ->
        let buf = Bytes.create 65536 in
        let n1, _ = Unix.recvfrom fd buf 0 65536 [] in
        first := Bytes.sub buf 0 n1;
        (* drop it: no reply, the client must retransmit *)
        let n2, peer = Unix.recvfrom fd buf 0 65536 [] in
        second := Bytes.sub buf 0 n2;
        let reply = Oncrpc.Server.dispatch server (Bytes.sub_string buf 0 n2) in
        ignore
          (Unix.sendto fd
             (Bytes.unsafe_of_string reply)
             0 (String.length reply) [] peer))
      ()
  in
  let client =
    Oncrpc.Udp.connect ~timeout_s:0.05 ~retries:3 ~host:"127.0.0.1" ~port
      ~prog:300000 ~vers:1 ()
  in
  let r = Oncrpc.Udp.call client ~proc:1 (fun enc -> E.int enc 41) D.int in
  Thread.join responder;
  check Alcotest.int "answered" 42 r;
  check Alcotest.bool "retransmission is byte-identical (same xid)" true
    (Bytes.equal !first !second);
  Oncrpc.Udp.close_client client;
  Unix.close fd

let test_udp_late_duplicate_reply_discarded () =
  (* a Duplicate fault makes the request arrive twice: the dup cache
     answers both with the same xid (proving at-most-once execution), and
     the second reply datagram sits in the client's socket buffer. The
     next call must skip that stale xid and match its own reply. *)
  let server = Oncrpc.Server.create () in
  let executions = ref 0 in
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [
      ( 1,
        fun dec enc ->
          incr executions;
          E.int enc (D.int dec * 10) );
    ];
  Oncrpc.Server.set_dup_cache server;
  let udp = Oncrpc.Udp.serve server ~port:0 in
  let fault =
    Simnet.Fault.make
      { Simnet.Fault.none with Simnet.Fault.duplicate_nth = [ 0 ] }
  in
  let client =
    Oncrpc.Udp.connect ~fault ~host:"127.0.0.1" ~port:(Oncrpc.Udp.port udp)
      ~prog:300000 ~vers:1 ()
  in
  let r1 = Oncrpc.Udp.call client ~proc:1 (fun enc -> E.int enc 4) D.int in
  check Alcotest.int "first call" 40 r1;
  (* wait for the duplicate's reply to be queued on the client socket *)
  let deadline = Unix.gettimeofday () +. 1.0 in
  while Oncrpc.Server.dup_hits server < 1 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check Alcotest.int "server saw the same xid twice" 1
    (Oncrpc.Server.dup_hits server);
  check Alcotest.int "handler ran once" 1 !executions;
  (* if the stale duplicate reply (value 40) were matched to this call, the
     result would be 40, not 70 *)
  let r2 = Oncrpc.Udp.call client ~proc:1 (fun enc -> E.int enc 7) D.int in
  check Alcotest.int "stale reply skipped, fresh reply matched" 70 r2;
  Oncrpc.Udp.close_client client;
  Oncrpc.Udp.shutdown udp

let suite =
  [
    Alcotest.test_case "matrixMul survives 1% drops + crash" `Quick
      test_matrixmul_survives_drops_and_crash;
    Alcotest.test_case "faulty runs are deterministic" `Quick
      test_fault_run_deterministic;
    Alcotest.test_case "crash mid upload_async batch" `Quick
      test_crash_mid_upload_async;
    Alcotest.test_case "crash mid pipelined stream batch" `Quick
      test_crash_mid_pipelined_batch;
    Alcotest.test_case "dup cache gives at-most-once execution" `Quick
      test_dup_cache_executes_once;
    Alcotest.test_case "Session_lost is sticky, never a hang" `Quick
      test_session_lost_is_sticky;
    Alcotest.test_case "udp retransmit reuses xid" `Quick
      test_udp_retransmit_reuses_xid;
    Alcotest.test_case "udp late duplicate reply discarded" `Quick
      test_udp_late_duplicate_reply_discarded;
  ]
