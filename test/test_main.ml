let () =
  Alcotest.run "cricket-unikernel-repro"
    [
      ("xdr", Test_xdr.suite);
      ("oncrpc", Test_oncrpc.suite);
      ("rpcl", Test_rpcl.suite);
      ("simnet", Test_simnet.suite);
      ("tcpstack", Test_tcpstack.suite);
      ("gpusim", Test_gpusim.suite);
      ("cubin", Test_cubin.suite);
      ("cudasim", Test_cudasim.suite);
      ("cricket", Test_cricket.suite);
      ("unikernel", Test_unikernel.suite);
      ("apps", Test_apps.suite);
      ("stream", Test_stream.suite);
      ("fault", Test_fault.suite);
      ("fuzz", Test_fuzz.suite);
      ("obs", Test_obs.suite);
      ("tenancy", Test_tenancy.suite);
      ("migrate", Test_migrate.suite);
      ("par", Test_par.suite);
      ("rpcacc", Test_rpcacc.suite);
      ("fleet", Test_fleet.suite);
    ]
