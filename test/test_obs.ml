(* Tests for the observability subsystem: log-bucketed histograms,
   span/counter recording with virtual clocks, Chrome trace_event JSON
   round-trips, and the end-to-end layer decomposition of a benchmark
   run (the Figure 4/5 breakdown). *)

let check = Alcotest.check

(* --- histogram --- *)

let test_histogram_basics () =
  let h = Obs.Histogram.create () in
  check Alcotest.int "empty count" 0 (Obs.Histogram.count h);
  check Alcotest.int64 "empty quantile" 0L (Obs.Histogram.quantile h 0.5);
  List.iter (fun v -> Obs.Histogram.record h v)
    [ 100L; 200L; 300L; 400L; 500L; 600L; 700L; 800L; 900L; 1000L ];
  check Alcotest.int "count" 10 (Obs.Histogram.count h);
  check Alcotest.int64 "sum" 5500L (Obs.Histogram.sum_ns h);
  check Alcotest.int64 "min exact" 100L (Obs.Histogram.min_ns h);
  check Alcotest.int64 "max exact" 1000L (Obs.Histogram.max_ns h);
  (* log buckets bound any quantile by 2x and clamp into [min, max] *)
  let p50 = Obs.Histogram.quantile h 0.5 in
  check Alcotest.bool "p50 in range" true (p50 >= 100L && p50 <= 1000L);
  check Alcotest.bool "p50 within 2x of exact" true
    (p50 >= 250L && p50 <= 1000L);
  check Alcotest.int64 "p100 is exact max" 1000L (Obs.Histogram.quantile h 1.0);
  (* low quantiles are bucket upper bounds: within 2x of the exact min *)
  let p0 = Obs.Histogram.quantile h 0.0 in
  check Alcotest.bool "p0 within 2x of min" true (p0 >= 100L && p0 <= 200L)

let test_histogram_clamps_and_extremes () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h (-5L);
  check Alcotest.int64 "negative clamps to 0" 0L (Obs.Histogram.max_ns h);
  Obs.Histogram.record h Int64.max_int;
  check Alcotest.int64 "max_int exact" Int64.max_int (Obs.Histogram.max_ns h);
  check Alcotest.int "count" 2 (Obs.Histogram.count h);
  let total = Array.fold_left ( + ) 0 (Obs.Histogram.buckets h) in
  check Alcotest.int "buckets account for every record" 2 total

let test_histogram_skew () =
  (* a heavy tail must move p99 far from p50 *)
  let h = Obs.Histogram.create () in
  for _ = 1 to 99 do Obs.Histogram.record h 1_000L done;
  Obs.Histogram.record h 1_000_000L;
  let p50 = Obs.Histogram.quantile h 0.50 in
  let p99 = Obs.Histogram.quantile h 0.99 in
  check Alcotest.bool "p50 near body" true (p50 <= 2_048L);
  check Alcotest.bool "p99 below tail" true (p99 < 1_000_000L);
  check Alcotest.int64 "max is the tail" 1_000_000L (Obs.Histogram.max_ns h)

(* --- recorder --- *)

let manual_recorder () =
  let now = ref 0L in
  let t = Obs.Recorder.create ~clock:(fun () -> !now) () in
  Obs.Recorder.set_enabled t true;
  (t, now)

let test_recorder_disabled_records_nothing () =
  let t = Obs.Recorder.create () in
  (* enabled defaults to false: every entry point must be inert *)
  let sp = Obs.Recorder.span_begin t ~layer:"rpc" "ignored" in
  Obs.Recorder.span_end t sp;
  Obs.Recorder.incr t "c";
  Obs.Recorder.observe t "h" 5L;
  Obs.Recorder.span_event t ~name:"e" ~start_ns:0L ~stop_ns:1L;
  check Alcotest.int "no spans" 0 (List.length (Obs.Recorder.spans t));
  check Alcotest.int "no counter" 0 (Obs.Recorder.counter t "c");
  check Alcotest.bool "no histogram" true
    (Obs.Recorder.histogram t "h" = None);
  (* the shared null recorder can never be switched on *)
  Obs.Recorder.set_enabled Obs.Recorder.null true;
  check Alcotest.bool "null stays off" false
    (Obs.Recorder.enabled Obs.Recorder.null)

let test_recorder_nesting_and_layers () =
  let t, now = manual_recorder () in
  let outer = Obs.Recorder.span_begin t ~layer:"shim" "call" in
  now := 10L;
  let inner = Obs.Recorder.span_begin t ~layer:"rpc" "xmit" in
  now := 40L;
  Obs.Recorder.span_end t inner;
  now := 100L;
  Obs.Recorder.span_end t outer;
  match Obs.Recorder.spans t with
  | [ o; i ] ->
      (* spans come back in begin order *)
      check Alcotest.string "outer name" "call" o.Obs.Recorder.name;
      check Alcotest.int "outer is root" (-1) o.Obs.Recorder.parent;
      check Alcotest.int "inner parented to outer" o.Obs.Recorder.id
        i.Obs.Recorder.parent;
      check Alcotest.int64 "outer interval" 100L o.Obs.Recorder.stop_ns;
      check Alcotest.int64 "inner start" 10L i.Obs.Recorder.start_ns;
      check Alcotest.int64 "shim layer total" 100L
        (Obs.Recorder.layer_total_ns t "shim");
      check Alcotest.int64 "rpc layer total" 30L
        (Obs.Recorder.layer_total_ns t "rpc");
      (* span_end fed the per-layer histograms *)
      (match Obs.Recorder.histogram t "span/rpc" with
      | Some h -> check Alcotest.int64 "rpc hist" 30L (Obs.Histogram.max_ns h)
      | None -> Alcotest.fail "missing span/rpc histogram")
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_recorder_with_span_and_exceptions () =
  let t, now = manual_recorder () in
  (match
     Obs.Recorder.with_span t ~layer:"dispatch" "boom" (fun () ->
         now := 7L;
         failwith "inner")
   with
  | () -> Alcotest.fail "expected the exception to propagate"
  | exception Failure _ -> ());
  match Obs.Recorder.spans t with
  | [ s ] ->
      check Alcotest.int64 "closed on exception" 7L s.Obs.Recorder.stop_ns
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_recorder_counters_and_reset () =
  let t, _ = manual_recorder () in
  Obs.Recorder.incr t "a";
  Obs.Recorder.incr t ~by:4 "a";
  Obs.Recorder.incr t "b";
  check Alcotest.int "a" 5 (Obs.Recorder.counter t "a");
  check Alcotest.int "unknown counter" 0 (Obs.Recorder.counter t "zzz");
  check
    Alcotest.(list (pair string int))
    "sorted" [ ("a", 5); ("b", 1) ] (Obs.Recorder.counters t);
  Obs.Recorder.reset t;
  check Alcotest.int "reset drops counters" 0 (Obs.Recorder.counter t "a");
  check Alcotest.bool "reset keeps enabled" true (Obs.Recorder.enabled t)

let test_recorder_span_cap () =
  let now = ref 0L in
  let t = Obs.Recorder.create ~clock:(fun () -> !now) ~max_spans:4 () in
  Obs.Recorder.set_enabled t true;
  for i = 1 to 10 do
    let sp = Obs.Recorder.span_begin t ~layer:"net" "s" in
    now := Int64.of_int (i * 10);
    Obs.Recorder.span_end t sp
  done;
  check Alcotest.int "retained at cap" 4 (Obs.Recorder.span_count t);
  check Alcotest.int "overflow counted" 6 (Obs.Recorder.dropped_spans t);
  (* dropped spans still feed the layer histogram *)
  match Obs.Recorder.histogram t "span/net" with
  | Some h -> check Alcotest.int "histogram sees all" 10 (Obs.Histogram.count h)
  | None -> Alcotest.fail "missing histogram"

(* --- Chrome trace JSON round-trip --- *)

let test_trace_json_roundtrip () =
  let t, now = manual_recorder () in
  let outer = Obs.Recorder.span_begin t ~layer:"shim" "call \"q\"\\n" in
  now := 1_500L;
  let inner = Obs.Recorder.span_begin t ~layer:"rpc" "call xid=1" in
  now := 2_750L;
  Obs.Recorder.span_end t inner;
  now := 9_001L;
  Obs.Recorder.span_end t outer;
  (* a retroactive root event, the way GPU completions are recorded *)
  Obs.Recorder.span_event t ~layer:"gpu" ~name:"matrixMul"
    ~start_ns:5_000L ~stop_ns:12_345L;
  Obs.Recorder.incr t ~by:3 "rpc.retry";
  let json = Obs.Trace_export.to_json t in
  let events = Obs.Trace_export.events_of_json json in
  let spans =
    List.filter_map
      (function Obs.Trace_export.Span s -> Some s | _ -> None)
      events
  in
  let counters =
    List.filter_map
      (function
        | Obs.Trace_export.Counter { name; value } -> Some (name, value)
        | _ -> None)
      events
  in
  (* exact ns timestamps round-trip through the µs-based ts/dur fields *)
  let original = Obs.Recorder.spans t in
  check Alcotest.int "span count" (List.length original) (List.length spans);
  List.iter2
    (fun (a : Obs.Recorder.span_info) (b : Obs.Recorder.span_info) ->
      check Alcotest.int "id" a.id b.id;
      check Alcotest.int "parent" a.parent b.parent;
      check Alcotest.string "name" a.name b.name;
      check Alcotest.string "layer" a.layer b.layer;
      check Alcotest.int64 "start" a.start_ns b.start_ns;
      check Alcotest.int64 "stop" a.stop_ns b.stop_ns)
    original spans;
  check Alcotest.(list (pair string int)) "counters" [ ("rpc.retry", 3) ]
    counters;
  (* the nesting invariant holds on the round-tripped spans *)
  (match Obs.Trace_export.check_nesting spans with
  | Ok () -> ()
  | Error e -> Alcotest.failf "nesting: %s" e);
  (* and the validator actually rejects a child escaping its parent *)
  let bad =
    [
      { Obs.Recorder.id = 0; parent = -1; name = "p"; layer = "a";
        start_ns = 0L; stop_ns = 10L };
      { Obs.Recorder.id = 1; parent = 0; name = "c"; layer = "a";
        start_ns = 5L; stop_ns = 20L };
    ]
  in
  match Obs.Trace_export.check_nesting bad with
  | Ok () -> Alcotest.fail "expected nesting violation"
  | Error _ -> ()

let test_trace_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Trace_export.events_of_json s with
      | _ -> Alcotest.failf "expected Parse_error on %S" s
      | exception Obs.Trace_export.Parse_error _ -> ())
    [ ""; "{"; "[]"; "{\"traceEvents\": 3}"; "{\"traceEvents\":[]} trailing" ]

(* --- end-to-end layer decomposition --- *)

let small_mm = { Apps.Matrix_mul.ha = 32; wa = 32; wb = 32; iterations = 2 }

let layers_of obs =
  List.sort_uniq compare
    (List.map (fun s -> s.Obs.Recorder.layer) (Obs.Recorder.spans obs))

let test_run_layer_decomposition () =
  let obs = Obs.Recorder.create () in
  Obs.Recorder.set_enabled obs true;
  let m =
    Unikernel.Runner.run ~obs Unikernel.Config.unikraft
      (Apps.Matrix_mul.run ~verify:true small_mm)
  in
  let layers = layers_of obs in
  List.iter
    (fun l ->
      check Alcotest.bool (Printf.sprintf "layer %s present" l) true
        (List.mem l layers))
    [ "shim"; "rpc"; "net"; "dispatch"; "gpu" ];
  (* decomposition sanity: each inner layer fits inside the outer one *)
  let total l = Obs.Recorder.layer_total_ns obs l in
  let elapsed = m.Unikernel.Runner.elapsed in
  check Alcotest.bool "shim <= elapsed" true (total "shim" <= elapsed);
  check Alcotest.bool "rpc <= shim" true (total "rpc" <= total "shim");
  check Alcotest.bool "net <= rpc" true (total "net" <= total "rpc");
  check Alcotest.bool "gpu spans have width" true (total "gpu" > 0L);
  (* dispatch spans carry the RPCL procedure names with xids *)
  check Alcotest.bool "dispatch names resolved" true
    (List.exists
       (fun s ->
         s.Obs.Recorder.layer = "dispatch"
         && String.length s.Obs.Recorder.name >= 4
         && String.sub s.Obs.Recorder.name 0 4 = "rpc_")
       (Obs.Recorder.spans obs));
  (* nesting is structurally valid for the whole run *)
  match Obs.Trace_export.check_nesting (Obs.Recorder.spans obs) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "nesting: %s" e

let test_run_tcp_layer_decomposition () =
  let obs = Obs.Recorder.create () in
  Obs.Recorder.set_enabled obs true;
  let _m, channel =
    Unikernel.Runner.run_tcp ~obs Unikernel.Config.hermit
      (Apps.Matrix_mul.run ~verify:true small_mm)
  in
  ignore channel;
  let layers = layers_of obs in
  List.iter
    (fun l ->
      check Alcotest.bool (Printf.sprintf "tcp layer %s present" l) true
        (List.mem l layers))
    [ "shim"; "rpc"; "net"; "dispatch"; "gpu" ];
  (* the executable stack path also exports a valid Chrome trace *)
  let events = Obs.Trace_export.events_of_json (Obs.Trace_export.to_json obs) in
  check Alcotest.bool "export is non-trivial" true (List.length events > 10)

let test_run_without_obs_records_nothing () =
  (* the default path must stay dark: no recorder, no events anywhere *)
  let m =
    Unikernel.Runner.run Unikernel.Config.rust_native
      (Apps.Matrix_mul.run ~verify:true small_mm)
  in
  check Alcotest.bool "run still measures" true
    (m.Unikernel.Runner.elapsed > 0L);
  check Alcotest.int "null recorder untouched" 0
    (List.length (Obs.Recorder.spans Obs.Recorder.null))

let suite =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram clamps and extremes" `Quick
      test_histogram_clamps_and_extremes;
    Alcotest.test_case "histogram skew" `Quick test_histogram_skew;
    Alcotest.test_case "disabled recorder is inert" `Quick
      test_recorder_disabled_records_nothing;
    Alcotest.test_case "span nesting and layer totals" `Quick
      test_recorder_nesting_and_layers;
    Alcotest.test_case "with_span closes on exceptions" `Quick
      test_recorder_with_span_and_exceptions;
    Alcotest.test_case "counters and reset" `Quick
      test_recorder_counters_and_reset;
    Alcotest.test_case "span cap and dropped accounting" `Quick
      test_recorder_span_cap;
    Alcotest.test_case "Chrome trace JSON round-trip" `Quick
      test_trace_json_roundtrip;
    Alcotest.test_case "trace JSON parser rejects garbage" `Quick
      test_trace_json_rejects_garbage;
    Alcotest.test_case "run layer decomposition" `Quick
      test_run_layer_decomposition;
    Alcotest.test_case "run_tcp layer decomposition" `Quick
      test_run_tcp_layer_decomposition;
    Alcotest.test_case "run without obs records nothing" `Quick
      test_run_without_obs_records_nothing;
  ]
