(* The parallel runtime: domain-safe work queues, the work-stealing
   domain pool, and the deterministic virtual-time merge — plus the
   cross-layer determinism contract it all exists for: a sharded loadgen
   run must render byte-identically no matter how many domains executed
   it, and shared-state hot paths (Obs counters, xid allocation) must
   sum exactly under concurrent bumps from several domains. *)

module Time = Simnet.Time
module Merge = Par.Merge
module Pool = Par.Pool
module Chan = Par.Chan

let check = Alcotest.check

(* --- chan --- *)

let test_chan_fifo () =
  let q = Chan.create () in
  check Alcotest.bool "fresh empty" true (Chan.is_empty q);
  List.iter (Chan.push q) [ 1; 2; 3 ];
  check Alcotest.int "length" 3 (Chan.length q);
  check Alcotest.(option int) "pop 1" (Some 1) (Chan.try_pop q);
  check Alcotest.(option int) "pop 2" (Some 2) (Chan.try_pop q);
  Chan.push q 4;
  check Alcotest.(option int) "pop 3" (Some 3) (Chan.try_pop q);
  check Alcotest.(option int) "pop 4" (Some 4) (Chan.try_pop q);
  check Alcotest.(option int) "drained" None (Chan.try_pop q)

(* --- pool --- *)

let test_pool_order () =
  (* results land by job index, for any domain count (including more
     domains than jobs, and zero jobs) *)
  List.iter
    (fun domains ->
      let r = Pool.run ~domains 7 (fun i -> i * i) in
      check Alcotest.(list int) "squares in order"
        [ 0; 1; 4; 9; 16; 25; 36 ]
        (Array.to_list r))
    [ 1; 2; 4; 16 ];
  check Alcotest.int "zero jobs" 0 (Array.length (Pool.run ~domains:4 0 (fun i -> i)))

exception Boom of int

let test_pool_exception () =
  (* the lowest-indexed failure surfaces, regardless of scheduling *)
  List.iter
    (fun domains ->
      match
        Pool.run ~domains 8 (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check Alcotest.int "lowest failure" 2 i)
    [ 1; 4 ]

let test_pool_concurrent_sum () =
  (* jobs visibly run on distinct domains yet the fold over results is
     exact: no job lost, duplicated, or misfiled *)
  let n = 64 in
  let r = Pool.map ~domains:4 (fun i -> i) (List.init n (fun i -> i)) in
  check Alcotest.int "sum" (n * (n - 1) / 2) (List.fold_left ( + ) 0 r)

(* --- merge --- *)

let ev vtime shard seq payload = { Merge.vtime; shard; seq; payload }

let test_merge_tie_order () =
  (* equal vtime: shard id breaks the tie, then per-shard seq *)
  let s0 = [| ev 5L 0 0 "a"; ev 10L 0 1 "b" |] in
  let s1 = [| ev 5L 1 0 "c"; ev 5L 1 1 "d"; ev 7L 1 2 "e" |] in
  let merged = Merge.merge [| s0; s1 |] in
  check Alcotest.(list string) "total order"
    [ "a"; "c"; "d"; "e"; "b" ]
    (Array.to_list (Array.map (fun e -> e.Merge.payload) merged))

let test_merge_rejects_unsorted () =
  let bad = [| ev 10L 0 0 (); ev 5L 0 1 () |] in
  match Merge.merge [| bad |] with
  | _ -> Alcotest.fail "expected invalid_arg"
  | exception Invalid_argument _ -> ()

let test_merge_digest_order_sensitive () =
  let s0 = [| ev 1L 0 0 7; ev 3L 0 1 9 |] in
  let s1 = [| ev 2L 1 0 8 |] in
  let payload = Int64.of_int in
  let d = Merge.digest ~payload (Merge.merge [| s0; s1 |]) in
  (* stream array position is execution detail, not identity: shard ids
     ride in the events, so swapping the arrays merges identically *)
  let d' = Merge.digest ~payload (Merge.merge [| s1; s0 |]) in
  check Alcotest.bool "stream position irrelevant" true (Int64.equal d d');
  let shifted =
    Merge.digest ~payload (Merge.merge [| s0; [| ev 4L 1 0 8 |] |])
  in
  check Alcotest.bool "timeline order included" false (Int64.equal d shifted);
  let tweaked = Merge.digest ~payload (Merge.merge [| s0; [| ev 2L 1 0 99 |] |]) in
  check Alcotest.bool "payload included" false (Int64.equal d tweaked)

let qcheck_merge_sorted =
  (* any set of well-formed shard streams merges into one totally ordered
     timeline that is an exact permutation of its inputs *)
  let gen =
    QCheck.make
      ~print:(fun streams ->
        String.concat ";"
          (List.map
             (fun s -> Printf.sprintf "[%d evs]" (List.length s))
             streams))
      QCheck.Gen.(
        let stream shard =
          list_size (int_bound 20) (pair (int_bound 50) (int_bound 1000))
          >|= fun raw ->
          (* sort raw times, then stamp strictly increasing seq: a
             well-formed per-shard stream by construction *)
          let times = List.sort compare (List.map fst raw) in
          List.mapi
            (fun seq t -> ev (Int64.of_int t) shard seq (List.nth raw seq |> snd))
            times
        in
        int_range 1 5 >>= fun k ->
        let rec build s acc =
          if s >= k then return (List.rev acc)
          else stream s >>= fun st -> build (s + 1) (st :: acc)
        in
        build 0 [])
  in
  QCheck.Test.make ~name:"merge: sorted permutation of inputs" ~count:100 gen
    (fun streams ->
      let arrays = Array.of_list (List.map Array.of_list streams) in
      let merged = Merge.merge arrays in
      (* totally ordered *)
      let sorted = ref true in
      Array.iteri
        (fun i e ->
          if i > 0 && Merge.key_compare merged.(i - 1) e >= 0 then
            sorted := false)
        merged;
      (* permutation: same multiset of events *)
      let flat = List.concat streams in
      let norm l =
        List.sort compare
          (List.map (fun e -> (e.Merge.vtime, e.Merge.shard, e.Merge.seq)) l)
      in
      !sorted && norm flat = norm (Array.to_list merged))

let test_merge_replay () =
  (* replay drives the engine clock to the last completion and delivers
     events in merge order, including same-instant ties *)
  let s0 = [| ev 5L 0 0 "a"; ev 9L 0 1 "d" |] in
  let s1 = [| ev 5L 1 0 "b"; ev 5L 1 1 "c" |] in
  let merged = Merge.merge [| s0; s1 |] in
  let engine = Simnet.Engine.create () in
  let seen = ref [] in
  Merge.replay ~engine merged (fun e -> seen := e.Merge.payload :: !seen);
  check Alcotest.(list string) "replay order" [ "a"; "b"; "c"; "d" ]
    (List.rev !seen);
  check Alcotest.int "makespan" 9 (Int64.to_int (Simnet.Engine.now engine))

(* --- topology --- *)

let test_topology_partition () =
  let shards = 4 and n = 11 in
  let parts = Par.Topology.partition ~shards ~n in
  let all = Array.to_list parts |> Array.concat |> Array.to_list in
  check Alcotest.int "covers every key" n (List.length all);
  check Alcotest.(list int) "each key exactly once"
    (List.init n (fun i -> i))
    (List.sort compare all);
  Array.iteri
    (fun s members ->
      Array.iter
        (fun k ->
          check Alcotest.int "owner agrees" s (Par.Topology.owner ~shards k))
        members)
    parts

(* --- shared-state exactness under concurrent domains --- *)

let test_obs_counters_parallel () =
  (* concurrent bumps from N domains sum exactly: the counters are
     atomic, the table find-or-create is locked *)
  let obs = Obs.Recorder.create () in
  let domains = 4 and per = 10_000 in
  Obs.Recorder.set_enabled obs true;
  let (_ : unit array) =
    Pool.run ~domains domains (fun d ->
        for i = 1 to per do
          Obs.Recorder.incr obs "par.bumps";
          if i mod 2 = 0 then Obs.Recorder.incr obs ~by:d "par.weighted"
        done)
  in
  check Alcotest.int "unit bumps exact" (domains * per)
    (Obs.Recorder.counter obs "par.bumps");
  check Alcotest.int "weighted bumps exact"
    (per / 2 * (domains * (domains - 1) / 2))
    (Obs.Recorder.counter obs "par.weighted")

let qcheck_obs_counters =
  QCheck.Test.make ~name:"obs: concurrent counter bumps sum exactly" ~count:20
    QCheck.(pair (int_range 2 6) (int_range 1 500))
    (fun (domains, per) ->
      let obs = Obs.Recorder.create () in
      Obs.Recorder.set_enabled obs true;
      let (_ : unit array) =
        Pool.run ~domains domains (fun _ ->
            for _ = 1 to per do
              Obs.Recorder.incr obs "qc.bumps"
            done)
      in
      Obs.Recorder.counter obs "qc.bumps" = domains * per)

let test_xid_alloc_parallel () =
  (* xid reservation is a lock-free fetch-and-add: four domains pulling
     from one client never collide *)
  let client =
    Oncrpc.Client.create
      ~transport:(Oncrpc.Transport.loopback ~peer:(fun s -> s))
      ~prog:1 ~vers:1 ()
  in
  let domains = 4 and per = 2_000 in
  let batches =
    Pool.run ~domains domains (fun _ ->
        Array.init per (fun _ -> Oncrpc.Client.alloc_xid client))
  in
  let all = Array.concat (Array.to_list batches) in
  let tbl = Hashtbl.create (domains * per) in
  Array.iter (fun x -> Hashtbl.replace tbl x ()) all;
  check Alcotest.int "all xids distinct" (domains * per) (Hashtbl.length tbl)

(* --- the contract: sharded loadgen is domain-count independent --- *)

let tiny =
  {
    Tenancy.Loadgen.smoke with
    Tenancy.Loadgen.tenants = 48;
    items_per_tenant = 3;
    policies = [ Cricket.Sched.Round_robin ];
  }

let test_loadgen_domain_independent () =
  let render domains =
    Tenancy.Loadgen.to_string
      (Tenancy.Loadgen.run { tiny with Tenancy.Loadgen.domains })
  in
  let one = render 1 in
  check Alcotest.string "domains 2 byte-identical" one (render 2);
  check Alcotest.string "domains 4 byte-identical" one (render 4);
  check Alcotest.string "domains 8 byte-identical" one (render 8)

let test_loadgen_shards_in_digest () =
  (* the shard split is part of the workload definition: changing it is
     allowed to change the timeline (and so the digest), unlike the
     domain count which never may *)
  let run shards =
    match Tenancy.Loadgen.run { tiny with Tenancy.Loadgen.shards } with
    | [ r ] -> r.Tenancy.Loadgen.digest
    | _ -> Alcotest.fail "one policy expected"
  in
  check Alcotest.bool "same shards, same digest" true
    (Int64.equal (run 4) (run 4));
  (* different shard counts interleave tenants differently; the digests
     observably differ for this workload *)
  check Alcotest.bool "different shards may differ" false
    (Int64.equal (run 1) (run 4))

let suite =
  [
    Alcotest.test_case "chan: fifo" `Quick test_chan_fifo;
    Alcotest.test_case "pool: results in job order" `Quick test_pool_order;
    Alcotest.test_case "pool: lowest failure wins" `Quick test_pool_exception;
    Alcotest.test_case "pool: concurrent sum exact" `Quick
      test_pool_concurrent_sum;
    Alcotest.test_case "merge: tie order" `Quick test_merge_tie_order;
    Alcotest.test_case "merge: rejects unsorted" `Quick
      test_merge_rejects_unsorted;
    Alcotest.test_case "merge: digest order+payload" `Quick
      test_merge_digest_order_sensitive;
    QCheck_alcotest.to_alcotest qcheck_merge_sorted;
    Alcotest.test_case "merge: replay into engine" `Quick test_merge_replay;
    Alcotest.test_case "topology: exact partition" `Quick
      test_topology_partition;
    Alcotest.test_case "obs: parallel counters exact" `Quick
      test_obs_counters_parallel;
    QCheck_alcotest.to_alcotest qcheck_obs_counters;
    Alcotest.test_case "oncrpc: parallel xid alloc distinct" `Quick
      test_xid_alloc_parallel;
    Alcotest.test_case "loadgen: byte-identical across domains" `Quick
      test_loadgen_domain_independent;
    Alcotest.test_case "loadgen: shards are workload, not execution" `Quick
      test_loadgen_shards_in_digest;
  ]
