(* CUDA streams and asynchronous RPC pipelining: stream-ordered timing in
   gpusim, one-way and pipelined calls in oncrpc, and the client-side
   command queue (Cricket.Stream) end to end — including the acceptance
   property that deep pipelines beat depth 1 while staying bit-exact. *)

module Time = Simnet.Time
module E = Xdr.Encode
module D = Xdr.Decode

let check = Alcotest.check

(* --- gpusim: FIFO command queue arithmetic --- *)

let test_stream_fifo_timing () =
  let s = Gpusim.Stream.create ~id:7 in
  check Alcotest.int "id" 7 (Gpusim.Stream.id s);
  check Alcotest.int "empty" 0 (Gpusim.Stream.pending s);
  (* first command starts at now *)
  let f1 =
    Gpusim.Stream.enqueue s ~now:(Time.us 10) ~seq:1
      ~op:(Gpusim.Stream.Memset 4096) ~cost:(Time.us 5)
  in
  check Alcotest.int "f1 = 15us" 0 (Time.compare f1 (Time.us 15));
  (* second command serializes behind the first even though now < f1 *)
  let f2 =
    Gpusim.Stream.enqueue s ~now:(Time.us 11) ~seq:2
      ~op:(Gpusim.Stream.Kernel_launch "saxpy") ~cost:(Time.us 3)
  in
  check Alcotest.int "f2 = 18us" 0 (Time.compare f2 (Time.us 18));
  check Alcotest.int "completion" 0
    (Time.compare (Gpusim.Stream.completion s) f2);
  check Alcotest.int "two pending" 2 (Gpusim.Stream.pending s);
  (match Gpusim.Stream.pending_commands s with
  | [ c1; c2 ] ->
      check Alcotest.int "fifo order" 1 c1.Gpusim.Stream.seq;
      check Alcotest.int "fifo order" 2 c2.Gpusim.Stream.seq;
      check Alcotest.int "c2 starts at c1 finish" 0
        (Time.compare c2.Gpusim.Stream.start c1.Gpusim.Stream.finish)
  | cs -> Alcotest.failf "expected 2 commands, got %d" (List.length cs));
  (* retiring at 15us drops only the finished first command *)
  Gpusim.Stream.retire s ~now:(Time.us 15);
  check Alcotest.int "one left" 1 (Gpusim.Stream.pending s);
  Gpusim.Stream.retire s ~now:(Time.us 18);
  check Alcotest.int "drained" 0 (Gpusim.Stream.pending s)

let test_stream_wait_event () =
  let s = Gpusim.Stream.create ~id:1 in
  (* waiting on a never-recorded event is a no-op, per CUDA *)
  Gpusim.Stream.wait_event s ~seq:1 ~event:9 ~time:None;
  check Alcotest.int "no-op wait" 0 (Gpusim.Stream.pending s);
  check Alcotest.int "completion unchanged" 0
    (Time.compare (Gpusim.Stream.completion s) Time.zero);
  (* a recorded event lifts the stream's completion to the event time *)
  Gpusim.Stream.wait_event s ~seq:2 ~event:9 ~time:(Some (Time.us 100));
  let f =
    Gpusim.Stream.enqueue s ~now:Time.zero ~seq:3
      ~op:(Gpusim.Stream.Memset 16) ~cost:(Time.us 1)
  in
  check Alcotest.int "starts after event" 0 (Time.compare f (Time.us 101))

let test_event_elapsed () =
  let e1 = Gpusim.Event.create ~id:1 and e2 = Gpusim.Event.create ~id:2 in
  check Alcotest.bool "unrecorded" false (Gpusim.Event.is_recorded e1);
  (match Gpusim.Event.elapsed_ms ~start:e1 ~stop:e2 with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ());
  Gpusim.Event.record e1 (Time.ms 2);
  Gpusim.Event.record e2 (Time.ms 5);
  check (Alcotest.float 1e-9) "elapsed" 3.0
    (Gpusim.Event.elapsed_ms ~start:e1 ~stop:e2);
  (* re-recording overwrites, latest wins *)
  Gpusim.Event.record e2 (Time.ms 4);
  check (Alcotest.float 1e-9) "re-recorded" 2.0
    (Gpusim.Event.elapsed_ms ~start:e1 ~stop:e2)

(* --- gpusim: streams overlap on the device, serialize within --- *)

let test_gpu_streams_overlap () =
  let g = Gpusim.Gpu.create ~memory_capacity:(1 lsl 20) Gpusim.Device.a100 in
  let m = Gpusim.Gpu.memory g in
  let p = Gpusim.Memory.alloc m 65536 in
  let s1 = Gpusim.Gpu.stream_create g and s2 = Gpusim.Gpu.stream_create g in
  let f1 = Gpusim.Gpu.memset g ~now:Time.zero ~stream:s1 ~ptr:p ~value:1 65536 in
  let f2 = Gpusim.Gpu.memset g ~now:Time.zero ~stream:s2 ~ptr:p ~value:2 65536 in
  (* within one stream commands serialize *)
  let f1b = Gpusim.Gpu.memset g ~now:Time.zero ~stream:s1 ~ptr:p ~value:3 65536 in
  check Alcotest.bool "same stream serializes" true (Time.compare f1b f1 > 0);
  check Alcotest.int "s1 pipeline depth" 2 (Gpusim.Gpu.stream_pending g s1);
  check Alcotest.int "s2 pipeline depth" 1 (Gpusim.Gpu.stream_pending g s2);
  (* per-stream sync retires only that stream's finished commands *)
  let (_ : Time.t) = Gpusim.Gpu.stream_synchronize g ~now:Time.zero s1 in
  check Alcotest.int "s1 retired" 0 (Gpusim.Gpu.stream_pending g s1);
  check Alcotest.int "s2 untouched" 1 (Gpusim.Gpu.stream_pending g s2);
  (* both streams started at t=0: the device finishes when the slower one
     does, not after the sum of all three commands *)
  let dev = Gpusim.Gpu.synchronize g ~now:Time.zero in
  check Alcotest.int "device completion = max stream" 0
    (Time.compare dev (if Time.compare f1b f2 >= 0 then f1b else f2));
  check Alcotest.bool "not serialized across streams" true
    (Time.compare dev (Time.add f1b f2) < 0);
  check Alcotest.int "device sync retires everything" 0
    (Gpusim.Gpu.stream_pending g s2)

let test_gpu_cross_stream_event () =
  let g = Gpusim.Gpu.create ~memory_capacity:(1 lsl 20) Gpusim.Device.a100 in
  let m = Gpusim.Gpu.memory g in
  let p = Gpusim.Memory.alloc m 65536 in
  let s1 = Gpusim.Gpu.stream_create g and s2 = Gpusim.Gpu.stream_create g in
  let ev = Gpusim.Gpu.event_create g in
  let f1 = Gpusim.Gpu.memset g ~now:Time.zero ~stream:s1 ~ptr:p ~value:1 65536 in
  Gpusim.Gpu.event_record g ~now:Time.zero ~event:ev ~stream:s1;
  Gpusim.Gpu.stream_wait_event g ~stream:s2 ~event:ev;
  let f2 = Gpusim.Gpu.memset g ~now:Time.zero ~stream:s2 ~ptr:p ~value:2 65536 in
  (* s2's first command cannot start before s1's recorded completion *)
  check Alcotest.bool "cross-stream dependency" true (Time.compare f2 f1 > 0);
  match Gpusim.Gpu.stream_commands g s2 with
  | [ w; c ] ->
      check Alcotest.bool "wait command recorded" true
        (match w.Gpusim.Stream.op with
        | Gpusim.Stream.Wait_event e -> e = ev
        | _ -> false);
      check Alcotest.int "starts at event time" 0
        (Time.compare c.Gpusim.Stream.start f1)
  | cs -> Alcotest.failf "expected wait+memset, got %d" (List.length cs)

(* --- oncrpc: one-way calls --- *)

let make_sum_server () =
  let server = Oncrpc.Server.create () in
  let hits = ref 0 in
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [
      ( 1,
        fun dec enc ->
          incr hits;
          E.int enc (D.int dec * 2) );
      ( 2,
        fun dec _enc ->
          incr hits;
          ignore (D.int dec) );
    ];
  Oncrpc.Server.set_oneway server ~prog:300000 ~vers:1 [ 2 ];
  (server, hits)

let call_record ~xid ~proc v =
  let enc = E.create () in
  Oncrpc.Message.encode enc
    (Oncrpc.Message.call ~xid ~prog:300000 ~vers:1 ~proc ());
  E.int enc v;
  E.to_string enc

let test_oneway_dispatch () =
  let server, hits = make_sum_server () in
  (* a one-way proc runs the handler but produces no reply record *)
  check
    (Alcotest.option Alcotest.string)
    "one-way: no reply" None
    (Oncrpc.Server.dispatch_opt server (call_record ~xid:1l ~proc:2 5));
  check Alcotest.int "handler ran" 1 !hits;
  check Alcotest.string "dispatch flattens to empty" ""
    (Oncrpc.Server.dispatch server (call_record ~xid:2l ~proc:2 5));
  (* a two-way proc still replies *)
  (match Oncrpc.Server.dispatch_opt server (call_record ~xid:3l ~proc:1 5) with
  | Some reply ->
      let dec = D.of_string reply in
      (match Oncrpc.Message.decode dec with
      | { Oncrpc.Message.xid = 3l; body = Oncrpc.Message.Reply _ } -> ()
      | _ -> Alcotest.fail "bad reply");
      check Alcotest.int "result" 10 (D.int dec)
  | None -> Alcotest.fail "two-way call must reply");
  (* protocol-level errors on a one-way proc number still reply: the
     suppression only applies once the call resolves to a one-way handler *)
  match
    Oncrpc.Server.dispatch_opt server
      (let enc = E.create () in
       Oncrpc.Message.encode enc
         (Oncrpc.Message.call ~xid:4l ~prog:300000 ~vers:9 ~proc:2 ());
       E.to_string enc)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "version mismatch must still be reported"

let test_oneway_batch_single_round_trip () =
  (* N one-way calls + 1 synchronous call through the buffered loopback
     transport: the reply stream contains exactly the one reply, and the
     sync reply is matched correctly despite the preceding batch *)
  let server, hits = make_sum_server () in
  let transport =
    Cricket.Local.transport_of_dispatch (Oncrpc.Server.dispatch server)
  in
  let client = Oncrpc.Client.create ~transport ~prog:300000 ~vers:1 () in
  for i = 1 to 10 do
    Oncrpc.Client.call_oneway client ~proc:2 (fun enc -> E.int enc i)
  done;
  check Alcotest.int "one-way calls not yet delivered" 0 !hits;
  let sum = Oncrpc.Client.call client ~proc:1 (fun enc -> E.int enc 21) D.int in
  check Alcotest.int "sync reply matched after batch" 42 sum;
  check Alcotest.int "whole batch delivered in order" 11 !hits

(* --- oncrpc: pipelined calls with out-of-order replies --- *)

let test_pipelined_out_of_order () =
  let client_t, server_t = Oncrpc.Transport.pipe () in
  (* a hand-rolled server that reads two calls, then answers them in
     REVERSE order: only xid matching can pair them up correctly *)
  let server_thread =
    Thread.create
      (fun () ->
        let read_call () =
          let dec = D.of_string (Oncrpc.Record.read server_t) in
          let msg = Oncrpc.Message.decode dec in
          (msg.Oncrpc.Message.xid, D.int dec)
        in
        let c1 = read_call () in
        let c2 = read_call () in
        List.iter
          (fun (xid, v) ->
            let enc = E.create () in
            Oncrpc.Message.encode enc (Oncrpc.Message.reply_success ~xid ());
            E.int enc (v * 2);
            Oncrpc.Record.write server_t (E.to_string enc))
          [ c2; c1 ])
      ()
  in
  let client =
    Oncrpc.Concurrent.create ~transport:client_t ~prog:300000 ~vers:1 ()
  in
  let p1 =
    Oncrpc.Concurrent.call_pipelined client ~proc:1 (fun e -> E.int e 10) D.int
  in
  let p2 =
    Oncrpc.Concurrent.call_pipelined client ~proc:1 (fun e -> E.int e 20) D.int
  in
  check Alcotest.int "two in flight" 2 (Oncrpc.Concurrent.outstanding client);
  check Alcotest.int "p2 despite reversed replies" 40
    (Oncrpc.Concurrent.await p2);
  check Alcotest.int "p1 despite reversed replies" 20
    (Oncrpc.Concurrent.await p1);
  check Alcotest.int "await is idempotent" 20 (Oncrpc.Concurrent.await p1);
  check Alcotest.int "none left" 0 (Oncrpc.Concurrent.outstanding client);
  Thread.join server_thread;
  Oncrpc.Concurrent.close client

let test_pipelined_close_fails_outstanding () =
  (* a server that never answers: close must fail the queued promise *)
  let client_t, _server_t = Oncrpc.Transport.pipe () in
  let client =
    Oncrpc.Concurrent.create ~transport:client_t ~prog:300000 ~vers:1 ()
  in
  let p =
    Oncrpc.Concurrent.call_pipelined client ~proc:1 (fun e -> E.int e 1) D.int
  in
  check Alcotest.bool "not ready" false (Oncrpc.Concurrent.is_ready p);
  Oncrpc.Concurrent.close client;
  match Oncrpc.Concurrent.await p with
  | _ -> Alcotest.fail "await after close must raise"
  | exception Oncrpc.Transport.Closed -> ()

(* --- cricket: client-side command queue end to end --- *)

let make_pair () =
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 26)
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  (engine, Cricket.Local.connect server)

let test_stream_queue_and_flush () =
  let _, client = make_pair () in
  let s = Cricket.Stream.create client in
  let calls0 = Cricket.Client.api_calls client in
  let p = Cricket.Client.malloc client 4096 in
  Cricket.Stream.memset_async s ~ptr:p ~value:7 ~len:4096;
  Cricket.Stream.memcpy_h2d_async s ~dst:p (Bytes.make 4096 'x');
  check Alcotest.int "queued locally" 2 (Cricket.Stream.pending s);
  check Alcotest.int "no wire traffic before flush"
    (calls0 + 1) (* the malloc *)
    (Cricket.Client.api_calls client);
  Cricket.Stream.flush s;
  check Alcotest.int "queue drained" 0 (Cricket.Stream.pending s);
  check Alcotest.bool "commands hit the wire" true
    (Cricket.Client.api_calls client > calls0 + 1);
  (* stream-ordered download sees both commands' effects in order *)
  let back = Cricket.Stream.download s ~src:p ~len:4096 in
  check Alcotest.bool "memcpy after memset wins" true
    (Bytes.equal back (Bytes.make 4096 'x'));
  Cricket.Stream.destroy s

let test_stream_async_matches_sync () =
  (* the same command sequence, synchronous vs stream-ordered: results
     must be bit-identical *)
  let run use_stream =
    let _, client = make_pair () in
    let n = 1024 in
    let modul = Apps.Workload.load_standard_module client in
    let saxpy =
      Apps.Workload.get_kernel client ~modul Gpusim.Kernels.saxpy_name
    in
    let x = Cricket.Client.malloc client (4 * n) in
    let y = Cricket.Client.malloc client (4 * n) in
    let grid = { Cricket.Client.x = (n + 255) / 256; y = 1; z = 1 } in
    let block = { Cricket.Client.x = 256; y = 1; z = 1 } in
    let args i =
      [|
        Gpusim.Kernels.F32 (0.25 *. float_of_int i);
        Gpusim.Kernels.Ptr (Int64.to_int x);
        Gpusim.Kernels.Ptr (Int64.to_int y);
        Gpusim.Kernels.I32 (Int32.of_int n);
      |]
    in
    let input i =
      Apps.Workload.f32_bytes
        (Array.init n (fun j -> float_of_int (((i * 13) + j) mod 5)))
    in
    Cricket.Client.memcpy_h2d client ~dst:y
      (Apps.Workload.f32_bytes (Apps.Workload.fill_constant n 1.0));
    let out =
      if use_stream then begin
        let s = Cricket.Stream.create client in
        for i = 1 to 8 do
          Cricket.Stream.memcpy_h2d_async s ~dst:x (input i);
          Cricket.Stream.launch_async s saxpy ~grid ~block (args i)
        done;
        let out = Cricket.Stream.download s ~src:y ~len:(4 * n) in
        Cricket.Stream.destroy s;
        out
      end
      else begin
        for i = 1 to 8 do
          Cricket.Client.memcpy_h2d client ~dst:x (input i);
          Cricket.Client.launch client saxpy ~grid ~block (args i);
          Cricket.Client.device_synchronize client
        done;
        Cricket.Client.memcpy_d2h client ~src:y ~len:(4 * n)
      end
    in
    out
  in
  check Alcotest.bool "async result bit-identical to sync" true
    (Bytes.equal (run false) (run true))

let test_async_error_latches_until_sync () =
  let _, client = make_pair () in
  let s = Cricket.Stream.create client in
  (* an enqueued copy to an invalid pointer cannot fail at enqueue time;
     the error surfaces at the next synchronisation point *)
  Cricket.Stream.memcpy_h2d_async s ~dst:0xdead_beefL (Bytes.make 64 'z');
  Cricket.Stream.flush s;
  (match Cricket.Stream.synchronize s with
  | () -> Alcotest.fail "expected latched async error"
  | exception Cudasim.Error.Cuda_error _ -> ());
  (* the error is cleared once surfaced, cudaGetLastError-style *)
  Cricket.Stream.synchronize s;
  Cricket.Stream.destroy s

let test_lifetime_async_use_after_free () =
  let _, client = make_pair () in
  let s = Cricket.Stream.create client in
  let b = Cricket.Lifetime.alloc client 1024 in
  Cricket.Lifetime.upload_async b s (Bytes.make 1024 'a');
  (* freed with the upload still queued: the flush inside synchronize must
     refuse to touch the dead buffer *)
  Cricket.Lifetime.free b;
  (match Cricket.Stream.synchronize s with
  | () -> Alcotest.fail "expected Use_after_free at flush"
  | exception Cricket.Lifetime.Use_after_free -> ());
  (* enqueueing on an already-freed buffer fails fast *)
  (match Cricket.Lifetime.upload_async b s (Bytes.make 1024 'b') with
  | () -> Alcotest.fail "expected Use_after_free at enqueue"
  | exception Cricket.Lifetime.Use_after_free -> ());
  Cricket.Stream.destroy s

let test_stream_events_cross_stream () =
  let _, client = make_pair () in
  let s1 = Cricket.Stream.create client in
  let s2 = Cricket.Stream.create client in
  let ev = Cricket.Client.event_create client in
  let p = Cricket.Client.malloc client 65536 in
  Cricket.Stream.memset_async s1 ~ptr:p ~value:1 ~len:65536;
  Cricket.Stream.event_record s1 ev;
  Cricket.Stream.flush s1;
  Cricket.Stream.wait_event s2 ev;
  Cricket.Stream.memset_async s2 ~ptr:p ~value:2 ~len:256;
  Cricket.Stream.synchronize s2;
  let stop = Cricket.Client.event_create client in
  Cricket.Stream.event_record s2 stop;
  Cricket.Stream.synchronize s2;
  check Alcotest.bool "s2 finished after s1's event" true
    (Cricket.Stream.event_elapsed_ms s2 ~start:ev ~stop >= 0.0);
  Cricket.Stream.destroy s1;
  Cricket.Stream.destroy s2

(* --- acceptance: pipelining hides the virtualized-network round trip --- *)

let test_pipeline_depth_speedup () =
  let params = { Apps.Pipeline.rounds = 32; elements = 1024 } in
  let cfg = Unikernel.Config.hermit in
  let sync = Apps.Pipeline.measure ~params Apps.Pipeline.Sync cfg in
  let d1 = Apps.Pipeline.measure ~params (Apps.Pipeline.Async 1) cfg in
  let d16 = Apps.Pipeline.measure ~params (Apps.Pipeline.Async 16) cfg in
  List.iter
    (fun (r : Apps.Pipeline.result) ->
      check Alcotest.string
        (Printf.sprintf "%s bit-exact vs sync"
           (Apps.Pipeline.mode_name r.Apps.Pipeline.mode))
        (Digest.to_hex sync.Apps.Pipeline.digest)
        (Digest.to_hex r.Apps.Pipeline.digest))
    [ d1; d16 ];
  let t1 = Time.to_float_s d1.Apps.Pipeline.elapsed in
  let t16 = Time.to_float_s d16.Apps.Pipeline.elapsed in
  check Alcotest.bool
    (Printf.sprintf "depth 16 at least 2x depth 1 (%.3f vs %.3f ms)"
       (t16 *. 1e3) (t1 *. 1e3))
    true
    (t16 *. 2.0 <= t1)

let suite =
  [
    Alcotest.test_case "stream FIFO timing" `Quick test_stream_fifo_timing;
    Alcotest.test_case "stream wait_event" `Quick test_stream_wait_event;
    Alcotest.test_case "event elapsed" `Quick test_event_elapsed;
    Alcotest.test_case "gpu streams overlap" `Quick test_gpu_streams_overlap;
    Alcotest.test_case "gpu cross-stream event" `Quick
      test_gpu_cross_stream_event;
    Alcotest.test_case "one-way dispatch" `Quick test_oneway_dispatch;
    Alcotest.test_case "one-way batch, one round trip" `Quick
      test_oneway_batch_single_round_trip;
    Alcotest.test_case "pipelined out-of-order replies" `Quick
      test_pipelined_out_of_order;
    Alcotest.test_case "close fails outstanding pipelined" `Quick
      test_pipelined_close_fails_outstanding;
    Alcotest.test_case "stream queue and flush" `Quick
      test_stream_queue_and_flush;
    Alcotest.test_case "async matches sync bit-for-bit" `Quick
      test_stream_async_matches_sync;
    Alcotest.test_case "async error latches until sync" `Quick
      test_async_error_latches_until_sync;
    Alcotest.test_case "use-after-free caught at flush" `Quick
      test_lifetime_async_use_after_free;
    Alcotest.test_case "cross-stream events via RPC" `Quick
      test_stream_events_cross_stream;
    Alcotest.test_case "pipeline depth speedup (acceptance)" `Quick
      test_pipeline_depth_speedup;
  ]
