(* Incremental GPU checkpoints and live session migration under fault
   injection: dirty-page deltas at the arena and context layers, the
   pre-copy engine end to end through the two-server harness, adversarial
   fault plans on the migration channel (loss, partition, mid-transfer
   destination crash), crash-safe server checkpoint writes, and the
   journal-replay idempotence pin. The acceptance property throughout:
   after any outcome exactly one server is authoritative — handed off or
   rolled back, never half-moved — with the lease ledger consistent with
   that server's arena and the tenant's data byte-identical to a
   client-side mirror of every write. *)

module Time = Simnet.Time
module MH = Migrate.Harness
module ME = Migrate.Engine

let check = Alcotest.check

let pattern seed len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr ((i * 131 + seed * 17 + (i lsr 8)) land 0xff))
  done;
  b

(* --- arena-level dirty tracking and deltas --- *)

let test_memory_delta () =
  let open Gpusim.Memory in
  let a = create ~capacity:(1 lsl 20) in
  set_tracking a true;
  let p = alloc a (64 * 1024) in
  write a p (pattern 1 (64 * 1024));
  let base = snapshot a in
  clear_dirty a;
  let b = restore base in
  (* dirty a single region: the delta must carry pages, not the arena *)
  write a (p + 4096) (pattern 2 300);
  set_u8 a (p + 40000) 0x5a;
  check Alcotest.bool "writes marked dirty" true (dirty_page_count a > 0);
  let d = delta a in
  check Alcotest.int "delta clears the dirty set" 0 (dirty_page_count a);
  check Alcotest.bool "delta is smaller than a full snapshot" true
    (String.length d < String.length (snapshot a));
  (match apply_delta b d with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.string "delta reproduces the source arena"
    (Digest.to_hex (Digest.bytes (read a p (64 * 1024))))
    (Digest.to_hex (Digest.bytes (read b p (64 * 1024))));
  check Alcotest.int "allocation metadata followed" (allocation_size a p)
    (allocation_size b p)

let test_memory_snapshot_keeps_dirty () =
  (* a recovery checkpoint must not rebase the delta stream *)
  let open Gpusim.Memory in
  let a = create ~capacity:(1 lsl 18) in
  set_tracking a true;
  let p = alloc a 8192 in
  write a p (pattern 3 8192);
  let before = dirty_page_count a in
  ignore (snapshot a);
  check Alcotest.int "snapshot leaves the dirty set alone" before
    (dirty_page_count a)

(* --- context-level base + delta checkpoints --- *)

let make_server ?checkpoint_dir () =
  Cricket.Server.create ?checkpoint_dir
    ~clock:(Cudasim.Context.engine_clock (Simnet.Engine.create ()))
    ()

let test_context_delta () =
  let src = make_server () in
  let a = Cricket.Local.connect src in
  let buf = 256 * 1024 in
  let d = Cricket.Client.malloc a buf in
  let mirror = pattern 4 buf in
  Cricket.Client.memcpy_h2d a ~dst:d (Bytes.copy mirror);
  let ctx = Cricket.Server.context src in
  Cudasim.Context.set_dirty_tracking ctx true;
  let base = Cudasim.Context.checkpoint_base ctx in
  let dsts = make_server () in
  let ctxd = Cricket.Server.context dsts in
  (match Cudasim.Context.restore ctxd base with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* keep mutating the source, then ship only the delta *)
  let patch = pattern 5 2048 in
  Cricket.Client.memcpy_h2d a ~dst:(Int64.add d 65536L) (Bytes.copy patch);
  Bytes.blit patch 0 mirror 65536 2048;
  Cricket.Client.memset a ~ptr:(Int64.add d 131072L) ~value:0x42 ~len:512;
  Bytes.fill mirror 131072 512 '\x42';
  check Alcotest.bool "context reports dirty pages" true
    (Cudasim.Context.dirty_pages ctx > 0);
  let delta = Cudasim.Context.checkpoint_delta ctx in
  check Alcotest.int "delta drains the dirty set" 0
    (Cudasim.Context.dirty_pages ctx);
  check Alcotest.bool "delta is smaller than a full checkpoint" true
    (String.length delta < String.length (Cudasim.Context.checkpoint ctx));
  (match Cudasim.Context.restore_delta ctxd delta with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let b = Cricket.Local.connect dsts in
  let out = Cricket.Client.memcpy_d2h b ~src:d ~len:buf in
  check Alcotest.string "destination context matches the mirror"
    (Digest.to_hex (Digest.bytes mirror))
    (Digest.to_hex (Digest.bytes out))

(* --- the migration harness: shared invariant --- *)

let quick ?fault ?(dirty_kib = 32) () =
  {
    MH.default_params with
    MH.buf_kib = 128;
    batches = 12;
    pre_batches = 4;
    dirty_kib;
    fault;
  }

(* After any run exactly one server is authoritative, its lease ledger
   matches its arena, and the tenant's bytes survived. *)
let assert_single_authority (r : MH.report) =
  check Alcotest.bool "digest matches client-side mirror" true r.MH.digest_ok;
  match r.MH.outcome with
  | MH.Completed _ ->
      check Alcotest.bool "dst holds the lease" true
        r.MH.dst_audit.MH.lease_present;
      check Alcotest.bool "dst ledger live" true r.MH.dst_audit.MH.ledger_live;
      check Alcotest.int "dst ledger has the buffer" 1
        r.MH.dst_audit.MH.ledger_entries;
      check Alcotest.bool "src lease gone" false
        r.MH.src_audit.MH.lease_present;
      check Alcotest.int "src ledger empty" 0
        r.MH.src_audit.MH.ledger_entries;
      check Alcotest.int "src arena reclaimed" 0 r.MH.src_audit.MH.arena_used;
      check Alcotest.int "destination counted the adoption" 1 r.MH.migrations_in
  | MH.Aborted _ ->
      check Alcotest.bool "src still holds the lease" true
        r.MH.src_audit.MH.lease_present;
      check Alcotest.bool "src ledger live" true r.MH.src_audit.MH.ledger_live;
      check Alcotest.int "src ledger has the buffer" 1
        r.MH.src_audit.MH.ledger_entries;
      check Alcotest.bool "dst lease absent" false
        r.MH.dst_audit.MH.lease_present;
      check Alcotest.int "dst ledger empty" 0 r.MH.dst_audit.MH.ledger_entries

let test_migrate_clean () =
  let r = MH.run (quick ()) in
  (match r.MH.outcome with
  | MH.Completed rep ->
      check Alcotest.bool "pause within budget" true
        (Time.compare rep.ME.pause rep.ME.pause_budget <= 0);
      check Alcotest.bool "incremental beat full checkpoints" true
        (rep.ME.total_bytes < rep.ME.full_total_bytes);
      check Alcotest.bool "served during pre-copy" true (r.MH.served_during > 0)
  | MH.Aborted { phase; reason } ->
      Alcotest.fail
        (Printf.sprintf "clean run aborted at %s: %s"
           (ME.phase_to_string phase) reason));
  assert_single_authority r

let test_migrate_deterministic () =
  let digest_of p =
    let r = MH.run p in
    (r.MH.digest, r.MH.elapsed, r.MH.mig_stats.Unikernel.Simchannel.messages)
  in
  let d1 = digest_of (quick ~fault:(Simnet.Fault.drops ~seed:5 0.2) ()) in
  let d2 = digest_of (quick ~fault:(Simnet.Fault.drops ~seed:5 0.2) ()) in
  check Alcotest.bool "same seed, same run" true (d1 = d2)

let test_migrate_survives_drops () =
  let r = MH.run (quick ~fault:(Simnet.Fault.drops ~seed:11 0.25) ()) in
  (match r.MH.outcome with
  | MH.Completed _ -> ()
  | MH.Aborted { phase; reason } ->
      Alcotest.fail
        (Printf.sprintf "retries should absorb 25%% loss; aborted at %s: %s"
           (ME.phase_to_string phase) reason));
  (match r.MH.fault_stats with
  | Some s -> check Alcotest.bool "faults actually fired" true
                (s.Simnet.Fault.dropped > 0)
  | None -> Alcotest.fail "no fault stats");
  assert_single_authority r

let test_migrate_survives_partition () =
  (* the link is black-holed from t=0; the first migration RPCs land inside
     the window and must be retried past the heal *)
  let plan =
    {
      Simnet.Fault.none with
      Simnet.Fault.partitions = [ (Time.zero, Time.ms 2) ];
    }
  in
  let r = MH.run (quick ~fault:plan ()) in
  assert_single_authority r

let test_migrate_crash_rolls_back () =
  let plan =
    {
      Simnet.Fault.none with
      Simnet.Fault.crashes =
        [ { Simnet.Fault.after_records = 3; down_for = Time.us 300 } ];
    }
  in
  let r = MH.run (quick ~fault:plan ()) in
  (match r.MH.outcome with
  | MH.Aborted _ -> ()
  | MH.Completed _ ->
      Alcotest.fail "crash at record 3 kills the base transfer: must abort");
  check Alcotest.bool "source kept serving after rollback" true
    (r.MH.served_after > 0);
  assert_single_authority r

let test_migrate_crash_sweep () =
  (* march the destination crash across the whole transfer — begin, base,
     every delta round, stop-and-copy, commit. Whatever phase it lands in,
     the run must end handed-off or rolled-back with consistent ledgers. *)
  let outcomes = ref [] in
  for k = 1 to 12 do
    let plan =
      {
        Simnet.Fault.none with
        Simnet.Fault.crashes =
          [ { Simnet.Fault.after_records = k * 2; down_for = Time.us 300 } ];
      }
    in
    let r = MH.run (quick ~fault:plan ~dirty_kib:16 ()) in
    assert_single_authority r;
    outcomes :=
      (match r.MH.outcome with
      | MH.Completed _ -> `Handoff
      | MH.Aborted _ -> `Rollback)
      :: !outcomes
  done;
  (* the sweep is only meaningful if it exercised both endings *)
  check Alcotest.bool "some positions rolled back" true
    (List.mem `Rollback !outcomes);
  check Alcotest.bool "some positions survived to handoff" true
    (List.mem `Handoff !outcomes)

(* --- crash-safe server checkpoint writes --- *)

let test_checkpoint_write_is_atomic () =
  let dir = Filename.get_temp_dir_name () in
  let name = Printf.sprintf "migrate-cksafe-%d.ckpt" (Unix.getpid ()) in
  let path = Filename.concat dir name in
  let tmp = path ^ ".tmp" in
  (* a stale half-written temp from a previous crashed writer *)
  let oc = open_out tmp in
  output_string oc "garbage from a dead process";
  close_out oc;
  let server = make_server ~checkpoint_dir:dir () in
  let client = Cricket.Local.connect server in
  let d = Cricket.Client.malloc client 4096 in
  let data = pattern 6 4096 in
  Cricket.Client.memcpy_h2d client ~dst:d (Bytes.copy data);
  Cricket.Client.checkpoint client name;
  check Alcotest.bool "temp file renamed away" false (Sys.file_exists tmp);
  (* the published checkpoint is complete: a fresh server restores it *)
  let server2 = make_server ~checkpoint_dir:dir () in
  let client2 = Cricket.Local.connect server2 in
  Cricket.Client.restore client2 name;
  let out = Cricket.Client.memcpy_d2h client2 ~src:d ~len:4096 in
  check Alcotest.string "restored bytes intact"
    (Digest.to_hex (Digest.bytes data))
    (Digest.to_hex (Digest.bytes out));
  Sys.remove path

let test_checkpoint_failure_leaves_no_partial () =
  let missing =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "migrate-no-such-dir-%d" (Unix.getpid ()))
  in
  let server = make_server ~checkpoint_dir:missing () in
  let client = Cricket.Local.connect server in
  ignore (Cricket.Client.malloc client 4096);
  (match Cricket.Client.checkpoint client "x.ckpt" with
  | () -> Alcotest.fail "checkpoint into a missing directory must fail"
  | exception Cudasim.Error.Cuda_error _ -> ());
  check Alcotest.bool "no partial checkpoint published" false
    (Sys.file_exists (Filename.concat missing "x.ckpt"))

let test_crash_during_checkpoint_recovers () =
  (* sweep the crash point across a short checkpoint-heavy run; the window
     includes the checkpoint RPC records themselves, so some iterations
     kill the server mid-checkpoint-write. Every one must recover to the
     clean digest (tmp+rename means a torn write never becomes the
     restore source). *)
  let cfg = Unikernel.Config.unikraft in
  let app digest (env : Unikernel.Runner.env) =
    let client = env.Unikernel.Runner.client in
    let chunk = 512 and n = 8 in
    let d = Cricket.Client.malloc client (chunk * n) in
    for i = 0 to n - 1 do
      Cricket.Client.memcpy_h2d client
        ~dst:(Int64.add d (Int64.of_int (i * chunk)))
        (pattern (7 + i) chunk)
    done;
    let out = Cricket.Client.memcpy_d2h client ~src:d ~len:(chunk * n) in
    digest := Digest.to_hex (Digest.bytes out)
  in
  let clean = ref "" in
  ignore (Unikernel.Runner.run ~functional:true cfg (app clean));
  List.iter
    (fun after_records ->
      let faulty = ref "" in
      let plan =
        {
          Simnet.Fault.none with
          Simnet.Fault.crashes =
            [ { Simnet.Fault.after_records; down_for = Time.ms 1 } ];
        }
      in
      let report =
        Unikernel.Runner.run_with_faults ~plan ~checkpoint_every:3 cfg
          (app faulty)
      in
      check Alcotest.int
        (Printf.sprintf "crash at %d fired" after_records)
        1 report.Unikernel.Runner.crashes;
      check Alcotest.string
        (Printf.sprintf "digest intact after crash at %d" after_records)
        !clean !faulty)
    [ 6; 8; 10; 12; 14; 16 ]

(* --- journal replay idempotence --- *)

let test_recovery_replay_idempotent () =
  let engine = Simnet.Engine.create () in
  let clock = Cudasim.Context.engine_clock engine in
  let ckpt = Filename.temp_file "migrate-idem" ".ckpt" in
  let server =
    Cricket.Server.create ~checkpoint_dir:(Filename.dirname ckpt) ~clock ()
  in
  let chan =
    Unikernel.Simchannel.create ~engine
      ~client:Unikernel.Config.server_profile
      ~dispatch:(fun req -> Cricket.Server.dispatch server req)
      ()
  in
  let client =
    Cricket.Client.create ~transport:(Unikernel.Simchannel.transport chan) ()
  in
  Cricket.Client.enable_recovery ~checkpoint_every:64
    ~checkpoint_name:(Filename.basename ckpt) client
    ~now:(fun () -> Simnet.Engine.now engine)
    ~sleep:(fun ns -> Simnet.Engine.advance engine ns)
    ~reconnect:(fun () -> Unikernel.Simchannel.reconnect chan)
    ();
  let d = Cricket.Client.malloc client 8192 in
  let data = pattern 8 8192 in
  Cricket.Client.memcpy_h2d client ~dst:d (Bytes.copy data);
  Cricket.Client.memset client ~ptr:(Int64.add d 1024L) ~value:0x7e ~len:256;
  Bytes.fill data 1024 256 '\x7e';
  let ctx = Cricket.Server.context server in
  let ck0 = Cudasim.Context.checkpoint ctx in
  (* a duplicate recovery — e.g. a lost ack forcing a second restore+replay
     of the same journal — must be a no-op, not a double-apply *)
  Cricket.Client.recover client;
  let ck1 = Cudasim.Context.checkpoint ctx in
  Cricket.Client.recover client;
  let ck2 = Cudasim.Context.checkpoint ctx in
  check Alcotest.bool "replay reproduces the live state" true
    (String.equal ck0 ck1);
  check Alcotest.bool "second replay is byte-identical" true
    (String.equal ck1 ck2);
  let out = Cricket.Client.memcpy_d2h client ~src:d ~len:8192 in
  check Alcotest.string "data survives double recovery"
    (Digest.to_hex (Digest.bytes data))
    (Digest.to_hex (Digest.bytes out));
  Sys.remove ckpt

let suite =
  [
    Alcotest.test_case "memory: delta roundtrip" `Quick test_memory_delta;
    Alcotest.test_case "memory: snapshot keeps dirty set" `Quick
      test_memory_snapshot_keeps_dirty;
    Alcotest.test_case "context: base+delta equals source" `Quick
      test_context_delta;
    Alcotest.test_case "migrate: clean handoff under pause budget" `Quick
      test_migrate_clean;
    Alcotest.test_case "migrate: seed-deterministic" `Quick
      test_migrate_deterministic;
    Alcotest.test_case "migrate: survives 25% record loss" `Quick
      test_migrate_survives_drops;
    Alcotest.test_case "migrate: survives an early partition" `Quick
      test_migrate_survives_partition;
    Alcotest.test_case "migrate: mid-transfer crash rolls back" `Quick
      test_migrate_crash_rolls_back;
    Alcotest.test_case "migrate: crash sweep never half-moves" `Quick
      test_migrate_crash_sweep;
    Alcotest.test_case "checkpoint: tmp+rename atomic publish" `Quick
      test_checkpoint_write_is_atomic;
    Alcotest.test_case "checkpoint: failed write leaves nothing" `Quick
      test_checkpoint_failure_leaves_no_partial;
    Alcotest.test_case "checkpoint: crash during write recovers" `Quick
      test_crash_during_checkpoint_recovers;
    Alcotest.test_case "recovery: journal replay idempotent" `Quick
      test_recovery_replay_idempotent;
  ]
