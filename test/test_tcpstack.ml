(* Tests for the smoltcp-like TCP stack: checksum vectors, sequence-number
   arithmetic, segment codec, handshake, data transfer, segmentation, loss
   and corruption recovery, and connection teardown. *)

module Time = Simnet.Time
module Engine = Simnet.Engine
module EP = Tcpstack.Endpoint

let check = Alcotest.check

(* --- checksum --- *)

let test_checksum_rfc1071_vector () =
  (* Classic example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "vector" 0x220d (Tcpstack.Checksum.checksum b 0 8)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  (* words: 0x0102, 0x0300 -> sum 0x0402 -> cksum 0xfbfd *)
  check Alcotest.int "odd" 0xfbfd (Tcpstack.Checksum.checksum b 0 3)

let test_checksum_verify () =
  let b = Bytes.of_string "\x45\x00\x00\x73\x00\x00\x40\x00\x40\x11\x00\x00\xc0\xa8\x00\x01\xc0\xa8\x00\xc7" in
  let c = Tcpstack.Checksum.checksum b 0 20 in
  Bytes.set b 10 (Char.chr (c lsr 8));
  Bytes.set b 11 (Char.chr (c land 0xff));
  check Alcotest.bool "verifies" true (Tcpstack.Checksum.verify b 0 20);
  Bytes.set b 3 'X';
  check Alcotest.bool "detects corruption" false (Tcpstack.Checksum.verify b 0 20)

let prop_checksum_detects_single_flip =
  QCheck.Test.make ~count:200 ~name:"checksum detects any single-byte change"
    QCheck.(pair (string_of_size (Gen.int_range 4 256)) (int_bound 255))
    (fun (s, pos) ->
      let b = Bytes.of_string s in
      let len = Bytes.length b in
      let c = Tcpstack.Checksum.checksum b 0 len in
      let pos = pos mod len in
      let orig = Bytes.get b pos in
      let replacement = Char.chr (Char.code orig lxor 0x5a) in
      Bytes.set b pos replacement;
      let c' = Tcpstack.Checksum.checksum b 0 len in
      c <> c')

(* --- sequence numbers --- *)

let test_seqnum_wraparound () =
  let near_max = 0xffff_fff0 in
  let wrapped = Tcpstack.Seqnum.add near_max 0x20 in
  check Alcotest.int "wraps" 0x10 wrapped;
  check Alcotest.bool "gt across wrap" true (Tcpstack.Seqnum.gt wrapped near_max);
  check Alcotest.int "diff across wrap" 0x20
    (Tcpstack.Seqnum.diff wrapped near_max);
  check Alcotest.bool "window across wrap" true
    (Tcpstack.Seqnum.in_window wrapped ~base:near_max ~size:0x40)

(* --- segment codec --- *)

let test_segment_roundtrip () =
  let seg =
    { Tcpstack.Segment.src_port = 1234; dst_port = 5678; seq = 42; ack = 99;
      flags = { Tcpstack.Segment.flags_none with syn = true; ack = true };
      window = 65535; payload = Bytes.of_string "hello world" }
  in
  let wire = Tcpstack.Segment.encode ~src_ip:1l ~dst_ip:2l seg in
  match Tcpstack.Segment.decode ~src_ip:1l ~dst_ip:2l wire with
  | Ok seg' ->
      check Alcotest.bool "equal" true (seg = seg');
      check Alcotest.int "seq length includes SYN" 12
        (Tcpstack.Segment.seq_length seg)
  | Error e -> Alcotest.fail e

let test_segment_checksum_rejects () =
  let seg =
    { Tcpstack.Segment.src_port = 1; dst_port = 2; seq = 0; ack = 0;
      flags = Tcpstack.Segment.flags_none; window = 100;
      payload = Bytes.of_string "data" }
  in
  let wire = Tcpstack.Segment.encode ~src_ip:1l ~dst_ip:2l seg in
  Bytes.set wire 21 'X';
  (match Tcpstack.Segment.decode ~src_ip:1l ~dst_ip:2l wire with
  | Error "bad checksum" -> ()
  | Ok _ | Error _ -> Alcotest.fail "corruption must be detected");
  (* wrong pseudo-header (different IPs) must also fail *)
  let wire2 = Tcpstack.Segment.encode ~src_ip:1l ~dst_ip:2l seg in
  match Tcpstack.Segment.decode ~src_ip:1l ~dst_ip:3l wire2 with
  | Error "bad checksum" -> ()
  | Ok _ | Error _ -> Alcotest.fail "pseudo-header mismatch must be detected"

(* --- connection machinery --- *)

let make_pair ?(mss = 1448) ?(drop_nth = []) ?(corrupt_nth = []) () =
  let engine = Engine.create () in
  let client =
    EP.create ~engine ~name:"client" ~mss ~iss:1000 ~local_port:40000
      ~remote_port:80 ()
  in
  let server =
    EP.create ~engine ~name:"server" ~mss ~iss:5000 ~local_port:80
      ~remote_port:40000 ()
  in
  let fault =
    if drop_nth = [] && corrupt_nth = [] then None
    else Some (Simnet.Fault.make { Simnet.Fault.none with drop_nth; corrupt_nth })
  in
  let medium =
    Tcpstack.Medium.connect ~engine ~link:Simnet.Link.ethernet_100g ?fault
      client server
  in
  (engine, client, server, medium)

let establish engine client server =
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  check Alcotest.string "client established" "ESTABLISHED"
    (EP.state_to_string (EP.state client));
  check Alcotest.string "server established" "ESTABLISHED"
    (EP.state_to_string (EP.state server))

let test_handshake () =
  let engine, client, server, _ = make_pair () in
  establish engine client server

let test_data_transfer () =
  let engine, client, server, _ = make_pair () in
  establish engine client server;
  let msg = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  EP.send client msg;
  Engine.run engine;
  check Alcotest.string "delivered" (Bytes.to_string msg)
    (Bytes.to_string (EP.recv server))

let test_segmentation () =
  let engine, client, server, _ = make_pair ~mss:100 () in
  establish engine client server;
  let payload = Bytes.init 1000 (fun i -> Char.chr (i land 0xff)) in
  let sent_before = (EP.stats client).EP.segments_sent in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "reassembled" true (Bytes.equal payload (EP.recv server));
  let data_segments = (EP.stats client).EP.segments_sent - sent_before in
  check Alcotest.int "segment count" 10 data_segments

let test_bidirectional () =
  let engine, client, server, _ = make_pair () in
  establish engine client server;
  EP.send client (Bytes.of_string "ping");
  EP.send server (Bytes.of_string "pong");
  Engine.run engine;
  check Alcotest.string "c->s" "ping" (Bytes.to_string (EP.recv server));
  check Alcotest.string "s->c" "pong" (Bytes.to_string (EP.recv client))

let test_large_transfer_integrity () =
  let engine, client, server, _ = make_pair ~mss:1448 () in
  establish engine client server;
  let payload = Bytes.init 300_000 (fun i -> Char.chr ((i * 31) land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "large payload intact" true
    (Bytes.equal payload (EP.recv server))

let test_loss_recovery () =
  (* Drop a mid-transfer data segment; RTO-based go-back-N must recover. *)
  let engine, client, server, _ =
    make_pair ~mss:200 ~drop_nth:[ 12 ] ()
  in
  establish engine client server;
  let payload = Bytes.init 2000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "recovered" true (Bytes.equal payload (EP.recv server));
  check Alcotest.bool "did retransmit" true
    ((EP.stats client).EP.retransmissions > 0)

let test_syn_loss_recovery () =
  let engine, client, server, _ = make_pair ~drop_nth:[ 0 ] () in
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  check Alcotest.string "established after SYN loss" "ESTABLISHED"
    (EP.state_to_string (EP.state client))

let test_corruption_recovery () =
  (* A corrupted segment is discarded by checksum verification and
     retransmitted. *)
  let engine, client, server, _ =
    make_pair ~mss:200 ~corrupt_nth:[ 10 ] ()
  in
  establish engine client server;
  let payload = Bytes.init 1500 (fun i -> Char.chr ((i * 13) land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "recovered from corruption" true
    (Bytes.equal payload (EP.recv server))

let test_close_sequence () =
  let engine, client, server, _ = make_pair () in
  establish engine client server;
  EP.send client (Bytes.of_string "bye");
  EP.close client;
  Engine.run engine;
  check Alcotest.string "server got data" "bye" (Bytes.to_string (EP.recv server));
  check Alcotest.string "server close-wait" "CLOSE_WAIT"
    (EP.state_to_string (EP.state server));
  check Alcotest.string "client fin-wait-2" "FIN_WAIT_2"
    (EP.state_to_string (EP.state client));
  EP.close server;
  Engine.run engine;
  check Alcotest.string "server closed" "CLOSED"
    (EP.state_to_string (EP.state server));
  (* client passes through TIME_WAIT and expires *)
  check Alcotest.string "client closed after 2MSL" "CLOSED"
    (EP.state_to_string (EP.state client))

let test_window_limits_inflight () =
  (* With a tiny receive window the sender cannot flood. *)
  let engine = Engine.create () in
  let client =
    EP.create ~engine ~name:"c" ~mss:100 ~iss:0 ~local_port:1 ~remote_port:2
      ()
  in
  let server =
    EP.create ~engine ~name:"s" ~mss:100 ~iss:0 ~local_port:2 ~remote_port:1
      ~rcv_window:250 ()
  in
  ignore
    (Tcpstack.Medium.connect ~engine ~link:Simnet.Link.ethernet_100g client
       server);
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  EP.send client (Bytes.make 10_000 'x');
  (* at no point may unacked exceed the advertised window *)
  let ok = ref true in
  while Engine.step engine do
    if EP.unacked client > 250 then ok := false
  done;
  check Alcotest.bool "window respected" true !ok;
  check Alcotest.int "all delivered" 10_000
    (Bytes.length (EP.recv server))

(* --- congestion control (RFC 5681) --- *)

let test_slow_start_growth () =
  let engine, client, server, _ = make_pair ~mss:1000 () in
  establish engine client server;
  let initial = EP.congestion_window client in
  (* 10 MSS initial (RFC 6928); the handshake ACK may have grown it once *)
  check Alcotest.bool "initial window ~ 10 MSS" true
    (initial >= 10_000 && initial <= 11_000);
  EP.send client (Bytes.make 100_000 'd');
  Engine.run engine;
  check Alcotest.bool "cwnd grew under successful delivery" true
    (EP.congestion_window client > initial)

let test_rto_collapses_cwnd () =
  (* drop a burst so recovery needs the RTO (go-back-N: everything after
     the hole is discarded by the receiver) *)
  let engine, client, server, _ =
    make_pair ~mss:1000 ~drop_nth:(List.init 9 (fun i -> 12 + i)) ()
  in
  establish engine client server;
  let payload = Bytes.init 60_000 (fun i -> Char.chr (i land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "recovered" true (Bytes.equal payload (EP.recv server));
  check Alcotest.bool "timeouts happened" true
    ((EP.stats client).EP.retransmissions > 0)

let test_fast_retransmit () =
  (* drop exactly one data segment mid-stream: the receiver's duplicate
     ACKs must trigger fast retransmit well before the 200 ms RTO *)
  let engine, client, server, _ =
    make_pair ~mss:1000 ~drop_nth:[ 12 ] ()
  in
  establish engine client server;
  let t0 = Engine.now engine in
  let payload = Bytes.init 50_000 (fun i -> Char.chr ((i * 3) land 0xff)) in
  EP.send client payload;
  (* run until the receiver has everything (draining further would advance
     the clock to stale RTO timers that fire as no-ops) *)
  let delivered () = (EP.stats server).EP.bytes_received = 50_000 in
  while (not (delivered ())) && Engine.step engine do
    ()
  done;
  let elapsed_ms =
    Simnet.Time.to_float_ms (Simnet.Time.sub (Engine.now engine) t0)
  in
  Engine.run engine;
  check Alcotest.bool "recovered" true (Bytes.equal payload (EP.recv server));
  check Alcotest.bool "via fast retransmit" true
    ((EP.stats client).EP.fast_retransmissions >= 1);
  (* recovery must beat the 200 ms RTO by orders of magnitude *)
  check Alcotest.bool "faster than a 200ms RTO" true (elapsed_ms < 10.0)

let test_cwnd_limits_burst () =
  (* a huge receive window doesn't let the sender exceed cwnd *)
  let engine = Engine.create () in
  let client =
    EP.create ~engine ~name:"c" ~mss:1000 ~iss:0 ~local_port:1 ~remote_port:2 ()
  in
  let server =
    EP.create ~engine ~name:"s" ~mss:1000 ~iss:0 ~local_port:2 ~remote_port:1
      ~rcv_window:(1 lsl 20) ()
  in
  ignore
    (Tcpstack.Medium.connect ~engine ~link:Simnet.Link.ethernet_100g client
       server);
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  EP.send client (Bytes.make 500_000 'x');
  let ok = ref true in
  while Engine.step engine do
    if EP.unacked client > EP.congestion_window client then ok := false
  done;
  check Alcotest.bool "in-flight bounded by cwnd" true !ok;
  check Alcotest.int "all delivered" 500_000 (Bytes.length (EP.recv server))

(* --- cross-validation against the closed-form cost model --- *)

let test_netcost_segment_agreement () =
  (* DESIGN.md claims the packet-level TCP simulation validates the
     closed-form Netcost model; the first-order link is the segment count:
     both must charge per-packet costs the same number of times. The
     closed form assumes window scaling (as the 100 GbE testbed stacks
     negotiate), so exact agreement holds for transfers within the
     unscaled 16-bit window; beyond it our option-less stack legitimately
     emits a few extra boundary segments. *)
  let link = Simnet.Link.ethernet_100g in
  let mss = Simnet.Link.mss link in
  let data_segments payload =
    let engine = Engine.create () in
    let client =
      EP.create ~engine ~name:"c" ~mss ~iss:0 ~local_port:1 ~remote_port:2 ()
    in
    let server =
      EP.create ~engine ~name:"s" ~mss ~iss:0 ~local_port:2 ~remote_port:1 ()
    in
    ignore (Tcpstack.Medium.connect ~engine ~link client server);
    EP.listen server;
    EP.connect client;
    Engine.run engine;
    let before = (EP.stats client).EP.segments_sent in
    EP.send client (Bytes.create payload);
    Engine.run engine;
    (EP.stats client).EP.segments_sent - before
  in
  let model payload =
    (Simnet.Netcost.one_way ~sender:Simnet.Hostprofile.bare_metal_linux
       ~receiver:Simnet.Hostprofile.bare_metal_linux ~link payload)
      .Simnet.Netcost.packets
  in
  List.iter
    (fun payload ->
      check Alcotest.int
        (Printf.sprintf "segments for %d bytes" payload)
        (model payload) (data_segments payload))
    [ 1; mss - 1; mss; mss + 1; (3 * mss) + 17; 60_000 ];
  (* beyond the unscaled window the sender stalls at each 64 KiB window
     edge and may emit one boundary split per stall — never fewer segments
     than the model, and at most one extra per window *)
  List.iter
    (fun payload ->
      let got = data_segments payload and want = model payload in
      let slack = 1 + (payload / 65535) in
      check Alcotest.bool
        (Printf.sprintf "segments for %d bytes within slack" payload)
        true
        (got >= want && got <= want + slack))
    [ 65536; 300_000 ]

let prop_transfer_integrity =
  QCheck.Test.make ~count:25 ~name:"tcp delivers arbitrary payloads intact"
    QCheck.(pair (string_of_size (Gen.int_range 1 20_000)) (int_range 50 1448))
    (fun (s, mss) ->
      let engine, client, server, _ = make_pair ~mss () in
      EP.listen server;
      EP.connect client;
      Engine.run engine;
      EP.send client (Bytes.of_string s);
      Engine.run engine;
      Bytes.to_string (EP.recv server) = s)

(* --- folded checksum (8 bytes/iteration) vs bytewise reference --- *)

let prop_checksum_fold_equivalence =
  QCheck.Test.make ~count:300
    ~name:"folded checksum == bytewise reference (incl. chaining)"
    QCheck.(
      pair
        (string_of_size (Gen.int_range 0 512))
        (string_of_size (Gen.int_range 0 64)))
    (fun (s1, s2) ->
      let b1 = Bytes.of_string s1 and b2 = Bytes.of_string s2 in
      let module C = Tcpstack.Checksum in
      C.finish (C.sum b1 0 (Bytes.length b1))
      = C.finish (C.sum_bytewise b1 0 (Bytes.length b1))
      (* chained through ~initial across a buffer boundary *)
      && C.finish (C.sum ~initial:(C.sum b1 0 (Bytes.length b1)) b2 0 (Bytes.length b2))
         = C.finish
             (C.sum_bytewise
                ~initial:(C.sum_bytewise b1 0 (Bytes.length b1))
                b2 0 (Bytes.length b2)))

let prop_checksum_iovec_equivalence =
  (* scattering a buffer into arbitrary (odd-length) slices must not change
     the checksum: the pairing carries across slice boundaries *)
  QCheck.Test.make ~count:300 ~name:"iovec checksum == flat checksum"
    QCheck.(
      pair (string_of_size (Gen.int_range 1 400)) (list_of_size (Gen.int_range 0 8) (int_bound 64)))
    (fun (s, cuts) ->
      let module C = Tcpstack.Checksum in
      let module I = Xdr.Iovec in
      let rec scatter acc pos cuts =
        if pos >= String.length s then List.rev acc
        else
          match cuts with
          | [] -> List.rev (I.slice ~off:pos ~len:(String.length s - pos) s :: acc)
          | c :: rest ->
              let len = min (1 + c) (String.length s - pos) in
              scatter (I.slice ~off:pos ~len s :: acc) (pos + len) rest
      in
      let iov = scatter [] 0 cuts in
      C.finish (C.sum_iovec iov)
      = C.finish (C.sum (Bytes.of_string s) 0 (String.length s)))

(* --- txring / frame building blocks --- *)

let test_txring_take () =
  let module I = Xdr.Iovec in
  let r = Tcpstack.Txring.create () in
  Tcpstack.Txring.push_iovec r (I.of_string "hello ");
  Tcpstack.Txring.push_bytes r (Bytes.of_string "world");
  check Alcotest.int "length" 11 (Tcpstack.Txring.length r);
  let first = Tcpstack.Txring.take r 4 in
  check Alcotest.string "first take" "hell" (I.concat first);
  (* a take may span the slice boundary *)
  let second = Tcpstack.Txring.take r 4 in
  check Alcotest.string "spanning take" "o wo" (I.concat second);
  check Alcotest.string "rest" "rld" (I.concat (Tcpstack.Txring.take r 3));
  check Alcotest.int "empty" 0 (Tcpstack.Txring.length r)

let test_frame_sub_flags () =
  let payload = "0123456789" in
  let f =
    { Tcpstack.Frame.src_port = 1; dst_port = 2; seq = 100; ack = 0;
      flags = { Tcpstack.Segment.flags_none with syn = true; fin = true; psh = true };
      window = 1 lsl 20; payload = Xdr.Iovec.of_string payload;
      payload_len = 10 }
  in
  let head = Tcpstack.Frame.sub f 0 4 in
  let mid = Tcpstack.Frame.sub f 4 3 in
  let tail = Tcpstack.Frame.sub f 7 3 in
  check Alcotest.bool "SYN only on first" true
    (head.Tcpstack.Frame.flags.Tcpstack.Segment.syn
    && (not mid.Tcpstack.Frame.flags.Tcpstack.Segment.syn)
    && not tail.Tcpstack.Frame.flags.Tcpstack.Segment.syn);
  check Alcotest.bool "FIN/PSH only on last" true
    ((not head.Tcpstack.Frame.flags.Tcpstack.Segment.fin)
    && (not mid.Tcpstack.Frame.flags.Tcpstack.Segment.fin)
    && tail.Tcpstack.Frame.flags.Tcpstack.Segment.fin
    && tail.Tcpstack.Frame.flags.Tcpstack.Segment.psh);
  (* SYN occupies sequence number 100; data starts at 101 *)
  check Alcotest.int "mid seq skips SYN" 105 mid.Tcpstack.Frame.seq;
  check Alcotest.string "mid payload" "456"
    (Xdr.Iovec.concat mid.Tcpstack.Frame.payload)

(* --- out-of-order reassembly (one-pass sorted insert) --- *)

(* Handshake over a Medium, then detach both transmitters so segments can
   be delivered by hand. *)
let detached_pair ?(mss = 1000) () =
  let engine, client, server, _ = make_pair ~mss () in
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  let sent = ref [] in
  EP.set_tx_frame client (fun f -> sent := f :: !sent);
  EP.set_tx_frame server (fun _ -> ());
  (engine, client, server, sent)

let shuffle seed l =
  let a = Array.of_list l in
  let st = Random.State.make [| seed |] in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let prop_permuted_segments_reassemble =
  QCheck.Test.make ~count:50
    ~name:"any segment arrival order reassembles the byte stream"
    (* payload stays under the RFC 6928 initial window (10 x mss): with the
       reverse path detached no ACKs flow, so only the initial burst is
       captured *)
    QCheck.(pair (string_of_size (Gen.int_range 1 4500)) int)
    (fun (payload, seed) ->
      let engine, client, server, sent = detached_pair ~mss:500 () in
      EP.send client (Bytes.of_string payload);
      ignore engine;
      let frames = shuffle seed !sent in
      List.iter (fun f -> EP.on_frame server f) frames;
      Bytes.to_string (EP.recv server) = payload)

let test_ooo_duplicates_and_overlap () =
  (* exact duplicates and covered segments are dropped in the single
     insertion pass; the stream is still reassembled once *)
  let engine, client, server, sent = detached_pair ~mss:100 () in
  let payload = String.init 500 (fun i -> Char.chr (i land 0xff)) in
  EP.send client (Bytes.of_string payload);
  ignore engine;
  let frames = List.rev !sent in
  (match frames with
  | first :: rest ->
      (* deliver everything except the first segment, twice, out of order *)
      List.iter (fun f -> EP.on_frame server f) (List.rev rest);
      List.iter (fun f -> EP.on_frame server f) rest;
      check Alcotest.int "nothing delivered before the hole closes" 0
        (EP.recv_length server);
      EP.on_frame server first
  | [] -> Alcotest.fail "no segments captured");
  check Alcotest.string "reassembled once" payload
    (Bytes.to_string (EP.recv server))

let test_fast_retransmit_on_three_dup_acks () =
  (* deliver three duplicate ACKs by hand: exactly the third must trigger
     the retransmission *)
  let engine, client, _server, sent = detached_pair ~mss:1000 () in
  ignore engine;
  EP.send client (Bytes.make 5000 'x');
  let data_frames = List.length !sent in
  check Alcotest.bool "data in flight" true (data_frames >= 1);
  let snd_una = 1001 (* iss 1000 + SYN *) in
  let dup_ack =
    { Tcpstack.Frame.src_port = 80; dst_port = 40000; seq = 5001;
      ack = snd_una; flags = { Tcpstack.Segment.flags_none with ack = true };
      window = 1 lsl 20; payload = []; payload_len = 0 }
  in
  EP.on_frame client dup_ack;
  EP.on_frame client dup_ack;
  check Alcotest.int "no retransmit before the third dup ACK" 0
    (EP.stats client).EP.fast_retransmissions;
  check Alcotest.int "no extra frames either" data_frames (List.length !sent);
  EP.on_frame client dup_ack;
  check Alcotest.int "third dup ACK fires fast retransmit" 1
    (EP.stats client).EP.fast_retransmissions;
  match !sent with
  | rexmit :: _ ->
      check Alcotest.int "retransmits the lost head" snd_una
        rexmit.Tcpstack.Frame.seq
  | [] -> Alcotest.fail "nothing retransmitted"

(* --- netdev: negotiation, TSO, GRO, checksum offload, faults --- *)

module ND = Tcpstack.Netdev
module O = Simnet.Offload
module H = Simnet.Hostprofile

let test_offload_negotiation () =
  let device = O.all in
  let guest =
    { O.none with
      O.tso = true; rx_checksum = true; scatter_gather = true; gro = true }
  in
  let n = O.negotiate ~device ~guest in
  check Alcotest.bool "intersection" true
    (n.O.tso && (not n.O.tx_checksum) && n.O.rx_checksum && n.O.scatter_gather
    && (not n.O.mrg_rxbuf) && n.O.gro);
  (* dependency clamps: TSO needs tx csum; GRO needs rx csum *)
  let e = ND.effective n in
  check Alcotest.bool "tso clamped without tx csum" false e.O.tso;
  check Alcotest.bool "gro kept with rx csum" true e.O.gro;
  let e2 = ND.effective { n with O.tx_checksum = true; rx_checksum = false } in
  check Alcotest.bool "tso kept with tx csum" true e2.O.tso;
  check Alcotest.bool "gro clamped without rx csum" false e2.O.gro;
  (* device limits what any guest can use *)
  let n2 = O.negotiate ~device:O.none ~guest:O.all in
  check Alcotest.bool "none device disables all" true (n2 = O.none)

let netdev_pair ?fault ?(device = O.all) ~client_off ~server_off () =
  let engine = Engine.create () in
  let link = Simnet.Link.ethernet_100g in
  let mss = Simnet.Link.mss link in
  let a =
    EP.create ~engine ~name:"a" ~mss ~iss:0 ~local_port:1 ~remote_port:2
      ~rcv_window:(16 lsl 20) ~rto:(Time.us 200) ()
  in
  let b =
    EP.create ~engine ~name:"b" ~mss ~iss:0 ~local_port:2 ~remote_port:1
      ~rcv_window:(16 lsl 20) ~rto:(Time.us 200) ()
  in
  let pa = H.with_offloads H.bare_metal_linux client_off in
  let pb = H.with_offloads H.bare_metal_linux server_off in
  let nd = ND.connect ~engine ~link ?fault ~device ~a:(a, pa) ~b:(b, pb) () in
  EP.listen b;
  EP.connect a;
  while
    (EP.state a <> EP.Established || EP.state b <> EP.Established)
    && Engine.step engine
  do
    ()
  done;
  (engine, a, b, nd)

(* run the engine only until delivery, so trailing no-op RTO timers do not
   distort anything; returns the received bytes *)
let netdev_transfer engine a b payload =
  EP.send a payload;
  let want = Bytes.length payload in
  let got = Buffer.create want in
  let continue = ref true in
  while Buffer.length got < want && !continue do
    continue := Engine.step engine;
    if EP.recv_length b > 0 then Buffer.add_bytes got (EP.recv b)
  done;
  Buffer.to_bytes got

let test_netdev_tso_splits () =
  let engine, a, b, nd =
    netdev_pair ~client_off:O.all ~server_off:O.all ()
  in
  let payload = Bytes.init 300_000 (fun i -> Char.chr ((i * 11) land 0xff)) in
  let received = netdev_transfer engine a b payload in
  check Alcotest.bool "intact" true (Bytes.equal payload received);
  let s = ND.stats nd in
  (* TSO negotiated: the endpoint emitted super-segments the device cut *)
  check Alcotest.bool "super-segments were split" true (s.ND.tso_frames > 0);
  check Alcotest.bool "more wire segments than guest frames" true
    (s.ND.wire_segments > s.ND.guest_tx_frames);
  check Alcotest.bool "gro coalesced wire segments" true (s.ND.gro_merged > 0);
  check Alcotest.int "no software checksumming" 0 s.ND.sw_checksum_bytes;
  check Alcotest.int "no staging copies" 0 s.ND.staging_copies;
  check Alcotest.bool "endpoint burst raised" true (EP.tx_burst a > 9000)

let test_netdev_no_offloads_path () =
  let engine, a, b, nd =
    netdev_pair ~client_off:O.none ~server_off:O.all ()
  in
  let payload = Bytes.init 100_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let received = netdev_transfer engine a b payload in
  check Alcotest.bool "intact" true (Bytes.equal payload received);
  let s = ND.stats nd in
  check Alcotest.int "nothing to split without TSO" 0 s.ND.tso_frames;
  check Alcotest.int "no gro" 0 s.ND.gro_merged;
  check Alcotest.bool "tx software checksumming charged" true
    (s.ND.sw_checksum_bytes >= 100_000);
  check Alcotest.bool "staging copies without scatter-gather" true
    (s.ND.staging_copies > 0);
  check Alcotest.int "burst stays at mss" (Simnet.Link.mss Simnet.Link.ethernet_100g)
    (EP.tx_burst a)

let prop_offload_paths_deliver_identical_bytes =
  QCheck.Test.make ~count:20
    ~name:"offloaded and non-offloaded paths deliver identical bytes"
    QCheck.(string_of_size (Gen.int_range 1 150_000))
    (fun s ->
      let payload = Bytes.of_string s in
      let run off =
        let engine, a, b, _ = netdev_pair ~client_off:off ~server_off:off () in
        netdev_transfer engine a b payload
      in
      let with_off = run O.all in
      let without = run O.none in
      Bytes.equal with_off payload && Bytes.equal without payload)

let test_netdev_fault_recovery_sw_checksum () =
  (* corruption on the software-verify path: the guest's checksum rejects
     the segment and retransmission heals the stream *)
  let fault =
    Simnet.Fault.make
      { Simnet.Fault.none with corrupt_nth = [ 6 ]; drop_nth = [ 9 ] }
  in
  let engine, a, b, nd =
    netdev_pair ~fault ~client_off:O.none ~server_off:O.none ()
  in
  let payload = Bytes.init 120_000 (fun i -> Char.chr ((i * 13) land 0xff)) in
  let received = netdev_transfer engine a b payload in
  check Alcotest.bool "healed by retransmission" true
    (Bytes.equal payload received);
  let s = ND.stats nd in
  check Alcotest.bool "software verify rejected the corrupt segment" true
    (s.ND.csum_drops >= 1);
  check Alcotest.int "no device drops on the sw path" 0 s.ND.fcs_drops

let test_netdev_fault_recovery_offloaded () =
  (* same plan with rx checksum offloaded: the device's FCS check eats the
     corrupt segment instead *)
  let fault =
    Simnet.Fault.make
      { Simnet.Fault.none with corrupt_nth = [ 6 ]; drop_nth = [ 9 ] }
  in
  let engine, a, b, nd =
    netdev_pair ~fault ~client_off:O.all ~server_off:O.all ()
  in
  let payload = Bytes.init 120_000 (fun i -> Char.chr ((i * 17) land 0xff)) in
  let received = netdev_transfer engine a b payload in
  check Alcotest.bool "healed by retransmission" true
    (Bytes.equal payload received);
  let s = ND.stats nd in
  check Alcotest.bool "device caught the corruption" true (s.ND.fcs_drops >= 1);
  check Alcotest.int "guest never checksummed" 0 s.ND.sw_checksum_bytes

(* --- the Figure 7 executable ablation --- *)

let test_offload_ablation_ordering () =
  let results = Unikernel.Netbench.ablation ~bytes:(8 lsl 20) () in
  let bw name =
    (List.find (fun r -> r.Unikernel.Netbench.name = name) results)
      .Unikernel.Netbench.bandwidth_mib_s
  in
  let native = bw "native"
  and vm = bw "Linux VM"
  and hermit = bw "Hermit"
  and unikraft = bw "Unikraft" in
  check Alcotest.bool "native fastest" true (native >= vm);
  check Alcotest.bool "all offloads >= checksum-only" true (vm >= hermit);
  check Alcotest.bool "checksum-only >= none" true (hermit >= unikraft);
  (* the paper's headline: the no-offload unikernel lands at single-digit
     percent of the offloaded native path (Figure 7: 5.1-8.6%) *)
  check Alcotest.bool "no-offload at single-digit % of native" true
    (unikraft /. native < 0.10)

let test_run_tcp_cricket_e2e () =
  (* the whole Cricket RPC path over the executable stack *)
  let m, ch =
    Unikernel.Runner.run_tcp ~functional:true Unikernel.Config.hermit
      (fun env ->
        let open Cricket.Client in
        let c = env.Unikernel.Runner.client in
        let n = 64 * 1024 in
        let host = Apps.Workload.xorshift_bytes ~seed:11 n in
        let dev = malloc c n in
        memcpy_h2d c ~dst:dev host;
        let back = memcpy_d2h c ~src:dev ~len:n in
        if not (Bytes.equal host back) then
          Alcotest.fail "GPU roundtrip corrupted bytes";
        free c dev)
  in
  check Alcotest.bool "virtual time advanced" true
    (Time.compare m.Unikernel.Runner.elapsed Time.zero > 0);
  let s = Unikernel.Tcpchannel.stats ch in
  check Alcotest.bool "requests dispatched over tcp" true
    (s.Unikernel.Tcpchannel.messages >= 4);
  let nd = Unikernel.Tcpchannel.netdev_stats ch in
  check Alcotest.bool "bytes crossed the netdev" true
    (nd.ND.payload_bytes > 2 * 64 * 1024);
  (* hermit negotiates checksum offloads but neither TSO nor GRO *)
  let f = Unikernel.Tcpchannel.negotiated_client ch in
  check Alcotest.bool "hermit features" true
    (f.O.tx_checksum && f.O.rx_checksum && (not f.O.tso) && not f.O.gro)

let suite =
  [
    Alcotest.test_case "checksum RFC1071 vector" `Quick
      test_checksum_rfc1071_vector;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "checksum verify" `Quick test_checksum_verify;
    Alcotest.test_case "seqnum wraparound" `Quick test_seqnum_wraparound;
    Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
    Alcotest.test_case "segment checksum rejects" `Quick
      test_segment_checksum_rejects;
    Alcotest.test_case "three-way handshake" `Quick test_handshake;
    Alcotest.test_case "data transfer" `Quick test_data_transfer;
    Alcotest.test_case "segmentation at MSS" `Quick test_segmentation;
    Alcotest.test_case "bidirectional transfer" `Quick test_bidirectional;
    Alcotest.test_case "large transfer integrity" `Quick
      test_large_transfer_integrity;
    Alcotest.test_case "loss recovery" `Quick test_loss_recovery;
    Alcotest.test_case "SYN loss recovery" `Quick test_syn_loss_recovery;
    Alcotest.test_case "corruption recovery" `Quick test_corruption_recovery;
    Alcotest.test_case "close sequence" `Quick test_close_sequence;
    Alcotest.test_case "receive window respected" `Quick
      test_window_limits_inflight;
    Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "RTO collapses cwnd" `Quick test_rto_collapses_cwnd;
    Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit;
    Alcotest.test_case "cwnd limits burst" `Quick test_cwnd_limits_burst;
    Alcotest.test_case "netcost/tcpstack segment agreement" `Quick
      test_netcost_segment_agreement;
    Alcotest.test_case "txring spanning take" `Quick test_txring_take;
    Alcotest.test_case "frame sub flag placement" `Quick test_frame_sub_flags;
    Alcotest.test_case "ooo duplicates and overlap" `Quick
      test_ooo_duplicates_and_overlap;
    Alcotest.test_case "fast retransmit on exactly 3 dup ACKs" `Quick
      test_fast_retransmit_on_three_dup_acks;
    Alcotest.test_case "offload negotiation and clamps" `Quick
      test_offload_negotiation;
    Alcotest.test_case "netdev TSO splits super-segments" `Quick
      test_netdev_tso_splits;
    Alcotest.test_case "netdev no-offload software path" `Quick
      test_netdev_no_offloads_path;
    Alcotest.test_case "netdev fault recovery (sw checksum)" `Quick
      test_netdev_fault_recovery_sw_checksum;
    Alcotest.test_case "netdev fault recovery (offloaded)" `Quick
      test_netdev_fault_recovery_offloaded;
    Alcotest.test_case "figure 7 offload ablation ordering" `Quick
      test_offload_ablation_ordering;
    Alcotest.test_case "run_tcp cricket end-to-end" `Quick
      test_run_tcp_cricket_e2e;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_checksum_detects_single_flip;
        prop_transfer_integrity;
        prop_checksum_fold_equivalence;
        prop_checksum_iovec_equivalence;
        prop_permuted_segments_reassemble;
        prop_offload_paths_deliver_identical_bytes;
      ]
