(* Tests for the smoltcp-like TCP stack: checksum vectors, sequence-number
   arithmetic, segment codec, handshake, data transfer, segmentation, loss
   and corruption recovery, and connection teardown. *)

module Time = Simnet.Time
module Engine = Simnet.Engine
module EP = Tcpstack.Endpoint

let check = Alcotest.check

(* --- checksum --- *)

let test_checksum_rfc1071_vector () =
  (* Classic example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "vector" 0x220d (Tcpstack.Checksum.checksum b 0 8)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  (* words: 0x0102, 0x0300 -> sum 0x0402 -> cksum 0xfbfd *)
  check Alcotest.int "odd" 0xfbfd (Tcpstack.Checksum.checksum b 0 3)

let test_checksum_verify () =
  let b = Bytes.of_string "\x45\x00\x00\x73\x00\x00\x40\x00\x40\x11\x00\x00\xc0\xa8\x00\x01\xc0\xa8\x00\xc7" in
  let c = Tcpstack.Checksum.checksum b 0 20 in
  Bytes.set b 10 (Char.chr (c lsr 8));
  Bytes.set b 11 (Char.chr (c land 0xff));
  check Alcotest.bool "verifies" true (Tcpstack.Checksum.verify b 0 20);
  Bytes.set b 3 'X';
  check Alcotest.bool "detects corruption" false (Tcpstack.Checksum.verify b 0 20)

let prop_checksum_detects_single_flip =
  QCheck.Test.make ~count:200 ~name:"checksum detects any single-byte change"
    QCheck.(pair (string_of_size (Gen.int_range 4 256)) (int_bound 255))
    (fun (s, pos) ->
      let b = Bytes.of_string s in
      let len = Bytes.length b in
      let c = Tcpstack.Checksum.checksum b 0 len in
      let pos = pos mod len in
      let orig = Bytes.get b pos in
      let replacement = Char.chr (Char.code orig lxor 0x5a) in
      Bytes.set b pos replacement;
      let c' = Tcpstack.Checksum.checksum b 0 len in
      c <> c')

(* --- sequence numbers --- *)

let test_seqnum_wraparound () =
  let near_max = 0xffff_fff0 in
  let wrapped = Tcpstack.Seqnum.add near_max 0x20 in
  check Alcotest.int "wraps" 0x10 wrapped;
  check Alcotest.bool "gt across wrap" true (Tcpstack.Seqnum.gt wrapped near_max);
  check Alcotest.int "diff across wrap" 0x20
    (Tcpstack.Seqnum.diff wrapped near_max);
  check Alcotest.bool "window across wrap" true
    (Tcpstack.Seqnum.in_window wrapped ~base:near_max ~size:0x40)

(* --- segment codec --- *)

let test_segment_roundtrip () =
  let seg =
    { Tcpstack.Segment.src_port = 1234; dst_port = 5678; seq = 42; ack = 99;
      flags = { Tcpstack.Segment.flags_none with syn = true; ack = true };
      window = 65535; payload = Bytes.of_string "hello world" }
  in
  let wire = Tcpstack.Segment.encode ~src_ip:1l ~dst_ip:2l seg in
  match Tcpstack.Segment.decode ~src_ip:1l ~dst_ip:2l wire with
  | Ok seg' ->
      check Alcotest.bool "equal" true (seg = seg');
      check Alcotest.int "seq length includes SYN" 12
        (Tcpstack.Segment.seq_length seg)
  | Error e -> Alcotest.fail e

let test_segment_checksum_rejects () =
  let seg =
    { Tcpstack.Segment.src_port = 1; dst_port = 2; seq = 0; ack = 0;
      flags = Tcpstack.Segment.flags_none; window = 100;
      payload = Bytes.of_string "data" }
  in
  let wire = Tcpstack.Segment.encode ~src_ip:1l ~dst_ip:2l seg in
  Bytes.set wire 21 'X';
  (match Tcpstack.Segment.decode ~src_ip:1l ~dst_ip:2l wire with
  | Error "bad checksum" -> ()
  | Ok _ | Error _ -> Alcotest.fail "corruption must be detected");
  (* wrong pseudo-header (different IPs) must also fail *)
  let wire2 = Tcpstack.Segment.encode ~src_ip:1l ~dst_ip:2l seg in
  match Tcpstack.Segment.decode ~src_ip:1l ~dst_ip:3l wire2 with
  | Error "bad checksum" -> ()
  | Ok _ | Error _ -> Alcotest.fail "pseudo-header mismatch must be detected"

(* --- connection machinery --- *)

let make_pair ?(mss = 1448) ?(drop_nth = []) ?(corrupt_nth = []) () =
  let engine = Engine.create () in
  let client =
    EP.create ~engine ~name:"client" ~mss ~iss:1000 ~local_port:40000
      ~remote_port:80 ()
  in
  let server =
    EP.create ~engine ~name:"server" ~mss ~iss:5000 ~local_port:80
      ~remote_port:40000 ()
  in
  let fault =
    if drop_nth = [] && corrupt_nth = [] then None
    else Some (Simnet.Fault.make { Simnet.Fault.none with drop_nth; corrupt_nth })
  in
  let medium =
    Tcpstack.Medium.connect ~engine ~link:Simnet.Link.ethernet_100g ?fault
      client server
  in
  (engine, client, server, medium)

let establish engine client server =
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  check Alcotest.string "client established" "ESTABLISHED"
    (EP.state_to_string (EP.state client));
  check Alcotest.string "server established" "ESTABLISHED"
    (EP.state_to_string (EP.state server))

let test_handshake () =
  let engine, client, server, _ = make_pair () in
  establish engine client server

let test_data_transfer () =
  let engine, client, server, _ = make_pair () in
  establish engine client server;
  let msg = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  EP.send client msg;
  Engine.run engine;
  check Alcotest.string "delivered" (Bytes.to_string msg)
    (Bytes.to_string (EP.recv server))

let test_segmentation () =
  let engine, client, server, _ = make_pair ~mss:100 () in
  establish engine client server;
  let payload = Bytes.init 1000 (fun i -> Char.chr (i land 0xff)) in
  let sent_before = (EP.stats client).EP.segments_sent in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "reassembled" true (Bytes.equal payload (EP.recv server));
  let data_segments = (EP.stats client).EP.segments_sent - sent_before in
  check Alcotest.int "segment count" 10 data_segments

let test_bidirectional () =
  let engine, client, server, _ = make_pair () in
  establish engine client server;
  EP.send client (Bytes.of_string "ping");
  EP.send server (Bytes.of_string "pong");
  Engine.run engine;
  check Alcotest.string "c->s" "ping" (Bytes.to_string (EP.recv server));
  check Alcotest.string "s->c" "pong" (Bytes.to_string (EP.recv client))

let test_large_transfer_integrity () =
  let engine, client, server, _ = make_pair ~mss:1448 () in
  establish engine client server;
  let payload = Bytes.init 300_000 (fun i -> Char.chr ((i * 31) land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "large payload intact" true
    (Bytes.equal payload (EP.recv server))

let test_loss_recovery () =
  (* Drop a mid-transfer data segment; RTO-based go-back-N must recover. *)
  let engine, client, server, _ =
    make_pair ~mss:200 ~drop_nth:[ 12 ] ()
  in
  establish engine client server;
  let payload = Bytes.init 2000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "recovered" true (Bytes.equal payload (EP.recv server));
  check Alcotest.bool "did retransmit" true
    ((EP.stats client).EP.retransmissions > 0)

let test_syn_loss_recovery () =
  let engine, client, server, _ = make_pair ~drop_nth:[ 0 ] () in
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  check Alcotest.string "established after SYN loss" "ESTABLISHED"
    (EP.state_to_string (EP.state client))

let test_corruption_recovery () =
  (* A corrupted segment is discarded by checksum verification and
     retransmitted. *)
  let engine, client, server, _ =
    make_pair ~mss:200 ~corrupt_nth:[ 10 ] ()
  in
  establish engine client server;
  let payload = Bytes.init 1500 (fun i -> Char.chr ((i * 13) land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "recovered from corruption" true
    (Bytes.equal payload (EP.recv server))

let test_close_sequence () =
  let engine, client, server, _ = make_pair () in
  establish engine client server;
  EP.send client (Bytes.of_string "bye");
  EP.close client;
  Engine.run engine;
  check Alcotest.string "server got data" "bye" (Bytes.to_string (EP.recv server));
  check Alcotest.string "server close-wait" "CLOSE_WAIT"
    (EP.state_to_string (EP.state server));
  check Alcotest.string "client fin-wait-2" "FIN_WAIT_2"
    (EP.state_to_string (EP.state client));
  EP.close server;
  Engine.run engine;
  check Alcotest.string "server closed" "CLOSED"
    (EP.state_to_string (EP.state server));
  (* client passes through TIME_WAIT and expires *)
  check Alcotest.string "client closed after 2MSL" "CLOSED"
    (EP.state_to_string (EP.state client))

let test_window_limits_inflight () =
  (* With a tiny receive window the sender cannot flood. *)
  let engine = Engine.create () in
  let client =
    EP.create ~engine ~name:"c" ~mss:100 ~iss:0 ~local_port:1 ~remote_port:2
      ()
  in
  let server =
    EP.create ~engine ~name:"s" ~mss:100 ~iss:0 ~local_port:2 ~remote_port:1
      ~rcv_window:250 ()
  in
  ignore
    (Tcpstack.Medium.connect ~engine ~link:Simnet.Link.ethernet_100g client
       server);
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  EP.send client (Bytes.make 10_000 'x');
  (* at no point may unacked exceed the advertised window *)
  let ok = ref true in
  while Engine.step engine do
    if EP.unacked client > 250 then ok := false
  done;
  check Alcotest.bool "window respected" true !ok;
  check Alcotest.int "all delivered" 10_000
    (Bytes.length (EP.recv server))

(* --- congestion control (RFC 5681) --- *)

let test_slow_start_growth () =
  let engine, client, server, _ = make_pair ~mss:1000 () in
  establish engine client server;
  let initial = EP.congestion_window client in
  (* 10 MSS initial (RFC 6928); the handshake ACK may have grown it once *)
  check Alcotest.bool "initial window ~ 10 MSS" true
    (initial >= 10_000 && initial <= 11_000);
  EP.send client (Bytes.make 100_000 'd');
  Engine.run engine;
  check Alcotest.bool "cwnd grew under successful delivery" true
    (EP.congestion_window client > initial)

let test_rto_collapses_cwnd () =
  (* drop a burst so recovery needs the RTO (go-back-N: everything after
     the hole is discarded by the receiver) *)
  let engine, client, server, _ =
    make_pair ~mss:1000 ~drop_nth:(List.init 9 (fun i -> 12 + i)) ()
  in
  establish engine client server;
  let payload = Bytes.init 60_000 (fun i -> Char.chr (i land 0xff)) in
  EP.send client payload;
  Engine.run engine;
  check Alcotest.bool "recovered" true (Bytes.equal payload (EP.recv server));
  check Alcotest.bool "timeouts happened" true
    ((EP.stats client).EP.retransmissions > 0)

let test_fast_retransmit () =
  (* drop exactly one data segment mid-stream: the receiver's duplicate
     ACKs must trigger fast retransmit well before the 200 ms RTO *)
  let engine, client, server, _ =
    make_pair ~mss:1000 ~drop_nth:[ 12 ] ()
  in
  establish engine client server;
  let t0 = Engine.now engine in
  let payload = Bytes.init 50_000 (fun i -> Char.chr ((i * 3) land 0xff)) in
  EP.send client payload;
  (* run until the receiver has everything (draining further would advance
     the clock to stale RTO timers that fire as no-ops) *)
  let delivered () = (EP.stats server).EP.bytes_received = 50_000 in
  while (not (delivered ())) && Engine.step engine do
    ()
  done;
  let elapsed_ms =
    Simnet.Time.to_float_ms (Simnet.Time.sub (Engine.now engine) t0)
  in
  Engine.run engine;
  check Alcotest.bool "recovered" true (Bytes.equal payload (EP.recv server));
  check Alcotest.bool "via fast retransmit" true
    ((EP.stats client).EP.fast_retransmissions >= 1);
  (* recovery must beat the 200 ms RTO by orders of magnitude *)
  check Alcotest.bool "faster than a 200ms RTO" true (elapsed_ms < 10.0)

let test_cwnd_limits_burst () =
  (* a huge receive window doesn't let the sender exceed cwnd *)
  let engine = Engine.create () in
  let client =
    EP.create ~engine ~name:"c" ~mss:1000 ~iss:0 ~local_port:1 ~remote_port:2 ()
  in
  let server =
    EP.create ~engine ~name:"s" ~mss:1000 ~iss:0 ~local_port:2 ~remote_port:1
      ~rcv_window:(1 lsl 20) ()
  in
  ignore
    (Tcpstack.Medium.connect ~engine ~link:Simnet.Link.ethernet_100g client
       server);
  EP.listen server;
  EP.connect client;
  Engine.run engine;
  EP.send client (Bytes.make 500_000 'x');
  let ok = ref true in
  while Engine.step engine do
    if EP.unacked client > EP.congestion_window client then ok := false
  done;
  check Alcotest.bool "in-flight bounded by cwnd" true !ok;
  check Alcotest.int "all delivered" 500_000 (Bytes.length (EP.recv server))

(* --- cross-validation against the closed-form cost model --- *)

let test_netcost_segment_agreement () =
  (* DESIGN.md claims the packet-level TCP simulation validates the
     closed-form Netcost model; the first-order link is the segment count:
     both must charge per-packet costs the same number of times. The
     closed form assumes window scaling (as the 100 GbE testbed stacks
     negotiate), so exact agreement holds for transfers within the
     unscaled 16-bit window; beyond it our option-less stack legitimately
     emits a few extra boundary segments. *)
  let link = Simnet.Link.ethernet_100g in
  let mss = Simnet.Link.mss link in
  let data_segments payload =
    let engine = Engine.create () in
    let client =
      EP.create ~engine ~name:"c" ~mss ~iss:0 ~local_port:1 ~remote_port:2 ()
    in
    let server =
      EP.create ~engine ~name:"s" ~mss ~iss:0 ~local_port:2 ~remote_port:1 ()
    in
    ignore (Tcpstack.Medium.connect ~engine ~link client server);
    EP.listen server;
    EP.connect client;
    Engine.run engine;
    let before = (EP.stats client).EP.segments_sent in
    EP.send client (Bytes.create payload);
    Engine.run engine;
    (EP.stats client).EP.segments_sent - before
  in
  let model payload =
    (Simnet.Netcost.one_way ~sender:Simnet.Hostprofile.bare_metal_linux
       ~receiver:Simnet.Hostprofile.bare_metal_linux ~link payload)
      .Simnet.Netcost.packets
  in
  List.iter
    (fun payload ->
      check Alcotest.int
        (Printf.sprintf "segments for %d bytes" payload)
        (model payload) (data_segments payload))
    [ 1; mss - 1; mss; mss + 1; (3 * mss) + 17; 60_000 ];
  (* beyond the unscaled window the sender stalls at each 64 KiB window
     edge and may emit one boundary split per stall — never fewer segments
     than the model, and at most one extra per window *)
  List.iter
    (fun payload ->
      let got = data_segments payload and want = model payload in
      let slack = 1 + (payload / 65535) in
      check Alcotest.bool
        (Printf.sprintf "segments for %d bytes within slack" payload)
        true
        (got >= want && got <= want + slack))
    [ 65536; 300_000 ]

let prop_transfer_integrity =
  QCheck.Test.make ~count:25 ~name:"tcp delivers arbitrary payloads intact"
    QCheck.(pair (string_of_size (Gen.int_range 1 20_000)) (int_range 50 1448))
    (fun (s, mss) ->
      let engine, client, server, _ = make_pair ~mss () in
      EP.listen server;
      EP.connect client;
      Engine.run engine;
      EP.send client (Bytes.of_string s);
      Engine.run engine;
      Bytes.to_string (EP.recv server) = s)

let suite =
  [
    Alcotest.test_case "checksum RFC1071 vector" `Quick
      test_checksum_rfc1071_vector;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "checksum verify" `Quick test_checksum_verify;
    Alcotest.test_case "seqnum wraparound" `Quick test_seqnum_wraparound;
    Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
    Alcotest.test_case "segment checksum rejects" `Quick
      test_segment_checksum_rejects;
    Alcotest.test_case "three-way handshake" `Quick test_handshake;
    Alcotest.test_case "data transfer" `Quick test_data_transfer;
    Alcotest.test_case "segmentation at MSS" `Quick test_segmentation;
    Alcotest.test_case "bidirectional transfer" `Quick test_bidirectional;
    Alcotest.test_case "large transfer integrity" `Quick
      test_large_transfer_integrity;
    Alcotest.test_case "loss recovery" `Quick test_loss_recovery;
    Alcotest.test_case "SYN loss recovery" `Quick test_syn_loss_recovery;
    Alcotest.test_case "corruption recovery" `Quick test_corruption_recovery;
    Alcotest.test_case "close sequence" `Quick test_close_sequence;
    Alcotest.test_case "receive window respected" `Quick
      test_window_limits_inflight;
    Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "RTO collapses cwnd" `Quick test_rto_collapses_cwnd;
    Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit;
    Alcotest.test_case "cwnd limits burst" `Quick test_cwnd_limits_burst;
    Alcotest.test_case "netcost/tcpstack segment agreement" `Quick
      test_netcost_segment_agreement;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_checksum_detects_single_flip; prop_transfer_integrity ]
