(* Robustness fuzzing: every parser in the system must reject arbitrary or
   mutated input with its declared error type — never a segfault-morally-
   equivalent unexpected exception. This matters doubly here because the
   Cricket server parses bytes that arrive over the network from untrusted
   unikernel guests. *)

let check = Alcotest.check

let gen_bytes = QCheck.string_of_size (QCheck.Gen.int_range 0 512)

(* --- XDR / RPC message layer --- *)

let prop_message_decode_total =
  QCheck.Test.make ~count:500 ~name:"Message.decode is total" gen_bytes
    (fun s ->
      match Oncrpc.Message.decode (Xdr.Decode.of_string s) with
      | (_ : Oncrpc.Message.t) -> true
      | exception Xdr.Types.Error _ -> true)

let prop_dispatch_total =
  (* the server must answer or reject any record; only completely
     unparseable requests (no xid) raise the documented Protocol_error *)
  let server = Oncrpc.Server.create () in
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [ (1, fun dec enc -> Xdr.Encode.int enc (Xdr.Decode.int dec)) ];
  QCheck.Test.make ~count:500 ~name:"Server.dispatch is total" gen_bytes
    (fun s ->
      match Oncrpc.Server.dispatch server s with
      | (_ : string) -> true
      | exception Oncrpc.Server.Protocol_error _ -> true)

let prop_valid_header_fuzzed_body =
  (* a valid CALL header with random trailing arg bytes must produce a
     reply record (SUCCESS or GARBAGE_ARGS), never an exception *)
  let server = Oncrpc.Server.create () in
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [ (1, fun dec enc -> Xdr.Encode.int enc (Xdr.Decode.int dec)) ];
  QCheck.Test.make ~count:500 ~name:"fuzzed args always get a reply" gen_bytes
    (fun junk ->
      let enc = Xdr.Encode.create () in
      Oncrpc.Message.encode enc
        (Oncrpc.Message.call ~xid:9l ~prog:300000 ~vers:1 ~proc:1 ());
      Xdr.Encode.opaque_fixed enc (Bytes.of_string junk);
      let reply = Oncrpc.Server.dispatch server (Xdr.Encode.to_string enc) in
      match Oncrpc.Message.decode (Xdr.Decode.of_string reply) with
      | { Oncrpc.Message.xid = 9l; body = Oncrpc.Message.Reply _ } -> true
      | _ -> false)

let prop_oneway_framing_roundtrip =
  (* a one-way call's wire record must decode back to the same proc and
     argument payload: batching never corrupts framing *)
  QCheck.Test.make ~count:300 ~name:"one-way call framing round-trips"
    QCheck.(pair (int_bound 1000) gen_bytes)
    (fun (proc, payload) ->
      let a, b = Oncrpc.Transport.pipe () in
      let client = Oncrpc.Client.create ~transport:a ~prog:300000 ~vers:1 () in
      Oncrpc.Client.call_oneway client ~proc (fun enc ->
          Xdr.Encode.opaque enc (Bytes.of_string payload));
      let record = Oncrpc.Record.read b in
      let dec = Xdr.Decode.of_string record in
      match Oncrpc.Message.decode dec with
      | { Oncrpc.Message.body = Oncrpc.Message.Call c; _ } ->
          c.Oncrpc.Message.proc = proc
          && Bytes.to_string (Xdr.Decode.opaque dec) = payload
      | _ -> false)

let prop_oneway_batch_single_reply =
  (* N one-way calls followed by one two-way call produce exactly one
     reply record, and it matches the two-way call's xid *)
  QCheck.Test.make ~count:200 ~name:"one-way batch yields exactly one reply"
    QCheck.(int_bound 20)
    (fun n ->
      let server = Oncrpc.Server.create () in
      Oncrpc.Server.register server ~prog:300000 ~vers:1
        [
          (1, fun dec enc -> Xdr.Encode.int enc (Xdr.Decode.int dec));
          (2, fun dec _enc -> ignore (Xdr.Decode.int dec));
        ];
      Oncrpc.Server.set_oneway server ~prog:300000 ~vers:1 [ 2 ];
      let transport =
        Cricket.Local.transport_of_dispatch (Oncrpc.Server.dispatch server)
      in
      let client = Oncrpc.Client.create ~transport ~prog:300000 ~vers:1 () in
      for i = 1 to n do
        Oncrpc.Client.call_oneway client ~proc:2 (fun enc ->
            Xdr.Encode.int enc i)
      done;
      (* the sync call flushes the batch; its reply is the only record in
         the return stream, so the call succeeds iff framing held *)
      Oncrpc.Client.call client ~proc:1
        (fun enc -> Xdr.Encode.int enc n)
        Xdr.Decode.int
      = n)

(* --- record marking --- *)

let prop_record_stream_fuzz =
  (* feeding arbitrary bytes as a record stream either yields a record,
     hits EOF (Closed), or trips the size guard — a typed error set, never
     a hang or an unexpected exception *)
  QCheck.Test.make ~count:300 ~name:"Record.read survives garbage streams"
    gen_bytes
    (fun s ->
      let a, b = Oncrpc.Transport.pipe () in
      Oncrpc.Transport.send_string a s;
      a.Oncrpc.Transport.close ();
      match Oncrpc.Record.read ~max_record_size:4096 b with
      | (_ : string) -> true
      | exception Oncrpc.Transport.Closed -> true
      | exception Oncrpc.Record.Oversized _ -> true
      | exception Failure _ -> true)

let prop_pooled_read_survives_garbage =
  (* same totality guarantee through the pooled reassembly path, with one
     shared pool across all iterations: an exception mid-read must not
     leak or corrupt staging buffers in a way that breaks later reads *)
  let pool = Oncrpc.Pool.create () in
  QCheck.Test.make ~count:300
    ~name:"pooled Record.read survives garbage streams" gen_bytes
    (fun s ->
      let a, b = Oncrpc.Transport.pipe () in
      Oncrpc.Transport.send_string a s;
      a.Oncrpc.Transport.close ();
      match Oncrpc.Record.read ~max_record_size:4096 ~pool b with
      | (_ : string) -> true
      | exception Oncrpc.Transport.Closed -> true
      | exception Oncrpc.Record.Oversized _ -> true
      | exception Failure _ -> true)

let prop_vectored_framing_identity =
  (* the scatter-gather tx path must emit byte-for-byte the wire image of
     the seed buffer-based framing for arbitrary payloads and fragment
     sizes — the optimization must be invisible on the wire *)
  QCheck.Test.make ~count:400 ~name:"vectored framing is wire-identical"
    QCheck.(pair gen_bytes (int_range 1 64))
    (fun (payload, fragment_size) ->
      let out = Buffer.create 64 in
      let t =
        Oncrpc.Transport.make
          ~send:(fun b off len -> Buffer.add_subbytes out b off len)
          ~sendv:(fun iov ->
            Xdr.Iovec.iter
              (fun s ->
                Buffer.add_substring out s.Xdr.Iovec.base s.Xdr.Iovec.off
                  s.Xdr.Iovec.len)
              iov)
          ~recv:(fun _ _ _ -> 0)
          ~close:(fun () -> ())
          ()
      in
      Oncrpc.Record.writev ~fragment_size t (Xdr.Iovec.of_string payload);
      Buffer.contents out = Oncrpc.Record.to_wire ~fragment_size payload)

let prop_truncated_record =
  (* a valid wire record cut off at any byte boundary must surface
     Transport.Closed (EOF mid-record), never hang or mis-parse *)
  QCheck.Test.make ~count:300 ~name:"truncated record headers raise Closed"
    QCheck.(pair gen_bytes small_nat)
    (fun (payload, cut) ->
      let wire = Oncrpc.Record.to_wire ~fragment_size:16 payload in
      let cut = cut mod max 1 (String.length wire) in
      let a, b = Oncrpc.Transport.pipe () in
      Oncrpc.Transport.send_string a (String.sub wire 0 cut);
      a.Oncrpc.Transport.close ();
      match Oncrpc.Record.read b with
      | s -> cut = String.length wire && s = payload
      | exception Oncrpc.Transport.Closed -> cut < String.length wire)

let prop_corrupt_header_bits =
  (* flipping bits inside a fragment header yields a typed outcome: some
     record, Closed (length now claims more bytes than follow), or
     Oversized (length now exceeds the cap) — nothing else *)
  QCheck.Test.make ~count:300 ~name:"corrupted record headers are typed"
    QCheck.(triple gen_bytes (int_bound 3) (int_range 1 255))
    (fun (payload, pos, mask) ->
      let wire = Bytes.of_string (Oncrpc.Record.to_wire payload) in
      Bytes.set wire pos
        (Char.chr (Char.code (Bytes.get wire pos) lxor mask));
      let a, b = Oncrpc.Transport.pipe () in
      Oncrpc.Transport.send_string a (Bytes.to_string wire);
      a.Oncrpc.Transport.close ();
      match Oncrpc.Record.read ~max_record_size:4096 b with
      | (_ : string) -> true
      | exception Oncrpc.Transport.Closed -> true
      | exception Oncrpc.Record.Oversized _ -> true)

let test_oversized_header_rejected_before_alloc () =
  (* a header claiming ~2 GiB against a 4 KiB cap must raise Oversized
     from the header alone — the claimed bytes are never allocated (the
     transport here doesn't even hold them) *)
  let a, b = Oncrpc.Transport.pipe () in
  Oncrpc.Transport.send_string a
    (Oncrpc.Record.encode_header ~last:true Oncrpc.Record.max_fragment_size);
  (match Oncrpc.Record.read ~max_record_size:4096 b with
  | (_ : string) -> Alcotest.fail "oversized record accepted"
  | exception Oncrpc.Record.Oversized { claimed; limit } ->
      check Alcotest.int "claimed" Oncrpc.Record.max_fragment_size claimed;
      check Alcotest.int "limit" 4096 limit);
  (* the cumulative guard fires across fragments too: many small headers
     that together pass the cap *)
  let a, b = Oncrpc.Transport.pipe () in
  for _ = 1 to 3 do
    Oncrpc.Transport.send_string a (Oncrpc.Record.encode_header ~last:false 2048);
    Oncrpc.Transport.send_string a (String.make 2048 'x')
  done;
  match Oncrpc.Record.read ~max_record_size:4096 b with
  | (_ : string) -> Alcotest.fail "cumulative oversize accepted"
  | exception Oncrpc.Record.Oversized { claimed; limit } ->
      check Alcotest.bool "claimed past cap" true (claimed > limit)

(* --- cubin / fatbin / lzss --- *)

let prop_image_parse_total =
  QCheck.Test.make ~count:500 ~name:"Cubin.Image.parse is total" gen_bytes
    (fun s ->
      match Cubin.Image.parse s with Ok _ -> true | Error _ -> true)

let prop_fatbin_parse_total =
  QCheck.Test.make ~count:500 ~name:"Cubin.Fatbin.parse is total" gen_bytes
    (fun s ->
      match Cubin.Fatbin.parse s with Ok _ -> true | Error _ -> true)

let prop_lzss_decompress_total =
  QCheck.Test.make ~count:500 ~name:"Lzss.decompress is total" gen_bytes
    (fun s ->
      match Cubin.Lzss.decompress s with Ok _ -> true | Error _ -> true)

let prop_image_mutation =
  (* bit-flip a valid compressed image: parse must return, not raise *)
  QCheck.Test.make ~count:300 ~name:"mutated cubin never crashes the parser"
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, mask) ->
      let wire =
        Bytes.of_string
          (Cubin.Image.build
             (Cubin.Image.of_registry [ Gpusim.Kernels.saxpy_name ]))
      in
      let pos = pos mod Bytes.length wire in
      Bytes.set wire pos
        (Char.chr (Char.code (Bytes.get wire pos) lxor (mask lor 1)));
      match Cubin.Image.parse (Bytes.to_string wire) with
      | Ok _ | Error _ -> true)

(* --- RPCL front end --- *)

let printable =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 200)
    (QCheck.Gen.map Char.chr (QCheck.Gen.int_range 32 126))

let prop_rpcl_parse_total =
  QCheck.Test.make ~count:500 ~name:"Rpcl.Parser.parse is total" printable
    (fun s ->
      match Rpcl.Parser.parse s with
      | (_ : Rpcl.Ast.spec) -> true
      | exception Rpcl.Parser.Parse_error _ -> true
      | exception Rpcl.Lexer.Lex_error _ -> true)

let prop_rpcl_full_pipeline_total =
  QCheck.Test.make ~count:300 ~name:"Rpcl check+codegen is total" printable
    (fun s ->
      match Rpcl.Codegen.generate (Rpcl.Check.check (Rpcl.Parser.parse s)) with
      | (_ : string) -> true
      | exception Rpcl.Parser.Parse_error _ -> true
      | exception Rpcl.Lexer.Lex_error _ -> true
      | exception Rpcl.Check.Semantic_error _ -> true)

(* --- TCP segment codec --- *)

let prop_segment_decode_total =
  QCheck.Test.make ~count:500 ~name:"Segment.decode is total" gen_bytes
    (fun s ->
      match
        Tcpstack.Segment.decode ~src_ip:1l ~dst_ip:2l (Bytes.of_string s)
      with
      | Ok _ | Error _ -> true)

(* --- end-to-end: a fuzzed client cannot crash a Cricket server --- *)

let test_cricket_survives_garbage_records () =
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 22)
      ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let state = ref 99 in
  let garbage n =
    String.init n (fun _ ->
        state := (!state * 1103515245) + 12345;
        Char.chr ((!state lsr 12) land 0xff))
  in
  let attempts = ref 0 in
  for n = 0 to 100 do
    match Cricket.Server.dispatch server (garbage (n * 3)) with
    | (_ : string) -> incr attempts
    | exception Oncrpc.Server.Protocol_error _ -> incr attempts
  done;
  check Alcotest.int "all attempts handled" 101 !attempts;
  (* and the server still works afterwards *)
  let client = Cricket.Local.connect server in
  check Alcotest.int "server alive" 4 (Cricket.Client.get_device_count client)

let suite =
  [
    Alcotest.test_case "cricket server survives garbage" `Quick
      test_cricket_survives_garbage_records;
    Alcotest.test_case "oversized headers rejected before allocation" `Quick
      test_oversized_header_rejected_before_alloc;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_message_decode_total; prop_dispatch_total;
        prop_valid_header_fuzzed_body; prop_oneway_framing_roundtrip;
        prop_oneway_batch_single_reply; prop_record_stream_fuzz;
        prop_pooled_read_survives_garbage; prop_vectored_framing_identity;
        prop_truncated_record; prop_corrupt_header_bits;
        prop_image_parse_total; prop_fatbin_parse_total;
        prop_lzss_decompress_total; prop_image_mutation;
        prop_rpcl_parse_total; prop_rpcl_full_pipeline_total;
        prop_segment_decode_total;
      ]
