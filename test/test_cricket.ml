(* End-to-end tests of the Cricket layer: client API -> generated stubs ->
   ONC RPC -> server dispatch -> cudasim, plus lifetime tracking, transfer
   strategies, the GPU-sharing scheduler and checkpoint/restart via RPC. *)

module Time = Simnet.Time
module C = Cricket.Client

let check = Alcotest.check

let make_pair ?checkpoint_dir () =
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 26) ?checkpoint_dir
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  let client = Cricket.Local.connect server in
  (engine, server, client)

let expect_cuda_error expected f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (Cudasim.Error.to_string expected)
  | exception Cudasim.Error.Cuda_error e ->
      check Alcotest.string "cuda error" (Cudasim.Error.to_string expected)
        (Cudasim.Error.to_string e)

(* --- basic forwarding --- *)

let test_device_forwarding () =
  let _, _, client = make_pair () in
  check Alcotest.int "count" 4 (C.get_device_count client);
  let p = C.get_device_properties client 0 in
  check Alcotest.string "A100 via RPC" "NVIDIA A100-PCIE-40GB" p.C.name;
  C.set_device client 1;
  check Alcotest.int "selected" 1 (C.get_device client);
  expect_cuda_error Cudasim.Error.Invalid_device (fun () ->
      C.set_device client 99);
  C.device_synchronize client;
  check Alcotest.int "api calls counted" 6 (C.api_calls client)

let test_memory_forwarding () =
  let _, _, client = make_pair () in
  let p = C.malloc client 8192 in
  let data = Bytes.init 8192 (fun i -> Char.chr ((i * 11) land 0xff)) in
  C.memcpy_h2d client ~dst:p data;
  let back = C.memcpy_d2h client ~src:p ~len:8192 in
  check Alcotest.bool "payload intact over RPC" true (Bytes.equal data back);
  let free_bytes, total = C.mem_get_info client in
  check Alcotest.bool "accounting" true (Int64.compare free_bytes total < 0);
  C.free client p;
  expect_cuda_error Cudasim.Error.Invalid_value (fun () -> C.free client p)

let test_large_transfer_fragmentation () =
  (* > 1 MiB forces multi-fragment records through the whole stack *)
  let _, _, client = make_pair () in
  let n = 5 * (1 lsl 20) in
  let p = C.malloc client n in
  let data = Bytes.init n (fun i -> Char.chr ((i * 131) land 0xff)) in
  C.memcpy_h2d client ~dst:p data;
  check Alcotest.bool "5 MiB intact" true
    (Bytes.equal data (C.memcpy_d2h client ~src:p ~len:n));
  check Alcotest.bool "bytes counted" true (C.bytes_to_server client > n)

let test_h2d_zero_copy_to_transport () =
  (* End-to-end proof of the scatter-gather datapath: a large memcpy_h2d's
     payload must reach the transport as a slice physically aliasing the
     caller's buffer — zero copies in the stub, XDR and record layers; the
     transport's own staging is the single copy on the tx path (the seed
     datapath staged the same bytes four times). *)
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 26)
      ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let dispatch = Cricket.Server.dispatch server in
  let payload = Bytes.init (1 lsl 20) (fun i -> Char.chr ((i * 7) land 0xff)) in
  let aliased = ref false in
  let outbox = Buffer.create 1024 in
  let inbox = ref "" in
  let inbox_pos = ref 0 in
  let serve () =
    let stream = Buffer.contents outbox in
    Buffer.clear outbox;
    let replies = Buffer.create 1024 in
    let rec loop pos frags =
      if pos < String.length stream then begin
        let last, len =
          Oncrpc.Record.decode_header (String.sub stream pos 4)
        in
        let frag = String.sub stream (pos + 4) len in
        if last then begin
          (match dispatch (String.concat "" (List.rev (frag :: frags))) with
          | "" -> ()
          | reply -> Buffer.add_string replies (Oncrpc.Record.to_wire reply));
          loop (pos + 4 + len) []
        end
        else loop (pos + 4 + len) (frag :: frags)
      end
    in
    loop 0 [];
    inbox := Buffer.contents replies;
    inbox_pos := 0
  in
  let rec recv buf off len =
    let avail = String.length !inbox - !inbox_pos in
    if avail > 0 then begin
      let n = min len avail in
      Bytes.blit_string !inbox !inbox_pos buf off n;
      inbox_pos := !inbox_pos + n;
      n
    end
    else if Buffer.length outbox > 0 then begin
      serve ();
      recv buf off len
    end
    else raise Oncrpc.Transport.Closed
  in
  let transport =
    Oncrpc.Transport.make
      ~sendv:(fun iov ->
        Xdr.Iovec.iter
          (fun s ->
            if s.Xdr.Iovec.base == Bytes.unsafe_to_string payload then
              aliased := true;
            Buffer.add_substring outbox s.Xdr.Iovec.base s.Xdr.Iovec.off
              s.Xdr.Iovec.len)
          iov)
      ~send:(fun b off len -> Buffer.add_subbytes outbox b off len)
      ~recv
      ~close:(fun () -> ())
      ()
  in
  let client = C.create ~transport () in
  let p = C.malloc client (Bytes.length payload) in
  C.memcpy_h2d client ~dst:p payload;
  check Alcotest.bool "h2d payload reached the transport un-copied" true
    !aliased;
  (* and the download path (now through Decode.opaque_slice) is intact *)
  let back = C.memcpy_d2h client ~src:p ~len:(Bytes.length payload) in
  check Alcotest.bool "d2h roundtrip intact" true (Bytes.equal back payload)

(* --- kernel modules and launches over RPC --- *)

let test_module_and_launch () =
  let _, _, client = make_pair () in
  let image =
    Cubin.Image.of_registry
      [ Gpusim.Kernels.vector_add_name; Gpusim.Kernels.fill_name ]
  in
  let modul = C.module_load client (Cubin.Image.build ~compress:true image) in
  let vadd = C.get_function client ~modul ~name:Gpusim.Kernels.vector_add_name in
  let n = 1024 in
  let f32s a =
    let b = Bytes.create (4 * Array.length a) in
    Array.iteri (fun i v -> Bytes.set_int32_le b (4 * i) (Int32.bits_of_float v)) a;
    b
  in
  let d_a = C.malloc client (4 * n) in
  let d_b = C.malloc client (4 * n) in
  let d_c = C.malloc client (4 * n) in
  C.memcpy_h2d client ~dst:d_a (f32s (Array.init n Float.of_int));
  C.memcpy_h2d client ~dst:d_b (f32s (Array.init n (fun i -> Float.of_int (3 * i))));
  C.launch client vadd
    ~grid:{ C.x = (n + 255) / 256; y = 1; z = 1 }
    ~block:{ C.x = 256; y = 1; z = 1 }
    [|
      Gpusim.Kernels.Ptr (Int64.to_int d_a);
      Gpusim.Kernels.Ptr (Int64.to_int d_b);
      Gpusim.Kernels.Ptr (Int64.to_int d_c);
      Gpusim.Kernels.I32 (Int32.of_int n);
    |];
  C.device_synchronize client;
  let r = C.memcpy_d2h client ~src:d_c ~len:(4 * n) in
  for i = 0 to n - 1 do
    let v = Int32.float_of_bits (Bytes.get_int32_le r (4 * i)) in
    if v <> Float.of_int (4 * i) then
      Alcotest.failf "c[%d] = %f, expected %d" i v (4 * i)
  done;
  (* wrong arg types are rejected client-side from cubin metadata *)
  expect_cuda_error Cudasim.Error.Invalid_value (fun () ->
      C.launch client vadd ~grid:{ C.x = 1; y = 1; z = 1 }
        ~block:{ C.x = 1; y = 1; z = 1 }
        [| Gpusim.Kernels.F32 1.0 |]);
  (* unknown kernel name is a client-side metadata miss *)
  expect_cuda_error Cudasim.Error.Not_found (fun () ->
      ignore (C.get_function client ~modul ~name:"missing"));
  C.module_unload client modul;
  expect_cuda_error Cudasim.Error.Invalid_handle (fun () ->
      ignore (C.get_function client ~modul ~name:Gpusim.Kernels.fill_name))

let test_streams_events_over_rpc () =
  let _, _, client = make_pair () in
  let s = C.stream_create client in
  C.stream_synchronize client s;
  let e1 = C.event_create client in
  let e2 = C.event_create client in
  C.event_record client ~event:e1 ~stream:0L;
  C.event_record client ~event:e2 ~stream:0L;
  C.event_synchronize client e2;
  check Alcotest.bool "elapsed" true
    (C.event_elapsed_ms client ~start:e1 ~stop:e2 >= 0.0);
  C.event_destroy client e1;
  C.event_destroy client e2;
  C.stream_destroy client s;
  expect_cuda_error Cudasim.Error.Invalid_handle (fun () ->
      C.stream_synchronize client s)

let test_cusolver_over_rpc () =
  let _, _, client = make_pair () in
  let handle = C.cusolver_create client in
  let n = 8 in
  (* column-major identity*4 system: solution = b/4 *)
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    a.((i * n) + i) <- 4.0
  done;
  let f32s arr =
    let b = Bytes.create (4 * Array.length arr) in
    Array.iteri (fun i v -> Bytes.set_int32_le b (4 * i) (Int32.bits_of_float v)) arr;
    b
  in
  let d_a = C.malloc client (4 * n * n) in
  let d_b = C.malloc client (4 * n) in
  let d_ipiv = C.malloc client (4 * n) in
  let d_work = C.malloc client (4 * n * n) in
  C.memcpy_h2d client ~dst:d_a (f32s a);
  C.memcpy_h2d client ~dst:d_b (f32s (Array.init n (fun i -> Float.of_int (4 * (i + 1)))));
  check Alcotest.int "getrf info" 0
    (C.cusolver_sgetrf client ~handle ~m:n ~n ~a:d_a ~lda:n ~workspace:d_work
       ~ipiv:d_ipiv);
  check Alcotest.int "getrs info" 0
    (C.cusolver_sgetrs client ~handle ~n ~nrhs:1 ~a:d_a ~lda:n ~ipiv:d_ipiv
       ~b:d_b ~ldb:n);
  let x = C.memcpy_d2h client ~src:d_b ~len:(4 * n) in
  for i = 0 to n - 1 do
    check (Alcotest.float 1e-5)
      (Printf.sprintf "x[%d]" i)
      (Float.of_int (i + 1))
      (Int32.float_of_bits (Bytes.get_int32_le x (4 * i)))
  done;
  C.cusolver_destroy client handle

let test_cublas_l1_over_rpc () =
  (* the routines added to the RPCL spec after the initial release: they
     became callable without touching the transport or dispatch code *)
  let _, _, client = make_pair () in
  let handle = C.cublas_create client in
  let n = 64 in
  let f32s arr =
    let b = Bytes.create (4 * Array.length arr) in
    Array.iteri (fun i v -> Bytes.set_int32_le b (4 * i) (Int32.bits_of_float v)) arr;
    b
  in
  let d_x = C.malloc client (4 * n) in
  let d_y = C.malloc client (4 * n) in
  C.memcpy_h2d client ~dst:d_x (f32s (Array.make n 2.0));
  C.memcpy_h2d client ~dst:d_y (f32s (Array.make n 3.0));
  check (Alcotest.float 1e-3) "sdot" (Float.of_int (6 * n))
    (C.cublas_sdot client ~handle ~n ~x:d_x ~incx:1 ~y:d_y ~incy:1);
  check (Alcotest.float 1e-3) "snrm2" (2.0 *. Float.sqrt (Float.of_int n))
    (C.cublas_snrm2 client ~handle ~n ~x:d_x ~incx:1);
  C.cublas_sscal client ~handle ~n ~alpha:0.5 ~x:d_x ~incx:1;
  check (Alcotest.float 1e-3) "after sscal" (Float.of_int (3 * n))
    (C.cublas_sdot client ~handle ~n ~x:d_x ~incx:1 ~y:d_y ~incy:1);
  (* sgemv: y <- A x with A = 2*I (column-major), x = 1s *)
  let d_a = C.malloc client (4 * n * n) in
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    a.((i * n) + i) <- 2.0
  done;
  C.memcpy_h2d client ~dst:d_a (f32s a);
  C.memcpy_h2d client ~dst:d_x (f32s (Array.make n 1.0));
  C.cublas_sgemv client ~handle ~m:n ~n ~alpha:1.0 ~a:d_a ~lda:n ~x:d_x
    ~incx:1 ~beta:0.0 ~y:d_y ~incy:1;
  C.device_synchronize client;
  let y = C.memcpy_d2h client ~src:d_y ~len:(4 * n) in
  for i = 0 to n - 1 do
    check (Alcotest.float 1e-5) "sgemv" 2.0
      (Int32.float_of_bits (Bytes.get_int32_le y (4 * i)))
  done;
  (* bad handle / bad args *)
  expect_cuda_error Cudasim.Error.Invalid_handle (fun () ->
      ignore (C.cublas_sdot client ~handle:99L ~n ~x:d_x ~incx:1 ~y:d_y ~incy:1));
  expect_cuda_error Cudasim.Error.Invalid_value (fun () ->
      C.cublas_sscal client ~handle ~n ~alpha:1.0 ~x:d_x ~incx:0);
  C.cublas_destroy client handle

(* --- checkpoint / restart over RPC --- *)

let test_checkpoint_restart_rpc () =
  let dir = Filename.temp_file "cricket" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let _, _, client = make_pair ~checkpoint_dir:dir () in
  let p = C.malloc client 4096 in
  C.memcpy_h2d client ~dst:p (Bytes.make 4096 '\x42');
  C.checkpoint client "state.ckpt";
  check Alcotest.bool "file written" true
    (Sys.file_exists (Filename.concat dir "state.ckpt"));
  C.memset client ~ptr:p ~value:0 ~len:4096;
  C.restore client "state.ckpt";
  let back = C.memcpy_d2h client ~src:p ~len:4096 in
  check Alcotest.bool "state restored" true
    (Bytes.equal back (Bytes.make 4096 '\x42'));
  (* path escapes are rejected *)
  expect_cuda_error Cudasim.Error.Invalid_value (fun () ->
      C.checkpoint client "../evil");
  expect_cuda_error Cudasim.Error.Unknown (fun () ->
      C.restore client "missing.ckpt");
  Sys.remove (Filename.concat dir "state.ckpt");
  Unix.rmdir dir

(* --- real TCP transport end to end --- *)

let test_cricket_over_tcp () =
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 24)
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  let tcp = Oncrpc.Server.serve_tcp (Cricket.Server.rpc_server server) ~port:0 () in
  let transport =
    Oncrpc.Transport.tcp_connect ~host:"127.0.0.1"
      ~port:(Oncrpc.Server.tcp_port tcp)
  in
  let client = C.create ~transport () in
  check Alcotest.int "count over TCP" 4 (C.get_device_count client);
  let p = C.malloc client 1024 in
  let data = Bytes.init 1024 (fun i -> Char.chr (i land 0xff)) in
  C.memcpy_h2d client ~dst:p data;
  check Alcotest.bool "roundtrip over TCP" true
    (Bytes.equal data (C.memcpy_d2h client ~src:p ~len:1024));
  C.close client;
  Oncrpc.Server.shutdown_tcp tcp

(* --- per-procedure statistics --- *)

let test_proc_stats () =
  let _, server, client = make_pair () in
  ignore (Cricket.Client.get_device_count client);
  ignore (Cricket.Client.get_device_count client);
  let p = C.malloc client 1024 in
  C.free client p;
  let stats = Cricket.Server.proc_stats server in
  check Alcotest.bool "getDeviceCount counted twice" true
    (List.assoc_opt "rpc_cudaGetDeviceCount" stats = Some 2);
  check Alcotest.bool "malloc counted" true
    (List.assoc_opt "rpc_cudaMalloc" stats = Some 1);
  check Alcotest.int "calls served" 4 (Cricket.Server.calls_served server);
  (* most-called first *)
  match stats with
  | (_, top) :: rest -> 
      List.iter (fun (_, c) -> check Alcotest.bool "sorted" true (c <= top)) rest
  | [] -> Alcotest.fail "no stats"

let test_trace () =
  let engine, server, client = make_pair () in
  ignore engine;
  let trace = Cricket.Server.trace server in
  (* off by default: nothing recorded *)
  ignore (C.get_device_count client);
  check Alcotest.int "disabled: empty" 0 (Cricket.Trace.recorded trace);
  Cricket.Trace.set_enabled trace true;
  ignore (C.get_device_count client);
  let p = C.malloc client 4096 in
  C.memcpy_h2d client ~dst:p (Bytes.create 4096);
  C.free client p;
  let entries = Cricket.Trace.entries trace in
  check Alcotest.int "four calls traced" 4 (List.length entries);
  let names = List.map (fun e -> e.Cricket.Trace.proc_name) entries in
  check (Alcotest.list Alcotest.string) "names in order"
    [ "rpc_cudaGetDeviceCount"; "rpc_cudaMalloc"; "rpc_cudaMemcpyHtoD";
      "rpc_cudaFree" ]
    names;
  (* timestamps are monotone; the memcpy carries its payload size *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Time.compare a.Cricket.Trace.at b.Cricket.Trace.at <= 0
        && monotone rest
    | _ -> true
  in
  check Alcotest.bool "monotone timestamps" true (monotone entries);
  let memcpy = List.nth entries 2 in
  check Alcotest.bool "arg bytes include payload" true
    (memcpy.Cricket.Trace.arg_bytes >= 4096);
  check Alcotest.bool "dispatch had a duration" true
    (Time.compare memcpy.Cricket.Trace.duration Time.zero > 0);
  (* ring bounding *)
  let small = Cricket.Trace.create ~capacity:3 () in
  Cricket.Trace.set_enabled small true;
  for i = 1 to 10 do
    Cricket.Trace.record small ~now:(Time.us i) ~proc:i ~proc_name:"p"
      ~arg_bytes:0 ~duration:Time.zero
  done;
  check Alcotest.int "recorded total" 10 (Cricket.Trace.recorded small);
  let kept = Cricket.Trace.entries small in
  check Alcotest.int "ring keeps capacity" 3 (List.length kept);
  check Alcotest.int "oldest kept is #7" 7
    (List.hd kept).Cricket.Trace.seq;
  Cricket.Trace.clear small;
  (* clear drops the buffered entries but keeps the lifetime total, so
     [recorded] never lies about how many calls were traced *)
  check Alcotest.int "cleared: entries gone" 0
    (List.length (Cricket.Trace.entries small));
  check Alcotest.int "cleared: lifetime total survives" 10
    (Cricket.Trace.recorded small);
  (* and seq keeps counting where it left off rather than restarting *)
  Cricket.Trace.record small ~now:(Time.us 11) ~proc:11 ~proc_name:"p"
    ~arg_bytes:0 ~duration:Time.zero;
  (match Cricket.Trace.entries small with
  | [ e ] -> check Alcotest.int "post-clear seq continues" 10 e.Cricket.Trace.seq
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l));
  check Alcotest.int "post-clear total" 11 (Cricket.Trace.recorded small)

(* --- lifetime tracking --- *)

let test_lifetime () =
  let _, _, client = make_pair () in
  let buf = Cricket.Lifetime.alloc client 1024 in
  check Alcotest.bool "live" true (Cricket.Lifetime.is_live buf);
  Cricket.Lifetime.upload buf (Bytes.make 1024 'q');
  check Alcotest.bool "download" true
    (Bytes.equal (Bytes.make 1024 'q') (Cricket.Lifetime.download buf));
  Cricket.Lifetime.fill buf 0;
  check Alcotest.int "fill" 0
    (Char.code (Bytes.get (Cricket.Lifetime.download_part buf ~offset:5 ~len:1) 0));
  (* bounds *)
  (match Cricket.Lifetime.upload_at buf ~offset:1000 (Bytes.make 100 'x') with
  | _ -> Alcotest.fail "expected bounds failure"
  | exception Invalid_argument _ -> ());
  Cricket.Lifetime.free buf;
  (match Cricket.Lifetime.free buf with
  | _ -> Alcotest.fail "expected Double_free"
  | exception Cricket.Lifetime.Double_free -> ());
  (match Cricket.Lifetime.download buf with
  | _ -> Alcotest.fail "expected Use_after_free"
  | exception Cricket.Lifetime.Use_after_free -> ());
  match Cricket.Lifetime.ptr buf with
  | _ -> Alcotest.fail "expected Use_after_free on ptr"
  | exception Cricket.Lifetime.Use_after_free -> ()

let test_lifetime_with_buffer () =
  let _, server, client = make_pair () in
  let live_before =
    Gpusim.Memory.live_allocations
      (Gpusim.Gpu.memory (Cudasim.Context.gpu (Cricket.Server.context server)))
  in
  (* freed on normal exit *)
  Cricket.Lifetime.with_buffer client 512 (fun buf ->
      Cricket.Lifetime.fill buf 1);
  (* freed on exception too *)
  (match
     Cricket.Lifetime.with_buffer client 512 (fun _ -> failwith "boom")
   with
  | _ -> Alcotest.fail "exception must propagate"
  | exception Failure _ -> ());
  let live_after =
    Gpusim.Memory.live_allocations
      (Gpusim.Gpu.memory (Cudasim.Context.gpu (Cricket.Server.context server)))
  in
  check Alcotest.int "no leaks" live_before live_after

(* --- transfer strategies --- *)

let test_transfer_strategies () =
  check Alcotest.bool "rpc args ok in unikernel" true
    (Cricket.Transfer.supported_by_unikernel Cricket.Transfer.Rpc_arguments);
  List.iter
    (fun s ->
      check Alcotest.bool (Cricket.Transfer.to_string s) false
        (Cricket.Transfer.supported_by_unikernel s);
      match Cricket.Transfer.check_available ~unikernel:true s with
      | _ -> Alcotest.fail "expected Unsupported"
      | exception Cricket.Transfer.Unsupported _ -> ())
    [ Cricket.Transfer.Parallel_tcp 4; Cricket.Transfer.Infiniband_rdma;
      Cricket.Transfer.Shared_memory ];
  (* native can use everything *)
  List.iter
    (Cricket.Transfer.check_available ~unikernel:false)
    [ Cricket.Transfer.Parallel_tcp 8; Cricket.Transfer.Infiniband_rdma;
      Cricket.Transfer.Shared_memory ];
  (* bandwidth ordering: rpc-args < parallel < rdma < shm *)
  let bw s = Cricket.Transfer.bandwidth_multiplier s in
  check Alcotest.bool "ordering" true
    (bw Cricket.Transfer.Rpc_arguments < bw (Cricket.Transfer.Parallel_tcp 4)
    && bw (Cricket.Transfer.Parallel_tcp 4) < bw Cricket.Transfer.Infiniband_rdma
    && bw Cricket.Transfer.Infiniband_rdma < bw Cricket.Transfer.Shared_memory);
  (* staging copies per strategy, matching the DESIGN.md datapath table *)
  let copies s = Cricket.Transfer.staging_copies s in
  check Alcotest.int "rpc args: one staging copy" 1
    (copies Cricket.Transfer.Rpc_arguments);
  check Alcotest.int "rdma: no staging" 0
    (copies Cricket.Transfer.Infiniband_rdma);
  check Alcotest.int "shm: no staging" 0
    (copies Cricket.Transfer.Shared_memory);
  check Alcotest.bool "parallel tcp stages more" true
    (copies (Cricket.Transfer.Parallel_tcp 4)
    > copies Cricket.Transfer.Rpc_arguments);
  (* parallel sockets scale sublinearly and saturate *)
  check Alcotest.bool "diminishing" true
    (bw (Cricket.Transfer.Parallel_tcp 16) -. bw (Cricket.Transfer.Parallel_tcp 8)
    < bw (Cricket.Transfer.Parallel_tcp 2) -. bw (Cricket.Transfer.Parallel_tcp 1))

(* --- scheduler --- *)

let job client arrival_us duration_us priority =
  { Cricket.Sched.client; arrival = Time.us arrival_us;
    duration = Time.us duration_us; priority }

let test_sched_fifo () =
  let jobs = [ job "b" 10 100 0; job "a" 0 100 0; job "c" 20 100 0 ] in
  let placements = Cricket.Sched.schedule Cricket.Sched.Fifo jobs in
  check (Alcotest.list Alcotest.string) "fifo order" [ "a"; "b"; "c" ]
    (List.map (fun p -> p.Cricket.Sched.job.Cricket.Sched.client) placements);
  check Alcotest.int64 "makespan" (Time.us 300)
    (Cricket.Sched.makespan placements);
  (* no overlap on the single GPU *)
  let rec no_overlap = function
    | a :: (b :: _ as rest) ->
        Time.compare a.Cricket.Sched.finish b.Cricket.Sched.start <= 0
        && no_overlap rest
    | _ -> true
  in
  check Alcotest.bool "serialized" true (no_overlap placements)

let test_sched_priority () =
  (* all arrive while the GPU is busy; priority decides order *)
  let jobs =
    [ job "first" 0 100 5; job "low" 1 50 9; job "high" 2 50 1;
      job "mid" 3 50 4 ]
  in
  let placements = Cricket.Sched.schedule Cricket.Sched.Priority jobs in
  check (Alcotest.list Alcotest.string) "priority order"
    [ "first"; "high"; "mid"; "low" ]
    (List.map (fun p -> p.Cricket.Sched.job.Cricket.Sched.client) placements)

let test_sched_round_robin_fairness () =
  (* client "hog" floods; "small" submits interleaved jobs. RR must not
     starve "small". *)
  let hog = List.init 10 (fun i -> job "hog" i 100 0) in
  let small = List.init 5 (fun i -> job "small" (i * 2) 100 0) in
  let placements = Cricket.Sched.schedule Cricket.Sched.Round_robin (hog @ small) in
  let stats = Cricket.Sched.per_client placements in
  let small_stats = List.assoc "small" stats in
  let hog_stats = List.assoc "hog" stats in
  (* under FIFO, hog's earlier arrivals would all run first *)
  let fifo = Cricket.Sched.schedule Cricket.Sched.Fifo (hog @ small) in
  let fifo_small = List.assoc "small" (Cricket.Sched.per_client fifo) in
  check Alcotest.bool "rr reduces small's max wait" true
    (Time.compare small_stats.Cricket.Sched.max_waiting
       fifo_small.Cricket.Sched.max_waiting
    < 0);
  check Alcotest.int "all jobs ran" 15
    (small_stats.Cricket.Sched.jobs + hog_stats.Cricket.Sched.jobs);
  (* fairness index for equal-duration interleaved arrivals *)
  check Alcotest.bool "fairness in (0,1]" true
    (Cricket.Sched.fairness placements > 0.5
    && Cricket.Sched.fairness placements <= 1.0)

let test_sched_idle_gap () =
  (* GPU idles between separated arrivals; start times respect arrival *)
  let placements =
    Cricket.Sched.schedule Cricket.Sched.Fifo [ job "a" 0 10 0; job "b" 1000 10 0 ]
  in
  match placements with
  | [ a; b ] ->
      check Alcotest.int64 "a starts immediately" Time.zero a.Cricket.Sched.start;
      check Alcotest.int64 "b waits for arrival" (Time.us 1000)
        b.Cricket.Sched.start
  | _ -> Alcotest.fail "expected two placements"

let test_sched_multi_gpu () =
  (* 8 equal jobs, all at t=0: 4 GPUs should quarter the makespan *)
  let jobs = List.init 8 (fun i -> job (Printf.sprintf "c%d" i) 0 100 0) in
  let one = Cricket.Sched.schedule Cricket.Sched.Fifo jobs in
  let four = Cricket.Sched.schedule_multi Cricket.Sched.Fifo ~gpus:4 jobs in
  check Alcotest.int64 "1 gpu makespan" (Time.us 800)
    (Cricket.Sched.makespan one);
  check Alcotest.int64 "4 gpu makespan" (Time.us 200)
    (Cricket.Sched.multi_makespan four);
  (* every job placed exactly once on a valid GPU *)
  check Alcotest.int "all placed" 8 (List.length four);
  List.iter
    (fun p ->
      check Alcotest.bool "valid gpu" true
        (p.Cricket.Sched.gpu >= 0 && p.Cricket.Sched.gpu < 4))
    four;
  (* utilization is balanced for uniform work *)
  let util = Cricket.Sched.gpu_utilization four ~gpus:4 in
  Array.iter
    (fun u -> check Alcotest.bool "fully utilized" true (u > 0.99))
    util;
  match Cricket.Sched.schedule_multi Cricket.Sched.Fifo ~gpus:0 jobs with
  | _ -> Alcotest.fail "gpus=0 must raise"
  | exception Invalid_argument _ -> ()

let test_sched_multi_no_overlap_per_gpu () =
  let jobs =
    List.init 20 (fun i -> job (Printf.sprintf "c%d" (i mod 5)) (i * 30) (50 + (i mod 3 * 20)) 0)
  in
  let placements = Cricket.Sched.schedule_multi Cricket.Sched.Round_robin ~gpus:3 jobs in
  (* per-GPU serialization *)
  for g = 0 to 2 do
    let on_g =
      List.filter (fun p -> p.Cricket.Sched.gpu = g) placements
      |> List.sort (fun a b -> Time.compare a.Cricket.Sched.mp_start b.Cricket.Sched.mp_start)
    in
    let rec no_overlap = function
      | a :: (b :: _ as rest) ->
          Time.compare a.Cricket.Sched.mp_finish b.Cricket.Sched.mp_start <= 0
          && no_overlap rest
      | _ -> true
    in
    check Alcotest.bool (Printf.sprintf "gpu %d serialized" g) true
      (no_overlap on_g)
  done;
  (* no job starts before its arrival *)
  List.iter
    (fun p ->
      check Alcotest.bool "respects arrival" true
        (Time.compare p.Cricket.Sched.mp_start
           p.Cricket.Sched.mp_job.Cricket.Sched.arrival
        >= 0))
    placements

let prop_sched_conservation =
  QCheck.Test.make ~count:100 ~name:"scheduler conserves work"
    QCheck.(list_of_size (Gen.int_range 1 20)
              (triple (int_range 0 1000) (int_range 1 500) (int_range 0 5)))
    (fun specs ->
      let jobs =
        List.mapi
          (fun i (arrival, duration, priority) ->
            job (Printf.sprintf "c%d" (i mod 3)) arrival duration priority)
          specs
      in
      List.for_all
        (fun policy ->
          let placements = Cricket.Sched.schedule policy jobs in
          List.length placements = List.length jobs
          && (* makespan >= total work *)
          Time.compare
            (Cricket.Sched.makespan placements)
            (List.fold_left
               (fun acc j -> Time.add acc j.Cricket.Sched.duration)
               Time.zero jobs)
          >= 0
          && (* every job starts at or after its arrival *)
          List.for_all
            (fun p ->
              Time.compare p.Cricket.Sched.start
                p.Cricket.Sched.job.Cricket.Sched.arrival
              >= 0)
            placements)
        [ Cricket.Sched.Fifo; Cricket.Sched.Round_robin; Cricket.Sched.Priority ])

let prop_rr_equal_history_name_order =
  (* Round robin breaks ties between equally-deserving clients by name:
     jobs that all arrive together from never-served clients must run in
     client-name order regardless of submission order. Determinism is
     what makes multi-tenant runs reproducible. *)
  let gen =
    QCheck.Gen.(
      int_range 1 12 >>= fun n ->
      shuffle_l (List.init n (Printf.sprintf "c%02d")))
  in
  QCheck.Test.make ~count:200
    ~name:"round robin serves equal-history clients in name order"
    (QCheck.make ~print:(String.concat ",") gen)
    (fun names ->
      let jobs = List.map (fun c -> job c 0 100 0) names in
      let served =
        Cricket.Sched.schedule Cricket.Sched.Round_robin jobs
        |> List.map (fun p -> p.Cricket.Sched.job.Cricket.Sched.client)
      in
      served = List.sort compare names
      && (* and the schedule itself is a pure function of the job set *)
      Cricket.Sched.schedule Cricket.Sched.Round_robin jobs
      = Cricket.Sched.schedule Cricket.Sched.Round_robin jobs)

let prop_priority_starvation_bounded =
  (* Strict priority can delay a low-priority job but never starve it:
     with finite work every job finishes by (last arrival + total
     duration), because the scheduler is work-conserving. *)
  QCheck.Test.make ~count:200 ~name:"priority starvation is bounded"
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (triple (int_range 0 1000) (int_range 1 500) (int_range 0 3)))
    (fun specs ->
      let jobs =
        List.mapi
          (fun i (arrival, duration, priority) ->
            job (Printf.sprintf "c%d" (i mod 4)) arrival duration priority)
          specs
      in
      let placements = Cricket.Sched.schedule Cricket.Sched.Priority jobs in
      let last_arrival =
        List.fold_left
          (fun acc j ->
            if Time.compare acc j.Cricket.Sched.arrival >= 0 then acc
            else j.Cricket.Sched.arrival)
          Time.zero jobs
      in
      let total =
        List.fold_left
          (fun acc j -> Time.add acc j.Cricket.Sched.duration)
          Time.zero jobs
      in
      let bound = Time.add last_arrival total in
      List.length placements = List.length jobs
      && List.for_all
           (fun p -> Time.compare p.Cricket.Sched.finish bound <= 0)
           placements)

let suite =
  [
    Alcotest.test_case "device forwarding" `Quick test_device_forwarding;
    Alcotest.test_case "memory forwarding" `Quick test_memory_forwarding;
    Alcotest.test_case "multi-fragment transfers" `Quick
      test_large_transfer_fragmentation;
    Alcotest.test_case "h2d zero-copy to transport" `Quick
      test_h2d_zero_copy_to_transport;
    Alcotest.test_case "module load + launch over RPC" `Quick
      test_module_and_launch;
    Alcotest.test_case "streams/events over RPC" `Quick
      test_streams_events_over_rpc;
    Alcotest.test_case "cuSOLVER over RPC" `Quick test_cusolver_over_rpc;
    Alcotest.test_case "cuBLAS L1/L2 over RPC" `Quick test_cublas_l1_over_rpc;
    Alcotest.test_case "checkpoint/restart over RPC" `Quick
      test_checkpoint_restart_rpc;
    Alcotest.test_case "cricket over real TCP" `Quick test_cricket_over_tcp;
    Alcotest.test_case "per-procedure stats" `Quick test_proc_stats;
    Alcotest.test_case "call tracing" `Quick test_trace;
    Alcotest.test_case "lifetime tracking" `Quick test_lifetime;
    Alcotest.test_case "with_buffer scoping" `Quick test_lifetime_with_buffer;
    Alcotest.test_case "transfer strategies" `Quick test_transfer_strategies;
    Alcotest.test_case "scheduler FIFO" `Quick test_sched_fifo;
    Alcotest.test_case "scheduler priority" `Quick test_sched_priority;
    Alcotest.test_case "scheduler round-robin fairness" `Quick
      test_sched_round_robin_fairness;
    Alcotest.test_case "scheduler idle gaps" `Quick test_sched_idle_gap;
    Alcotest.test_case "multi-GPU scheduling" `Quick test_sched_multi_gpu;
    Alcotest.test_case "multi-GPU per-queue serialization" `Quick
      test_sched_multi_no_overlap_per_gpu;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_sched_conservation; prop_rr_equal_history_name_order;
        prop_priority_starvation_bounded;
      ]
