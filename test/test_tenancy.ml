(* The multi-tenant serving core: admission windows with typed
   rejections, DRR fair-share dispatch, leases with virtual-time TTL and
   device-memory reclaim, the end-to-end Core loop, and the load
   harness's byte-determinism. The capstone scenario: a lease that
   expires while the server is down mid-session-recovery must deny the
   journal replay with a typed Lease_expired — never a partial replay —
   and return the tenant's arena bytes to baseline. *)

module Time = Simnet.Time
module Engine = Simnet.Engine

let check = Alcotest.check

(* --- admission --- *)

let test_admission_windows () =
  let adm =
    Tenancy.Admission.create
      ~config:
        { Tenancy.Admission.per_tenant_window = 2; global_window = 4;
          high_water = 4 }
      ~n_tenants:3 ()
  in
  check Alcotest.bool "first admitted" true
    (Tenancy.Admission.offer adm ~tenant:0 = Ok ());
  check Alcotest.bool "second admitted" true
    (Tenancy.Admission.offer adm ~tenant:0 = Ok ());
  (* per-tenant window full *)
  check Alcotest.bool "third over quota" true
    (Tenancy.Admission.offer adm ~tenant:0
    = Error Tenancy.Admission.Over_quota);
  (* other tenants still fit until the global wall *)
  check Alcotest.bool "tenant 1 admitted" true
    (Tenancy.Admission.offer adm ~tenant:1 = Ok ());
  check Alcotest.bool "tenant 2 admitted" true
    (Tenancy.Admission.offer adm ~tenant:2 = Ok ());
  check Alcotest.bool "global wall" true
    (Tenancy.Admission.offer adm ~tenant:2
    = Error Tenancy.Admission.Overloaded);
  (* completion frees a slot *)
  Tenancy.Admission.complete adm ~tenant:0;
  check Alcotest.bool "slot freed" true
    (Tenancy.Admission.offer adm ~tenant:0 = Ok ());
  let s = Tenancy.Admission.stats adm in
  check Alcotest.int "admitted" 5 s.Tenancy.Admission.admitted;
  check Alcotest.int "quota rejections" 1 s.Tenancy.Admission.rejected_quota;
  check Alcotest.int "overload rejections" 1
    s.Tenancy.Admission.rejected_overload

let test_admission_load_shedding () =
  (* between high_water and global_window only tenants with nothing in
     flight get in: light tenants survive a heavy neighbour's burst *)
  let adm =
    Tenancy.Admission.create
      ~config:
        { Tenancy.Admission.per_tenant_window = 100; global_window = 100;
          high_water = 2 }
      ~n_tenants:2 ()
  in
  check Alcotest.bool "heavy 1" true
    (Tenancy.Admission.offer adm ~tenant:0 = Ok ());
  check Alcotest.bool "heavy 2" true
    (Tenancy.Admission.offer adm ~tenant:0 = Ok ());
  (* high water reached: the heavy tenant is shed... *)
  check Alcotest.bool "heavy shed" true
    (Tenancy.Admission.offer adm ~tenant:0
    = Error Tenancy.Admission.Overloaded);
  (* ...but a tenant with nothing in flight is still admitted *)
  check Alcotest.bool "light admitted" true
    (Tenancy.Admission.offer adm ~tenant:1 = Ok ());
  check Alcotest.int "shed counted" 1
    (Tenancy.Admission.stats adm).Tenancy.Admission.shed

(* --- dispatch --- *)

let drr ?(quantum = 1_000) tenants =
  Tenancy.Dispatch.create ~policy:Cricket.Sched.Round_robin
    ~quantum_ns:quantum
    ~tenants:(Array.of_list tenants)
    ~priorities:(Array.make (List.length tenants) 0)
    ()

let drain_with_costs d cost_of =
  let order = ref [] in
  let rec go () =
    match Tenancy.Dispatch.next d with
    | None -> ()
    | Some (tenant, item) ->
        order := (tenant, item) :: !order;
        Tenancy.Dispatch.charge d ~tenant ~cost_ns:(cost_of tenant item);
        go ()
  in
  go ();
  List.rev !order

let test_drr_equal_share () =
  (* tenant 0's items cost 4x tenant 1's; with both backlogged, DRR must
     serve tenant 1 about 4x as many items per unit time: equal virtual
     service, not equal item counts *)
  let d = drr ~quantum:4_000 [ "a"; "b" ] in
  for i = 0 to 39 do
    Tenancy.Dispatch.enqueue d ~tenant:0 i;
    Tenancy.Dispatch.enqueue d ~tenant:1 i
  done;
  let costs = function 0 -> 4_000 | _ -> 1_000 in
  let order = drain_with_costs d (fun t _ -> costs t) in
  (* look at the first 20 served: service should be near-equal *)
  let first = List.filteri (fun i _ -> i < 20) order in
  let busy = [| 0; 0 |] in
  List.iter (fun (t, _) -> busy.(t) <- busy.(t) + costs t) first;
  let ratio = float_of_int busy.(0) /. float_of_int busy.(1) in
  check Alcotest.bool "near-equal virtual service" true
    (ratio > 0.5 && ratio < 2.0);
  check Alcotest.int "everything served eventually" 80 (List.length order);
  check Alcotest.bool "rotations happened" true
    (Tenancy.Dispatch.rotations d > 0)

let test_drr_deterministic () =
  let run () =
    let d = drr [ "a"; "b"; "c" ] in
    for i = 0 to 29 do
      Tenancy.Dispatch.enqueue d ~tenant:(i mod 3) i
    done;
    drain_with_costs d (fun t i -> 500 + (137 * t) + (31 * (i mod 5)))
  in
  check Alcotest.bool "same enqueue sequence, same service order" true
    (run () = run ())

let test_dispatch_priority_classes () =
  let d =
    Tenancy.Dispatch.create ~policy:Cricket.Sched.Priority ~quantum_ns:1_000
      ~tenants:[| "low"; "high" |] ~priorities:[| 5; 1 |] ()
  in
  Tenancy.Dispatch.enqueue d ~tenant:0 "l1";
  Tenancy.Dispatch.enqueue d ~tenant:1 "h1";
  Tenancy.Dispatch.enqueue d ~tenant:0 "l2";
  Tenancy.Dispatch.enqueue d ~tenant:1 "h2";
  let order = drain_with_costs d (fun _ _ -> 100) in
  check
    Alcotest.(list (pair int string))
    "high class drains before low" [ (1, "h1"); (1, "h2"); (0, "l1"); (0, "l2") ]
    order

let test_dispatch_fifo_order () =
  let d =
    Tenancy.Dispatch.create ~policy:Cricket.Sched.Fifo ~tenants:[| "a"; "b" |]
      ~priorities:[| 0; 0 |] ()
  in
  Tenancy.Dispatch.enqueue d ~tenant:1 "x";
  Tenancy.Dispatch.enqueue d ~tenant:0 "y";
  Tenancy.Dispatch.enqueue d ~tenant:1 "z";
  let order = drain_with_costs d (fun _ _ -> 100) in
  check
    Alcotest.(list (pair int string))
    "arrival order" [ (1, "x"); (0, "y"); (1, "z") ]
    order

(* --- leases against a live server --- *)

let make_server () =
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context server) false;
  (engine, server)

let used_bytes server =
  Gpusim.Memory.used_bytes
    (Gpusim.Gpu.memory (Cudasim.Context.gpu (Cricket.Server.context server)))

let connect_tenant core ~tenant engine =
  Cricket.Client.create
    ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
    ~transport:
      (Cricket.Local.transport_of_dispatch (fun record ->
           Tenancy.Core.dispatch_for core ~tenant record))
    ()

let test_lease_caps_enforced () =
  let engine, server = make_server () in
  let caps =
    { Tenancy.Lease.mem_bytes = 8192; streams = 1; ttl = Time.s 10 }
  in
  let core =
    Tenancy.Core.create ~engine ~server ~policy:Cricket.Sched.Round_robin
      ~tenants:[| { Tenancy.Core.name = "t0"; priority = 0; caps = Some caps } |]
      ()
  in
  let client = connect_tenant core ~tenant:0 engine in
  let p1 = Cricket.Client.malloc client 4096 in
  let _p2 = Cricket.Client.malloc client 4096 in
  (* cap reached: the next allocation fails like device OOM *)
  (match Cricket.Client.malloc client 16 with
  | _ -> Alcotest.fail "expected allocation failure at the cap"
  | exception Cudasim.Error.Cuda_error Cudasim.Error.Memory_allocation -> ());
  (* freeing makes room again *)
  Cricket.Client.free client p1;
  let p3 = Cricket.Client.malloc client 4096 in
  check Alcotest.bool "allocation after free succeeds" true (p3 <> 0L);
  (* stream cap: one live stream allowed *)
  let s1 = Cricket.Client.stream_create client in
  (match Cricket.Client.stream_create client with
  | _ -> Alcotest.fail "expected stream cap rejection"
  | exception Cudasim.Error.Cuda_error _ -> ());
  Cricket.Client.stream_destroy client s1;
  let s2 = Cricket.Client.stream_create client in
  check Alcotest.bool "stream after destroy succeeds" true (s2 <> 0L);
  let stats = Tenancy.Lease.stats (Tenancy.Core.lease_registry core) in
  check Alcotest.int "denied mallocs" 1 stats.Tenancy.Lease.denied_mallocs;
  check Alcotest.int "denied streams" 1 stats.Tenancy.Lease.denied_streams

let test_lease_expiry_reclaims_memory () =
  let engine, server = make_server () in
  let baseline = used_bytes server in
  let caps =
    { Tenancy.Lease.mem_bytes = 1 lsl 20; streams = 4; ttl = Time.ms 5 }
  in
  let core =
    Tenancy.Core.create ~engine ~server ~policy:Cricket.Sched.Round_robin
      ~tenants:[| { Tenancy.Core.name = "t0"; priority = 0; caps = Some caps } |]
      ()
  in
  let registry = Tenancy.Core.lease_registry core in
  let client = connect_tenant core ~tenant:0 engine in
  let _p = Cricket.Client.malloc client 65536 in
  let _s = Cricket.Client.stream_create client in
  check Alcotest.bool "arena grew" true (used_bytes server > baseline);
  (match Tenancy.Lease.find registry "t0" with
  | Some l ->
      check Alcotest.int "lease accounts the allocation" 65536
        l.Tenancy.Lease.mem_used
  | None -> Alcotest.fail "lease missing");
  (* renewal extends expiry *)
  (match Tenancy.Lease.renew registry ~tenant:"t0" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "renewal of an active lease");
  (* let the (renewed) lease run out in virtual time *)
  Engine.advance engine (Time.ms 6);
  (* the next call is denied with the typed Lease_expired auth error *)
  (match Cricket.Client.malloc client 256 with
  | _ -> Alcotest.fail "expected Lease_expired denial"
  | exception
      Oncrpc.Client.Rpc_error
        (Oncrpc.Client.Call_rejected (Oncrpc.Message.Auth_error stat)) ->
      check Alcotest.bool "typed reason recovers" true
        (Cricket.Server.reject_of_auth_stat stat = Some `Lease_expired));
  (* ...and the tenant's device memory and streams were reclaimed *)
  check Alcotest.int "arena back to baseline" baseline (used_bytes server);
  let stats = Tenancy.Lease.stats registry in
  check Alcotest.int "one expiry" 1 stats.Tenancy.Lease.expiries;
  check Alcotest.int "bytes reclaimed" 65536
    stats.Tenancy.Lease.reclaimed_bytes;
  check Alcotest.int "stream reclaimed" 1
    stats.Tenancy.Lease.reclaimed_streams;
  match Tenancy.Lease.check registry ~tenant:"t0" with
  | Error `Expired -> ()
  | _ -> Alcotest.fail "lease should be Expired"

(* --- the serving core end to end --- *)

let test_core_typed_rejections_and_fairness () =
  let engine, server = make_server () in
  let tenants =
    Array.init 4 (fun i ->
        { Tenancy.Core.name = Printf.sprintf "t%d" i; priority = 0;
          caps = None })
  in
  let core =
    Tenancy.Core.create ~engine ~server ~policy:Cricket.Sched.Round_robin
      ~admission:
        { Tenancy.Admission.per_tenant_window = 1; global_window = 64;
          high_water = 64 }
      ~tenants ()
  in
  let clients = Array.init 4 (fun i -> connect_tenant core ~tenant:i engine) in
  let work i () =
    let p = Cricket.Client.malloc clients.(i) 4096 in
    Cricket.Client.free clients.(i) p
  in
  (* two items per tenant at the same instant: the second of each pair
     finds the tenant window full and is rejected Over_quota *)
  let items =
    List.concat
      (List.init 4 (fun i ->
           [
             { Tenancy.Core.tenant = i; arrival = Time.zero; work = work i };
             { Tenancy.Core.tenant = i; arrival = Time.zero; work = work i };
           ]))
  in
  let result = Tenancy.Core.run core items in
  check Alcotest.int "one completion per tenant" 4
    result.Tenancy.Core.completed;
  check Alcotest.int "one Over_quota per tenant" 4
    result.Tenancy.Core.rejected;
  Array.iter
    (fun (tr : Tenancy.Core.tenant_result) ->
      check Alcotest.int "tenant completed" 1 tr.Tenancy.Core.completed;
      check Alcotest.int "tenant rejected quota" 1
        tr.Tenancy.Core.rejected_quota)
    result.Tenancy.Core.tenants;
  (* identical work per tenant: Jain over busy time should be ~1 *)
  check Alcotest.bool "fair share" true (result.Tenancy.Core.jain > 0.99);
  check Alcotest.bool "sojourn recorded" true
    (Obs.Histogram.count result.Tenancy.Core.aggregate = 4)

let test_core_obs_labels () =
  let engine, server = make_server () in
  let obs = Obs.Recorder.create () in
  Obs.Recorder.set_enabled obs true;
  let core =
    Tenancy.Core.create ~engine ~server ~policy:Cricket.Sched.Fifo ~obs
      ~tenants:
        [|
          { Tenancy.Core.name = "uk0"; priority = 0; caps = None };
          { Tenancy.Core.name = "uk1"; priority = 0; caps = None };
        |]
      ()
  in
  let clients = Array.init 2 (fun i -> connect_tenant core ~tenant:i engine) in
  let item i =
    { Tenancy.Core.tenant = i; arrival = Time.zero;
      work =
        (fun () ->
          let p = Cricket.Client.malloc clients.(i) 1024 in
          Cricket.Client.free clients.(i) p);
    }
  in
  let (_ : Tenancy.Core.result) = Tenancy.Core.run core [ item 0; item 1 ] in
  check Alcotest.int "per-tenant served counter" 1
    (Obs.Recorder.counter obs
       (Obs.Recorder.tenant_label "tenancy.served" ~tenant:"uk0"));
  let served = Obs.Recorder.counters_prefixed obs ~prefix:"tenancy.served" in
  check Alcotest.int "one labelled counter per tenant" 2 (List.length served);
  match Obs.Recorder.tenant_of_label (fst (List.hd served)) with
  | Some ("tenancy.served", "uk0") -> ()
  | _ -> Alcotest.fail "label parse"

(* --- load harness determinism --- *)

let tiny_params =
  {
    Tenancy.Loadgen.smoke with
    Tenancy.Loadgen.tenants = 60;
    items_per_tenant = 3;
    mean_gap = Time.ms 2;
    admission =
      { Tenancy.Admission.per_tenant_window = 2; global_window = 16;
        high_water = 12 };
  }

let test_loadgen_deterministic () =
  let a = Tenancy.Loadgen.to_string (Tenancy.Loadgen.run tiny_params) in
  let b = Tenancy.Loadgen.to_string (Tenancy.Loadgen.run tiny_params) in
  check Alcotest.string "byte-identical reports" a b;
  (* a different seed produces a different trajectory *)
  let c =
    Tenancy.Loadgen.to_string
      (Tenancy.Loadgen.run { tiny_params with Tenancy.Loadgen.seed = 43 })
  in
  check Alcotest.bool "seed matters" true (a <> c)

let test_loadgen_accounts_every_item () =
  List.iter
    (fun (r : Tenancy.Loadgen.report) ->
      check Alcotest.int "offered = completed + rejected"
        r.Tenancy.Loadgen.items
        (r.Tenancy.Loadgen.completed + r.Tenancy.Loadgen.rejected_quota
       + r.Tenancy.Loadgen.rejected_overload
       + r.Tenancy.Loadgen.rejected_expired);
      check Alcotest.int "no errors" 0 r.Tenancy.Loadgen.errors)
    (Tenancy.Loadgen.run tiny_params)

let test_loadgen_uniform_fairness () =
  let reports =
    Tenancy.Loadgen.run
      {
        tiny_params with
        Tenancy.Loadgen.uniform = true;
        policies = [ Cricket.Sched.Round_robin ];
      }
  in
  List.iter
    (fun (r : Tenancy.Loadgen.report) ->
      check Alcotest.bool "DRR fair on uniform load" true
        (r.Tenancy.Loadgen.jain >= 0.9))
    reports

(* --- lease expiry during session recovery (no partial replay) --- *)

let test_lease_expiry_during_recovery () =
  let engine = Engine.create () in
  let clock = Cudasim.Context.engine_clock engine in
  let ckpt_file = Filename.temp_file "tenancy-session" ".ckpt" in
  let checkpoint_dir = Filename.dirname ckpt_file in
  let checkpoint_name = Filename.basename ckpt_file in
  let first = Cricket.Server.create ~checkpoint_dir ~clock () in
  Cudasim.Context.set_functional (Cricket.Server.context first) false;
  let server = ref first in
  let registry =
    Tenancy.Lease.create
      ~now:(fun () -> Engine.now engine)
      ~ctx:(fun () -> Cricket.Server.context !server)
      ()
  in
  Tenancy.Lease.install registry !server;
  ignore
    (Tenancy.Lease.grant registry ~tenant:"t0"
       { Tenancy.Lease.mem_bytes = 1 lsl 20; streams = 4; ttl = Time.ms 4 });
  (* the server crashes mid-workload and stays down past the lease TTL *)
  let plan =
    {
      Simnet.Fault.none with
      Simnet.Fault.seed = 11;
      crashes = [ { Simnet.Fault.after_records = 60; down_for = Time.ms 8 } ];
    }
  in
  let fault = Simnet.Fault.make plan in
  let channel =
    Unikernel.Simchannel.create ~engine
      ~client:Unikernel.Config.hermit.Unikernel.Config.profile ~fault
      ~on_crash:(fun ~down_for:_ ->
        let fresh = Cricket.Server.respawn !server in
        Cudasim.Context.set_functional (Cricket.Server.context fresh) false;
        (* the supervisor re-installs the lease hooks on the new process *)
        Tenancy.Lease.install registry fresh;
        server := fresh)
      ~dispatch:(fun request ->
        Cricket.Server.dispatch_for !server ~tenant:"t0" request)
      ()
  in
  let client =
    Cricket.Client.create
      ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
      ~transport:(Unikernel.Simchannel.transport channel)
      ()
  in
  Cricket.Client.enable_recovery
    ~retry:{ Oncrpc.Client.default_retry with max_attempts = 12 }
    ~checkpoint_every:8 ~checkpoint_name client
    ~now:(fun () -> Engine.now engine)
    ~sleep:(fun ns -> Engine.advance engine ns)
    ~reconnect:(fun () -> Unikernel.Simchannel.reconnect channel)
    ();
  let lost = ref false in
  (try
     (* journalled allocations the recovery protocol would replay *)
     for _ = 1 to 60 do
       ignore (Cricket.Client.malloc client 4096)
     done
   with Cricket.Client.Session_lost _ -> lost := true);
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt_file with Sys_error _ -> ())
    (fun () ->
      check Alcotest.bool "session lost, not silently replayed" true !lost;
      check Alcotest.bool "client flags the lost session" true
        (Cricket.Client.session_lost client);
      (* the crash actually fired and the lease expired during the outage *)
      check Alcotest.int "crash fired" 1
        (Unikernel.Simchannel.stats channel).Unikernel.Simchannel.crashes;
      (match Tenancy.Lease.check registry ~tenant:"t0" with
      | Error `Expired -> ()
      | _ -> Alcotest.fail "lease should be Expired");
      let stats = Tenancy.Lease.stats registry in
      check Alcotest.bool "recovery calls were denied as Lease_expired" true
        (stats.Tenancy.Lease.expired_denials > 0);
      (* no partial replay: the respawned server holds zero tenant bytes *)
      check Alcotest.int "arena back to baseline" 0 (used_bytes !server);
      (* every later call fails fast with the sticky error *)
      match Cricket.Client.get_device_count client with
      | _ -> Alcotest.fail "expected sticky Session_lost"
      | exception Cricket.Client.Session_lost _ -> ())

let suite =
  [
    Alcotest.test_case "admission windows" `Quick test_admission_windows;
    Alcotest.test_case "admission load shedding" `Quick
      test_admission_load_shedding;
    Alcotest.test_case "DRR equal virtual service" `Quick test_drr_equal_share;
    Alcotest.test_case "DRR deterministic" `Quick test_drr_deterministic;
    Alcotest.test_case "priority classes strict" `Quick
      test_dispatch_priority_classes;
    Alcotest.test_case "fifo arrival order" `Quick test_dispatch_fifo_order;
    Alcotest.test_case "lease caps enforced" `Quick test_lease_caps_enforced;
    Alcotest.test_case "lease expiry reclaims memory" `Quick
      test_lease_expiry_reclaims_memory;
    Alcotest.test_case "core typed rejections + fairness" `Quick
      test_core_typed_rejections_and_fairness;
    Alcotest.test_case "core per-tenant obs labels" `Quick
      test_core_obs_labels;
    Alcotest.test_case "loadgen byte-deterministic" `Quick
      test_loadgen_deterministic;
    Alcotest.test_case "loadgen accounts every item" `Quick
      test_loadgen_accounts_every_item;
    Alcotest.test_case "loadgen uniform fairness" `Quick
      test_loadgen_uniform_fairness;
    Alcotest.test_case "lease expiry during recovery" `Quick
      test_lease_expiry_during_recovery;
  ]
