(* RPC-aware netdev offload engine: device header parse vs the software
   decoder (property-tested equivalence), steering queues, doorbell
   batching and its flush policy, batching under retransmission, the
   pool-accounting fix for device-steered staging buffers, the
   header-skip dispatch fast path, and the rpcacc bench acceptance
   numbers (speedup + Figure 7 ordering + reply byte-parity). *)

module Rpcdev = Tcpstack.Rpcdev
module Time = Simnet.Time
module Engine = Simnet.Engine
module O = Simnet.Offload

let encode_call ?(cred = Oncrpc.Auth.none) ?(verf = Oncrpc.Auth.none)
    ?(prog = Unikernel.Rpcbench.echo_prog) ?(vers = Unikernel.Rpcbench.echo_vers)
    ?(proc = Unikernel.Rpcbench.echo_proc) ~xid payload =
  let enc = Xdr.Encode.create () in
  Oncrpc.Message.encode enc
    (Oncrpc.Message.call ~cred ~verf ~xid ~prog ~vers ~proc ());
  Xdr.Encode.opaque enc (Bytes.unsafe_of_string payload);
  Xdr.Encode.to_string enc

let make_echo_server () =
  let srv = Oncrpc.Server.create ~name:"rpcacc-test" () in
  Oncrpc.Server.set_dup_cache srv;
  Oncrpc.Server.register srv ~prog:Unikernel.Rpcbench.echo_prog
    ~vers:Unikernel.Rpcbench.echo_vers
    [
      ( Unikernel.Rpcbench.echo_proc,
        fun dec enc ->
          let payload = Xdr.Decode.opaque dec in
          Xdr.Encode.opaque enc payload );
    ];
  srv

(* --- device parse vs software decode --- *)

(* software acceptance, in the sense the rpcdev parser mirrors: the
   [Oncrpc.Message] decoder returns a CALL without raising *)
let software_parse record =
  match Oncrpc.Message.decode (Xdr.Decode.of_string record) with
  | { Oncrpc.Message.xid; body = Call c } ->
      Some (xid, c.Oncrpc.Message.prog, c.vers, c.proc)
  | _ -> None
  | exception _ -> None

let gen_auth =
  QCheck.Gen.(
    map2
      (fun fl body ->
        let flavor =
          match fl with
          | 0 -> Oncrpc.Auth.Auth_none
          | 1 -> Oncrpc.Auth.Auth_sys
          | 2 -> Oncrpc.Auth.Auth_short
          | _ -> Oncrpc.Auth.Auth_other 9
        in
        { Oncrpc.Auth.flavor; body = Bytes.of_string body })
      (int_range 0 3)
      (string_size (int_range 0 Oncrpc.Auth.max_body_length)))

let gen_call_record =
  QCheck.Gen.(
    map
      (fun (xid, (prog, vers, proc), (cred, verf), payload) ->
        encode_call ~cred ~verf ~prog ~vers ~proc
          ~xid:(Int32.of_int xid) payload)
      (quad (int_bound 0xFFFFFF)
         (triple (int_bound 1_000_000) (int_bound 1_000_000)
            (int_bound 1_000_000))
         (pair gen_auth gen_auth)
         (string_size (int_range 0 256))))

let arb_call_record = QCheck.make ~print:String.escaped gen_call_record

let parse_equiv_valid =
  QCheck.Test.make ~count:300 ~name:"device parse == software decode (valid)"
    arb_call_record (fun record ->
      match Rpcdev.parse_call_header record with
      | Error r ->
          QCheck.Test.fail_reportf "device rejected a valid call: %s"
            (Rpcdev.reject_to_string r)
      | Ok p -> (
          match software_parse record with
          | None -> QCheck.Test.fail_report "software rejected a valid call"
          | Some (xid, prog, vers, proc) ->
              p.Rpcdev.xid = xid && p.prog = prog && p.vers = vers
              && p.proc = proc
              && (* body_off lands exactly on the procedure arguments *)
              String.length record >= p.body_off))

let parse_truncated =
  QCheck.Test.make ~count:300 ~name:"device parse: truncation rejected, typed"
    QCheck.(pair arb_call_record (int_bound 10_000))
    (fun (record, cut) ->
      match Rpcdev.parse_call_header record with
      | Error _ -> QCheck.assume_fail ()
      | Ok p ->
          let cut = cut mod max 1 p.Rpcdev.body_off in
          let truncated = String.sub record 0 cut in
          (* typed rejection, never an exception *)
          (match Rpcdev.parse_call_header truncated with
          | Error _ -> true
          | Ok _ ->
              QCheck.Test.fail_reportf
                "device accepted a header cut to %d bytes" cut))

let parse_equiv_corrupt =
  QCheck.Test.make ~count:500
    ~name:"device parse == software decode (corrupted byte)"
    QCheck.(triple arb_call_record (int_bound 10_000) (int_bound 255))
    (fun (record, pos, byte) ->
      let pos = pos mod String.length record in
      let b = Bytes.of_string record in
      Bytes.set b pos (Char.chr byte);
      let record = Bytes.unsafe_to_string b in
      (* total function on arbitrary corruption... *)
      match Rpcdev.parse_call_header record with
      | Ok p -> (
          (* ...and accepts exactly when the software decoder does *)
          match software_parse record with
          | Some (xid, prog, vers, proc) ->
              p.Rpcdev.xid = xid && p.prog = prog && p.vers = vers
              && p.proc = proc
          | None ->
              QCheck.Test.fail_report
                "device accepted what software rejected")
      | Error _ ->
          (match software_parse record with
          | None -> true
          | Some _ ->
              QCheck.Test.fail_report
                "device rejected what software accepted"))

let test_parse_rejects () =
  let record = encode_call ~xid:9l "payload" in
  (* not a call: msg_type patched to REPLY(1) *)
  let b = Bytes.of_string record in
  Bytes.set_int32_be b 4 1l;
  (match Rpcdev.parse_call_header (Bytes.to_string b) with
  | Error (Rpcdev.Not_a_call 1l) -> ()
  | _ -> Alcotest.fail "expected Not_a_call");
  (* wrong rpcvers *)
  let b = Bytes.of_string record in
  Bytes.set_int32_be b 8 3l;
  (match Rpcdev.parse_call_header (Bytes.to_string b) with
  | Error (Rpcdev.Bad_rpc_version 3) -> ()
  | _ -> Alcotest.fail "expected Bad_rpc_version");
  (* oversized auth body length *)
  let b = Bytes.of_string record in
  Bytes.set_int32_be b 28 401l;
  (match Rpcdev.parse_call_header (Bytes.to_string b) with
  | Error (Rpcdev.Bad_auth _) -> ()
  | _ -> Alcotest.fail "expected Bad_auth");
  match Rpcdev.parse_call_header "" with
  | Error (Rpcdev.Truncated 0) -> ()
  | _ -> Alcotest.fail "expected Truncated 0"

(* --- rpcdev framing, steering, pool accounting --- *)

let feed_record ?(chunk = 7) dev record =
  let wire = Oncrpc.Record.to_wire record in
  let n = String.length wire in
  let off = ref 0 in
  while !off < n do
    let len = min chunk (n - !off) in
    Rpcdev.feed dev (Bytes.of_string (String.sub wire !off len));
    off := !off + len
  done

let native_profile = Unikernel.Config.rust_native.Unikernel.Config.profile

let test_rpcdev_steering () =
  let engine = Engine.create () in
  let pool = Oncrpc.Pool.create () in
  let dev =
    Rpcdev.create ~engine ~profile:native_profile
      ~features:(O.rpc_all O.none)
      ~alloc:(Oncrpc.Pool.acquire pool)
      ~free:(Oncrpc.Pool.release pool) ~ident:"t0" ()
  in
  feed_record dev (encode_call ~xid:1l ~proc:1 "a");
  feed_record dev (encode_call ~xid:2l ~proc:2 "b");
  Rpcdev.set_ident dev "t1";
  feed_record dev (encode_call ~xid:3l ~proc:1 "c");
  Alcotest.(check int) "pending" 3 (Rpcdev.pending dev);
  let entries = Rpcdev.drain dev in
  Alcotest.(check (list string))
    "steered idents" [ "t0"; "t0"; "t1" ]
    (List.map (fun e -> e.Rpcdev.ident) entries);
  List.iter
    (fun e ->
      match e.Rpcdev.parse with
      | Some (Ok _) -> ()
      | _ -> Alcotest.fail "expected device-parsed entry")
    entries;
  let s = Rpcdev.stats dev in
  Alcotest.(check int) "records" 3 s.Rpcdev.records;
  Alcotest.(check int) "hw records" 3 s.hw_records;
  Alcotest.(check int) "parse hits" 3 s.parse_hits;
  Alcotest.(check int) "steered" 3 s.steered;
  (* (proc 1, t0), (proc 2, t0), (proc 1, t1) are distinct queues *)
  Alcotest.(check int) "queues" 3 s.queues;
  Alcotest.(check bool) "staging came from the pool" true
    (s.pool_acquires > 0);
  (* staging buffers went back: the pool serves the next record from its
     free list (this is the bin-accounting fix — rpcdev releases must not
     be dropped as foreign) *)
  feed_record dev (encode_call ~xid:4l "d");
  let ps = Oncrpc.Pool.stats pool in
  Alcotest.(check bool) "pool hit on reuse" true (ps.Oncrpc.Pool.hits > 0);
  Alcotest.(check int) "no dropped releases" 0 ps.Oncrpc.Pool.drops

let test_rpcdev_parse_punt () =
  let engine = Engine.create () in
  let dev =
    Rpcdev.create ~engine ~profile:native_profile
      ~features:(O.rpc_all O.none) ()
  in
  let good = encode_call ~xid:5l "ok" in
  let bad = Bytes.of_string good in
  Bytes.set_int32_be bad 8 7l;
  feed_record dev (Bytes.to_string bad);
  feed_record dev good;
  let entries = Rpcdev.drain dev in
  Alcotest.(check int) "both delivered" 2 (List.length entries);
  let rejects =
    List.filter
      (fun e ->
        match e.Rpcdev.parse with Some (Error _) -> true | _ -> false)
      entries
  in
  Alcotest.(check int) "one punted" 1 (List.length rejects);
  let s = Rpcdev.stats dev in
  Alcotest.(check int) "parse rejects counted" 1 s.Rpcdev.parse_rejects;
  Alcotest.(check int) "good one steered" 1 s.steered

let test_rpcdev_software_mode () =
  let engine = Engine.create () in
  let dev =
    Rpcdev.create ~engine ~profile:native_profile ~features:O.none ()
  in
  let t0 = Engine.now engine in
  feed_record dev (encode_call ~xid:6l "sw");
  let entries = Rpcdev.drain dev in
  (match entries with
  | [ e ] ->
      Alcotest.(check bool) "no device parse" true (e.Rpcdev.parse = None)
  | _ -> Alcotest.fail "expected one entry");
  let s = Rpcdev.stats dev in
  Alcotest.(check int) "software-framed" 1 s.Rpcdev.sw_records;
  Alcotest.(check int) "nothing steered" 0 s.steered;
  (* software framing/parse/route all charged on the engine clock *)
  Alcotest.(check bool) "host cpu charged" true
    (Time.compare (Engine.now engine) t0 > 0)

let test_effective_clamps () =
  let steer_only = { O.none with O.rpc_steer = true; rpc_parse = true } in
  let e = Rpcdev.effective steer_only in
  Alcotest.(check bool) "parse without framing clamped" false e.O.rpc_parse;
  Alcotest.(check bool) "steer without parse clamped" false e.O.rpc_steer;
  let all = Rpcdev.effective (O.rpc_all O.none) in
  Alcotest.(check bool) "full set survives" true
    (all.O.rpc_framing && all.O.rpc_parse && all.O.rpc_steer
   && all.O.rpc_doorbell)

(* --- pool bin accounting (the device-steered buffer fix) --- *)

let test_pool_non_pow2_max () =
  (* acquire just under a non-pow2 cap rounds up past it; release must
     still accept the buffer back (this leaked every staging buffer of
     the rpcdev reassembly path before the fix) *)
  let pool = Oncrpc.Pool.create ~max_buffer_size:3000 () in
  let b = Oncrpc.Pool.acquire pool 2500 in
  Alcotest.(check int) "rounded to pow2" 4096 (Bytes.length b);
  Oncrpc.Pool.release pool b;
  let s = Oncrpc.Pool.stats pool in
  Alcotest.(check int) "release accepted" 0 s.Oncrpc.Pool.drops;
  let b2 = Oncrpc.Pool.acquire pool 2500 in
  Alcotest.(check bool) "served from the bin" true (b == b2);
  Alcotest.(check int) "hit" 1 (Oncrpc.Pool.stats pool).Oncrpc.Pool.hits

let test_pool_double_release () =
  let pool = Oncrpc.Pool.create () in
  let b = Oncrpc.Pool.acquire pool 1024 in
  Oncrpc.Pool.release pool b;
  Oncrpc.Pool.release pool b;
  let s = Oncrpc.Pool.stats pool in
  Alcotest.(check int) "second release dropped" 1 s.Oncrpc.Pool.drops;
  let b1 = Oncrpc.Pool.acquire pool 1024 in
  let b2 = Oncrpc.Pool.acquire pool 1024 in
  Alcotest.(check bool) "no aliased buffers" true (b1 != b2)

let test_pool_foreign_release () =
  let pool = Oncrpc.Pool.create () in
  (* non-pow2 capacity: the pool could never have handed this out *)
  Oncrpc.Pool.release pool (Bytes.create 3000);
  let s = Oncrpc.Pool.stats pool in
  Alcotest.(check int) "foreign buffer dropped" 1 s.Oncrpc.Pool.drops;
  let b = Oncrpc.Pool.acquire pool 3000 in
  Alcotest.(check int) "fresh pow2 buffer" 4096 (Bytes.length b)

(* --- doorbell flush policy --- *)

(* an inner transport that records each ring of the doorbell *)
let batch_sink () =
  let batches = ref [] in
  let t =
    Oncrpc.Transport.make
      ~sendv:(fun iov -> batches := Xdr.Iovec.concat iov :: !batches)
      ~send:(fun b off len ->
        batches := Bytes.sub_string b off len :: !batches)
      ~recv:(fun _ _ _ -> 0)
      ~close:(fun () -> ())
      ()
  in
  (t, fun () -> List.rev !batches)

let test_doorbell_count_flush () =
  let inner, batches = batch_sink () in
  let bell =
    Oncrpc.Doorbell.wrap
      ~policy:
        { Oncrpc.Doorbell.max_records = 4; max_bytes = 1 lsl 20;
          deadline_ns = None }
      inner
  in
  let t = Oncrpc.Doorbell.transport bell in
  let record = encode_call ~xid:1l "x" in
  for _ = 1 to 4 do
    Oncrpc.Record.writev t (Xdr.Iovec.of_string record)
  done;
  Alcotest.(check int) "one ring" 1 (List.length (batches ()));
  Alcotest.(check int) "batch drained" 0 (Oncrpc.Doorbell.pending_records bell);
  let s = Oncrpc.Doorbell.stats bell in
  Alcotest.(check int) "count-triggered" 1 s.Oncrpc.Doorbell.flush_records;
  Alcotest.(check int) "records staged" 4 s.batched;
  Alcotest.(check int) "max batch" 4 s.max_batch;
  (* the single submit carries all four records back-to-back *)
  let wire = Oncrpc.Record.to_wire record in
  Alcotest.(check string) "wire bytes preserved"
    (wire ^ wire ^ wire ^ wire)
    (List.hd (batches ()))

let test_doorbell_bytes_and_recv_flush () =
  let inner, batches = batch_sink () in
  let bell =
    Oncrpc.Doorbell.wrap
      ~policy:
        { Oncrpc.Doorbell.max_records = 1000; max_bytes = 100;
          deadline_ns = None }
      inner
  in
  let t = Oncrpc.Doorbell.transport bell in
  let record = encode_call ~xid:2l (String.make 16 'y') in
  Oncrpc.Record.writev t (Xdr.Iovec.of_string record);
  Oncrpc.Record.writev t (Xdr.Iovec.of_string record);
  Alcotest.(check bool) "byte threshold rang" true (List.length (batches ()) >= 1);
  Alcotest.(check int) "byte-triggered" 1
    (Oncrpc.Doorbell.stats bell).Oncrpc.Doorbell.flush_bytes;
  (* a recv must never block on an unsubmitted call *)
  Oncrpc.Record.writev t (Xdr.Iovec.of_string record);
  ignore (t.Oncrpc.Transport.recv (Bytes.create 4) 0 4 : int);
  Alcotest.(check int) "pending flushed before recv" 0
    (Oncrpc.Doorbell.pending_records bell);
  Alcotest.(check int) "recv-triggered" 1
    (Oncrpc.Doorbell.stats bell).Oncrpc.Doorbell.flush_recv

let test_doorbell_deadline () =
  let engine = Engine.create () in
  let inner, batches = batch_sink () in
  let bell =
    Oncrpc.Doorbell.wrap
      ~policy:
        { Oncrpc.Doorbell.max_records = 32; max_bytes = 1 lsl 20;
          deadline_ns = Some (Time.us 50) }
      ~schedule:(fun delay k -> Engine.schedule_after engine delay k)
      inner
  in
  let t = Oncrpc.Doorbell.transport bell in
  let record = encode_call ~xid:3l "z" in
  Oncrpc.Record.writev t (Xdr.Iovec.of_string record);
  Alcotest.(check int) "still staged" 1 (Oncrpc.Doorbell.pending_records bell);
  Engine.run_until engine (Time.us 100);
  Alcotest.(check int) "deadline rang" 1 (List.length (batches ()));
  Alcotest.(check int) "deadline-triggered" 1
    (Oncrpc.Doorbell.stats bell).Oncrpc.Doorbell.flush_deadline;
  (* a batch flushed by other means must invalidate its armed deadline *)
  Oncrpc.Record.writev t (Xdr.Iovec.of_string record);
  Oncrpc.Doorbell.flush bell;
  Engine.run_until engine (Time.ms 1);
  Alcotest.(check int) "stale deadline is a no-op" 1
    (Oncrpc.Doorbell.stats bell).Oncrpc.Doorbell.flush_deadline

(* --- batching x retransmission (the at-most-once interaction) --- *)

let test_batch_drop_retry () =
  (* client stages calls through a doorbell whose inner transport drops
     the first ring wholesale (one lost batch = window-many lost calls);
     the client retransmits the same xids in a fresh batch, and a
     straggler retransmit after success is answered from the dup cache *)
  let srv = make_echo_server () in
  let replies = Buffer.create 256 in
  let drop_next = ref 1 in
  let deliver batch =
    if !drop_next > 0 then decr drop_next
    else begin
      (* server side: frame the batch back into records, dispatch each *)
      let src, sink = Oncrpc.Transport.pipe () in
      Oncrpc.Transport.send_string src batch;
      src.Oncrpc.Transport.close ();
      let rec pump () =
        match Oncrpc.Record.read sink with
        | record ->
            (match Oncrpc.Server.dispatch_opt ~ident:"t0" srv record with
            | Some reply ->
                Buffer.add_string replies (Oncrpc.Record.to_wire reply)
            | None -> ());
            pump ()
        | exception (End_of_file | Oncrpc.Transport.Closed) -> ()
      in
      pump ()
    end
  in
  let pos = ref 0 in
  let inner =
    Oncrpc.Transport.make
      ~sendv:(fun iov -> deliver (Xdr.Iovec.concat iov))
      ~send:(fun b off len -> deliver (Bytes.sub_string b off len))
      ~recv:(fun b off len ->
        let avail = Buffer.length replies - !pos in
        let n = min len avail in
        Buffer.blit replies !pos b off n;
        pos := !pos + n;
        n)
      ~close:(fun () -> ())
      ()
  in
  let bell =
    Oncrpc.Doorbell.wrap
      ~policy:
        { Oncrpc.Doorbell.max_records = 4; max_bytes = 1 lsl 20;
          deadline_ns = None }
      inner
  in
  let t = Oncrpc.Doorbell.transport bell in
  let send_window () =
    for xid = 1 to 4 do
      Oncrpc.Record.writev t
        (Xdr.Iovec.of_string
           (encode_call ~xid:(Int32.of_int xid) (Printf.sprintf "m%d" xid)))
    done
  in
  send_window ();
  Alcotest.(check int) "first batch lost" 0 (Buffer.length replies);
  (* RPC-level retry: same xids, fresh batch *)
  send_window ();
  let got = ref [] in
  for _ = 1 to 4 do
    let reply = Oncrpc.Record.read t in
    let m = Oncrpc.Message.decode (Xdr.Decode.of_string reply) in
    got := m.Oncrpc.Message.xid :: !got
  done;
  Alcotest.(check (list int32)) "all four answered, in xid order"
    [ 1l; 2l; 3l; 4l ] (List.rev !got);
  Alcotest.(check int) "executed once each" 0 (Oncrpc.Server.dup_hits srv);
  (* a straggler retransmit of xid 1 after success: dup-cache hit, and
     the cached reply is byte-identical to the original *)
  let first_reply = ref "" in
  (match
     Oncrpc.Server.dispatch_opt ~ident:"t0" srv (encode_call ~xid:1l "m1")
   with
  | Some r -> first_reply := r
  | None -> Alcotest.fail "expected a cached reply");
  Alcotest.(check int) "dup cache hit" 1 (Oncrpc.Server.dup_hits srv);
  let fresh = Oncrpc.Server.dispatch ~ident:"t0" srv (encode_call ~xid:9l "m1") in
  Alcotest.(check int) "cached reply same length as fresh" (String.length fresh)
    (String.length !first_reply)

(* --- header-skip dispatch fast path --- *)

let preparsed_of record =
  match Rpcdev.parse_call_header record with
  | Ok p -> p
  | Error r -> Alcotest.failf "parse: %s" (Rpcdev.reject_to_string r)

let dispatch_pre ?ident srv record =
  let p = preparsed_of record in
  Oncrpc.Server.dispatch_preparsed ?ident srv ~xid:p.Rpcdev.xid
    ~prog:p.prog ~vers:p.vers ~proc:p.proc ~body_off:p.body_off record

let test_dispatch_preparsed_parity () =
  let srv_a = make_echo_server () and srv_b = make_echo_server () in
  let check_parity name record =
    let a = Oncrpc.Server.dispatch_opt ~ident:"t0" srv_a record in
    let b = dispatch_pre ~ident:"t0" srv_b record in
    Alcotest.(check (option string)) name a b
  in
  check_parity "echo reply bytes" (encode_call ~xid:1l "hello");
  check_parity "unknown proc" (encode_call ~xid:2l ~proc:99 "x");
  check_parity "unknown prog" (encode_call ~xid:3l ~prog:0x9999 "x");
  check_parity "version mismatch" (encode_call ~xid:4l ~vers:42 "x");
  (* duplicate xid: both paths answer the second from the cache *)
  check_parity "dup xid" (encode_call ~xid:1l "hello");
  Alcotest.(check int) "dup hit via fast path" 1 (Oncrpc.Server.dup_hits srv_b);
  (* distinct idents never share dup-cache entries *)
  let r = dispatch_pre ~ident:"t1" srv_b (encode_call ~xid:1l "hello") in
  Alcotest.(check bool) "other tenant dispatched fresh" true (r <> None);
  Alcotest.(check int) "no cross-tenant dup hit" 1
    (Oncrpc.Server.dup_hits srv_b)

let test_dispatch_preparsed_oneway_and_auth () =
  let srv = make_echo_server () in
  Oncrpc.Server.set_oneway srv ~prog:Unikernel.Rpcbench.echo_prog
    ~vers:Unikernel.Rpcbench.echo_vers [ Unikernel.Rpcbench.echo_proc ];
  Alcotest.(check (option string)) "oneway produces no reply" None
    (dispatch_pre srv (encode_call ~xid:5l "fire-and-forget"));
  (* with an auth hook installed the fast path must fall back to the
     full software decode (the hook needs the credential bytes) *)
  let srv = make_echo_server () in
  let checked = ref 0 in
  Oncrpc.Server.set_auth_check srv (fun _ ->
      incr checked;
      None);
  let reply = dispatch_pre ~ident:"t0" srv (encode_call ~xid:6l "authed") in
  Alcotest.(check bool) "dispatched" true (reply <> None);
  Alcotest.(check int) "auth hook consulted" 1 !checked;
  (* body_off out of range: typed protocol error, not a crash (fresh
     server: an auth hook would route through the software fallback,
     which never looks at body_off) *)
  let srv = make_echo_server () in
  let record = encode_call ~xid:7l "x" in
  match
    Oncrpc.Server.dispatch_preparsed ~ident:"t0" srv ~xid:7l
      ~prog:Unikernel.Rpcbench.echo_prog ~vers:Unikernel.Rpcbench.echo_vers
      ~proc:Unikernel.Rpcbench.echo_proc
      ~body_off:(String.length record + 64)
      record
  with
  | exception Oncrpc.Server.Protocol_error _ -> ()
  | _ -> Alcotest.fail "expected Protocol_error on bad body_off"

(* --- cricket wiring --- *)

let test_cricket_preparsed_for () =
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 22)
      ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let record =
    (* get_device_count through the generated skeleton: proc 1 of the
       cricket program *)
    let enc = Xdr.Encode.create () in
    Oncrpc.Message.encode enc
      (Oncrpc.Message.call ~xid:11l ~prog:Rpcl.Specs.cricket_program_number
         ~vers:Rpcl.Specs.cricket_version_number ~proc:1 ());
    Xdr.Encode.to_string enc
  in
  let p = preparsed_of record in
  let via_pre =
    Cricket.Server.dispatch_preparsed_for server ~tenant:"uk0"
      ~xid:p.Rpcdev.xid ~prog:p.prog ~vers:p.vers ~proc:p.proc
      ~body_off:p.body_off record
  in
  let via_sw =
    let record' = Bytes.of_string record in
    Bytes.set_int32_be record' 0 12l;
    Cricket.Server.dispatch_for server ~tenant:"uk0"
      (Bytes.to_string record')
  in
  (* same procedure, same result payload; only the echoed xid differs *)
  Alcotest.(check int) "same reply length" (String.length via_sw)
    (String.length via_pre);
  Alcotest.(check (list (pair string int)))
    "both calls accounted to the tenant" [ ("uk0", 2) ]
    (Cricket.Server.tenant_calls server);
  (* admission rejection answers straight from the device-parsed xid *)
  Cricket.Server.set_tenant_hooks server
    {
      Cricket.Server.admit = (fun ~tenant:_ -> Some `Over_quota);
      malloc_allowed = (fun ~tenant:_ ~size:_ -> true);
      note_malloc = (fun ~tenant:_ ~ptr:_ ~size:_ -> ());
      note_free = (fun ~tenant:_ ~ptr:_ -> ());
      stream_allowed = (fun ~tenant:_ -> true);
      note_stream_create = (fun ~tenant:_ ~handle:_ -> ());
      note_stream_destroy = (fun ~tenant:_ ~handle:_ -> ());
    };
  let denied =
    Cricket.Server.dispatch_preparsed_for server ~tenant:"uk0"
      ~xid:p.Rpcdev.xid ~prog:p.prog ~vers:p.vers ~proc:p.proc
      ~body_off:p.body_off record
  in
  match Oncrpc.Message.decode (Xdr.Decode.of_string denied) with
  | {
      Oncrpc.Message.xid = 11l;
      body = Reply (Denied (Auth_error stat));
    } ->
      Alcotest.(check bool) "typed rejection survives the wire" true
        (Cricket.Server.reject_of_auth_stat stat = Some `Over_quota)
  | _ -> Alcotest.fail "expected an auth-denied reply"

(* --- the rpcacc bench: acceptance numbers --- *)

let run_cell profile mode =
  Unikernel.Rpcbench.run ~calls:384 ~window:32 ~profile ~mode ()

let test_bench_speedup_and_parity () =
  let profile = ("native", native_profile) in
  let sw = run_cell profile Unikernel.Rpcbench.Software in
  let parse = run_cell profile Unikernel.Rpcbench.Device_parse in
  let full = run_cell profile Unikernel.Rpcbench.Device_full in
  (* the headline criterion: >= 3x on the native profile *)
  let speedup = full.Unikernel.Rpcbench.calls_per_sec /. sw.calls_per_sec in
  if speedup < 3.0 then
    Alcotest.failf "device-parse+doorbell speedup %.2fx < 3x" speedup;
  Alcotest.(check bool) "device parse alone already helps" true
    (parse.Unikernel.Rpcbench.calls_per_sec > sw.calls_per_sec);
  (* the engine must never change reply bytes, only their cost *)
  Alcotest.(check int64) "sw/parse reply streams identical"
    sw.Unikernel.Rpcbench.reply_digest parse.reply_digest;
  Alcotest.(check int64) "sw/full reply streams identical"
    sw.Unikernel.Rpcbench.reply_digest full.reply_digest;
  (* ablation bookkeeping: everything parsed and steered on native *)
  (match full.Unikernel.Rpcbench.rpcdev with
  | Some s ->
      Alcotest.(check int) "every call device-parsed" 384 s.Rpcdev.parse_hits;
      Alcotest.(check int) "every call steered" 384 s.steered
  | None -> Alcotest.fail "expected rpcdev stats");
  match full.Unikernel.Rpcbench.doorbell with
  | Some s ->
      Alcotest.(check bool) "doorbell actually batched" true
        (s.Oncrpc.Doorbell.flushes > 0 && s.max_batch > 1)
  | None -> Alcotest.fail "expected doorbell stats"

let test_bench_profile_ordering () =
  (* Figure 7 ordering must hold in every mode: native > linux-vm >
     rustyhermit > unikraft *)
  List.iter
    (fun mode ->
      let rates =
        List.map
          (fun p -> (run_cell p mode).Unikernel.Rpcbench.calls_per_sec)
          (Unikernel.Rpcbench.profiles ())
      in
      match rates with
      | [ native; vm; hermit; unikraft ] ->
          if not (native > vm && vm > hermit && hermit > unikraft) then
            Alcotest.failf "ordering violated in %s: %.0f %.0f %.0f %.0f"
              (Unikernel.Rpcbench.mode_name mode)
              native vm hermit unikraft
      | _ -> Alcotest.fail "expected four profiles")
    Unikernel.Rpcbench.modes;
  (* unikraft's driver shim acks no rpc bits: offering the full engine
     must change nothing *)
  let u =
    run_cell
      ("unikraft", Unikernel.Config.unikraft.Unikernel.Config.profile)
      Unikernel.Rpcbench.Device_full
  in
  Alcotest.(check bool) "unikraft negotiates nothing" false
    (O.any_rpc u.Unikernel.Rpcbench.negotiated)

(* --- observability: device spans stay out of net.wait --- *)

let test_trace_nesting () =
  let obs = Obs.Recorder.create () in
  Obs.Recorder.set_enabled obs true;
  let r =
    Unikernel.Rpcbench.run ~calls:64 ~window:16 ~obs
      ~profile:("native", native_profile) ~mode:Unikernel.Rpcbench.Device_full
      ()
  in
  ignore (r : Unikernel.Rpcbench.result);
  let spans = Obs.Recorder.spans obs in
  Alcotest.(check bool) "trace non-empty" true (spans <> []);
  (match Obs.Trace_export.check_nesting spans with
  | Ok () -> ()
  | Error e -> Alcotest.failf "nesting violated: %s" e);
  (* rpcdev device spans are roots: they can never be attributed to (and
     so double-counted against) an enclosing net.wait span *)
  List.iter
    (fun (s : Obs.Recorder.span_info) ->
      if s.layer = "rpcdev" && s.parent <> -1 then
        Alcotest.failf "rpcdev span %S nested under span %d" s.name s.parent)
    spans;
  Alcotest.(check bool) "device work traced" true
    (List.exists (fun (s : Obs.Recorder.span_info) -> s.layer = "rpcdev") spans);
  Alcotest.(check bool) "doorbell flushes counted" true
    (Obs.Recorder.counter obs "rpc.doorbell_flush" > 0);
  Alcotest.(check bool) "parse hits counted" true
    (Obs.Recorder.counter obs "rpcdev.parse_hit" > 0);
  match Obs.Recorder.histogram obs "rpc.batch_occupancy" with
  | Some _ -> ()
  | None -> Alcotest.fail "expected batch-occupancy histogram"

let suite =
  [
    Alcotest.test_case "parse: typed rejects" `Quick test_parse_rejects;
    Alcotest.test_case "rpcdev: steering queues" `Quick test_rpcdev_steering;
    Alcotest.test_case "rpcdev: parse punt" `Quick test_rpcdev_parse_punt;
    Alcotest.test_case "rpcdev: software mode" `Quick test_rpcdev_software_mode;
    Alcotest.test_case "rpcdev: feature clamps" `Quick test_effective_clamps;
    Alcotest.test_case "pool: non-pow2 max size" `Quick test_pool_non_pow2_max;
    Alcotest.test_case "pool: double release" `Quick test_pool_double_release;
    Alcotest.test_case "pool: foreign release" `Quick test_pool_foreign_release;
    Alcotest.test_case "doorbell: count flush" `Quick test_doorbell_count_flush;
    Alcotest.test_case "doorbell: bytes + recv flush" `Quick
      test_doorbell_bytes_and_recv_flush;
    Alcotest.test_case "doorbell: deadline flush" `Quick test_doorbell_deadline;
    Alcotest.test_case "doorbell: dropped batch retry" `Quick
      test_batch_drop_retry;
    Alcotest.test_case "dispatch_preparsed: parity" `Quick
      test_dispatch_preparsed_parity;
    Alcotest.test_case "dispatch_preparsed: oneway + auth" `Quick
      test_dispatch_preparsed_oneway_and_auth;
    Alcotest.test_case "cricket: preparsed tenant dispatch" `Quick
      test_cricket_preparsed_for;
    Alcotest.test_case "bench: speedup + reply parity" `Quick
      test_bench_speedup_and_parity;
    Alcotest.test_case "bench: Figure 7 ordering" `Quick
      test_bench_profile_ordering;
    Alcotest.test_case "obs: trace nesting" `Quick test_trace_nesting;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ parse_equiv_valid; parse_truncated; parse_equiv_corrupt ]
