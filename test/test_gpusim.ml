(* Tests for the GPU simulator: device catalog, the device-memory
   allocator (incl. error detection), kernel implementations (numerics),
   the timing model, streams and events. *)

module Time = Simnet.Time
module M = Gpusim.Memory
module K = Gpusim.Kernels

let check = Alcotest.check

(* --- devices --- *)

let test_device_catalog () =
  check Alcotest.int "gpu node devices" 4 (List.length Gpusim.Device.gpu_node);
  let a100 = Gpusim.Device.a100 in
  check Alcotest.int "a100 sms" 108 a100.Gpusim.Device.multi_processor_count;
  check Alcotest.int "a100 cc" 8 a100.Gpusim.Device.compute_major;
  check Alcotest.bool "flops derated" true
    (Gpusim.Device.effective_flops a100 `F32 < 19.5e12);
  check Alcotest.bool "fp64 slower" true
    (Gpusim.Device.effective_flops a100 `F64
    < Gpusim.Device.effective_flops a100 `F32)

(* GPU capacity honours the catalog when the host-friendly 2 GiB clamp is
   lifted: under one identical allocation stream a 16 GiB T4 runs out of
   memory strictly before a 40 GiB A100 — the ordering a fleet scheduler
   (which creates its GPUs with [~capacity_clamp:max_int]) depends on.
   The backing store grows lazily, so the capacities are never touched. *)
let test_capacity_clamp_ordering () =
  check Alcotest.int "default clamp is 2 GiB" (2 * 1024 * 1024 * 1024)
    Gpusim.Gpu.default_capacity_clamp;
  let clamped = Gpusim.Gpu.create Gpusim.Device.t4 in
  check Alcotest.int "clamped T4 arena" Gpusim.Gpu.default_capacity_clamp
    (M.total_bytes (Gpusim.Gpu.memory clamped));
  let t4 = Gpusim.Gpu.create ~capacity_clamp:max_int Gpusim.Device.t4 in
  let a100 = Gpusim.Gpu.create ~capacity_clamp:max_int Gpusim.Device.a100 in
  check Alcotest.int "unclamped T4 arena"
    (Int64.to_int Gpusim.Device.t4.Gpusim.Device.total_global_mem)
    (M.total_bytes (Gpusim.Gpu.memory t4));
  let chunk = 4 * 1024 * 1024 * 1024 in
  let allocs_before_oom gpu =
    let m = Gpusim.Gpu.memory gpu in
    let n = ref 0 in
    (try
       while !n < 32 do
         ignore (M.alloc m chunk);
         incr n
       done
     with M.Error (M.Out_of_memory _) -> ());
    !n
  in
  let t4_allocs = allocs_before_oom t4 in
  let a100_allocs = allocs_before_oom a100 in
  check Alcotest.int "T4 fits 4 chunks of 4 GiB" 4 t4_allocs;
  check Alcotest.int "A100 fits 10 chunks of 4 GiB" 10 a100_allocs;
  check Alcotest.bool "T4 OOMs before the A100" true (t4_allocs < a100_allocs)

(* --- memory allocator --- *)

let test_alloc_free () =
  let m = M.create ~capacity:(1 lsl 20) in
  let p1 = M.alloc m 1000 in
  let p2 = M.alloc m 2000 in
  check Alcotest.bool "distinct" true (p1 <> p2);
  check Alcotest.bool "aligned" true (p1 mod 256 = 0 && p2 mod 256 = 0);
  check Alcotest.int "live" 2 (M.live_allocations m);
  (* sizes rounded to alignment *)
  check Alcotest.int "size1" 1024 (M.allocation_size m p1);
  M.free m p1;
  M.free m p2;
  check Alcotest.int "none live" 0 (M.live_allocations m);
  check Alcotest.int "all free" (1 lsl 20) (M.free_bytes m)

let test_alloc_reuse_after_free () =
  let m = M.create ~capacity:4096 in
  let p1 = M.alloc m 4096 in
  M.free m p1;
  let p2 = M.alloc m 4096 in
  check Alcotest.int "coalesced reuse" p1 p2

let test_oom () =
  let m = M.create ~capacity:4096 in
  let _ = M.alloc m 2048 in
  match M.alloc m 4096 with
  | _ -> Alcotest.fail "expected OOM"
  | exception M.Error (M.Out_of_memory { requested = 4096; _ }) -> ()
  | exception M.Error e -> Alcotest.failf "wrong error: %s" (M.error_to_string e)

let test_fragmentation_then_coalesce () =
  let m = M.create ~capacity:(10 * 256) in
  let ps = List.init 10 (fun _ -> M.alloc m 256) in
  (* free every other block: no 512-byte hole exists *)
  List.iteri (fun i p -> if i mod 2 = 0 then M.free m p) ps;
  (match M.alloc m 512 with
  | _ -> Alcotest.fail "expected fragmentation OOM"
  | exception M.Error (M.Out_of_memory _) -> ());
  (* free the rest: coalescing must produce one big range *)
  List.iteri (fun i p -> if i mod 2 = 1 then M.free m p) ps;
  let p = M.alloc m (10 * 256) in
  check Alcotest.bool "full-range alloc" true (p > 0)

let test_double_free_and_invalid () =
  let m = M.create ~capacity:4096 in
  let p = M.alloc m 100 in
  M.free m p;
  (match M.free m p with
  | _ -> Alcotest.fail "expected Double_free"
  | exception M.Error (M.Double_free _) -> ());
  match M.free m 12345678 with
  | _ -> Alcotest.fail "expected Invalid_pointer"
  | exception M.Error (M.Invalid_pointer _) -> ()

let test_bounds_checking () =
  let m = M.create ~capacity:(1 lsl 16) in
  let p = M.alloc m 256 in
  M.write m p (Bytes.make 256 'x');
  (match M.write m p (Bytes.make 257 'x') with
  | _ -> Alcotest.fail "expected Out_of_bounds"
  | exception M.Error (M.Out_of_bounds _) -> ());
  (* interior pointers are fine while in bounds *)
  M.write m (p + 200) (Bytes.make 56 'y');
  (match M.read m (p + 200) 57 with
  | _ -> Alcotest.fail "expected Out_of_bounds on read"
  | exception M.Error (M.Out_of_bounds _) -> ());
  match M.write m 99 (Bytes.make 1 'z') with
  | _ -> Alcotest.fail "expected Invalid_pointer"
  | exception M.Error (M.Invalid_pointer _) -> ()

let test_data_roundtrip () =
  let m = M.create ~capacity:(1 lsl 20) in
  let p = M.alloc m 4096 in
  let data = Bytes.init 4096 (fun i -> Char.chr ((i * 13) land 0xff)) in
  M.write m p data;
  check Alcotest.bool "roundtrip" true (Bytes.equal data (M.read m p 4096));
  M.memset m p 0xab 100;
  check Alcotest.int "memset" 0xab (M.get_u8 m p);
  check Alcotest.int "memset end" 0xab (M.get_u8 m (p + 99));
  check Alcotest.bool "beyond memset" true (M.get_u8 m (p + 100) <> 0xab)

let test_device_copy () =
  let m = M.create ~capacity:(1 lsl 20) in
  let src = M.alloc m 1024 in
  let dst = M.alloc m 1024 in
  let data = Bytes.init 1024 (fun i -> Char.chr (i land 0xff)) in
  M.write m src data;
  M.copy m ~src ~dst ~len:1024;
  check Alcotest.bool "d2d copy" true (Bytes.equal data (M.read m dst 1024))

let test_scalar_accessors () =
  let m = M.create ~capacity:4096 in
  let p = M.alloc m 64 in
  M.set_f32 m p 3.25;
  check (Alcotest.float 0.0) "f32" 3.25 (M.get_f32 m p);
  M.set_f64 m (p + 8) (-1.5e300);
  check (Alcotest.float 0.0) "f64" (-1.5e300) (M.get_f64 m (p + 8));
  M.set_i32 m (p + 16) (-42l);
  check Alcotest.int32 "i32" (-42l) (M.get_i32 m (p + 16))

let test_snapshot_restore () =
  let m = M.create ~capacity:(1 lsl 16) in
  let p1 = M.alloc m 512 in
  let p2 = M.alloc m 1024 in
  M.write m p1 (Bytes.make 512 'a');
  M.write m p2 (Bytes.make 1024 'b');
  M.free m p1;
  let snap = M.snapshot m in
  let m' = M.restore snap in
  check Alcotest.int "live" 1 (M.live_allocations m');
  check Alcotest.bool "contents" true
    (Bytes.equal (Bytes.make 1024 'b') (M.read m' p2 1024));
  (* allocator state survives: p1's range is reusable *)
  let p3 = M.alloc m' 512 in
  check Alcotest.bool "free range restored" true (p3 = p1 || p3 <> p2)

let prop_alloc_free_invariant =
  QCheck.Test.make ~count:100 ~name:"allocator conserves bytes"
    QCheck.(list (int_range 1 5000))
    (fun sizes ->
      let m = M.create ~capacity:(1 lsl 22) in
      let ptrs =
        List.filter_map
          (fun n -> match M.alloc m n with p -> Some p | exception M.Error _ -> None)
          sizes
      in
      let used_mid = M.used_bytes m in
      List.iter (M.free m) ptrs;
      used_mid >= 0 && M.used_bytes m = 0
      && M.free_bytes m = M.total_bytes m)

(* --- kernels --- *)

let with_mem f =
  let m = M.create ~capacity:(1 lsl 22) in
  f m

let launch_of ?(grid = { K.x = 1; y = 1; z = 1 })
    ?(block = { K.x = 1; y = 1; z = 1 }) args =
  { K.grid; block; shared_mem = 0; args }

let write_f32s m p vals =
  Array.iteri (fun i v -> M.set_f32 m (p + (4 * i)) v) vals

let read_f32s m p n = Array.init n (fun i -> M.get_f32 m (p + (4 * i)))

let test_kernel_vector_add () =
  with_mem (fun m ->
      let n = 100 in
      let a = M.alloc m (4 * n) and b = M.alloc m (4 * n) and c = M.alloc m (4 * n) in
      write_f32s m a (Array.init n Float.of_int);
      write_f32s m b (Array.init n (fun i -> Float.of_int (2 * i)));
      let k = Option.get (K.find K.vector_add_name) in
      k.K.execute m
        (launch_of [| K.Ptr a; K.Ptr b; K.Ptr c; K.I32 (Int32.of_int n) |]);
      Array.iteri
        (fun i v -> check (Alcotest.float 1e-6) "sum" (Float.of_int (3 * i)) v)
        (read_f32s m c n))

let test_kernel_matrix_mul () =
  with_mem (fun m ->
      (* 2x3 * 3x2 with known values, grid/block encode hA *)
      let a = M.alloc m (4 * 6) and b = M.alloc m (4 * 6) and c = M.alloc m (4 * 4) in
      write_f32s m a [| 1.; 2.; 3.; 4.; 5.; 6. |];
      write_f32s m b [| 7.; 8.; 9.; 10.; 11.; 12. |];
      let k = Option.get (K.find K.matrix_mul_name) in
      k.K.execute m
        (launch_of
           ~grid:{ K.x = 1; y = 2; z = 1 }
           ~block:{ K.x = 2; y = 1; z = 1 }
           [| K.Ptr c; K.Ptr a; K.Ptr b; K.I32 3l; K.I32 2l |]);
      let expected = [| 58.; 64.; 139.; 154. |] in
      Array.iteri
        (fun i v -> check (Alcotest.float 1e-5) "C" expected.(i) v)
        (read_f32s m c 4))

let test_kernel_histogram () =
  with_mem (fun m ->
      let n = 10_000 in
      let data = M.alloc m n and bins = M.alloc m (4 * 256) in
      let host = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff)) in
      M.write m data host;
      let k = Option.get (K.find K.histogram256_name) in
      k.K.execute m
        (launch_of [| K.Ptr bins; K.Ptr data; K.I32 (Int32.of_int n) |]);
      let expected = Array.make 256 0 in
      Bytes.iter (fun ch -> expected.(Char.code ch) <- expected.(Char.code ch) + 1) host;
      let total = ref 0 in
      for i = 0 to 255 do
        let v = Int32.to_int (M.get_i32 m (bins + (4 * i))) in
        check Alcotest.int (Printf.sprintf "bin %d" i) expected.(i) v;
        total := !total + v
      done;
      check Alcotest.int "total" n !total)

let test_kernel_reduce_and_saxpy () =
  with_mem (fun m ->
      let n = 1000 in
      let x = M.alloc m (4 * n) and y = M.alloc m (4 * n) and out = M.alloc m 4 in
      write_f32s m x (Array.make n 2.0);
      write_f32s m y (Array.init n Float.of_int);
      let saxpy = Option.get (K.find K.saxpy_name) in
      saxpy.K.execute m
        (launch_of [| K.F32 10.0; K.Ptr x; K.Ptr y; K.I32 (Int32.of_int n) |]);
      (* y[i] = 10*2 + i *)
      check (Alcotest.float 1e-6) "saxpy" 25.0 (M.get_f32 m (y + (4 * 5)));
      let reduce = Option.get (K.find K.reduce_sum_name) in
      reduce.K.execute m
        (launch_of [| K.Ptr y; K.Ptr out; K.I32 (Int32.of_int n) |]);
      let expected = Float.of_int (n * 20) +. Float.of_int (n * (n - 1) / 2) in
      check (Alcotest.float 0.5) "reduce" expected (M.get_f32 m out))

let test_kernel_transpose () =
  with_mem (fun m ->
      let input = M.alloc m (4 * 6) and out = M.alloc m (4 * 6) in
      write_f32s m input [| 1.; 2.; 3.; 4.; 5.; 6. |] (* 2x3 row-major *);
      let k = Option.get (K.find K.transpose_name) in
      k.K.execute m (launch_of [| K.Ptr out; K.Ptr input; K.I32 2l; K.I32 3l |]);
      let expected = [| 1.; 4.; 2.; 5.; 3.; 6. |] in
      Array.iteri
        (fun i v -> check (Alcotest.float 1e-6) "t" expected.(i) v)
        (read_f32s m out 6))

let test_kernel_nbody () =
  with_mem (fun m ->
      (* two equal masses on the x axis attract each other symmetrically *)
      let pos = M.alloc m 32 and vel = M.alloc m 32 in
      write_f32s m pos [| -1.0; 0.; 0.; 1.0; 1.0; 0.; 0.; 1.0 |];
      write_f32s m vel [| 0.; 0.; 0.; 0.; 0.; 0.; 0.; 0. |];
      let k = Option.get (K.find K.nbody_name) in
      k.K.execute m
        (launch_of [| K.Ptr pos; K.Ptr vel; K.F32 0.01; K.I32 2l |]);
      let vx0 = M.get_f32 m vel and vx1 = M.get_f32 m (vel + 16) in
      check Alcotest.bool "bodies attract" true (vx0 > 0.0 && vx1 < 0.0);
      check (Alcotest.float 1e-6) "momentum conserved" 0.0 (vx0 +. vx1);
      (* y/z components untouched for colinear bodies *)
      check (Alcotest.float 0.0) "vy zero" 0.0 (M.get_f32 m (vel + 4)))

let test_kernel_bad_args () =
  with_mem (fun m ->
      let k = Option.get (K.find K.vector_add_name) in
      (match k.K.execute m (launch_of [| K.I32 1l |]) with
      | _ -> Alcotest.fail "expected Bad_args (arity)"
      | exception K.Bad_args _ -> ());
      match
        k.K.execute m
          (launch_of [| K.F32 1.0; K.F32 1.0; K.F32 1.0; K.I32 0l |])
      with
      | _ -> Alcotest.fail "expected Bad_args (type)"
      | exception K.Bad_args _ -> ())

let test_kernel_cost_scaling () =
  let d = Gpusim.Device.a100 in
  let k = Option.get (K.find K.matrix_mul_name) in
  let cost n =
    k.K.cost d
      (launch_of
         ~grid:{ K.x = n / 32; y = n / 32; z = 1 }
         ~block:{ K.x = 32; y = 32; z = 1 }
         [| K.Ptr 0; K.Ptr 0; K.Ptr 0; K.I32 (Int32.of_int n);
            K.I32 (Int32.of_int n) |])
  in
  (* O(n^3): doubling n should scale cost ~8x (within wave-overhead noise) *)
  let r = cost 512 /. cost 256 in
  check Alcotest.bool "cubic scaling" true (r > 6.0 && r < 10.0);
  (* slower device costs more *)
  let t4_cost = k.K.cost Gpusim.Device.t4 (launch_of ~grid:{ K.x = 8; y = 8; z = 1 } ~block:{ K.x = 32; y = 32; z = 1 } [| K.Ptr 0; K.Ptr 0; K.Ptr 0; K.I32 256l; K.I32 256l |]) in
  check Alcotest.bool "t4 slower" true (t4_cost > cost 256)

(* --- streams / events / gpu --- *)

let test_gpu_streams_and_sync () =
  let gpu = Gpusim.Gpu.create ~memory_capacity:(1 lsl 20) Gpusim.Device.a100 in
  let k = Option.get (K.find K.fill_name) in
  let m = Gpusim.Gpu.memory gpu in
  let p = M.alloc m 4096 in
  let launch = launch_of [| K.Ptr p; K.F32 1.0; K.I32 1024l |] in
  let now = Time.zero in
  let c1 = Gpusim.Gpu.launch gpu ~now k launch in
  check Alcotest.bool "async completion in future" true
    (Time.compare c1 now > 0);
  (* a second launch on the same stream queues after the first *)
  let c2 = Gpusim.Gpu.launch gpu ~now k launch in
  check Alcotest.bool "serialized" true (Time.compare c2 c1 > 0);
  (* a different stream runs concurrently: completes before c2 *)
  let s = Gpusim.Gpu.stream_create gpu in
  let c3 = Gpusim.Gpu.launch gpu ~now ~stream:s k launch in
  check Alcotest.bool "concurrent streams" true (Time.compare c3 c2 < 0);
  let sync = Gpusim.Gpu.synchronize gpu ~now in
  check Alcotest.int64 "sync = max completion" c2 sync;
  (* execution had real effect *)
  check (Alcotest.float 0.0) "fill applied" 1.0 (M.get_f32 m p)

let test_gpu_events () =
  let gpu = Gpusim.Gpu.create ~memory_capacity:(1 lsl 20) Gpusim.Device.a100 in
  let k = Option.get (K.find K.fill_name) in
  let m = Gpusim.Gpu.memory gpu in
  let p = M.alloc m 4096 in
  let e1 = Gpusim.Gpu.event_create gpu in
  let e2 = Gpusim.Gpu.event_create gpu in
  Gpusim.Gpu.event_record gpu ~now:Time.zero ~event:e1 ~stream:0;
  let _ =
    Gpusim.Gpu.launch gpu ~now:Time.zero k
      (launch_of [| K.Ptr p; K.F32 2.0; K.I32 1024l |])
  in
  Gpusim.Gpu.event_record gpu ~now:Time.zero ~event:e2 ~stream:0;
  let ms = Gpusim.Gpu.event_elapsed_ms gpu ~start:e1 ~stop:e2 in
  check Alcotest.bool "elapsed positive" true (ms > 0.0);
  Gpusim.Gpu.event_destroy gpu e1;
  match Gpusim.Gpu.event_elapsed_ms gpu ~start:e1 ~stop:e2 with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let test_gpu_reset () =
  let gpu = Gpusim.Gpu.create ~memory_capacity:(1 lsl 20) Gpusim.Device.a100 in
  let m = Gpusim.Gpu.memory gpu in
  let _ = M.alloc m 1024 in
  let s = Gpusim.Gpu.stream_create gpu in
  Gpusim.Gpu.reset gpu;
  check Alcotest.int "memory cleared" 0
    (M.live_allocations (Gpusim.Gpu.memory gpu));
  check Alcotest.bool "stream gone" false (Gpusim.Gpu.stream_valid gpu s);
  check Alcotest.bool "default stream stays" true
    (Gpusim.Gpu.stream_valid gpu Gpusim.Gpu.default_stream)

let suite =
  [
    Alcotest.test_case "device catalog" `Quick test_device_catalog;
    Alcotest.test_case "capacity clamp ordering" `Quick
      test_capacity_clamp_ordering;
    Alcotest.test_case "alloc/free" `Quick test_alloc_free;
    Alcotest.test_case "reuse after free" `Quick test_alloc_reuse_after_free;
    Alcotest.test_case "out of memory" `Quick test_oom;
    Alcotest.test_case "fragmentation and coalescing" `Quick
      test_fragmentation_then_coalesce;
    Alcotest.test_case "double free / invalid" `Quick
      test_double_free_and_invalid;
    Alcotest.test_case "bounds checking" `Quick test_bounds_checking;
    Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
    Alcotest.test_case "device-to-device copy" `Quick test_device_copy;
    Alcotest.test_case "scalar accessors" `Quick test_scalar_accessors;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "vectorAdd numerics" `Quick test_kernel_vector_add;
    Alcotest.test_case "matrixMul numerics" `Quick test_kernel_matrix_mul;
    Alcotest.test_case "histogram numerics" `Quick test_kernel_histogram;
    Alcotest.test_case "saxpy + reduce numerics" `Quick
      test_kernel_reduce_and_saxpy;
    Alcotest.test_case "transpose numerics" `Quick test_kernel_transpose;
    Alcotest.test_case "nbody numerics" `Quick test_kernel_nbody;
    Alcotest.test_case "kernel bad args" `Quick test_kernel_bad_args;
    Alcotest.test_case "kernel cost scaling" `Quick test_kernel_cost_scaling;
    Alcotest.test_case "streams and synchronize" `Quick
      test_gpu_streams_and_sync;
    Alcotest.test_case "events" `Quick test_gpu_events;
    Alcotest.test_case "device reset" `Quick test_gpu_reset;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_alloc_free_invariant ]
