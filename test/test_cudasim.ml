(* Tests for the CUDA API layer: device management, memory semantics and
   error codes, streams/events, module loading, launches, cuBLAS/cuSOLVER
   numerics, virtual-time charging, and checkpoint/restore. *)

module Time = Simnet.Time

let check = Alcotest.check

let make_ctx ?devices () =
  let engine = Simnet.Engine.create () in
  let ctx =
    Cudasim.Context.create ?devices ~memory_capacity:(1 lsl 26)
      (Cudasim.Context.engine_clock engine)
  in
  (engine, ctx)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected CUDA error: %s" (Cudasim.Error.to_string e)

let success = function
  | Cudasim.Error.Success -> ()
  | e -> Alcotest.failf "unexpected CUDA error: %s" (Cudasim.Error.to_string e)

(* --- device management --- *)

let test_device_management () =
  let _, ctx = make_ctx () in
  check Alcotest.int "count" 4 (Cudasim.Api.get_device_count ctx);
  check Alcotest.int "initial" 0 (Cudasim.Api.get_device ctx);
  success (Cudasim.Api.set_device ctx 3);
  check Alcotest.int "switched" 3 (Cudasim.Api.get_device ctx);
  (match Cudasim.Api.set_device ctx 4 with
  | Cudasim.Error.Invalid_device -> ()
  | e -> Alcotest.failf "expected Invalid_device, got %s" (Cudasim.Error.to_string e));
  let p = ok (Cudasim.Api.get_device_properties ctx 0) in
  check Alcotest.string "a100 name" "NVIDIA A100-PCIE-40GB"
    p.Cudasim.Api.name;
  check Alcotest.int "sms" 108 p.Cudasim.Api.multi_processor_count;
  match Cudasim.Api.get_device_properties ctx 9 with
  | Error Cudasim.Error.Invalid_device -> ()
  | _ -> Alcotest.fail "expected Invalid_device"

(* Out-of-range device selection — negative or past the catalog — is a
   typed [Invalid_device] at both the API and context layer, never an
   exception, and never moves the current-device cursor. *)
let test_device_selection_bounds () =
  let _, ctx = make_ctx () in
  success (Cudasim.Api.set_device ctx 1);
  List.iter
    (fun bad ->
      (match Cudasim.Api.set_device ctx bad with
      | Cudasim.Error.Invalid_device -> ()
      | e ->
          Alcotest.failf "Api.set_device %d: expected Invalid_device, got %s"
            bad (Cudasim.Error.to_string e));
      (match Cudasim.Context.set_current ctx bad with
      | Error Cudasim.Error.Invalid_device -> ()
      | Ok () -> Alcotest.failf "Context.set_current %d accepted" bad
      | Error e ->
          Alcotest.failf "Context.set_current %d: expected Invalid_device, got %s"
            bad (Cudasim.Error.to_string e));
      check Alcotest.bool
        (Printf.sprintf "gpu_at %d is None" bad)
        true
        (Cudasim.Context.gpu_at ctx bad = None);
      check Alcotest.int "cursor unmoved" 1 (Cudasim.Api.get_device ctx))
    [ -1; min_int; 4; 99 ]

let test_error_code_mapping () =
  List.iter
    (fun e ->
      check Alcotest.bool "roundtrip" true
        (Cudasim.Error.of_code (Cudasim.Error.code e) = e))
    [
      Cudasim.Error.Success; Cudasim.Error.Invalid_value;
      Cudasim.Error.Memory_allocation; Cudasim.Error.Invalid_device;
      Cudasim.Error.Invalid_handle; Cudasim.Error.Not_found;
      Cudasim.Error.Not_ready; Cudasim.Error.Launch_failure;
      Cudasim.Error.Unknown;
    ];
  check Alcotest.int "success is 0" 0 (Cudasim.Error.code Cudasim.Error.Success);
  check Alcotest.int "launch failure is 719" 719
    (Cudasim.Error.code Cudasim.Error.Launch_failure)

(* --- memory --- *)

let test_memory_api () =
  let _, ctx = make_ctx () in
  let p = ok (Cudasim.Api.malloc ctx 4096L) in
  check Alcotest.bool "nonzero ptr" true (p <> 0L);
  let data = Bytes.init 4096 (fun i -> Char.chr (i land 0xff)) in
  success (Cudasim.Api.memcpy_h2d ctx ~dst:p data);
  let back = ok (Cudasim.Api.memcpy_d2h ctx ~src:p ~len:4096L) in
  check Alcotest.bool "roundtrip" true (Bytes.equal data back);
  success (Cudasim.Api.memset ctx ~ptr:p ~value:0 ~len:4096L);
  let zero = ok (Cudasim.Api.memcpy_d2h ctx ~src:p ~len:16L) in
  check Alcotest.bool "memset" true (Bytes.equal zero (Bytes.make 16 '\000'));
  let q = ok (Cudasim.Api.malloc ctx 4096L) in
  success (Cudasim.Api.memcpy_h2d ctx ~dst:q data);
  success (Cudasim.Api.memcpy_d2d ctx ~dst:p ~src:q ~len:4096L);
  check Alcotest.bool "d2d" true
    (Bytes.equal data (ok (Cudasim.Api.memcpy_d2h ctx ~src:p ~len:4096L)));
  success (Cudasim.Api.free ctx p);
  (match Cudasim.Api.free ctx p with
  | Cudasim.Error.Invalid_value -> ()
  | e -> Alcotest.failf "double free: %s" (Cudasim.Error.to_string e));
  (match Cudasim.Api.malloc ctx (-1L) with
  | Error Cudasim.Error.Invalid_value -> ()
  | _ -> Alcotest.fail "negative malloc");
  match Cudasim.Api.malloc ctx (Int64.of_int (1 lsl 30)) with
  | Error Cudasim.Error.Memory_allocation -> ()
  | _ -> Alcotest.fail "expected OOM"

let test_mem_get_info () =
  let _, ctx = make_ctx () in
  let free0, total = Cudasim.Api.mem_get_info ctx in
  let _ = ok (Cudasim.Api.malloc ctx 65536L) in
  let free1, total' = Cudasim.Api.mem_get_info ctx in
  check Alcotest.int64 "total stable" total total';
  check Alcotest.bool "free decreased" true (Int64.compare free1 free0 < 0)

(* --- time charging --- *)

let test_time_charging () =
  let engine, ctx = make_ctx () in
  let t0 = Simnet.Engine.now engine in
  ignore (Cudasim.Api.get_device_count ctx);
  let t1 = Simnet.Engine.now engine in
  check Alcotest.bool "api call costs time" true (Time.compare t1 t0 > 0);
  (* bigger memcpys cost more virtual time *)
  let p = ok (Cudasim.Api.malloc ctx (Int64.of_int (8 lsl 20))) in
  let cost n =
    let before = Simnet.Engine.now engine in
    success (Cudasim.Api.memcpy_h2d ctx ~dst:p (Bytes.create n));
    Time.sub (Simnet.Engine.now engine) before
  in
  let small = cost 4096 in
  let large = cost (8 lsl 20) in
  check Alcotest.bool "pcie time scales" true
    (Time.compare large small > 0);
  (* 8 MiB at 22 GB/s is ~380 us *)
  check Alcotest.bool "plausible transfer time" true
    (Time.to_float_us large > 200.0 && Time.to_float_us large < 2_000.0)

(* --- streams and events --- *)

let test_stream_event_api () =
  let _, ctx = make_ctx () in
  let s = Cudasim.Api.stream_create ctx in
  success (Cudasim.Api.stream_synchronize ctx s);
  success (Cudasim.Api.stream_destroy ctx s);
  (match Cudasim.Api.stream_destroy ctx s with
  | Cudasim.Error.Invalid_handle -> ()
  | e -> Alcotest.failf "stale stream: %s" (Cudasim.Error.to_string e));
  let e1 = Cudasim.Api.event_create ctx in
  let e2 = Cudasim.Api.event_create ctx in
  success (Cudasim.Api.event_record ctx ~event:e1 ~stream:0L);
  success (Cudasim.Api.event_record ctx ~event:e2 ~stream:0L);
  success (Cudasim.Api.event_synchronize ctx e2);
  let ms = ok (Cudasim.Api.event_elapsed_ms ctx ~start:e1 ~stop:e2) in
  check Alcotest.bool "elapsed >= 0" true (ms >= 0.0);
  success (Cudasim.Api.event_destroy ctx e1);
  match Cudasim.Api.event_elapsed_ms ctx ~start:e1 ~stop:e2 with
  | Error Cudasim.Error.Invalid_handle -> ()
  | _ -> Alcotest.fail "destroyed event"

(* --- module API --- *)

let std_image () =
  Cubin.Image.of_registry
    [ Gpusim.Kernels.vector_add_name; Gpusim.Kernels.fill_name ]

let test_module_load_launch () =
  let _, ctx = make_ctx () in
  let image = std_image () in
  let modul = ok (Cudasim.Api.module_load_data ctx (Cubin.Image.build image)) in
  let f =
    ok (Cudasim.Api.module_get_function ctx ~modul
          ~name:Gpusim.Kernels.fill_name)
  in
  (match Cudasim.Api.module_get_function ctx ~modul ~name:"missing" with
  | Error Cudasim.Error.Not_found -> ()
  | _ -> Alcotest.fail "missing kernel");
  let n = 256 in
  let p = ok (Cudasim.Api.malloc ctx (Int64.of_int (4 * n))) in
  let info = Option.get (Cubin.Image.find_kernel image Gpusim.Kernels.fill_name) in
  let params =
    match
      Cubin.Image.pack_args info
        [| Gpusim.Kernels.Ptr (Int64.to_int p); Gpusim.Kernels.F32 2.5;
           Gpusim.Kernels.I32 (Int32.of_int n) |]
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  success
    (Cudasim.Api.launch_kernel ctx
       {
         Cudasim.Api.function_handle = f;
         grid = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
         block = { Gpusim.Kernels.x = 256; y = 1; z = 1 };
         shared_mem_bytes = 0;
         stream = 0L;
       }
       ~params);
  success (Cudasim.Api.device_synchronize ctx);
  let back = ok (Cudasim.Api.memcpy_d2h ctx ~src:p ~len:16L) in
  check (Alcotest.float 0.0) "kernel wrote" 2.5
    (Int32.float_of_bits (Bytes.get_int32_le back 0));
  (* bad params length -> invalid value *)
  (match
     Cudasim.Api.launch_kernel ctx
       {
         Cudasim.Api.function_handle = f;
         grid = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
         block = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
         shared_mem_bytes = 0;
         stream = 0L;
       }
       ~params:(Bytes.create 2)
   with
  | Cudasim.Error.Invalid_value -> ()
  | e -> Alcotest.failf "bad params: %s" (Cudasim.Error.to_string e));
  success (Cudasim.Api.module_unload ctx modul);
  match Cudasim.Api.module_get_function ctx ~modul ~name:Gpusim.Kernels.fill_name with
  | Error Cudasim.Error.Invalid_handle -> ()
  | _ -> Alcotest.fail "unloaded module"

let test_module_load_compressed_and_fatbin () =
  let _, ctx = make_ctx () in
  let image = std_image () in
  (* compressed standalone cubin *)
  let m1 = ok (Cudasim.Api.module_load_data ctx (Cubin.Image.build ~compress:true image)) in
  check Alcotest.bool "compressed loads" true (m1 <> 0L);
  (* fatbin: picks the sm_80 image on the A100 *)
  let old_arch = Cubin.Image.build { image with Cubin.Image.arch = (6, 1) } in
  let new_arch = Cubin.Image.build { image with Cubin.Image.arch = (8, 0) } in
  let fat =
    Cubin.Fatbin.build
      { Cubin.Fatbin.images = [ ((6, 1), old_arch); ((8, 0), new_arch) ] }
  in
  let m2 = ok (Cudasim.Api.module_load_data ctx fat) in
  check Alcotest.bool "fatbin loads" true (m2 <> 0L);
  (* garbage data *)
  (match Cudasim.Api.module_load_data ctx "not a module" with
  | Error Cudasim.Error.Invalid_value -> ()
  | _ -> Alcotest.fail "garbage module");
  (* fatbin with no compatible arch: P40 is 6.1, give only 8.0 *)
  success (Cudasim.Api.set_device ctx 3);
  let fat80 =
    Cubin.Fatbin.build { Cubin.Fatbin.images = [ ((8, 0), new_arch) ] }
  in
  match Cudasim.Api.module_load_data ctx fat80 with
  | Error Cudasim.Error.Invalid_value -> ()
  | _ -> Alcotest.fail "incompatible fatbin"

let test_module_globals () =
  let _, ctx = make_ctx () in
  let image =
    { (std_image ()) with
      Cubin.Image.globals =
        [ { Cubin.Image.name = "g_x"; size = 8;
            init = Some (Bytes.of_string "\x01\x02\x03\x04\x05\x06\x07\x08") } ] }
  in
  let modul = ok (Cudasim.Api.module_load_data ctx (Cubin.Image.build image)) in
  let ptr, size = ok (Cudasim.Api.module_get_global ctx ~modul ~name:"g_x") in
  check Alcotest.int64 "size" 8L size;
  let v = ok (Cudasim.Api.memcpy_d2h ctx ~src:ptr ~len:8L) in
  check Alcotest.string "init data" "\x01\x02\x03\x04\x05\x06\x07\x08"
    (Bytes.to_string v);
  (* idempotent: same pointer on second lookup *)
  let ptr2, _ = ok (Cudasim.Api.module_get_global ctx ~modul ~name:"g_x") in
  check Alcotest.int64 "stable ptr" ptr ptr2;
  match Cudasim.Api.module_get_global ctx ~modul ~name:"nope" with
  | Error Cudasim.Error.Not_found -> ()
  | _ -> Alcotest.fail "missing global"

(* --- cuBLAS --- *)

let upload_f32 ctx ptr a =
  let b = Bytes.create (4 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int32_le b (4 * i) (Int32.bits_of_float v)) a;
  success (Cudasim.Api.memcpy_h2d ctx ~dst:ptr b)

let download_f32 ctx ptr n =
  let b = ok (Cudasim.Api.memcpy_d2h ctx ~src:ptr ~len:(Int64.of_int (4 * n))) in
  Array.init n (fun i -> Int32.float_of_bits (Bytes.get_int32_le b (4 * i)))

let test_cublas_sgemm () =
  let _, ctx = make_ctx () in
  let h = Cudasim.Cublas.create ctx in
  (* column-major 2x2: A = [1 3; 2 4] (stored 1 2 3 4), B = I *)
  let a = ok (Cudasim.Api.malloc ctx 16L) in
  let b = ok (Cudasim.Api.malloc ctx 16L) in
  let c = ok (Cudasim.Api.malloc ctx 16L) in
  upload_f32 ctx a [| 1.; 2.; 3.; 4. |];
  upload_f32 ctx b [| 1.; 0.; 0.; 1. |];
  upload_f32 ctx c [| 100.; 100.; 100.; 100. |];
  success
    (Cudasim.Cublas.sgemm ctx
       { Cudasim.Cublas.handle = h; m = 2; n = 2; k = 2; alpha = 2.0; a;
         lda = 2; b; ldb = 2; beta = 0.5; c; ldc = 2 });
  success (Cudasim.Api.device_synchronize ctx);
  let r = download_f32 ctx c 4 in
  (* 2*A*I + 0.5*C0 = [52 54; 56 58] col-major *)
  check Alcotest.bool "sgemm" true
    (r = [| 52.; 54.; 56.; 58. |]);
  (* invalid handle *)
  (match
     Cudasim.Cublas.sgemm ctx
       { Cudasim.Cublas.handle = 999L; m = 1; n = 1; k = 1; alpha = 1.0; a;
         lda = 1; b; ldb = 1; beta = 0.0; c; ldc = 1 }
   with
  | Cudasim.Error.Invalid_handle -> ()
  | e -> Alcotest.failf "handle: %s" (Cudasim.Error.to_string e));
  success (Cudasim.Cublas.destroy ctx h);
  match Cudasim.Cublas.destroy ctx h with
  | Cudasim.Error.Invalid_handle -> ()
  | _ -> Alcotest.fail "double destroy"

let test_cublas_l1_l2 () =
  let _, ctx = make_ctx () in
  let h = Cudasim.Cublas.create ctx in
  let n = 8 in
  let x = ok (Cudasim.Api.malloc ctx 32L) in
  let y = ok (Cudasim.Api.malloc ctx 32L) in
  upload_f32 ctx x (Array.make n 3.0);
  upload_f32 ctx y (Array.init n (fun i -> Float.of_int i));
  (* sdot = 3 * (0+..+7) = 84 *)
  check (Alcotest.float 1e-4) "sdot" 84.0
    (ok (Cudasim.Cublas.sdot ctx ~handle:h ~n ~x ~incx:1 ~y ~incy:1));
  check (Alcotest.float 1e-4) "snrm2" (3.0 *. Float.sqrt 8.0)
    (ok (Cudasim.Cublas.snrm2 ctx ~handle:h ~n ~x ~incx:1));
  success (Cudasim.Cublas.sscal ctx ~handle:h ~n ~alpha:(-2.0) ~x ~incx:1);
  check (Alcotest.float 1e-4) "sdot after scal" (-168.0)
    (ok (Cudasim.Cublas.sdot ctx ~handle:h ~n ~x ~incx:1 ~y ~incy:1));
  (* sgemv with a 2x2 matrix and strided vectors *)
  let a = ok (Cudasim.Api.malloc ctx 16L) in
  upload_f32 ctx a [| 1.; 2.; 3.; 4. |] (* col-major [[1 3];[2 4]] *);
  let vx = ok (Cudasim.Api.malloc ctx 16L) in
  let vy = ok (Cudasim.Api.malloc ctx 16L) in
  upload_f32 ctx vx [| 1.; 0.; 1.; 0. |] (* incx = 2: picks 1., 1. *);
  upload_f32 ctx vy [| 0.; 0.; 0.; 0. |];
  success
    (Cudasim.Cublas.sgemv ctx
       { Cudasim.Cublas.gv_handle = h; gv_m = 2; gv_n = 2; gv_alpha = 1.0;
         gv_a = a; gv_lda = 2; gv_x = vx; gv_incx = 2; gv_beta = 0.0;
         gv_y = vy; gv_incy = 2 });
  let r = download_f32 ctx vy 4 in
  check (Alcotest.float 1e-5) "gemv[0]" 4.0 r.(0) (* 1+3 *);
  check (Alcotest.float 1e-5) "gemv[1] untouched (stride)" 0.0 r.(1);
  check (Alcotest.float 1e-5) "gemv[2]" 6.0 r.(2) (* 2+4 *);
  (* errors *)
  (match Cudasim.Cublas.sdot ctx ~handle:999L ~n ~x ~incx:1 ~y ~incy:1 with
  | Error Cudasim.Error.Invalid_handle -> ()
  | _ -> Alcotest.fail "bad handle");
  match Cudasim.Cublas.sdot ctx ~handle:h ~n ~x ~incx:0 ~y ~incy:1 with
  | Error Cudasim.Error.Invalid_value -> ()
  | _ -> Alcotest.fail "incx=0"

(* --- cuSOLVER --- *)

let test_cusolver_lu_solve () =
  let _, ctx = make_ctx () in
  let h = Cudasim.Cusolver.create ctx in
  let n = 16 in
  (* build a well-conditioned column-major system with known solution *)
  let a = Array.make (n * n) 0.0 in
  let state = ref 7 in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      state := (!state * 1103515245 + 12345) land 0x3fffffff;
      a.((j * n) + i) <- (Float.of_int (!state land 0xff) /. 256.0) -. 0.5
    done
  done;
  for i = 0 to n - 1 do
    a.((i * n) + i) <- a.((i * n) + i) +. 8.0
  done;
  let x_true = Array.init n (fun i -> Float.of_int (i + 1)) in
  let b = Array.make n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      b.(i) <- b.(i) +. (a.((j * n) + i) *. x_true.(j))
    done
  done;
  let d_a = ok (Cudasim.Api.malloc ctx (Int64.of_int (4 * n * n))) in
  let d_b = ok (Cudasim.Api.malloc ctx (Int64.of_int (4 * n))) in
  upload_f32 ctx d_a a;
  upload_f32 ctx d_b b;
  let lwork =
    ok (Cudasim.Cusolver.sgetrf_buffer_size ctx ~handle:h ~m:n ~n ~a:d_a ~lda:n)
  in
  check Alcotest.bool "lwork > 0" true (lwork > 0);
  let d_work = ok (Cudasim.Api.malloc ctx (Int64.of_int (4 * lwork))) in
  let d_ipiv = ok (Cudasim.Api.malloc ctx (Int64.of_int (4 * n))) in
  let info =
    ok (Cudasim.Cusolver.sgetrf ctx ~handle:h ~m:n ~n ~a:d_a ~lda:n
          ~workspace:d_work ~ipiv:d_ipiv)
  in
  check Alcotest.int "getrf info" 0 info;
  let info =
    ok (Cudasim.Cusolver.sgetrs ctx ~handle:h ~n ~nrhs:1 ~a:d_a ~lda:n
          ~ipiv:d_ipiv ~b:d_b ~ldb:n)
  in
  check Alcotest.int "getrs info" 0 info;
  success (Cudasim.Api.device_synchronize ctx);
  let x = download_f32 ctx d_b n in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. x_true.(i)) > 1e-2 then
        Alcotest.failf "x[%d] = %f, expected %f" i v x_true.(i))
    x

let test_cusolver_singular () =
  let _, ctx = make_ctx () in
  let h = Cudasim.Cusolver.create ctx in
  let n = 4 in
  let d_a = ok (Cudasim.Api.malloc ctx (Int64.of_int (4 * n * n))) in
  upload_f32 ctx d_a (Array.make (n * n) 0.0);
  let d_work = ok (Cudasim.Api.malloc ctx 64L) in
  let d_ipiv = ok (Cudasim.Api.malloc ctx 16L) in
  let info =
    ok (Cudasim.Cusolver.sgetrf ctx ~handle:h ~m:n ~n ~a:d_a ~lda:n
          ~workspace:d_work ~ipiv:d_ipiv)
  in
  check Alcotest.int "singular detected at step 1" 1 info

let test_cusolver_invalid_args () =
  let _, ctx = make_ctx () in
  let h = Cudasim.Cusolver.create ctx in
  (match Cudasim.Cusolver.sgetrf_buffer_size ctx ~handle:h ~m:0 ~n:4 ~a:0L ~lda:4 with
  | Error Cudasim.Error.Invalid_value -> ()
  | _ -> Alcotest.fail "m=0");
  match Cudasim.Cusolver.sgetrs ctx ~handle:999L ~n:4 ~nrhs:1 ~a:0L ~lda:4 ~ipiv:0L ~b:0L ~ldb:4 with
  | Error Cudasim.Error.Invalid_handle -> ()
  | _ -> Alcotest.fail "bad handle"

(* --- functional switch --- *)

let test_functional_switch () =
  let engine, ctx = make_ctx () in
  Cudasim.Context.set_functional ctx false;
  let image = std_image () in
  let modul = ok (Cudasim.Api.module_load_data ctx (Cubin.Image.build image)) in
  let f = ok (Cudasim.Api.module_get_function ctx ~modul ~name:Gpusim.Kernels.fill_name) in
  let p = ok (Cudasim.Api.malloc ctx 1024L) in
  let info = Option.get (Cubin.Image.find_kernel image Gpusim.Kernels.fill_name) in
  let params =
    Result.get_ok
      (Cubin.Image.pack_args info
         [| Gpusim.Kernels.Ptr (Int64.to_int p); Gpusim.Kernels.F32 9.0;
            Gpusim.Kernels.I32 256l |])
  in
  let t0 = Simnet.Engine.now engine in
  success
    (Cudasim.Api.launch_kernel ctx
       { Cudasim.Api.function_handle = f;
         grid = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
         block = { Gpusim.Kernels.x = 256; y = 1; z = 1 };
         shared_mem_bytes = 0; stream = 0L }
       ~params);
  success (Cudasim.Api.device_synchronize ctx);
  check Alcotest.bool "time still charged" true
    (Time.compare (Simnet.Engine.now engine) t0 > 0);
  let back = ok (Cudasim.Api.memcpy_d2h ctx ~src:p ~len:4L) in
  check Alcotest.int32 "memory untouched" 0l (Bytes.get_int32_le back 0)

(* --- checkpoint / restore --- *)

let test_checkpoint_restore () =
  let _, ctx = make_ctx () in
  let image = std_image () in
  let modul = ok (Cudasim.Api.module_load_data ctx (Cubin.Image.build image)) in
  let f = ok (Cudasim.Api.module_get_function ctx ~modul ~name:Gpusim.Kernels.fill_name) in
  let p = ok (Cudasim.Api.malloc ctx 1024L) in
  success (Cudasim.Api.memcpy_h2d ctx ~dst:p (Bytes.make 1024 '\x7e'));
  let h = Cudasim.Cublas.create ctx in
  let snapshot = Cudasim.Context.checkpoint ctx in
  (* mutate everything *)
  success (Cudasim.Api.memset ctx ~ptr:p ~value:0 ~len:1024L);
  success (Cudasim.Api.free ctx p);
  success (Cudasim.Cublas.destroy ctx h);
  success (Cudasim.Api.module_unload ctx modul);
  (* restore *)
  (match Cudasim.Context.restore ctx snapshot with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let back = ok (Cudasim.Api.memcpy_d2h ctx ~src:p ~len:1024L) in
  check Alcotest.bool "memory restored" true
    (Bytes.equal back (Bytes.make 1024 '\x7e'));
  (* module and function handles still valid; kernel still launches *)
  let info = Option.get (Cubin.Image.find_kernel image Gpusim.Kernels.fill_name) in
  let params =
    Result.get_ok
      (Cubin.Image.pack_args info
         [| Gpusim.Kernels.Ptr (Int64.to_int p); Gpusim.Kernels.F32 1.0;
            Gpusim.Kernels.I32 16l |])
  in
  success
    (Cudasim.Api.launch_kernel ctx
       { Cudasim.Api.function_handle = f;
         grid = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
         block = { Gpusim.Kernels.x = 16; y = 1; z = 1 };
         shared_mem_bytes = 0; stream = 0L }
       ~params);
  (* cublas handle restored *)
  success (Cudasim.Cublas.destroy ctx h);
  match Cudasim.Context.restore ctx "garbage" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage checkpoint accepted"

let suite =
  [
    Alcotest.test_case "device management" `Quick test_device_management;
    Alcotest.test_case "device selection bounds" `Quick
      test_device_selection_bounds;
    Alcotest.test_case "error code mapping" `Quick test_error_code_mapping;
    Alcotest.test_case "memory API" `Quick test_memory_api;
    Alcotest.test_case "mem_get_info" `Quick test_mem_get_info;
    Alcotest.test_case "virtual-time charging" `Quick test_time_charging;
    Alcotest.test_case "streams and events" `Quick test_stream_event_api;
    Alcotest.test_case "module load + launch" `Quick test_module_load_launch;
    Alcotest.test_case "compressed cubin + fatbin" `Quick
      test_module_load_compressed_and_fatbin;
    Alcotest.test_case "module globals" `Quick test_module_globals;
    Alcotest.test_case "cuBLAS sgemm" `Quick test_cublas_sgemm;
    Alcotest.test_case "cuBLAS L1/L2" `Quick test_cublas_l1_l2;
    Alcotest.test_case "cuSOLVER LU solve" `Quick test_cusolver_lu_solve;
    Alcotest.test_case "cuSOLVER singular matrix" `Quick test_cusolver_singular;
    Alcotest.test_case "cuSOLVER invalid args" `Quick test_cusolver_invalid_args;
    Alcotest.test_case "functional switch" `Quick test_functional_switch;
    Alcotest.test_case "checkpoint/restore" `Quick test_checkpoint_restore;
  ]
