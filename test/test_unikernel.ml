(* Tests for the host configurations, the virtual-time RPC channel and the
   application runner — including the calibration assertions that pin the
   paper's qualitative findings (orderings and approximate ratios). *)

module Time = Simnet.Time

let check = Alcotest.check

(* --- configurations (Table 1) --- *)

let test_table1 () =
  let names = List.map (fun c -> c.Unikernel.Config.name) Unikernel.Config.all in
  check (Alcotest.list Alcotest.string) "table 1 order"
    [ "C"; "Rust"; "Linux VM"; "Unikraft"; "Hermit" ] names;
  check Alcotest.int "rows" 5 (List.length (Unikernel.Config.table1_rows ()));
  check Alcotest.bool "hermit is unikernel" true
    (Unikernel.Config.is_unikernel Unikernel.Config.hermit);
  check Alcotest.bool "vm is not" false
    (Unikernel.Config.is_unikernel Unikernel.Config.linux_vm);
  check Alcotest.bool "find" true
    (Unikernel.Config.find "hermit" = Some Unikernel.Config.hermit);
  check Alcotest.bool "find miss" true (Unikernel.Config.find "beos" = None);
  (* only native configs run without a hypervisor *)
  List.iter
    (fun c ->
      check Alcotest.bool
        (c.Unikernel.Config.name ^ " hypervisor")
        (c.Unikernel.Config.os <> Unikernel.Config.Rocky_native)
        (c.Unikernel.Config.hypervisor <> None))
    Unikernel.Config.all

let test_unikernel_offload_gaps () =
  (* the feature gaps §4.2 blames: no TSO/GRO in either unikernel; no
     checksum offload in Unikraft; Hermit has the two features the paper's
     RustyHermit work added (csum offload, mergeable buffers) *)
  let off c = c.Unikernel.Config.profile.Simnet.Hostprofile.offloads in
  let hermit = off Unikernel.Config.hermit in
  let unikraft = off Unikernel.Config.unikraft in
  let vm = off Unikernel.Config.linux_vm in
  check Alcotest.bool "no TSO in unikernels" true
    ((not hermit.Simnet.Offload.tso) && not unikraft.Simnet.Offload.tso);
  check Alcotest.bool "no GRO in unikernels" true
    ((not hermit.Simnet.Offload.gro) && not unikraft.Simnet.Offload.gro);
  check Alcotest.bool "hermit csum offload" true hermit.Simnet.Offload.tx_checksum;
  check Alcotest.bool "hermit mrg_rxbuf" true hermit.Simnet.Offload.mrg_rxbuf;
  check Alcotest.bool "unikraft lacks csum offload" false
    unikraft.Simnet.Offload.tx_checksum;
  check Alcotest.bool "vm has every classic offload" true
    (Simnet.Offload.rpc_none vm = Simnet.Offload.all);
  check Alcotest.bool "vm acks rpc engine except steering" true
    (vm.Simnet.Offload.rpc_framing && vm.Simnet.Offload.rpc_parse
    && vm.Simnet.Offload.rpc_doorbell
    && not vm.Simnet.Offload.rpc_steer)

(* --- simchannel --- *)

let test_simchannel_charges_time () =
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 22)
      ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let channel =
    Unikernel.Simchannel.create ~engine
      ~client:Unikernel.Config.hermit.Unikernel.Config.profile
      ~dispatch:(Cricket.Server.dispatch server) ()
  in
  let client =
    Cricket.Client.create ~transport:(Unikernel.Simchannel.transport channel) ()
  in
  let t0 = Simnet.Engine.now engine in
  ignore (Cricket.Client.get_device_count client);
  let t1 = Simnet.Engine.now engine in
  check Alcotest.bool "call advanced virtual time" true (Time.compare t1 t0 > 0);
  (* plausible RTT: tens of microseconds, not seconds *)
  let rtt_us = Time.to_float_us (Time.sub t1 t0) in
  check Alcotest.bool "plausible RTT" true (rtt_us > 10.0 && rtt_us < 1000.0);
  let stats = Unikernel.Simchannel.stats channel in
  check Alcotest.int "one exchange" 1 stats.Unikernel.Simchannel.messages;
  check Alcotest.bool "bytes counted" true
    (stats.Unikernel.Simchannel.bytes_to_server > 0
    && stats.Unikernel.Simchannel.bytes_from_server > 0)

let test_runner_measures () =
  let m =
    Unikernel.Runner.run Unikernel.Config.rust_native (fun env ->
        ignore (Cricket.Client.get_device_count env.Unikernel.Runner.client))
  in
  check Alcotest.int "api calls" 1 m.Unikernel.Runner.api_calls;
  check Alcotest.bool "elapsed > 0" true
    (Time.compare m.Unikernel.Runner.elapsed Time.zero > 0);
  check Alcotest.bool "network time <= elapsed" true
    (Time.compare m.Unikernel.Runner.network_time m.Unikernel.Runner.elapsed <= 0)

let test_runner_rng_cost_differs () =
  let elapsed cfg =
    (Unikernel.Runner.run cfg (fun env -> Unikernel.Runner.charge_rng env (1 lsl 20)))
      .Unikernel.Runner.elapsed
  in
  let c = elapsed Unikernel.Config.c_native in
  let rust = elapsed Unikernel.Config.rust_native in
  check Alcotest.bool "C rng slower" true (Time.compare c rust > 0)

(* --- calibration: the paper's qualitative findings --- *)

let per_call cfg =
  let result = ref Time.zero in
  let (_ : Unikernel.Runner.measurement) =
    Unikernel.Runner.run ~functional:false cfg (fun env ->
        let r = Apps.Micro.run ~calls:2_000 Apps.Micro.Get_device_count env in
        result := r.Apps.Micro.elapsed)
  in
  Time.to_float_us !result /. 2_000.0

let test_fig6_latency_ordering () =
  let native = per_call Unikernel.Config.rust_native in
  let hermit = per_call Unikernel.Config.hermit in
  let unikraft = per_call Unikernel.Config.unikraft in
  let vm = per_call Unikernel.Config.linux_vm in
  (* Fig. 6: native fastest; Hermit the best virtualized config; the Linux
     VM the worst; unikernels need more than double the native time. *)
  check Alcotest.bool "native < hermit" true (native < hermit);
  check Alcotest.bool "hermit < unikraft" true (hermit < unikraft);
  check Alcotest.bool "unikraft < vm" true (unikraft < vm);
  check Alcotest.bool "hermit > 2x native" true (hermit > 2.0 *. native);
  check Alcotest.bool "vm < 4x native" true (vm < 4.0 *. native)

let bandwidth cfg direction =
  let result = ref 0.0 in
  let (_ : Unikernel.Runner.measurement) =
    Unikernel.Runner.run ~functional:false cfg (fun env ->
        let r = Apps.Bandwidth.measure ~total_bytes:(64 lsl 20) direction env in
        result := r.Apps.Bandwidth.mib_per_s)
  in
  !result

let test_fig7_bandwidth_shape () =
  let native_h2d = bandwidth Unikernel.Config.rust_native Apps.Bandwidth.Host_to_device in
  let native_d2h = bandwidth Unikernel.Config.rust_native Apps.Bandwidth.Device_to_host in
  let vm_h2d = bandwidth Unikernel.Config.linux_vm Apps.Bandwidth.Host_to_device in
  let vm_d2h = bandwidth Unikernel.Config.linux_vm Apps.Bandwidth.Device_to_host in
  let hermit_h2d = bandwidth Unikernel.Config.hermit Apps.Bandwidth.Host_to_device in
  let hermit_d2h = bandwidth Unikernel.Config.hermit Apps.Bandwidth.Device_to_host in
  let unikraft_h2d = bandwidth Unikernel.Config.unikraft Apps.Bandwidth.Host_to_device in
  (* VM retains most of native bandwidth; unikernels collapse *)
  check Alcotest.bool "vm >= 65% native (h2d)" true
    (vm_h2d >= 0.65 *. native_h2d);
  check Alcotest.bool "vm >= 65% native (d2h)" true
    (vm_d2h >= 0.65 *. native_d2h);
  check Alcotest.bool "hermit < 20% native" true
    (hermit_h2d < 0.20 *. native_h2d);
  (* hermit's receive path is the bad direction (paper: ~9.8%) *)
  check Alcotest.bool "hermit d2h worse than h2d" true (hermit_d2h < hermit_h2d);
  check Alcotest.bool "hermit d2h ~ 6-13% native" true
    (hermit_d2h > 0.05 *. native_d2h && hermit_d2h < 0.14 *. native_d2h);
  check Alcotest.bool "unikraft collapses" true
    (unikraft_h2d < 0.15 *. native_h2d)

let test_offload_ablation_shape () =
  (* §4.2: disabling TSO/tx-csum/SG in the VM drops H2D to ~924 MiB/s *)
  let vm = Unikernel.Config.linux_vm in
  let crippled =
    { vm with
      Unikernel.Config.profile =
        Simnet.Hostprofile.with_offloads vm.Unikernel.Config.profile
          (Simnet.Offload.disable_bulk
             vm.Unikernel.Config.profile.Simnet.Hostprofile.offloads) }
  in
  let bw = bandwidth crippled Apps.Bandwidth.Host_to_device in
  check Alcotest.bool "ablated VM near 1 GiB/s" true (bw > 600.0 && bw < 1600.0)

let app_elapsed cfg run =
  (Unikernel.Runner.run ~functional:false cfg run).Unikernel.Runner.elapsed

let test_fig5_shapes () =
  (* scaled-down iteration counts keep the test fast; ratios are
     scale-free because per-iteration costs dominate *)
  let mm cfg =
    Time.to_float_s
      (app_elapsed cfg
         (Apps.Matrix_mul.run ~verify:false
            { Apps.Matrix_mul.default with Apps.Matrix_mul.iterations = 2_000 }))
  in
  let native = mm Unikernel.Config.rust_native in
  let hermit = mm Unikernel.Config.hermit in
  let vm = mm Unikernel.Config.linux_vm in
  let unikraft = mm Unikernel.Config.unikraft in
  check Alcotest.bool "matrixMul: hermit ~2x native" true
    (hermit > 1.8 *. native && hermit < 2.6 *. native);
  check Alcotest.bool "matrixMul: unikernels <= vm" true
    (hermit <= vm && unikraft <= vm);
  (* C ~ Rust for matrixMul (minor difference) *)
  let c = mm Unikernel.Config.c_native in
  check Alcotest.bool "matrixMul: C within 15% of Rust" true
    (c < 1.15 *. native);
  (* linear solver: transfer-heavy, hermit overhead much smaller *)
  let ls cfg =
    Time.to_float_s
      (app_elapsed cfg
         (Apps.Linear_solver.run ~verify:false
            { Apps.Linear_solver.default with Apps.Linear_solver.iterations = 30 }))
  in
  let ls_native = ls Unikernel.Config.rust_native in
  let ls_hermit = ls Unikernel.Config.hermit in
  let overhead = (ls_hermit -. ls_native) /. ls_native in
  check Alcotest.bool "solver: hermit overhead ~26.6%" true
    (overhead > 0.15 && overhead < 0.45);
  check Alcotest.bool "solver overhead < matrixMul overhead" true
    (overhead < (hermit -. native) /. native)

let test_fig5c_c_vs_rust () =
  let hist cfg =
    Time.to_float_s
      (app_elapsed cfg
         (Apps.Histogram.run ~verify:false
            { Apps.Histogram.default with Apps.Histogram.iterations = 2_000 }))
  in
  let c = hist Unikernel.Config.c_native in
  let rust = hist Unikernel.Config.rust_native in
  (* paper: Rust ≈37.6 % faster on histogram, driven by init RNG *)
  check Alcotest.bool "C slower on histogram" true (c > 1.2 *. rust);
  let hermit = hist Unikernel.Config.hermit in
  check Alcotest.bool "histogram: hermit ~2x rust" true
    (hermit > 1.7 *. rust && hermit < 2.8 *. rust)

(* --- future-work projections (§5) --- *)

let test_futures_improve_unikernels () =
  let rtt cfg = per_call cfg in
  let base = rtt Unikernel.Config.hermit in
  let vdpa = rtt (Unikernel.Futures.with_vdpa Unikernel.Config.hermit) in
  check Alcotest.bool "vdpa cuts latency" true (vdpa < 0.8 *. base);
  (* vDPA cannot beat native: the guest stack still runs *)
  check Alcotest.bool "vdpa >= native" true
    (vdpa >= per_call Unikernel.Config.rust_native);
  let bw cfg = bandwidth cfg Apps.Bandwidth.Host_to_device in
  let base_bw = bw Unikernel.Config.hermit in
  let tso_bw = bw (Unikernel.Futures.with_tso Unikernel.Config.hermit) in
  let both_bw = bw (Unikernel.Futures.with_tso_and_vdpa Unikernel.Config.hermit) in
  check Alcotest.bool "tso raises bandwidth significantly" true
    (tso_bw > 1.8 *. base_bw);
  check Alcotest.bool "tso+vdpa raises it further" true (both_bw > tso_bw);
  (* TSO must not change small-message latency *)
  let tso_rtt = rtt (Unikernel.Futures.with_tso Unikernel.Config.hermit) in
  check Alcotest.bool "tso latency-neutral" true
    (Float.abs (tso_rtt -. base) /. base < 0.05);
  check Alcotest.int "four variants" 4
    (List.length (Unikernel.Futures.variants Unikernel.Config.hermit))

(* --- multi-tenant sharing (§5) --- *)

let tenant name priority steps =
  {
    Unikernel.Multitenant.name;
    config = Unikernel.Config.hermit;
    priority;
    work =
      List.init steps (fun _ client ->
          let d = Cricket.Client.malloc client 4096 in
          Cricket.Client.free client d);
  }

let finished report name =
  (List.find
     (fun t -> t.Unikernel.Multitenant.tenant = name)
     report.Unikernel.Multitenant.tenants)
    .Unikernel.Multitenant.finished_at

let test_multitenant_policies () =
  let specs = [ tenant "big" 5 30; tenant "small" 1 5 ] in
  let fifo = Unikernel.Multitenant.run ~policy:Cricket.Sched.Fifo specs in
  let rr = Unikernel.Multitenant.run ~policy:Cricket.Sched.Round_robin specs in
  let prio = Unikernel.Multitenant.run ~policy:Cricket.Sched.Priority specs in
  (* all work completes under every policy, same total *)
  List.iter
    (fun r ->
      check Alcotest.int "tenants" 2 (List.length r.Unikernel.Multitenant.tenants);
      List.iter
        (fun t ->
          check Alcotest.bool "all steps ran" true
            (t.Unikernel.Multitenant.steps > 0))
        r.Unikernel.Multitenant.tenants)
    [ fifo; rr; prio ];
  (* fifo makes "small" wait behind "big"; rr and priority do not *)
  check Alcotest.bool "rr helps small tenant" true
    (Time.compare (finished rr "small") (finished fifo "small") < 0);
  check Alcotest.bool "priority helps small most" true
    (Time.compare (finished prio "small") (finished rr "small") <= 0);
  (* makespan is policy-independent (work conserving) *)
  check Alcotest.int64 "same makespan" fifo.Unikernel.Multitenant.makespan
    rr.Unikernel.Multitenant.makespan

let test_multitenant_isolation () =
  (* tenants get distinct allocations on the shared GPU; interleaving must
     not corrupt them *)
  let pattern i = Bytes.make 512 (Char.chr (0x30 + i)) in
  let results = Array.make 3 false in
  let specs =
    List.init 3 (fun i ->
        {
          Unikernel.Multitenant.name = Printf.sprintf "t%d" i;
          config = Unikernel.Config.hermit;
          priority = 1;
          work =
            [
              (fun client ->
                let d = Cricket.Client.malloc client 512 in
                Cricket.Client.memcpy_h2d client ~dst:d (pattern i);
                let back = Cricket.Client.memcpy_d2h client ~src:d ~len:512 in
                results.(i) <- Bytes.equal back (pattern i);
                Cricket.Client.free client d);
            ];
        })
  in
  ignore (Unikernel.Multitenant.run ~policy:Cricket.Sched.Round_robin specs);
  Array.iteri
    (fun i ok -> check Alcotest.bool (Printf.sprintf "tenant %d intact" i) true ok)
    results

(* --- numerics through every configuration --- *)

let test_apps_verify_everywhere () =
  (* a small functional run of each app must verify in every config *)
  List.iter
    (fun cfg ->
      ignore
        (Unikernel.Runner.run ~functional:true cfg
           (Apps.Matrix_mul.run ~verify:true
              { Apps.Matrix_mul.ha = 64; wa = 64; wb = 64; iterations = 2 }));
      ignore
        (Unikernel.Runner.run ~functional:true cfg
           (Apps.Histogram.run ~verify:true
              { Apps.Histogram.data_bytes = 1 lsl 16; iterations = 2 }));
      ignore
        (Unikernel.Runner.run ~functional:true cfg
           (Apps.Linear_solver.run ~verify:true
              { Apps.Linear_solver.n = 48; iterations = 1 }));
      ignore
        (Unikernel.Runner.run ~functional:true cfg (fun env ->
             ignore (Apps.Bandwidth.run ~verify:true env))))
    Unikernel.Config.all

let test_app_call_counts_match_paper () =
  (* §4.1 reports per-app API-call counts; ours must have the same shape:
     matrixMul ≈ iterations + small constant, histogram ≈ 2·iterations. *)
  let m =
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Matrix_mul.run ~verify:false
         { Apps.Matrix_mul.paper with Apps.Matrix_mul.iterations = 1_000 })
  in
  check Alcotest.bool "matrixMul calls ~ iterations + setup" true
    (m.Unikernel.Runner.api_calls >= 1_000
    && m.Unikernel.Runner.api_calls < 1_100);
  let h =
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Histogram.run ~verify:false
         { Apps.Histogram.paper with Apps.Histogram.iterations = 1_000 })
  in
  check Alcotest.bool "histogram calls ~ 2*iterations + setup" true
    (h.Unikernel.Runner.api_calls >= 2_000
    && h.Unikernel.Runner.api_calls < 2_100);
  let ls =
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Linear_solver.run ~verify:false
         { Apps.Linear_solver.paper with Apps.Linear_solver.iterations = 100 })
  in
  (* ~13 calls/iteration (paper: ≈20) and ~6.5 MB/iteration transferred *)
  check Alcotest.bool "solver calls per iteration" true
    (ls.Unikernel.Runner.api_calls > 800 && ls.Unikernel.Runner.api_calls < 2_200);
  let mb_per_iter =
    Float.of_int ls.Unikernel.Runner.bytes_to_server /. 100.0 /. 1048576.0
  in
  check Alcotest.bool "solver ~6.2 MiB/iteration up" true
    (mb_per_iter > 5.5 && mb_per_iter < 7.0)

let suite =
  [
    Alcotest.test_case "table 1 configurations" `Quick test_table1;
    Alcotest.test_case "unikernel offload gaps" `Quick
      test_unikernel_offload_gaps;
    Alcotest.test_case "simchannel charges time" `Quick
      test_simchannel_charges_time;
    Alcotest.test_case "runner measurement" `Quick test_runner_measures;
    Alcotest.test_case "rng cost differs by language" `Quick
      test_runner_rng_cost_differs;
    Alcotest.test_case "fig6 latency ordering" `Slow test_fig6_latency_ordering;
    Alcotest.test_case "fig7 bandwidth shape" `Slow test_fig7_bandwidth_shape;
    Alcotest.test_case "offload ablation shape" `Slow
      test_offload_ablation_shape;
    Alcotest.test_case "fig5 application shapes" `Slow test_fig5_shapes;
    Alcotest.test_case "fig5c C vs Rust" `Slow test_fig5c_c_vs_rust;
    Alcotest.test_case "futures: tso/vdpa projections" `Slow
      test_futures_improve_unikernels;
    Alcotest.test_case "multi-tenant policies" `Quick test_multitenant_policies;
    Alcotest.test_case "multi-tenant isolation" `Quick
      test_multitenant_isolation;
    Alcotest.test_case "apps verify in every config" `Slow
      test_apps_verify_everywhere;
    Alcotest.test_case "call counts match paper profile" `Slow
      test_app_call_counts_match_paper;
  ]
