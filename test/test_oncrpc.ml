(* Unit, integration and property tests for the ONC RPC (RFC 5531) layer:
   record marking (incl. multi-fragment reassembly), message codecs, auth,
   client/server dispatch over in-memory and real TCP transports, and the
   portmapper. *)

module E = Xdr.Encode
module D = Xdr.Decode

let check = Alcotest.check

(* --- record marking --- *)

let test_header_roundtrip () =
  List.iter
    (fun (last, len) ->
      let h = Oncrpc.Record.encode_header ~last len in
      check Alcotest.int "header size" 4 (String.length h);
      let last', len' = Oncrpc.Record.decode_header h in
      check Alcotest.bool "last" last last';
      check Alcotest.int "len" len len')
    [ (true, 0); (false, 1); (true, 0x7fffffff); (false, 12345) ]

let test_single_fragment_wire () =
  let wire = Oncrpc.Record.to_wire "abcd" in
  check Alcotest.string "wire" "\x80\x00\x00\x04abcd" wire

let test_multi_fragment_wire () =
  let wire = Oncrpc.Record.to_wire ~fragment_size:3 "abcdefgh" in
  (* 3 + 3 + 2 bytes: two non-last fragments then a last one *)
  check Alcotest.string "wire"
    "\x00\x00\x00\x03abc\x00\x00\x00\x03def\x80\x00\x00\x02gh" wire

let test_empty_record () =
  let wire = Oncrpc.Record.to_wire "" in
  check Alcotest.string "empty" "\x80\x00\x00\x00" wire

let pipe_roundtrip ?fragment_size msg =
  let a, b = Oncrpc.Transport.pipe () in
  Oncrpc.Record.write ?fragment_size a msg;
  let got = Oncrpc.Record.read b in
  a.Oncrpc.Transport.close ();
  got

let test_fragment_reassembly () =
  let msg = String.init 10_000 (fun i -> Char.chr (i land 0xff)) in
  List.iter
    (fun fragment_size ->
      check Alcotest.string
        (Printf.sprintf "frag=%d" fragment_size)
        msg
        (pipe_roundtrip ~fragment_size msg))
    [ 1; 7; 64; 4096; 10_000; 100_000 ]

let test_max_record_size () =
  let a, b = Oncrpc.Transport.pipe () in
  Oncrpc.Record.write ~fragment_size:8 a (String.make 100 'x');
  (match Oncrpc.Record.read ~max_record_size:50 b with
  | _ -> Alcotest.fail "expected Oversized"
  | exception Oncrpc.Record.Oversized { claimed; limit } ->
      check Alcotest.int "limit echoed" 50 limit;
      check Alcotest.bool "claimed past limit" true (claimed > limit));
  a.Oncrpc.Transport.close ()

let test_read_opt_clean_eof () =
  let a, b = Oncrpc.Transport.pipe () in
  a.Oncrpc.Transport.close ();
  check Alcotest.bool "eof" true (Oncrpc.Record.read_opt b = None)

let prop_record_roundtrip =
  QCheck.Test.make ~count:200 ~name:"record marking roundtrip"
    QCheck.(pair (string_of_size (Gen.int_range 0 5000)) (int_range 1 997))
    (fun (msg, fragment_size) -> pipe_roundtrip ~fragment_size msg = msg)

(* --- vectored datapath: writev wire identity, pool, zero copies --- *)

(* A transport that records everything sent through it, plus how many
   gather (sendv) calls and which slices it saw — enough to both compare
   wire bytes against the seed [to_wire] path and to prove the tx path
   stayed zero-copy above the transport. *)
let capture_transport () =
  let out = Buffer.create 256 in
  let sendv_calls = ref 0 in
  let slices = ref [] in
  let t =
    Oncrpc.Transport.make
      ~send:(fun b off len -> Buffer.add_subbytes out b off len)
      ~sendv:(fun iov ->
        incr sendv_calls;
        Xdr.Iovec.iter
          (fun s ->
            slices := s :: !slices;
            Buffer.add_substring out s.Xdr.Iovec.base s.Xdr.Iovec.off
              s.Xdr.Iovec.len)
          iov)
      ~recv:(fun _ _ _ -> 0)
      ~close:(fun () -> ())
      ()
  in
  (t, out, sendv_calls, slices)

let test_writev_wire_identity_cases () =
  List.iter
    (fun (name, fragment_size, msg) ->
      let t, out, _, _ = capture_transport () in
      Oncrpc.Record.writev ~fragment_size t (Xdr.Iovec.of_string msg);
      check Alcotest.string name
        (Oncrpc.Record.to_wire ~fragment_size msg)
        (Buffer.contents out))
    [
      ("empty record", 100, "");
      ("single fragment", 100, "abcd");
      ("exact fragment boundary", 4, "abcdefgh");
      ("multi fragment", 3, "abcdefgh");
      ("one byte fragments", 1, "xyz");
    ]

let prop_writev_wire_identity =
  (* the vectored path must be byte-identical to the seed Buffer-based
     [to_wire] for any payload, any fragment size, and any scatter of the
     payload across slices *)
  QCheck.Test.make ~count:300 ~name:"writev wire bytes identical to to_wire"
    QCheck.(
      triple
        (string_of_size (Gen.int_range 0 5000))
        (int_range 1 997)
        (list_of_size (Gen.int_range 0 6) (int_range 1 500)))
    (fun (msg, fragment_size, cuts) ->
      (* scatter msg into an iovec at the generated cut widths *)
      let iov = ref [] in
      let pos = ref 0 in
      List.iter
        (fun w ->
          let w = min w (String.length msg - !pos) in
          if w > 0 then begin
            iov := Xdr.Iovec.slice ~off:!pos ~len:w msg :: !iov;
            pos := !pos + w
          end)
        cuts;
      if !pos < String.length msg then
        iov :=
          Xdr.Iovec.slice ~off:!pos ~len:(String.length msg - !pos) msg
          :: !iov;
      let iov = List.rev !iov in
      let t, out, _, _ = capture_transport () in
      Oncrpc.Record.writev ~fragment_size t iov;
      Buffer.contents out = Oncrpc.Record.to_wire ~fragment_size msg)

let prop_writev_roundtrip_via_read =
  (* gather-written records must reassemble through the pooled read path *)
  QCheck.Test.make ~count:200 ~name:"writev/read roundtrip"
    QCheck.(pair (string_of_size (Gen.int_range 0 5000)) (int_range 1 997))
    (fun (msg, fragment_size) ->
      let a, b = Oncrpc.Transport.pipe () in
      Oncrpc.Record.writev ~fragment_size a (Xdr.Iovec.of_string msg);
      Oncrpc.Record.read b = msg)

let test_writev_zero_copy_tx () =
  (* A large payload encoded as RPC arguments must reach the transport as
     a view of the caller's buffer: exactly one gather call, and one of
     its slices physically aliases the payload. That slice identity is the
     proof the XDR and record layers performed zero payload copies — the
     transport's own staging copy is the single remaining one. *)
  let payload = Bytes.init 262_144 (fun i -> Char.chr (i land 0xff)) in
  let enc = E.create () in
  E.int enc 42;
  E.opaque enc payload;
  let t, out, sendv_calls, slices = capture_transport () in
  Oncrpc.Record.writev t (Xdr.Encode.to_iovec enc);
  check Alcotest.int "one gather call" 1 !sendv_calls;
  let aliased =
    List.exists
      (fun s ->
        s.Xdr.Iovec.base == Bytes.unsafe_to_string payload
        && s.Xdr.Iovec.len = Bytes.length payload)
      !slices
  in
  check Alcotest.bool "payload slice aliases caller buffer" true aliased;
  (* and the wire image is still the classic format *)
  let dec =
    D.of_string
      (String.sub (Buffer.contents out) 4 (Buffer.length out - 4))
  in
  check Alcotest.int "int field" 42 (D.int dec);
  check Alcotest.bool "payload intact" true (D.opaque dec = payload)

let test_pool_reuse_after_release () =
  let pool = Oncrpc.Pool.create () in
  let b1 = Oncrpc.Pool.acquire pool 5000 in
  check Alcotest.int "rounded to power of two" 8192 (Bytes.length b1);
  Oncrpc.Pool.release pool b1;
  let b2 = Oncrpc.Pool.acquire pool 8000 in
  check Alcotest.bool "same buffer physically reused" true (b1 == b2);
  let s = Oncrpc.Pool.stats pool in
  check Alcotest.int "one hit" 1 s.Oncrpc.Pool.hits;
  check Alcotest.int "one miss" 1 s.Oncrpc.Pool.misses

let test_pool_double_release_safe () =
  let pool = Oncrpc.Pool.create () in
  let b = Oncrpc.Pool.acquire pool 4096 in
  Oncrpc.Pool.release pool b;
  Oncrpc.Pool.release pool b;
  (* the second release must be dropped: acquiring twice must never yield
     the same buffer twice (which would corrupt concurrent reads) *)
  let c1 = Oncrpc.Pool.acquire pool 4096 in
  let c2 = Oncrpc.Pool.acquire pool 4096 in
  check Alcotest.bool "no duplicate handout" false (c1 == c2);
  let s = Oncrpc.Pool.stats pool in
  check Alcotest.int "double release dropped" 1 s.Oncrpc.Pool.drops

let test_pool_oversized_bypass () =
  let pool = Oncrpc.Pool.create ~max_buffer_size:4096 () in
  let b = Oncrpc.Pool.acquire pool 100_000 in
  check Alcotest.bool "oversized request served" true (Bytes.length b >= 100_000);
  Oncrpc.Pool.release pool b;
  let c = Oncrpc.Pool.acquire pool 100_000 in
  check Alcotest.bool "oversized never pooled" false (b == c)

let test_read_recycles_staging_buffers () =
  (* two identical multi-fragment reads through a private pool: the second
     read's staging must come from the free list, not fresh allocation *)
  let pool = Oncrpc.Pool.create ~per_bin:16 () in
  let msg = String.init 10_000 (fun i -> Char.chr (i land 0xff)) in
  let read_once () =
    let a, b = Oncrpc.Transport.pipe () in
    Oncrpc.Record.write ~fragment_size:1024 a msg;
    let got = Oncrpc.Record.read ~pool b in
    a.Oncrpc.Transport.close ();
    check Alcotest.string "payload" msg got
  in
  read_once ();
  let after_first = Oncrpc.Pool.stats pool in
  read_once ();
  let after_second = Oncrpc.Pool.stats pool in
  check Alcotest.bool "second read hit the pool" true
    (after_second.Oncrpc.Pool.hits > after_first.Oncrpc.Pool.hits);
  check Alcotest.int "no new allocations on second read"
    after_first.Oncrpc.Pool.misses after_second.Oncrpc.Pool.misses

(* --- message codec --- *)

let encode_msg m =
  let enc = E.create () in
  Oncrpc.Message.encode enc m;
  E.to_string enc

let decode_msg s =
  let dec = D.of_string s in
  let m = Oncrpc.Message.decode dec in
  D.finish dec;
  m

let test_call_roundtrip () =
  let m =
    Oncrpc.Message.call ~xid:42l ~prog:99999 ~vers:1 ~proc:7 ()
  in
  let m' = decode_msg (encode_msg m) in
  check Alcotest.int32 "xid" 42l m'.Oncrpc.Message.xid;
  match m'.Oncrpc.Message.body with
  | Oncrpc.Message.Call c ->
      check Alcotest.int "prog" 99999 c.Oncrpc.Message.prog;
      check Alcotest.int "vers" 1 c.Oncrpc.Message.vers;
      check Alcotest.int "proc" 7 c.Oncrpc.Message.proc
  | _ -> Alcotest.fail "not a call"

let test_reply_roundtrips () =
  let cases =
    [
      Oncrpc.Message.reply_success ~xid:1l ();
      Oncrpc.Message.reply_error ~xid:2l Oncrpc.Message.Prog_unavail;
      Oncrpc.Message.reply_error ~xid:3l
        (Oncrpc.Message.Prog_mismatch { low = 1; high = 3 });
      Oncrpc.Message.reply_error ~xid:4l Oncrpc.Message.Proc_unavail;
      Oncrpc.Message.reply_error ~xid:5l Oncrpc.Message.Garbage_args;
      Oncrpc.Message.reply_error ~xid:6l Oncrpc.Message.System_err;
      Oncrpc.Message.reply_denied ~xid:7l
        (Oncrpc.Message.Rpc_mismatch { low = 2; high = 2 });
      Oncrpc.Message.reply_denied ~xid:8l
        (Oncrpc.Message.Auth_error Oncrpc.Message.Auth_tooweak);
    ]
  in
  List.iter (fun m -> assert (decode_msg (encode_msg m) = m)) cases

let test_auth_sys_roundtrip () =
  let p =
    {
      Oncrpc.Auth.stamp = 123l;
      machinename = "gpu-node-0";
      uid = 1000;
      gid = 100;
      gids = [ 100; 4; 27 ];
    }
  in
  let t = Oncrpc.Auth.sys p in
  check Alcotest.bool "flavor" true (t.Oncrpc.Auth.flavor = Oncrpc.Auth.Auth_sys);
  let p' = Oncrpc.Auth.sys_params t in
  assert (p = p')

let test_auth_body_limit () =
  match
    Oncrpc.Auth.encode (E.create ())
      { Oncrpc.Auth.flavor = Oncrpc.Auth.Auth_none; body = Bytes.create 401 }
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- client/server over loopback --- *)

let add_service server =
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [
      (* proc 1: add two ints *)
      ( 1,
        fun dec enc ->
          let a = D.int dec in
          let b = D.int dec in
          E.int enc (a + b) );
      (* proc 2: echo opaque *)
      (2, fun dec enc -> E.opaque enc (D.opaque dec));
      (* proc 3: raises *)
      (3, fun _ _ -> failwith "boom");
    ]

let make_loopback_client ?(vers = 1) ?(prog = 300000) server =
  let transport =
    Oncrpc.Transport.loopback ~peer:(fun request ->
        (* requests arrive record-marked; peel and re-add framing *)
        let dec_t, enc_t = Oncrpc.Transport.pipe () in
        Oncrpc.Transport.send_string dec_t request;
        let record = Oncrpc.Record.read enc_t in
        let reply = Oncrpc.Server.dispatch server record in
        Oncrpc.Record.to_wire reply)
  in
  Oncrpc.Client.create ~transport ~prog ~vers ()

let test_client_server_basic () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let client = make_loopback_client server in
  let sum =
    Oncrpc.Client.call client ~proc:1
      (fun enc -> E.int enc 2; E.int enc 40)
      D.int
  in
  check Alcotest.int "sum" 42 sum;
  (* NULL procedure is implicit *)
  Oncrpc.Client.call_void client ~proc:0 (fun _ -> ());
  let stats = Oncrpc.Client.stats client in
  check Alcotest.int "calls" 2 stats.Oncrpc.Client.calls;
  check Alcotest.int "args bytes" 8 stats.Oncrpc.Client.bytes_sent

let test_client_server_large_payload () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let client = make_loopback_client server in
  let payload = Bytes.init 3_000_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let echoed =
    Oncrpc.Client.call client ~proc:2
      (fun enc -> E.opaque enc payload)
      (fun dec -> D.opaque dec)
  in
  check Alcotest.bool "echo" true (Bytes.equal payload echoed)

let expect_rpc_error expected f =
  match f () with
  | _ -> Alcotest.fail "expected Rpc_error"
  | exception Oncrpc.Client.Rpc_error e ->
      check Alcotest.string "rpc error" expected
        (Oncrpc.Client.error_to_string e)

let test_error_replies () =
  let server = Oncrpc.Server.create () in
  add_service server;
  (* unknown program *)
  let c = make_loopback_client ~prog:42 server in
  expect_rpc_error "call failed: PROG_UNAVAIL" (fun () ->
      Oncrpc.Client.call_void c ~proc:0 (fun _ -> ()));
  (* wrong version *)
  let c = make_loopback_client ~vers:9 server in
  expect_rpc_error "call failed: PROG_MISMATCH(low=1,high=1)" (fun () ->
      Oncrpc.Client.call_void c ~proc:0 (fun _ -> ()));
  (* unknown procedure *)
  let c = make_loopback_client server in
  expect_rpc_error "call failed: PROC_UNAVAIL" (fun () ->
      Oncrpc.Client.call_void c ~proc:999 (fun _ -> ()));
  (* garbage args: proc 1 wants two ints *)
  expect_rpc_error "call failed: GARBAGE_ARGS" (fun () ->
      ignore (Oncrpc.Client.call c ~proc:1 (fun _ -> ()) D.int));
  (* handler exception *)
  expect_rpc_error "call failed: SYSTEM_ERR" (fun () ->
      Oncrpc.Client.call_void c ~proc:3 (fun _ -> ()))

let test_auth_rejection () =
  let server = Oncrpc.Server.create () in
  add_service server;
  Oncrpc.Server.set_auth_check server (fun cred ->
      match cred.Oncrpc.Auth.flavor with
      | Oncrpc.Auth.Auth_sys -> None
      | _ -> Some Oncrpc.Message.Auth_tooweak);
  let c = make_loopback_client server in
  expect_rpc_error "call denied: AUTH_ERROR(5)" (fun () ->
      Oncrpc.Client.call_void c ~proc:0 (fun _ -> ()));
  (* with AUTH_SYS it goes through *)
  let cred =
    Oncrpc.Auth.sys
      { Oncrpc.Auth.stamp = 0l; machinename = "m"; uid = 0; gid = 0; gids = [] }
  in
  let transport =
    Oncrpc.Transport.loopback ~peer:(fun request ->
        let dec_t, enc_t = Oncrpc.Transport.pipe () in
        Oncrpc.Transport.send_string dec_t request;
        let record = Oncrpc.Record.read enc_t in
        Oncrpc.Record.to_wire (Oncrpc.Server.dispatch server record))
  in
  let c = Oncrpc.Client.create ~cred ~transport ~prog:300000 ~vers:1 () in
  Oncrpc.Client.call_void c ~proc:0 (fun _ -> ())

let test_observer () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let seen = ref [] in
  Oncrpc.Server.set_observer server (fun ~prog ~vers ~proc ~arg_bytes ->
      seen := (prog, vers, proc, arg_bytes) :: !seen);
  let client = make_loopback_client server in
  ignore
    (Oncrpc.Client.call client ~proc:1
       (fun enc -> E.int enc 1; E.int enc 2)
       D.int);
  check Alcotest.bool "observed" true ([ (300000, 1, 1, 8) ] = !seen)

(* --- client/server over threads + in-memory pipe --- *)

let test_threaded_pipe () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let client_t, server_t = Oncrpc.Transport.pipe () in
  let thread =
    Thread.create (fun () -> Oncrpc.Server.serve_transport server server_t) ()
  in
  let client = Oncrpc.Client.create ~transport:client_t ~prog:300000 ~vers:1 () in
  for i = 1 to 50 do
    let sum =
      Oncrpc.Client.call client ~proc:1
        (fun enc -> E.int enc i; E.int enc i)
        D.int
    in
    check Alcotest.int "sum" (2 * i) sum
  done;
  Oncrpc.Client.close client;
  Thread.join thread

(* --- client/server over real TCP --- *)

let test_tcp_end_to_end () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let tcp = Oncrpc.Server.serve_tcp server ~port:0 () in
  let port = Oncrpc.Server.tcp_port tcp in
  let transport = Oncrpc.Transport.tcp_connect ~host:"127.0.0.1" ~port in
  let client = Oncrpc.Client.create ~transport ~prog:300000 ~vers:1 () in
  let sum =
    Oncrpc.Client.call client ~proc:1
      (fun enc -> E.int enc 20; E.int enc 22)
      D.int
  in
  check Alcotest.int "tcp sum" 42 sum;
  let payload = Bytes.init 100_000 (fun i -> Char.chr (i land 0xff)) in
  let echoed =
    Oncrpc.Client.call client ~proc:2
      (fun enc -> E.opaque enc payload)
      (fun dec -> D.opaque dec)
  in
  check Alcotest.bool "tcp echo" true (Bytes.equal payload echoed);
  Oncrpc.Client.close client;
  Oncrpc.Server.shutdown_tcp tcp

(* --- concurrent client --- *)

let test_concurrent_client () =
  let server = Oncrpc.Server.create () in
  (* a slow echo: replies arrive out of submission order because handlers
     run per-record on the server thread, but workers submit in parallel *)
  Oncrpc.Server.register server ~prog:300000 ~vers:1
    [
      ( 1,
        fun dec enc ->
          let v = D.int dec in
          E.int enc (v * 2) );
    ];
  let client_t, server_t = Oncrpc.Transport.pipe () in
  let server_thread =
    Thread.create (fun () -> Oncrpc.Server.serve_transport server server_t) ()
  in
  let client =
    Oncrpc.Concurrent.create ~transport:client_t ~prog:300000 ~vers:1 ()
  in
  let workers = 8 and calls_each = 50 in
  let results = Array.make workers true in
  let threads =
    List.init workers (fun w ->
        Thread.create
          (fun () ->
            for i = 1 to calls_each do
              let v = (w * 1000) + i in
              let r =
                Oncrpc.Concurrent.call client ~proc:1
                  (fun enc -> E.int enc v)
                  D.int
              in
              if r <> 2 * v then results.(w) <- false
            done)
          ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun w ok -> check Alcotest.bool (Printf.sprintf "worker %d" w) true ok)
    results;
  check Alcotest.int "no leaked pending calls" 0
    (Oncrpc.Concurrent.outstanding client);
  Oncrpc.Concurrent.close client;
  Thread.join server_thread

let test_concurrent_close_fails_pending () =
  (* a server that never answers: close must fail the caller promptly *)
  let client_t, _server_t = Oncrpc.Transport.pipe () in
  let client =
    Oncrpc.Concurrent.create ~transport:client_t ~prog:300000 ~vers:1 ()
  in
  let outcome = ref `Pending in
  let caller =
    Thread.create
      (fun () ->
        match
          Oncrpc.Concurrent.call client ~proc:1 (fun enc -> E.int enc 1) D.int
        with
        | _ -> outcome := `Returned
        | exception Oncrpc.Transport.Closed -> outcome := `Closed
        | exception _ -> outcome := `Other)
      ()
  in
  (* wait for the call to be registered, then kill the connection *)
  while Oncrpc.Concurrent.outstanding client = 0 do
    Thread.yield ()
  done;
  Oncrpc.Concurrent.close client;
  Thread.join caller;
  check Alcotest.bool "pending call failed with Closed" true
    (!outcome = `Closed)

(* --- UDP transport --- *)

let test_udp_end_to_end () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let udp = Oncrpc.Udp.serve server ~port:0 in
  let client =
    Oncrpc.Udp.connect ~host:"127.0.0.1" ~port:(Oncrpc.Udp.port udp)
      ~prog:300000 ~vers:1 ()
  in
  let sum =
    Oncrpc.Udp.call client ~proc:1
      (fun enc -> E.int enc 30; E.int enc 12)
      D.int
  in
  check Alcotest.int "udp sum" 42 sum;
  (* several sequential calls reuse the socket *)
  for i = 1 to 20 do
    let s =
      Oncrpc.Udp.call client ~proc:1
        (fun enc -> E.int enc i; E.int enc i)
        D.int
    in
    check Alcotest.int "seq" (2 * i) s
  done;
  Oncrpc.Udp.close_client client;
  Oncrpc.Udp.shutdown udp

let test_udp_error_reply () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let udp = Oncrpc.Udp.serve server ~port:0 in
  let client =
    Oncrpc.Udp.connect ~host:"127.0.0.1" ~port:(Oncrpc.Udp.port udp)
      ~prog:300000 ~vers:1 ()
  in
  (match Oncrpc.Udp.call client ~proc:999 (fun _ -> ()) D.void with
  | _ -> Alcotest.fail "expected PROC_UNAVAIL"
  | exception Oncrpc.Client.Rpc_error (Oncrpc.Client.Call_failed _) -> ());
  Oncrpc.Udp.close_client client;
  Oncrpc.Udp.shutdown udp

let test_udp_timeout () =
  (* bind a socket that never answers *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let client =
    Oncrpc.Udp.connect ~timeout_s:0.02 ~retries:1 ~host:"127.0.0.1" ~port
      ~prog:300000 ~vers:1 ()
  in
  (match Oncrpc.Udp.call client ~proc:0 (fun _ -> ()) D.void with
  | _ -> Alcotest.fail "expected Timeout"
  | exception Oncrpc.Udp.Timeout -> ());
  Oncrpc.Udp.close_client client;
  Unix.close fd

let test_udp_size_limit () =
  let server = Oncrpc.Server.create () in
  add_service server;
  let udp = Oncrpc.Udp.serve server ~port:0 in
  let client =
    Oncrpc.Udp.connect ~host:"127.0.0.1" ~port:(Oncrpc.Udp.port udp)
      ~prog:300000 ~vers:1 ()
  in
  (match
     Oncrpc.Udp.call client ~proc:2
       (fun enc -> E.opaque enc (Bytes.create 60_000))
       (fun dec -> D.opaque dec)
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Oncrpc.Udp.close_client client;
  Oncrpc.Udp.shutdown udp

(* --- typed errors --- *)

let test_tcp_connect_resolution_error () =
  (* .invalid is reserved (RFC 2606): resolution must fail, and it must
     fail as a typed error, not a stringly Failure *)
  match Oncrpc.Transport.tcp_connect ~host:"no-such-host.invalid" ~port:1 with
  | _ -> Alcotest.fail "expected Connect_error"
  | exception
      Oncrpc.Transport.Connect_error
        (Oncrpc.Transport.Resolution_failed { host; port }) ->
      check Alcotest.string "host" "no-such-host.invalid" host;
      check Alcotest.int "port" 1 port

let test_dispatch_reply_typed_error () =
  let server = Oncrpc.Server.create () in
  add_service server;
  (* a well-formed REPLY where a CALL belongs: typed, with the xid *)
  let reply =
    let enc = E.create () in
    Oncrpc.Message.encode enc
      (Oncrpc.Message.reply_success ~xid:0x1234l ());
    E.to_string enc
  in
  (match Oncrpc.Server.dispatch server reply with
  | _ -> Alcotest.fail "expected Protocol_error"
  | exception
      Oncrpc.Server.Protocol_error (Oncrpc.Server.Unexpected_reply { xid }) ->
      check Alcotest.int32 "xid" 0x1234l xid);
  (* a record too short to even carry an xid: Unparseable_request *)
  match Oncrpc.Server.dispatch server "\x00\x01" with
  | _ -> Alcotest.fail "expected Protocol_error"
  | exception
      Oncrpc.Server.Protocol_error (Oncrpc.Server.Unparseable_request _) ->
      ()

(* --- at-most-once cache keyed by connection/tenant identity --- *)

let test_dup_cache_tenant_ident () =
  (* two tenants reusing the same xid space must not collide in the
     duplicate-request cache: same (xid, prog, vers, proc) from a
     different identity is a fresh call, not a replay *)
  let server = Oncrpc.Server.create () in
  Oncrpc.Server.set_dup_cache server;
  let executions = ref 0 in
  Oncrpc.Server.register server ~prog:300001 ~vers:1
    [ (1, fun dec enc -> incr executions; E.int enc (D.int dec)) ];
  let request =
    let enc = E.create () in
    Oncrpc.Message.encode enc
      (Oncrpc.Message.call ~xid:99l ~prog:300001 ~vers:1 ~proc:1 ());
    E.int enc 5;
    E.to_string enc
  in
  let r1 = Oncrpc.Server.dispatch ~ident:"tenant-a" server request in
  let r2 = Oncrpc.Server.dispatch ~ident:"tenant-a" server request in
  check Alcotest.int "same ident executes once" 1 !executions;
  check Alcotest.string "cached reply replayed byte-identically" r1 r2;
  check Alcotest.int "replay counted as dup hit" 1
    (Oncrpc.Server.dup_hits server);
  let r3 = Oncrpc.Server.dispatch ~ident:"tenant-b" server request in
  check Alcotest.int "distinct ident executes again" 2 !executions;
  check Alcotest.string "and computes the same answer" r1 r3;
  check Alcotest.int "no spurious dup hit across idents" 1
    (Oncrpc.Server.dup_hits server);
  (* the anonymous (no-ident) key space is distinct from any tenant's *)
  let (_ : string) = Oncrpc.Server.dispatch server request in
  check Alcotest.int "anonymous ident distinct from tenants" 3 !executions

(* --- UDP retry determinism under a seeded fault plan --- *)

let test_udp_retry_determinism () =
  (* two executions of the same workload with identically seeded plans
     must report byte-identical stats and virtual clocks: the retry
     machinery runs on the engine, never on Unix.gettimeofday *)
  let run_once () =
    let server = Oncrpc.Server.create () in
    add_service server;
    let udp = Oncrpc.Udp.serve server ~port:0 in
    let engine = Simnet.Engine.create () in
    let fault = Simnet.Fault.make (Simnet.Fault.drops ~seed:7 0.4) in
    let client =
      Oncrpc.Udp.connect ~timeout_s:0.05 ~retries:8 ~fault ~engine
        ~host:"127.0.0.1" ~port:(Oncrpc.Udp.port udp) ~prog:300000 ~vers:1 ()
    in
    for i = 1 to 12 do
      let s =
        Oncrpc.Udp.call client ~proc:1
          (fun enc -> E.int enc i; E.int enc 1)
          D.int
      in
      check Alcotest.int "sum under faults" (i + 1) s
    done;
    let stats = Format.asprintf "%a" Oncrpc.Udp.pp_stats
        (Oncrpc.Udp.stats client) in
    let clock = Simnet.Engine.now engine in
    Oncrpc.Udp.close_client client;
    Oncrpc.Udp.shutdown udp;
    (stats, clock)
  in
  let stats_a, clock_a = run_once () in
  let stats_b, clock_b = run_once () in
  check Alcotest.string "stats byte-identical" stats_a stats_b;
  check Alcotest.int64 "virtual clocks identical" clock_a clock_b;
  (* the plan at 40% loss over 12 calls certainly suppressed something,
     so the determinism above exercised the virtual-time retry path *)
  check Alcotest.bool "plan injected losses" true
    (String.length stats_a > 0 && clock_a > 0L)

(* --- portmapper --- *)

let test_portmap_registry () =
  let pm = Oncrpc.Portmap.create () in
  let m =
    { Oncrpc.Portmap.prog = 99; vers = 1; prot = Oncrpc.Portmap.prot_tcp;
      port = 5000 }
  in
  check Alcotest.bool "set" true (Oncrpc.Portmap.set pm m);
  check Alcotest.bool "set dup" false (Oncrpc.Portmap.set pm m);
  check Alcotest.int "getport" 5000
    (Oncrpc.Portmap.getport pm ~prog:99 ~vers:1 ~prot:Oncrpc.Portmap.prot_tcp);
  check Alcotest.int "getport miss" 0
    (Oncrpc.Portmap.getport pm ~prog:99 ~vers:2 ~prot:Oncrpc.Portmap.prot_tcp);
  check Alcotest.bool "unset" true (Oncrpc.Portmap.unset pm ~prog:99 ~vers:1);
  check Alcotest.bool "unset again" false (Oncrpc.Portmap.unset pm ~prog:99 ~vers:1)

let test_portmap_rpc () =
  let pm = Oncrpc.Portmap.create () in
  ignore
    (Oncrpc.Portmap.set pm
       { Oncrpc.Portmap.prog = 77; vers = 3; prot = Oncrpc.Portmap.prot_tcp;
         port = 1234 });
  let server = Oncrpc.Server.create () in
  Oncrpc.Portmap.attach pm server;
  let client = make_loopback_client ~prog:Oncrpc.Portmap.program ~vers:2 server in
  let port =
    Oncrpc.Portmap.remote_getport client ~prog:77 ~vers:3
      ~prot:Oncrpc.Portmap.prot_tcp
  in
  check Alcotest.int "remote getport" 1234 port

let suite =
  [
    Alcotest.test_case "fragment header roundtrip" `Quick test_header_roundtrip;
    Alcotest.test_case "single-fragment wire" `Quick test_single_fragment_wire;
    Alcotest.test_case "multi-fragment wire" `Quick test_multi_fragment_wire;
    Alcotest.test_case "empty record" `Quick test_empty_record;
    Alcotest.test_case "fragment reassembly" `Quick test_fragment_reassembly;
    Alcotest.test_case "max record size" `Quick test_max_record_size;
    Alcotest.test_case "clean EOF" `Quick test_read_opt_clean_eof;
    Alcotest.test_case "writev wire identity cases" `Quick
      test_writev_wire_identity_cases;
    Alcotest.test_case "writev zero-copy tx" `Quick test_writev_zero_copy_tx;
    Alcotest.test_case "pool reuse after release" `Quick
      test_pool_reuse_after_release;
    Alcotest.test_case "pool double release safe" `Quick
      test_pool_double_release_safe;
    Alcotest.test_case "pool oversized bypass" `Quick test_pool_oversized_bypass;
    Alcotest.test_case "read recycles staging buffers" `Quick
      test_read_recycles_staging_buffers;
    Alcotest.test_case "call header roundtrip" `Quick test_call_roundtrip;
    Alcotest.test_case "reply roundtrips" `Quick test_reply_roundtrips;
    Alcotest.test_case "AUTH_SYS roundtrip" `Quick test_auth_sys_roundtrip;
    Alcotest.test_case "auth body limit" `Quick test_auth_body_limit;
    Alcotest.test_case "client/server basic" `Quick test_client_server_basic;
    Alcotest.test_case "large payload (multi-fragment)" `Quick
      test_client_server_large_payload;
    Alcotest.test_case "protocol error replies" `Quick test_error_replies;
    Alcotest.test_case "auth rejection" `Quick test_auth_rejection;
    Alcotest.test_case "server observer" `Quick test_observer;
    Alcotest.test_case "threaded pipe" `Quick test_threaded_pipe;
    Alcotest.test_case "TCP end-to-end" `Quick test_tcp_end_to_end;
    Alcotest.test_case "concurrent client" `Quick test_concurrent_client;
    Alcotest.test_case "concurrent close fails pending" `Quick
      test_concurrent_close_fails_pending;
    Alcotest.test_case "UDP end-to-end" `Quick test_udp_end_to_end;
    Alcotest.test_case "UDP error reply" `Quick test_udp_error_reply;
    Alcotest.test_case "UDP timeout" `Quick test_udp_timeout;
    Alcotest.test_case "UDP size limit" `Quick test_udp_size_limit;
    Alcotest.test_case "typed resolution error" `Quick
      test_tcp_connect_resolution_error;
    Alcotest.test_case "typed dispatch protocol errors" `Quick
      test_dispatch_reply_typed_error;
    Alcotest.test_case "dup cache keyed by tenant ident" `Quick
      test_dup_cache_tenant_ident;
    Alcotest.test_case "UDP retry determinism (seeded faults)" `Quick
      test_udp_retry_determinism;
    Alcotest.test_case "portmap registry" `Quick test_portmap_registry;
    Alcotest.test_case "portmap over RPC" `Quick test_portmap_rpc;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_record_roundtrip; prop_writev_wire_identity;
        prop_writev_roundtrip_via_read;
      ]
