(* Unit and property tests for the XDR (RFC 4506) codec. *)

module E = Xdr.Encode
module D = Xdr.Decode
module T = Xdr.Types

let check = Alcotest.check
let hex s = String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let encode f =
  let enc = E.create () in
  f enc;
  E.to_string enc

let roundtrip enc_f dec_f v =
  let s = encode (fun e -> enc_f e v) in
  let dec = D.of_string s in
  let v' = dec_f dec in
  D.finish dec;
  v'

let expect_error expected f =
  match f () with
  | _ -> Alcotest.failf "expected Xdr error %s" (T.error_to_string expected)
  | exception T.Error e ->
      check Alcotest.string "error" (T.error_to_string expected)
        (T.error_to_string e)

(* --- wire-format golden vectors (values from RFC 4506 examples) --- *)

let test_int_wire () =
  check Alcotest.string "int 1" "00000001" (hex (encode (fun e -> E.int e 1)));
  check Alcotest.string "int -1" "ffffffff" (hex (encode (fun e -> E.int e (-1))));
  check Alcotest.string "int min" "80000000"
    (hex (encode (fun e -> E.int e (-0x80000000))));
  check Alcotest.string "hyper" "00000000deadbeef"
    (hex (encode (fun e -> E.int64 e 0xdeadbeefL)))

let test_string_wire () =
  (* "sillyprog" from RFC 4506 §7: 9 chars + 3 pad bytes. *)
  check Alcotest.string "string"
    "0000000973696c6c7970726f67000000"
    (hex (encode (fun e -> E.string e "sillyprog")))

let test_bool_wire () =
  check Alcotest.string "true" "00000001" (hex (encode (fun e -> E.bool e true)));
  check Alcotest.string "false" "00000000" (hex (encode (fun e -> E.bool e false)))

let test_float_wire () =
  check Alcotest.string "1.0f" "3f800000"
    (hex (encode (fun e -> E.float32 e 1.0)));
  check Alcotest.string "1.0d" "3ff0000000000000"
    (hex (encode (fun e -> E.float64 e 1.0)))

let test_opaque_padding () =
  let s = encode (fun e -> E.opaque e (Bytes.of_string "ab")) in
  check Alcotest.int "length" 8 (String.length s);
  check Alcotest.string "wire" "0000000261620000" (hex s)

(* --- roundtrips --- *)

let test_roundtrip_basic () =
  check Alcotest.int "int" (-123456) (roundtrip E.int D.int (-123456));
  check Alcotest.int "uint" 0xfffffffe (roundtrip E.uint D.uint 0xfffffffe);
  check Alcotest.int32 "int32" (-1l) (roundtrip E.int32 D.int32 (-1l));
  check Alcotest.int64 "int64" Int64.min_int
    (roundtrip E.int64 D.int64 Int64.min_int);
  check Alcotest.bool "bool" true (roundtrip E.bool D.bool true);
  check (Alcotest.float 0.0) "f64" 3.14159 (roundtrip E.float64 D.float64 3.14159);
  check Alcotest.string "string" "hello" (roundtrip E.string D.string "hello");
  check Alcotest.string "empty string" "" (roundtrip E.string D.string "")

let test_roundtrip_composites () =
  let enc_arr e v = E.array e E.int v and dec_arr d = D.array d D.int in
  check (Alcotest.array Alcotest.int) "array" [| 1; 2; 3 |]
    (roundtrip enc_arr dec_arr [| 1; 2; 3 |]);
  let enc_opt e v = E.option e E.string v
  and dec_opt d = D.option d D.string in
  check (Alcotest.option Alcotest.string) "some" (Some "x")
    (roundtrip enc_opt dec_opt (Some "x"));
  check (Alcotest.option Alcotest.string) "none" None
    (roundtrip enc_opt dec_opt None);
  let enc_l e v = E.list e E.int64 v and dec_l d = D.list d D.int64 in
  check (Alcotest.list Alcotest.int64) "list" [ 1L; 2L ]
    (roundtrip enc_l dec_l [ 1L; 2L ])

let test_fixed_array () =
  let s = encode (fun e -> E.array_fixed e E.int [| 7; 8 |]) in
  check Alcotest.int "no count prefix" 8 (String.length s);
  let dec = D.of_string s in
  let a = D.array_fixed dec D.int 2 in
  D.finish dec;
  check (Alcotest.array Alcotest.int) "fixed" [| 7; 8 |] a

(* --- error paths --- *)

let test_truncated () =
  expect_error (T.Truncated { wanted = 4; available = 2 }) (fun () ->
      D.int (D.of_string "ab"))

let test_string_max () =
  expect_error (T.Size_exceeded { limit = 2; requested = 5 }) (fun () ->
      E.string ~max:2 (E.create ()) "hello");
  let s = encode (fun e -> E.string e "hello") in
  expect_error (T.Size_exceeded { limit = 2; requested = 5 }) (fun () ->
      D.string ~max:2 (D.of_string s))

let test_adversarial_length () =
  (* A declared length of 2^31-ish must fail before allocating. *)
  let s = encode (fun e -> E.uint32 e 0x7ffffff0l) in
  expect_error
    (T.Truncated { wanted = 0x7ffffff0; available = 0 })
    (fun () -> D.opaque (D.of_string s))

let test_invalid_bool () =
  let s = encode (fun e -> E.int e 2) in
  expect_error (T.Invalid_bool 2l) (fun () -> D.bool (D.of_string s))

let test_nonzero_padding () =
  (* length 1, data 'a', then non-zero pad *)
  let s = "\x00\x00\x00\x01a\x01\x00\x00" in
  expect_error T.Invalid_padding (fun () -> D.string (D.of_string s))

let test_trailing () =
  let s = encode (fun e -> E.int e 1; E.int e 2) in
  let dec = D.of_string s in
  let _ = D.int dec in
  expect_error (T.Trailing_bytes 4) (fun () -> D.finish dec)

let test_int_range () =
  expect_error
    (T.Size_exceeded { limit = 0x7fffffff; requested = 0x80000000 })
    (fun () -> E.int (E.create ()) 0x80000000);
  expect_error (T.Negative_size (-1)) (fun () -> E.uint (E.create ()) (-1))

let test_enum_check () =
  let s = encode (fun e -> E.enum e 5) in
  check Alcotest.int "valid enum" 5
    (D.enum (D.of_string s) ~check:(fun v -> v = 5));
  expect_error (T.Invalid_enum 5l) (fun () ->
      D.enum (D.of_string s) ~check:(fun v -> v = 4))

let test_alignment_invariant () =
  (* every encoder output is 4-aligned *)
  List.iter
    (fun f -> check Alcotest.int "aligned" 0 (String.length (encode f) mod 4))
    [
      (fun e -> E.string e "a");
      (fun e -> E.string e "abc");
      (fun e -> E.opaque e (Bytes.of_string "abcde"));
      (fun e -> E.opaque_fixed e (Bytes.of_string "xyz"));
    ]

let test_opaque_sub () =
  let b = Bytes.of_string "0123456789" in
  let s = encode (fun e -> E.opaque_sub e b 2 5) in
  let dec = D.of_string s in
  check Alcotest.string "sub" "23456" (Bytes.to_string (D.opaque dec));
  D.finish dec

(* --- qcheck properties --- *)

let gen_payload = QCheck.string_of_size (QCheck.Gen.int_range 0 2048)

let prop_string_roundtrip =
  QCheck.Test.make ~count:300 ~name:"xdr string roundtrip" gen_payload
    (fun s -> roundtrip E.string D.string s = s)

let prop_opaque_roundtrip =
  QCheck.Test.make ~count:300 ~name:"xdr opaque roundtrip" gen_payload
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal (roundtrip (fun e v -> E.opaque e v) D.opaque b) b)

let prop_int32_roundtrip =
  QCheck.Test.make ~count:500 ~name:"xdr int32 roundtrip" QCheck.int32
    (fun v -> roundtrip E.int32 D.int32 v = v)

let prop_int64_roundtrip =
  QCheck.Test.make ~count:500 ~name:"xdr int64 roundtrip" QCheck.int64
    (fun v -> roundtrip E.int64 D.int64 v = v)

let prop_float64_roundtrip =
  QCheck.Test.make ~count:300 ~name:"xdr float64 roundtrip" QCheck.float
    (fun v ->
      let v' = roundtrip E.float64 D.float64 v in
      v' = v || (Float.is_nan v && Float.is_nan v'))

let prop_int_list_roundtrip =
  QCheck.Test.make ~count:200 ~name:"xdr int list roundtrip"
    QCheck.(list int32)
    (fun l ->
      roundtrip (fun e v -> E.list e E.int32 v) (fun d -> D.list d D.int32) l
      = l)

(* --- scatter-gather encoder and no-copy decode views --- *)

let test_encode_large_opaque_zero_copy () =
  let n = E.zero_copy_threshold in
  let payload = Bytes.init n (fun i -> Char.chr (i land 0xff)) in
  let enc = E.create () in
  E.int enc 7;
  E.opaque enc payload;
  E.int enc 9;
  let iov = E.to_iovec enc in
  check Alcotest.bool "payload travels as an aliased slice" true
    (List.exists
       (fun s ->
         s.Xdr.Iovec.base == Bytes.unsafe_to_string payload
         && s.Xdr.Iovec.len = n)
       iov);
  (* flattening the iovec must reproduce the classic contiguous wire
     format, built here independently by hand *)
  let b = Buffer.create (n + 16) in
  Buffer.add_int32_be b 7l;
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_bytes b payload;
  Buffer.add_int32_be b 9l;
  check Alcotest.string "wire identical" (Buffer.contents b)
    (Xdr.Iovec.concat iov)

let test_encode_small_opaque_copied () =
  (* below the threshold an iovec entry costs more than a copy: the bytes
     must be folded into the surrounding word stream, one slice total *)
  let payload = Bytes.make (E.zero_copy_threshold - 4) 'q' in
  let enc = E.create () in
  E.int enc 1;
  E.opaque enc payload;
  E.int enc 2;
  match E.to_iovec enc with
  | [ _ ] -> ()
  | iov -> Alcotest.failf "expected 1 slice, got %d" (List.length iov)

let test_encoder_append_splices_slices () =
  let payload = Bytes.make (2 * E.zero_copy_threshold) 'w' in
  let child = E.create () in
  E.int child 3;
  E.opaque child payload;
  let parent = E.create () in
  E.int parent 99;
  E.append parent child;
  E.int parent 100;
  let iov = E.to_iovec parent in
  check Alcotest.bool "child's payload slice survives the splice" true
    (List.exists
       (fun s -> s.Xdr.Iovec.base == Bytes.unsafe_to_string payload)
       iov);
  let dec = D.of_string (Xdr.Iovec.concat iov) in
  check Alcotest.int "head" 99 (D.int dec);
  check Alcotest.int "child head" 3 (D.int dec);
  check Alcotest.bool "child payload" true (D.opaque dec = payload);
  check Alcotest.int "tail" 100 (D.int dec);
  D.finish dec

let test_decode_opaque_slice_no_copy () =
  let wire = encode (fun e -> E.string e "helloworld"; E.int e 5) in
  let dec = D.of_string wire in
  let s = D.opaque_slice dec in
  check Alcotest.bool "view aliases the record buffer" true
    (s.Xdr.Iovec.base == wire);
  check Alcotest.int "len" 10 s.Xdr.Iovec.len;
  check Alcotest.string "contents" "helloworld" (Xdr.Iovec.slice_to_string s);
  check Alcotest.int "padding consumed" 5 (D.int dec);
  D.finish dec

let prop_sliced_encode_identity =
  (* for payloads straddling the zero-copy threshold, the scatter-gather
     encoder's flattened output must equal the RFC 4506 contiguous
     encoding, built independently by hand *)
  QCheck.Test.make ~count:200 ~name:"sliced encoder output is wire-identical"
    QCheck.(string_of_size (Gen.int_range 0 4096))
    (fun payload ->
      let enc = E.create () in
      E.int enc 1;
      E.opaque enc (Bytes.of_string payload);
      E.string enc "tail";
      let b = Buffer.create 64 in
      Buffer.add_int32_be b 1l;
      Buffer.add_int32_be b (Int32.of_int (String.length payload));
      Buffer.add_string b payload;
      for _ = 1 to (4 - (String.length payload mod 4)) mod 4 do
        Buffer.add_char b '\000'
      done;
      Buffer.add_int32_be b 4l;
      Buffer.add_string b "tail";
      Xdr.Iovec.concat (E.to_iovec enc) = Buffer.contents b)

let prop_opaque_slice_roundtrip =
  QCheck.Test.make ~count:200 ~name:"opaque_slice decodes what opaque encoded"
    QCheck.(string_of_size (Gen.int_range 0 2048))
    (fun payload ->
      let wire = encode (fun e -> E.opaque e (Bytes.of_string payload)) in
      let dec = D.of_string wire in
      let s = D.opaque_slice dec in
      D.finish dec;
      Xdr.Iovec.slice_to_string s = payload)

let prop_concat_independent =
  (* encoding a followed by b equals encode a ^ encode b *)
  QCheck.Test.make ~count:200 ~name:"xdr encoding is concatenative"
    QCheck.(pair gen_payload gen_payload)
    (fun (a, b) ->
      encode (fun e -> E.string e a; E.string e b)
      = encode (fun e -> E.string e a) ^ encode (fun e -> E.string e b))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_string_roundtrip; prop_opaque_roundtrip; prop_int32_roundtrip;
      prop_int64_roundtrip; prop_float64_roundtrip; prop_int_list_roundtrip;
      prop_sliced_encode_identity; prop_opaque_slice_roundtrip;
      prop_concat_independent;
    ]

let suite =
  [
    Alcotest.test_case "int wire format" `Quick test_int_wire;
    Alcotest.test_case "string wire format" `Quick test_string_wire;
    Alcotest.test_case "bool wire format" `Quick test_bool_wire;
    Alcotest.test_case "float wire format" `Quick test_float_wire;
    Alcotest.test_case "opaque padding" `Quick test_opaque_padding;
    Alcotest.test_case "roundtrip basics" `Quick test_roundtrip_basic;
    Alcotest.test_case "roundtrip composites" `Quick test_roundtrip_composites;
    Alcotest.test_case "fixed arrays" `Quick test_fixed_array;
    Alcotest.test_case "truncated input" `Quick test_truncated;
    Alcotest.test_case "string max bound" `Quick test_string_max;
    Alcotest.test_case "adversarial length" `Quick test_adversarial_length;
    Alcotest.test_case "invalid bool" `Quick test_invalid_bool;
    Alcotest.test_case "non-zero padding" `Quick test_nonzero_padding;
    Alcotest.test_case "trailing bytes" `Quick test_trailing;
    Alcotest.test_case "int range checks" `Quick test_int_range;
    Alcotest.test_case "enum check" `Quick test_enum_check;
    Alcotest.test_case "alignment invariant" `Quick test_alignment_invariant;
    Alcotest.test_case "opaque_sub" `Quick test_opaque_sub;
    Alcotest.test_case "large opaque is zero-copy" `Quick
      test_encode_large_opaque_zero_copy;
    Alcotest.test_case "small opaque is folded" `Quick
      test_encode_small_opaque_copied;
    Alcotest.test_case "encoder append splices slices" `Quick
      test_encoder_append_splices_slices;
    Alcotest.test_case "opaque_slice is a no-copy view" `Quick
      test_decode_opaque_slice_no_copy;
  ]
  @ qcheck_tests
