type t = {
  tso : bool;
  tx_checksum : bool;
  rx_checksum : bool;
  scatter_gather : bool;
  mrg_rxbuf : bool;
  gro : bool;
  (* RPC engine feature bits (RPCAcc direction): a NIC-adjacent offload
     block that understands ONC RPC record marking. Off in every stock
     profile — only an RPC-aware device offers them, and only guests with
     the matching driver shim acknowledge them. *)
  rpc_framing : bool;
  rpc_parse : bool;
  rpc_steer : bool;
  rpc_doorbell : bool;
}

let all =
  { tso = true; tx_checksum = true; rx_checksum = true; scatter_gather = true;
    mrg_rxbuf = true; gro = true; rpc_framing = false; rpc_parse = false;
    rpc_steer = false; rpc_doorbell = false }

let none =
  { tso = false; tx_checksum = false; rx_checksum = false;
    scatter_gather = false; mrg_rxbuf = false; gro = false;
    rpc_framing = false; rpc_parse = false; rpc_steer = false;
    rpc_doorbell = false }

let disable_bulk t =
  { t with tso = false; tx_checksum = false; scatter_gather = false }

let checksum_only =
  { none with tx_checksum = true; rx_checksum = true; mrg_rxbuf = true }

let rpc_all t =
  { t with
    rpc_framing = true; rpc_parse = true; rpc_steer = true;
    rpc_doorbell = true }

let rpc_none t =
  { t with
    rpc_framing = false; rpc_parse = false; rpc_steer = false;
    rpc_doorbell = false }

let any_rpc t = t.rpc_framing || t.rpc_parse || t.rpc_steer || t.rpc_doorbell

(* virtio feature negotiation: the device offers a feature set, the guest
   driver acknowledges the subset it implements; only bits present on both
   sides are negotiated (virtio 1.1 §2.2). *)
let negotiate ~device ~guest =
  {
    tso = device.tso && guest.tso;
    tx_checksum = device.tx_checksum && guest.tx_checksum;
    rx_checksum = device.rx_checksum && guest.rx_checksum;
    scatter_gather = device.scatter_gather && guest.scatter_gather;
    mrg_rxbuf = device.mrg_rxbuf && guest.mrg_rxbuf;
    gro = device.gro && guest.gro;
    rpc_framing = device.rpc_framing && guest.rpc_framing;
    rpc_parse = device.rpc_parse && guest.rpc_parse;
    rpc_steer = device.rpc_steer && guest.rpc_steer;
    rpc_doorbell = device.rpc_doorbell && guest.rpc_doorbell;
  }

let pp ppf t =
  let flag name v = if v then Some name else None in
  let on =
    List.filter_map Fun.id
      [
        flag "tso" t.tso; flag "tx-csum" t.tx_checksum;
        flag "rx-csum" t.rx_checksum; flag "sg" t.scatter_gather;
        flag "mrg-rxbuf" t.mrg_rxbuf; flag "gro" t.gro;
        flag "rpc-frame" t.rpc_framing; flag "rpc-parse" t.rpc_parse;
        flag "rpc-steer" t.rpc_steer; flag "rpc-bell" t.rpc_doorbell;
      ]
  in
  Format.fprintf ppf "[%s]" (String.concat " " on)
