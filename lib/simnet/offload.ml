type t = {
  tso : bool;
  tx_checksum : bool;
  rx_checksum : bool;
  scatter_gather : bool;
  mrg_rxbuf : bool;
  gro : bool;
}

let all =
  { tso = true; tx_checksum = true; rx_checksum = true; scatter_gather = true;
    mrg_rxbuf = true; gro = true }

let none =
  { tso = false; tx_checksum = false; rx_checksum = false;
    scatter_gather = false; mrg_rxbuf = false; gro = false }

let disable_bulk t =
  { t with tso = false; tx_checksum = false; scatter_gather = false }

let checksum_only =
  { none with tx_checksum = true; rx_checksum = true; mrg_rxbuf = true }

(* virtio feature negotiation: the device offers a feature set, the guest
   driver acknowledges the subset it implements; only bits present on both
   sides are negotiated (virtio 1.1 §2.2). *)
let negotiate ~device ~guest =
  {
    tso = device.tso && guest.tso;
    tx_checksum = device.tx_checksum && guest.tx_checksum;
    rx_checksum = device.rx_checksum && guest.rx_checksum;
    scatter_gather = device.scatter_gather && guest.scatter_gather;
    mrg_rxbuf = device.mrg_rxbuf && guest.mrg_rxbuf;
    gro = device.gro && guest.gro;
  }

let pp ppf t =
  let flag name v = if v then Some name else None in
  let on =
    List.filter_map Fun.id
      [
        flag "tso" t.tso; flag "tx-csum" t.tx_checksum;
        flag "rx-csum" t.rx_checksum; flag "sg" t.scatter_gather;
        flag "mrg-rxbuf" t.mrg_rxbuf; flag "gro" t.gro;
      ]
  in
  Format.fprintf ppf "[%s]" (String.concat " " on)
