(** Seeded, declarative fault plans for every simulated transport.

    A {!plan} describes — ahead of time and in one vocabulary — what the
    network is allowed to do to a workload: drop, duplicate, delay or
    corrupt individual records, black-hole traffic during virtual-time
    partition windows, and crash (then restart) the server after a given
    number of records. {!Unikernel.Simchannel} consumes plans at RPC
    record granularity, {!Tcpstack.Medium} at TCP segment granularity and
    {!Oncrpc.Udp} at datagram granularity, so one plan exercises the same
    scenario at any layer of the stack.

    Determinism: random-rate rules draw from a PRNG seeded by the plan, and
    all windows are in virtual time, so a (plan, workload) pair produces a
    bit-identical run every time — the property the recovery tests and the
    [benchctl faults] ablation rely on. *)

type decision =
  | Pass
  | Drop  (** unit vanishes in flight *)
  | Duplicate  (** delivered twice *)
  | Corrupt
      (** payload bit-flip; transports model the receiver's integrity check
          discarding it, so observable behaviour is loss, not garbage *)
  | Delay of Time.t  (** delivered after an extra delay *)

type crash = {
  after_records : int;
      (** fire once the plan has decided this many records (so the
          [after_records]-th record and everything behind it is lost) *)
  down_for : Time.t;  (** virtual time before a restart accepts connections *)
}

type plan = {
  seed : int;  (** PRNG seed for the [*_rate] rules *)
  drop_rate : float;
  duplicate_rate : float;
  corrupt_rate : float;
  delay_rate : float;
  delay : Time.t;  (** extra latency applied by [Delay] decisions *)
  drop_nth : int list;  (** 0-based record indices to drop, exactly *)
  duplicate_nth : int list;
  corrupt_nth : int list;
  delay_nth : int list;
  partitions : (Time.t * Time.t) list;
      (** half-open virtual-time windows [\[start, stop)] during which
          everything is dropped *)
  crashes : crash list;
}

val none : plan
(** No faults; [make none] decides [Pass] forever. *)

val drops : ?seed:int -> float -> plan
(** [drops rate] is [none] with a uniform drop probability. *)

type stats = {
  records : int;  (** decisions taken *)
  dropped : int;  (** includes partition-window and corrupt losses *)
  duplicated : int;
  corrupted : int;
  delayed : int;
  crashes_fired : int;
}

val injected : stats -> int
(** Total non-[Pass] decisions. *)

type t

val make : plan -> t
(** Instantiate a plan: fresh counters, PRNG reset to [plan.seed], crash
    schedule armed. Two [t]s made from the same plan behave identically. *)

val plan : t -> plan

val decide : ?now:Time.t -> t -> decision
(** Decide the fate of the next record. Precedence: partition window (at
    [now], default [Time.zero]) → exact [*_nth] rules → seeded [*_rate]
    draws. When any rate is positive, exactly one PRNG draw is consumed on
    every call — including calls forced by a window or an exact rule — so
    exact rules never shift the random sequence of the rate rules. *)

val crash_due : t -> Time.t option
(** [Some down_for] when a scheduled crash should fire given the records
    decided so far; each crash fires at most once. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
