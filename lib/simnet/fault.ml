type decision = Pass | Drop | Duplicate | Corrupt | Delay of Time.t

type crash = { after_records : int; down_for : Time.t }

type plan = {
  seed : int;
  drop_rate : float;
  duplicate_rate : float;
  corrupt_rate : float;
  delay_rate : float;
  delay : Time.t;
  drop_nth : int list;
  duplicate_nth : int list;
  corrupt_nth : int list;
  delay_nth : int list;
  partitions : (Time.t * Time.t) list;
  crashes : crash list;
}

let none =
  {
    seed = 0;
    drop_rate = 0.0;
    duplicate_rate = 0.0;
    corrupt_rate = 0.0;
    delay_rate = 0.0;
    delay = Time.us 100;
    drop_nth = [];
    duplicate_nth = [];
    corrupt_nth = [];
    delay_nth = [];
    partitions = [];
    crashes = [];
  }

let drops ?(seed = 1) rate = { none with seed; drop_rate = rate }

type stats = {
  records : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  delayed : int;
  crashes_fired : int;
}

let injected s = s.dropped + s.duplicated + s.corrupted + s.delayed

let empty_stats =
  { records = 0; dropped = 0; duplicated = 0; corrupted = 0; delayed = 0;
    crashes_fired = 0 }

type t = {
  plan : plan;
  rng : Random.State.t;
  has_rates : bool;
  mutable next : int;  (* 0-based index of the next record to decide *)
  mutable remaining_crashes : crash list;
  mutable stats : stats;
}

let validate_rate name r =
  if r < 0.0 || r > 1.0 || Float.is_nan r then
    invalid_arg (Printf.sprintf "Fault.make: %s out of [0, 1]" name)

let make plan =
  validate_rate "drop_rate" plan.drop_rate;
  validate_rate "duplicate_rate" plan.duplicate_rate;
  validate_rate "corrupt_rate" plan.corrupt_rate;
  validate_rate "delay_rate" plan.delay_rate;
  let crashes =
    List.sort (fun a b -> compare a.after_records b.after_records) plan.crashes
  in
  {
    plan;
    rng = Random.State.make [| plan.seed; 0x6661756c |];
    has_rates =
      plan.drop_rate > 0.0 || plan.duplicate_rate > 0.0
      || plan.corrupt_rate > 0.0 || plan.delay_rate > 0.0;
    next = 0;
    remaining_crashes = crashes;
    stats = empty_stats;
  }

let plan t = t.plan

let in_partition plan now =
  List.exists
    (fun (a, b) -> Time.compare now a >= 0 && Time.compare now b < 0)
    plan.partitions

let count t d =
  let s = t.stats in
  t.stats <-
    (match d with
    | Pass -> s
    | Drop -> { s with dropped = s.dropped + 1 }
    | Duplicate -> { s with duplicated = s.duplicated + 1 }
    | Corrupt -> { s with corrupted = s.corrupted + 1 }
    | Delay _ -> { s with delayed = s.delayed + 1 });
  d

let decide ?(now = Time.zero) t =
  let n = t.next in
  t.next <- n + 1;
  t.stats <- { t.stats with records = t.stats.records + 1 };
  (* one draw per record whenever rates are in play, independent of which
     rule ends up deciding — keeps the random sequence stable under nth
     rules and partition windows *)
  let u = if t.has_rates then Random.State.float t.rng 1.0 else 1.0 in
  let p = t.plan in
  if in_partition p now then count t Drop
  else if List.mem n p.drop_nth then count t Drop
  else if List.mem n p.duplicate_nth then count t Duplicate
  else if List.mem n p.corrupt_nth then count t Corrupt
  else if List.mem n p.delay_nth then count t (Delay p.delay)
  else if u < p.drop_rate then count t Drop
  else if u < p.drop_rate +. p.duplicate_rate then count t Duplicate
  else if u < p.drop_rate +. p.duplicate_rate +. p.corrupt_rate then
    count t Corrupt
  else if
    u < p.drop_rate +. p.duplicate_rate +. p.corrupt_rate +. p.delay_rate
  then count t (Delay p.delay)
  else count t Pass

let crash_due t =
  match t.remaining_crashes with
  | { after_records; down_for } :: rest when t.next >= after_records ->
      t.remaining_crashes <- rest;
      t.stats <- { t.stats with crashes_fired = t.stats.crashes_fired + 1 };
      Some down_for
  | _ -> None

let stats t = t.stats

let pp_stats ppf s =
  Format.fprintf ppf
    "%d records: %d dropped, %d duplicated, %d corrupted, %d delayed, %d \
     crashes"
    s.records s.dropped s.duplicated s.corrupted s.delayed s.crashes_fired
