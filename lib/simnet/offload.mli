(** NIC / virtio-net offload feature sets.

    These are the hardware-offload capabilities §4.2 of the paper
    identifies as the decisive difference between the Linux VM and the
    unikernels: TCP segmentation offload, transmit/receive checksum offload
    (VIRTIO_NET_F_CSUM / VIRTIO_NET_F_GUEST_CSUM), scatter-gather transmit
    and mergeable receive buffers (VIRTIO_NET_F_MRG_RXBUF).

    The [rpc_*] bits extend the model in the RPCAcc direction: an RPC-aware
    offload engine next to the NIC that understands ONC RPC record marking.
    They are off in every stock feature set ([all]/[none]/[checksum_only])
    so existing negotiations are unchanged — an RPC-capable device opts in
    with {!rpc_all}, and each guest profile acknowledges the subset its
    driver shim implements. *)

type t = {
  tso : bool;  (** TCP segmentation offload: guest hands over 64 KiB frames *)
  tx_checksum : bool;  (** checksum computed by NIC/host on transmit *)
  rx_checksum : bool;  (** checksum verified by NIC/host on receive *)
  scatter_gather : bool;  (** no coalescing copy before transmit *)
  mrg_rxbuf : bool;  (** mergeable receive buffers: fewer, larger rx batches *)
  gro : bool;
      (** receive coalescing (GRO/LRO): the stack traverses one aggregate
          instead of every wire packet — present in Linux guests, absent in
          the unikernel stacks *)
  rpc_framing : bool;
      (** device performs record-mark framing/reassembly: the host receives
          whole RPC records, not a byte stream *)
  rpc_parse : bool;
      (** device parses the ONC RPC call header (xid, prog/vers/proc) and
          hands the host a pre-parsed descriptor; requires [rpc_framing] *)
  rpc_steer : bool;
      (** device steers parsed calls into per-(proc, tenant) dispatch
          queues so the host skips routing; requires [rpc_parse] *)
  rpc_doorbell : bool;
      (** doorbell batching: the guest coalesces N small call records into
          one wire record / one submit, rung by a flush policy *)
}

val all : t
(** Everything on — a ConnectX-5 under native Linux. RPC bits stay off:
    a stock NIC has no RPC engine. *)

val none : t

val disable_bulk : t -> t
(** Turn off TSO, tx checksum and scatter-gather — the §4.2 ablation that
    drops the Linux VM to ≈924 MiB/s host-to-device. *)

val checksum_only : t
(** Checksum offloads and mergeable rx buffers only — the feature set the
    paper's RustyHermit work implemented (no TSO, no GRO, no SG). *)

val rpc_all : t -> t
(** Offer/acknowledge every RPC-engine feature on top of [t]. *)

val rpc_none : t -> t
(** Strip the RPC-engine features from [t]. *)

val any_rpc : t -> bool
(** True when at least one RPC-engine bit is set. *)

val negotiate : device:t -> guest:t -> t
(** virtio feature negotiation: the bitwise intersection of what the
    device offers and what the guest driver acknowledges (virtio 1.1
    §2.2). *)

val pp : Format.formatter -> t -> unit
