(** NIC / virtio-net offload feature sets.

    These are the hardware-offload capabilities §4.2 of the paper
    identifies as the decisive difference between the Linux VM and the
    unikernels: TCP segmentation offload, transmit/receive checksum offload
    (VIRTIO_NET_F_CSUM / VIRTIO_NET_F_GUEST_CSUM), scatter-gather transmit
    and mergeable receive buffers (VIRTIO_NET_F_MRG_RXBUF). *)

type t = {
  tso : bool;  (** TCP segmentation offload: guest hands over 64 KiB frames *)
  tx_checksum : bool;  (** checksum computed by NIC/host on transmit *)
  rx_checksum : bool;  (** checksum verified by NIC/host on receive *)
  scatter_gather : bool;  (** no coalescing copy before transmit *)
  mrg_rxbuf : bool;  (** mergeable receive buffers: fewer, larger rx batches *)
  gro : bool;
      (** receive coalescing (GRO/LRO): the stack traverses one aggregate
          instead of every wire packet — present in Linux guests, absent in
          the unikernel stacks *)
}

val all : t
(** Everything on — a ConnectX-5 under native Linux. *)

val none : t

val disable_bulk : t -> t
(** Turn off TSO, tx checksum and scatter-gather — the §4.2 ablation that
    drops the Linux VM to ≈924 MiB/s host-to-device. *)

val checksum_only : t
(** Checksum offloads and mergeable rx buffers only — the feature set the
    paper's RustyHermit work implemented (no TSO, no GRO, no SG). *)

val negotiate : device:t -> guest:t -> t
(** virtio feature negotiation: the bitwise intersection of what the
    device offers and what the guest driver acknowledges (virtio 1.1
    §2.2). *)

val pp : Format.formatter -> t -> unit
