type t = { mutable state : int64 }

let create ~seed =
  let seed64 = Int64.of_int seed in
  { state = (if Int64.equal seed64 0L then 0x9e3779b97f4a7c15L else seed64) }

(* Derive the [index]-th independent substream of [seed] without
   consuming any parent state: a splitmix64 finalizer over the
   (seed, index) pair. This is how sharded workloads give every tenant
   its own stream — the draw sequence of tenant i is a function of
   (seed, i) alone, never of how many other tenants were generated
   before it or on which shard or domain it landed. *)
let substream ~seed ~index =
  if index < 0 then invalid_arg "Random_variate.substream: negative index";
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  { state = (if Int64.equal z 0L then 0x9e3779b97f4a7c15L else z) }

(* xorshift64* *)
let next_u64 t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let uniform t =
  (* top 53 bits to a double in [0, 1) *)
  let bits = Int64.shift_right_logical (next_u64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let uniform_int t bound =
  if bound <= 0 then invalid_arg "Random_variate.uniform_int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1)
                  (Int64.of_int bound))

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Random_variate.exponential";
  let u = 1.0 -. uniform t (* in (0, 1] *) in
  -.mean *. Float.log u

let pareto t ~shape ~scale ~max =
  if shape <= 0.0 || scale <= 0.0 || max <= scale then
    invalid_arg "Random_variate.pareto";
  (* inverse CDF of the bounded Pareto *)
  let u = uniform t in
  let la = Float.pow scale shape and ha = Float.pow max shape in
  Float.pow
    (-.((u *. ha) -. (u *. la) -. ha) /. (ha *. la))
    (-1.0 /. shape)

let poisson_arrivals t ~mean_gap ~count =
  if count < 0 then invalid_arg "Random_variate.poisson_arrivals";
  let mean = Int64.to_float mean_gap in
  let rec build at n acc =
    if n = 0 then List.rev acc
    else begin
      let at = Time.add at (Time.of_float_ns (exponential t ~mean)) in
      build at (n - 1) (at :: acc)
    end
  in
  build Time.zero count []
