(** Deterministic random variates for workload generation.

    A small, explicitly-seeded xorshift64* generator with the variate
    transforms benchmark workloads need (uniform, exponential
    inter-arrivals for Poisson processes, bounded Pareto for heavy-tailed
    job sizes). Purely functional state threading is avoided on purpose —
    a generator is a mutable cursor — but everything is reproducible from
    the seed, keeping the benchmarks bit-deterministic. *)

type t

val create : seed:int -> t
(** Equal seeds yield equal streams; seed 0 is remapped internally. *)

val substream : seed:int -> index:int -> t
(** The [index]-th independent substream of [seed] (splitmix64-derived;
    [index >= 0]). A pure function of the pair, so per-key streams in a
    sharded workload do not depend on generation order, shard placement,
    or domain count. *)

val uniform : t -> float
(** In [0, 1). *)

val uniform_int : t -> int -> int
(** In [0, bound); [bound > 0]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean ([mean > 0]) — the
    inter-arrival time of a Poisson process. *)

val pareto : t -> shape:float -> scale:float -> max:float -> float
(** Bounded Pareto: heavy-tailed in [scale, max]. [shape > 0],
    [0 < scale < max]. *)

val poisson_arrivals : t -> mean_gap:Time.t -> count:int -> Time.t list
(** [count] absolute arrival instants starting from time zero with
    exponential gaps of the given mean. Sorted ascending. *)
