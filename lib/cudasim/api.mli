(** The CUDA runtime + driver API surface Cricket forwards.

    Each function mirrors one RPC procedure of the Cricket protocol and is
    what the Cricket server executes against the simulated GPUs. Results
    are [(value, Error.t)]-style — never exceptions — so the server can
    ship the error code back verbatim, as the real Cricket does.

    Time accounting: every call charges a fixed driver-dispatch cost;
    synchronous memcpys charge PCIe transfer time after draining the
    device; kernel launches are asynchronous (enqueue only), exactly like
    CUDA's default-stream semantics for small transfers vs. launches. *)

module Time = Simnet.Time

type device_properties = {
  name : string;
  total_global_mem : int64;
  multi_processor_count : int;
  clock_rate_khz : int;
  compute_major : int;
  compute_minor : int;
  memory_bandwidth : int64;  (** bytes/s *)
}

(** {1 Device management} *)

val get_device_count : Context.t -> int
val set_device : Context.t -> int -> Error.t
val get_device : Context.t -> int
val get_device_properties : Context.t -> int -> (device_properties, Error.t) result
val device_synchronize : Context.t -> Error.t
val device_reset : Context.t -> Error.t

(** {1 Memory} *)

val malloc : Context.t -> int64 -> (int64, Error.t) result
val free : Context.t -> int64 -> Error.t
val memcpy_h2d : Context.t -> dst:int64 -> bytes -> Error.t
val memcpy_d2h : Context.t -> src:int64 -> len:int64 -> (bytes, Error.t) result
val memcpy_d2d : Context.t -> dst:int64 -> src:int64 -> len:int64 -> Error.t
val memset : Context.t -> ptr:int64 -> value:int -> len:int64 -> Error.t
val mem_get_info : Context.t -> int64 * int64
(** (free, total). *)

(** {1 Stream-ordered (asynchronous) memory operations}

    Unlike their synchronous counterparts these never drain the device:
    only the driver-dispatch cost hits the host clock, the transfer/fill
    time is enqueued on the stream. Failures cannot be returned (the RPCs
    are one-way), so they latch via {!Context.set_async_error} and surface
    at the next synchronizing call. *)

val memcpy_h2d_async : Context.t -> dst:int64 -> bytes -> stream:int64 -> unit
val memset_async :
  Context.t -> ptr:int64 -> value:int -> len:int64 -> stream:int64 -> unit

val memcpy_d2h_stream :
  Context.t -> src:int64 -> len:int64 -> stream:int64 -> (bytes, Error.t) result
(** Blocking, but only on [stream]'s completion (plus the DMA setup
    overhead) — other streams keep running. Also surfaces a latched async
    error, since it is a synchronizing call. *)

(** {1 Streams and events} *)

val stream_create : Context.t -> int64
val stream_destroy : Context.t -> int64 -> Error.t
val stream_synchronize : Context.t -> int64 -> Error.t
val event_create : Context.t -> int64
val event_destroy : Context.t -> int64 -> Error.t
val event_record : Context.t -> event:int64 -> stream:int64 -> Error.t
val event_synchronize : Context.t -> int64 -> Error.t
val event_elapsed_ms : Context.t -> start:int64 -> stop:int64 -> (float, Error.t) result

val stream_wait_event : Context.t -> stream:int64 -> event:int64 -> unit
(** One-way cudaStreamWaitEvent; unknown handles latch an async error. *)

val event_record_async : Context.t -> event:int64 -> stream:int64 -> unit
(** One-way {!event_record}; unknown handles latch an async error. *)

(** {1 Module API (cubin loading — the paper's Cricket extension)} *)

val module_load_data : Context.t -> string -> (int64, Error.t) result
(** Accepts a standalone cubin image or a fat binary (best-arch image is
    selected for the current device). Decompresses as needed, then binds
    each kernel declared in the metadata to the registry. *)

val module_unload : Context.t -> int64 -> Error.t
val module_get_function : Context.t -> modul:int64 -> name:string -> (int64, Error.t) result
val module_get_global : Context.t -> modul:int64 -> name:string -> (int64 * int64, Error.t) result
(** Allocates device storage for the global on first access. *)

type launch_config = {
  function_handle : int64;
  grid : Gpusim.Kernels.dim3;
  block : Gpusim.Kernels.dim3;
  shared_mem_bytes : int;
  stream : int64;
}

val launch_kernel : Context.t -> launch_config -> params:bytes -> Error.t
(** Unpacks [params] using the function's cubin metadata, then enqueues. *)

val launch_kernel_async : Context.t -> launch_config -> params:bytes -> unit
(** One-way {!launch_kernel}: any error latches instead of returning. *)

(** {1 Cost constants (exposed for the benchmarks' documentation)} *)

val dispatch_ns : int
(** Fixed server-side driver dispatch cost charged per API call. *)

val memcpy_overhead_ns : int

val charge : Context.t -> int -> unit
(** Advance the virtual clock by a CPU cost in nanoseconds (shared with the
    cuBLAS/cuSOLVER layers). *)
