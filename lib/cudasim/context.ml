module Time = Simnet.Time

type clock = { now : unit -> Time.t; advance_to : Time.t -> unit }

let engine_clock engine =
  {
    now = (fun () -> Simnet.Engine.now engine);
    advance_to = (fun t -> Simnet.Engine.advance_to engine t);
  }

type function_entry = {
  module_handle : int;
  info : Cubin.Image.kernel_info;
  kernel : Gpusim.Kernels.t;
}

type t = {
  gpus : Gpusim.Gpu.t array;
  clock : clock;
  mutable current_device : int;
  mutable is_functional : bool;
  modules : (int, string * Cubin.Image.t) Hashtbl.t;
  functions : (int, function_entry) Hashtbl.t;
  cublas : (int, unit) Hashtbl.t;
  cusolver : (int, unit) Hashtbl.t;
  globals : (int * string, int) Hashtbl.t;  (* (module, name) -> device ptr *)
  mutable next_handle : int;
  mutable async_error : Error.t option;  (* sticky, cudaGetLastError-style *)
}

let create ?(devices = Gpusim.Device.gpu_node) ?memory_capacity
    ?capacity_clamp clock =
  if devices = [] then invalid_arg "Context.create: no devices";
  {
    gpus =
      Array.of_list
        (List.map
           (fun d -> Gpusim.Gpu.create ?memory_capacity ?capacity_clamp d)
           devices);
    clock;
    current_device = 0;
    is_functional = true;
    modules = Hashtbl.create 8;
    functions = Hashtbl.create 32;
    cublas = Hashtbl.create 4;
    cusolver = Hashtbl.create 4;
    globals = Hashtbl.create 8;
    next_handle = 0x100;
    async_error = None;
  }

let clock t = t.clock
let device_count t = Array.length t.gpus
let current t = t.current_device

let set_current t i =
  if i < 0 || i >= Array.length t.gpus then Error Error.Invalid_device
  else begin
    t.current_device <- i;
    Ok ()
  end

let gpu t = t.gpus.(t.current_device)

let gpu_at t i =
  if i < 0 || i >= Array.length t.gpus then None else Some t.gpus.(i)

let functional t = t.is_functional
let set_functional t v = t.is_functional <- v

let set_async_error t e =
  if t.async_error = None then t.async_error <- Some e

let take_async_error t =
  let e = t.async_error in
  t.async_error <- None;
  e

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let add_module t ~data ~image =
  let h = fresh_handle t in
  Hashtbl.add t.modules h (data, image);
  h

let find_module t h = Hashtbl.find_opt t.modules h

let remove_module t h =
  if Hashtbl.mem t.modules h then begin
    Hashtbl.remove t.modules h;
    let stale =
      Hashtbl.fold
        (fun fh entry acc -> if entry.module_handle = h then fh :: acc else acc)
        t.functions []
    in
    List.iter (Hashtbl.remove t.functions) stale;
    true
  end
  else false

let add_function t entry =
  let h = fresh_handle t in
  Hashtbl.add t.functions h entry;
  h

let find_function t h = Hashtbl.find_opt t.functions h
let find_global t key = Hashtbl.find_opt t.globals key
let add_global t key ptr = Hashtbl.replace t.globals key ptr

let add_cublas t =
  let h = fresh_handle t in
  Hashtbl.add t.cublas h ();
  h

let valid_cublas t h = Hashtbl.mem t.cublas h

let remove_cublas t h =
  if Hashtbl.mem t.cublas h then begin
    Hashtbl.remove t.cublas h;
    true
  end
  else false

let add_cusolver t =
  let h = fresh_handle t in
  Hashtbl.add t.cusolver h ();
  h

let valid_cusolver t h = Hashtbl.mem t.cusolver h

let remove_cusolver t h =
  if Hashtbl.mem t.cusolver h then begin
    Hashtbl.remove t.cusolver h;
    true
  end
  else false

(* --- checkpoint / restart --- *)

type snapshot = {
  snap_current : int;
  snap_memories : string array;
  snap_modules : (int * string) list;  (* handle, raw module data *)
  snap_functions : (int * (int * string)) list;
      (* fn handle -> (module handle, kernel name) *)
  snap_cublas : int list;
  snap_cusolver : int list;
  snap_globals : ((int * string) * int) list;
  snap_handles : Gpusim.Gpu.handles array;  (* streams/events per device *)
  snap_next_handle : int;
}

(* Quiesce: let all queued GPU work finish before capturing memory. *)
let quiesce t =
  let now =
    Array.fold_left
      (fun acc g -> max acc (Gpusim.Gpu.synchronize g ~now:(t.clock.now ())))
      (t.clock.now ()) t.gpus
  in
  t.clock.advance_to now

let checkpoint t =
  quiesce t;
  let snap =
    {
      snap_current = t.current_device;
      snap_memories =
        Array.map (fun g -> Gpusim.Memory.snapshot (Gpusim.Gpu.memory g)) t.gpus;
      snap_modules =
        Hashtbl.fold (fun h (data, _) acc -> (h, data) :: acc) t.modules [];
      snap_functions =
        Hashtbl.fold
          (fun h entry acc ->
            (h, (entry.module_handle, entry.info.Cubin.Image.name)) :: acc)
          t.functions [];
      snap_cublas = Hashtbl.fold (fun h () acc -> h :: acc) t.cublas [];
      snap_cusolver = Hashtbl.fold (fun h () acc -> h :: acc) t.cusolver [];
      snap_globals = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.globals [];
      snap_handles = Array.map Gpusim.Gpu.handles t.gpus;
      snap_next_handle = t.next_handle;
    }
  in
  Marshal.to_string snap []

(* Rebuild module images from raw data; fail cleanly if any is corrupt. *)
let parse_modules raw_modules =
  let rebuilt =
    List.map
      (fun (h, raw) ->
        match Cubin.Image.parse raw with
        | Ok image -> Ok (h, (raw, image))
        | Error e -> Error (Printf.sprintf "module %d: %s" h e))
      raw_modules
  in
  match List.find_opt (function Error _ -> true | Ok _ -> false) rebuilt with
  | Some (Error e) -> Error e
  | Some (Ok _) -> assert false
  | None ->
      Ok (List.filter_map (function Ok m -> Some m | Error _ -> None) rebuilt)

let refill_tables t ~modules ~functions ~cublas ~cusolver ~globals ~next_handle
    =
  Hashtbl.reset t.modules;
  List.iter (fun (h, entry) -> Hashtbl.add t.modules h entry) modules;
  Hashtbl.reset t.functions;
  List.iter
    (fun (h, (module_handle, kernel_name)) ->
      match
        ( Hashtbl.find_opt t.modules module_handle,
          Gpusim.Kernels.find kernel_name )
      with
      | Some (_, image), Some kernel -> (
          match Cubin.Image.find_kernel image kernel_name with
          | Some info -> Hashtbl.add t.functions h { module_handle; info; kernel }
          | None -> ())
      | _ -> ())
    functions;
  Hashtbl.reset t.cublas;
  List.iter (fun h -> Hashtbl.add t.cublas h ()) cublas;
  Hashtbl.reset t.cusolver;
  List.iter (fun h -> Hashtbl.add t.cusolver h ()) cusolver;
  Hashtbl.reset t.globals;
  List.iter (fun (k, v) -> Hashtbl.add t.globals k v) globals;
  t.next_handle <- next_handle

let restore t data =
  match (Marshal.from_string data 0 : snapshot) with
  | exception _ -> Error "unreadable checkpoint"
  | snap ->
      if Array.length snap.snap_memories <> Array.length t.gpus then
        Error "checkpoint was taken on a different device configuration"
      else if
        snap.snap_current < 0 || snap.snap_current >= Array.length t.gpus
      then Error "checkpoint selects an out-of-range device"
      else begin
        match parse_modules snap.snap_modules with
        | Error e -> Error e
        | Ok modules ->
            Array.iteri
              (fun i g ->
                (* Restored arenas start with a clean dirty set; any delta
                   baseline predating the restore is invalid, so tracking
                   restarts from this state. *)
                let was_tracking =
                  Gpusim.Memory.tracking (Gpusim.Gpu.memory g)
                in
                Gpusim.Gpu.reset g;
                let restored = Gpusim.Memory.restore snap.snap_memories.(i) in
                (* splice restored memory into the gpu *)
                Gpusim.Gpu.set_memory g restored;
                if was_tracking then Gpusim.Memory.set_tracking restored true;
                Gpusim.Gpu.set_handles g snap.snap_handles.(i))
              t.gpus;
            t.current_device <- snap.snap_current;
            refill_tables t ~modules ~functions:snap.snap_functions
              ~cublas:snap.snap_cublas ~cusolver:snap.snap_cusolver
              ~globals:snap.snap_globals ~next_handle:snap.snap_next_handle;
            Ok ()
      end

(* --- incremental checkpoints (migration deltas) --- *)

let set_dirty_tracking t on =
  Array.iter
    (fun g -> Gpusim.Memory.set_tracking (Gpusim.Gpu.memory g) on)
    t.gpus

let dirty_pages t =
  Array.fold_left
    (fun acc g -> acc + Gpusim.Memory.dirty_page_count (Gpusim.Gpu.memory g))
    0 t.gpus

let checkpoint_base t =
  let data = checkpoint t in
  (* The base snapshot is the delta baseline: subsequent deltas describe
     changes relative to it. *)
  Array.iter (fun g -> Gpusim.Memory.clear_dirty (Gpusim.Gpu.memory g)) t.gpus;
  data

(* A delta carries per-device memory deltas (dirty pages only) plus the
   module/function/handle tables wholesale — those are tiny next to device
   memory and rewriting them keeps apply idempotent. *)
type delta = {
  dl_current : int;
  dl_memories : string array;
  dl_modules : (int * string) list;
  dl_functions : (int * (int * string)) list;
  dl_cublas : int list;
  dl_cusolver : int list;
  dl_globals : ((int * string) * int) list;
  dl_handles : Gpusim.Gpu.handles array;
  dl_next_handle : int;
}

let checkpoint_delta t =
  quiesce t;
  let d =
    {
      dl_current = t.current_device;
      dl_memories =
        Array.map (fun g -> Gpusim.Memory.delta (Gpusim.Gpu.memory g)) t.gpus;
      dl_modules =
        Hashtbl.fold (fun h (data, _) acc -> (h, data) :: acc) t.modules [];
      dl_functions =
        Hashtbl.fold
          (fun h entry acc ->
            (h, (entry.module_handle, entry.info.Cubin.Image.name)) :: acc)
          t.functions [];
      dl_cublas = Hashtbl.fold (fun h () acc -> h :: acc) t.cublas [];
      dl_cusolver = Hashtbl.fold (fun h () acc -> h :: acc) t.cusolver [];
      dl_globals = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.globals [];
      dl_handles = Array.map Gpusim.Gpu.handles t.gpus;
      dl_next_handle = t.next_handle;
    }
  in
  Marshal.to_string d []

let restore_delta t data =
  match (Marshal.from_string data 0 : delta) with
  | exception _ -> Error "unreadable delta"
  | d ->
      if Array.length d.dl_memories <> Array.length t.gpus then
        Error "delta was taken on a different device configuration"
      else if d.dl_current < 0 || d.dl_current >= Array.length t.gpus then
        Error "delta selects an out-of-range device"
      else begin
        match parse_modules d.dl_modules with
        | Error e -> Error e
        | Ok modules ->
            let mem_err = ref None in
            Array.iteri
              (fun i g ->
                if !mem_err = None then begin
                  match
                    Gpusim.Memory.apply_delta (Gpusim.Gpu.memory g)
                      d.dl_memories.(i)
                  with
                  | Ok () -> Gpusim.Gpu.set_handles g d.dl_handles.(i)
                  | Error e ->
                      mem_err := Some (Printf.sprintf "device %d: %s" i e)
                end)
              t.gpus;
            (match !mem_err with
            | Some e -> Error e
            | None ->
                t.current_device <- d.dl_current;
                refill_tables t ~modules ~functions:d.dl_functions
                  ~cublas:d.dl_cublas ~cusolver:d.dl_cusolver
                  ~globals:d.dl_globals ~next_handle:d.dl_next_handle;
                Ok ())
      end

let wipe t =
  Array.iter Gpusim.Gpu.reset t.gpus;
  Hashtbl.reset t.modules;
  Hashtbl.reset t.functions;
  Hashtbl.reset t.cublas;
  Hashtbl.reset t.cusolver;
  Hashtbl.reset t.globals;
  t.current_device <- 0;
  t.next_handle <- 0x100;
  t.async_error <- None
