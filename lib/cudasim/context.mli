(** The server-side CUDA context: devices, loaded modules, library handles.

    One context corresponds to one Cricket server process sitting on the
    GPU node. It owns the simulated GPUs, tracks loaded kernel modules and
    cuBLAS/cuSOLVER handles, and charges GPU/PCIe time through a caller
    supplied virtual clock.

    [functional] controls whether kernel implementations actually execute
    (device memory mutated) or only account time. Benchmarks verify
    numerics with it on, then disable it for the remaining thousands of
    identical iterations — the cost models are data-independent, so virtual
    timing is unaffected. *)

module Time = Simnet.Time

type clock = {
  now : unit -> Time.t;
  advance_to : Time.t -> unit;  (** never rewinds *)
}

val engine_clock : Simnet.Engine.t -> clock

type function_entry = {
  module_handle : int;
  info : Cubin.Image.kernel_info;
  kernel : Gpusim.Kernels.t;
}

type t

val create :
  ?devices:Gpusim.Device.t list ->
  ?memory_capacity:int ->
  ?capacity_clamp:int ->
  clock ->
  t
(** Defaults to the evaluation machine's GPU node (A100 + 2×T4 + P40).
    [memory_capacity] and [capacity_clamp] are forwarded to
    {!Gpusim.Gpu.create} for every device; pass [~capacity_clamp:max_int]
    when per-device OOM behaviour must track the catalog's
    [total_global_mem]. *)

val clock : t -> clock
val device_count : t -> int
val current : t -> int
val set_current : t -> int -> (unit, Error.t) result
val gpu : t -> Gpusim.Gpu.t
(** The currently selected device. *)

val gpu_at : t -> int -> Gpusim.Gpu.t option

val functional : t -> bool
val set_functional : t -> bool -> unit

(** {1 Sticky asynchronous error}

    Failures of one-way (stream-ordered) operations cannot be reported to
    the caller inline — there is no reply. As with [cudaGetLastError], the
    first such failure is latched and surfaced by the next synchronizing
    call, which clears it. *)

val set_async_error : t -> Error.t -> unit
(** Keeps the first error if one is already latched. *)

val take_async_error : t -> Error.t option
(** Return and clear the latched error. *)

val fresh_handle : t -> int

(** {1 Module / function tables} *)

val add_module : t -> data:string -> image:Cubin.Image.t -> int
val find_module : t -> int -> (string * Cubin.Image.t) option
val remove_module : t -> int -> bool
(** Also drops the module's functions. *)

val add_function : t -> function_entry -> int
val find_function : t -> int -> function_entry option

val find_global : t -> int * string -> int option
(** Device pointer already assigned to a module's global, if any. *)

val add_global : t -> int * string -> int -> unit

(** {1 Library handles} *)

val add_cublas : t -> int
val valid_cublas : t -> int -> bool
val remove_cublas : t -> int -> bool
val add_cusolver : t -> int
val valid_cusolver : t -> int -> bool
val remove_cusolver : t -> int -> bool

(** {1 Checkpoint / restart} *)

val checkpoint : t -> string
(** Quiesces (synchronizes all devices, advancing the clock) and serializes
    device memory, module and handle tables. *)

val restore : t -> string -> (unit, string) result
(** Replace this context's state with a checkpoint's. The clock keeps its
    current value (restart happens later in virtual time). Dirty-page
    tracking, if enabled, restarts with a clean slate from the restored
    state. *)

(** {1 Incremental checkpoints (migration deltas)}

    With dirty-page tracking enabled, [checkpoint_base] captures a full
    snapshot and rebases the delta stream on it; each subsequent
    [checkpoint_delta] carries only the pages written since the previous
    base/delta plus the (tiny) module and handle tables. Applying the base
    with {!restore} and then each delta with [restore_delta] in order
    reconstructs the context. *)

val set_dirty_tracking : t -> bool -> unit
val dirty_pages : t -> int
(** Pages written since the last base/delta, summed across devices. *)

val checkpoint_base : t -> string
(** Full {!checkpoint} that also clears the dirty sets, making this
    snapshot the baseline for subsequent deltas. *)

val checkpoint_delta : t -> string
(** Quiesce and serialize only state changed since the last base/delta.
    Raises [Invalid_argument] if dirty tracking is disabled. *)

val restore_delta : t -> string -> (unit, string) result
(** Apply a delta on top of previously restored state. *)

val wipe : t -> unit
(** Drop all state (devices reset, tables cleared) — used when an inbound
    migration is aborted so no half-copied session lingers. *)
