module Time = Simnet.Time

type device_properties = {
  name : string;
  total_global_mem : int64;
  multi_processor_count : int;
  clock_rate_khz : int;
  compute_major : int;
  compute_minor : int;
  memory_bandwidth : int64;
}

(* Fixed CPU cost of entering the CUDA driver for any call, and the extra
   overhead of setting up a DMA transfer. *)
let dispatch_ns = 3_000
let memcpy_overhead_ns = 9_000

let charge ctx ns =
  let clock = Context.clock ctx in
  clock.Context.advance_to (Time.add (clock.Context.now ()) (Time.ns ns))

let now ctx = (Context.clock ctx).Context.now ()
let advance_to ctx t = (Context.clock ctx).Context.advance_to t

(* --- device management --- *)

let get_device_count ctx =
  charge ctx dispatch_ns;
  Context.device_count ctx

let set_device ctx i =
  charge ctx dispatch_ns;
  match Context.set_current ctx i with
  | Ok () -> Error.Success
  | Error e -> e

let get_device ctx =
  charge ctx dispatch_ns;
  Context.current ctx

let get_device_properties ctx i =
  charge ctx dispatch_ns;
  match Context.gpu_at ctx i with
  | None -> Error Error.Invalid_device
  | Some gpu ->
      let d = Gpusim.Gpu.device gpu in
      Ok
        {
          name = d.Gpusim.Device.name;
          total_global_mem = d.Gpusim.Device.total_global_mem;
          multi_processor_count = d.Gpusim.Device.multi_processor_count;
          clock_rate_khz = d.Gpusim.Device.clock_rate_khz;
          compute_major = d.Gpusim.Device.compute_major;
          compute_minor = d.Gpusim.Device.compute_minor;
          memory_bandwidth = Int64.of_float d.Gpusim.Device.memory_bandwidth;
        }

(* Synchronizing calls surface any latched asynchronous failure — the
   one-way stream operations have no reply of their own. *)
let surface_async_error ctx =
  match Context.take_async_error ctx with
  | Some e -> e
  | None -> Error.Success

let device_synchronize ctx =
  charge ctx dispatch_ns;
  let gpu = Context.gpu ctx in
  advance_to ctx (Gpusim.Gpu.synchronize gpu ~now:(now ctx));
  surface_async_error ctx

let device_reset ctx =
  charge ctx dispatch_ns;
  Gpusim.Gpu.reset (Context.gpu ctx);
  Error.Success

(* --- memory --- *)

let mem ctx = Gpusim.Gpu.memory (Context.gpu ctx)

let malloc ctx size =
  charge ctx (dispatch_ns * 2) (* allocation bookkeeping *);
  let size = Int64.to_int size in
  if size <= 0 then Error Error.Invalid_value
  else
    match Gpusim.Memory.alloc (mem ctx) size with
    | ptr -> Ok (Int64.of_int ptr)
    | exception Gpusim.Memory.Error (Gpusim.Memory.Out_of_memory _) ->
        Error Error.Memory_allocation

let free ctx ptr =
  charge ctx (dispatch_ns * 2);
  match Gpusim.Memory.free (mem ctx) (Int64.to_int ptr) with
  | () -> Error.Success
  | exception Gpusim.Memory.Error _ -> Error.Invalid_value

(* Synchronous memcpys drain the device, then charge PCIe time. *)
let charge_pcie ctx bytes =
  let gpu = Context.gpu ctx in
  advance_to ctx (Gpusim.Gpu.synchronize gpu ~now:(now ctx));
  let d = Gpusim.Gpu.device gpu in
  let transfer_ns =
    Float.of_int bytes /. d.Gpusim.Device.pcie_bandwidth *. 1e9
  in
  charge ctx (memcpy_overhead_ns + Int64.to_int (Time.of_float_ns transfer_ns))

let memcpy_h2d ctx ~dst data =
  charge ctx dispatch_ns;
  charge_pcie ctx (Bytes.length data);
  match Gpusim.Memory.write (mem ctx) (Int64.to_int dst) data with
  | () -> Error.Success
  | exception Gpusim.Memory.Error _ -> Error.Invalid_value

let memcpy_d2h ctx ~src ~len =
  charge ctx dispatch_ns;
  let len = Int64.to_int len in
  if len < 0 then Error Error.Invalid_value
  else begin
    charge_pcie ctx len;
    match Gpusim.Memory.read (mem ctx) (Int64.to_int src) len with
    | data -> Ok data
    | exception Gpusim.Memory.Error _ -> Error Error.Invalid_value
  end

let memcpy_d2d ctx ~dst ~src ~len =
  charge ctx dispatch_ns;
  let len = Int64.to_int len in
  let gpu = Context.gpu ctx in
  advance_to ctx (Gpusim.Gpu.synchronize gpu ~now:(now ctx));
  let d = Gpusim.Gpu.device gpu in
  charge ctx
    (Int64.to_int
       (Time.of_float_ns
          (Float.of_int len /. d.Gpusim.Device.memory_bandwidth *. 2e9)));
  match
    Gpusim.Memory.copy (mem ctx) ~src:(Int64.to_int src)
      ~dst:(Int64.to_int dst) ~len
  with
  | () -> Error.Success
  | exception Gpusim.Memory.Error _ -> Error.Invalid_value

let memset ctx ~ptr ~value ~len =
  charge ctx dispatch_ns;
  let len = Int64.to_int len in
  match Gpusim.Memory.memset (mem ctx) (Int64.to_int ptr) value len with
  | () -> Error.Success
  | exception Gpusim.Memory.Error _ -> Error.Invalid_value

let mem_get_info ctx =
  charge ctx dispatch_ns;
  let m = mem ctx in
  ( Int64.of_int (Gpusim.Memory.free_bytes m),
    Int64.of_int (Gpusim.Memory.total_bytes m) )

(* --- stream-ordered (asynchronous) memory operations ---

   These charge only the driver dispatch cost on the host clock; the
   transfer/fill time lands on the stream inside the GPU model, so
   independent streams overlap and the host never blocks. Failures are
   latched (Context.set_async_error) and surface at the next synchronize. *)

let memcpy_h2d_async ctx ~dst data ~stream =
  charge ctx dispatch_ns;
  match
    Gpusim.Gpu.memcpy_h2d (Context.gpu ctx) ~now:(now ctx)
      ~stream:(Int64.to_int stream) ~dst:(Int64.to_int dst) data
  with
  | (_ : Time.t) -> ()
  | exception Not_found -> Context.set_async_error ctx Error.Invalid_handle
  | exception Gpusim.Memory.Error _ ->
      Context.set_async_error ctx Error.Invalid_value

let memset_async ctx ~ptr ~value ~len ~stream =
  charge ctx dispatch_ns;
  match
    Gpusim.Gpu.memset (Context.gpu ctx) ~now:(now ctx)
      ~stream:(Int64.to_int stream) ~ptr:(Int64.to_int ptr) ~value
      (Int64.to_int len)
  with
  | (_ : Time.t) -> ()
  | exception Not_found -> Context.set_async_error ctx Error.Invalid_handle
  | exception Gpusim.Memory.Error _ ->
      Context.set_async_error ctx Error.Invalid_value

(* Stream-ordered D2H: blocks the host only until *this stream* finishes,
   unlike the synchronous memcpy_d2h which drains the whole device. *)
let memcpy_d2h_stream ctx ~src ~len ~stream =
  charge ctx dispatch_ns;
  let len = Int64.to_int len in
  if len < 0 then Error Error.Invalid_value
  else
    match
      Gpusim.Gpu.memcpy_d2h (Context.gpu ctx) ~now:(now ctx)
        ~stream:(Int64.to_int stream) ~src:(Int64.to_int src) len
    with
    | finish, data ->
        advance_to ctx finish;
        charge ctx memcpy_overhead_ns;
        (match Context.take_async_error ctx with
        | Some e -> Error e
        | None -> Ok data)
    | exception Not_found -> Error Error.Invalid_handle
    | exception Gpusim.Memory.Error _ -> Error Error.Invalid_value

(* --- streams and events --- *)

let stream_create ctx =
  charge ctx dispatch_ns;
  Int64.of_int (Gpusim.Gpu.stream_create (Context.gpu ctx))

let stream_destroy ctx h =
  charge ctx dispatch_ns;
  match Gpusim.Gpu.stream_destroy (Context.gpu ctx) (Int64.to_int h) with
  | () -> Error.Success
  | exception (Not_found | Invalid_argument _) -> Error.Invalid_handle

let stream_synchronize ctx h =
  charge ctx dispatch_ns;
  let gpu = Context.gpu ctx in
  match Gpusim.Gpu.stream_synchronize gpu ~now:(now ctx) (Int64.to_int h) with
  | t ->
      advance_to ctx t;
      surface_async_error ctx
  | exception Not_found -> Error.Invalid_handle

let event_create ctx =
  charge ctx dispatch_ns;
  Int64.of_int (Gpusim.Gpu.event_create (Context.gpu ctx))

let event_destroy ctx h =
  charge ctx dispatch_ns;
  match Gpusim.Gpu.event_destroy (Context.gpu ctx) (Int64.to_int h) with
  | () -> Error.Success
  | exception Not_found -> Error.Invalid_handle

let event_record ctx ~event ~stream =
  charge ctx dispatch_ns;
  let gpu = Context.gpu ctx in
  match
    Gpusim.Gpu.event_record gpu ~now:(now ctx) ~event:(Int64.to_int event)
      ~stream:(Int64.to_int stream)
  with
  | () -> Error.Success
  | exception Not_found -> Error.Invalid_handle

let event_synchronize ctx h =
  charge ctx dispatch_ns;
  let gpu = Context.gpu ctx in
  match Gpusim.Gpu.event_synchronize gpu ~now:(now ctx) (Int64.to_int h) with
  | t ->
      advance_to ctx t;
      surface_async_error ctx
  | exception Not_found -> Error.Invalid_handle

let stream_wait_event ctx ~stream ~event =
  charge ctx dispatch_ns;
  match
    Gpusim.Gpu.stream_wait_event (Context.gpu ctx)
      ~stream:(Int64.to_int stream) ~event:(Int64.to_int event)
  with
  | () -> ()
  | exception Not_found -> Context.set_async_error ctx Error.Invalid_handle

let event_record_async ctx ~event ~stream =
  charge ctx dispatch_ns;
  match
    Gpusim.Gpu.event_record (Context.gpu ctx) ~now:(now ctx)
      ~event:(Int64.to_int event) ~stream:(Int64.to_int stream)
  with
  | () -> ()
  | exception Not_found -> Context.set_async_error ctx Error.Invalid_handle

let event_elapsed_ms ctx ~start ~stop =
  charge ctx dispatch_ns;
  let gpu = Context.gpu ctx in
  match
    Gpusim.Gpu.event_elapsed_ms gpu ~start:(Int64.to_int start)
      ~stop:(Int64.to_int stop)
  with
  | ms -> Ok ms
  | exception Not_found -> Error Error.Invalid_handle

(* --- module API --- *)

let module_load_data ctx data =
  (* Parsing + metadata extraction (and possibly decompression) is real
     work on the server; charge proportional to image size. *)
  charge ctx (dispatch_ns * 4);
  charge ctx (String.length data / 100);
  let image_data =
    if Cubin.Fatbin.is_fatbin data then begin
      match Cubin.Fatbin.parse data with
      | Error _ -> None
      | Ok fatbin ->
          let d = Gpusim.Gpu.device (Context.gpu ctx) in
          Cubin.Fatbin.best_image fatbin
            ~cc:(d.Gpusim.Device.compute_major, d.Gpusim.Device.compute_minor)
    end
    else Some data
  in
  match image_data with
  | None -> Error Error.Invalid_value
  | Some image_data -> (
      match Cubin.Image.parse image_data with
      | Error _ -> Error Error.Invalid_value
      | Ok image -> Ok (Int64.of_int (Context.add_module ctx ~data ~image)))

let module_unload ctx h =
  charge ctx dispatch_ns;
  if Context.remove_module ctx (Int64.to_int h) then Error.Success
  else Error.Invalid_handle

let module_get_function ctx ~modul ~name =
  charge ctx dispatch_ns;
  match Context.find_module ctx (Int64.to_int modul) with
  | None -> Error Error.Invalid_handle
  | Some (_, image) -> (
      match Cubin.Image.find_kernel image name with
      | None -> Error Error.Not_found
      | Some info -> (
          match Gpusim.Kernels.find name with
          | None -> Error Error.Not_found
          | Some kernel ->
              Ok
                (Int64.of_int
                   (Context.add_function ctx
                      { Context.module_handle = Int64.to_int modul; info;
                        kernel }))))

(* Globals get device storage on first lookup, keyed by (module, name). *)
let module_get_global ctx ~modul ~name =
  charge ctx dispatch_ns;
  let mh = Int64.to_int modul in
  match Context.find_module ctx mh with
  | None -> Error Error.Invalid_handle
  | Some (_, image) -> (
      match
        List.find_opt
          (fun (g : Cubin.Image.global_info) -> g.Cubin.Image.name = name)
          image.Cubin.Image.globals
      with
      | None -> Error Error.Not_found
      | Some g -> (
          match Context.find_global ctx (mh, name) with
          | Some ptr -> Ok (Int64.of_int ptr, Int64.of_int g.Cubin.Image.size)
          | None -> (
              match Gpusim.Memory.alloc (mem ctx) g.Cubin.Image.size with
              | exception Gpusim.Memory.Error _ ->
                  Error Error.Memory_allocation
              | ptr ->
                  (match g.Cubin.Image.init with
                  | Some init -> Gpusim.Memory.write (mem ctx) ptr init
                  | None -> ());
                  Context.add_global ctx (mh, name) ptr;
                  Ok (Int64.of_int ptr, Int64.of_int g.Cubin.Image.size))))

type launch_config = {
  function_handle : int64;
  grid : Gpusim.Kernels.dim3;
  block : Gpusim.Kernels.dim3;
  shared_mem_bytes : int;
  stream : int64;
}

let launch_kernel ctx config ~params =
  charge ctx (dispatch_ns * 2) (* launches do more driver work *);
  match Context.find_function ctx (Int64.to_int config.function_handle) with
  | None -> Error.Invalid_handle
  | Some entry -> (
      match Cubin.Image.unpack_args entry.Context.info params with
      | Error _ -> Error.Invalid_value
      | Ok args -> (
          let launch =
            { Gpusim.Kernels.grid = config.grid; block = config.block;
              shared_mem = config.shared_mem_bytes; args }
          in
          let gpu = Context.gpu ctx in
          let kernel = entry.Context.kernel in
          let kernel =
            if Context.functional ctx then kernel
            else { kernel with Gpusim.Kernels.execute = (fun _ _ -> ()) }
          in
          match
            Gpusim.Gpu.launch gpu ~now:(now ctx)
              ~stream:(Int64.to_int config.stream) kernel launch
          with
          | (_ : Time.t) -> Error.Success
          | exception Not_found -> Error.Invalid_handle
          | exception Gpusim.Kernels.Bad_args _ -> Error.Launch_failure
          | exception Gpusim.Memory.Error _ -> Error.Launch_failure))

let launch_kernel_async ctx config ~params =
  match launch_kernel ctx config ~params with
  | Error.Success -> ()
  | e -> Context.set_async_error ctx e
