(** XDR (RFC 4506) decoder.

    A decoder reads items sequentially from an immutable byte string. It
    tracks its position and raises {!Types.Error} on malformed or truncated
    input. Padding bytes are verified to be zero, as the RFC requires.

    The [?max] arguments mirror the encoder's and guard against adversarial
    length fields: a declared length above [max] (or above the remaining
    input) fails before any allocation proportional to it. *)

type t

val of_string : ?pos:int -> ?len:int -> string -> t
(** Decoder over a substring. Defaults: whole string. *)

val of_bytes : ?pos:int -> ?len:int -> bytes -> t
(** Decoder over a byte buffer (the contents are copied; the decoder is not
    affected by later mutation of [bytes]). *)

val pos : t -> int
(** Current offset from the start of the decoding window. *)

val remaining : t -> int
(** Bytes left to decode. *)

val finish : t -> unit
(** Assert that the input is fully consumed; raises [Trailing_bytes]
    otherwise. *)

val skip : t -> int -> unit
(** Advance over [n] raw bytes (no alignment applied). *)

(** {1 Primitive types} *)

val int32 : t -> int32
val uint32 : t -> int32
val int : t -> int
(** Signed XDR int as an OCaml [int]. *)

val uint : t -> int
(** Unsigned XDR int as a non-negative OCaml [int]. *)

val int64 : t -> int64
val uint64 : t -> int64
val bool : t -> bool
val float32 : t -> float
val float64 : t -> float

val enum : t -> check:(int -> bool) -> int
(** Decode an enum and validate it with [check]; raises [Invalid_enum] when
    [check] is false. *)

val void : t -> unit

(** {1 Opaque data and strings} *)

val opaque_fixed : t -> int -> bytes
(** Fixed-length opaque of exactly [n] bytes (plus padding on the wire). *)

val opaque : ?max:int -> t -> bytes
(** Variable-length opaque. *)

val opaque_slice : ?max:int -> t -> Iovec.slice
(** Variable-length opaque as a no-copy view of the decoder's backing
    string — the zero-copy download path. The view stays valid for the
    lifetime of the decoded message; copy out with
    {!Iovec.slice_to_bytes} when the payload must outlive it. *)

val string : ?max:int -> t -> string
(** XDR string. *)

(** {1 Composite types} *)

val array_fixed : t -> (t -> 'a) -> int -> 'a array
val array : ?max:int -> t -> (t -> 'a) -> 'a array
val list : ?max:int -> t -> (t -> 'a) -> 'a list
val option : t -> (t -> 'a) -> 'a option
