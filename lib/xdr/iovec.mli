(** Scatter-gather message views.

    An iovec represents a wire message as an ordered list of {e slices} —
    views into existing buffers — so that bulk payloads can travel from the
    XDR encoder through record marking down to the transport without being
    copied at each layer. The transport performs the single unavoidable
    copy (into the socket / in-memory queue); every layer above only passes
    slice descriptors around.

    Slices are immutable descriptors but may alias mutable [bytes] (via
    {!of_bytes}): the contract throughout the RPC stack is that the
    aliased buffer is not mutated between encoding and the completion of
    the send, which all callers satisfy because encode-and-send happens
    synchronously within one call. *)

type slice = private { base : string; off : int; len : int }

type t = slice list

val slice : ?off:int -> ?len:int -> string -> slice
(** View of a substring (default: the whole string). Raises
    [Invalid_argument] when out of bounds. *)

val of_bytes : ?off:int -> ?len:int -> bytes -> slice
(** Zero-copy view of a byte buffer. The caller must not mutate the buffer
    while the slice is live. *)

val of_string : string -> t
(** Single-slice iovec over a whole string. *)

val sub_slice : slice -> int -> int -> slice
(** [sub_slice s pos len] is the [len]-byte subview starting [pos] bytes
    into [s]. *)

val length : t -> int
(** Total payload bytes across all slices. *)

val iter : (slice -> unit) -> t -> unit
(** Apply to each non-empty slice in order. *)

val blit_to_bytes : t -> bytes -> int -> unit
(** Copy all slices contiguously into [dst] starting at [dst_off]. *)

val concat : t -> string
(** Flatten into a fresh string (the one copy, when a caller needs
    contiguous bytes). *)

val slice_to_bytes : slice -> bytes
(** Copy one slice out into fresh bytes. *)

val slice_to_string : slice -> string
(** Copy one slice out into a fresh string. *)

val split : t -> int -> t * t
(** [split t n] is [(prefix, rest)] where [prefix] holds exactly [n] bytes,
    sharing storage with [t]. Raises [Invalid_argument] if [t] holds fewer
    than [n] bytes. *)
