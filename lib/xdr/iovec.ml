type slice = { base : string; off : int; len : int }

type t = slice list

let check_slice base off len =
  if off < 0 || len < 0 || off + len > String.length base then
    invalid_arg "Xdr.Iovec.slice"

let slice ?(off = 0) ?len base =
  let len = match len with Some l -> l | None -> String.length base - off in
  check_slice base off len;
  { base; off; len }

let of_bytes ?(off = 0) ?len b =
  (* Zero-copy view: the slice aliases [b]; the caller must not mutate it
     while the slice is live (i.e. until the message is sent/flattened). *)
  slice ~off ?len (Bytes.unsafe_to_string b)

let of_string s = [ slice s ]

let sub_slice s pos len =
  if pos < 0 || len < 0 || pos + len > s.len then invalid_arg "Xdr.Iovec.sub_slice";
  { base = s.base; off = s.off + pos; len }

let length t = List.fold_left (fun acc s -> acc + s.len) 0 t

let iter f t = List.iter (fun s -> if s.len > 0 then f s) t

let blit_to_bytes t dst dst_off =
  let pos = ref dst_off in
  iter
    (fun s ->
      Bytes.blit_string s.base s.off dst !pos s.len;
      pos := !pos + s.len)
    t

let concat t =
  match t with
  | [] -> ""
  | [ s ] -> String.sub s.base s.off s.len
  | _ ->
      let b = Bytes.create (length t) in
      blit_to_bytes t b 0;
      Bytes.unsafe_to_string b

let slice_to_bytes s = Bytes.of_string (String.sub s.base s.off s.len)
let slice_to_string s = String.sub s.base s.off s.len

(* Split [t] into a prefix of exactly [n] bytes and the remainder, sharing
   the underlying storage (no copying). *)
let split t n =
  if n < 0 then invalid_arg "Xdr.Iovec.split";
  let rec loop acc n = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> invalid_arg "Xdr.Iovec.split: not enough bytes"
    | s :: rest when s.len <= n -> loop (s :: acc) (n - s.len) rest
    | s :: rest ->
        (List.rev (sub_slice s 0 n :: acc), sub_slice s n (s.len - n) :: rest)
  in
  loop [] n t
