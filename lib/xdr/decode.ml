type t = { data : string; limit : int; mutable pos : int }

let of_string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Xdr.Decode.of_string";
  { data = s; limit = pos + len; pos }

let of_bytes ?pos ?len b = of_string ?pos ?len (Bytes.to_string b)
let pos t = t.pos
let remaining t = t.limit - t.pos

let need t n =
  if remaining t < n then
    Types.fail (Types.Truncated { wanted = n; available = remaining t })

let finish t =
  if remaining t <> 0 then Types.fail (Types.Trailing_bytes (remaining t))

let skip t n =
  need t n;
  t.pos <- t.pos + n

let byte t i = Char.code (String.unsafe_get t.data i)

let int32 t =
  need t 4;
  let p = t.pos in
  t.pos <- p + 4;
  Int32.logor
    (Int32.shift_left (Int32.of_int (byte t p)) 24)
    (Int32.of_int ((byte t (p + 1) lsl 16) lor (byte t (p + 2) lsl 8) lor byte t (p + 3)))

let uint32 = int32
let int t = Int32.to_int (int32 t)

let uint t =
  let v = int32 t in
  Int32.to_int v land 0xffffffff

let int64 t =
  let hi = int32 t in
  let lo = int32 t in
  Int64.logor
    (Int64.shift_left (Int64.of_int32 hi) 32)
    (Int64.logand (Int64.of_int32 lo) 0xffffffffL)

let uint64 = int64

let bool t =
  match int32 t with
  | 0l -> false
  | 1l -> true
  | v -> Types.fail (Types.Invalid_bool v)

let float32 t = Int32.float_of_bits (int32 t)
let float64 t = Int64.float_of_bits (int64 t)

let enum t ~check =
  let v = int t in
  if not (check v) then Types.fail (Types.Invalid_enum (Int32.of_int v));
  v

let void (_ : t) = ()

let check_padding t n =
  let pad = Types.padding_of n in
  need t pad;
  for i = 0 to pad - 1 do
    if byte t (t.pos + i) <> 0 then Types.fail Types.Invalid_padding
  done;
  t.pos <- t.pos + pad

let opaque_fixed t n =
  if n < 0 then Types.fail (Types.Negative_size n);
  need t n;
  let b = Bytes.create n in
  Bytes.blit_string t.data t.pos b 0 n;
  t.pos <- t.pos + n;
  check_padding t n;
  b

let read_size ?max t =
  let n = uint t in
  (match max with
  | Some m when n > m -> Types.fail (Types.Size_exceeded { limit = m; requested = n })
  | _ -> ());
  (* A declared size beyond the remaining input is rejected before any
     allocation proportional to it. *)
  if n > remaining t then
    Types.fail (Types.Truncated { wanted = n; available = remaining t });
  n

let opaque ?max t =
  let n = read_size ?max t in
  opaque_fixed t n

(* No-copy view of a variable-length opaque: the slice aliases the
   decoder's backing string. Download paths hold the reply record alive
   anyway, so handing out a view instead of fresh bytes removes the decode
   copy for bulk payloads. *)
let opaque_slice ?max t =
  let n = read_size ?max t in
  need t n;
  let s = Iovec.slice ~off:t.pos ~len:n t.data in
  t.pos <- t.pos + n;
  check_padding t n;
  s

let string ?max t =
  let n = read_size ?max t in
  need t n;
  let s = String.sub t.data t.pos n in
  t.pos <- t.pos + n;
  check_padding t n;
  s

let array_fixed t dec n =
  if n < 0 then Types.fail (Types.Negative_size n);
  Array.init n (fun _ -> dec t)

let array ?max t dec =
  let n = read_size ?max t in
  array_fixed t dec n

let list ?max t dec =
  let n = read_size ?max t in
  List.init n (fun _ -> dec t)

let option t dec = if bool t then Some (dec t) else None
