(** XDR (RFC 4506) encoder.

    An encoder accumulates items in XDR wire format: big-endian, every item
    padded to a multiple of 4 bytes. Internally it is a scatter-gather
    structure: small fixed-size fields append to a contiguous buffer, while
    bulk opaques (at or above {!zero_copy_threshold} bytes) are recorded as
    {!Iovec.slice} views of the caller's buffer with no copy. {!to_iovec}
    exposes the message in that vectored form for the zero-copy send path;
    {!to_string}/{!to_bytes} flatten it when contiguous bytes are needed.

    Zero-copy contract: a [bytes] payload passed to {!opaque} (and friends)
    is aliased, not copied, when large. The caller must not mutate it until
    the message has been sent or flattened — trivially satisfied by the RPC
    stack, which encodes and sends synchronously within one call.

    Encoders are cheap to create and are intended to be used once per
    message. All [?max] arguments enforce protocol-declared size limits and
    raise {!Types.Error} ([Size_exceeded]) when violated. *)

type t

val zero_copy_threshold : int
(** Opaques at least this long (1 KiB) are recorded as slices rather than
    copied into the encoder's buffer. *)

val create : ?initial_size:int -> unit -> t
(** Fresh empty encoder. [initial_size] pre-sizes the internal buffer
    (default 256 bytes). *)

val length : t -> int
(** Number of bytes encoded so far. Always a multiple of 4. *)

val to_bytes : t -> bytes
(** Copy of the encoded contents. *)

val to_string : t -> string
(** Encoded contents as a string (copies). *)

val to_iovec : t -> Iovec.t
(** The encoded message as a list of slices, without flattening: bulk
    payloads appear as views of the caller's original buffers. The small
    accumulated fields are sealed into immutable strings, so the result
    remains valid if the encoder is later reused. *)

val append : t -> t -> unit
(** [append t src] splices [src]'s contents onto [t] without flattening:
    [src]'s slices are shared and only its pending small-field bytes are
    copied. [src] is unchanged and may be reused. *)

val reset : t -> unit
(** Clear the encoder for reuse. *)

(** {1 Primitive types} *)

val int32 : t -> int32 -> unit
val uint32 : t -> int32 -> unit
(** Unsigned 32-bit value carried in an [int32] (two's-complement bits). *)

val int : t -> int -> unit
(** Encode an OCaml [int] as a signed XDR int. Raises [Size_exceeded] if the
    value does not fit in 32 bits. *)

val uint : t -> int -> unit
(** Encode a non-negative OCaml [int] as an unsigned XDR int (< 2^32).
    Raises [Negative_size] for negative input. *)

val int64 : t -> int64 -> unit
(** XDR hyper. *)

val uint64 : t -> int64 -> unit
(** XDR unsigned hyper (bit pattern of the [int64]). *)

val bool : t -> bool -> unit
val float32 : t -> float -> unit
(** XDR single-precision float (precision is reduced to IEEE 754 binary32). *)

val float64 : t -> float -> unit
val enum : t -> int -> unit
(** Enums are encoded exactly like signed ints. *)

val void : t -> unit
(** Encodes nothing; exists so generated code can treat [void] uniformly. *)

(** {1 Opaque data and strings} *)

val opaque_fixed : t -> bytes -> unit
(** Fixed-length opaque: raw bytes plus zero padding, no length prefix. *)

val opaque_sub : ?max:int -> t -> bytes -> int -> int -> unit
(** [opaque_sub enc b off len] encodes [len] bytes of [b] starting at [off]
    as variable-length opaque (length prefix + data + padding) without
    copying the source into an intermediate buffer. *)

val opaque : ?max:int -> t -> bytes -> unit
(** Variable-length opaque: 4-byte length, data, zero padding. Large
    payloads are sliced, not copied (see the zero-copy contract above). *)

val opaque_slice : ?max:int -> t -> Iovec.slice -> unit
(** Variable-length opaque from an existing slice — the zero-copy relay
    path, e.g. forwarding a decoded payload view without materialising
    it. *)

val string : ?max:int -> t -> string -> unit
(** XDR string: identical wire format to variable-length opaque. *)

(** {1 Composite types} *)

val array_fixed : t -> (t -> 'a -> unit) -> 'a array -> unit
(** Fixed-length array: elements only, no count prefix. *)

val array : ?max:int -> t -> (t -> 'a -> unit) -> 'a array -> unit
(** Variable-length array: 4-byte count then elements. *)

val list : ?max:int -> t -> (t -> 'a -> unit) -> 'a list -> unit
(** Variable-length array encoded from a list. *)

val option : t -> (t -> 'a -> unit) -> 'a option -> unit
(** XDR optional-data ("pointer"): bool discriminant then the value. *)
