(* The encoder is a hybrid of a contiguous buffer (for the many small
   fixed-size fields of a message) and a list of out-of-line slices (for
   bulk opaques). Small items append to [buf]; a large opaque flushes the
   buffer as one slice and then records a zero-copy view of the payload, so
   a 64 MiB memcpy argument is never blitted at the XDR layer. *)

type t = {
  buf : Buffer.t;
  mutable parts : Iovec.slice list; (* reverse order *)
  mutable parts_len : int;
}

(* Opaques at least this long are recorded as slices instead of being
   copied into the buffer. Below it, the copy is cheaper than carrying an
   extra iovec entry through the datapath. *)
let zero_copy_threshold = 1024

let create ?(initial_size = 256) () =
  { buf = Buffer.create initial_size; parts = []; parts_len = 0 }

let length t = t.parts_len + Buffer.length t.buf

let flush t =
  if Buffer.length t.buf > 0 then begin
    let s = Buffer.contents t.buf in
    Buffer.clear t.buf;
    t.parts <- Iovec.slice s :: t.parts;
    t.parts_len <- t.parts_len + String.length s
  end

let add_slice t s =
  flush t;
  t.parts <- s :: t.parts;
  t.parts_len <- t.parts_len + s.Iovec.len

let to_iovec t =
  flush t;
  List.rev t.parts

let to_bytes t =
  match t.parts with
  | [] -> Buffer.to_bytes t.buf
  | _ ->
      let b = Bytes.create (length t) in
      Iovec.blit_to_bytes (to_iovec t) b 0;
      b

let to_string t =
  match t.parts with
  | [] -> Buffer.contents t.buf
  | _ -> Bytes.unsafe_to_string (to_bytes t)

let reset t =
  Buffer.clear t.buf;
  t.parts <- [];
  t.parts_len <- 0

(* Splice the contents of [src] onto [t] without flattening: [src]'s slices
   are shared, only its pending small-field bytes are copied. [src] may be
   reset and reused afterwards — the flushed strings are immutable and the
   payload slices point at the original payloads, not at [src]. *)
let append t src =
  match (src.parts, Buffer.length src.buf) with
  | [], 0 -> ()
  | [], _ -> Buffer.add_buffer t.buf src.buf
  | _ ->
      flush t;
      List.iter (fun s -> add_slice t s) (List.rev src.parts);
      Buffer.add_buffer t.buf src.buf

let int32 t v = Buffer.add_int32_be t.buf v
let uint32 = int32

let int t v =
  if v > 0x7fffffff || v < -0x80000000 then
    Types.fail (Types.Size_exceeded { limit = 0x7fffffff; requested = v });
  int32 t (Int32.of_int v)

let uint t v =
  if v < 0 then Types.fail (Types.Negative_size v);
  if v > 0xffffffff then
    Types.fail (Types.Size_exceeded { limit = 0xffffffff; requested = v });
  int32 t (Int32.of_int v)

let int64 t v = Buffer.add_int64_be t.buf v
let uint64 = int64
let bool t b = int32 t (if b then 1l else 0l)
let float32 t f = int32 t (Int32.bits_of_float f)
let float64 t f = int64 t (Int64.bits_of_float f)
let enum t v = int t v
let void (_ : t) = ()

let pad t n =
  for _ = 1 to Types.padding_of n do
    Buffer.add_char t.buf '\000'
  done

let opaque_fixed t b =
  if Bytes.length b >= zero_copy_threshold then
    add_slice t (Iovec.of_bytes b)
  else Buffer.add_bytes t.buf b;
  pad t (Bytes.length b)

let check_max ?max len =
  match max with
  | Some m when len > m -> Types.fail (Types.Size_exceeded { limit = m; requested = len })
  | _ -> ()

let opaque_sub ?max t b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Xdr.Encode.opaque_sub";
  check_max ?max len;
  uint t len;
  if len >= zero_copy_threshold then add_slice t (Iovec.of_bytes ~off ~len b)
  else Buffer.add_subbytes t.buf b off len;
  pad t len

let opaque ?max t b = opaque_sub ?max t b 0 (Bytes.length b)

let opaque_slice ?max t s =
  let len = s.Iovec.len in
  check_max ?max len;
  uint t len;
  if len >= zero_copy_threshold then add_slice t s
  else Buffer.add_substring t.buf s.Iovec.base s.Iovec.off len;
  pad t len

let string ?max t s =
  let len = String.length s in
  check_max ?max len;
  uint t len;
  if len >= zero_copy_threshold then add_slice t (Iovec.slice s)
  else Buffer.add_string t.buf s;
  pad t len

let array_fixed t enc a = Array.iter (fun x -> enc t x) a

let array ?max t enc a =
  let len = Array.length a in
  check_max ?max len;
  uint t len;
  array_fixed t enc a

let list ?max t enc l =
  let len = List.length l in
  check_max ?max len;
  uint t len;
  List.iter (fun x -> enc t x) l

let option t enc = function
  | None -> bool t false
  | Some v ->
      bool t true;
      enc t v
