(* ALL_CAPS names (enum items, consts) become snake_case; mixed-case names
   (rpc_cudaGetDeviceCount) only need a lowercase first letter to be valid
   OCaml value identifiers. *)
let lowercase_ident s =
  let all_caps =
    String.for_all
      (fun c -> (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
      s
  in
  if all_caps then String.lowercase_ascii s else String.uncapitalize_ascii s
let capitalize_ident s = String.capitalize_ascii s

let ocaml_type_of_base = function
  | Ast.Int | Ast.Uint -> "int"
  | Ast.Hyper | Ast.Uhyper -> "int64"
  | Ast.Float | Ast.Double -> "float"
  | Ast.Bool -> "bool"
  | Ast.Named_type name -> lowercase_ident name

(* Expressions that encode/decode one base-typed value. [v] names the value
   being encoded; decoders are expressions evaluating to the value. *)
let encode_base ty v =
  match ty with
  | Ast.Int -> Printf.sprintf "Xdr.Encode.int enc %s" v
  | Ast.Uint -> Printf.sprintf "Xdr.Encode.uint enc %s" v
  | Ast.Hyper -> Printf.sprintf "Xdr.Encode.int64 enc %s" v
  | Ast.Uhyper -> Printf.sprintf "Xdr.Encode.uint64 enc %s" v
  | Ast.Float -> Printf.sprintf "Xdr.Encode.float32 enc %s" v
  | Ast.Double -> Printf.sprintf "Xdr.Encode.float64 enc %s" v
  | Ast.Bool -> Printf.sprintf "Xdr.Encode.bool enc %s" v
  | Ast.Named_type name ->
      Printf.sprintf "xdr_encode_%s enc %s" (lowercase_ident name) v

let decode_base = function
  | Ast.Int -> "Xdr.Decode.int dec"
  | Ast.Uint -> "Xdr.Decode.uint dec"
  | Ast.Hyper -> "Xdr.Decode.int64 dec"
  | Ast.Uhyper -> "Xdr.Decode.uint64 dec"
  | Ast.Float -> "Xdr.Decode.float32 dec"
  | Ast.Double -> "Xdr.Decode.float64 dec"
  | Ast.Bool -> "Xdr.Decode.bool dec"
  | Ast.Named_type name -> Printf.sprintf "xdr_decode_%s dec" (lowercase_ident name)

(* element encoders as functions, for arrays/options *)
let encode_base_fn = function
  | Ast.Int -> "Xdr.Encode.int"
  | Ast.Uint -> "Xdr.Encode.uint"
  | Ast.Hyper -> "Xdr.Encode.int64"
  | Ast.Uhyper -> "Xdr.Encode.uint64"
  | Ast.Float -> "Xdr.Encode.float32"
  | Ast.Double -> "Xdr.Encode.float64"
  | Ast.Bool -> "Xdr.Encode.bool"
  | Ast.Named_type name -> Printf.sprintf "xdr_encode_%s" (lowercase_ident name)

let decode_base_fn = function
  | Ast.Int -> "Xdr.Decode.int"
  | Ast.Uint -> "Xdr.Decode.uint"
  | Ast.Hyper -> "Xdr.Decode.int64"
  | Ast.Uhyper -> "Xdr.Decode.uint64"
  | Ast.Float -> "Xdr.Decode.float32"
  | Ast.Double -> "Xdr.Decode.float64"
  | Ast.Bool -> "Xdr.Decode.bool"
  | Ast.Named_type name -> Printf.sprintf "xdr_decode_%s" (lowercase_ident name)

let ocaml_type_of_decl = function
  | Ast.Void -> "unit"
  | Ast.Scalar (ty, _) -> ocaml_type_of_base ty
  | Ast.Fixed_array (ty, _, _) | Ast.Var_array (ty, _, _) ->
      ocaml_type_of_base ty ^ " array"
  | Ast.Fixed_opaque _ | Ast.Var_opaque _ -> "bytes"
  | Ast.String _ -> "string"
  | Ast.Optional (ty, _) -> ocaml_type_of_base ty ^ " option"

let max_clause env = function
  | Some v -> Printf.sprintf " ~max:%Ld" (Check.resolve env v)
  | None -> ""

(* encode declaration [d] whose OCaml value is expression [v] *)
let encode_decl env d v =
  match d with
  | Ast.Void -> "()"
  | Ast.Scalar (ty, _) -> encode_base ty v
  | Ast.Fixed_array (ty, _, _) ->
      Printf.sprintf "Xdr.Encode.array_fixed enc %s %s" (encode_base_fn ty) v
  | Ast.Var_array (ty, _, m) ->
      Printf.sprintf "Xdr.Encode.array%s enc %s %s" (max_clause env m)
        (encode_base_fn ty) v
  | Ast.Fixed_opaque (_, _) -> Printf.sprintf "Xdr.Encode.opaque_fixed enc %s" v
  | Ast.Var_opaque (_, m) ->
      Printf.sprintf "Xdr.Encode.opaque%s enc %s" (max_clause env m) v
  | Ast.String (_, m) ->
      Printf.sprintf "Xdr.Encode.string%s enc %s" (max_clause env m) v
  | Ast.Optional (ty, _) ->
      Printf.sprintf "Xdr.Encode.option enc %s %s" (encode_base_fn ty) v

let decode_decl env d =
  match d with
  | Ast.Void -> "()"
  | Ast.Scalar (ty, _) -> decode_base ty
  | Ast.Fixed_array (ty, _, n) ->
      Printf.sprintf "Xdr.Decode.array_fixed dec %s %Ld" (decode_base_fn ty)
        (Check.resolve env n)
  | Ast.Var_array (ty, _, m) ->
      Printf.sprintf "Xdr.Decode.array%s dec %s" (max_clause env m)
        (decode_base_fn ty)
  | Ast.Fixed_opaque (_, n) ->
      Printf.sprintf "Xdr.Decode.opaque_fixed dec %Ld" (Check.resolve env n)
  | Ast.Var_opaque (_, m) ->
      Printf.sprintf "Xdr.Decode.opaque%s dec" (max_clause env m)
  | Ast.String (_, m) -> Printf.sprintf "Xdr.Decode.string%s dec" (max_clause env m)
  | Ast.Optional (ty, _) ->
      Printf.sprintf "Xdr.Decode.option dec %s" (decode_base_fn ty)

let gen_const buf name v =
  Printf.bprintf buf "let const_%s = %LdL\n" (lowercase_ident name) v

let gen_enum buf env (e : Ast.enum_def) =
  let name = lowercase_ident e.Ast.enum_name in
  Printf.bprintf buf "(* enum %s *)\ntype %s = int\n" e.Ast.enum_name name;
  List.iter
    (fun (item, v) ->
      Printf.bprintf buf "let %s = %Ld\n" (lowercase_ident item)
        (Check.resolve env v))
    e.Ast.enum_items;
  let values =
    List.map (fun (_, v) -> Int64.to_string (Check.resolve env v)) e.Ast.enum_items
  in
  Printf.bprintf buf
    "let xdr_encode_%s enc (v : %s) = Xdr.Encode.enum enc v\n" name name;
  Printf.bprintf buf
    "let xdr_decode_%s dec : %s =\n  Xdr.Decode.enum dec ~check:(fun v -> \
     List.mem v [%s])\n\n"
    name name
    (String.concat "; " values)

let gen_typedef buf env (t : Ast.typedef_def) =
  let d = t.Ast.typedef_decl in
  match Ast.decl_name d with
  | None -> ()
  | Some raw_name ->
      let name = lowercase_ident raw_name in
      Printf.bprintf buf "(* typedef %s *)\ntype %s = %s\n" raw_name name
        (ocaml_type_of_decl d);
      Printf.bprintf buf "let xdr_encode_%s enc (v : %s) = %s\n" name name
        (encode_decl env d "v");
      Printf.bprintf buf "let xdr_decode_%s dec : %s = %s\n\n" name name
        (decode_decl env d)

let gen_struct buf env (s : Ast.struct_def) =
  let name = lowercase_ident s.Ast.struct_name in
  let fields =
    List.filter_map
      (fun d -> Option.map (fun n -> (lowercase_ident n, d)) (Ast.decl_name d))
      s.Ast.struct_fields
  in
  Printf.bprintf buf "(* struct %s *)\ntype %s = {\n" s.Ast.struct_name name;
  List.iter
    (fun (fname, d) ->
      Printf.bprintf buf "  %s : %s;\n" fname (ocaml_type_of_decl d))
    fields;
  Printf.bprintf buf "}\n";
  Printf.bprintf buf "let xdr_encode_%s enc (v : %s) =\n" name name;
  List.iter
    (fun (fname, d) ->
      Printf.bprintf buf "  %s;\n" (encode_decl env d ("v." ^ fname)))
    fields;
  Printf.bprintf buf "  ()\n";
  Printf.bprintf buf "let xdr_decode_%s dec : %s =\n" name name;
  List.iter
    (fun (fname, d) ->
      Printf.bprintf buf "  let %s = %s in\n" fname (decode_decl env d))
    fields;
  Printf.bprintf buf "  { %s }\n\n" (String.concat "; " (List.map fst fields))

let union_ctor_name value_expr =
  match value_expr with
  | Ast.Named n -> capitalize_ident (lowercase_ident n)
  | Ast.Lit n ->
      if n >= 0L then Printf.sprintf "Case_%Ld" n
      else Printf.sprintf "Case_neg_%Ld" (Int64.neg n)

let gen_union buf env (u : Ast.union_def) =
  let name = lowercase_ident u.Ast.union_name in
  Printf.bprintf buf "(* union %s *)\ntype %s =\n" u.Ast.union_name name;
  let arm_payload d =
    match d with Ast.Void -> "" | _ -> " of " ^ ocaml_type_of_decl d
  in
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          Printf.bprintf buf "  | %s%s\n" (union_ctor_name v)
            (arm_payload c.Ast.case_decl))
        c.Ast.case_values)
    u.Ast.union_cases;
  (match u.Ast.union_default with
  | Some d -> Printf.bprintf buf "  | Default_case of int%s\n"
                (match d with Ast.Void -> "" | _ -> " * " ^ ocaml_type_of_decl d)
  | None -> ());
  (* encoder *)
  Printf.bprintf buf "let xdr_encode_%s enc (v : %s) =\n  match v with\n" name
    name;
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          let disc = Check.resolve env v in
          match c.Ast.case_decl with
          | Ast.Void ->
              Printf.bprintf buf
                "  | %s -> Xdr.Encode.int enc %Ld\n" (union_ctor_name v) disc
          | d ->
              Printf.bprintf buf
                "  | %s x -> Xdr.Encode.int enc %Ld; %s\n" (union_ctor_name v)
                disc (encode_decl env d "x"))
        c.Ast.case_values)
    u.Ast.union_cases;
  (match u.Ast.union_default with
  | Some Ast.Void ->
      Printf.bprintf buf "  | Default_case d -> Xdr.Encode.int enc d\n"
  | Some d ->
      Printf.bprintf buf "  | Default_case (d, x) -> Xdr.Encode.int enc d; %s\n"
        (encode_decl env d "x")
  | None -> ());
  (* decoder *)
  Printf.bprintf buf
    "let xdr_decode_%s dec : %s =\n  match Xdr.Decode.int dec with\n" name name;
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          let disc = Check.resolve env v in
          match c.Ast.case_decl with
          | Ast.Void ->
              Printf.bprintf buf "  | %Ld -> %s\n" disc (union_ctor_name v)
          | d ->
              Printf.bprintf buf "  | %Ld -> %s (%s)\n" disc (union_ctor_name v)
                (decode_decl env d))
        c.Ast.case_values)
    u.Ast.union_cases;
  (match u.Ast.union_default with
  | Some Ast.Void -> Printf.bprintf buf "  | d -> Default_case d\n"
  | Some d -> Printf.bprintf buf "  | d -> Default_case (d, %s)\n" (decode_decl env d)
  | None ->
      Printf.bprintf buf
        "  | d -> Xdr.Types.fail (Xdr.Types.Invalid_union (Int32.of_int d))\n");
  Printf.bprintf buf "\n"

let gen_procedure_client buf env (p : Ast.procedure_def) =
  let fname = lowercase_ident p.Ast.proc_name in
  let proc = Check.resolve env p.Ast.proc_number in
  let args = List.mapi (fun i ty -> (Printf.sprintf "a%d" i, ty)) p.Ast.proc_args in
  let params =
    match args with
    | [] -> "()"
    | _ ->
        String.concat " "
          (List.map
             (fun (n, ty) -> Printf.sprintf "(%s : %s)" n (ocaml_type_of_base ty))
             args)
  in
  let encode_body =
    match args with
    | [] -> "fun _enc -> ()"
    | _ ->
        "fun enc -> "
        ^ String.concat "; " (List.map (fun (n, ty) -> encode_base ty n) args)
  in
  (* Procedure numbers are exported so hand-optimised stubs (e.g. the
     zero-copy bulk-transfer paths in Cricket.Client) can issue calls for
     the same procedures without going through the generated codecs. *)
  Printf.bprintf buf "    let proc_%s = %Ld\n" fname proc;
  (* A void-result procedure is one-way (RFC 5531 §8 batching): the stub
     sends the record and returns without waiting for a reply. *)
  match p.Ast.proc_result with
  | None ->
      Printf.bprintf buf
        "    let %s t %s =\n      Oncrpc.Client.call_oneway t ~proc:%Ld (%s)\n"
        fname params proc encode_body
  | Some ty ->
      let decode_body = Printf.sprintf "(fun dec -> %s)" (decode_base ty) in
      Printf.bprintf buf
        "    let %s t %s =\n      Oncrpc.Client.call t ~proc:%Ld (%s) %s\n"
        fname params proc encode_body decode_body

let gen_version buf env (prog : Ast.program_def) (v : Ast.version_def) =
  let prog_num = Check.resolve env prog.Ast.program_number in
  let vers_num = Check.resolve env v.Ast.version_number in
  let module_name =
    capitalize_ident (lowercase_ident prog.Ast.program_name)
    ^ Printf.sprintf "_v%Ld" vers_num
  in
  Printf.bprintf buf "module %s = struct\n" module_name;
  Printf.bprintf buf "  let program_number = %Ld\n" prog_num;
  Printf.bprintf buf "  let version_number = %Ld\n\n" vers_num;
  (* Client *)
  Printf.bprintf buf "  module Client = struct\n";
  Printf.bprintf buf "    type t = Oncrpc.Client.t\n";
  Printf.bprintf buf
    "    let create ?cred ?fragment_size ~transport () =\n\
    \      Oncrpc.Client.create ?cred ?fragment_size ~transport ~prog:%Ld \
     ~vers:%Ld ()\n"
    prog_num vers_num;
  List.iter (gen_procedure_client buf env) v.Ast.version_procedures;
  Printf.bprintf buf "  end\n\n";
  (* Server *)
  Printf.bprintf buf "  module Server = struct\n";
  Printf.bprintf buf "    type implementation = {\n";
  List.iter
    (fun p ->
      let arg_tys =
        match p.Ast.proc_args with
        | [] -> [ "unit" ]
        | l -> List.map ocaml_type_of_base l
      in
      let res_ty =
        match p.Ast.proc_result with
        | None -> "unit"
        | Some ty -> ocaml_type_of_base ty
      in
      Printf.bprintf buf "      %s : %s -> %s;\n"
        (lowercase_ident p.Ast.proc_name)
        (String.concat " -> " arg_tys) res_ty)
    v.Ast.version_procedures;
  Printf.bprintf buf "    }\n";
  Printf.bprintf buf
    "    let register (impl : implementation) server =\n\
    \      Oncrpc.Server.register server ~prog:%Ld ~vers:%Ld [\n"
    prog_num vers_num;
  List.iter
    (fun p ->
      let proc = Check.resolve env p.Ast.proc_number in
      let fname = lowercase_ident p.Ast.proc_name in
      let decodes =
        match p.Ast.proc_args with
        | [] -> [ "()" ]
        | l -> List.map decode_base l
      in
      let binds =
        List.mapi (fun i d -> Printf.sprintf "let a%d = %s in" i d) decodes
      in
      let apply =
        String.concat " "
          (List.mapi (fun i _ -> Printf.sprintf "a%d" i) decodes)
      in
      let encode_result =
        match p.Ast.proc_result with
        | None -> "ignore r"
        | Some ty -> encode_base ty "r"
      in
      Printf.bprintf buf
        "        (%Ld, (fun dec enc -> ignore dec; %s let r = impl.%s %s in \
         ignore enc; %s));\n"
        proc
        (String.concat " " binds)
        fname apply encode_result)
    v.Ast.version_procedures;
  Printf.bprintf buf "      ]";
  (* Void-result procedures never send replies (one-way). *)
  let oneway =
    List.filter_map
      (fun p ->
        match p.Ast.proc_result with
        | None -> Some (Int64.to_string (Check.resolve env p.Ast.proc_number))
        | Some _ -> None)
      v.Ast.version_procedures
  in
  (match oneway with
  | [] -> ()
  | procs ->
      Printf.bprintf buf
        ";\n      Oncrpc.Server.set_oneway server ~prog:%Ld ~vers:%Ld [ %s ]"
        prog_num vers_num (String.concat "; " procs));
  Printf.bprintf buf "\n  end\nend\n\n"

let generate ?(source_name = "<rpcl>") env =
  let buf = Buffer.create 8192 in
  Printf.bprintf buf
    "(* Generated by rpclgen from %s. Do not edit by hand. *)\n\n" source_name;
  Printf.bprintf buf "[@@@warning \"-27-32-33-34-37-39\"]\n\n";
  List.iter
    (fun def ->
      match def with
      | Ast.Const (name, v) -> gen_const buf name v
      | Ast.Enum e -> gen_enum buf env e
      | Ast.Struct s -> gen_struct buf env s
      | Ast.Union u -> gen_union buf env u
      | Ast.Typedef t -> gen_typedef buf env t
      | Ast.Program _ -> ())
    (Check.spec env);
  List.iter
    (fun (p : Ast.program_def) ->
      List.iter (fun v -> gen_version buf env p v) p.Ast.program_versions)
    (Check.programs env);
  Buffer.contents buf

(* --- interface generation --- *)

let sig_enum buf env (e : Ast.enum_def) =
  let name = lowercase_ident e.Ast.enum_name in
  Printf.bprintf buf "(** enum %s *)\ntype %s = int\n" e.Ast.enum_name name;
  List.iter
    (fun (item, v) ->
      Printf.bprintf buf "val %s : int (* = %Ld *)\n" (lowercase_ident item)
        (Check.resolve env v))
    e.Ast.enum_items;
  Printf.bprintf buf "val xdr_encode_%s : Xdr.Encode.t -> %s -> unit\n" name name;
  Printf.bprintf buf "val xdr_decode_%s : Xdr.Decode.t -> %s\n\n" name name

let sig_typedef buf (t : Ast.typedef_def) =
  match Ast.decl_name t.Ast.typedef_decl with
  | None -> ()
  | Some raw ->
      let name = lowercase_ident raw in
      Printf.bprintf buf "type %s = %s\n" name
        (ocaml_type_of_decl t.Ast.typedef_decl);
      Printf.bprintf buf "val xdr_encode_%s : Xdr.Encode.t -> %s -> unit\n" name
        name;
      Printf.bprintf buf "val xdr_decode_%s : Xdr.Decode.t -> %s\n\n" name name

let sig_struct buf (s : Ast.struct_def) =
  let name = lowercase_ident s.Ast.struct_name in
  Printf.bprintf buf "type %s = {\n" name;
  List.iter
    (fun d ->
      match Ast.decl_name d with
      | Some f ->
          Printf.bprintf buf "  %s : %s;\n" (lowercase_ident f)
            (ocaml_type_of_decl d)
      | None -> ())
    s.Ast.struct_fields;
  Printf.bprintf buf "}\n";
  Printf.bprintf buf "val xdr_encode_%s : Xdr.Encode.t -> %s -> unit\n" name name;
  Printf.bprintf buf "val xdr_decode_%s : Xdr.Decode.t -> %s\n\n" name name

let sig_union buf (u : Ast.union_def) =
  let name = lowercase_ident u.Ast.union_name in
  Printf.bprintf buf "type %s =\n" name;
  let arm_payload d =
    match d with Ast.Void -> "" | _ -> " of " ^ ocaml_type_of_decl d
  in
  List.iter
    (fun c ->
      List.iter
        (fun v ->
          Printf.bprintf buf "  | %s%s\n" (union_ctor_name v)
            (arm_payload c.Ast.case_decl))
        c.Ast.case_values)
    u.Ast.union_cases;
  (match u.Ast.union_default with
  | Some d ->
      Printf.bprintf buf "  | Default_case of int%s\n"
        (match d with Ast.Void -> "" | _ -> " * " ^ ocaml_type_of_decl d)
  | None -> ());
  Printf.bprintf buf "val xdr_encode_%s : Xdr.Encode.t -> %s -> unit\n" name name;
  Printf.bprintf buf "val xdr_decode_%s : Xdr.Decode.t -> %s\n\n" name name

let sig_version buf env (prog : Ast.program_def) (v : Ast.version_def) =
  let vers_num = Check.resolve env v.Ast.version_number in
  let module_name =
    capitalize_ident (lowercase_ident prog.Ast.program_name)
    ^ Printf.sprintf "_v%Ld" vers_num
  in
  Printf.bprintf buf "module %s : sig\n" module_name;
  Printf.bprintf buf "  val program_number : int\n";
  Printf.bprintf buf "  val version_number : int\n\n";
  Printf.bprintf buf "  module Client : sig\n";
  Printf.bprintf buf "    type t = Oncrpc.Client.t\n";
  Printf.bprintf buf
    "    val create :\n\
    \      ?cred:Oncrpc.Auth.t -> ?fragment_size:int ->\n\
    \      transport:Oncrpc.Transport.t -> unit -> t\n";
  List.iter
    (fun (p : Ast.procedure_def) ->
      let args =
        match p.Ast.proc_args with
        | [] -> [ "unit" ]
        | l -> List.map ocaml_type_of_base l
      in
      let res =
        match p.Ast.proc_result with
        | None -> "unit"
        | Some ty -> ocaml_type_of_base ty
      in
      Printf.bprintf buf "    val proc_%s : int\n"
        (lowercase_ident p.Ast.proc_name);
      Printf.bprintf buf "    val %s : t -> %s -> %s\n"
        (lowercase_ident p.Ast.proc_name)
        (String.concat " -> " args) res)
    v.Ast.version_procedures;
  Printf.bprintf buf "  end\n\n";
  Printf.bprintf buf "  module Server : sig\n";
  Printf.bprintf buf "    type implementation = {\n";
  List.iter
    (fun (p : Ast.procedure_def) ->
      let args =
        match p.Ast.proc_args with
        | [] -> [ "unit" ]
        | l -> List.map ocaml_type_of_base l
      in
      let res =
        match p.Ast.proc_result with
        | None -> "unit"
        | Some ty -> ocaml_type_of_base ty
      in
      Printf.bprintf buf "      %s : %s -> %s;\n"
        (lowercase_ident p.Ast.proc_name)
        (String.concat " -> " args) res)
    v.Ast.version_procedures;
  Printf.bprintf buf "    }\n";
  Printf.bprintf buf
    "    val register : implementation -> Oncrpc.Server.t -> unit\n";
  Printf.bprintf buf "  end\nend\n\n"

let generate_mli ?(source_name = "<rpcl>") env =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "(* Generated by rpclgen from %s. Do not edit by hand. *)\n\n" source_name;
  List.iter
    (fun def ->
      match def with
      | Ast.Const (name, v) ->
          Printf.bprintf buf "val const_%s : int64 (* = %Ld *)\n\n"
            (lowercase_ident name) v
      | Ast.Enum e -> sig_enum buf env e
      | Ast.Struct s -> sig_struct buf s
      | Ast.Union u -> sig_union buf u
      | Ast.Typedef t -> sig_typedef buf t
      | Ast.Program _ -> ())
    (Check.spec env);
  List.iter
    (fun (p : Ast.program_def) ->
      List.iter (fun v -> sig_version buf env p v) p.Ast.program_versions)
    (Check.programs env);
  Buffer.contents buf
