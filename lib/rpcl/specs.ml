let cricket_program_number = 0x20000001
let cricket_version_number = 1

let cricket =
  {x|
/*
 * Cricket GPU-forwarding RPC interface.
 *
 * Every CUDA API the Cricket server executes on behalf of remote clients
 * is declared here. Client stubs and the server dispatch skeleton are
 * generated from this file; adding a procedure makes it immediately
 * callable from applications.
 */

const RPC_CD_PROG = 0x20000001;

enum cuda_error {
    CUDA_SUCCESS                 = 0,
    CUDA_ERROR_INVALID_VALUE     = 1,
    CUDA_ERROR_MEMORY_ALLOCATION = 2,
    CUDA_ERROR_INVALID_DEVICE    = 101,
    CUDA_ERROR_INVALID_HANDLE    = 400,
    CUDA_ERROR_NOT_FOUND         = 500,
    CUDA_ERROR_NOT_READY         = 600,
    CUDA_ERROR_LAUNCH_FAILURE    = 719,
    CUDA_ERROR_UNKNOWN           = 999
};

/* Bulk payloads (kernel images, memcpy data, packed kernel parameters). */
typedef opaque mem_data<>;
typedef string str_t<4096>;

struct void_result   { int err; };
struct int_result    { int err; int data; };
struct u64_result    { int err; unsigned hyper data; };
struct float_result  { int err; float data; };
struct mem_result    { int err; mem_data data; };

struct meminfo_result {
    int err;
    unsigned hyper free_bytes;
    unsigned hyper total_bytes;
};

struct device_properties {
    str_t name;
    unsigned hyper total_global_mem;
    int multi_processor_count;
    int clock_rate_khz;
    int compute_major;
    int compute_minor;
    unsigned hyper memory_bandwidth;
};

struct prop_result {
    int err;
    device_properties props;
};

struct global_result {
    int err;
    unsigned hyper ptr;
    unsigned hyper size;
};

/* cuLaunchKernel: the packed parameter buffer travels separately as
 * mem_data, laid out according to the kernel's cubin metadata. */
struct launch_config {
    unsigned hyper function_handle;
    unsigned int grid_x;
    unsigned int grid_y;
    unsigned int grid_z;
    unsigned int block_x;
    unsigned int block_y;
    unsigned int block_z;
    unsigned int shared_mem_bytes;
    unsigned hyper stream;
};

struct sgemm_args {
    unsigned hyper handle;
    int m;
    int n;
    int k;
    float alpha;
    unsigned hyper a;
    int lda;
    unsigned hyper b;
    int ldb;
    float beta;
    unsigned hyper c;
    int ldc;
};

struct sgemv_args {
    unsigned hyper handle;
    int m;
    int n;
    float alpha;
    unsigned hyper a;
    int lda;
    unsigned hyper x;
    int incx;
    float beta;
    unsigned hyper y;
    int incy;
};

struct dot_args {
    unsigned hyper handle;
    int n;
    unsigned hyper x;
    int incx;
    unsigned hyper y;
    int incy;
};

struct scal_args {
    unsigned hyper handle;
    int n;
    float alpha;
    unsigned hyper x;
    int incx;
};

struct nrm2_args {
    unsigned hyper handle;
    int n;
    unsigned hyper x;
    int incx;
};

struct getrf_buffer_args {
    unsigned hyper handle;
    int m;
    int n;
    unsigned hyper a;
    int lda;
};

struct getrf_args {
    unsigned hyper handle;
    int m;
    int n;
    unsigned hyper a;
    int lda;
    unsigned hyper workspace;
    unsigned hyper ipiv;
};

struct getrs_args {
    unsigned hyper handle;
    int n;
    int nrhs;
    unsigned hyper a;
    int lda;
    unsigned hyper ipiv;
    unsigned hyper b;
    int ldb;
};

program RPC_CD_PROG_DEF {
    version RPC_CD_VERS {
        /* device management */
        int_result   rpc_cudaGetDeviceCount(void)                    = 1;
        void_result  rpc_cudaSetDevice(int)                          = 2;
        int_result   rpc_cudaGetDevice(void)                         = 3;
        prop_result  rpc_cudaGetDeviceProperties(int)                = 4;
        void_result  rpc_cudaDeviceSynchronize(void)                 = 5;
        void_result  rpc_cudaDeviceReset(void)                       = 6;

        /* memory management */
        u64_result     rpc_cudaMalloc(unsigned hyper)                          = 10;
        void_result    rpc_cudaFree(unsigned hyper)                            = 11;
        void_result    rpc_cudaMemcpyHtoD(unsigned hyper, mem_data)            = 12;
        mem_result     rpc_cudaMemcpyDtoH(unsigned hyper, unsigned hyper)      = 13;
        void_result    rpc_cudaMemcpyDtoD(unsigned hyper, unsigned hyper,
                                          unsigned hyper)                      = 14;
        void_result    rpc_cudaMemset(unsigned hyper, int, unsigned hyper)     = 15;
        meminfo_result rpc_cudaMemGetInfo(void)                                = 16;

        /* asynchronous (stream-ordered) memory operations; void results
         * make these one-way "batched" calls: no reply record is sent and
         * errors surface at the next synchronize (cudaGetLastError style) */
        void rpc_cudaMemcpyHtoDAsync(unsigned hyper, mem_data,
                                     unsigned hyper)                           = 17;
        void rpc_cudaMemsetAsync(unsigned hyper, int, unsigned hyper,
                                 unsigned hyper)                               = 18;
        mem_result rpc_cudaMemcpyDtoHAsync(unsigned hyper, unsigned hyper,
                                           unsigned hyper)                     = 19;

        /* streams and events */
        u64_result   rpc_cudaStreamCreate(void)                          = 20;
        void_result  rpc_cudaStreamDestroy(unsigned hyper)               = 21;
        void_result  rpc_cudaStreamSynchronize(unsigned hyper)           = 22;
        u64_result   rpc_cudaEventCreate(void)                           = 23;
        void_result  rpc_cudaEventDestroy(unsigned hyper)                = 24;
        void_result  rpc_cudaEventRecord(unsigned hyper, unsigned hyper) = 25;
        void_result  rpc_cudaEventSynchronize(unsigned hyper)            = 26;
        float_result rpc_cudaEventElapsedTime(unsigned hyper,
                                              unsigned hyper)            = 27;
        void         rpc_cudaStreamWaitEvent(unsigned hyper,
                                             unsigned hyper)             = 28;
        void         rpc_cudaEventRecordAsync(unsigned hyper,
                                              unsigned hyper)            = 29;

        /* module API: kernels loaded from (possibly compressed) cubins */
        u64_result    rpc_cuModuleLoadData(mem_data)                    = 30;
        void_result   rpc_cuModuleUnload(unsigned hyper)                = 31;
        u64_result    rpc_cuModuleGetFunction(unsigned hyper, str_t)    = 32;
        global_result rpc_cuModuleGetGlobal(unsigned hyper, str_t)      = 33;
        void_result   rpc_cuLaunchKernel(launch_config, mem_data)       = 34;
        void          rpc_cuLaunchKernelAsync(launch_config, mem_data)  = 35;

        /* cuBLAS */
        u64_result   rpc_cublasCreate(void)               = 40;
        void_result  rpc_cublasDestroy(unsigned hyper)    = 41;
        void_result  rpc_cublasSgemm(sgemm_args)          = 42;
        void_result  rpc_cublasSgemv(sgemv_args)          = 43;
        float_result rpc_cublasSdot(dot_args)             = 44;
        void_result  rpc_cublasSscal(scal_args)           = 45;
        float_result rpc_cublasSnrm2(nrm2_args)           = 46;

        /* cuSOLVER dense */
        u64_result   rpc_cusolverDnCreate(void)                        = 50;
        void_result  rpc_cusolverDnDestroy(unsigned hyper)             = 51;
        int_result   rpc_cusolverDnSgetrf_bufferSize(getrf_buffer_args) = 52;
        int_result   rpc_cusolverDnSgetrf(getrf_args)                  = 53;
        int_result   rpc_cusolverDnSgetrs(getrs_args)                  = 54;

        /* checkpoint / restart of the server-side GPU state */
        void_result  rpc_checkpoint(str_t) = 60;
        void_result  rpc_restore(str_t)    = 61;

        /* live migration (pre-copy): the source server drives these
         * against the destination. begin opens an inbound migration for a
         * tenant, base installs the full snapshot, delta applies a
         * dirty-page increment, commit hands over the session (lease blob
         * rides along), abort discards any half-copied state. */
        void_result  rpc_migrate_begin(str_t)            = 70;
        void_result  rpc_migrate_base(mem_data)          = 71;
        void_result  rpc_migrate_delta(mem_data)         = 72;
        void_result  rpc_migrate_commit(str_t, mem_data) = 73;
        void_result  rpc_migrate_abort(str_t)            = 74;
    } = 1;
} = 0x20000001;
|x}

let builtins = [ ("cricket", cricket) ]
