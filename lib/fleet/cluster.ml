module Time = Simnet.Time

type policy = Round_robin | Cost_aware

let policy_name = function Round_robin -> "rr" | Cost_aware -> "cost"

type error =
  | No_compatible_image
  | Bad_module of string
  | Unknown_kernel of string

let error_message = function
  | No_compatible_image -> "no device has a compatible SASS image"
  | Bad_module e -> Printf.sprintf "bad module: %s" e
  | Unknown_kernel n -> Printf.sprintf "unknown kernel %s" n

type dev = {
  id : int;
  device : Gpusim.Device.t;
  gpu : Gpusim.Gpu.t;
  mutable busy_until : Time.t;
  mutable launches : int;
  mutable busy : Time.t;
  mutable seq : int;
  mutable events : unit Par.Merge.event list;  (* newest first *)
}

type t = {
  devs : dev array;
  policy : policy;
  mutable now : Time.t;
  mutable rr : int;
  mutable incompatible : int;
  mutable obs : Obs.Recorder.t;
}

let create ?(policy = Cost_aware) devices =
  if devices = [] then invalid_arg "Fleet.Cluster.create: no devices";
  let devs =
    Array.of_list
      (List.mapi
         (fun id device ->
           {
             id;
             device;
             (* Uncapped clamp: OOM behaviour must track the catalog's
                total_global_mem per device, and the lazily-grown backing
                store makes the large capacity free until touched. *)
             gpu = Gpusim.Gpu.create ~capacity_clamp:max_int device;
             busy_until = Time.zero;
             launches = 0;
             busy = Time.zero;
             seq = 0;
             events = [];
           })
         devices)
  in
  {
    devs;
    policy;
    now = Time.zero;
    rr = 0;
    incompatible = 0;
    obs = Obs.Recorder.null;
  }

let policy t = t.policy
let device_count t = Array.length t.devs
let now t = t.now
let device t i = t.devs.(i).device
let gpu t i = t.devs.(i).gpu

let set_obs t obs =
  t.obs <- obs;
  Array.iter (fun d -> Gpusim.Gpu.set_obs d.gpu obs) t.devs

(* --- modules --- *)

type placement = { p_dev : int; p_arch : int * int; p_image : Cubin.Image.t }
type modul = { placements : placement list (* ascending device id *) }

type func = {
  f_kernel : Gpusim.Kernels.t;
  f_places : placement list;  (* devices where the kernel exists *)
}

let cc (d : Gpusim.Device.t) = (d.compute_major, d.compute_minor)

let load_module t data =
  let image_for =
    if Cubin.Fatbin.is_fatbin data then begin
      match Cubin.Fatbin.parse data with
      | Error e -> Error (Bad_module e)
      | Ok fatbin -> Ok (fun d -> Cubin.Fatbin.best_image fatbin ~cc:(cc d))
    end
    else
      (* standalone cubin: its own arch decides eligibility *)
      match Cubin.Image.parse data with
      | Error e -> Error (Bad_module e)
      | Ok image ->
          Ok
            (fun d ->
              if Cubin.Fatbin.image_compatible ~cc:(cc d) image.Cubin.Image.arch
              then Some data
              else None)
  in
  match image_for with
  | Error _ as e -> e
  | Ok image_for -> (
      let bad = ref None in
      let placements =
        Array.to_list t.devs
        |> List.filter_map (fun d ->
               match image_for d.device with
               | None -> None
               | Some raw -> (
                   match Cubin.Image.parse raw with
                   | Ok image ->
                       Some
                         {
                           p_dev = d.id;
                           p_arch = image.Cubin.Image.arch;
                           p_image = image;
                         }
                   | Error e ->
                       if !bad = None then bad := Some e;
                       None))
      in
      match (!bad, placements) with
      | Some e, _ -> Error (Bad_module e)
      | None, [] -> Error No_compatible_image
      | None, placements -> Ok { placements })

let eligible m = List.map (fun p -> p.p_dev) m.placements

let get_function t m name =
  match Gpusim.Kernels.find name with
  | None -> Error (Unknown_kernel name)
  | Some kernel -> (
      ignore t;
      let places =
        List.filter
          (fun p -> Cubin.Image.find_kernel p.p_image name <> None)
          m.placements
      in
      match places with
      | [] -> Error (Unknown_kernel name)
      | places -> Ok { f_kernel = kernel; f_places = places })

(* --- launch routing --- *)

let tmax a b = if Time.compare a b > 0 then a else b

(* Estimated completion if the launch were placed on [d] now: the device's
   queue tail (or the host clock, whichever is later) plus the kernel's
   analytic cost on that device plus its per-grid launch overhead. *)
let estimate t d kernel lp =
  let start = tmax d.busy_until t.now in
  let cost = Time.of_float_ns (kernel.Gpusim.Kernels.cost d.device lp) in
  Time.add start (Time.add (Time.ns d.device.Gpusim.Device.launch_overhead_ns) cost)

let record_event d finish =
  let seq = d.seq in
  d.seq <- seq + 1;
  d.events <-
    { Par.Merge.vtime = finish; shard = d.id; seq; payload = () } :: d.events

let launch t f mk =
  (* Belt and suspenders on the compatibility rule: even if routing code
     regresses, a device never executes an image of another major arch. *)
  let compatible p =
    let d = t.devs.(p.p_dev) in
    if Cubin.Fatbin.image_compatible ~cc:(cc d.device) p.p_arch then true
    else begin
      t.incompatible <- t.incompatible + 1;
      false
    end
  in
  match List.filter compatible f.f_places with
  | [] -> Error No_compatible_image
  | places -> (
      let chosen =
        match t.policy with
        | Round_robin ->
            let n = List.length places in
            let i = t.rr mod n in
            t.rr <- t.rr + 1;
            List.nth places i
        | Cost_aware ->
            (* earliest estimated finish, lowest device id on ties *)
            List.fold_left
              (fun best p ->
                match best with
                | None -> Some p
                | Some b ->
                    let db = t.devs.(b.p_dev) and dp = t.devs.(p.p_dev) in
                    let eb = estimate t db f.f_kernel (mk b.p_dev)
                    and ep = estimate t dp f.f_kernel (mk p.p_dev) in
                    if Time.compare ep eb < 0 then Some p else Some b)
              None places
            |> Option.get
      in
      let d = t.devs.(chosen.p_dev) in
      let lp = mk d.id in
      match Gpusim.Gpu.launch d.gpu ~now:t.now f.f_kernel lp with
      | exception Gpusim.Kernels.Bad_args e -> Error (Bad_module e)
      | finish ->
          let start = tmax d.busy_until t.now in
          d.busy <- Time.add d.busy (Time.sub finish start);
          d.busy_until <- finish;
          d.launches <- d.launches + 1;
          record_event d finish;
          if Obs.Recorder.enabled t.obs then
            Obs.Recorder.incr t.obs
              (Obs.Recorder.tenant_label "fleet.launch"
                 ~tenant:(Printf.sprintf "%d:%s" d.id d.device.Gpusim.Device.name));
          Ok (d.id, finish))

let barrier t =
  let now =
    Array.fold_left
      (fun acc d -> tmax acc (Gpusim.Gpu.synchronize d.gpu ~now:t.now))
      t.now t.devs
  in
  t.now <- now;
  now

(* --- accounting --- *)

type device_stats = {
  ds_id : int;
  ds_name : string;
  ds_launches : int;
  ds_busy : Time.t;
  ds_utilization : float;
}

let makespan t =
  Array.fold_left (fun acc d -> tmax acc d.busy_until) Time.zero t.devs

let stats t =
  let span = makespan t in
  Array.to_list t.devs
  |> List.map (fun d ->
         {
           ds_id = d.id;
           ds_name = d.device.Gpusim.Device.name;
           ds_launches = d.launches;
           ds_busy = d.busy;
           ds_utilization =
             (if Time.compare span Time.zero = 0 then 0.0
              else Int64.to_float d.busy /. Int64.to_float span);
         })

let total_launches t =
  Array.fold_left (fun acc d -> acc + d.launches) 0 t.devs

let incompatible_launches t = t.incompatible

let digest t =
  let streams =
    Array.map (fun d -> Array.of_list (List.rev d.events)) t.devs
  in
  Par.Merge.digest (Par.Merge.merge streams)
