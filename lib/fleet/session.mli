(** A multi-device fleet session over real Cricket RPC.

    The in-process {!Cluster} owns its GPUs directly; a [Session] drives
    the same heterogeneous-fleet discipline through the wire protocol
    instead: one {!Cricket.Client} connected to a {!Cricket.Server} whose
    context holds the whole device catalog. The session discovers the
    devices via [cudaGetDeviceProperties], resolves a fat binary's
    per-device eligibility client-side with {!Cubin.Fatbin.image_compatible}
    (the server independently re-applies the same rule in
    [cuModuleLoadData], so an incompatible image is rejected at both
    ends), loads the module once per eligible device, and steers each
    launch with [cudaSetDevice] + [cuLaunchKernel].

    Placement mirrors {!Cluster.policy}: round-robin, or cost-aware using
    a client-visible speed proxy (SM count × clock rate from the device
    properties) over the work already assigned — the client cannot see the
    server's virtual clock, so it balances estimated work instead of
    finish times.

    Connect through {!Cricket.Local.transport_for} (or any tenant-routed
    transport) and the session's traffic lands in per-tenant accounting
    and lease hooks; {!Cricket.Server.device_calls} shows the per-device
    RPC spread this steering produces. *)

type t

val connect : ?policy:Cluster.policy -> Cricket.Client.t -> t
(** Queries the device count and properties over RPC. *)

val device_count : t -> int

val compute_capability : t -> int -> int * int

type modul
type func

val load_module : t -> string -> (modul, Cluster.error) result
(** Load a serialized fatbin on every compatible device (one
    [cuModuleLoadData] each, steered by [cudaSetDevice]).
    [Error No_compatible_image] when no device qualifies. *)

val eligible : modul -> int list

val get_function : t -> modul -> string -> (func, Cluster.error) result

val launch :
  t ->
  func ->
  grid:Gpusim.Kernels.dim3 ->
  block:Gpusim.Kernels.dim3 ->
  ?shared_mem:int ->
  (int -> Gpusim.Kernels.arg array) ->
  (int, Cluster.error) result
(** Place one launch on a compatible device and issue it over RPC;
    the callback builds the argument vector for the chosen device.
    Returns the device index used. *)

val synchronize : t -> unit
(** [cudaDeviceSynchronize] on every device the session launched on. *)

val launches : t -> (int * int) list
(** Per-device launch counts, one entry per device index in order. *)
