(** Heterogeneous multi-GPU cluster scheduler.

    Owns a set of simulated GPUs built from a device catalog (mixed SM
    counts, bandwidths, compute capabilities — e.g.
    {!Gpusim.Device.gpu_node}) and routes every kernel launch to a device
    that can actually run it: a module's fat binary is resolved per device
    with {!Cubin.Fatbin.best_image}, and a launch is only ever placed on a
    device whose compute capability has a compatible SASS image — same
    major architecture, minor not exceeded. A module with no compatible
    image for any device is rejected with a typed {!error}, never run on a
    wrong-arch device.

    Placement is cost-aware by default: the scheduler estimates each
    eligible device's finish time from its current queue depth on the
    virtual clock plus the kernel's analytic cost on that device
    ({!Gpusim.Device.effective_flops} derating, per-grid
    [launch_overhead_ns]), and picks the earliest — faster devices draw
    proportionally more work, and the slowest card stops gating the
    makespan.
    Round-robin placement is kept as the baseline the benchmarks compare
    against.

    Host submission is free on the virtual clock: launches enqueue without
    advancing [now] (each device's stream back-pressure is what the cost
    model sees), and {!barrier} advances [now] to the fleet-wide completion
    — the list-scheduling model of a host thread feeding N devices and
    joining on all of them. *)

module Time = Simnet.Time

type policy = Round_robin | Cost_aware

val policy_name : policy -> string
(** ["rr"] / ["cost"] — the names [benchctl fleet] sweeps over. *)

type error =
  | No_compatible_image
      (** no device in the fleet has a SASS image it can run *)
  | Bad_module of string  (** container or image failed to parse *)
  | Unknown_kernel of string

val error_message : error -> string

type t

val create : ?policy:policy -> Gpusim.Device.t list -> t
(** Builds one {!Gpusim.Gpu.t} per catalog entry with an uncapped memory
    clamp, so per-device OOM behaviour tracks the catalog's
    [total_global_mem] (the backing store only grows as touched). Raises
    [Invalid_argument] on an empty catalog. *)

val policy : t -> policy
val device_count : t -> int
val now : t -> Time.t

val device : t -> int -> Gpusim.Device.t
val gpu : t -> int -> Gpusim.Gpu.t
(** Direct device access for workload buffers (allocation, memcpy). Kernel
    launches must go through {!launch} so compatibility routing and
    accounting apply. *)

val set_obs : t -> Obs.Recorder.t -> unit
(** Per-device launch counters ([fleet.launch{tenant=<dev>}]) plus the
    GPUs' own span instrumentation. *)

(** {1 Modules and functions} *)

type modul
(** A loaded module: the per-device resolution of one fat binary (or
    standalone cubin) to the image each device would execute. *)

type func

val load_module : t -> string -> (modul, error) result
(** Resolve a serialized fatbin/cubin against every device in the fleet.
    [Error No_compatible_image] when no device has a compatible image —
    the typed rejection a scheduler must produce instead of silently
    running wrong-arch SASS. *)

val eligible : modul -> int list
(** Device indices that hold a compatible image, ascending. *)

val get_function : t -> modul -> string -> (func, error) result

(** {1 Launch routing} *)

val launch :
  t -> func -> (int -> Gpusim.Kernels.launch) -> (int * Time.t, error) result
(** [launch t f mk] places one launch on a compatible device chosen by the
    scheduling policy and executes it there (eagerly, time accounted on
    the device's stream). [mk dev] builds the launch parameters for the
    chosen device — argument pointers are device-local, so the callback
    runs after placement (and, for cost estimation, per candidate; it must
    be cheap and pure). Returns the chosen device index and the launch's
    completion time. *)

val barrier : t -> Time.t
(** Advance the cluster clock to the completion of all queued work on all
    devices (host joins the fleet); returns the new [now]. *)

(** {1 Accounting} *)

type device_stats = {
  ds_id : int;
  ds_name : string;
  ds_launches : int;
  ds_busy : Time.t;  (** virtual time the device spent occupied *)
  ds_utilization : float;  (** busy / makespan, 0 when makespan is 0 *)
}

val stats : t -> device_stats list
val makespan : t -> Time.t
(** Max completion time across devices (meaningful after {!barrier}). *)

val total_launches : t -> int

val incompatible_launches : t -> int
(** Launches that reached a device whose architecture could not run the
    selected image — must be zero; a non-zero count means the
    [best_image] compatibility rule was violated upstream. *)

val digest : t -> int64
(** FNV-1a digest of the deterministic merge of all devices' completion
    streams ({!Par.Merge}): byte-identical across runs and domain
    counts. *)
