type dev = {
  sd_cc : int * int;
  sd_weight : float;  (* SM count × clock rate: client-visible speed proxy *)
  mutable sd_assigned : float;  (* estimated work units steered here *)
  mutable sd_launches : int;
}

type t = {
  client : Cricket.Client.t;
  devs : dev array;
  policy : Cluster.policy;
  mutable rr : int;
}

let connect ?(policy = Cluster.Cost_aware) client =
  let n = Cricket.Client.get_device_count client in
  let devs =
    Array.init n (fun i ->
        let p = Cricket.Client.get_device_properties client i in
        {
          sd_cc = (p.Cricket.Client.compute_major, p.Cricket.Client.compute_minor);
          sd_weight =
            float_of_int p.Cricket.Client.multi_processor_count
            *. float_of_int p.Cricket.Client.clock_rate_khz;
          sd_assigned = 0.0;
          sd_launches = 0;
        })
  in
  { client; devs; policy; rr = 0 }

let device_count t = Array.length t.devs
let compute_capability t i = t.devs.(i).sd_cc

type modul = { sm_handles : (int * int64) list (* device, module handle *) }
type func = { sf_places : (int * Cricket.Client.func) list }

(* Client-side eligibility: which devices have a compatible image. The
   server re-applies the same best_image rule on load, so a disagreement
   would surface as a CUDA error rather than a wrong-arch execution. *)
let eligible_devices t data =
  if Cubin.Fatbin.is_fatbin data then
    match Cubin.Fatbin.parse data with
    | Error e -> Error (Cluster.Bad_module e)
    | Ok fatbin ->
        Ok
          (List.filter
             (fun i ->
               Cubin.Fatbin.best_image fatbin ~cc:t.devs.(i).sd_cc <> None)
             (List.init (Array.length t.devs) Fun.id))
  else
    match Cubin.Image.parse data with
    | Error e -> Error (Cluster.Bad_module e)
    | Ok image ->
        Ok
          (List.filter
             (fun i ->
               Cubin.Fatbin.image_compatible ~cc:t.devs.(i).sd_cc
                 image.Cubin.Image.arch)
             (List.init (Array.length t.devs) Fun.id))

let load_module t data =
  match eligible_devices t data with
  | Error _ as e -> e
  | Ok [] -> Error Cluster.No_compatible_image
  | Ok devices ->
      let handles =
        List.map
          (fun i ->
            Cricket.Client.set_device t.client i;
            (i, Cricket.Client.module_load t.client data))
          devices
      in
      Ok { sm_handles = handles }

let eligible m = List.map fst m.sm_handles

let get_function t m name =
  match m.sm_handles with
  | [] -> Error Cluster.No_compatible_image
  | handles ->
      Ok
        {
          sf_places =
            List.map
              (fun (i, h) ->
                Cricket.Client.set_device t.client i;
                (i, Cricket.Client.get_function t.client ~modul:h ~name))
              handles;
        }

let grid_work ~grid ~block =
  let open Gpusim.Kernels in
  float_of_int (grid.x * grid.y * grid.z)
  *. float_of_int (block.x * block.y * block.z)

let launch t f ~grid ~block ?shared_mem mk_args =
  match f.sf_places with
  | [] -> Error Cluster.No_compatible_image
  | places ->
      let chosen, cfunc =
        match t.policy with
        | Cluster.Round_robin ->
            let n = List.length places in
            let p = List.nth places (t.rr mod n) in
            t.rr <- t.rr + 1;
            p
        | Cluster.Cost_aware ->
            let work = grid_work ~grid ~block in
            (* least (assigned + this) / weight: balance estimated work by
               relative speed; lowest index on ties *)
            List.fold_left
              (fun best (i, fn) ->
                match best with
                | None -> Some (i, fn)
                | Some (bi, _) ->
                    let cost j =
                      (t.devs.(j).sd_assigned +. work) /. t.devs.(j).sd_weight
                    in
                    if cost i < cost bi then Some (i, fn) else best)
              None places
            |> Option.get
      in
      let d = t.devs.(chosen) in
      d.sd_assigned <- d.sd_assigned +. grid_work ~grid ~block;
      d.sd_launches <- d.sd_launches + 1;
      Cricket.Client.set_device t.client chosen;
      Cricket.Client.launch t.client cfunc ~grid ~block ?shared_mem
        (mk_args chosen);
      Ok chosen

let synchronize t =
  Array.iteri
    (fun i d ->
      if d.sd_launches > 0 then begin
        Cricket.Client.set_device t.client i;
        Cricket.Client.device_synchronize t.client
      end)
    t.devs

let launches t =
  Array.to_list (Array.mapi (fun i d -> (i, d.sd_launches)) t.devs)
