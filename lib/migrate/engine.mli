(** Pre-copy live migration of a tenant's GPU session between two Cricket
    servers.

    The source server's context is checkpointed incrementally (dirty-page
    deltas, see {!Cudasim.Context.checkpoint_delta}) and streamed to the
    destination over an ordinary Cricket RPC connection while the source
    keeps serving the tenant. When the delta shrinks below [stop_bytes]
    (or [max_rounds] is exhausted) the source pauses, ships the final
    delta, and commits — handing over the tenant's lease and forgetting
    the session. Failure at any phase aborts with rollback: the
    destination wipes its half-copy and the source, which never stopped
    being authoritative, just keeps serving. *)

module Time = Simnet.Time

type phase = Begin | Base | Delta of int | Stop_copy | Commit

val phase_to_string : phase -> string

exception Migration_aborted of { phase : phase; reason : string }
(** The migration failed and was rolled back. The source session is fully
    intact; the destination holds no tenant state. *)

type config = {
  max_rounds : int;  (** delta rounds before forcing stop-and-copy *)
  stop_bytes : int;  (** delta size that triggers stop-and-copy *)
  pause_budget : Time.t;
      (** abort (rather than commit) if the stop-and-copy pause alone
          already exceeds this *)
}

val default : config
(** 8 rounds, 64 KiB stop threshold, 5 ms pause budget. *)

type round = {
  index : int;  (** 1-based delta round number *)
  dirty_pages : int;  (** pages dirtied since the previous round *)
  delta_bytes : int;  (** bytes actually shipped *)
  full_bytes : int;  (** what a full checkpoint would have shipped *)
}

type report = {
  tenant : string;
  base_bytes : int;
  rounds : round list;  (** in order; the last round is the stop-and-copy *)
  total_bytes : int;  (** base + all deltas: bytes actually transferred *)
  full_total_bytes : int;  (** base + a full snapshot per round *)
  pause : Time.t;  (** stop-and-copy through commit (source not serving) *)
  pause_budget : Time.t;
}

val migrate :
  src:Cricket.Server.t ->
  leases:Tenancy.Lease.t ->
  dst:Cricket.Client.t ->
  tenant:string ->
  ?config:config ->
  ?obs:Obs.Recorder.t ->
  now:(unit -> Time.t) ->
  serve:(int -> unit) ->
  unit ->
  report
(** [migrate ~src ~leases ~dst ~tenant ~now ~serve ()] moves [tenant]'s
    session from [src] to the server behind the [dst] client connection.
    [serve i] is called after the base copy and after each non-final delta
    round [i] — this is where the caller keeps dispatching the tenant's
    live traffic on the source (the dirtying those calls do is what the
    next round picks up). Raises {!Migration_aborted} on failure; on
    return the caller must route the tenant's subsequent traffic to the
    destination. [obs] (default null) receives ["migrate"]-layer spans and
    [migrate.*] counters/histograms: rounds, bytes, dirty pages, pause
    time, aborts. *)
