module Time = Simnet.Time

type phase = Begin | Base | Delta of int | Stop_copy | Commit

let phase_to_string = function
  | Begin -> "begin"
  | Base -> "base"
  | Delta i -> Printf.sprintf "delta-%d" i
  | Stop_copy -> "stop-copy"
  | Commit -> "commit"

exception Migration_aborted of { phase : phase; reason : string }

let () =
  Printexc.register_printer (function
    | Migration_aborted { phase; reason } ->
        Some
          (Printf.sprintf "Migrate.Engine.Migration_aborted(%s): %s"
             (phase_to_string phase) reason)
    | _ -> None)

type config = {
  max_rounds : int;
  stop_bytes : int;
  pause_budget : Time.t;
}

let default = { max_rounds = 8; stop_bytes = 64 * 1024; pause_budget = Time.ms 5 }

type round = {
  index : int;
  dirty_pages : int;
  delta_bytes : int;
  full_bytes : int;
}

type report = {
  tenant : string;
  base_bytes : int;
  rounds : round list;
  total_bytes : int;
  full_total_bytes : int;
  pause : Time.t;
  pause_budget : Time.t;
}

(* Pre-copy driver, run on (or beside) the source server.

   begin → base snapshot → { delta round; keep serving } … until the delta
   is small enough (or rounds run out) → stop-and-copy final delta →
   pause-budget check → commit (lease blob rides along) → source handoff.

   Any RPC failure — the destination crashed, the link partitioned past
   the retry budget, the destination refused a transfer — aborts: a
   best-effort abort RPC tells the destination to wipe its half-copy, and
   [Migration_aborted] carries the phase back to the caller. The source
   has kept serving throughout (it only pauses inside stop-and-copy), so
   rollback is simply "carry on".

   The pause budget is enforced between the final delta and the commit:
   before the commit the destination holds a copy but the source is still
   authoritative, so aborting is safe; after a successful commit the
   session has moved, full stop. *)
let migrate ~src ~leases ~dst ~tenant ?(config = default)
    ?(obs = Obs.Recorder.null) ~now ~serve () =
  if config.max_rounds < 1 then invalid_arg "Migrate.Engine.migrate: max_rounds";
  if String.length tenant = 0 then invalid_arg "Migrate.Engine.migrate: tenant";
  let ctx = Cricket.Server.context src in
  Cudasim.Context.set_dirty_tracking ctx true;
  let abort phase reason =
    (try Cricket.Client.migrate_abort dst tenant with _ -> ());
    Obs.Recorder.incr obs "migrate.aborts";
    raise (Migration_aborted { phase; reason })
  in
  let rpc phase f =
    match f () with
    | v -> v
    | exception (Migration_aborted _ as e) -> raise e
    | exception e -> abort phase (Printexc.to_string e)
  in
  Obs.Recorder.with_span obs ~layer:"migrate"
    (Obs.Recorder.tenant_label "migrate.session" ~tenant)
    (fun () ->
      rpc Begin (fun () -> Cricket.Client.migrate_begin dst tenant);
      let base = Cudasim.Context.checkpoint_base ctx in
      let base_bytes = String.length base in
      Obs.Recorder.incr obs ~by:base_bytes "migrate.bytes";
      rpc Base (fun () -> Cricket.Client.migrate_base dst (Bytes.of_string base));
      serve 0;
      let rounds = ref [] in
      let rec loop i =
        let dirty_pages = Cudasim.Context.dirty_pages ctx in
        (* what a full checkpoint would ship at this instant, for the
           incremental-vs-full comparison (does not clear dirty state) *)
        let full_bytes = String.length (Cudasim.Context.checkpoint ctx) in
        let delta = Cudasim.Context.checkpoint_delta ctx in
        let delta_bytes = String.length delta in
        Obs.Recorder.incr obs "migrate.rounds";
        Obs.Recorder.incr obs ~by:delta_bytes "migrate.bytes";
        Obs.Recorder.observe obs "migrate.dirty_pages" (Int64.of_int dirty_pages);
        rounds :=
          { index = i; dirty_pages; delta_bytes; full_bytes } :: !rounds;
        if delta_bytes <= config.stop_bytes || i >= config.max_rounds then begin
          (* stop-and-copy: the source stops serving until commit/abort *)
          let p0 = now () in
          rpc Stop_copy (fun () ->
              Cricket.Client.migrate_delta dst (Bytes.of_string delta));
          let so_far = Time.sub (now ()) p0 in
          if Time.compare so_far config.pause_budget > 0 then
            abort Stop_copy
              (Printf.sprintf "pause %.1f us already exceeds budget %.1f us"
                 (Time.to_float_us so_far)
                 (Time.to_float_us config.pause_budget));
          let blob =
            match Tenancy.Lease.export leases ~tenant with
            | Ok b -> b
            | Error `Unknown_tenant -> "" (* uncapped tenant: no lease moves *)
            | Error `Not_active -> abort Commit "source lease is not active"
          in
          rpc Commit (fun () ->
              Cricket.Client.migrate_commit dst ~tenant (Bytes.of_string blob));
          Tenancy.Lease.complete_handoff leases ~tenant;
          let pause = Time.sub (now ()) p0 in
          Obs.Recorder.observe obs "migrate.pause_ns" pause;
          Obs.Recorder.incr obs "migrate.completed";
          pause
        end
        else begin
          rpc (Delta i) (fun () ->
              Cricket.Client.migrate_delta dst (Bytes.of_string delta));
          serve i;
          loop (i + 1)
        end
      in
      let pause = loop 1 in
      let rounds = List.rev !rounds in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 rounds in
      {
        tenant;
        base_bytes;
        rounds;
        total_bytes = base_bytes + sum (fun r -> r.delta_bytes);
        full_total_bytes = base_bytes + sum (fun r -> r.full_bytes);
        pause;
        pause_budget = config.pause_budget;
      })
