(** Fault-injectable two-server migration harness.

    Builds a complete topology on one virtual clock — a source Cricket
    server with a leased tenant, a destination server, a tenant RPC
    channel that follows the session (source until commit, destination
    after), and a migration channel that carries the pre-copy transfer
    and the {!Simnet.Fault.plan} under test — then runs a deterministic
    seeded write workload while {!Engine.migrate} moves the session
    mid-stream. A destination crash on the migration channel respawns the
    destination (fresh context, fresh lease registry, hooks rewired),
    exactly like a failed node coming back empty.

    The workload mirrors every device write into a client-side buffer, so
    the final report can compare a device read-back digest against ground
    truth regardless of which server ended up (or stayed) authoritative —
    the end-to-end correctness check for both handoff and rollback. *)

module Time = Simnet.Time

type params = {
  profile : Unikernel.Config.t;  (** host profile for both channels *)
  buf_kib : int;  (** tenant device buffer size *)
  batches : int;  (** total write batches in the workload *)
  pre_batches : int;  (** batches served before migration starts *)
  dirty_kib : int;  (** bytes rewritten (at a rotating offset) per batch *)
  seed : int;
  fault : Simnet.Fault.plan option;  (** applied to the migration channel *)
  config : Engine.config;
}

val default_params : params
(** rust-native profile, 1 MiB buffer, 24 batches (8 before migration),
    64 KiB dirtied per batch, seed 7, no faults, {!Engine.default}. *)

type outcome =
  | Completed of Engine.report
  | Aborted of { phase : Engine.phase; reason : string }

type audit = {
  lease_present : bool;  (** active lease for the tenant in this registry *)
  lease_mem_used : int;
  ledger_entries : int;  (** live allocations the lease accounts for *)
  ledger_live : bool;
      (** every ledger pointer is actually allocated in this server's
          arena — the no-leak/no-dangle invariant *)
  arena_used : int;  (** allocated bytes across the server's devices *)
}

type report = {
  params : params;
  outcome : outcome;
  served_before : int;
  served_during : int;  (** batches served from pre-copy [serve] callbacks *)
  served_after : int;  (** batches served after commit (dst) or abort (src) *)
  digest : string;  (** device buffer read back at the end *)
  expected : string;  (** client-side mirror of every write *)
  digest_ok : bool;
  elapsed : Time.t;  (** virtual time, session start to final read-back *)
  src_audit : audit;
  dst_audit : audit;
  migrations_in : int;  (** destination's committed-inbound counter *)
  mig_stats : Unikernel.Simchannel.stats;
  fault_stats : Simnet.Fault.stats option;
}

val tenant : string
(** The tenant name the harness grants and migrates. *)

val run : ?obs:Obs.Recorder.t -> params -> report
(** Deterministic: equal params give byte-identical reports. *)
