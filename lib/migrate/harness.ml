module Time = Simnet.Time
module Sim = Simnet.Engine

type params = {
  profile : Unikernel.Config.t;
  buf_kib : int;
  batches : int;
  pre_batches : int;
  dirty_kib : int;
  seed : int;
  fault : Simnet.Fault.plan option;
  config : Engine.config;
}

let default_params =
  {
    profile = Unikernel.Config.rust_native;
    buf_kib = 1024;
    batches = 24;
    pre_batches = 8;
    dirty_kib = 64;
    seed = 7;
    fault = None;
    config = Engine.default;
  }

type outcome =
  | Completed of Engine.report
  | Aborted of { phase : Engine.phase; reason : string }

type audit = {
  lease_present : bool;
  lease_mem_used : int;
  ledger_entries : int;
  ledger_live : bool;
  arena_used : int;
}

type report = {
  params : params;
  outcome : outcome;
  served_before : int;
  served_during : int;
  served_after : int;
  digest : string;
  expected : string;
  digest_ok : bool;
  elapsed : Time.t;
  src_audit : audit;
  dst_audit : audit;
  migrations_in : int;
  mig_stats : Unikernel.Simchannel.stats;
  fault_stats : Simnet.Fault.stats option;
}

let tenant = "tenant-a"

(* Deterministic payload bytes: a tiny LCG keyed by (seed, salt), so runs
   are byte-reproducible without consulting any ambient RNG state. *)
let pattern ~seed ~salt len =
  let b = Bytes.create len in
  let x = ref (((seed * 2654435761) lxor (salt * 40503)) land 0x3FFFFFFF) in
  for i = 0 to len - 1 do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    Bytes.unsafe_set b i (Char.unsafe_chr ((!x lsr 7) land 0xff))
  done;
  b

let audit_server leases server =
  let ctx = Cricket.Server.context server in
  let lease = Tenancy.Lease.find leases tenant in
  let allocs = Tenancy.Lease.allocs leases ~tenant in
  let ledger_live =
    List.for_all
      (fun (ptr, dev, _size) ->
        match Cudasim.Context.gpu_at ctx dev with
        | None -> false
        | Some gpu ->
            Gpusim.Memory.is_allocated (Gpusim.Gpu.memory gpu)
              (Int64.to_int ptr))
      allocs
  in
  let arena_used = ref 0 in
  for d = 0 to Cudasim.Context.device_count ctx - 1 do
    match Cudasim.Context.gpu_at ctx d with
    | Some gpu ->
        arena_used := !arena_used + Gpusim.Memory.used_bytes (Gpusim.Gpu.memory gpu)
    | None -> ()
  done;
  {
    lease_present =
      (match lease with
      | Some l -> l.Tenancy.Lease.state = Tenancy.Lease.Active
      | None -> false);
    lease_mem_used =
      (match lease with Some l -> l.Tenancy.Lease.mem_used | None -> 0);
    ledger_entries = List.length allocs;
    ledger_live;
    arena_used = !arena_used;
  }

let run ?obs (p : params) =
  let buf_bytes = p.buf_kib * 1024 in
  let dirty_bytes = p.dirty_kib * 1024 in
  if buf_bytes <= 0 then invalid_arg "Harness.run: buf_kib";
  if dirty_bytes <= 0 || dirty_bytes > buf_bytes then
    invalid_arg "Harness.run: dirty_kib";
  if p.pre_batches > p.batches then invalid_arg "Harness.run: pre_batches";
  let engine = Sim.create () in
  let clock = Cudasim.Context.engine_clock engine in
  let now () = Sim.now engine in
  (match obs with
  | Some obs -> Obs.Recorder.set_clock obs now
  | None -> ());
  let src = Cricket.Server.create ~clock () in
  let dst = ref (Cricket.Server.create ~clock ()) in
  let src_leases =
    Tenancy.Lease.create ~now ~ctx:(fun () -> Cricket.Server.context src) ()
  in
  let fresh_dst_registry () =
    Tenancy.Lease.create ~now ~ctx:(fun () -> Cricket.Server.context !dst) ()
  in
  let dst_leases = ref (fresh_dst_registry ()) in
  let install_dst () =
    Tenancy.Lease.install !dst_leases !dst;
    Cricket.Server.set_migration_adopt !dst (fun ~tenant:_ ~blob ->
        blob = ""
        ||
        match Tenancy.Lease.adopt !dst_leases blob with
        | Ok _ -> true
        | Error _ -> false)
  in
  Tenancy.Lease.install src_leases src;
  install_dst ();
  ignore
    (Tenancy.Lease.grant src_leases ~tenant
       {
         Tenancy.Lease.mem_bytes = buf_bytes + (1024 * 1024);
         streams = 8;
         ttl = Time.s 3600;
       });
  (* The tenant's connection: dispatches against whichever server owns the
     session, switched at commit — the redirect a migration-aware proxy or
     smart client performs. *)
  let serving = ref `Src in
  let tenant_chan =
    Unikernel.Simchannel.create ~engine
      ~client:p.profile.Unikernel.Config.profile
      ~dispatch:(fun req ->
        match !serving with
        | `Src -> Cricket.Server.dispatch_for src ~tenant req
        | `Dst -> Cricket.Server.dispatch_for !dst ~tenant req)
      ()
  in
  let client =
    Cricket.Client.create
      ~transport:(Unikernel.Simchannel.transport tenant_chan)
      ()
  in
  (* The migration channel: source → destination, carrying the fault plan
     under test. It inherits the host profile being evaluated, so the
     profile's network cost shows up in transfer time and stop-and-copy
     pause. A destination crash respawns the destination process (fresh
     registry, hooks rewired). *)
  let mig_fault = Option.map Simnet.Fault.make p.fault in
  let mig_chan =
    Unikernel.Simchannel.create ~engine
      ~client:p.profile.Unikernel.Config.profile ?fault:mig_fault
      ~on_crash:(fun ~down_for:_ ->
        dst := Cricket.Server.respawn !dst;
        dst_leases := fresh_dst_registry ();
        install_dst ())
      ~dispatch:(fun req -> Cricket.Server.dispatch !dst req)
      ()
  in
  let mig_client =
    Cricket.Client.create
      ~transport:(Unikernel.Simchannel.transport mig_chan)
      ()
  in
  let mig_rpc = Cricket.Client.rpc mig_client in
  Oncrpc.Client.set_retry mig_rpc
    (Some { Oncrpc.Client.default_retry with Oncrpc.Client.max_attempts = 10 });
  Oncrpc.Client.set_clock mig_rpc ~now ~sleep:(fun ns -> Sim.advance engine ns);
  Oncrpc.Client.set_reconnect mig_rpc (fun () ->
      Unikernel.Simchannel.reconnect mig_chan);
  let t0 = now () in
  (* session bring-up: one device buffer, filled with a seeded pattern,
     mirrored client-side so the final device contents can be checked
     against ground truth no matter which server ends up serving *)
  let d = Cricket.Client.malloc client buf_bytes in
  let mirror = pattern ~seed:p.seed ~salt:0 buf_bytes in
  Cricket.Client.memcpy_h2d client ~dst:d (Bytes.copy mirror);
  let run_batch i =
    let span = max 1 (buf_bytes - dirty_bytes + 1) in
    let off = i * 7919 * 256 mod span in
    let data = pattern ~seed:p.seed ~salt:(i + 1) dirty_bytes in
    Cricket.Client.memcpy_h2d client
      ~dst:(Int64.add d (Int64.of_int off))
      (Bytes.copy data);
    Bytes.blit data 0 mirror off dirty_bytes
  in
  let next = ref 0 in
  while !next < p.pre_batches do
    run_batch !next;
    incr next
  done;
  let served_before = !next in
  let served_during = ref 0 in
  let serve _round =
    if !next < p.batches then begin
      run_batch !next;
      incr next;
      incr served_during
    end
  in
  let outcome =
    match
      Engine.migrate ~src ~leases:src_leases ~dst:mig_client ~tenant
        ~config:p.config ?obs ~now ~serve ()
    with
    | rep ->
        serving := `Dst;
        Completed rep
    | exception Engine.Migration_aborted { phase; reason } ->
        Aborted { phase; reason }
  in
  let served_after = ref 0 in
  while !next < p.batches do
    run_batch !next;
    incr next;
    incr served_after
  done;
  let final = Cricket.Client.memcpy_d2h client ~src:d ~len:buf_bytes in
  let digest = Digest.to_hex (Digest.bytes final) in
  let expected = Digest.to_hex (Digest.bytes mirror) in
  {
    params = p;
    outcome;
    served_before;
    served_during = !served_during;
    served_after = !served_after;
    digest;
    expected;
    digest_ok = String.equal digest expected;
    elapsed = Time.sub (now ()) t0;
    src_audit = audit_server src_leases src;
    dst_audit = audit_server !dst_leases !dst;
    migrations_in = Cricket.Server.migrations_in !dst;
    mig_stats = Unikernel.Simchannel.stats mig_chan;
    fault_stats = Option.map Simnet.Fault.stats mig_fault;
  }
