module Time = Simnet.Time
module Engine = Simnet.Engine
module Rv = Simnet.Random_variate

type params = {
  tenants : int;
  items_per_tenant : int;
  seed : int;
  mean_gap : Time.t;
  policies : Cricket.Sched.policy list;
  quantum_ns : int;
  admission : Admission.config;
  caps : Lease.caps;
  heavy_every : int;
  heavy_factor : int;
  uniform : bool;
}

let default =
  {
    tenants = 10_000;
    items_per_tenant = 4;
    seed = 42;
    (* Per-tenant Poisson arrivals; at 10k tenants this offered load keeps
       the serving core moderately overloaded (~10-20% of items shed), so
       the admission windows actually engage. *)
    mean_gap = Time.ms 300;
    policies = Cricket.Sched.[ Fifo; Round_robin; Priority ];
    quantum_ns = Dispatch.default_quantum_ns;
    admission =
      { Admission.per_tenant_window = 3; global_window = 512; high_water = 448 };
    caps = { Lease.default_caps with mem_bytes = 1 * 1024 * 1024 };
    heavy_every = 10;
    heavy_factor = 8;
    uniform = false;
  }

let smoke =
  {
    default with
    tenants = 1_000;
    items_per_tenant = 4;
    mean_gap = Time.ms 30;
    admission =
      { Admission.per_tenant_window = 3; global_window = 128; high_water = 112 };
  }

type percentiles = { p50_us : float; p99_us : float }

type report = {
  policy : Cricket.Sched.policy;
  tenants : int;
  items : int;
  completed : int;
  rejected_quota : int;
  rejected_overload : int;
  rejected_expired : int;
  errors : int;
  makespan_ms : float;
  latency : percentiles;  (** aggregate sojourn *)
  tenant_p99_min_us : float;  (** spread of per-tenant p99 sojourn *)
  tenant_p99_med_us : float;
  tenant_p99_max_us : float;
  jain : float;
}

(* Small deterministic payload, shared across Transfer items. *)
let payload =
  lazy
    (Bytes.init 32_768 (fun i -> Char.chr ((i * 131) land 0xff)))

(* Three item shapes with distinct cost profiles:
   - Small: 4 KiB scratch, memset, free (cheap control-plane traffic);
   - Transfer: 32 KiB h2d + d2h round trip (PCIe bound);
   - Compute: 32x32 sgemm through a transient cuBLAS handle (GPU bound). *)
type kind = Small | Transfer | Compute

let kind_of_draw u = if u < 0.6 then Small else if u < 0.9 then Transfer else Compute

let run_item client kind ~repeat =
  let module C = Cricket.Client in
  for _ = 1 to repeat do
    match kind with
    | Small ->
        let p = C.malloc client 4096 in
        C.memset client ~ptr:p ~value:0 ~len:4096;
        C.free client p
    | Transfer ->
        let data = Lazy.force payload in
        let len = Bytes.length data in
        let p = C.malloc client len in
        C.memcpy_h2d client ~dst:p data;
        ignore (C.memcpy_d2h client ~src:p ~len);
        C.free client p
    | Compute ->
        let n = 32 in
        let bytes = n * n * 4 in
        let h = C.cublas_create client in
        let a = C.malloc client bytes in
        let b = C.malloc client bytes in
        let c = C.malloc client bytes in
        C.cublas_sgemm client ~handle:h ~m:n ~n ~k:n ~alpha:1.0 ~a ~lda:n
          ~b ~ldb:n ~beta:0.0 ~c ~ldc:n;
        C.free client a;
        C.free client b;
        C.free client c;
        C.cublas_destroy client h
  done

let tenant_name i = Printf.sprintf "t%05d" i

let run_policy (params : params) policy =
  let engine = Engine.create () in
  let server = Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) () in
  let specs =
    Array.init params.tenants (fun i ->
        {
          Core.name = tenant_name i;
          (* Three priority classes, round-robin over tenant index, so the
             Priority policy has real classes to discriminate. *)
          priority = i mod 3;
          caps = Some params.caps;
        })
  in
  let core =
    Core.create ~engine ~server ~policy ~quantum_ns:params.quantum_ns
      ~admission:params.admission ~tenants:specs ()
  in
  (* One lazily-created client per tenant, dispatching through the
     tenant-aware server path (typed rejections, per-tenant dup cache). *)
  let clients = Array.make params.tenants None in
  let client_of i =
    match clients.(i) with
    | Some c -> c
    | None ->
        let transport =
          Cricket.Local.transport_of_dispatch (fun record ->
              Core.dispatch_for core ~tenant:i record)
        in
        let c =
          Cricket.Client.create
            ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
            ~transport ()
        in
        clients.(i) <- Some c;
        c
  in
  let rv = Rv.create ~seed:params.seed in
  let items = ref [] in
  for i = params.tenants - 1 downto 0 do
    let arrivals =
      Rv.poisson_arrivals
        (Rv.create ~seed:(params.seed + (7919 * i) + 1))
        ~mean_gap:params.mean_gap ~count:params.items_per_tenant
    in
    let heavy =
      (not params.uniform)
      && params.heavy_every > 0
      && i mod params.heavy_every = 0
    in
    List.iter
      (fun arrival ->
        let kind =
          if params.uniform then Small else kind_of_draw (Rv.uniform rv)
        in
        let repeat = if heavy then params.heavy_factor else 1 in
        items :=
          {
            Core.tenant = i;
            arrival;
            work = (fun () -> run_item (client_of i) kind ~repeat);
          }
          :: !items)
      arrivals
  done;
  (* Stable order under equal arrivals must not depend on construction
     order tricks: sort by (arrival, tenant). *)
  let items =
    List.stable_sort
      (fun (a : Core.item) b ->
        match Time.compare a.arrival b.arrival with
        | 0 -> compare a.tenant b.tenant
        | c -> c)
      !items
  in
  let result = Core.run core items in
  let q h p =
    if Obs.Histogram.count h = 0 then 0.0
    else Int64.to_float (Obs.Histogram.quantile h p) /. 1_000.0
  in
  let per_p99 =
    Array.to_list result.tenants
    |> List.filter_map (fun (tr : Core.tenant_result) ->
           if Obs.Histogram.count tr.sojourn > 0 then
             Some (q tr.sojourn 0.99)
           else None)
    |> List.sort compare
  in
  let nth_frac xs f =
    match xs with
    | [] -> 0.0
    | xs ->
        let n = List.length xs in
        List.nth xs (min (n - 1) (int_of_float (f *. float_of_int n)))
  in
  let rejected_quota =
    Array.fold_left
      (fun a (tr : Core.tenant_result) -> a + tr.rejected_quota)
      0 result.tenants
  and rejected_overload =
    Array.fold_left
      (fun a (tr : Core.tenant_result) -> a + tr.rejected_overload)
      0 result.tenants
  and rejected_expired =
    Array.fold_left
      (fun a (tr : Core.tenant_result) -> a + tr.rejected_expired)
      0 result.tenants
  and errors =
    Array.fold_left
      (fun a (tr : Core.tenant_result) -> a + tr.errors)
      0 result.tenants
  in
  {
    policy;
    tenants = params.tenants;
    items = params.tenants * params.items_per_tenant;
    completed = result.completed;
    rejected_quota;
    rejected_overload;
    rejected_expired;
    errors;
    makespan_ms = Time.to_float_ms result.makespan;
    latency =
      { p50_us = q result.aggregate 0.5; p99_us = q result.aggregate 0.99 };
    tenant_p99_min_us = (match per_p99 with [] -> 0.0 | x :: _ -> x);
    tenant_p99_med_us = nth_frac per_p99 0.5;
    tenant_p99_max_us = nth_frac per_p99 1.0;
    jain = result.jain;
  }

let run params = List.map (run_policy params) params.policies

let header =
  Printf.sprintf "%-11s %8s %8s %6s %6s %6s %10s %9s %9s %9s %9s %6s"
    "policy" "complete" "rej-load" "rej-q" "rej-ex" "errors" "makespan"
    "p50us" "p99us" "t-p99med" "t-p99max" "jain"

let row r =
  Printf.sprintf
    "%-11s %8d %8d %6d %6d %6d %8.1fms %9.1f %9.1f %9.1f %9.1f %.4f"
    (Cricket.Sched.policy_to_string r.policy)
    r.completed r.rejected_overload r.rejected_quota r.rejected_expired
    r.errors r.makespan_ms r.latency.p50_us r.latency.p99_us
    r.tenant_p99_med_us r.tenant_p99_max_us r.jain

let to_string reports =
  let b = Buffer.create 1024 in
  (match reports with
  | [] -> ()
  | r :: _ ->
      Buffer.add_string b
        (Printf.sprintf "tenants=%d items=%d seed-deterministic\n" r.tenants
           r.items));
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (row r);
      Buffer.add_char b '\n')
    reports;
  Buffer.contents b
