module Time = Simnet.Time
module Engine = Simnet.Engine
module Rv = Simnet.Random_variate

type params = {
  tenants : int;
  items_per_tenant : int;
  seed : int;
  mean_gap : Time.t;
  policies : Cricket.Sched.policy list;
  quantum_ns : int;
  admission : Admission.config;
  caps : Lease.caps;
  heavy_every : int;
  heavy_factor : int;
  uniform : bool;
  shards : int;
      (** logical shards: independent serving cores the tenant set is
          partitioned over. Fixed by the workload, NOT by [domains] —
          that split is what keeps reports byte-identical while the
          domain count varies. *)
  domains : int;  (** OCaml domains executing the shards *)
}

let default =
  {
    tenants = 10_000;
    items_per_tenant = 4;
    seed = 42;
    (* Per-tenant Poisson arrivals; at 10k tenants this offered load keeps
       the serving core moderately overloaded (~10-20% of items shed), so
       the admission windows actually engage. *)
    mean_gap = Time.ms 300;
    policies = Cricket.Sched.[ Fifo; Round_robin; Priority ];
    quantum_ns = Dispatch.default_quantum_ns;
    admission =
      { Admission.per_tenant_window = 3; global_window = 512; high_water = 448 };
    caps = { Lease.default_caps with mem_bytes = 1 * 1024 * 1024 };
    heavy_every = 10;
    heavy_factor = 8;
    uniform = false;
    shards = Par.Topology.default_shards;
    domains = 1;
  }

let smoke =
  {
    default with
    tenants = 1_000;
    items_per_tenant = 4;
    mean_gap = Time.ms 30;
    admission =
      { Admission.per_tenant_window = 3; global_window = 128; high_water = 112 };
  }

type percentiles = { p50_us : float; p99_us : float }

type report = {
  policy : Cricket.Sched.policy;
  tenants : int;
  items : int;
  shards : int;
  completed : int;
  rejected_quota : int;
  rejected_overload : int;
  rejected_expired : int;
  errors : int;
  makespan_ms : float;
  latency : percentiles;  (** aggregate sojourn over the merged timeline *)
  tenant_p99_min_us : float;  (** spread of per-tenant p99 sojourn *)
  tenant_p99_med_us : float;
  tenant_p99_max_us : float;
  jain : float;
  events : int;  (** merged timeline length (served + shed) *)
  digest : int64;
      (** order-sensitive fingerprint of the merged (vtime, shard, seq)
          timeline — byte-identical across domain counts by contract *)
}

(* Small deterministic payload, shared read-only across worker domains —
   eager on purpose: forcing a [lazy] concurrently from several domains
   is a race (RacyLazy). *)
let payload = Bytes.init 32_768 (fun i -> Char.chr ((i * 131) land 0xff))

(* Three item shapes with distinct cost profiles:
   - Small: 4 KiB scratch, memset, free (cheap control-plane traffic);
   - Transfer: 32 KiB h2d + d2h round trip (PCIe bound);
   - Compute: 32x32 sgemm through a transient cuBLAS handle (GPU bound). *)
type kind = Small | Transfer | Compute

let kind_of_draw u = if u < 0.6 then Small else if u < 0.9 then Transfer else Compute

let run_item client kind ~repeat =
  let module C = Cricket.Client in
  for _ = 1 to repeat do
    match kind with
    | Small ->
        let p = C.malloc client 4096 in
        C.memset client ~ptr:p ~value:0 ~len:4096;
        C.free client p
    | Transfer ->
        let data = payload in
        let len = Bytes.length data in
        let p = C.malloc client len in
        C.memcpy_h2d client ~dst:p data;
        ignore (C.memcpy_d2h client ~src:p ~len);
        C.free client p
    | Compute ->
        let n = 32 in
        let bytes = n * n * 4 in
        let h = C.cublas_create client in
        let a = C.malloc client bytes in
        let b = C.malloc client bytes in
        let c = C.malloc client bytes in
        C.cublas_sgemm client ~handle:h ~m:n ~n ~k:n ~alpha:1.0 ~a ~lda:n
          ~b ~ldb:n ~beta:0.0 ~c ~ldc:n;
        C.free client a;
        C.free client b;
        C.free client c;
        C.cublas_destroy client h
  done

let tenant_name i = Printf.sprintf "t%05d" i

(* One logical shard = one complete serving core: its own engine, its own
   Cricket server, its own leases/admission/DRR over its slice of the
   tenant set. Nothing here touches state outside the shard, so the body
   may run on any domain. Item streams are derived per *global* tenant id
   ({!Rv.substream}), so a tenant's workload is identical no matter which
   shard or domain serves it. *)
let run_shard (params : params) policy ~tenants:tenant_ids =
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let n = Array.length tenant_ids in
  let specs =
    Array.map
      (fun gi ->
        {
          Core.name = tenant_name gi;
          (* Three priority classes, round-robin over the global tenant
             index, so the Priority policy has real classes to
             discriminate. *)
          priority = gi mod 3;
          caps = Some params.caps;
        })
      tenant_ids
  in
  let core =
    Core.create ~engine ~server ~policy ~quantum_ns:params.quantum_ns
      ~admission:params.admission ~tenants:specs ()
  in
  (* One lazily-created client per tenant, dispatching through the
     tenant-aware server path (typed rejections, per-tenant dup cache). *)
  let clients = Array.make n None in
  let client_of j =
    match clients.(j) with
    | Some c -> c
    | None ->
        let transport =
          Cricket.Local.transport_of_dispatch (fun record ->
              Core.dispatch_for core ~tenant:j record)
        in
        let c =
          Cricket.Client.create
            ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
            ~transport ()
        in
        clients.(j) <- Some c;
        c
  in
  let items = ref [] in
  for j = n - 1 downto 0 do
    let gi = tenant_ids.(j) in
    let arrivals =
      Rv.poisson_arrivals
        (Rv.substream ~seed:params.seed ~index:(2 * gi))
        ~mean_gap:params.mean_gap ~count:params.items_per_tenant
    in
    let kinds = Rv.substream ~seed:params.seed ~index:((2 * gi) + 1) in
    let heavy =
      (not params.uniform)
      && params.heavy_every > 0
      && gi mod params.heavy_every = 0
    in
    List.iter
      (fun arrival ->
        let kind =
          if params.uniform then Small else kind_of_draw (Rv.uniform kinds)
        in
        let repeat = if heavy then params.heavy_factor else 1 in
        items :=
          {
            Core.tenant = j;
            arrival;
            work = (fun () -> run_item (client_of j) kind ~repeat);
          }
          :: !items)
      arrivals
  done;
  (* Stable order under equal arrivals must not depend on construction
     order tricks: sort by (arrival, tenant). Local tenant index order
     equals global id order within a shard, so this key is stable under
     resharding too. *)
  let items =
    List.stable_sort
      (fun (a : Core.item) b ->
        match Time.compare a.arrival b.arrival with
        | 0 -> compare a.tenant b.tenant
        | c -> c)
      !items
  in
  Core.run core items

let kind_tag = function
  | Core.Served -> 1
  | Core.Shed Admission.Over_quota -> 2
  | Core.Shed Admission.Overloaded -> 3
  | Core.Shed Admission.Lease_expired -> 4

let run_policy (params : params) policy =
  let shards = max 1 params.shards in
  let partition = Par.Topology.partition ~shards ~n:params.tenants in
  let shard_results =
    Par.Pool.run ~domains:params.domains shards (fun s ->
        run_shard params policy ~tenants:partition.(s))
  in
  (* Deterministic virtual-time merge: every shard decision, ordered by
     (vtime, shard, seq), replayed into one global engine. *)
  let streams =
    Array.mapi
      (fun s (r : Core.result) ->
        Array.map
          (fun (ev : Core.event) ->
            { Par.Merge.vtime = ev.Core.ev_time; shard = s;
              seq = ev.Core.ev_seq;
              payload = (partition.(s).(ev.Core.ev_tenant), ev) })
          r.Core.timeline)
      shard_results
  in
  let merged = Par.Merge.merge streams in
  let digest =
    Par.Merge.digest merged ~payload:(fun (gi, ev) ->
        Int64.of_int ((gi * 8) + kind_tag ev.Core.ev_kind))
  in
  let gengine = Engine.create () in
  let aggregate = Obs.Histogram.create () in
  Par.Merge.replay ~engine:gengine merged (fun e ->
      let _gi, (ev : Core.event) = e.Par.Merge.payload in
      match ev.Core.ev_kind with
      | Core.Served ->
          Obs.Histogram.record aggregate (Time.sub ev.Core.ev_time ev.Core.ev_arrival)
      | Core.Shed _ -> ());
  let makespan = Engine.now gengine in
  (* Per-tenant results back in global tenant order. *)
  let tenant_results = Array.make params.tenants None in
  Array.iteri
    (fun s (r : Core.result) ->
      Array.iteri
        (fun j tr -> tenant_results.(partition.(s).(j)) <- Some tr)
        r.Core.tenants)
    shard_results;
  let tenant_results =
    Array.map
      (function Some tr -> tr | None -> assert false)
      tenant_results
  in
  let q h p =
    if Obs.Histogram.count h = 0 then 0.0
    else Int64.to_float (Obs.Histogram.quantile h p) /. 1_000.0
  in
  let per_p99 =
    Array.to_list tenant_results
    |> List.filter_map (fun (tr : Core.tenant_result) ->
           if Obs.Histogram.count tr.sojourn > 0 then
             Some (q tr.sojourn 0.99)
           else None)
    |> List.sort compare
  in
  let nth_frac xs f =
    match xs with
    | [] -> 0.0
    | xs ->
        let n = List.length xs in
        List.nth xs (min (n - 1) (int_of_float (f *. float_of_int n)))
  in
  let sum f = Array.fold_left (fun a tr -> a + f tr) 0 tenant_results in
  let rejected_quota = sum (fun (tr : Core.tenant_result) -> tr.rejected_quota)
  and rejected_overload =
    sum (fun (tr : Core.tenant_result) -> tr.rejected_overload)
  and rejected_expired =
    sum (fun (tr : Core.tenant_result) -> tr.rejected_expired)
  and errors = sum (fun (tr : Core.tenant_result) -> tr.errors)
  and completed = sum (fun (tr : Core.tenant_result) -> tr.completed) in
  let busy = Array.map (fun (tr : Core.tenant_result) -> tr.busy_ns) tenant_results in
  {
    policy;
    tenants = params.tenants;
    items = params.tenants * params.items_per_tenant;
    shards;
    completed;
    rejected_quota;
    rejected_overload;
    rejected_expired;
    errors;
    makespan_ms = Time.to_float_ms makespan;
    latency = { p50_us = q aggregate 0.5; p99_us = q aggregate 0.99 };
    tenant_p99_min_us = (match per_p99 with [] -> 0.0 | x :: _ -> x);
    tenant_p99_med_us = nth_frac per_p99 0.5;
    tenant_p99_max_us = nth_frac per_p99 1.0;
    jain = Core.jain_index busy;
    events = Array.length merged;
    digest;
  }

let run params = List.map (run_policy params) params.policies

let header =
  Printf.sprintf "%-11s %8s %8s %6s %6s %6s %10s %9s %9s %9s %9s %6s %s"
    "policy" "complete" "rej-load" "rej-q" "rej-ex" "errors" "makespan"
    "p50us" "p99us" "t-p99med" "t-p99max" "jain" "merge-digest"

let row r =
  Printf.sprintf
    "%-11s %8d %8d %6d %6d %6d %8.1fms %9.1f %9.1f %9.1f %9.1f %.4f %016Lx"
    (Cricket.Sched.policy_to_string r.policy)
    r.completed r.rejected_overload r.rejected_quota r.rejected_expired
    r.errors r.makespan_ms r.latency.p50_us r.latency.p99_us
    r.tenant_p99_med_us r.tenant_p99_max_us r.jain r.digest

(* NOTE: the rendered report must stay independent of the domain count —
   CI byte-diffs --domains 1 against --domains 4. Shard count and seed
   belong here (they define the workload); domain count and wall-clock
   throughput do not (benchctl prints those separately). *)
let to_string reports =
  let b = Buffer.create 1024 in
  (match reports with
  | [] -> ()
  | r :: _ ->
      Buffer.add_string b
        (Printf.sprintf "tenants=%d items=%d shards=%d seed-deterministic\n"
           r.tenants r.items r.shards));
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (row r);
      Buffer.add_char b '\n')
    reports;
  Buffer.contents b
