type policy = Cricket.Sched.policy

let default_quantum_ns = 5_000_000

(* One DRR ring: the active tenants of one priority class, served in
   activation order, each holding a deficit of virtual ns. *)
type ring = { order : int Queue.t }

type 'a t = {
  policy : policy;
  quantum : int;
  tenants : string array;
  class_of : int array;  (* tenant id -> index into rings *)
  queues : 'a Queue.t array;  (* per-tenant FIFO *)
  active : bool array;  (* tenant currently in its ring *)
  deficit : int array;
  rings : ring array;  (* one per priority class, most urgent first *)
  fifo : (int * 'a) Queue.t;  (* Fifo policy only *)
  mutable in_service : int;  (* tenant handed out by [next], -1 if none *)
  mutable pending : int;
  mutable rotations : int;
}

let create ~policy ?(quantum_ns = default_quantum_ns) ~tenants ~priorities ()
    =
  let n = Array.length tenants in
  if Array.length priorities <> n then
    invalid_arg "Dispatch.create: tenants/priorities length mismatch";
  if quantum_ns < 1 then invalid_arg "Dispatch.create: quantum_ns";
  (* Distinct priority values, ascending: smaller value = more urgent.
     Round_robin and Fifo collapse to a single class. *)
  let classes =
    match policy with
    | Cricket.Sched.Priority ->
        Array.to_list priorities |> List.sort_uniq compare |> Array.of_list
    | Cricket.Sched.Fifo | Cricket.Sched.Round_robin -> [| 0 |]
  in
  let class_of =
    Array.map
      (fun p ->
        match policy with
        | Cricket.Sched.Priority ->
            let rec idx i = if classes.(i) = p then i else idx (i + 1) in
            idx 0
        | _ -> 0)
      priorities
  in
  {
    policy;
    quantum = quantum_ns;
    tenants;
    class_of;
    queues = Array.init n (fun _ -> Queue.create ());
    active = Array.make n false;
    deficit = Array.make n 0;
    rings = Array.map (fun _ -> { order = Queue.create () }) classes;
    fifo = Queue.create ();
    in_service = -1;
    pending = 0;
    rotations = 0;
  }

let enqueue t ~tenant item =
  t.pending <- t.pending + 1;
  match t.policy with
  | Cricket.Sched.Fifo -> Queue.add (tenant, item) t.fifo
  | Cricket.Sched.Round_robin | Cricket.Sched.Priority ->
      Queue.add item t.queues.(tenant);
      if not t.active.(tenant) then begin
        t.active.(tenant) <- true;
        t.deficit.(tenant) <- t.quantum;
        Queue.add tenant t.rings.(t.class_of.(tenant)).order
      end

let next t =
  if t.in_service >= 0 then
    invalid_arg "Dispatch.next: previous item not yet charged";
  match t.policy with
  | Cricket.Sched.Fifo -> (
      match Queue.take_opt t.fifo with
      | None -> None
      | Some (tenant, item) ->
          t.pending <- t.pending - 1;
          t.in_service <- tenant;
          Some (tenant, item))
  | Cricket.Sched.Round_robin | Cricket.Sched.Priority ->
      let rec first_ring i =
        if i >= Array.length t.rings then None
        else if Queue.is_empty t.rings.(i).order then first_ring (i + 1)
        else Some t.rings.(i)
      in
      (match first_ring 0 with
      | None -> None
      | Some ring ->
          let tenant = Queue.peek ring.order in
          let item = Queue.take t.queues.(tenant) in
          t.pending <- t.pending - 1;
          t.in_service <- tenant;
          Some (tenant, item))

let charge t ~tenant ~cost_ns =
  if t.in_service <> tenant then
    invalid_arg "Dispatch.charge: tenant is not in service";
  t.in_service <- -1;
  match t.policy with
  | Cricket.Sched.Fifo -> ()
  | Cricket.Sched.Round_robin | Cricket.Sched.Priority ->
      let ring = t.rings.(t.class_of.(tenant)) in
      t.deficit.(tenant) <- t.deficit.(tenant) - cost_ns;
      if Queue.is_empty t.queues.(tenant) then begin
        (* Drained: leave the ring; deficits do not carry across idle
           periods (standard DRR — prevents banking service credit). *)
        ignore (Queue.take ring.order);
        t.active.(tenant) <- false;
        t.deficit.(tenant) <- 0
      end
      else if t.deficit.(tenant) <= 0 then begin
        ignore (Queue.take ring.order);
        Queue.add tenant ring.order;
        t.deficit.(tenant) <- t.deficit.(tenant) + t.quantum;
        t.rotations <- t.rotations + 1
      end

let pending t = t.pending

let tenant_pending t i =
  match t.policy with
  | Cricket.Sched.Fifo ->
      Queue.fold (fun acc (tn, _) -> if tn = i then acc + 1 else acc) 0 t.fifo
  | _ -> Queue.length t.queues.(i)

let rotations t = t.rotations
