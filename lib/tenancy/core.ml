module Time = Simnet.Time
module Engine = Simnet.Engine

type tenant_spec = {
  name : string;
  priority : int;
  caps : Lease.caps option;
}

type item = { tenant : int; arrival : Time.t; work : unit -> unit }

type tenant_result = {
  name : string;
  completed : int;
  rejected_quota : int;
  rejected_overload : int;
  rejected_expired : int;
  errors : int;
  busy_ns : int64;
  sojourn : Obs.Histogram.t;
}

(* One serving decision, stamped with the engine clock at the moment it
   was made. The timeline is emitted in strictly increasing (time, seq)
   order — seq is the tie-break for decisions made at the same virtual
   instant — which is exactly the sortedness contract Par.Merge checks
   when sharded runs are recombined. *)
type ev_kind = Served | Shed of Admission.reject_reason

type event = {
  ev_time : Time.t;  (** completion (or rejection) instant *)
  ev_arrival : Time.t;
  ev_tenant : int;
  ev_seq : int;
  ev_kind : ev_kind;
}

type result = {
  policy : Cricket.Sched.policy;
  tenants : tenant_result array;
  aggregate : Obs.Histogram.t;
  jain : float;
  makespan : Time.t;
  completed : int;
  rejected : int;
  admission : Admission.stats;
  lease : Lease.stats;
  timeline : event array;  (** every decision in (ev_time, ev_seq) order *)
}

type t = {
  engine : Engine.t;
  server : Cricket.Server.t;
  policy : Cricket.Sched.policy;
  quantum_ns : int;
  admission_config : Admission.config;
  obs : Obs.Recorder.t;
  specs : tenant_spec array;
  leases : Lease.t;
}

let create ~engine ~server ~policy ?(quantum_ns = Dispatch.default_quantum_ns)
    ?(admission = Admission.default) ?(obs = Obs.Recorder.null) ~tenants () =
  if Array.length tenants = 0 then invalid_arg "Core.create: no tenants";
  let leases =
    Lease.create
      ~now:(fun () -> Engine.now engine)
      ~ctx:(fun () -> Cricket.Server.context server)
      ()
  in
  Array.iter
    (fun spec ->
      match spec.caps with
      | Some caps -> ignore (Lease.grant leases ~tenant:spec.name caps)
      | None -> ())
    tenants;
  Lease.install leases server;
  {
    engine;
    server;
    policy;
    quantum_ns;
    admission_config = admission;
    obs;
    specs = tenants;
    leases;
  }

let lease_registry t = t.leases

let dispatch_for t ~tenant request =
  Cricket.Server.dispatch_for t.server ~tenant:t.specs.(tenant).name request

(* Jain's fairness index over per-tenant service time. Tenants that never
   ran are excluded (they say nothing about how service was shared). *)
let jain_index busy =
  let xs = Array.to_list busy |> List.filter (fun b -> b > 0L) in
  match xs with
  | [] -> 1.0
  | xs ->
      let fs = List.map Int64.to_float xs in
      let n = float_of_int (List.length fs) in
      let sum = List.fold_left ( +. ) 0.0 fs in
      let sumsq = List.fold_left (fun a x -> a +. (x *. x)) 0.0 fs in
      if sumsq = 0.0 then 1.0 else sum *. sum /. (n *. sumsq)

type counters = {
  mutable completed : int;
  mutable rejected_quota : int;
  mutable rejected_overload : int;
  mutable rejected_expired : int;
  mutable errors : int;
  mutable busy_ns : int64;
  sojourn : Obs.Histogram.t;
}

let run t items =
  let n = Array.length t.specs in
  let engine = t.engine in
  let obs_on = Obs.Recorder.enabled t.obs in
  let per =
    Array.init n (fun _ ->
        {
          completed = 0;
          rejected_quota = 0;
          rejected_overload = 0;
          rejected_expired = 0;
          errors = 0;
          busy_ns = 0L;
          sojourn = Obs.Histogram.create ();
        })
  in
  let aggregate = Obs.Histogram.create () in
  let admission =
    Admission.create ~config:t.admission_config ~n_tenants:n ()
  in
  let dispatch =
    Dispatch.create ~policy:t.policy ~quantum_ns:t.quantum_ns
      ~tenants:(Array.map (fun (s : tenant_spec) -> s.name) t.specs)
      ~priorities:(Array.map (fun (s : tenant_spec) -> s.priority) t.specs)
      ()
  in
  let items =
    List.stable_sort (fun a b -> Time.compare a.arrival b.arrival) items
  in
  let arrivals = Array.of_list items in
  let n_items = Array.length arrivals in
  let next_arrival = ref 0 in
  let start = Engine.now engine in
  let events = ref [] in
  let next_seq = ref 0 in
  let emit ~arrival ~tenant kind =
    events :=
      { ev_time = Engine.now engine; ev_arrival = arrival; ev_tenant = tenant;
        ev_seq = !next_seq; ev_kind = kind }
      :: !events;
    incr next_seq
  in
  let record_reject ~arrival tenant reason =
    let c = per.(tenant) in
    (match reason with
    | Admission.Over_quota -> c.rejected_quota <- c.rejected_quota + 1
    | Admission.Overloaded -> c.rejected_overload <- c.rejected_overload + 1
    | Admission.Lease_expired -> c.rejected_expired <- c.rejected_expired + 1);
    emit ~arrival ~tenant (Shed reason);
    if obs_on then
      Obs.Recorder.incr t.obs
        (Obs.Recorder.tenant_label "tenancy.rejected"
           ~tenant:t.specs.(tenant).name)
  in
  let admit_due () =
    while
      !next_arrival < n_items
      && Time.compare arrivals.(!next_arrival).arrival (Engine.now engine)
         <= 0
    do
      let item = arrivals.(!next_arrival) in
      incr next_arrival;
      match Admission.offer admission ~tenant:item.tenant with
      | Ok () -> Dispatch.enqueue dispatch ~tenant:item.tenant item
      | Error reason -> record_reject ~arrival:item.arrival item.tenant reason
    done
  in
  let serving = ref true in
  while !serving do
    admit_due ();
    match Dispatch.next dispatch with
    | Some (tenant, item) ->
        let name = t.specs.(tenant).name in
        let lease_ok =
          match Lease.check t.leases ~tenant:name with
          | Ok _ | Error `Unknown_tenant -> true
          | Error (`Expired | `Revoked) -> false
        in
        let t0 = Engine.now engine in
        if lease_ok then begin
          (match item.work () with
          | () -> ()
          | exception _ -> per.(tenant).errors <- per.(tenant).errors + 1);
          let now = Engine.now engine in
          let cost = Int64.to_int (Time.sub now t0) in
          Dispatch.charge dispatch ~tenant ~cost_ns:cost;
          Admission.complete admission ~tenant;
          let c = per.(tenant) in
          c.completed <- c.completed + 1;
          c.busy_ns <- Int64.add c.busy_ns (Int64.of_int cost);
          let sojourn = Time.sub now item.arrival in
          Obs.Histogram.record c.sojourn sojourn;
          Obs.Histogram.record aggregate sojourn;
          emit ~arrival:item.arrival ~tenant Served;
          if obs_on then
            Obs.Recorder.incr t.obs
              (Obs.Recorder.tenant_label "tenancy.served" ~tenant:name)
        end
        else begin
          Dispatch.charge dispatch ~tenant ~cost_ns:0;
          Admission.complete admission ~tenant;
          record_reject ~arrival:item.arrival tenant Admission.Lease_expired
        end
    | None ->
        if !next_arrival < n_items then
          Engine.advance_to engine arrivals.(!next_arrival).arrival
        else serving := false
  done;
  let busy = Array.map (fun c -> c.busy_ns) per in
  let tenants =
    Array.mapi
      (fun i c ->
        {
          name = t.specs.(i).name;
          completed = c.completed;
          rejected_quota = c.rejected_quota;
          rejected_overload = c.rejected_overload;
          rejected_expired = c.rejected_expired;
          errors = c.errors;
          busy_ns = c.busy_ns;
          sojourn = c.sojourn;
        })
      per
  in
  let completed = Array.fold_left (fun a c -> a + c.completed) 0 per in
  let rejected =
    Array.fold_left
      (fun a c ->
        a + c.rejected_quota + c.rejected_overload + c.rejected_expired)
      0 per
  in
  {
    policy = t.policy;
    tenants;
    aggregate;
    jain = jain_index busy;
    makespan = Time.sub (Engine.now engine) start;
    completed;
    rejected;
    admission = Admission.stats admission;
    lease = Lease.stats t.leases;
    timeline = Array.of_list (List.rev !events);
  }
