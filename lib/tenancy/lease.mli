(** Tenant registry and leases for the multi-tenant serving core.

    A lease entitles one tenant to a bounded slice of the GPU node: a cap
    on live device memory bytes, a cap on concurrent CUDA streams, and a
    virtual-time TTL. Leases are granted, renewed and checked against the
    simulation clock; when one expires (or is revoked) every device
    allocation and stream the tenant still holds is reclaimed through the
    server's CUDA context, so the arena returns to its pre-tenant
    baseline and the memory becomes available to other tenants.

    The registry also owns the per-tenant resource accounting that backs
    {!Cricket.Server.tenant_hooks}: {!install} wires a registry into a
    server so that [cudaMalloc] beyond the memory cap fails with
    [cudaErrorMemoryAllocation], [cudaStreamCreate] beyond the stream cap
    likewise, and every successful allocate/free updates the lease. An
    expired lease denies every subsequent call with a typed
    [`Lease_expired] rejection — including journal replays during session
    recovery, so a tenant can never resurrect reclaimed state through a
    partial replay. *)

module Time = Simnet.Time

type caps = {
  mem_bytes : int;  (** max live device bytes *)
  streams : int;  (** max concurrent streams *)
  ttl : Time.t;  (** virtual-time lease duration *)
}

val default_caps : caps
(** 64 MiB, 8 streams, TTL of 1 virtual hour. *)

type state = Active | Expired | Revoked

type lease = {
  tenant : string;
  mutable caps : caps;
  mutable granted_at : Time.t;
  mutable expires_at : Time.t;
  mutable state : state;
  mutable mem_used : int;
  mutable live_streams : int;
  mutable renewals : int;
}

type t

val create :
  now:(unit -> Time.t) -> ctx:(unit -> Cudasim.Context.t) -> unit -> t
(** [ctx] is consulted at reclaim time (a closure, because a crashed
    server respawns with a fresh context). *)

val grant : t -> tenant:string -> caps -> lease
(** Grant (or re-grant) a lease. Any previous lease for the tenant is
    revoked first, reclaiming its resources. *)

val find : t -> string -> lease option

val renew : t -> tenant:string -> (Time.t, [ `Unknown_tenant | `Not_active ]) result
(** Extend an active lease's expiry to [now + ttl]; returns the new
    expiry. Expired and revoked leases cannot be renewed — re-{!grant}. *)

val check : t -> tenant:string -> (lease, [ `Unknown_tenant | `Expired | `Revoked ]) result
(** Validity check, performed per dispatched call. Lazily transitions an
    overdue [Active] lease to [Expired], reclaiming its resources. *)

val revoke : t -> tenant:string -> unit
(** Immediate administrative expiry + reclaim. Unknown tenants ignored. *)

val expire_due : t -> unit
(** Sweep: expire (and reclaim) every overdue lease now. {!check} does
    this lazily per tenant; the sweep is for idle tenants that stop
    calling. *)

(** {1 Server wiring} *)

val install : t -> Cricket.Server.t -> unit
(** Install this registry as the server's tenant hooks: admission checks
    lease validity, allocation/stream calls are capped and accounted.
    Tenants without a lease are admitted uncapped (grant to enforce). *)

val hooks : t -> Cricket.Server.tenant_hooks
(** The hooks {!install} uses, exposed so a serving core can wrap them
    (e.g. to add queue-level admission on top of lease validity). *)

(** {1 Statistics} *)

type stats = {
  granted : int;
  expiries : int;
  revocations : int;
  reclaimed_bytes : int;  (** device bytes freed by expiry/revocation *)
  reclaimed_streams : int;
  denied_mallocs : int;  (** allocations refused by the memory cap *)
  denied_streams : int;
  expired_denials : int;  (** calls denied because the lease had expired *)
}

val stats : t -> stats
val leases : t -> lease list
(** Sorted by tenant name. *)

val allocs : t -> tenant:string -> (int64 * int * int) list
(** The tenant's ledger of live device allocations as
    [(ptr, device, size)], sorted — the ground truth migration tests
    audit against the arena on both servers. *)

(** {1 Live-migration handoff}

    The lease follows the session: {!export} serializes it on the source
    (a pure read — the source stays authoritative until commit), the blob
    rides the migration commit RPC, {!adopt} installs it on the
    destination, and only after the commit succeeded does the source call
    {!complete_handoff} to reclaim its now-stale copies and forget the
    tenant. An abort at any earlier point leaves the source lease
    untouched. *)

val export : t -> tenant:string -> (string, [ `Unknown_tenant | `Not_active ]) result
(** Serialize an active lease + its resource ledger. Does not modify the
    registry. *)

val adopt : t -> string -> (lease, string) result
(** Install an exported lease into this registry (destination side),
    including its resource ledger so later reclaim frees the migrated
    copies. Replaces any existing entry for the tenant without reclaim —
    the migration has just overwritten the local device state it
    described. *)

val complete_handoff : t -> tenant:string -> unit
(** Source side, after a committed migration: reclaim the source copies of
    the tenant's device resources and drop the lease. Unknown tenants are
    ignored. *)

val migrated_out : t -> int
(** Sessions handed off to another server. *)

val adopted : t -> int
(** Sessions adopted from another server. *)
