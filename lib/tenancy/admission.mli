(** Admission control and backpressure for the multi-tenant serving core.

    Every offered work item passes through an admission gate before it may
    queue for dispatch. The gate bounds in-flight work (admitted but not
    yet completed) both per tenant and globally, and sheds load under a
    configurable high-water mark — rejected items get a typed reason
    instead of queueing without bound, so an overloaded server never hangs
    its tenants and never grows unbounded queues.

    Decision order for an offer from tenant [i]:
    + global in-flight [>= global_window] → [Overloaded] (hard wall);
    + global in-flight [>= high_water] and tenant [i] already has work in
      flight → [Overloaded] (load shedding: under pressure only tenants
      with {e nothing} in flight are admitted, which protects light
      tenants from heavy ones);
    + tenant in-flight [>= per_tenant_window] → [Over_quota];
    + otherwise admitted.

    All state is plain arrays indexed by tenant id — deterministic and
    allocation-free on the hot path. *)

type reject_reason = Over_quota | Overloaded | Lease_expired

val reject_to_string : reject_reason -> string

exception Rejected of reject_reason
(** Raised to a tenant whose work was refused (by the serving core, not by
    this module — {!offer} returns the reason). *)

type config = {
  per_tenant_window : int;  (** max in-flight items per tenant *)
  global_window : int;  (** hard bound on total in-flight items *)
  high_water : int;  (** load-shedding threshold, [<= global_window] *)
}

val default : config
(** 4 per tenant, 4096 global, high water 2048. *)

val unlimited : config
(** No windows (all [max_int]) — for closed-loop harnesses that generate
    work only as fast as it completes. *)

type t

val create : ?config:config -> n_tenants:int -> unit -> t

val offer : t -> tenant:int -> (unit, reject_reason) result
(** Admit (and count in flight) or reject one item. *)

val complete : t -> tenant:int -> unit
(** An admitted item finished (or was abandoned); frees its window slot. *)

val inflight : t -> int
val tenant_inflight : t -> int -> int

type stats = {
  admitted : int;
  rejected_quota : int;
  rejected_overload : int;
  shed : int;  (** [Overloaded] rejections issued below the hard wall *)
}

val stats : t -> stats
