(** Online fair-share dispatch for the serving core.

    Generalizes the offline {!Cricket.Sched} policies into an online
    queue: work arrives over (virtual) time, and the dispatcher decides
    which tenant's head-of-line item runs next. The policy type is shared
    with the offline scheduler so benchmarks compare like for like.

    - [Fifo] — one global arrival-order queue; no isolation.
    - [Round_robin] — deficit round robin (DRR) across tenants. Each
      active tenant holds a deficit in virtual nanoseconds; serving an
      item {e post-charges} its measured cost (GPU work cost is unknown
      until executed), and a tenant whose deficit is exhausted rotates to
      the back of the ring and tops up by one quantum. Long-term
      throughput share converges to equal per-tenant regardless of item
      cost, which is what the Jain index in the load reports measures.
    - [Priority] — strict priority classes (smaller value is more
      urgent; class 0 preempts class 1 between items), DRR within a
      class. Starvation of low classes is possible by design; the
      scheduler property tests bound it for finite high-class work.

    The service contract is run-to-completion per item: {!next} hands out
    one item and {!charge} must report its cost before the next {!next}.
    All internal orders (ring activation, class iteration) are
    deterministic functions of the enqueue sequence. *)

type policy = Cricket.Sched.policy

val default_quantum_ns : int
(** 5 ms of virtual GPU time. *)

type 'a t

val create :
  policy:policy ->
  ?quantum_ns:int ->
  tenants:string array ->
  priorities:int array ->
  unit ->
  'a t
(** [tenants.(i)] names tenant id [i]; [priorities.(i)] is its class
    (used by [Priority] only). Arrays must have equal length. *)

val enqueue : 'a t -> tenant:int -> 'a -> unit

val next : 'a t -> (int * 'a) option
(** Pop the item to serve next, with its tenant id. [None] when idle.
    Must be followed by {!charge} for that tenant before the next call. *)

val charge : 'a t -> tenant:int -> cost_ns:int -> unit
(** Post-charge the cost of the item just served (DRR accounting; a
    no-op under [Fifo]). *)

val pending : 'a t -> int
(** Items currently queued. *)

val tenant_pending : 'a t -> int -> int
val rotations : 'a t -> int
(** DRR ring rotations performed (quantum exhaustions) — a cheap proxy
    for scheduling overhead in benchmarks. *)
