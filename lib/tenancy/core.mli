(** The multi-tenant serving core: leases + admission + fair-share
    dispatch glued into one virtual-time serving loop.

    The core sits between transports and a {!Cricket.Server}. Work
    arrives as {!item}s — a tenant, a virtual arrival time, and a closure
    that performs the tenant's calls against the server. The loop:

    + admits every due arrival through {!Admission} (typed rejection
      instead of unbounded queueing);
    + asks {!Dispatch} which tenant's head-of-line item runs next;
    + re-validates the tenant's {!Lease} (an item admitted while the
      lease was live can still find it expired by the time it is served —
      it is rejected with [Lease_expired], and the lease's device memory
      has already been reclaimed);
    + runs the item to completion, measuring the virtual time it
      consumed, and post-charges that cost to the DRR ring;
    + records the item's sojourn (completion − arrival) into per-tenant
      and aggregate {!Obs.Histogram}s.

    When the queues drain, virtual time advances to the next arrival, so
    a run is a deterministic function of the item set. Per-call
    enforcement (lease validity on every RPC, memory/stream caps) is
    installed into the server via {!Lease.install} at {!create} time. *)

module Time = Simnet.Time

type tenant_spec = {
  name : string;
  priority : int;  (** class under [Priority]; smaller is more urgent *)
  caps : Lease.caps option;  (** [None] = no lease, uncapped *)
}

type item = {
  tenant : int;  (** index into the [tenants] array *)
  arrival : Time.t;
  work : unit -> unit;
}

type tenant_result = {
  name : string;
  completed : int;
  rejected_quota : int;
  rejected_overload : int;
  rejected_expired : int;
  errors : int;  (** items whose work raised (run still completes) *)
  busy_ns : int64;  (** virtual ns of service consumed *)
  sojourn : Obs.Histogram.t;  (** completion − arrival, completed items *)
}

type ev_kind = Served | Shed of Admission.reject_reason

type event = {
  ev_time : Time.t;  (** engine clock when the decision was made *)
  ev_arrival : Time.t;
  ev_tenant : int;  (** index into the [tenants] array *)
  ev_seq : int;  (** emission index; tie-break among same-instant events *)
  ev_kind : ev_kind;
}
(** One serving decision. The timeline is emitted in strictly increasing
    (ev_time, ev_seq) order — the sortedness contract [Par.Merge]
    assumes when sharded runs are recombined into one global order. *)

type result = {
  policy : Cricket.Sched.policy;
  tenants : tenant_result array;
  aggregate : Obs.Histogram.t;
  jain : float;  (** Jain index over per-tenant [busy_ns]; 1.0 = equal *)
  makespan : Time.t;
  completed : int;
  rejected : int;
  admission : Admission.stats;
  lease : Lease.stats;
  timeline : event array;  (** every decision, in (ev_time, ev_seq) order *)
}

type t

val create :
  engine:Simnet.Engine.t ->
  server:Cricket.Server.t ->
  policy:Cricket.Sched.policy ->
  ?quantum_ns:int ->
  ?admission:Admission.config ->
  ?obs:Obs.Recorder.t ->
  tenants:tenant_spec array ->
  unit ->
  t
(** Grants a lease per tenant with caps, installs the lease registry as
    the server's tenant hooks, and prepares the admission gate. [obs]
    (when enabled) receives per-tenant counters under
    [Obs.Recorder.tenant_label] names ["tenancy.served"] /
    ["tenancy.rejected"]. *)

val lease_registry : t -> Lease.t
(** For renewal, revocation and inspection from tests/harnesses. *)

val dispatch_for : t -> tenant:int -> string -> string
(** Serve one raw RPC record for a tenant through the server's
    tenant-aware dispatch — the connector harnesses hand to transports. *)

val run : t -> item list -> result
(** Serve the items to completion. Items with equal arrival are served
    in list order (stable sort). Reusable: each [run] starts fresh
    per-run statistics but shares leases and the server. *)

val jain_index : int64 array -> float
(** Jain's fairness index over per-tenant service time; tenants with
    zero service are excluded. Used by sharded harnesses to recompute
    global fairness across shard-local results. *)
