(** Multi-tenant load harness: simulate thousands of clients against one
    serving core and report per-tenant latency, rejection and fairness.

    Each simulated tenant is a real {!Cricket.Client} connected through a
    loopback transport to the tenant-aware server dispatch, generating a
    Poisson stream of work items drawn from a fixed mix (control-plane
    Small items, PCIe-bound Transfer items, GPU-bound Compute items, plus
    a configurable fraction of heavy tenants that multiply their work).
    Everything — arrivals, item kinds, payloads — derives from the seed,
    so a run's report is byte-reproducible: equal seeds give equal
    reports, which CI checks by diffing two runs.

    The tenant set is partitioned over [shards] logical shards — each a
    complete, self-contained serving core (own engine, server, leases,
    admission, DRR) — executed across [domains] OCaml domains by
    {!Par.Pool} and recombined through the deterministic virtual-time
    merge ({!Par.Merge}, ordered by (vtime, shard, seq)). The shard
    split is a pure function of tenant id and shard count, so the
    rendered report is byte-identical for any [domains]; only wall-clock
    time changes.

    A fresh engine + server set is built per policy so the three
    policies serve identical offered load. *)

module Time = Simnet.Time

type params = {
  tenants : int;
  items_per_tenant : int;
  seed : int;
  mean_gap : Time.t;  (** per-tenant Poisson inter-arrival mean *)
  policies : Cricket.Sched.policy list;
  quantum_ns : int;
  admission : Admission.config;
  caps : Lease.caps;  (** granted to every tenant *)
  heavy_every : int;  (** every k-th tenant is heavy; 0 disables *)
  heavy_factor : int;  (** heavy tenants repeat each item this often *)
  uniform : bool;
      (** all tenants run identical cheap items (no mix, no heavies) —
          the workload under which DRR's Jain index should approach 1 *)
  shards : int;
      (** logical serving shards the tenant set is partitioned over;
          part of the workload definition, independent of [domains] *)
  domains : int;
      (** OCaml domains executing the shards (clamped to [1, shards]);
          never affects report bytes, only wall-clock time *)
}

val default : params
(** 10k tenants, 2 items each, all three policies, windows sized so the
    admission gate engages under the offered load. *)

val smoke : params
(** CI-sized: 1k tenants, tighter windows, same determinism. *)

type percentiles = { p50_us : float; p99_us : float }

type report = {
  policy : Cricket.Sched.policy;
  tenants : int;
  items : int;  (** offered (generated) items *)
  shards : int;
  completed : int;
  rejected_quota : int;
  rejected_overload : int;
  rejected_expired : int;
  errors : int;
  makespan_ms : float;
  latency : percentiles;  (** aggregate sojourn over the merged timeline *)
  tenant_p99_min_us : float;  (** spread of per-tenant p99 sojourn *)
  tenant_p99_med_us : float;
  tenant_p99_max_us : float;
  jain : float;
  events : int;  (** merged timeline length (served + shed) *)
  digest : int64;
      (** FNV-1a over the merged (vtime, shard, seq, payload) order —
          pinned byte-identical across --domains counts *)
}

val run_policy : params -> Cricket.Sched.policy -> report
val run : params -> report list
(** One report per entry of [params.policies]. *)

val to_string : report list -> string
(** Fixed-format table; byte-identical across equal-seed runs. *)
