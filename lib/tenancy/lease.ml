module Time = Simnet.Time

type caps = { mem_bytes : int; streams : int; ttl : Time.t }

let default_caps =
  { mem_bytes = 64 * 1024 * 1024; streams = 8; ttl = Time.s 3600 }

type state = Active | Expired | Revoked

type lease = {
  tenant : string;
  mutable caps : caps;
  mutable granted_at : Time.t;
  mutable expires_at : Time.t;
  mutable state : state;
  mutable mem_used : int;
  mutable live_streams : int;
  mutable renewals : int;
}

(* Per-lease resource ledger: which device each allocation/stream lives
   on, so reclaim can free it even after the tenant switched devices.
   Keyed by (device, ptr), not bare ptr: each device's arena hands out
   its own pointer values, so the same ptr can be live on two devices at
   once in a multi-device session. *)
type ledger = {
  allocs : (int * int64, int) Hashtbl.t;  (* device, ptr -> size *)
  stream_handles : (int * int64, unit) Hashtbl.t;  (* device, handle *)
}

type stats = {
  granted : int;
  expiries : int;
  revocations : int;
  reclaimed_bytes : int;
  reclaimed_streams : int;
  denied_mallocs : int;
  denied_streams : int;
  expired_denials : int;
}

type t = {
  now : unit -> Time.t;
  ctx : unit -> Cudasim.Context.t;
  table : (string, lease * ledger) Hashtbl.t;
  mutable granted : int;
  mutable expiries : int;
  mutable revocations : int;
  mutable reclaimed_bytes : int;
  mutable reclaimed_streams : int;
  mutable denied_mallocs : int;
  mutable denied_streams : int;
  mutable expired_denials : int;
  mutable migrated_out : int;
  mutable adopted : int;
}

let create ~now ~ctx () =
  {
    now;
    ctx;
    table = Hashtbl.create 64;
    granted = 0;
    expiries = 0;
    revocations = 0;
    reclaimed_bytes = 0;
    reclaimed_streams = 0;
    denied_mallocs = 0;
    denied_streams = 0;
    expired_denials = 0;
    migrated_out = 0;
    adopted = 0;
  }

let find t tenant =
  match Hashtbl.find_opt t.table tenant with
  | Some (l, _) -> Some l
  | None -> None

(* Free every allocation and stream the lease still holds, on the device
   it was created on, restoring the context's selected device after. *)
let reclaim t (lease, ledger) =
  let ctx = t.ctx () in
  let saved = Cudasim.Context.current ctx in
  let on_device dev f =
    if Cudasim.Context.current ctx <> dev then
      ignore (Cudasim.Context.set_current ctx dev);
    f ()
  in
  Hashtbl.iter
    (fun (dev, ptr) size ->
      on_device dev (fun () ->
          match Cudasim.Api.free ctx ptr with
          | Cudasim.Error.Success ->
              t.reclaimed_bytes <- t.reclaimed_bytes + size
          | _ -> ()))
    ledger.allocs;
  Hashtbl.reset ledger.allocs;
  Hashtbl.iter
    (fun (dev, handle) () ->
      on_device dev (fun () ->
          match Cudasim.Api.stream_destroy ctx handle with
          | Cudasim.Error.Success ->
              t.reclaimed_streams <- t.reclaimed_streams + 1
          | _ -> ()))
    ledger.stream_handles;
  Hashtbl.reset ledger.stream_handles;
  ignore (Cudasim.Context.set_current ctx saved);
  lease.mem_used <- 0;
  lease.live_streams <- 0

let expire t entry =
  let lease, _ = entry in
  lease.state <- Expired;
  t.expiries <- t.expiries + 1;
  reclaim t entry

let revoke_entry t entry =
  let lease, _ = entry in
  lease.state <- Revoked;
  t.revocations <- t.revocations + 1;
  reclaim t entry

let grant t ~tenant caps =
  (match Hashtbl.find_opt t.table tenant with
  | Some ((lease, _) as entry) when lease.state = Active ->
      revoke_entry t entry
  | _ -> ());
  let now = t.now () in
  let lease =
    {
      tenant;
      caps;
      granted_at = now;
      expires_at = Int64.add now caps.ttl;
      state = Active;
      mem_used = 0;
      live_streams = 0;
      renewals = 0;
    }
  in
  let ledger =
    { allocs = Hashtbl.create 16; stream_handles = Hashtbl.create 8 }
  in
  Hashtbl.replace t.table tenant (lease, ledger);
  t.granted <- t.granted + 1;
  lease

let check t ~tenant =
  match Hashtbl.find_opt t.table tenant with
  | None -> Error `Unknown_tenant
  | Some ((lease, _) as entry) -> (
      match lease.state with
      | Revoked -> Error `Revoked
      | Expired -> Error `Expired
      | Active ->
          if Int64.compare (t.now ()) lease.expires_at > 0 then begin
            expire t entry;
            Error `Expired
          end
          else Ok lease)

let renew t ~tenant =
  match Hashtbl.find_opt t.table tenant with
  | None -> Error `Unknown_tenant
  | Some ((lease, _) as entry) -> (
      match lease.state with
      | Expired | Revoked -> Error `Not_active
      | Active ->
          let now = t.now () in
          if Int64.compare now lease.expires_at > 0 then begin
            expire t entry;
            Error `Not_active
          end
          else begin
            lease.expires_at <- Int64.add now lease.caps.ttl;
            lease.renewals <- lease.renewals + 1;
            Ok lease.expires_at
          end)

let revoke t ~tenant =
  match Hashtbl.find_opt t.table tenant with
  | Some ((lease, _) as entry) when lease.state = Active ->
      revoke_entry t entry
  | _ -> ()

let expire_due t =
  let now = t.now () in
  let due =
    Hashtbl.fold
      (fun _ ((lease, _) as entry) acc ->
        if lease.state = Active && Int64.compare now lease.expires_at > 0
        then entry :: acc
        else acc)
      t.table []
  in
  (* Deterministic order: reclaim in tenant-name order. *)
  let due =
    List.sort (fun (a, _) (b, _) -> compare a.tenant b.tenant) due
  in
  List.iter (expire t) due

(* {1 Server hooks} *)

let entry_if_active t tenant =
  match Hashtbl.find_opt t.table tenant with
  | Some ((lease, _) as entry) when lease.state = Active -> Some entry
  | _ -> None

let hooks t : Cricket.Server.tenant_hooks =
  {
    admit =
      (fun ~tenant ->
        match check t ~tenant with
        | Ok _ | Error `Unknown_tenant -> None
        | Error (`Expired | `Revoked) ->
            t.expired_denials <- t.expired_denials + 1;
            Some `Lease_expired);
    malloc_allowed =
      (fun ~tenant ~size ->
        match entry_if_active t tenant with
        | None -> true
        | Some (lease, _) ->
            let ok =
              lease.mem_used + Int64.to_int size <= lease.caps.mem_bytes
            in
            if not ok then t.denied_mallocs <- t.denied_mallocs + 1;
            ok);
    note_malloc =
      (fun ~tenant ~ptr ~size ->
        match entry_if_active t tenant with
        | None -> ()
        | Some (lease, ledger) ->
            let dev = Cudasim.Context.current (t.ctx ()) in
            Hashtbl.replace ledger.allocs (dev, ptr) (Int64.to_int size);
            lease.mem_used <- lease.mem_used + Int64.to_int size);
    note_free =
      (fun ~tenant ~ptr ->
        match entry_if_active t tenant with
        | None -> ()
        | Some (lease, ledger) -> (
            let dev = Cudasim.Context.current (t.ctx ()) in
            match Hashtbl.find_opt ledger.allocs (dev, ptr) with
            | None -> ()
            | Some size ->
                Hashtbl.remove ledger.allocs (dev, ptr);
                lease.mem_used <- lease.mem_used - size));
    stream_allowed =
      (fun ~tenant ->
        match entry_if_active t tenant with
        | None -> true
        | Some (lease, _) ->
            let ok = lease.live_streams < lease.caps.streams in
            if not ok then t.denied_streams <- t.denied_streams + 1;
            ok);
    note_stream_create =
      (fun ~tenant ~handle ->
        match entry_if_active t tenant with
        | None -> ()
        | Some (lease, ledger) ->
            let dev = Cudasim.Context.current (t.ctx ()) in
            Hashtbl.replace ledger.stream_handles (dev, handle) ();
            lease.live_streams <- lease.live_streams + 1);
    note_stream_destroy =
      (fun ~tenant ~handle ->
        match entry_if_active t tenant with
        | None -> ()
        | Some (lease, ledger) ->
            let dev = Cudasim.Context.current (t.ctx ()) in
            if Hashtbl.mem ledger.stream_handles (dev, handle) then begin
              Hashtbl.remove ledger.stream_handles (dev, handle);
              lease.live_streams <- lease.live_streams - 1
            end);
  }

let install t server = Cricket.Server.set_tenant_hooks server (hooks t)

let stats t : stats =
  {
    granted = t.granted;
    expiries = t.expiries;
    revocations = t.revocations;
    reclaimed_bytes = t.reclaimed_bytes;
    reclaimed_streams = t.reclaimed_streams;
    denied_mallocs = t.denied_mallocs;
    denied_streams = t.denied_streams;
    expired_denials = t.expired_denials;
  }

let leases t =
  Hashtbl.fold (fun _ (l, _) acc -> l :: acc) t.table []
  |> List.sort (fun a b -> compare a.tenant b.tenant)

let allocs t ~tenant =
  match Hashtbl.find_opt t.table tenant with
  | None -> []
  | Some (_, ledger) ->
      Hashtbl.fold
        (fun (dev, ptr) size acc -> (ptr, dev, size) :: acc)
        ledger.allocs []
      |> List.sort compare

(* {1 Migration handoff}

   A lease travels between registries as a self-contained blob: caps,
   timing, and the resource ledger (which the destination needs so reclaim
   keeps working after adoption — device memory was copied by the
   migration, the accounting must follow it). *)

type portable = {
  p_tenant : string;
  p_caps : caps;
  p_granted_at : Time.t;
  p_expires_at : Time.t;
  p_renewals : int;
  p_mem_used : int;
  p_live_streams : int;
  p_allocs : (int64 * (int * int)) list;
  p_streams : (int64 * int) list;
}

let export t ~tenant =
  match Hashtbl.find_opt t.table tenant with
  | None -> Error `Unknown_tenant
  | Some (lease, ledger) ->
      if lease.state <> Active then Error `Not_active
      else
        Ok
          (Marshal.to_string
             {
               p_tenant = tenant;
               p_caps = lease.caps;
               p_granted_at = lease.granted_at;
               p_expires_at = lease.expires_at;
               p_renewals = lease.renewals;
               p_mem_used = lease.mem_used;
               p_live_streams = lease.live_streams;
               p_allocs =
                 Hashtbl.fold
                   (fun (dev, ptr) size acc -> (ptr, (dev, size)) :: acc)
                   ledger.allocs []
                 |> List.sort compare;
               p_streams =
                 Hashtbl.fold
                   (fun (dev, handle) () acc -> (handle, dev) :: acc)
                   ledger.stream_handles []
                 |> List.sort compare;
             }
             [])

let adopt t blob =
  match (Marshal.from_string blob 0 : portable) with
  | exception _ -> Error "unreadable lease blob"
  | p ->
      (* An adopted lease supersedes any lease this registry already holds
         for the tenant; that one's resources belong to old local state,
         which migration just overwrote, so drop it without reclaim. *)
      Hashtbl.remove t.table p.p_tenant;
      let lease =
        {
          tenant = p.p_tenant;
          caps = p.p_caps;
          granted_at = p.p_granted_at;
          expires_at = p.p_expires_at;
          state = Active;
          mem_used = p.p_mem_used;
          live_streams = p.p_live_streams;
          renewals = p.p_renewals;
        }
      in
      let ledger =
        { allocs = Hashtbl.create 16; stream_handles = Hashtbl.create 8 }
      in
      List.iter
        (fun (ptr, (dev, size)) ->
          Hashtbl.replace ledger.allocs (dev, ptr) size)
        p.p_allocs;
      List.iter
        (fun (handle, dev) ->
          Hashtbl.replace ledger.stream_handles (dev, handle) ())
        p.p_streams;
      Hashtbl.replace t.table p.p_tenant (lease, ledger);
      t.adopted <- t.adopted + 1;
      Ok lease

(* After a committed migration the source must forget the session without
   freeing device resources: they now live (copied) on the destination,
   and the source context will be dropped or reused for other tenants —
   its copies are freed here so the source arena does not leak. *)
let complete_handoff t ~tenant =
  match Hashtbl.find_opt t.table tenant with
  | None -> ()
  | Some entry ->
      reclaim t entry;
      Hashtbl.remove t.table tenant;
      t.migrated_out <- t.migrated_out + 1

let migrated_out t = t.migrated_out
let adopted t = t.adopted
