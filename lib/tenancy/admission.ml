type reject_reason = Over_quota | Overloaded | Lease_expired

let reject_to_string = function
  | Over_quota -> "over-quota"
  | Overloaded -> "overloaded"
  | Lease_expired -> "lease-expired"

exception Rejected of reject_reason

let () =
  Printexc.register_printer (function
    | Rejected r -> Some ("Tenancy.Admission.Rejected " ^ reject_to_string r)
    | _ -> None)

type config = {
  per_tenant_window : int;
  global_window : int;
  high_water : int;
}

let default = { per_tenant_window = 4; global_window = 4096; high_water = 2048 }

let unlimited =
  { per_tenant_window = max_int; global_window = max_int; high_water = max_int }

type stats = {
  admitted : int;
  rejected_quota : int;
  rejected_overload : int;
  shed : int;
}

type t = {
  config : config;
  per_tenant : int array;
  mutable total : int;
  mutable admitted : int;
  mutable rejected_quota : int;
  mutable rejected_overload : int;
  mutable shed : int;
}

let create ?(config = default) ~n_tenants () =
  if n_tenants < 1 then invalid_arg "Admission.create: n_tenants";
  if config.per_tenant_window < 1 || config.global_window < 1 then
    invalid_arg "Admission.create: windows must be positive";
  if config.high_water > config.global_window then
    invalid_arg "Admission.create: high_water > global_window";
  {
    config;
    per_tenant = Array.make n_tenants 0;
    total = 0;
    admitted = 0;
    rejected_quota = 0;
    rejected_overload = 0;
    shed = 0;
  }

let offer t ~tenant =
  let c = t.config in
  if t.total >= c.global_window then begin
    t.rejected_overload <- t.rejected_overload + 1;
    Error Overloaded
  end
  else if t.total >= c.high_water && t.per_tenant.(tenant) > 0 then begin
    t.rejected_overload <- t.rejected_overload + 1;
    t.shed <- t.shed + 1;
    Error Overloaded
  end
  else if t.per_tenant.(tenant) >= c.per_tenant_window then begin
    t.rejected_quota <- t.rejected_quota + 1;
    Error Over_quota
  end
  else begin
    t.per_tenant.(tenant) <- t.per_tenant.(tenant) + 1;
    t.total <- t.total + 1;
    t.admitted <- t.admitted + 1;
    Ok ()
  end

let complete t ~tenant =
  if t.per_tenant.(tenant) <= 0 then
    invalid_arg "Admission.complete: tenant has nothing in flight";
  t.per_tenant.(tenant) <- t.per_tenant.(tenant) - 1;
  t.total <- t.total - 1

let inflight t = t.total
let tenant_inflight t i = t.per_tenant.(i)

let stats t =
  {
    admitted = t.admitted;
    rejected_quota = t.rejected_quota;
    rejected_overload = t.rejected_overload;
    shed = t.shed;
  }
