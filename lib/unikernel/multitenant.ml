module Time = Simnet.Time
module Engine = Simnet.Engine

type step = Cricket.Client.t -> unit

type tenant_spec = {
  name : string;
  config : Config.t;
  priority : int;
  work : step list;
}

type tenant_report = {
  tenant : string;
  steps : int;
  api_calls : int;
  finished_at : Simnet.Time.t;
}

type report = {
  policy : Cricket.Sched.policy;
  tenants : tenant_report list;
  makespan : Simnet.Time.t;
}

let run ?(policy = Cricket.Sched.Round_robin) ?devices ?memory_capacity
    ?(functional = true) specs =
  if specs = [] then invalid_arg "Multitenant.run: no tenants";
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ?devices ?memory_capacity
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context server) functional;
  let specs_a = Array.of_list specs in
  let core =
    Tenancy.Core.create ~engine ~server ~policy
      (* Quantum of 1 virtual ns: any step with nonzero cost exhausts the
         deficit, so DRR degenerates to one step per tenant per turn —
         the historical Multitenant round-robin granularity. *)
      ~quantum_ns:1
      ~admission:Tenancy.Admission.unlimited
      ~tenants:
        (Array.map
           (fun spec ->
             { Tenancy.Core.name = spec.name; priority = spec.priority;
               caps = None })
           specs_a)
      ()
  in
  (* Each tenant keeps its own RPC channel with its own host profile; the
     channel dispatches through the tenant-aware server path, so tenants
     get separate duplicate-request cache key spaces. *)
  let clients =
    Array.mapi
      (fun i spec ->
        let channel =
          Simchannel.create ~engine ~client:spec.config.Config.profile
            ~dispatch:(fun req -> Tenancy.Core.dispatch_for core ~tenant:i req)
            ()
        in
        Cricket.Client.create
          ~launch_extra_ns:spec.config.Config.launch_extra_ns
          ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
          ~transport:(Simchannel.transport channel)
          ())
      specs_a
  in
  let n = Array.length specs_a in
  let steps_total = Array.map (fun s -> List.length s.work) specs_a in
  let steps_done = Array.make n 0 in
  let finished_at = Array.make n Time.zero in
  let items =
    List.concat
      (List.mapi
         (fun i spec ->
           List.map
             (fun step ->
               {
                 Tenancy.Core.tenant = i;
                 arrival = Time.zero;
                 work =
                   (fun () ->
                     step clients.(i);
                     steps_done.(i) <- steps_done.(i) + 1;
                     if steps_done.(i) = steps_total.(i) then
                       finished_at.(i) <- Engine.now engine);
               })
             spec.work)
         specs)
  in
  let result = Tenancy.Core.run core items in
  let reports =
    List.mapi
      (fun i spec ->
        {
          tenant = spec.name;
          steps = steps_done.(i);
          api_calls = Cricket.Client.api_calls clients.(i);
          finished_at =
            (if steps_done.(i) = steps_total.(i) && steps_total.(i) > 0 then
               finished_at.(i)
             else Engine.now engine);
        })
      specs
  in
  ignore result.Tenancy.Core.completed;
  { policy; tenants = reports; makespan = Engine.now engine }

let pp_report ppf r =
  Format.fprintf ppf "policy %s, makespan %a@."
    (Cricket.Sched.policy_to_string r.policy)
    Time.pp r.makespan;
  List.iter
    (fun t ->
      Format.fprintf ppf "  %-12s %4d steps %6d calls  finished at %a@."
        t.tenant t.steps t.api_calls Time.pp t.finished_at)
    r.tenants
