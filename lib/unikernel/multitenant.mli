(** Many unikernels sharing one Cricket server (§5 of the paper).

    "Because the use case of unikernels involves using many unikernels to
    run isolated applications, mapping entire GPUs to individual
    unikernels is not feasible. In contrast, our approach allows the
    flexibility of sharing GPU devices across many unikernels, managing
    the shared access through configurable schedulers."

    This harness runs N tenant applications against a single Cricket
    server and GPU, each tenant with its own RPC channel (and host
    profile), interleaved at RPC granularity under a scheduling policy:

    - [Fifo]: tenants run to completion in arrival order (head-of-line
      blocking — what static GPU assignment feels like);
    - [Round_robin]: one call per tenant per turn (fair sharing);
    - [Priority]: the most urgent tenant with work left always goes next.

    All tenants share one virtual clock, one server, one GPU — so a
    tenant's kernel executions and transfers delay the others exactly as
    a shared physical device would.

    Since the serving core landed this harness is a thin veneer over
    {!Tenancy.Core} (quantum 1 ns so DRR degenerates to one call per
    tenant per turn, unlimited admission, no leases), kept because its
    step-granularity reports are what EXPERIMENTS.md's §5 tables pin.
    For overload behaviour, leases, and 10k-client scale use
    [Tenancy.Loadgen] / [benchctl tenants]. *)

type step = Cricket.Client.t -> unit
(** One unit of tenant work (typically one or a few CUDA calls). *)

type tenant_spec = {
  name : string;
  config : Config.t;  (** host profile for this tenant's channel *)
  priority : int;  (** smaller = more urgent (Priority policy only) *)
  work : step list;
}

type tenant_report = {
  tenant : string;
  steps : int;
  api_calls : int;
  finished_at : Simnet.Time.t;  (** virtual completion time *)
}

type report = {
  policy : Cricket.Sched.policy;
  tenants : tenant_report list;  (** in input order *)
  makespan : Simnet.Time.t;
}

val run :
  ?policy:Cricket.Sched.policy ->
  ?devices:Gpusim.Device.t list ->
  ?memory_capacity:int ->
  ?functional:bool ->
  tenant_spec list ->
  report

val pp_report : Format.formatter -> report -> unit
