module Time = Simnet.Time
module Engine = Simnet.Engine
module EP = Tcpstack.Endpoint

(* The executable-stack bandwidth ablation behind Figure 7: an iperf-style
   bulk upload from a guest configuration to the bare-metal GPU node, run
   over Endpoint + Netdev with the configuration's negotiated offload
   feature bits. Shared by [bench/figures.ml] (EXPERIMENTS tables) and
   [benchctl offloads]. *)

type result = {
  name : string;
  offloads : Simnet.Offload.t;  (** negotiated, post dependency clamps *)
  bytes : int;
  elapsed : Time.t;  (** handshake completion to last byte delivered *)
  bandwidth_mib_s : float;
  netdev : Tcpstack.Netdev.stats;
  client : EP.stats;
}

let upload ?(server = Config.server_profile) ?(link = Config.link) ?device
    ?fault ~name ~profile ~bytes () =
  if bytes <= 0 then invalid_arg "Netbench.upload";
  let engine = Engine.create () in
  let mss = Simnet.Link.mss link in
  let window = 64 lsl 20 in
  let rto = Time.us 200 in
  let a =
    EP.create ~engine ~name:"guest" ~mss ~iss:0 ~local_port:46000
      ~remote_port:5001 ~rcv_window:window ~rto ()
  in
  let b =
    EP.create ~engine ~name:"server" ~mss ~iss:0 ~local_port:5001
      ~remote_port:46000 ~rcv_window:window ~rto ()
  in
  let nd =
    Tcpstack.Netdev.connect ~engine ~link ?fault ?device ~a:(a, profile)
      ~b:(b, server) ()
  in
  EP.listen b;
  EP.connect a;
  while
    (EP.state a <> EP.Established || EP.state b <> EP.Established)
    && Engine.step engine
  do
    ()
  done;
  let t0 = Engine.now engine in
  EP.send a (Bytes.create bytes);
  EP.close a;
  let received = ref 0 in
  let continue = ref true in
  while !received < bytes && !continue do
    continue := Engine.step engine;
    (* drain as we go so the run is O(bytes), not O(bytes * steps) *)
    if EP.recv_length b > 0 then received := !received + Bytes.length (EP.recv b)
  done;
  if !received < bytes then failwith "Netbench.upload: transfer stalled";
  let elapsed = Time.sub (Engine.now engine) t0 in
  {
    name;
    offloads = Tcpstack.Netdev.negotiated_a nd;
    bytes;
    elapsed;
    bandwidth_mib_s =
      Float.of_int bytes /. 1048576.0 /. Time.to_float_s elapsed;
    netdev = Tcpstack.Netdev.stats nd;
    client = EP.stats a;
  }

(* The paper's Figure 7 line-up: native bare metal, the Linux VM, and the
   two unikernels, each uploading to the bare-metal GPU node. *)
let figure7_configs () =
  ("native", Simnet.Hostprofile.bare_metal_linux)
  :: List.filter_map
       (fun (c : Config.t) ->
         if c.Config.hypervisor <> None then
           Some (c.Config.name, c.Config.profile)
         else None)
       Config.all

let ablation ?server ?link ?device ~bytes () =
  List.map
    (fun (name, profile) -> upload ?server ?link ?device ~name ~profile ~bytes ())
    (figure7_configs ())

let relative ~baseline results =
  List.map
    (fun r -> (r, r.bandwidth_mib_s /. baseline.bandwidth_mib_s))
    results

let pp_result ppf r =
  Format.fprintf ppf
    "%-10s %8.0f MiB/s  %a  (%d wire segs, %d tso frames, %d gro merges, \
     %.1f MiB sw csum)"
    r.name r.bandwidth_mib_s Time.pp r.elapsed
    r.netdev.Tcpstack.Netdev.wire_segments
    r.netdev.Tcpstack.Netdev.tso_frames r.netdev.Tcpstack.Netdev.gro_merged
    (Float.of_int r.netdev.Tcpstack.Netdev.sw_checksum_bytes /. 1048576.0)
