module Time = Simnet.Time
module Engine = Simnet.Engine

type measurement = {
  config : Config.t;
  elapsed : Simnet.Time.t;
  api_calls : int;
  bytes_to_server : int;
  bytes_from_server : int;
  memcpy_up : int;
  memcpy_down : int;
  network_time : Simnet.Time.t;
}

type env = {
  client : Cricket.Client.t;
  engine : Simnet.Engine.t;
  cfg : Config.t;
  server : Cricket.Server.t;
}

(* Thread one recorder through every instrumented layer and drive it off
   the engine's virtual clock, so span durations decompose exactly the
   virtual time the measurement reports. *)
let wire_obs obs ~engine ~server ~client ~channel_obs =
  match obs with
  | None -> ()
  | Some obs ->
      Obs.Recorder.set_clock obs (fun () -> Engine.now engine);
      Cricket.Server.set_obs server obs;
      Cricket.Client.set_obs client obs;
      channel_obs obs

let run ?devices ?memory_capacity ?(functional = true) ?obs (cfg : Config.t)
    app =
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ?devices ?memory_capacity
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context server) functional;
  let channel =
    Simchannel.create ~engine ~client:cfg.Config.profile
      ~dispatch:(Cricket.Server.dispatch server)
      ()
  in
  let client =
    Cricket.Client.create ~launch_extra_ns:cfg.Config.launch_extra_ns
      ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
      ~transport:(Simchannel.transport channel)
      ()
  in
  wire_obs obs ~engine ~server ~client
    ~channel_obs:(Simchannel.set_obs channel);
  let t0 = Engine.now engine in
  (* process startup: load, connect to the Cricket server (TCP handshake) *)
  Engine.advance engine (Time.us 150);
  let env = { client; engine; cfg; server } in
  app env;
  let elapsed = Time.sub (Engine.now engine) t0 in
  let stats = Simchannel.stats channel in
  {
    config = cfg;
    elapsed;
    api_calls = Cricket.Client.api_calls client;
    bytes_to_server = Cricket.Client.bytes_to_server client;
    bytes_from_server = Cricket.Client.bytes_from_server client;
    memcpy_up = Cricket.Client.memcpy_bytes_up client;
    memcpy_down = Cricket.Client.memcpy_bytes_down client;
    network_time = stats.Simchannel.network_time;
  }

(* Like [run], but the RPC bytes traverse the executable TCP stack
   (Tcpchannel: Endpoint + Netdev with the configuration's negotiated
   offloads) instead of the Netcost closed form. The TCP handshake is
   simulated by the channel itself, so no flat connect charge is added. *)
let run_tcp ?devices ?memory_capacity ?(functional = true) ?fault ?device ?obs
    (cfg : Config.t) app =
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ?devices ?memory_capacity
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context server) functional;
  let t0 = Engine.now engine in
  (* process startup: load before the connection is attempted *)
  Engine.advance engine (Time.us 150);
  let channel =
    Tcpchannel.create ~engine ~client:cfg.Config.profile ?fault ?device
      ~dispatch:(Cricket.Server.dispatch server)
      ()
  in
  let client =
    Cricket.Client.create ~launch_extra_ns:cfg.Config.launch_extra_ns
      ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
      ~transport:(Tcpchannel.transport channel)
      ()
  in
  wire_obs obs ~engine ~server ~client
    ~channel_obs:(Tcpchannel.set_obs channel);
  let env = { client; engine; cfg; server } in
  app env;
  let elapsed = Time.sub (Engine.now engine) t0 in
  let stats = Tcpchannel.stats channel in
  ( {
      config = cfg;
      elapsed;
      api_calls = Cricket.Client.api_calls client;
      bytes_to_server = Cricket.Client.bytes_to_server client;
      bytes_from_server = Cricket.Client.bytes_from_server client;
      memcpy_up = Cricket.Client.memcpy_bytes_up client;
      memcpy_down = Cricket.Client.memcpy_bytes_down client;
      network_time = stats.Tcpchannel.network_time;
    },
    channel )

type fault_report = {
  measurement : measurement;
  faults : Simnet.Fault.stats;
  rpc_retries : int;
  rpc_timeouts : int;
  reconnects : int;
  crashes : int;
  recoveries : int;
  replayed_calls : int;
  checkpoints : int;
  dup_hits : int;
}

let run_with_faults ?devices ?memory_capacity ?(functional = true) ?retry
    ?checkpoint_every ?obs ~plan (cfg : Config.t) app =
  let engine = Engine.create () in
  let clock = Cudasim.Context.engine_clock engine in
  (* a unique temp file so concurrent test binaries never share checkpoints *)
  let ckpt_file = Filename.temp_file "cricket-session" ".ckpt" in
  let checkpoint_dir = Filename.dirname ckpt_file in
  let checkpoint_name = Filename.basename ckpt_file in
  let first =
    Cricket.Server.create ?devices ?memory_capacity ~checkpoint_dir ~clock ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context first) functional;
  let server = ref first in
  (* dup-cache hits die with each crashed server process; aggregate them *)
  let dup_hits_acc = ref 0 in
  let fault = Simnet.Fault.make plan in
  let channel =
    Simchannel.create ~engine ~client:cfg.Config.profile ~fault
      ~on_crash:(fun ~down_for:_ ->
        dup_hits_acc := !dup_hits_acc + Cricket.Server.dup_hits !server;
        let fresh = Cricket.Server.respawn !server in
        Cudasim.Context.set_functional
          (Cricket.Server.context fresh)
          functional;
        (* a respawned process starts with recording detached *)
        (match obs with
        | Some obs -> Cricket.Server.set_obs fresh obs
        | None -> ());
        server := fresh)
      ~dispatch:(fun request -> Cricket.Server.dispatch !server request)
      ()
  in
  let client =
    Cricket.Client.create ~launch_extra_ns:cfg.Config.launch_extra_ns
      ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
      ~transport:(Simchannel.transport channel)
      ()
  in
  Cricket.Client.enable_recovery ?retry ?checkpoint_every ~checkpoint_name
    client
    ~now:(fun () -> Engine.now engine)
    ~sleep:(fun ns -> Engine.advance engine ns)
    ~reconnect:(fun () -> Simchannel.reconnect channel)
    ();
  wire_obs obs ~engine ~server:!server ~client
    ~channel_obs:(Simchannel.set_obs channel);
  let t0 = Engine.now engine in
  Engine.advance engine (Time.us 150);
  let finish () =
    let elapsed = Time.sub (Engine.now engine) t0 in
    let stats = Simchannel.stats channel in
    let measurement =
      {
        config = cfg;
        elapsed;
        api_calls = Cricket.Client.api_calls client;
        bytes_to_server = Cricket.Client.bytes_to_server client;
        bytes_from_server = Cricket.Client.bytes_from_server client;
        memcpy_up = Cricket.Client.memcpy_bytes_up client;
        memcpy_down = Cricket.Client.memcpy_bytes_down client;
        network_time = stats.Simchannel.network_time;
      }
    in
    let rpc = Oncrpc.Client.stats (Cricket.Client.rpc client) in
    {
      measurement;
      faults = Simnet.Fault.stats fault;
      rpc_retries = rpc.Oncrpc.Client.retries;
      rpc_timeouts = rpc.Oncrpc.Client.timeouts;
      reconnects = stats.Simchannel.reconnects;
      crashes = stats.Simchannel.crashes;
      recoveries = Cricket.Client.recoveries client;
      replayed_calls = Cricket.Client.replayed_calls client;
      checkpoints = Cricket.Client.checkpoints_taken client;
      dup_hits = !dup_hits_acc + Cricket.Server.dup_hits !server;
    }
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt_file with Sys_error _ -> ())
    (fun () ->
      let env = { client; engine; cfg; server = !server } in
      app env;
      finish ())

let charge_rng env n =
  let ns = Float.of_int n *. env.cfg.Config.rng_ns_per_byte in
  Engine.advance env.engine (Time.of_float_ns ns)

let pp_measurement ppf m =
  Format.fprintf ppf "%-9s %a (%d API calls, %.2f MiB up, %.2f MiB down)"
    m.config.Config.name Time.pp m.elapsed m.api_calls
    (Float.of_int m.bytes_to_server /. 1048576.0)
    (Float.of_int m.bytes_from_server /. 1048576.0)

let pp_fault_report ppf r =
  Format.fprintf ppf
    "%a@ faults: %a@ rpc: %d retries, %d timeouts, %d reconnects@ recovery: \
     %d crashes, %d recoveries, %d replayed, %d checkpoints, %d dup hits"
    pp_measurement r.measurement Simnet.Fault.pp_stats r.faults r.rpc_retries
    r.rpc_timeouts r.reconnects r.crashes r.recoveries r.replayed_calls
    r.checkpoints r.dup_hits
