(** Application runner: executes a Cricket GPU application inside a
    simulated host configuration and measures it the way the paper does
    (GNU [time] around the whole process, including initialization).

    For each run a fresh virtual clock, Cricket server (native GPU node)
    and client (with the configuration's network profile and language
    runtime parameters) are created. The measurement is the virtual time
    between process start and the app function returning. *)

type measurement = {
  config : Config.t;
  elapsed : Simnet.Time.t;  (** total virtual wall time (GNU time style) *)
  api_calls : int;  (** CUDA API calls the client issued *)
  bytes_to_server : int;  (** RPC argument payload bytes *)
  bytes_from_server : int;
  memcpy_up : int;  (** cudaMemcpy H2D payload — the paper's transfer metric *)
  memcpy_down : int;
  network_time : Simnet.Time.t;  (** time attributable to the channel *)
}

type env = {
  client : Cricket.Client.t;
  engine : Simnet.Engine.t;
  cfg : Config.t;
  server : Cricket.Server.t;
}

val run :
  ?devices:Gpusim.Device.t list ->
  ?memory_capacity:int ->
  ?functional:bool ->
  ?obs:Obs.Recorder.t ->
  Config.t ->
  (env -> unit) ->
  measurement
(** [functional] (default [true]) controls whether kernels mutate device
    memory; see {!Cudasim.Context.set_functional}.

    [obs] threads one observability recorder through every instrumented
    layer — Cricket client shim, RPC client/server, channel, GPU
    simulator — and installs the run's virtual clock on it, so its spans
    ({!Obs.Recorder.spans}) decompose [elapsed] by layer. Enable it with
    {!Obs.Recorder.set_enabled} before the run; without [obs] nothing is
    recorded and the run costs one branch per would-be event. *)

val run_tcp :
  ?devices:Gpusim.Device.t list ->
  ?memory_capacity:int ->
  ?functional:bool ->
  ?fault:Simnet.Fault.t ->
  ?device:Simnet.Offload.t ->
  ?obs:Obs.Recorder.t ->
  Config.t ->
  (env -> unit) ->
  measurement * Tcpchannel.t
(** Like {!run}, but the RPC bytes traverse the executable TCP stack
    ({!Tcpchannel}: endpoints + virtio-style netdev with the
    configuration's negotiated offloads) instead of the
    {!Simnet.Netcost} closed form. Returns the channel too, for netdev /
    endpoint statistics. A [fault] plan applies per TCP segment; the
    stack heals losses by retransmission rather than surfacing
    timeouts. *)

(** {1 Fault-injected runs} *)

type fault_report = {
  measurement : measurement;
  faults : Simnet.Fault.stats;  (** what the plan actually injected *)
  rpc_retries : int;  (** RPC retransmissions the client performed *)
  rpc_timeouts : int;  (** attempts that ended in a modelled timeout *)
  reconnects : int;  (** successful channel reconnections *)
  crashes : int;  (** scheduled server crashes that fired *)
  recoveries : int;  (** completed restore+replay recoveries *)
  replayed_calls : int;  (** journaled calls re-issued during recovery *)
  checkpoints : int;  (** automatic checkpoints taken *)
  dup_hits : int;  (** at-most-once cache hits, summed across respawns *)
}

val run_with_faults :
  ?devices:Gpusim.Device.t list ->
  ?memory_capacity:int ->
  ?functional:bool ->
  ?retry:Oncrpc.Client.retry_policy ->
  ?checkpoint_every:int ->
  ?obs:Obs.Recorder.t ->
  plan:Simnet.Fault.plan ->
  Config.t ->
  (env -> unit) ->
  fault_report
(** Like {!run}, but the channel runs under the fault plan and the full
    recovery stack is armed: client-side retries with virtual-time backoff
    ([retry], default {!Oncrpc.Client.default_retry}), the server's
    at-most-once duplicate-request cache, session checkpoint/journal/replay
    recovery ([checkpoint_every], default 64), and automatic server respawn
    when a scheduled crash fires. Fully deterministic for a fixed (plan,
    workload, config) triple. Checkpoints go to a fresh temp file that is
    removed afterwards. Raises {!Cricket.Client.Session_lost} if the plan
    defeats recovery (e.g. back-to-back crashes). *)

val charge_rng : env -> int -> unit
(** Account generation of [n] input bytes at the configuration's RNG
    cost — how the C/Rust initialization difference enters benchmarks. *)

val pp_measurement : Format.formatter -> measurement -> unit
val pp_fault_report : Format.formatter -> fault_report -> unit
