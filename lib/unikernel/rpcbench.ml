module Time = Simnet.Time
module Engine = Simnet.Engine
module O = Simnet.Offload

(* Small-call throughput harness for the RPC engine (the RPCAcc
   experiment): an echo program served over the executable TCP stack,
   driven with a pipelined window of small calls (64-byte opaque args by
   default), under three rx-path modes:

   - [Software]: the engine is present but offers no rpc feature bits, so
     framing, header parse and dispatch routing are all charged as host
     software work per call — the baseline the paper's API-forwarding
     latency figure suffers from;
   - [Device_parse]: the device offers framing + parse + steer; what
     lands depends on what the client profile's driver shim acknowledges;
   - [Device_full]: framing + parse + steer + doorbell batching of both
     calls and replies.

   Every call flows through a {!Tenancy.Admission} gate keyed by the
   steered tenant ident before dispatch, and replies are digested
   (FNV-1a) so the test suite can pin that all three modes produce
   byte-identical reply streams. All numbers are virtual-time, hence
   byte-deterministic. *)

type mode = Software | Device_parse | Device_full

let mode_name = function
  | Software -> "software"
  | Device_parse -> "device-parse"
  | Device_full -> "device-parse+doorbell"

let device_of_mode = function
  | Software -> O.none
  | Device_parse ->
      { O.none with O.rpc_framing = true; rpc_parse = true; rpc_steer = true }
  | Device_full -> O.rpc_all O.none

(* the echo program: proc 1 echoes its opaque argument *)
let echo_prog = 0x2f00_0e01
let echo_vers = 1
let echo_proc = 1

type result = {
  profile : string;
  mode : mode;
  calls : int;
  arg_bytes : int;
  window : int;
  elapsed : Time.t;
  calls_per_sec : float;
  negotiated : O.t;
  rpcdev : Tcpstack.Rpcdev.stats option;
  doorbell : Oncrpc.Doorbell.stats option;
  channel : Tcpchannel.stats;
  dup_hits : int;
  admission_rejects : int;
  reply_digest : int64;
}

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let fnv64 h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let make_server () =
  let srv = Oncrpc.Server.create ~name:"rpcacc-echo" () in
  Oncrpc.Server.set_dup_cache srv;
  Oncrpc.Server.register srv ~prog:echo_prog ~vers:echo_vers
    [
      ( echo_proc,
        fun dec enc ->
          let payload = Xdr.Decode.opaque dec in
          Xdr.Encode.opaque enc payload );
    ];
  srv

let encode_call ~xid payload =
  let enc = Xdr.Encode.create () in
  Oncrpc.Message.encode enc
    (Oncrpc.Message.call ~xid ~prog:echo_prog ~vers:echo_vers ~proc:echo_proc
       ());
  Xdr.Encode.opaque enc (Bytes.unsafe_of_string payload);
  Xdr.Encode.to_string enc

let run ?(calls = 2048) ?(arg_bytes = 64) ?(window = 32) ?obs
    ~profile:(name, (profile : Simnet.Hostprofile.t)) ~mode () =
  let engine = Engine.create () in
  let srv = make_server () in
  let tenant_ident = "tenant-0" in
  let admission =
    Tenancy.Admission.create ~config:Tenancy.Admission.unlimited ~n_tenants:1
      ()
  in
  let admission_rejects = ref 0 in
  (* the host dispatch path for device-parsed entries: admission gate on
     the steered tenant ident, then the header-skip fast path; rejections
     answer straight from the device-parsed xid *)
  let dispatch_parsed ~ident:_ (p : Tcpstack.Rpcdev.parsed) record =
    match Tenancy.Admission.offer admission ~tenant:0 with
    | Error reason ->
        incr admission_rejects;
        let reject =
          match reason with
          | Tenancy.Admission.Over_quota -> `Over_quota
          | Tenancy.Admission.Overloaded -> `Overloaded
          | Tenancy.Admission.Lease_expired -> `Lease_expired
        in
        let enc = Xdr.Encode.create () in
        Oncrpc.Message.encode enc
          (Oncrpc.Message.reply_denied ~xid:p.Tcpstack.Rpcdev.xid
             (Oncrpc.Message.Auth_error
                (Cricket.Server.reject_to_auth_stat reject)));
        Xdr.Encode.to_string enc
    | Ok () ->
        Fun.protect
          ~finally:(fun () -> Tenancy.Admission.complete admission ~tenant:0)
          (fun () ->
            Option.value ~default:""
              (Oncrpc.Server.dispatch_preparsed ~ident:tenant_ident srv
                 ~xid:p.Tcpstack.Rpcdev.xid ~prog:p.Tcpstack.Rpcdev.prog
                 ~vers:p.Tcpstack.Rpcdev.vers ~proc:p.Tcpstack.Rpcdev.proc
                 ~body_off:p.Tcpstack.Rpcdev.body_off record))
  in
  let dispatch request = Oncrpc.Server.dispatch ~ident:tenant_ident srv request in
  let ch =
    Tcpchannel.create ~engine ~client:profile ~rpc:(device_of_mode mode)
      ~ident:tenant_ident ~dispatch_parsed
      ~doorbell_policy:
        { Oncrpc.Doorbell.max_records = window; max_bytes = 256 * 1024;
          deadline_ns = Some (Time.us 100) }
      ~dispatch ()
  in
  Option.iter (Tcpchannel.set_obs ch) obs;
  let transport = Tcpchannel.transport ch in
  let payload = String.make arg_bytes 'x' in
  let digest = ref fnv_offset in
  let sent = ref 0 and received = ref 0 in
  let t0 = Engine.now engine in
  (* windowed bursts: submit [window] calls, then collect their replies —
     the client-side pipelining pattern doorbell batching is built for *)
  while !received < calls do
    let burst = min window (calls - !sent) in
    for _ = 1 to burst do
      incr sent;
      let record = encode_call ~xid:(Int32.of_int !sent) payload in
      Oncrpc.Record.writev transport (Xdr.Iovec.of_string record)
    done;
    for _ = 1 to burst do
      let reply = Oncrpc.Record.read transport in
      digest := fnv64 !digest reply;
      incr received
    done
  done;
  let elapsed = Time.sub (Engine.now engine) t0 in
  let secs = Time.to_float_s elapsed in
  {
    profile = name;
    mode;
    calls;
    arg_bytes;
    window;
    elapsed;
    calls_per_sec = (if secs > 0. then float_of_int calls /. secs else 0.);
    negotiated = Tcpchannel.negotiated_rpc ch;
    rpcdev = Tcpchannel.rpcdev_stats ch;
    doorbell = Tcpchannel.doorbell_stats ch;
    channel = Tcpchannel.stats ch;
    dup_hits = Oncrpc.Server.dup_hits srv;
    admission_rejects = !admission_rejects;
    reply_digest = !digest;
  }

let modes = [ Software; Device_parse; Device_full ]

(* the four distinct client stacks (C and Rust native share a profile) *)
let profiles () =
  [
    ("native", Config.rust_native.Config.profile);
    ("linux-vm", Config.linux_vm.Config.profile);
    ("rustyhermit", Config.hermit.Config.profile);
    ("unikraft", Config.unikraft.Config.profile);
  ]

let sweep ?calls ?arg_bytes ?window () =
  List.concat_map
    (fun profile ->
      List.map
        (fun mode -> run ?calls ?arg_bytes ?window ~profile ~mode ())
        modes)
    (profiles ())
