module Time = Simnet.Time
module Engine = Simnet.Engine
module EP = Tcpstack.Endpoint

(* The [tcp_sim] transport: the same client/dispatch contract as
   {!Simchannel}, but the bytes actually traverse the executable TCP stack
   — two {!Tcpstack.Endpoint}s joined by a {!Tcpstack.Netdev} with the
   configuration's negotiated offload feature bits. Where Simchannel
   charges {!Simnet.Netcost}'s closed form per exchange, here segmentation,
   ACK clocking, congestion control and offload costs all emerge from the
   stack itself; only the socket-layer syscall cost (which no NIC feature
   bit changes) is charged explicitly, mirroring Netcost's term.

   Loss behaves differently from Simchannel by design: a fault plan is
   applied per TCP segment inside the netdev, and the stack's
   retransmission machinery heals drops transparently — the RPC layer sees
   a slower byte stream, not a timeout.

   The client-side send performs exactly one staging copy
   ([Xdr.Iovec.concat]) before handing the record to the endpoint. It is
   not an oversight: the endpoint's retransmit queue aliases queued slices
   until they are acknowledged, while the RPC encoder reuses its buffers as
   soon as the call returns — the copy is the sk_buff boundary. *)

type stats = {
  messages : int;  (** request records dispatched at the server *)
  bytes_to_server : int;
  bytes_from_server : int;
  network_time : Time.t;  (** virtual time blocked on the stack *)
  timeouts : int;
}

let io_chunk = 65_536

type t = {
  engine : Engine.t;
  client_prof : Simnet.Hostprofile.t;
  server_prof : Simnet.Hostprofile.t;
  client_ep : EP.t;
  server_ep : EP.t;
  netdev : Tcpstack.Netdev.t;
  dispatch : string -> string;
  dispatch_parsed :
    (ident:string -> Tcpstack.Rpcdev.parsed -> string -> string) option;
  (* the RPC engine (RPCAcc direction): present when the channel was
     created with an rpc device offer; its negotiated feature bits decide
     whether framing/parse/steer run as device or host-software work *)
  rpcdev : Tcpstack.Rpcdev.t option;
  negotiated_rpc : Simnet.Offload.t;
  mutable doorbell : Oncrpc.Doorbell.t option;
  (* server-side reply coalescing under rpc_doorbell: replies produced in
     one rx burst leave as one submit *)
  reply_batch : Buffer.t;
  mutable transport : Oncrpc.Transport.t;
  (* client-side reply byte stream *)
  inbox : Buffer.t;
  mutable inbox_pos : int;
  (* server-side incremental record-marking parser (RFC 5531 §11): O(1)
     state per byte, so reassembly over the whole run is O(bytes) *)
  hdr : Bytes.t;
  mutable hdr_pos : int;
  mutable frag_need : int;
  mutable frag_last : bool;
  mutable in_frag : bool;
  record : Buffer.t;
  mutable stats : stats;
  mutable obs : Obs.Recorder.t;
  (* virtual time spent inside server dispatch, accumulated so the recv
     wait span can report blocked-on-network time net of dispatch time *)
  mutable dispatched_ns : Time.t;
}

let set_obs t obs =
  t.obs <- obs;
  EP.set_obs t.client_ep obs;
  EP.set_obs t.server_ep obs;
  Tcpstack.Netdev.set_obs t.netdev obs;
  Option.iter (fun r -> Tcpstack.Rpcdev.set_obs r obs) t.rpcdev;
  Option.iter (fun d -> Oncrpc.Doorbell.set_obs d obs) t.doorbell

(* The socket-layer cost Netcost charges per 64 KiB io chunk; the NIC-side
   costs are the netdev's business. *)
let charge_syscalls t (p : Simnet.Hostprofile.t) len =
  let syscalls = max 1 ((len + io_chunk - 1) / io_chunk) in
  let sp = Obs.Recorder.span_begin t.obs ~layer:"net" "net.syscall" in
  Engine.advance t.engine
    (Time.ns
       (syscalls
       * (p.Simnet.Hostprofile.syscall_ns
         + p.Simnet.Hostprofile.context_switch_ns)));
  Obs.Recorder.span_end t.obs sp

let reply_out t reply =
  if reply <> "" then begin
    let wire = Oncrpc.Record.to_wire reply in
    t.stats <-
      { t.stats with
        bytes_from_server = t.stats.bytes_from_server + String.length wire };
    if t.negotiated_rpc.Simnet.Offload.rpc_doorbell then
      (* coalesce: every reply of this rx burst rides one submit *)
      Buffer.add_string t.reply_batch wire
    else begin
      charge_syscalls t t.server_prof (String.length wire);
      EP.send_string t.server_ep wire
    end
  end

let flush_replies t =
  if Buffer.length t.reply_batch > 0 then begin
    let wire = Buffer.contents t.reply_batch in
    Buffer.clear t.reply_batch;
    charge_syscalls t t.server_prof (String.length wire);
    EP.send_string t.server_ep wire
  end

(* Feed freshly delivered server-side bytes through the record parser;
   complete records go to the dispatch function and replies back onto the
   server endpoint. *)
let feed_server t chunk =
  let len = Bytes.length chunk in
  let pos = ref 0 in
  while !pos < len do
    if not t.in_frag then begin
      let take = min (4 - t.hdr_pos) (len - !pos) in
      Bytes.blit chunk !pos t.hdr t.hdr_pos take;
      t.hdr_pos <- t.hdr_pos + take;
      pos := !pos + take;
      if t.hdr_pos = 4 then begin
        let last, n = Oncrpc.Record.decode_header_bytes t.hdr in
        t.hdr_pos <- 0;
        t.in_frag <- true;
        t.frag_need <- n;
        t.frag_last <- last
      end
    end;
    if t.in_frag then begin
      let take = min t.frag_need (len - !pos) in
      Buffer.add_subbytes t.record chunk !pos take;
      t.frag_need <- t.frag_need - take;
      pos := !pos + take;
      if t.frag_need = 0 then begin
        t.in_frag <- false;
        if t.frag_last then begin
          let request = Buffer.contents t.record in
          Buffer.clear t.record;
          t.stats <- { t.stats with messages = t.stats.messages + 1 };
          let t0 = Engine.now t.engine in
          let reply = t.dispatch request in
          t.dispatched_ns <-
            Time.add t.dispatched_ns (Time.sub (Engine.now t.engine) t0);
          reply_out t reply
        end
      end
    end
  done

(* Server rx through the RPC engine: the device (or its host-software
   fallback, per negotiated bits) frames, parses and steers; the host
   dispatches each drained entry. The whole burst — device charges
   included — counts as dispatched time, so the recv wait span cannot
   double-count rpcdev spans against net.wait. *)
let feed_server_rpc t rdev chunk =
  let t0 = Engine.now t.engine in
  Tcpstack.Rpcdev.feed rdev chunk;
  let entries = Tcpstack.Rpcdev.drain rdev in
  List.iter
    (fun (e : Tcpstack.Rpcdev.entry) ->
      t.stats <- { t.stats with messages = t.stats.messages + 1 };
      let reply =
        match (e.Tcpstack.Rpcdev.parse, t.dispatch_parsed) with
        | Some (Ok p), Some f -> f ~ident:e.Tcpstack.Rpcdev.ident p e.record
        | _ ->
            (* no parse negotiated, a device punt, or no fast-path
               dispatcher installed: full software dispatch *)
            t.dispatch e.Tcpstack.Rpcdev.record
      in
      reply_out t reply)
    entries;
  t.dispatched_ns <-
    Time.add t.dispatched_ns (Time.sub (Engine.now t.engine) t0);
  flush_replies t

let drain t =
  if EP.recv_length t.server_ep > 0 then begin
    let chunk = EP.recv t.server_ep in
    match t.rpcdev with
    | Some rdev -> feed_server_rpc t rdev chunk
    | None -> feed_server t chunk
  end;
  if EP.recv_length t.client_ep > 0 then begin
    let b = EP.recv t.client_ep in
    Buffer.add_bytes t.inbox b
  end

let default_rto = Time.us 200

let create ~engine ~client ?(server = Config.server_profile)
    ?(link = Config.link) ?fault ?device ?(rto = default_rto) ?rpc
    ?(ident = "") ?dispatch_parsed
    ?(doorbell_policy = Oncrpc.Doorbell.default_policy) ~dispatch () =
  (* RPC-engine negotiation: the device offer intersected with what the
     client guest's driver shim acknowledges, then dependency-clamped.
     No [rpc] offer means no engine at all — the legacy byte-stream path,
     charged exactly as before. *)
  let negotiated_rpc =
    match rpc with
    | None -> Simnet.Offload.none
    | Some offer ->
        Tcpstack.Rpcdev.effective
          (Simnet.Offload.negotiate ~device:offer
             ~guest:client.Simnet.Hostprofile.offloads)
  in
  let rpcdev =
    match rpc with
    | None -> None
    | Some _ ->
        Some
          (Tcpstack.Rpcdev.create ~engine ~profile:server
             ~features:negotiated_rpc
             ~alloc:(Oncrpc.Pool.acquire Oncrpc.Pool.default)
             ~free:(Oncrpc.Pool.release Oncrpc.Pool.default)
             ~ident ())
  in
  let mss = Simnet.Link.mss link in
  let window = 64 lsl 20 in
  let client_ep =
    EP.create ~engine ~name:"rpc-client" ~mss ~iss:0 ~local_port:46000
      ~remote_port:33333 ~rcv_window:window ~rto ()
  in
  let server_ep =
    EP.create ~engine ~name:"cricket-server" ~mss ~iss:0 ~local_port:33333
      ~remote_port:46000 ~rcv_window:window ~rto ()
  in
  let netdev =
    Tcpstack.Netdev.connect ~engine ~link ?fault ?device ~a:(client_ep, client)
      ~b:(server_ep, server) ()
  in
  let t =
    { engine; client_prof = client; server_prof = server; client_ep;
      server_ep; netdev; dispatch; dispatch_parsed; rpcdev; negotiated_rpc;
      doorbell = None; reply_batch = Buffer.create 4096;
      transport =
        Oncrpc.Transport.make
          ~send:(fun _ _ _ -> ())
          ~recv:(fun _ _ _ -> 0)
          ~close:(fun () -> ())
          ();
      inbox = Buffer.create 4096; inbox_pos = 0; hdr = Bytes.create 4;
      hdr_pos = 0; frag_need = 0; frag_last = false; in_frag = false;
      record = Buffer.create 4096;
      stats =
        { messages = 0; bytes_to_server = 0; bytes_from_server = 0;
          network_time = Time.zero; timeouts = 0 };
      obs = Obs.Recorder.null; dispatched_ns = Time.zero }
  in
  EP.listen server_ep;
  EP.connect client_ep;
  while
    (EP.state client_ep <> EP.Established
    || EP.state server_ep <> EP.Established)
    && Engine.step engine
  do
    ()
  done;
  if EP.state client_ep <> EP.Established then
    failwith "Tcpchannel.create: handshake failed";
  let push s =
    t.stats <-
      { t.stats with
        bytes_to_server = t.stats.bytes_to_server + String.length s };
    charge_syscalls t t.client_prof (String.length s);
    EP.send_string t.client_ep s
  in
  let send buf off len = push (Bytes.sub_string buf off len) in
  (* the one staging copy: the retransmit queue will alias this string
     until the server ACKs it, so it must not share the encoder's
     reusable buffers *)
  let sendv iov = push (Xdr.Iovec.concat iov) in
  let recv buf off len =
    let available () = Buffer.length t.inbox - t.inbox_pos in
    if available () = 0 then begin
      let t0 = Engine.now engine in
      let d0 = t.dispatched_ns in
      drain t;
      while available () = 0 && Engine.step engine do
        drain t
      done;
      t.stats <-
        { t.stats with
          network_time =
            Time.add t.stats.network_time
              (Time.sub (Engine.now engine) t0) };
      (* The wait interval covers both stack time and the server dispatch
         it triggered; the dispatch layer records itself, so the net span
         is the blocked time with dispatch time carved out (placed at the
         end of the interval to keep exact timestamps). *)
      if Obs.Recorder.enabled t.obs then begin
        let dispatch_d = Time.sub t.dispatched_ns d0 in
        Obs.Recorder.span_event t.obs ~layer:"net" ~name:"net.wait"
          ~start_ns:(Time.add t0 dispatch_d)
          ~stop_ns:(Engine.now engine)
      end;
      if available () = 0 then begin
        (* the event queue ran dry with no reply bytes in flight: nothing
           will ever arrive (e.g. a one-way misuse); model the wait *)
        let sp = Obs.Recorder.span_begin t.obs ~layer:"net" "net.rto" in
        Engine.advance engine rto;
        Obs.Recorder.span_end t.obs sp;
        Obs.Recorder.incr t.obs "net.rto";
        t.stats <- { t.stats with timeouts = t.stats.timeouts + 1 };
        raise Oncrpc.Transport.Timeout
      end
    end;
    let n = min len (available ()) in
    Buffer.blit t.inbox t.inbox_pos buf off n;
    t.inbox_pos <- t.inbox_pos + n;
    if t.inbox_pos = Buffer.length t.inbox then begin
      Buffer.clear t.inbox;
      t.inbox_pos <- 0
    end;
    n
  in
  t.transport <-
    Oncrpc.Transport.make ~sendv ~send ~recv ~close:(fun () -> ()) ();
  if negotiated_rpc.Simnet.Offload.rpc_doorbell then begin
    (* doorbell batching negotiated: the client's calls stage into one
       wire submit; deadlines run on the engine's virtual clock *)
    let db =
      Oncrpc.Doorbell.wrap ~policy:doorbell_policy
        ~schedule:(fun delay k -> Engine.schedule_after engine delay k)
        t.transport
    in
    t.doorbell <- Some db;
    t.transport <- Oncrpc.Doorbell.transport db
  end;
  t

let transport t = t.transport
let stats t = t.stats
let negotiated_rpc t = t.negotiated_rpc
let rpcdev_stats t = Option.map Tcpstack.Rpcdev.stats t.rpcdev
let doorbell_stats t = Option.map Oncrpc.Doorbell.stats t.doorbell
let doorbell_flush t = Option.iter Oncrpc.Doorbell.flush t.doorbell
let netdev_stats t = Tcpstack.Netdev.stats t.netdev
let negotiated_client t = Tcpstack.Netdev.negotiated_a t.netdev
let endpoint_stats t = (EP.stats t.client_ep, EP.stats t.server_ep)
let fault_stats t = Tcpstack.Netdev.fault_stats t.netdev
