(** Small-call throughput harness for the RPC engine (RPCAcc experiment).

    An echo program served over the executable TCP stack, driven with a
    pipelined window of small calls under three rx-path modes — all-host
    software, device framing/parse/steer, and the full engine with
    doorbell batching. What actually lands per profile depends on the
    client stack's acknowledged {!Simnet.Offload.t} rpc bits, so the sweep
    doubles as the per-configuration ablation. Every call passes a
    {!Tenancy.Admission} gate under its steered tenant ident; replies are
    FNV-1a digested so tests can pin byte-parity across modes. All numbers
    are virtual-time and deterministic. *)

type mode = Software | Device_parse | Device_full

val mode_name : mode -> string
val device_of_mode : mode -> Simnet.Offload.t

val echo_prog : int
val echo_vers : int
val echo_proc : int

type result = {
  profile : string;
  mode : mode;
  calls : int;
  arg_bytes : int;
  window : int;
  elapsed : Simnet.Time.t;
  calls_per_sec : float;  (** virtual-time throughput *)
  negotiated : Simnet.Offload.t;
  rpcdev : Tcpstack.Rpcdev.stats option;
  doorbell : Oncrpc.Doorbell.stats option;
  channel : Tcpchannel.stats;
  dup_hits : int;
  admission_rejects : int;
  reply_digest : int64;  (** FNV-1a over the reply byte stream *)
}

val run :
  ?calls:int ->
  ?arg_bytes:int ->
  ?window:int ->
  ?obs:Obs.Recorder.t ->
  profile:string * Simnet.Hostprofile.t ->
  mode:mode ->
  unit ->
  result
(** One (profile, mode) cell: defaults 2048 calls, 64-byte args,
    window 32. *)

val modes : mode list

val profiles : unit -> (string * Simnet.Hostprofile.t) list
(** The four distinct client stacks (C/Rust native share a profile). *)

val sweep :
  ?calls:int -> ?arg_bytes:int -> ?window:int -> unit -> result list
(** Every profile × mode, profiles outer, modes inner. *)
