(** The [tcp_sim] RPC channel: Cricket client/server traffic over the
    executable TCP stack.

    Same contract as {!Simchannel} — an {!Oncrpc.Transport.t} for the
    client, a dispatch function for the server — but the bytes traverse
    two {!Tcpstack.Endpoint}s joined by a {!Tcpstack.Netdev}, so
    segmentation (TSO), checksum offload, GRO, congestion control and loss
    recovery all come from the stack rather than from
    {!Simnet.Netcost}'s closed form. The offload feature bits are
    negotiated from the client configuration's
    {!Simnet.Hostprofile.t} against the device, reproducing the §4.2
    per-configuration bandwidth gaps on the executable path (see
    {!Netbench}).

    Fault plans apply per TCP segment inside the netdev: the stack heals
    drops by retransmission, so the RPC layer observes a slower stream
    rather than {!Oncrpc.Transport.Timeout}. *)

type stats = {
  messages : int;  (** request records dispatched at the server *)
  bytes_to_server : int;
  bytes_from_server : int;
  network_time : Simnet.Time.t;  (** virtual time blocked on the stack *)
  timeouts : int;
}

type t

val default_rto : Simnet.Time.t
(** Endpoint retransmission timeout (200 µs — jumbo-frame LAN scale). *)

val create :
  engine:Simnet.Engine.t ->
  client:Simnet.Hostprofile.t ->
  ?server:Simnet.Hostprofile.t ->
  ?link:Simnet.Link.t ->
  ?fault:Simnet.Fault.t ->
  ?device:Simnet.Offload.t ->
  ?rto:Simnet.Time.t ->
  ?rpc:Simnet.Offload.t ->
  ?ident:string ->
  ?dispatch_parsed:
    (ident:string -> Tcpstack.Rpcdev.parsed -> string -> string) ->
  ?doorbell_policy:Oncrpc.Doorbell.policy ->
  dispatch:(string -> string) ->
  unit ->
  t
(** Create both endpoints, negotiate offloads against [device] (default
    {!Simnet.Offload.all}) and run the three-way handshake to completion
    in virtual time. [server] defaults to {!Config.server_profile},
    [link] to {!Config.link}.

    [rpc] offers the RPC-engine feature bits (see {!Tcpstack.Rpcdev});
    they are negotiated against the client profile's acknowledged bits and
    dependency-clamped. Without [rpc] the channel behaves exactly as
    before — byte-stream framing in the channel, no extra charges. With it,
    server rx runs through the engine (device or host-software costs per
    negotiated bit); device-parsed calls go to [dispatch_parsed] (falling
    back to [dispatch] for punts or when absent) carrying [ident], the
    tenant identity stamped on steered entries. When [rpc_doorbell] is
    negotiated the client transport batches calls under [doorbell_policy]
    (deadlines on the virtual clock) and the server coalesces each rx
    burst's replies into one submit. *)

val transport : t -> Oncrpc.Transport.t
(** Client-side transport ([sendv] performs the single sk_buff staging
    copy; see implementation notes). *)

val set_obs : t -> Obs.Recorder.t -> unit
(** Attach an observability recorder to the whole network path: the
    channel itself records ["net"]-layer spans (["net.syscall"] socket
    charges, ["net.wait"] time blocked on the stack net of server dispatch
    time, ["net.rto"] dead-queue timeouts plus a ["net.rto"] counter), and
    the recorder is forwarded to both TCP endpoints (retransmit counters,
    {!Tcpstack.Endpoint.set_obs}) and the netdev (staging/GRO counters,
    {!Tcpstack.Netdev.set_obs}). *)

val stats : t -> stats
val netdev_stats : t -> Tcpstack.Netdev.stats
val negotiated_client : t -> Simnet.Offload.t
(** Feature set the client guest actually negotiated (post clamps). *)

val endpoint_stats : t -> Tcpstack.Endpoint.stats * Tcpstack.Endpoint.stats
(** (client, server) endpoint counters — retransmissions etc. *)

val fault_stats : t -> Simnet.Fault.stats option

val negotiated_rpc : t -> Simnet.Offload.t
(** RPC-engine bits actually negotiated (all-off without [?rpc]). *)

val rpcdev_stats : t -> Tcpstack.Rpcdev.stats option
val doorbell_stats : t -> Oncrpc.Doorbell.stats option

val doorbell_flush : t -> unit
(** Ring the client doorbell now (no-op without a negotiated doorbell). *)
