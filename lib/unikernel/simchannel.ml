module Time = Simnet.Time
module Engine = Simnet.Engine

type stats = {
  messages : int;
  bytes_to_server : int;
  bytes_from_server : int;
  network_time : Simnet.Time.t;
}

type t = {
  engine : Engine.t;
  client : Simnet.Hostprofile.t;
  server : Simnet.Hostprofile.t;
  link : Simnet.Link.t;
  dispatch : string -> string;
  mutable stats : stats;
  mutable transport : Oncrpc.Transport.t;
}

let create ~engine ~client ?(server = Config.server_profile)
    ?(link = Config.link) ~dispatch () =
  let t =
    {
      engine;
      client;
      server;
      link;
      dispatch;
      stats =
        { messages = 0; bytes_to_server = 0; bytes_from_server = 0;
          network_time = Time.zero };
      transport =
        { Oncrpc.Transport.send = (fun _ _ _ -> ());
          recv = (fun _ _ _ -> 0); close = (fun () -> ()) };
    }
  in
  let exchange request_stream =
    let request_len = String.length request_stream in
    (* request: client -> GPU node *)
    let request_time =
      Simnet.Netcost.one_way_time ~sender:t.client ~receiver:t.server
        ~link:t.link request_len
    in
    Engine.advance t.engine request_time;
    (* Peel record marking, dispatch each request record, re-frame. The
       server's CUDA work advances the shared clock via its clock hooks. *)
    let replies = Buffer.create 1024 in
    let rec each pos fragments =
      if pos < request_len then begin
        let last, len =
          Oncrpc.Record.decode_header (String.sub request_stream pos 4)
        in
        let fragment = String.sub request_stream (pos + 4) len in
        if last then begin
          let record = String.concat "" (List.rev (fragment :: fragments)) in
          (match t.dispatch record with
          | "" -> () (* one-way call: no reply record *)
          | reply -> Buffer.add_string replies (Oncrpc.Record.to_wire reply));
          each (pos + 4 + len) []
        end
        else each (pos + 4 + len) (fragment :: fragments)
      end
    in
    each 0 [];
    (* reply: GPU node -> client *)
    let reply_time =
      Simnet.Netcost.one_way_time ~sender:t.server ~receiver:t.client
        ~link:t.link (Buffer.length replies)
    in
    Engine.advance t.engine reply_time;
    let s = t.stats in
    t.stats <-
      {
        messages = s.messages + 1;
        bytes_to_server = s.bytes_to_server + request_len;
        bytes_from_server = s.bytes_from_server + Buffer.length replies;
        network_time =
          Time.add s.network_time (Time.add request_time reply_time);
      };
    Buffer.contents replies
  in
  t.transport <- Oncrpc.Transport.loopback ~peer:exchange;
  t

let transport t = t.transport
let stats t = t.stats
