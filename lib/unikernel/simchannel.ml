module Time = Simnet.Time
module Engine = Simnet.Engine
module Fault = Simnet.Fault

type stats = {
  messages : int;
  bytes_to_server : int;
  bytes_from_server : int;
  network_time : Simnet.Time.t;
  timeouts : int;
  crashes : int;
  reconnects : int;
}

let default_rto = Time.ns 200_000 (* 200 us: jumbo-frame LAN RTT plus slack *)

type t = {
  engine : Engine.t;
  client : Simnet.Hostprofile.t;
  server : Simnet.Hostprofile.t;
  link : Simnet.Link.t;
  dispatch : string -> string;
  fault : Fault.t option;
  rto : Time.t;
  on_crash : down_for:Time.t -> unit;
  mutable stats : stats;
  mutable transport : Oncrpc.Transport.t;
  (* request bytes written but not yet exchanged / reply bytes to serve *)
  outbox : Buffer.t;
  mutable inbox : string;
  mutable inbox_pos : int;
  mutable connected : bool;
  mutable down_until : Time.t;  (* absolute virtual time; restart instant *)
  mutable obs : Obs.Recorder.t;
}

let set_obs t obs = t.obs <- obs

(* Wrap a virtual-time advance in a ["net"]-layer span. The advances are
   the only places this channel spends virtual time, so the layer total is
   exactly the modelled network time. *)
let net_span t name advance =
  let sp = Obs.Recorder.span_begin t.obs ~layer:"net" name in
  advance ();
  Obs.Recorder.span_end t.obs sp

(* The scheduled crash fires between records: the server process dies, so
   everything in flight — the rest of this request stream and any replies
   already produced — is lost, and the connection is gone until the
   restart instant. *)
exception Crashed

let crash t ~down_for =
  t.connected <- false;
  t.down_until <- Time.add (Engine.now t.engine) down_for;
  Buffer.clear t.outbox;
  t.inbox <- "";
  t.inbox_pos <- 0;
  t.stats <- { t.stats with crashes = t.stats.crashes + 1 };
  t.on_crash ~down_for;
  raise Crashed

let check_crash t =
  match t.fault with
  | None -> ()
  | Some f -> (
      match Fault.crash_due f with
      | None -> ()
      | Some down_for -> crash t ~down_for)

let decide t =
  match t.fault with
  | None -> Fault.Pass
  | Some f -> Fault.decide ~now:(Engine.now t.engine) f

(* One request/reply exchange over the simulated link: charge the request's
   one-way time, run every complete record through the fault plan and the
   server dispatch, run each reply record through the plan too, charge the
   reply's one-way time. Surviving reply bytes land in the inbox. *)
let exchange t =
  let request_stream = Buffer.contents t.outbox in
  Buffer.clear t.outbox;
  let request_len = String.length request_stream in
  (* request: client -> GPU node *)
  let request_time =
    Simnet.Netcost.one_way_time ~sender:t.client ~receiver:t.server
      ~link:t.link request_len
  in
  net_span t "net.request" (fun () -> Engine.advance t.engine request_time);
  (* Peel record marking, dispatch each request record, re-frame. The
     server's CUDA work advances the shared clock via its clock hooks. *)
  let replies = Buffer.create 1024 in
  let deliver_reply = function
    | "" -> () (* one-way call: no reply record *)
    | reply -> (
        match decide t with
        | Fault.Drop | Fault.Corrupt -> () (* lost / discarded on receipt *)
        | Fault.Pass -> Buffer.add_string replies (Oncrpc.Record.to_wire reply)
        | Fault.Duplicate ->
            Buffer.add_string replies (Oncrpc.Record.to_wire reply);
            Buffer.add_string replies (Oncrpc.Record.to_wire reply)
        | Fault.Delay d ->
            net_span t "net.delay" (fun () -> Engine.advance t.engine d);
            Buffer.add_string replies (Oncrpc.Record.to_wire reply))
  in
  let dispatch_record record =
    match decide t with
    | Fault.Drop | Fault.Corrupt ->
        (* never reaches the server (corrupt: the receiver's integrity
           check throws it away) — the client's RTO covers the loss *)
        check_crash t
    | Fault.Pass ->
        check_crash t;
        deliver_reply (t.dispatch record)
    | Fault.Duplicate ->
        check_crash t;
        (* the server sees the same record twice; the duplicate-request
           cache (or stale-xid skipping on the client) absorbs it *)
        deliver_reply (t.dispatch record);
        deliver_reply (t.dispatch record)
    | Fault.Delay d ->
        check_crash t;
        net_span t "net.delay" (fun () -> Engine.advance t.engine d);
        deliver_reply (t.dispatch record)
  in
  let rec each pos fragments =
    if pos < request_len then begin
      let last, len =
        Oncrpc.Record.decode_header (String.sub request_stream pos 4)
      in
      let fragment = String.sub request_stream (pos + 4) len in
      if last then begin
        dispatch_record (String.concat "" (List.rev (fragment :: fragments)));
        each (pos + 4 + len) []
      end
      else each (pos + 4 + len) (fragment :: fragments)
    end
  in
  each 0 [];
  (* reply: GPU node -> client *)
  let reply_time =
    Simnet.Netcost.one_way_time ~sender:t.server ~receiver:t.client
      ~link:t.link (Buffer.length replies)
  in
  net_span t "net.reply" (fun () -> Engine.advance t.engine reply_time);
  let s = t.stats in
  t.stats <-
    {
      s with
      messages = s.messages + 1;
      bytes_to_server = s.bytes_to_server + request_len;
      bytes_from_server = s.bytes_from_server + Buffer.length replies;
      network_time = Time.add s.network_time (Time.add request_time reply_time);
    };
  t.inbox <- Buffer.contents replies;
  t.inbox_pos <- 0

let create ~engine ~client ?(server = Config.server_profile)
    ?(link = Config.link) ?fault ?(rto = default_rto)
    ?(on_crash = fun ~down_for:_ -> ()) ~dispatch () =
  let t =
    {
      engine;
      client;
      server;
      link;
      dispatch;
      fault;
      rto;
      on_crash;
      stats =
        { messages = 0; bytes_to_server = 0; bytes_from_server = 0;
          network_time = Time.zero; timeouts = 0; crashes = 0;
          reconnects = 0 };
      transport =
        Oncrpc.Transport.make
          ~send:(fun _ _ _ -> ())
          ~recv:(fun _ _ _ -> 0)
          ~close:(fun () -> ())
          ();
      outbox = Buffer.create 1024;
      inbox = "";
      inbox_pos = 0;
      connected = true;
      down_until = Time.zero;
      obs = Obs.Recorder.null;
    }
  in
  let send buf off len =
    if not t.connected then raise Oncrpc.Transport.Closed;
    Buffer.add_subbytes t.outbox buf off len
  in
  (* Gather write into the outbox: the one staging copy the simulated
     link performs, straight from the caller's payload views. *)
  let sendv iov =
    if not t.connected then raise Oncrpc.Transport.Closed;
    Xdr.Iovec.iter
      (fun s ->
        Buffer.add_substring t.outbox s.Xdr.Iovec.base s.Xdr.Iovec.off
          s.Xdr.Iovec.len)
      iov
  in
  let rec recv buf off len =
    if not t.connected then raise Oncrpc.Transport.Closed;
    let available = String.length t.inbox - t.inbox_pos in
    if available > 0 then begin
      let n = min len available in
      Bytes.blit_string t.inbox t.inbox_pos buf off n;
      t.inbox_pos <- t.inbox_pos + n;
      n
    end
    else if Buffer.length t.outbox > 0 then begin
      (match exchange t with
      | () -> ()
      | exception Crashed -> raise Oncrpc.Transport.Closed);
      recv buf off len
    end
    else begin
      (* The client awaits a reply but nothing is in flight any more: the
         record (or its reply) was dropped. Model the retransmission
         timeout — the virtual time a real client would wait before
         concluding loss — and report it. *)
      net_span t "net.rto" (fun () -> Engine.advance t.engine t.rto);
      Obs.Recorder.incr t.obs "net.rto";
      t.stats <- { t.stats with timeouts = t.stats.timeouts + 1 };
      raise Oncrpc.Transport.Timeout
    end
  in
  t.transport <-
    Oncrpc.Transport.make ~sendv ~send ~recv ~close:(fun () -> ()) ();
  t

let transport t = t.transport

let reconnect t =
  if Time.compare (Engine.now t.engine) t.down_until < 0 then
    (* the server is still restarting; the caller backs off and retries *)
    raise Oncrpc.Transport.Closed;
  t.connected <- true;
  Buffer.clear t.outbox;
  t.inbox <- "";
  t.inbox_pos <- 0;
  t.stats <- { t.stats with reconnects = t.stats.reconnects + 1 };
  t.transport

let stats t = t.stats
let fault_stats t = Option.map Fault.stats t.fault
