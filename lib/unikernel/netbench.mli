(** Executable-stack bandwidth ablation (Figure 7 on the real stack).

    An iperf-style bulk upload from a guest configuration to the
    bare-metal GPU node over {!Tcpstack.Endpoint} + {!Tcpstack.Netdev},
    with offload feature bits negotiated from the configuration's host
    profile. Complements the {!Simnet.Netcost} closed form: same profile
    numbers, but segmentation, ACK clocking, congestion control and
    offload effects emerge from the stack. Used by [bench/figures.ml] and
    [benchctl offloads]. *)

type result = {
  name : string;
  offloads : Simnet.Offload.t;  (** negotiated, post dependency clamps *)
  bytes : int;
  elapsed : Simnet.Time.t;
      (** handshake completion to last byte delivered (virtual) *)
  bandwidth_mib_s : float;
  netdev : Tcpstack.Netdev.stats;
  client : Tcpstack.Endpoint.stats;
}

val upload :
  ?server:Simnet.Hostprofile.t ->
  ?link:Simnet.Link.t ->
  ?device:Simnet.Offload.t ->
  ?fault:Simnet.Fault.t ->
  name:string ->
  profile:Simnet.Hostprofile.t ->
  bytes:int ->
  unit ->
  result
(** One bulk upload on a fresh engine. Raises [Failure] if the transfer
    stalls (event queue dry before delivery). *)

val figure7_configs : unit -> (string * Simnet.Hostprofile.t) list
(** native + every hypervisor-hosted configuration in {!Config.all}. *)

val ablation :
  ?server:Simnet.Hostprofile.t ->
  ?link:Simnet.Link.t ->
  ?device:Simnet.Offload.t ->
  bytes:int ->
  unit ->
  result list
(** {!upload} for each of {!figure7_configs}. *)

val relative : baseline:result -> result list -> (result * float) list
(** Pair each result with its bandwidth as a fraction of [baseline]'s. *)

val pp_result : Format.formatter -> result -> unit
