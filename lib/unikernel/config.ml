module H = Simnet.Hostprofile
module O = Simnet.Offload

type lang = C | Rust
type os = Rocky_native | Fedora_vm | Unikraft_os | Hermit_os

type t = {
  name : string;
  lang : lang;
  os : os;
  hypervisor : string option;
  network : string;
  profile : Simnet.Hostprofile.t;
  rng_ns_per_byte : float;
  launch_extra_ns : int;
}

let link = Simnet.Link.ethernet_100g
let server_profile = H.bare_metal_linux

(* Input generation: the C samples draw bytes through glibc rand(); the
   Rust ports use a fast xorshift-style generator (§4.1: the histogram
   initialization difference). *)
let c_rng_ns_per_byte = 20.0
let rust_rng_ns_per_byte = 0.6

(* The C launch path keeps compatibility with <<<...>>> launches (§4.2:
   Rust is ≈6.3 % faster on launch microbenchmarks). *)
let c_launch_extra_ns = 3_400

(* Native Linux acknowledges the whole RPC-engine feature set: the host
   kernel can map the device's steering queues and doorbell pages
   directly. Whether any rpc bit is actually negotiated still depends on
   the device offering them (a stock NIC does not). *)
let native_profile =
  H.with_offloads H.bare_metal_linux (O.rpc_all O.all)

(* Fedora guest over virtio-net with all offloads negotiated. Guest
   syscalls, scheduler wakeups and interrupt injection through QEMU/KVM
   dominate small-message latency; bulk transfers stay efficient thanks to
   TSO + GRO + checksum offload. *)
let linux_vm_profile =
  {
    H.name = "linux-vm";
    virtualized = true;
    syscall_ns = 1_750;
    context_switch_ns = 600;
    wakeup_ns = 37_500;
    vmexit_ns = 11_250;
    kick_batch = 8;
    irq_batch = 16;
    copy_ns_per_byte = 0.08;
    tx_copies = 1.0;
    rx_copies = 1.0;
    checksum_ns_per_byte = 0.45;
    per_packet_tx_ns = 1_200;
    per_packet_rx_ns = 1_000;
    interrupt_ns = 9_500;
    (* The VM's virtio shim acknowledges framing/parse/doorbell, but not
       steering: the guest cannot map the device's dispatch queues through
       QEMU, so routing stays in guest software. *)
    offloads =
      { (O.rpc_all O.all) with O.rpc_steer = false };
  }

(* RustyHermit with smoltcp: single address space (no syscall/context
   switch), but no TSO/GRO, per-segment smoltcp processing, unbatched VM
   exits, and a slow receive path (§4.2: "significant inefficiencies when
   reading from the network"). MRG_RXBUF and checksum offloads are the
   ones this paper's RustyHermit work implemented. *)
let hermit_profile =
  {
    H.name = "rustyhermit";
    virtualized = true;
    syscall_ns = 250;
    context_switch_ns = 0;
    wakeup_ns = 5_000;
    vmexit_ns = 23_500;
    kick_batch = 6;
    irq_batch = 1;
    copy_ns_per_byte = 0.08;
    tx_copies = 2.0;
    rx_copies = 2.5;
    checksum_ns_per_byte = 0.45;
    per_packet_tx_ns = 2_500;
    per_packet_rx_ns = 7_500;
    interrupt_ns = 3_750;
    (* smoltcp's driver shim implements the framing and doorbell halves of
       the RPC engine (they sit on the tx/rx ring it already owns) but not
       header parse/steering descriptors. *)
    offloads =
      { O.tso = false; tx_checksum = true; rx_checksum = true;
        scatter_gather = false; mrg_rxbuf = true; gro = false;
        rpc_framing = true; rpc_parse = false; rpc_steer = false;
        rpc_doorbell = true };
  }

(* Unikraft with lwIP: a thin syscall shim remains, and checksum offload
   is not supported yet (the lib-lwip PR the paper cites), so software
   checksumming hits bulk transfers on top of per-segment costs. *)
let unikraft_profile =
  {
    H.name = "unikraft";
    virtualized = true;
    syscall_ns = 1_000;
    context_switch_ns = 0;
    wakeup_ns = 6_250;
    vmexit_ns = 23_000;
    kick_batch = 4;
    irq_batch = 2;
    copy_ns_per_byte = 0.08;
    tx_copies = 2.0;
    rx_copies = 2.0;
    checksum_ns_per_byte = 0.45;
    per_packet_tx_ns = 4_500;
    per_packet_rx_ns = 8_500;
    interrupt_ns = 4_500;
    (* lwIP predates the RPC engine entirely: no rpc bits acknowledged,
       every call is framed/parsed/routed in guest software. *)
    offloads =
      { O.tso = false; tx_checksum = false; rx_checksum = false;
        scatter_gather = false; mrg_rxbuf = false; gro = false;
        rpc_framing = false; rpc_parse = false; rpc_steer = false;
        rpc_doorbell = false };
  }

let c_native =
  {
    name = "C";
    lang = C;
    os = Rocky_native;
    hypervisor = None;
    network = "native";
    profile = native_profile;
    rng_ns_per_byte = c_rng_ns_per_byte;
    launch_extra_ns = c_launch_extra_ns;
  }

let rust_native =
  {
    name = "Rust";
    lang = Rust;
    os = Rocky_native;
    hypervisor = None;
    network = "native";
    profile = native_profile;
    rng_ns_per_byte = rust_rng_ns_per_byte;
    launch_extra_ns = 0;
  }

let linux_vm =
  {
    name = "Linux VM";
    lang = Rust;
    os = Fedora_vm;
    hypervisor = Some "QEMU";
    network = "virtio";
    profile = linux_vm_profile;
    rng_ns_per_byte = rust_rng_ns_per_byte;
    launch_extra_ns = 0;
  }

let unikraft =
  {
    name = "Unikraft";
    lang = Rust;
    os = Unikraft_os;
    hypervisor = Some "QEMU";
    network = "virtio";
    profile = unikraft_profile;
    rng_ns_per_byte = rust_rng_ns_per_byte;
    launch_extra_ns = 0;
  }

let hermit =
  {
    name = "Hermit";
    lang = Rust;
    os = Hermit_os;
    hypervisor = Some "QEMU";
    network = "virtio";
    profile = hermit_profile;
    rng_ns_per_byte = rust_rng_ns_per_byte;
    launch_extra_ns = 0;
  }

let all = [ c_native; rust_native; linux_vm; unikraft; hermit ]

let is_unikernel t =
  match t.os with
  | Unikraft_os | Hermit_os -> true
  | Rocky_native | Fedora_vm -> false

let find name =
  let want = String.lowercase_ascii name in
  List.find_opt (fun t -> String.lowercase_ascii t.name = want) all

let os_to_string = function
  | Rocky_native -> "Rocky Linux"
  | Fedora_vm -> "Fedora VM"
  | Unikraft_os -> "Unikraft"
  | Hermit_os -> "Hermit"

let lang_to_string = function C -> "C" | Rust -> "Rust"

let table1_rows () =
  List.map
    (fun t ->
      Printf.sprintf "%-9s %-5s %-12s %-10s %s" t.name (lang_to_string t.lang)
        (os_to_string t.os)
        (match t.hypervisor with Some h -> h | None -> "-")
        t.network)
    all
