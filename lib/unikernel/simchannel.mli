(** Virtual-time RPC channel between a simulated client host and the GPU
    node.

    Implements {!Oncrpc.Transport.t} for the benchmark harness: the client
    writes record-marked request bytes; when it reads, the channel charges
    the {!Simnet.Netcost} one-way time for the request (client profile →
    server profile), dispatches the record to the Cricket server (whose
    CUDA-side costs advance the same clock through the context's clock
    hooks), charges the reply's one-way time, and hands the reply bytes
    back. Wall-clock-free: all time is the engine's virtual clock.

    {b Fault injection.} With a {!Simnet.Fault} plan installed the channel
    consults it once per RPC record in each direction. A dropped or
    corrupted record manifests to the client as {!Oncrpc.Transport.Timeout}
    after the modelled retransmission timeout [rto] — the receiver's
    integrity check discards corrupt records, so both are loss. Duplicated
    request records reach the server twice (exercising its
    duplicate-request cache); duplicated replies exercise the client's
    stale-xid skipping. A scheduled crash kills the connection
    ({!Oncrpc.Transport.Closed}), loses everything in flight, invokes
    [on_crash] (where the harness respawns the server process), and makes
    {!reconnect} fail until the restart instant has passed — exactly the
    failure the Cricket session-recovery protocol handles. *)

type stats = {
  messages : int;  (** request/reply exchanges *)
  bytes_to_server : int;  (** wire bytes, requests *)
  bytes_from_server : int;
  network_time : Simnet.Time.t;  (** virtual time spent in the channel *)
  timeouts : int;  (** retransmission timeouts fired (lost records) *)
  crashes : int;  (** scheduled server crashes that fired *)
  reconnects : int;  (** successful {!reconnect}s *)
}

type t

val create :
  engine:Simnet.Engine.t ->
  client:Simnet.Hostprofile.t ->
  ?server:Simnet.Hostprofile.t ->
  ?link:Simnet.Link.t ->
  ?fault:Simnet.Fault.t ->
  ?rto:Simnet.Time.t ->
  ?on_crash:(down_for:Simnet.Time.t -> unit) ->
  dispatch:(string -> string) ->
  unit ->
  t
(** [server] defaults to {!Config.server_profile}, [link] to
    {!Config.link}; [rto] (default 200 µs) is the virtual time charged
    before a lost record surfaces as {!Oncrpc.Transport.Timeout}.
    [on_crash] runs at the instant a scheduled crash fires, before the
    crash surfaces to the client — respawn the server there and route
    [dispatch] through a reference if recovery should succeed. *)

val transport : t -> Oncrpc.Transport.t

val set_obs : t -> Obs.Recorder.t -> unit
(** Attach an observability recorder: every virtual-time advance this
    channel performs is wrapped in a ["net"]-layer span
    (["net.request"] / ["net.reply"] serialization, ["net.delay"] fault
    delays, ["net.rto"] retransmission timeouts — the latter also bumps
    the ["net.rto"] counter), so the layer's total is exactly the modelled
    network time. One branch per event while the recorder is disabled. *)

val reconnect : t -> Oncrpc.Transport.t
(** Re-establish the connection after a crash. Raises
    {!Oncrpc.Transport.Closed} while the server is still restarting (the
    caller is expected to back off in virtual time and retry — exactly
    what {!Oncrpc.Client}'s retry loop does with this function as its
    reconnect hook). Any bytes from the previous connection are gone. *)

val stats : t -> stats
val fault_stats : t -> Simnet.Fault.stats option
