type t = {
  mutable count : int;
  mutable sum : int64;
  mutable max : int64;
  mutable min : int64;
  buckets : int array;  (* index = bit length of the recorded value *)
}

let n_buckets = 64

let create () =
  { count = 0; sum = 0L; max = 0L; min = Int64.max_int;
    buckets = Array.make n_buckets 0 }

let bucket_of v =
  let rec bits acc v =
    if Int64.equal v 0L then acc
    else bits (acc + 1) (Int64.shift_right_logical v 1)
  in
  bits 0 v

let record t v =
  let v = if Int64.compare v 0L < 0 then 0L else v in
  t.count <- t.count + 1;
  t.sum <- Int64.add t.sum v;
  if Int64.compare v t.max > 0 then t.max <- v;
  if Int64.compare v t.min < 0 then t.min <- v;
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1

let count t = t.count
let sum_ns t = t.sum
let max_ns t = t.max
let min_ns t = if t.count = 0 then 0L else t.min

let mean_ns t =
  if t.count = 0 then 0.0 else Int64.to_float t.sum /. float_of_int t.count

(* Upper bound of bucket [i]: 0 for bucket 0, else 2^i - 1. *)
let bucket_upper i =
  if i = 0 then 0L
  else if i >= 63 then Int64.max_int
  else Int64.sub (Int64.shift_left 1L i) 1L

let quantile t q =
  if t.count = 0 then 0L
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let rec walk i cum =
      if i >= n_buckets then t.max
      else
        let cum = cum + t.buckets.(i) in
        if cum >= rank then bucket_upper i else walk (i + 1) cum
    in
    let v = walk 0 0 in
    let v = if Int64.compare v t.max > 0 then t.max else v in
    if Int64.compare v t.min < 0 then t.min else v
  end

let buckets t = Array.copy t.buckets

let pp_us ppf v = Format.fprintf ppf "%.1fus" (Int64.to_float v /. 1e3)

let pp ppf t =
  Format.fprintf ppf "p50=%a p95=%a p99=%a max=%a (n=%d)" pp_us
    (quantile t 0.5) pp_us (quantile t 0.95) pp_us (quantile t 0.99) pp_us
    t.max t.count
