type event =
  | Span of Recorder.span_info
  | Counter of { name : string; value : int }

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome's ts/dur are microseconds; we keep the exact nanosecond values
   (and span ids) in [args] so parsing the document back loses nothing. *)
let span_json buf (sp : Recorder.span_info) =
  let dur_ns = Int64.sub sp.stop_ns sp.start_ns in
  Printf.bprintf buf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
     \"ts\":%.3f,\"dur\":%.3f,\"args\":{\"id\":%d,\"parent\":%d,\
     \"start_ns\":%Ld,\"dur_ns\":%Ld}}"
    (escape_string sp.name) (escape_string sp.layer)
    (Int64.to_float sp.start_ns /. 1e3)
    (Int64.to_float dur_ns /. 1e3)
    sp.id sp.parent sp.start_ns dur_ns

let counter_json buf name value =
  Printf.bprintf buf
    "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":0,\
     \"args\":{\"value\":%d}}"
    (escape_string name) value

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  List.iter
    (fun sp ->
      sep ();
      span_json buf sp)
    (Recorder.spans t);
  List.iter
    (fun (name, value) ->
      sep ();
      counter_json buf name value)
    (Recorder.counters t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Minimal JSON-subset parser                                          *)
(* ------------------------------------------------------------------ *)

(* Parses only the shape this module writes: objects, arrays, strings,
   numbers, with no extraneous whitespace handling beyond skipping it. *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of string  (* kept textual; converted on demand *)

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          let e = peek () in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* we only emit codes < 0x20, which are single bytes *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail "unsupported \\u escape";
              loop ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); J_obj [])
        else begin
          let rec members acc =
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); skip_ws (); members ((key, v) :: acc)
            | '}' -> advance (); J_obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); J_arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); J_arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | '"' -> J_str (parse_string ())
    | '-' | '0' .. '9' ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          advance ()
        done;
        J_num (String.sub s start (!pos - start))
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj key =
  match obj with
  | J_obj kvs -> (
      match List.assoc_opt key kvs with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" key)))
  | _ -> raise (Parse_error "expected an object")

let as_string = function
  | J_str s -> s
  | _ -> raise (Parse_error "expected a string")

let as_int = function
  | J_num s -> (
      try int_of_string s
      with _ -> raise (Parse_error (Printf.sprintf "bad integer %S" s)))
  | _ -> raise (Parse_error "expected a number")

let as_int64 = function
  | J_num s -> (
      try Int64.of_string s
      with _ -> raise (Parse_error (Printf.sprintf "bad integer %S" s)))
  | _ -> raise (Parse_error "expected a number")

let event_of_json j =
  match as_string (field j "ph") with
  | "X" ->
      let args = field j "args" in
      let start_ns = as_int64 (field args "start_ns") in
      let dur_ns = as_int64 (field args "dur_ns") in
      Span
        {
          id = as_int (field args "id");
          parent = as_int (field args "parent");
          name = as_string (field j "name");
          layer = as_string (field j "cat");
          start_ns;
          stop_ns = Int64.add start_ns dur_ns;
        }
  | "C" ->
      Counter
        {
          name = as_string (field j "name");
          value = as_int (field (field j "args") "value");
        }
  | ph -> raise (Parse_error (Printf.sprintf "unsupported event phase %S" ph))

let events_of_json s =
  match field (parse_json s) "traceEvents" with
  | J_arr events -> List.map event_of_json events
  | _ -> raise (Parse_error "traceEvents is not an array")

(* ------------------------------------------------------------------ *)
(* Nesting validation                                                  *)
(* ------------------------------------------------------------------ *)

let check_nesting spans =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (sp : Recorder.span_info) -> Hashtbl.replace by_id sp.id sp)
    spans;
  let rec check = function
    | [] -> Ok ()
    | (sp : Recorder.span_info) :: rest ->
        if sp.parent < 0 then check rest
        else (
          match Hashtbl.find_opt by_id sp.parent with
          | None ->
              Error
                (Printf.sprintf "span %d (%s): parent %d not in trace" sp.id
                   sp.name sp.parent)
          | Some parent ->
              if parent.id >= sp.id then
                Error
                  (Printf.sprintf
                     "span %d (%s): parent %d was begun after its child" sp.id
                     sp.name parent.id)
              else if Int64.compare sp.start_ns parent.start_ns < 0 then
                Error
                  (Printf.sprintf
                     "span %d (%s): starts %Ldns before parent %d" sp.id
                     sp.name
                     (Int64.sub parent.start_ns sp.start_ns)
                     parent.id)
              else if Int64.compare sp.stop_ns parent.stop_ns > 0 then
                Error
                  (Printf.sprintf
                     "span %d (%s): stops %Ldns after parent %d" sp.id sp.name
                     (Int64.sub sp.stop_ns parent.stop_ns)
                     parent.id)
              else check rest)
  in
  check spans
