(** Cross-layer observability recorder: virtual-time spans with
    parent/child nesting, named monotonic counters, and log-bucketed
    latency histograms ({!Histogram}).

    One recorder is threaded through a whole simulated stack (Cricket
    client shim, ONC RPC client/server, network channel, TCP stack, GPU
    simulator); every instrumented layer holds a reference and emits
    events against it. Timestamps come from the recorder's clock hook —
    the benchmarks install the simulation engine's virtual clock, so
    spans decompose exactly the virtual time the measurements report.

    {b Cost contract.} Recording is off by default. Every event entry
    point ({!span_begin}, {!span_end}, {!span_event}, {!incr}, {!observe})
    checks [enabled] first and returns immediately when off — at most one
    branch per event, like [Cricket.Trace]. Instrumentation sites that
    would need to {e compute} an argument (build a name, format a string)
    must guard on {!enabled} themselves so the disabled path stays free of
    allocation. {!null} is a shared recorder that can never be enabled,
    for use as a default. *)

type t

type span
(** Handle for an open span. {!null_span} (also returned by {!span_begin}
    when recording is off) is inert: ending it is a no-op. *)

type span_info = {
  id : int;  (** dense, in begin order *)
  parent : int;  (** enclosing span's id, or -1 for a root span *)
  name : string;
  layer : string;  (** e.g. "shim", "rpc", "net", "dispatch", "gpu" *)
  start_ns : int64;
  stop_ns : int64;
}

val null_span : span

val create : ?clock:(unit -> int64) -> ?max_spans:int -> unit -> t
(** [clock] returns the current time in ns (default: constant 0 until
    {!set_clock}). [max_spans] bounds retained spans (default 1_000_000);
    beyond it spans are counted in {!dropped_spans} and still feed the
    per-layer histograms, but are not retained. *)

val null : t
(** A shared recorder that is permanently disabled: {!set_enabled} on it
    is a no-op. The default for every layer's [set_obs]. *)

val set_clock : t -> (unit -> int64) -> unit
val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {1 Spans} *)

val span_begin : t -> ?layer:string -> string -> span
(** Open a span starting now. Its parent is the innermost span currently
    open on this recorder. [layer] defaults to ["misc"]. *)

val span_end : t -> span -> unit
(** Close a span: stamps its stop time, records its duration in the
    histogram named ["span/" ^ layer], and pops it from the nesting
    stack. Closing out of order is tolerated (the span is removed from
    wherever it sits in the stack). *)

val with_span : t -> ?layer:string -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] wraps [f] in a span, closing it on exceptions
    too. *)

val span_event :
  ?layer:string -> ?parent:span -> t -> name:string -> start_ns:int64 ->
  stop_ns:int64 -> unit
(** Record an already-closed span with explicit timestamps — e.g. GPU
    stream commands whose completion lies in the virtual future. Default
    parent: none (root); pass [parent] to attach it explicitly. Feeds the
    layer histogram like {!span_end}. *)

(** {1 Counters} *)

val incr : t -> ?by:int -> string -> unit
val counter : t -> string -> int
(** 0 for a counter never incremented. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

(** {2 Per-tenant labels}

    Multi-tenant layers emit one counter per (name, tenant) pair under a
    canonical rendering, so producers and report code agree on the key
    without a registry. *)

val tenant_label : string -> tenant:string -> string
(** [tenant_label "tenancy.served" ~tenant:"uk3"] is
    ["tenancy.served{tenant=uk3}"]. *)

val tenant_of_label : string -> (string * string) option
(** Inverse of {!tenant_label}: [(name, tenant)] when the label carries a
    tenant, [None] otherwise. *)

val counters_prefixed : t -> prefix:string -> (string * int) list
(** Counters whose name starts with [prefix], sorted by name — e.g. all
    per-tenant instances of one logical counter. *)

(** {1 Histograms} *)

val observe : t -> string -> int64 -> unit
(** Record a value (ns) into the named histogram, creating it on first
    use. *)

val histogram : t -> string -> Histogram.t option
val histograms : t -> (string * Histogram.t) list
(** Sorted by name. *)

(** {1 Inspection} *)

val spans : t -> span_info list
(** Closed spans, in begin order. Open spans are not included. *)

val span_count : t -> int
(** Closed spans retained. *)

val dropped_spans : t -> int

val layer_total_ns : t -> string -> int64
(** Sum of closed-span durations in a layer. Layers are instrumented so
    that same-layer spans never nest, hence the plain sum is the layer's
    wall (virtual) time. *)

val reset : t -> unit
(** Drop all spans, counters and histograms; keep clock and enabled
    flag. *)
