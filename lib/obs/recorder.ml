type span = {
  id : int;
  sp_parent : int;
  sp_name : string;
  sp_layer : string;
  sp_start : int64;
  mutable sp_stop : int64;  (* -1 while open *)
}

type span_info = {
  id : int;
  parent : int;
  name : string;
  layer : string;
  start_ns : int64;
  stop_ns : int64;
}

let null_span =
  { id = -1; sp_parent = -1; sp_name = ""; sp_layer = ""; sp_start = 0L;
    sp_stop = 0L }

type t = {
  mutable is_enabled : bool;
  lockable : bool;  (* false only for [null]: set_enabled is a no-op *)
  mutable clock : unit -> int64;
  max_spans : int;
  mutable spans : span array;  (* doubling array of retained spans *)
  mutable n_spans : int;
  mutable next_id : int;
  mutable dropped : int;
  mutable stack : span list;  (* open spans, innermost first *)
  counters : (string, int Atomic.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  tables_lock : Mutex.t;
      (* guards the [counters]/[histograms] Hashtbl structure (find-or-
         create, iteration, reset). Counter bumps themselves are atomic
         fetch-and-adds outside the lock, so concurrent [incr] from many
         domains is safe and sums exactly. Spans and histogram *contents*
         remain owner-domain: only the domain that created a recorder may
         open spans or record observations into a given histogram. *)
}

let make ~lockable ?(clock = fun () -> 0L) ?(max_spans = 1_000_000) () =
  {
    is_enabled = false;
    lockable;
    clock;
    max_spans;
    spans = Array.make 64 null_span;
    n_spans = 0;
    next_id = 0;
    dropped = 0;
    stack = [];
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    tables_lock = Mutex.create ();
  }

let create ?clock ?max_spans () = make ~lockable:true ?clock ?max_spans ()
let null = make ~lockable:false ()

let set_clock t clock = t.clock <- clock
let enabled t = t.is_enabled
let set_enabled t v = if t.lockable then t.is_enabled <- v

let hist t name =
  Mutex.lock t.tables_lock;
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.add t.histograms name h;
        h
  in
  Mutex.unlock t.tables_lock;
  h

let retain t sp =
  if t.n_spans >= t.max_spans then t.dropped <- t.dropped + 1
  else begin
    if t.n_spans = Array.length t.spans then begin
      let bigger = Array.make (2 * Array.length t.spans) null_span in
      Array.blit t.spans 0 bigger 0 t.n_spans;
      t.spans <- bigger
    end;
    t.spans.(t.n_spans) <- sp;
    t.n_spans <- t.n_spans + 1
  end

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let span_begin t ?(layer = "misc") name =
  if not t.is_enabled then null_span
  else begin
    let parent = match t.stack with [] -> -1 | p :: _ -> p.id in
    let sp =
      { id = fresh_id t; sp_parent = parent; sp_name = name;
        sp_layer = layer; sp_start = t.clock (); sp_stop = -1L }
    in
    t.stack <- sp :: t.stack;
    retain t sp;
    sp
  end

let observe_layer t (sp : span) =
  Histogram.record (hist t ("span/" ^ sp.sp_layer))
    (Int64.sub sp.sp_stop sp.sp_start)

let span_end t (sp : span) =
  if sp.id >= 0 && Int64.equal sp.sp_stop (-1L) then begin
    sp.sp_stop <- t.clock ();
    t.stack <- List.filter (fun s -> s != sp) t.stack;
    observe_layer t sp
  end

let with_span t ?layer name f =
  let sp = span_begin t ?layer name in
  match f () with
  | r ->
      span_end t sp;
      r
  | exception e ->
      span_end t sp;
      raise e

let span_event ?(layer = "misc") ?(parent = null_span) t ~name ~start_ns
    ~stop_ns =
  if t.is_enabled then begin
    let sp =
      { id = fresh_id t; sp_parent = parent.id; sp_name = name;
        sp_layer = layer; sp_start = start_ns; sp_stop = stop_ns }
    in
    retain t sp;
    observe_layer t sp
  end

let counter_cell t name =
  Mutex.lock t.tables_lock;
  let cell =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.add t.counters name c;
        c
  in
  Mutex.unlock t.tables_lock;
  cell

let incr t ?(by = 1) name =
  if t.is_enabled then
    ignore (Atomic.fetch_and_add (counter_cell t name) by)

let counter t name =
  Mutex.lock t.tables_lock;
  let cell = Hashtbl.find_opt t.counters name in
  Mutex.unlock t.tables_lock;
  match cell with Some c -> Atomic.get c | None -> 0

let counters t =
  Mutex.lock t.tables_lock;
  let snapshot =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) t.counters []
  in
  Mutex.unlock t.tables_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) snapshot

(* Per-tenant counter labels: one canonical rendering so producers
   (serving core, server) and consumers (reports, tests) agree on the
   key. The label char set is unrestricted — "}" simply ends the value at
   the last brace, and names never contain "{". *)
let tenant_label name ~tenant = name ^ "{tenant=" ^ tenant ^ "}"

let tenant_of_label label =
  match String.index_opt label '{' with
  | Some i
    when String.length label > i + 8
         && String.sub label i 8 = "{tenant="
         && label.[String.length label - 1] = '}' ->
      let start = i + 8 in
      Some
        ( String.sub label 0 i,
          String.sub label start (String.length label - start - 1) )
  | _ -> None

let counters_prefixed t ~prefix =
  let plen = String.length prefix in
  counters t
  |> List.filter (fun (name, _) ->
         String.length name >= plen && String.sub name 0 plen = prefix)

let observe t name v = if t.is_enabled then Histogram.record (hist t name) v

let histogram t name =
  Mutex.lock t.tables_lock;
  let h = Hashtbl.find_opt t.histograms name in
  Mutex.unlock t.tables_lock;
  h

let histograms t =
  Mutex.lock t.tables_lock;
  let snapshot =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms []
  in
  Mutex.unlock t.tables_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) snapshot

let info (sp : span) : span_info =
  { id = sp.id; parent = sp.sp_parent; name = sp.sp_name;
    layer = sp.sp_layer; start_ns = sp.sp_start; stop_ns = sp.sp_stop }

let spans t =
  let rec closed i acc =
    if i < 0 then acc
    else
      let sp = t.spans.(i) in
      closed (i - 1) (if Int64.equal sp.sp_stop (-1L) then acc else info sp :: acc)
  in
  closed (t.n_spans - 1) []

let span_count t =
  let n = ref 0 in
  for i = 0 to t.n_spans - 1 do
    if not (Int64.equal t.spans.(i).sp_stop (-1L)) then n := !n + 1
  done;
  !n

let dropped_spans t = t.dropped

let layer_total_ns t layer =
  let total = ref 0L in
  for i = 0 to t.n_spans - 1 do
    let sp = t.spans.(i) in
    if String.equal sp.sp_layer layer && not (Int64.equal sp.sp_stop (-1L))
    then total := Int64.add !total (Int64.sub sp.sp_stop sp.sp_start)
  done;
  !total

let reset t =
  t.spans <- Array.make 64 null_span;
  t.n_spans <- 0;
  t.next_id <- 0;
  t.dropped <- 0;
  t.stack <- [];
  Mutex.lock t.tables_lock;
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms;
  Mutex.unlock t.tables_lock
