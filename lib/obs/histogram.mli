(** Log-bucketed latency histogram.

    Values (nanoseconds) land in power-of-two buckets — bucket [i] holds
    values whose bit length is [i], i.e. the range [2^(i-1), 2^i) — so a
    histogram covers the full int64 range in 64 counters with a relative
    quantile error bounded by 2x. Exact minimum, maximum, count and sum
    are tracked alongside, so [max_ns] (and any quantile that resolves to
    the last occupied bucket) is exact. Recording is O(bit length); no
    allocation after {!create}. *)

type t

val create : unit -> t
val record : t -> int64 -> unit
(** Negative values are clamped to 0. *)

val count : t -> int
val sum_ns : t -> int64
val max_ns : t -> int64
(** 0 when empty. *)

val min_ns : t -> int64
(** 0 when empty. *)

val mean_ns : t -> float

val quantile : t -> float -> int64
(** [quantile t q] for [q] in [0, 1]: an upper bound of the bucket holding
    the rank-[ceil (q * count)] value, clamped to the exact [max_ns] (and
    floored at [min_ns]). 0 when empty. *)

val buckets : t -> int array
(** A copy of the 64 bucket counters, for tests and exports. *)

val pp : Format.formatter -> t -> unit
(** "p50=… p95=… p99=… max=… (n=…)" with microsecond formatting. *)
