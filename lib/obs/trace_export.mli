(** Chrome [trace_event] JSON export for a {!Recorder}.

    Spans become complete ("ph":"X") events with microsecond [ts]/[dur]
    for the chrome://tracing / Perfetto UI, plus exact nanosecond
    timestamps and span ids under [args] so the export round-trips
    losslessly. Counters become counter ("ph":"C") events stamped at the
    recorder's current time.

    {!events_of_json} parses the subset of JSON this module emits (it is
    not a general JSON parser) and is what the round-trip tests — and any
    external tooling that wants exact timestamps — should read. *)

type event =
  | Span of Recorder.span_info
  | Counter of { name : string; value : int }

exception Parse_error of string

val to_json : Recorder.t -> string
(** The full trace document: [{"traceEvents": [...], ...}]. *)

val events_of_json : string -> event list
(** Inverse of {!to_json} (spans and counters, in document order). Raises
    {!Parse_error} on malformed input or events missing the exact-ns
    args. *)

val check_nesting : Recorder.span_info list -> (unit, string) result
(** Structural validation: every span's parent exists, was begun before
    the child, and its [start_ns, stop_ns] interval contains the
    child's. Root spans (parent -1) are exempt. *)
