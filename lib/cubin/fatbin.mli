(** Fat binary container: one kernel module per target architecture.

    NVCC embeds several cubins (and PTX) for different compute
    capabilities into a fat binary; the loader picks the best one the
    device can run. Cricket's original kernel-loading path only handled fat
    binaries embedded by nvcc's hidden init code; the paper added loading
    standalone cubins via [cuModule]. We support both containers.

    Layout: ["FATB", u16 version, u32 count, count × (u16 major, u16 minor,
    u32 len, image bytes)]. *)

type t = { images : ((int * int) * string) list }
(** [(compute capability, serialized cubin image)]. *)

val build : t -> string
val parse : string -> (t, string) result

val image_compatible : cc:int * int -> int * int -> bool
(** [image_compatible ~cc arch]: can a device of compute capability [cc]
    run an image built for [arch]? True iff the majors are equal and the
    image's minor does not exceed the device's — real SASS is not
    forward-compatible across major architectures (an sm_70 image does
    not run on an sm_80 device). *)

val best_image : t -> cc:int * int -> string option
(** The image with the highest architecture not exceeding [cc] — CUDA's
    compatibility rule within a major architecture: only images with
    [major = cc's major] and [minor <= cc's minor] are candidates; [None]
    when the container holds no image of the device's major. *)

val is_fatbin : string -> bool
