type t = { images : ((int * int) * string) list }

let magic = "FATB"
let format_version = 1

let build t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr (format_version land 0xff));
  Buffer.add_char buf (Char.chr (format_version lsr 8));
  let count = List.length t.images in
  Buffer.add_char buf (Char.chr (count land 0xff));
  Buffer.add_char buf (Char.chr ((count lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((count lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((count lsr 24) land 0xff));
  List.iter
    (fun ((major, minor), image) ->
      let w16 v =
        Buffer.add_char buf (Char.chr (v land 0xff));
        Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))
      in
      w16 major;
      w16 minor;
      let len = String.length image in
      Buffer.add_char buf (Char.chr (len land 0xff));
      Buffer.add_char buf (Char.chr ((len lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr ((len lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((len lsr 24) land 0xff));
      Buffer.add_string buf image)
    t.images;
  Buffer.contents buf

let parse s =
  let pos = ref 0 in
  let fail msg = Error msg in
  let u8 () =
    if !pos >= String.length s then None
    else begin
      let v = Char.code s.[!pos] in
      incr pos;
      Some v
    end
  in
  let u16 () =
    match (u8 (), u8 ()) with
    | Some lo, Some hi -> Some (lo lor (hi lsl 8))
    | _ -> None
  in
  let u32 () =
    match (u16 (), u16 ()) with
    | Some lo, Some hi -> Some (lo lor (hi lsl 16))
    | _ -> None
  in
  if String.length s < 6 || String.sub s 0 4 <> magic then fail "bad magic"
  else begin
    pos := 4;
    match u16 () with
    | Some v when v = format_version -> (
        match u32 () with
        | None -> fail "truncated count"
        | Some count -> (
            let rec read_images n acc =
              if n = 0 then Ok { images = List.rev acc }
              else
                match (u16 (), u16 (), u32 ()) with
                | Some major, Some minor, Some len ->
                    if !pos + len > String.length s then fail "truncated image"
                    else begin
                      let image = String.sub s !pos len in
                      pos := !pos + len;
                      read_images (n - 1) (((major, minor), image) :: acc)
                    end
                | _ -> fail "truncated image header"
            in
            match read_images count [] with
            | Ok t when !pos = String.length s -> Ok t
            | Ok _ -> fail "trailing bytes"
            | Error e -> Error e))
    | Some v -> fail (Printf.sprintf "unsupported version %d" v)
    | None -> fail "truncated version"
  end

(* SASS is only compatible within one major architecture: an sm_70 image
   does not run on an sm_80 device. Candidates must match the device's
   major exactly and not exceed its minor. *)
let image_compatible ~cc:(want_major, want_minor) (major, minor) =
  major = want_major && minor <= want_minor

let best_image t ~cc =
  let candidates =
    List.filter (fun (arch, _) -> image_compatible ~cc arch) t.images
  in
  match List.sort (fun (a, _) (b, _) -> compare b a) candidates with
  | (_, image) :: _ -> Some image
  | [] -> None

let is_fatbin s = String.length s >= 4 && String.sub s 0 4 = magic
