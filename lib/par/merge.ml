(* Deterministic virtual-time merge.

   Each shard of a parallel run emits a stream of completion events
   stamped with the shard's virtual clock and a per-shard sequence
   number. The merge rebuilds one global timeline ordered by the total
   key (vtime, shard, seq): virtual time first, shard id to break
   cross-shard ties, sequence number to keep each shard's own order.
   The key never mentions wall-clock time or domain ids, so the merged
   timeline — and everything folded over it — is byte-identical no
   matter how many domains executed the shards.

   Inputs must be sorted by (vtime, seq) — true by construction for a
   stream produced by a single discrete-event engine, and checked here
   so a shard that violates its own clock fails loudly instead of
   producing a plausible-but-wrong global order. *)

module Time = Simnet.Time

type 'a event = {
  vtime : Time.t;  (** shard-local virtual timestamp, ns *)
  shard : int;
  seq : int;  (** per-shard emission index *)
  payload : 'a;
}

let key_compare a b =
  match Time.compare a.vtime b.vtime with
  | 0 -> ( match compare a.shard b.shard with 0 -> compare a.seq b.seq | c -> c)
  | c -> c

let check_stream evs =
  Array.iteri
    (fun i e ->
      if i > 0 then begin
        let p = evs.(i - 1) in
        if Time.compare p.vtime e.vtime > 0 || (p.vtime = e.vtime && p.seq >= e.seq)
        then
          invalid_arg
            (Printf.sprintf
               "Par.Merge.merge: shard %d stream not sorted at index %d" e.shard
               i)
      end)
    evs

(* K-way merge by repeated min over stream heads. The shard count is
   small (single digits), so a linear scan beats maintaining a heap and
   keeps tie-breaking visibly identical to [key_compare]. *)
let merge streams =
  Array.iter check_stream streams;
  let k = Array.length streams in
  let heads = Array.make k 0 in
  let total = Array.fold_left (fun a s -> a + Array.length s) 0 streams in
  let out = ref [] in
  for _ = 1 to total do
    let best = ref (-1) in
    for s = 0 to k - 1 do
      if heads.(s) < Array.length streams.(s) then
        let cand = streams.(s).(heads.(s)) in
        if !best < 0 || key_compare cand streams.(!best).(heads.(!best)) < 0
        then best := s
      done;
    let s = !best in
    out := streams.(s).(heads.(s)) :: !out;
    heads.(s) <- heads.(s) + 1
  done;
  let merged = Array.of_list (List.rev !out) in
  merged

(* FNV-1a over the merge keys (and optionally a payload word): a cheap
   order-sensitive fingerprint of the global timeline. Two runs that
   merged the same events in the same order agree; any reordering,
   dropped or duplicated completion changes the digest. Printed by the
   load harness and byte-diffed across --domains counts in CI. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 h x = Int64.mul (Int64.logxor h x) fnv_prime

let digest ?(payload = fun _ -> 0L) events =
  Array.fold_left
    (fun h e ->
      let h = fnv64 h e.vtime in
      let h = fnv64 h (Int64.of_int e.shard) in
      let h = fnv64 h (Int64.of_int e.seq) in
      fnv64 h (payload e.payload))
    fnv_offset events

(* Feed a merged timeline back into a simulation engine: each event is
   scheduled at its virtual timestamp, and the engine's FIFO tie-break
   (Simnet.Heap orders equal-priority entries by insertion) preserves
   the merge order among same-instant events. After [run] the engine
   clock sits at the last completion — the global makespan. *)
let replay ~engine events f =
  Array.iter
    (fun e -> Simnet.Engine.schedule_at engine e.vtime (fun () -> f e))
    events;
  Simnet.Engine.run engine
