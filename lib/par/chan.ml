(* Domain-safe work queue: the per-domain mailbox of the parallel
   runtime. A queue belongs to one worker domain, which pops from the
   front; idle workers steal from other queues through the same lock.
   Plain Mutex + Queue — the queues hold coarse shard jobs (a handful of
   entries each), so a lock-free deque would buy nothing over keeping the
   implementation obviously correct. *)

type 'a t = {
  lock : Mutex.t;
  items : 'a Queue.t;
}

let create () = { lock = Mutex.create (); items = Queue.create () }

let push t x =
  Mutex.lock t.lock;
  Queue.add x t.items;
  Mutex.unlock t.lock

let try_pop t =
  Mutex.lock t.lock;
  let x = Queue.take_opt t.items in
  Mutex.unlock t.lock;
  x

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.items in
  Mutex.unlock t.lock;
  n

let is_empty t = length t = 0
