(* Shard topology: the *logical* decomposition of a workload, fixed
   independently of how many domains execute it.

   Determinism across --domains N hinges on this split: the assignment
   of tenants (or any keyed work) to logical shards is a pure function
   of the key and the shard count, so changing the domain count changes
   only which domain runs a shard — never which shard owns what, and
   therefore never a single byte of any shard's simulation. Scaling the
   domain count up to the shard count adds parallelism; beyond it, the
   extra domains idle. *)

let default_shards = 4

let owner ~shards key =
  if shards < 1 then invalid_arg "Par.Topology.owner: shards < 1";
  if key < 0 then invalid_arg "Par.Topology.owner: negative key";
  key mod shards

(* Members of shard [s] in ascending key order: s, s+shards, s+2*shards…
   The inverse of [owner] restricted to [0, n). *)
let members ~shards ~n s =
  if s < 0 || s >= shards then invalid_arg "Par.Topology.members: shard id";
  let rec collect k acc = if k >= n then List.rev acc else collect (k + shards) (k :: acc) in
  Array.of_list (collect s [])

let partition ~shards ~n =
  Array.init (max 1 shards) (fun s -> members ~shards:(max 1 shards) ~n s)
