(* Domain pool: run n independent jobs across OCaml 5 domains.

   Jobs are indexed 0..n-1 and dealt round-robin into domain-local work
   queues ({!Chan}); each worker drains its own queue first and steals
   from its neighbours when idle, so an unbalanced shard (one slow
   tenant partition) does not leave the other domains parked. Results
   land in a slot array keyed by job index, which is what makes the
   pool safe to use under a determinism contract: the *values* returned
   never depend on which domain ran which job or in what order — only
   wall-clock time does.

   Worker 0 is the calling domain, so [domains:1] spawns nothing and is
   exactly a sequential loop — the reference execution the byte-identity
   tests compare against. *)

type 'a outcome = Done of 'a | Raised of exn * Printexc.raw_backtrace

let run ~domains n job =
  if n < 0 then invalid_arg "Par.Pool.run: negative job count";
  let domains = max 1 (min domains (max 1 n)) in
  let queues = Array.init domains (fun _ -> Chan.create ()) in
  for i = 0 to n - 1 do
    Chan.push queues.(i mod domains) i
  done;
  let slots = Array.make n None in
  (* Each slot is written by exactly one domain (job indices are dealt
     once and never duplicated), then read only after every worker has
     joined — no two domains ever race on the same array element. *)
  let rec steal w attempt =
    if attempt >= domains then None
    else
      match Chan.try_pop queues.((w + attempt) mod domains) with
      | Some _ as got -> got
      | None -> steal w (attempt + 1)
  in
  let worker w () =
    let rec loop () =
      match steal w 0 with
      | None -> ()
      | Some i ->
          let outcome =
            match job i with
            | v -> Done v
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          slots.(i) <- Some outcome;
          loop ()
    in
    loop ()
  in
  let spawned =
    Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  worker 0 ();
  Array.iter Domain.join spawned;
  (* Re-raise the lowest-indexed failure so the surfaced exception does
     not depend on scheduling. *)
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Done _) -> ()
      | None ->
          failwith (Printf.sprintf "Par.Pool.run: job %d never executed" i))
    slots;
  Array.map
    (function Some (Done v) -> v | _ -> assert false (* checked above *))
    slots

let map ~domains f items =
  let arr = Array.of_list items in
  Array.to_list (run ~domains (Array.length arr) (fun i -> f arr.(i)))
