(** Scatter-gather TCP segments.

    The endpoint's internal segment representation: identical header
    fields to {!Segment.t} but the payload is an {!Xdr.Iovec.t} of views
    aliasing the sender's queued data, and [window] is not clamped to the
    16-bit wire field (window scaling). {!Netdev} moves frames between
    endpoints without flattening them; the byte-encoding {!Medium} path
    materializes via {!to_segment}. *)

type t = {
  src_port : int;
  dst_port : int;
  seq : Seqnum.t;
  ack : Seqnum.t;
  flags : Segment.flags;
  window : int;
  payload : Xdr.Iovec.t;
  payload_len : int;  (** [Xdr.Iovec.length payload], precomputed *)
}

val of_segment : Segment.t -> t
(** Zero-copy view of a decoded wire segment. *)

val to_segment : t -> Segment.t
(** Materialize the payload into a flat buffer (the one copy the
    byte-wire path pays per transmission). *)

val seq_length : t -> int
(** Payload length plus one for SYN and one for FIN. *)

val sub : t -> int -> int -> t
(** [sub t pos len] is the payload range [pos, pos+len) as its own frame:
    sequence number advanced by [pos], payload aliased, SYN kept only at
    [pos = 0], FIN/PSH only on the final range. Used by {!Netdev} for TSO
    segmentation and GRO re-coalescing. *)
