module Engine = Simnet.Engine
module Time = Simnet.Time
module Fault = Simnet.Fault

type t = {
  engine : Engine.t;
  link : Simnet.Link.t;
  fault : Fault.t option;
  mutable transmitted : int;
  mutable delivered : int;
  (* last scheduled delivery per direction: the wire is FIFO, so a short
     segment must not overtake a long one sent before it *)
  mutable last_delivery_ab : Time.t;
  mutable last_delivery_ba : Time.t;
}

(* Fixed fake addresses for the pseudo-header; direction-dependent. *)
let ip_a = 0x0a000001l
let ip_b = 0x0a000002l

let connect ~engine ~link ?fault a b =
  let t =
    { engine; link; fault; transmitted = 0; delivered = 0;
      last_delivery_ab = Time.zero; last_delivery_ba = Time.zero }
  in
  let wire ~src_ip ~dst_ip peer seg =
    t.transmitted <- t.transmitted + 1;
    let decision =
      match t.fault with
      | None -> Fault.Pass
      | Some f -> Fault.decide ~now:(Engine.now t.engine) f
    in
    match decision with
    | Fault.Drop -> ()
    | (Fault.Pass | Fault.Duplicate | Fault.Corrupt | Fault.Delay _) as d ->
        let bytes = Segment.encode ~src_ip ~dst_ip seg in
        (match d with
        | Fault.Corrupt ->
            (* flip a payload/header bit; checksum verification must reject *)
            let i = Bytes.length bytes / 2 in
            Bytes.set bytes i
              (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40))
        | _ -> ());
        let extra = match d with Fault.Delay x -> x | _ -> Time.zero in
        let delay =
          Time.add extra
            (Time.add
               (Time.ns t.link.Simnet.Link.latency_ns)
               (Time.of_float_ns
                  (Simnet.Link.serialize_ns t.link
                     ~payload:(Bytes.length bytes) ~packets:1)))
        in
        let deliver () =
          (* FIFO per direction: never deliver before an earlier segment *)
          let earliest = Time.add (Engine.now t.engine) delay in
          let arrival =
            if Int32.equal src_ip ip_a then begin
              let a =
                if Time.compare earliest t.last_delivery_ab > 0 then earliest
                else Time.add t.last_delivery_ab (Time.ns 1)
              in
              t.last_delivery_ab <- a;
              a
            end
            else begin
              let a =
                if Time.compare earliest t.last_delivery_ba > 0 then earliest
                else Time.add t.last_delivery_ba (Time.ns 1)
              in
              t.last_delivery_ba <- a;
              a
            end
          in
          Engine.schedule_at t.engine arrival (fun () ->
              match Segment.decode ~src_ip ~dst_ip bytes with
              | Ok seg ->
                  t.delivered <- t.delivered + 1;
                  Endpoint.on_segment peer seg
              | Error _ -> (* dropped by checksum verification *) ())
        in
        deliver ();
        (match d with Fault.Duplicate -> deliver () | _ -> ())
  in
  Endpoint.set_tx a (fun seg -> wire ~src_ip:ip_a ~dst_ip:ip_b b seg);
  Endpoint.set_tx b (fun seg -> wire ~src_ip:ip_b ~dst_ip:ip_a a seg);
  t

let transmitted t = t.transmitted
let delivered t = t.delivered
let fault_stats t = Option.map Fault.stats t.fault
