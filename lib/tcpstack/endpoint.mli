(** Minimal TCP endpoint in the spirit of smoltcp (RustyHermit's stack).

    Implements the RFC 793 state machine over the {!Simnet.Engine} event
    loop: three-way handshake, MSS segmentation, cumulative ACKs, a fixed
    advertised receive window, go-back-N retransmission on a fixed RTO,
    RFC 5681 congestion control (slow start, congestion avoidance, fast
    retransmit on three duplicate ACKs, multiplicative decrease on
    timeout), and the full close sequence (FIN_WAIT_1/2, CLOSING,
    CLOSE_WAIT, LAST_ACK, TIME_WAIT). Out-of-order segments are buffered
    for reassembly (bounded), so a single loss is healed by one fast
    retransmit in roughly one round trip.

    The stack exists to validate mechanisms the closed-form {!Simnet.Netcost}
    model charges for (segment counts, ACK traffic, loss recovery); the
    Cricket benchmarks use the closed form for speed. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

val state_to_string : state -> string

type stats = {
  segments_sent : int;
  segments_received : int;
  retransmissions : int;  (** all retransmitted segments (RTO + fast) *)
  fast_retransmissions : int;  (** triggered by triple duplicate ACKs *)
  bytes_sent : int;  (** payload bytes handed to the wire (incl. rexmit) *)
  bytes_received : int;  (** in-order payload bytes delivered to the app *)
}

type t

val create :
  engine:Simnet.Engine.t ->
  name:string ->
  mss:int ->
  iss:Seqnum.t ->
  local_port:int ->
  remote_port:int ->
  ?rcv_window:int ->
  ?rto:Simnet.Time.t ->
  unit ->
  t

val set_tx : t -> (Segment.t -> unit) -> unit
(** Install the wire-output function (done by {!Medium}). Frames are
    materialized via {!Frame.to_segment} — one payload copy per
    transmission, which the byte-wire path needs anyway. *)

val set_tx_frame : t -> (Frame.t -> unit) -> unit
(** Install a scatter-gather output function (done by {!Netdev}); payload
    slices reach the device without flattening. *)

val set_tx_burst : t -> int -> unit
(** Raise the per-segment payload ceiling above the MSS (TSO: the device
    negotiated segmentation offload, so the endpoint may emit
    super-segments the device will cut at wire MSS). Raises
    [Invalid_argument] below the MSS. *)

val set_obs : t -> Obs.Recorder.t -> unit
(** Attach an observability recorder: loss-recovery events bump the
    ["tcp.retransmit"], ["tcp.fast_retransmit"] and ["tcp.rto_backoff"]
    counters. One branch per event while the recorder is disabled. *)

val tx_burst : t -> int
(** Current per-segment payload ceiling (= MSS unless raised). *)

val on_segment : t -> Segment.t -> unit
(** Deliver a segment from the wire. *)

val on_frame : t -> Frame.t -> unit
(** Deliver a scatter-gather frame (the {!Netdev} receive path). *)

val connect : t -> unit
(** Active open: send SYN. *)

val listen : t -> unit
(** Passive open. *)

val send : t -> bytes -> unit
(** Queue application data; segments flow as the window allows. The data
    is copied once into the send ring (the caller may reuse the buffer);
    segmentation then aliases ring slices, so queueing [n] bytes and
    draining them is O(n) total, not O(n²/mss). *)

val sendv : t -> Xdr.Iovec.t -> unit
(** Queue scatter-gather data without copying. The caller must not mutate
    the underlying buffers until the bytes are acknowledged (the
    retransmit queue aliases them). *)

val send_string : t -> string -> unit
(** [sendv] over a whole (immutable) string. *)

val close : t -> unit
(** Queue a FIN after any pending data. *)

val recv : t -> bytes
(** Drain in-order received application data (empty if none). *)

val recv_length : t -> int
(** Bytes currently readable by {!recv}. *)

val state : t -> state
val stats : t -> stats
val unacked : t -> int
(** Bytes in flight (sent, not yet acknowledged). *)

val congestion_window : t -> int
(** Current cwnd in bytes (starts at 10 MSS per RFC 6928). *)
