module Time = Simnet.Time
module Engine = Simnet.Engine

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RECEIVED"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closing -> "CLOSING"
  | Time_wait -> "TIME_WAIT"

type stats = {
  segments_sent : int;
  segments_received : int;
  retransmissions : int;
  fast_retransmissions : int;
  bytes_sent : int;
  bytes_received : int;
}

(* A sent-but-unacknowledged segment, kept for retransmission. The payload
   is a scatter-gather view aliasing the send ring's storage. *)
type pending = {
  seq : Seqnum.t;
  payload : Xdr.Iovec.t;
  plen : int;
  syn : bool;
  fin : bool;
}

type t = {
  engine : Engine.t;
  name : string;
  mss : int;
  local_port : int;
  remote_port : int;
  rcv_window : int;
  rto : Time.t;
  mutable state : state;
  mutable snd_una : Seqnum.t;
  mutable snd_nxt : Seqnum.t;
  mutable snd_wnd : int;
  mutable rcv_nxt : Seqnum.t;
  mutable tx_burst : int;  (* max payload per emitted segment; mss, or up
                              to 64 KiB when the netdev negotiated TSO *)
  send_buf : Txring.t;  (* app data not yet segmented *)
  recv_buf : Buffer.t;  (* in-order data not yet read by the app *)
  mutable ooo : (Seqnum.t * Xdr.Iovec.t * int) list;
      (* out-of-order segments, sorted by seq *)
  mutable ooo_count : int;
  mutable inflight : pending list;  (* oldest first *)
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable tx : Frame.t -> unit;
  mutable rto_generation : int;
  mutable retransmit_count : int;
  mutable rto_backoff : int;  (* RFC 6298 §5.5 exponent; reset on new ACK *)
  mutable cwnd : int;  (* congestion window, bytes *)
  mutable ssthresh : int;
  mutable dup_acks : int;
  mutable fast_retransmits : int;
  mutable segments_sent : int;
  mutable segments_received : int;
  mutable retransmissions : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable obs : Obs.Recorder.t;
}

let max_retransmits = 8

let create ~engine ~name ~mss ~iss ~local_port ~remote_port
    ?(rcv_window = 1 lsl 20) ?(rto = Time.ms 200) () =
  if mss <= 0 then invalid_arg "Endpoint.create: mss";
  {
    engine; name; mss; local_port; remote_port; rcv_window; rto;
    state = Closed;
    snd_una = iss;
    snd_nxt = iss;
    snd_wnd = 0;
    rcv_nxt = 0;
    tx_burst = mss;
    send_buf = Txring.create ();
    recv_buf = Buffer.create 4096;
    ooo = [];
    ooo_count = 0;
    inflight = [];
    fin_queued = false;
    fin_sent = false;
    tx = (fun _ -> ());
    rto_generation = 0;
    retransmit_count = 0;
    rto_backoff = 0;
    cwnd = 10 * mss;  (* RFC 6928 initial window *)
    ssthresh = max_int;
    dup_acks = 0;
    fast_retransmits = 0;
    segments_sent = 0;
    segments_received = 0;
    retransmissions = 0;
    bytes_sent = 0;
    bytes_received = 0;
    obs = Obs.Recorder.null;
  }

let set_obs t obs = t.obs <- obs

let set_tx t fn = t.tx <- (fun f -> fn (Frame.to_segment f))
let set_tx_frame t fn = t.tx <- fn

let set_tx_burst t n =
  if n < t.mss then invalid_arg "Endpoint.set_tx_burst";
  t.tx_burst <- n

let tx_burst t = t.tx_burst
let state t = t.state

let stats t =
  { segments_sent = t.segments_sent; segments_received = t.segments_received;
    retransmissions = t.retransmissions;
    fast_retransmissions = t.fast_retransmits; bytes_sent = t.bytes_sent;
    bytes_received = t.bytes_received }

let congestion_window t = t.cwnd

let unacked t = Seqnum.diff t.snd_nxt t.snd_una

let emit t ?(payload = []) ?(plen = 0) ~seq ~flags () =
  let f =
    { Frame.src_port = t.local_port; dst_port = t.remote_port; seq;
      ack = t.rcv_nxt; flags; window = t.rcv_window; payload;
      payload_len = plen }
  in
  t.segments_sent <- t.segments_sent + 1;
  t.bytes_sent <- t.bytes_sent + plen;
  t.tx f

let send_ack t =
  emit t ~seq:t.snd_nxt
    ~flags:{ Segment.flags_none with ack = true }
    ()

(* Every segment carries ACK except the initial SYN of an active open
   (which is also what a retransmission must reproduce). *)
let pending_flags t (p : pending) =
  { Segment.syn = p.syn; fin = p.fin; rst = false;
    psh = p.plen > 0;
    ack = not (p.syn && t.state = Syn_sent) }

let transmit_pending t p =
  emit t ~payload:p.payload ~plen:p.plen ~seq:p.seq ~flags:(pending_flags t p)
    ()

let max_rto_backoff = 6 (* cap the timer at 64x its base value *)

let rec arm_rto t =
  t.rto_generation <- t.rto_generation + 1;
  let generation = t.rto_generation in
  (* exponential backoff (RFC 6298 §5.5): a spurious timeout — e.g. the
     peer's receive path is the bottleneck and ACKs queue behind it —
     must not fire at the same rate until the retry budget is gone *)
  let rto = Int64.shift_left t.rto (min t.rto_backoff max_rto_backoff) in
  Engine.schedule_after t.engine rto (fun () -> on_rto t generation)

and on_rto t generation =
  if generation = t.rto_generation && t.inflight <> [] && t.state <> Closed
  then begin
    t.retransmit_count <- t.retransmit_count + 1;
    if t.retransmit_count > max_retransmits then t.state <- Closed
    else begin
      t.rto_backoff <- t.rto_backoff + 1;
      Obs.Recorder.incr t.obs "tcp.rto_backoff";
      (* RFC 5681: timeout collapses the window to one segment *)
      t.ssthresh <- max (2 * t.mss) (unacked t / 2);
      t.cwnd <- t.mss;
      t.dup_acks <- 0;
      (match t.inflight with
      | p :: _ ->
          t.retransmissions <- t.retransmissions + 1;
          Obs.Recorder.incr t.obs "tcp.retransmit";
          transmit_pending t p
      | [] -> ());
      arm_rto t
    end
  end

(* Track a new sequence-space-consuming segment and put it on the wire. *)
let send_pending t (p : pending) =
  t.inflight <- t.inflight @ [ p ];
  t.snd_nxt <-
    Seqnum.add p.seq
      (p.plen + (if p.syn then 1 else 0) + if p.fin then 1 else 0);
  transmit_pending t p;
  if List.length t.inflight = 1 then arm_rto t

(* Segment whatever the window allows out of the send ring. [take] hands
   back aliased slice views, so cutting a segment is O(slices touched) —
   the seed rebuilt the whole remaining buffer here, which made bulk sends
   quadratic in the transfer size. *)
let rec pump t =
  match t.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack ->
      let window_left = (min t.snd_wnd t.cwnd) - unacked t in
      let buffered = Txring.length t.send_buf in
      if buffered > 0 && window_left > 0 then begin
        let len = min (min t.tx_burst buffered) window_left in
        let payload = Txring.take t.send_buf len in
        send_pending t
          { seq = t.snd_nxt; payload; plen = len; syn = false; fin = false };
        pump t
      end
      else if
        buffered = 0 && t.fin_queued && (not t.fin_sent) && window_left > 0
      then begin
        t.fin_sent <- true;
        send_pending t
          { seq = t.snd_nxt; payload = []; plen = 0; syn = false; fin = true };
        match t.state with
        | Established -> t.state <- Fin_wait_1
        | Close_wait -> t.state <- Last_ack
        | _ -> ()
      end
  | Closed | Listen | Syn_sent | Syn_received | Fin_wait_2 | Time_wait -> ()

let connect t =
  if t.state <> Closed then invalid_arg "Endpoint.connect: not closed";
  t.state <- Syn_sent;
  send_pending t
    { seq = t.snd_nxt; payload = []; plen = 0; syn = true; fin = false }

let listen t =
  if t.state <> Closed then invalid_arg "Endpoint.listen: not closed";
  t.state <- Listen

let send t data =
  Txring.push_bytes t.send_buf data;
  pump t

let sendv t iov =
  Txring.push_iovec t.send_buf iov;
  pump t

let send_string t s =
  Txring.push_iovec t.send_buf (Xdr.Iovec.of_string s);
  pump t

let close t =
  if not t.fin_queued then begin
    t.fin_queued <- true;
    pump t
  end

let recv t =
  let data = Buffer.to_bytes t.recv_buf in
  Buffer.clear t.recv_buf;
  data

let recv_length t = Buffer.length t.recv_buf

let enter_time_wait t =
  t.state <- Time_wait;
  let generation = t.rto_generation + 1 in
  t.rto_generation <- generation;
  Engine.schedule_after t.engine (Time.add t.rto t.rto) (fun () ->
      if t.rto_generation = generation then t.state <- Closed)

let max_cwnd = 4 lsl 20

(* Process an acceptable ACK: advance snd_una, prune the retransmit queue,
   grow the congestion window (RFC 5681 slow start / congestion
   avoidance), and run fast retransmit on the third duplicate ACK. *)
let process_ack t (f : Frame.t) =
  if Seqnum.gt f.Frame.ack t.snd_una && Seqnum.le f.Frame.ack t.snd_nxt
  then begin
    t.snd_una <- f.Frame.ack;
    t.retransmit_count <- 0;
    t.rto_backoff <- 0;
    t.dup_acks <- 0;
    t.cwnd <-
      min max_cwnd
        (if t.cwnd < t.ssthresh then t.cwnd + t.mss (* slow start *)
         else t.cwnd + max 1 (t.mss * t.mss / t.cwnd));
    let fin_was_outstanding = t.fin_sent in
    t.inflight <-
      List.filter
        (fun (p : pending) ->
          let seg_end =
            Seqnum.add p.seq
              (p.plen + (if p.syn then 1 else 0) + if p.fin then 1 else 0)
          in
          Seqnum.gt seg_end t.snd_una)
        t.inflight;
    if t.inflight = [] then t.rto_generation <- t.rto_generation + 1
    else arm_rto t;
    (* Did this ACK cover our FIN? *)
    let fin_acked =
      fin_was_outstanding
      && not (List.exists (fun (p : pending) -> p.fin) t.inflight)
      && Seqnum.ge t.snd_una t.snd_nxt
    in
    if fin_acked then begin
      match t.state with
      | Fin_wait_1 -> t.state <- Fin_wait_2
      | Closing -> enter_time_wait t
      | Last_ack -> t.state <- Closed
      | _ -> ()
    end
  end
  else if
    f.Frame.ack = t.snd_una && t.inflight <> []
    && f.Frame.payload_len = 0
    && (not f.Frame.flags.Segment.syn)
    && not f.Frame.flags.Segment.fin
  then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 then begin
      (* fast retransmit: resend the presumed-lost head of the queue
         without waiting for the RTO *)
      t.ssthresh <- max (2 * t.mss) (unacked t / 2);
      t.cwnd <- t.ssthresh + (3 * t.mss);
      (match t.inflight with
      | p :: _ ->
          t.fast_retransmits <- t.fast_retransmits + 1;
          t.retransmissions <- t.retransmissions + 1;
          Obs.Recorder.incr t.obs "tcp.fast_retransmit";
          Obs.Recorder.incr t.obs "tcp.retransmit";
          transmit_pending t p;
          arm_rto t
      | [] -> ())
    end
  end;
  t.snd_wnd <- f.Frame.window

let max_ooo_segments = 256

let append_payload t iov =
  Xdr.Iovec.iter
    (fun s ->
      Buffer.add_substring t.recv_buf s.Xdr.Iovec.base s.Xdr.Iovec.off
        s.Xdr.Iovec.len)
    iov

(* Splice any buffered out-of-order segments that are now in order. *)
let rec drain_ooo t =
  match t.ooo with
  | (seq, payload, plen) :: rest when seq = t.rcv_nxt ->
      append_payload t payload;
      t.rcv_nxt <- Seqnum.add t.rcv_nxt plen;
      t.bytes_received <- t.bytes_received + plen;
      t.ooo <- rest;
      t.ooo_count <- t.ooo_count - 1;
      drain_ooo t
  | (seq, _, _) :: rest when Seqnum.lt seq t.rcv_nxt ->
      (* stale duplicate overtaken by retransmission *)
      t.ooo <- rest;
      t.ooo_count <- t.ooo_count - 1;
      drain_ooo t
  | _ -> ()

(* Insert into the sorted reassembly list in one pass: walk to the
   insertion point, drop the newcomer if a buffered segment already covers
   its range (exact duplicates included), and drop buffered segments the
   newcomer covers. The seed re-sorted the whole list and ran a separate
   duplicate scan on every insert. *)
let buffer_ooo t seq payload plen =
  if t.ooo_count < max_ooo_segments then begin
    let nend = Seqnum.add seq plen in
    (* buffered segments wholly inside the newcomer become redundant *)
    let rec drop_within l =
      match l with
      | (s, _, sl) :: rest
        when Seqnum.le seq s && Seqnum.le (Seqnum.add s sl) nend ->
          t.ooo_count <- t.ooo_count - 1;
          drop_within rest
      | _ -> l
    in
    let rec ins l =
      match l with
      | (s, _, sl) :: _
        when Seqnum.le s seq && Seqnum.le nend (Seqnum.add s sl) ->
          l (* covered by a buffered segment: drop the newcomer *)
      | ((s, _, _) as hd) :: rest when Seqnum.lt s seq -> hd :: ins rest
      | _ ->
          t.ooo_count <- t.ooo_count + 1;
          (seq, payload, plen) :: drop_within l
    in
    t.ooo <- ins t.ooo
  end

let deliver_payload t (f : Frame.t) =
  let len = f.Frame.payload_len in
  if len = 0 then true
  else if f.Frame.seq = t.rcv_nxt then begin
    append_payload t f.Frame.payload;
    t.rcv_nxt <- Seqnum.add t.rcv_nxt len;
    t.bytes_received <- t.bytes_received + len;
    drain_ooo t;
    true
  end
  else if Seqnum.gt f.Frame.seq t.rcv_nxt then begin
    (* a hole: buffer for reassembly, emit a duplicate ACK so the sender's
       fast-retransmit logic learns about the loss *)
    buffer_ooo t f.Frame.seq f.Frame.payload len;
    send_ack t;
    false
  end
  else begin
    (* seq < rcv_nxt: trim the already-received head (RFC 793 §3.9). A
       retransmitted super-segment after a partial ACK starts below
       rcv_nxt but can still carry new bytes past it. *)
    let old = Seqnum.diff t.rcv_nxt f.Frame.seq in
    if old < len then begin
      append_payload t (snd (Xdr.Iovec.split f.Frame.payload old));
      t.rcv_nxt <- Seqnum.add t.rcv_nxt (len - old);
      t.bytes_received <- t.bytes_received + (len - old);
      drain_ooo t;
      true
    end
    else begin
      (* wholly old duplicate: re-ACK what we have *)
      send_ack t;
      false
    end
  end

let handle_fin t (f : Frame.t) in_order =
  if f.Frame.flags.Segment.fin && in_order then begin
    (* FIN occupies one sequence number after the payload *)
    if Seqnum.add f.Frame.seq f.Frame.payload_len = t.rcv_nxt then begin
      t.rcv_nxt <- Seqnum.add t.rcv_nxt 1;
      (match t.state with
      | Established -> t.state <- Close_wait
      | Fin_wait_1 ->
          (* our FIN not yet acked: simultaneous close *)
          t.state <- Closing
      | Fin_wait_2 -> enter_time_wait t
      | s -> ignore s);
      send_ack t
    end
  end

let on_frame t (f : Frame.t) =
  t.segments_received <- t.segments_received + 1;
  if f.Frame.flags.Segment.rst then t.state <- Closed
  else
    match t.state with
    | Closed -> ()
    | Listen ->
        if f.Frame.flags.Segment.syn then begin
          t.rcv_nxt <- Seqnum.add f.Frame.seq 1;
          t.snd_wnd <- f.Frame.window;
          t.state <- Syn_received;
          (* SYN+ACK consumes a sequence number; tracked for retransmit *)
          send_pending t
            { seq = t.snd_nxt; payload = []; plen = 0; syn = true;
              fin = false }
        end
    | Syn_sent ->
        if f.Frame.flags.Segment.syn && f.Frame.flags.Segment.ack
           && f.Frame.ack = t.snd_nxt
        then begin
          t.rcv_nxt <- Seqnum.add f.Frame.seq 1;
          process_ack t f;
          t.state <- Established;
          send_ack t;
          pump t
        end
    | Syn_received ->
        if f.Frame.flags.Segment.ack && f.Frame.ack = t.snd_nxt then begin
          process_ack t f;
          t.state <- Established;
          let in_order = deliver_payload t f in
          if f.Frame.payload_len > 0 && in_order then send_ack t;
          handle_fin t f in_order;
          pump t
        end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
      ->
        if f.Frame.flags.Segment.ack then process_ack t f;
        let in_order = deliver_payload t f in
        if f.Frame.payload_len > 0 && in_order then send_ack t;
        handle_fin t f in_order;
        pump t
    | Time_wait ->
        (* retransmitted FIN: re-ACK *)
        if f.Frame.flags.Segment.fin then send_ack t

let on_segment t seg = on_frame t (Frame.of_segment seg)
