(** Virtio-net-style device model between two endpoints.

    Where {!Medium} models a raw byte wire, [Netdev] models the NIC
    boundary §4.2 of the paper is about: per-guest feature negotiation
    (device ∩ driver, virtio 1.1 §2.2) decides which side of the
    guest/device line performs segmentation (TSO), checksum
    stamping/validation, receive coalescing (GRO), and staging copies
    (scatter-gather), and the corresponding {!Simnet.Hostprofile.t} costs
    are charged on three per-direction pipeline cursors (guest tx CPU,
    wire serialization, receiver CPU). Frames move as scatter-gather
    {!Frame.t} values end to end — TSO segmentation and GRO re-coalescing
    alias payload slices; the only physical copy is the staging flatten
    charged when scatter-gather is off.

    Faults apply per wire segment: [Drop] flushes the current GRO run,
    [Corrupt] is an FCS drop at the device when rx checksum is offloaded
    and a software-verify rejection (on an actually bit-flipped copy)
    otherwise, [Delay] stalls the wire cursor, [Duplicate] delivers a
    single-segment unit twice. *)

type stats = {
  guest_tx_frames : int;  (** frames handed over by the endpoints *)
  wire_segments : int;  (** after TSO segmentation *)
  tso_frames : int;  (** guest frames the device had to segment *)
  rx_units : int;  (** deliveries into receiver stacks (post-GRO) *)
  gro_merged : int;  (** wire segments absorbed into a preceding unit *)
  sw_checksum_bytes : int;  (** bytes checksummed by guest CPUs *)
  staging_copies : int;  (** flattens forced by missing scatter-gather *)
  csum_drops : int;  (** software checksum verification rejections *)
  fcs_drops : int;  (** corrupt segments caught by the device *)
  payload_bytes : int;  (** payload handed over by the endpoints *)
}

type t

val gro_limit : int
(** Wire segments coalesced into one rx unit, at most (8, as in
    {!Simnet.Netcost}'s GRO term). *)

val tso_burst_bytes : int
(** Super-segment ceiling under TSO (64 KiB, rounded down to a whole
    number of wire MSS when applied). *)

val effective : Simnet.Offload.t -> Simnet.Offload.t
(** Dependency clamps: TSO requires tx checksum offload, GRO requires rx
    checksum offload. *)

val connect :
  engine:Simnet.Engine.t ->
  link:Simnet.Link.t ->
  ?fault:Simnet.Fault.t ->
  ?device:Simnet.Offload.t ->
  a:Endpoint.t * Simnet.Hostprofile.t ->
  b:Endpoint.t * Simnet.Hostprofile.t ->
  unit ->
  t
(** Wire both endpoints through the device ([device] defaults to
    {!Simnet.Offload.all}). Installs frame transmitters on both endpoints
    and raises their tx burst when TSO is negotiated. Each guest
    negotiates independently from its profile's [offloads]. *)

val negotiated_a : t -> Simnet.Offload.t
val negotiated_b : t -> Simnet.Offload.t
(** Effective (negotiated and clamped) feature set per guest. *)

val set_obs : t -> Obs.Recorder.t -> unit
(** Attach an observability recorder: staging flattens bump
    ["net.staging_copy"] and GRO coalesces bump ["net.gro_merged"] (by the
    number of merges). One branch per event while the recorder is
    disabled. *)

val stats : t -> stats
val fault_stats : t -> Simnet.Fault.stats option
val pp_stats : Format.formatter -> stats -> unit
