(* RFC 1071 internet checksum.

   [sum] accumulates the data as big-endian 16-bit words into an unfolded
   accumulator; [finish] folds the carries and complements. The raw
   accumulator value is *not* canonical — two accumulation strategies may
   return different integers for the same data — but both fold to the same
   16-bit checksum, which is the only observable ([finish] is the sole
   consumer, possibly through further ~initial chaining). This is what
   lets [sum] process 8 bytes per iteration: an int64 word is added as two
   32-bit halves (each half is itself the sum of two 16-bit words shifted
   into place, and ones-complement addition is associative under
   end-around carry). OCaml's 63-bit native ints absorb ~2^29 such adds
   before [finish]'s fold loop would have to run more than a few times,
   far beyond any frame this stack sums. *)

let sum_bytewise ?(initial = 0) b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.sum";
  let acc = ref initial in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + (Char.code (Bytes.get b !i) lsl 8)
           + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  !acc

let sum ?(initial = 0) b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.sum";
  let acc = ref initial in
  let i = ref off in
  let stop = off + len in
  (* 8 bytes per iteration: four big-endian 16-bit words at a time. The
     int64 is split into 32-bit halves so each addend fits a native int
     with room for carries; parity is preserved because we always start at
     [off] and consume full words. *)
  while !i + 8 <= stop do
    let w = Bytes.get_int64_be b !i in
    acc :=
      !acc
      + Int64.to_int (Int64.shift_right_logical w 32)
      + (Int64.to_int w land 0xffffffff);
    i := !i + 8
  done;
  (* scalar tail: 0-7 remaining bytes, same pairing as the word loop *)
  while !i + 1 < stop do
    acc := !acc + (Char.code (Bytes.get b !i) lsl 8)
           + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  !acc

let sum_string ?(initial = 0) s off len =
  sum ~initial (Bytes.unsafe_of_string s) off len

(* One's-complement sum of a scattered payload without flattening it:
   16-bit word pairing crosses slice boundaries, so a trailing odd byte of
   one slice pairs with the first byte of the next. *)
let sum_iovec ?(initial = 0) iov =
  let acc = ref initial in
  let pending = ref (-1) in
  Xdr.Iovec.iter
    (fun s ->
      let base = s.Xdr.Iovec.base in
      let off = ref s.Xdr.Iovec.off in
      let len = ref s.Xdr.Iovec.len in
      if !pending >= 0 && !len > 0 then begin
        acc := !acc + (!pending lsl 8) + Char.code base.[!off];
        pending := -1;
        incr off;
        decr len
      end;
      if !len land 1 = 1 then begin
        pending := Char.code base.[!off + !len - 1];
        decr len
      end;
      acc := sum_string ~initial:!acc base !off !len)
    iov;
  if !pending >= 0 then acc := !acc + (!pending lsl 8);
  !acc

let finish acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  lnot !acc land 0xffff

let checksum b off len = finish (sum b off len)
let verify b off len = checksum b off len = 0
