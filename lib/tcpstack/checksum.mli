(** RFC 1071 Internet checksum.

    The 16-bit one's-complement sum used by IP, TCP and UDP. This is the
    computation a guest must perform in software when the NIC/virtio
    checksum offloads (VIRTIO_NET_F_CSUM / GUEST_CSUM) are missing — one of
    the unikernel bandwidth penalties §4.2 quantifies. *)

val sum : ?initial:int -> bytes -> int -> int -> int
(** [sum ~initial b off len] is the running one's-complement sum (not yet
    folded/complemented) over [len] bytes of [b]. Odd lengths are padded
    with a zero byte, per the RFC. Processes 8 bytes per iteration via
    [Bytes.get_int64_be] with a scalar tail; the unfolded accumulator may
    differ from {!sum_bytewise}'s but {!finish} yields identical
    checksums (including when chained through [~initial]). *)

val sum_bytewise : ?initial:int -> bytes -> int -> int -> int
(** The reference two-bytes-per-iteration accumulation. Kept for the
    checksum microbenchmark and for property-testing fold-equivalence
    against {!sum}. *)

val sum_string : ?initial:int -> string -> int -> int -> int
(** {!sum} over a string (no copy). *)

val sum_iovec : ?initial:int -> Xdr.Iovec.t -> int
(** {!sum} over a scattered payload, with 16-bit word pairing carried
    across slice boundaries — equivalent to summing the flattened bytes,
    without flattening them. *)

val finish : int -> int
(** Fold carries and take the one's complement; result in [0, 0xffff]. *)

val checksum : bytes -> int -> int -> int
(** [finish (sum b off len)]. *)

val verify : bytes -> int -> int -> bool
(** A block that embeds its own checksum sums to [0] (i.e. [finish] over it
    yields 0). *)
