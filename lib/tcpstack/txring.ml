(* Offset-tracked send ring: a deque of immutable payload slices plus a
   consumed-bytes offset into the head slice. Queueing data and carving
   MSS/TSO-burst segments off the front are both O(slices touched) — the
   seed implementation rebuilt the whole remaining buffer once per
   segment, which made a bulk send quadratic in the transfer size. *)

type t = {
  q : Xdr.Iovec.slice Queue.t;
  mutable head_off : int;  (* bytes of the head slice already consumed *)
  mutable length : int;  (* unconsumed bytes across the whole ring *)
}

let create () = { q = Queue.create (); head_off = 0; length = 0 }

let length t = t.length

let push_slice t (s : Xdr.Iovec.slice) =
  if s.Xdr.Iovec.len > 0 then begin
    Queue.add s t.q;
    t.length <- t.length + s.Xdr.Iovec.len
  end

let push_iovec t iov = List.iter (push_slice t) iov

(* Copying enqueue for callers that may reuse [b] after the call (the
   plain [Endpoint.send] contract). The copy is O(len) once — the slices
   carved off it later are views. *)
let push_bytes t b =
  if Bytes.length b > 0 then
    push_slice t (Xdr.Iovec.slice (Bytes.to_string b))

let take t n =
  if n < 0 || n > t.length then invalid_arg "Txring.take";
  let rec loop acc n =
    if n = 0 then List.rev acc
    else begin
      let s = Queue.peek t.q in
      let avail = s.Xdr.Iovec.len - t.head_off in
      if avail <= n then begin
        ignore (Queue.pop t.q);
        let piece = Xdr.Iovec.sub_slice s t.head_off avail in
        t.head_off <- 0;
        loop (piece :: acc) (n - avail)
      end
      else begin
        let piece = Xdr.Iovec.sub_slice s t.head_off n in
        t.head_off <- t.head_off + n;
        loop (piece :: acc) 0
      end
    end
  in
  let iov = loop [] n in
  t.length <- t.length - n;
  iov

let clear t =
  Queue.clear t.q;
  t.head_off <- 0;
  t.length <- 0
