(** Wire between two {!Endpoint}s, driven by the simulation engine.

    Each transmitted segment is encoded to bytes (with a real checksum),
    run through the optional {!Simnet.Fault} plan, and scheduled for
    delivery after the link's serialization + propagation delay. The
    receiver decodes and checksum-verifies before the segment reaches the
    state machine — a corrupted segment is silently discarded, exactly like
    a NIC without validated checksum would discard it, and recovery happens
    via the sender's retransmission timer. *)

type t

val connect :
  engine:Simnet.Engine.t ->
  link:Simnet.Link.t ->
  ?fault:Simnet.Fault.t ->
  Endpoint.t ->
  Endpoint.t ->
  t
(** Wire two endpoints together. The fault plan is consulted once per
    transmitted segment (0-based, counting both directions in transmission
    order): [Drop] vanishes in flight, [Corrupt] flips a bit so the
    receiver's checksum rejects it, [Duplicate] schedules two deliveries,
    and [Delay] adds extra latency. The wire stays FIFO per direction, so
    a delayed segment also delays everything sent behind it, like a
    stalled queue — reordering is not modelled. Partition windows apply at
    the segment's transmission instant. *)

val transmitted : t -> int
(** Total segments handed to the wire (including dropped/corrupted). *)

val delivered : t -> int

val fault_stats : t -> Simnet.Fault.stats option
(** Live fault counters, when a plan is installed. *)
