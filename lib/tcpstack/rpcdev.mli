(** RPC-aware offload engine (the RPCAcc direction).

    A device block behind the netdev receive path that understands ONC RPC
    record marking. Per the negotiated {!Simnet.Offload.t} rpc feature
    bits it performs record-mark framing/reassembly ([rpc_framing]), the
    call-header parse ([rpc_parse]) and per-(proc, tenant) dispatch-queue
    steering ([rpc_steer]) in "hardware"; whatever is not negotiated is
    charged as host software work against the engine clock. The module has
    no dependency on [Oncrpc]: its parser is an independent implementation
    of RFC 5531 §8, checked against the software decoder by the test
    suite. *)

type parsed = {
  xid : int32;
  prog : int;
  vers : int;
  proc : int;
  body_off : int;  (** byte offset of the procedure arguments *)
}

type reject =
  | Truncated of int  (** record length at the point the header ran out *)
  | Not_a_call of int32  (** msg_type field was not CALL(0) *)
  | Bad_rpc_version of int  (** rpcvers field was not 2 *)
  | Bad_auth of string  (** credential/verifier violates RFC 5531 §8.2 *)

val reject_to_string : reject -> string

val parse_call_header : string -> (parsed, reject) result
(** The "hardware" header parse: total function, never raises. [Ok p]
    exactly when the software [Oncrpc.Message] decoder accepts the call
    header, with [p.body_off] the decoder position after the verifier. *)

type costs = {
  sw_frame_ns : int;  (** host software per-record framing/reassembly *)
  sw_parse_ns : int;  (** host software header decode per call *)
  sw_route_ns : int;  (** host software dispatch-table routing per call *)
  hw_frame_ns : int;  (** device record completion *)
  hw_parse_ns : int;  (** device header parse *)
  hw_steer_ns : int;  (** device queue steering *)
}

val default_costs : costs

type entry = {
  record : string;
  ident : string;  (** tenant identity the call was steered under *)
  parse : (parsed, reject) result option;
      (** [None] when [rpc_parse] was not negotiated (the host parses);
          [Some (Error _)] when the device punted a malformed header. *)
}

type stats = {
  records : int;
  hw_records : int;
  sw_records : int;
  parse_hits : int;
  parse_rejects : int;
  steered : int;
  queues : int;
  max_queue_depth : int;
  pool_acquires : int;
}

type t

val effective : Simnet.Offload.t -> Simnet.Offload.t
(** Dependency clamps: [rpc_parse] requires [rpc_framing]; [rpc_steer]
    requires [rpc_parse]. *)

val create :
  engine:Simnet.Engine.t ->
  profile:Simnet.Hostprofile.t ->
  features:Simnet.Offload.t ->
  ?costs:costs ->
  ?alloc:(int -> bytes) ->
  ?free:(bytes -> unit) ->
  ?ident:string ->
  unit ->
  t
(** [features] is the negotiated set (clamped via {!effective}).
    [alloc]/[free] supply fragment staging buffers — wire them to an
    [Oncrpc.Pool] so reassembly recycles instead of allocating; [ident]
    is the tenant identity stamped on steered entries
    (see {!set_ident}). *)

val feed : t -> bytes -> unit
(** Push freshly delivered rx bytes through framing; completed records are
    parsed/steered per the negotiated features and queued. Charges device
    or host-software costs on the engine as a side effect. *)

val drain : t -> entry list
(** Dequeue all pending entries, round-robin across steering queues in
    creation order (deterministic). *)

val pending : t -> int
val set_ident : t -> string -> unit
val set_obs : t -> Obs.Recorder.t -> unit
val negotiated : t -> Simnet.Offload.t
val stats : t -> stats
