module Time = Simnet.Time
module Engine = Simnet.Engine
module Offload = Simnet.Offload

(* The RPC-aware offload engine (RPCAcc direction): a device block that
   sits behind the netdev's receive path and understands ONC RPC record
   marking. Depending on the negotiated feature bits it performs, in
   "hardware":

   - [rpc_framing]: record-mark framing and reassembly — the host receives
     whole RPC records instead of a TCP byte stream;
   - [rpc_parse]: the ONC RPC call-header parse (xid, prog/vers/proc plus
     the credential/verifier skip) producing a descriptor with the body
     offset;
   - [rpc_steer]: steering of parsed calls into per-(proc, tenant)
     dispatch queues, so host software never routes a call.

   This module deliberately does NOT depend on [Oncrpc]: the parser is an
   independent reimplementation of the wire layout (RFC 5531 §8–§11), which
   is exactly what lets the test suite check it against the software
   [Oncrpc.Message] decoder as two implementations of one spec.

   Every feature that is *not* negotiated is charged as host software work
   against the engine clock (framing copy, header parse, dispatch-table
   routing), using the host profile's per-byte copy cost plus fixed
   per-record costs — the per-call CPU overhead the small-call benchmark
   measures. Negotiated features charge the much smaller device-side
   costs. All charges advance the shared virtual clock, so the benefit
   shows up in virtual-time throughput, deterministically. *)

type parsed = {
  xid : int32;
  prog : int;
  vers : int;
  proc : int;
  body_off : int;  (** byte offset of the procedure arguments *)
}

type reject =
  | Truncated of int  (** record length at the point the header ran out *)
  | Not_a_call of int32  (** msg_type field was not CALL(0) *)
  | Bad_rpc_version of int  (** rpcvers field was not 2 *)
  | Bad_auth of string  (** credential/verifier violates RFC 5531 §8.2 *)

let reject_to_string = function
  | Truncated n -> Printf.sprintf "truncated header (%d bytes)" n
  | Not_a_call m -> Printf.sprintf "msg_type %ld is not CALL" m
  | Bad_rpc_version v -> Printf.sprintf "rpc version %d is not 2" v
  | Bad_auth detail -> "bad auth: " ^ detail

(* --- the "hardware" call-header parser --- *)

let max_auth_body = 400 (* RFC 5531 §8.2: opaque_auth body bound *)

let parse_call_header s =
  let len = String.length s in
  let u32 off = Int32.to_int (String.get_int32_be s off) land 0xFFFFFFFF in
  let need n = if len < n then Error (Truncated len) else Ok () in
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* () = need 8 in
  let xid = String.get_int32_be s 0 in
  let mtype = String.get_int32_be s 4 in
  if mtype <> 0l then Error (Not_a_call mtype)
  else
    let* () = need 12 in
    let rpcvers = u32 8 in
    if rpcvers <> 2 then Error (Bad_rpc_version rpcvers)
    else
      let* () = need 24 in
      let prog = u32 12 and vers = u32 16 and proc = u32 20 in
      (* opaque_auth: flavor + variable opaque, body <= 400 bytes, padded
         to the 4-byte XDR boundary *)
      let auth which off =
        let* () = need (off + 8) in
        let blen = u32 (off + 4) in
        if blen > max_auth_body then
          Error
            (Bad_auth (Printf.sprintf "%s body %d > %d" which blen
                         max_auth_body))
        else
          let padded = (blen + 3) land lnot 3 in
          let* () = need (off + 8 + padded) in
          (* XDR pad bytes must be zero (RFC 4506 §3) — the software
             decoder enforces this, so the device does too *)
          let rec pad_ok i =
            i >= padded || (s.[off + 8 + i] = '\000' && pad_ok (i + 1))
          in
          if not (pad_ok blen) then
            Error (Bad_auth (which ^ " has nonzero pad bytes"))
          else Ok (off + 8 + padded)
      in
      let* off = auth "cred" 24 in
      let* body_off = auth "verf" off in
      Ok { xid; prog; vers; proc; body_off }

(* --- cost model --- *)

type costs = {
  sw_frame_ns : int;  (** host software per-record framing/reassembly *)
  sw_parse_ns : int;  (** host software header decode per call *)
  sw_route_ns : int;  (** host software dispatch-table routing per call *)
  hw_frame_ns : int;  (** device record completion *)
  hw_parse_ns : int;  (** device header parse *)
  hw_steer_ns : int;  (** device queue steering *)
}

(* Software costs are per-call CPU work on the host (RPCAcc's Figure 4
   breakdown: framing + protocol parse + dispatch dominate small calls);
   device costs are descriptor-writes on a PCIe block. The software
   framing path additionally pays the profile's per-byte reassembly
   copy. *)
let default_costs =
  {
    sw_frame_ns = 450;
    sw_parse_ns = 1_400;
    sw_route_ns = 500;
    hw_frame_ns = 40;
    hw_parse_ns = 60;
    hw_steer_ns = 45;
  }

type entry = {
  record : string;
  ident : string;
  parse : (parsed, reject) result option;
      (** [None] when [rpc_parse] was not negotiated (host parses). *)
}

type stats = {
  records : int;
  hw_records : int;  (** records completed by device framing *)
  sw_records : int;  (** records reassembled by host software *)
  parse_hits : int;
  parse_rejects : int;  (** device punted a malformed header to the host *)
  steered : int;
  queues : int;  (** distinct (proc, ident) steering queues created *)
  max_queue_depth : int;
  pool_acquires : int;  (** staging buffers drawn from the allocator *)
}

type key = int * string (* proc, ident; (-1, ident) = unsteered FIFO *)

type t = {
  engine : Engine.t;
  profile : Simnet.Hostprofile.t;
  features : Offload.t;  (** post-clamp negotiated feature set *)
  costs : costs;
  alloc : int -> bytes;
  free : bytes -> unit;
  mutable ident : string;
  (* incremental record-marking parser state *)
  hdr : Bytes.t;
  mutable hdr_pos : int;
  mutable frag_need : int;
  mutable frag_last : bool;
  mutable in_frag : bool;
  (* staging buffer for the fragment being reassembled *)
  mutable staging : bytes;
  mutable staging_len : int;
  record : Buffer.t;  (* completed fragments of a multi-fragment record *)
  (* steering queues, drained round-robin in creation order *)
  queues : (key, entry Queue.t) Hashtbl.t;
  mutable queue_order : key list;  (* reversed creation order *)
  mutable stats : stats;
  mutable obs : Obs.Recorder.t;
}

(* dependency clamps, same shape as Netdev.effective: header parse needs
   the device to own record boundaries; steering needs the parse result *)
let effective (f : Offload.t) =
  let f = { f with Offload.rpc_parse = f.Offload.rpc_parse && f.Offload.rpc_framing } in
  { f with Offload.rpc_steer = f.Offload.rpc_steer && f.Offload.rpc_parse }

let zero_stats =
  {
    records = 0; hw_records = 0; sw_records = 0; parse_hits = 0;
    parse_rejects = 0; steered = 0; queues = 0; max_queue_depth = 0;
    pool_acquires = 0;
  }

let create ~engine ~profile ~features ?(costs = default_costs)
    ?(alloc = Bytes.create) ?(free = fun (_ : bytes) -> ()) ?(ident = "") () =
  {
    engine; profile; features = effective features; costs; alloc; free; ident;
    hdr = Bytes.create 4; hdr_pos = 0; frag_need = 0; frag_last = false;
    in_frag = false; staging = Bytes.empty; staging_len = 0;
    record = Buffer.create 256; queues = Hashtbl.create 8; queue_order = [];
    stats = zero_stats; obs = Obs.Recorder.null;
  }

let set_obs t obs = t.obs <- obs
let set_ident t ident = t.ident <- ident
let negotiated t = t.features
let stats t = t.stats

let charge t ns name =
  if ns > 0 then begin
    let t0 = Engine.now t.engine in
    Engine.advance t.engine (Time.ns ns);
    if Obs.Recorder.enabled t.obs then
      (* root-level span: device/host-shim work that the channel's
         dispatched-time carve-out already subtracts from net.wait *)
      Obs.Recorder.span_event t.obs ~layer:"rpcdev" ~name ~start_ns:t0
        ~stop_ns:(Engine.now t.engine)
  end

let enqueue t key entry =
  let q =
    match Hashtbl.find_opt t.queues key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.queues key q;
        t.queue_order <- key :: t.queue_order;
        t.stats <- { t.stats with queues = t.stats.queues + 1 };
        q
  in
  Queue.push entry q;
  let d = Queue.length q in
  if d > t.stats.max_queue_depth then
    t.stats <- { t.stats with max_queue_depth = d }

(* A record left the framing stage: charge the parse/steer (or their
   software equivalents) and queue it for the host. *)
let complete_record t record =
  let f = t.features in
  t.stats <- { t.stats with records = t.stats.records + 1 };
  if f.Offload.rpc_framing then begin
    t.stats <- { t.stats with hw_records = t.stats.hw_records + 1 };
    Obs.Recorder.incr t.obs "rpcdev.hw_record";
    charge t t.costs.hw_frame_ns "rpcdev.frame"
  end
  else begin
    t.stats <- { t.stats with sw_records = t.stats.sw_records + 1 };
    Obs.Recorder.incr t.obs "rpcdev.sw_record";
    let copy_ns =
      int_of_float
        (float_of_int (String.length record)
        *. t.profile.Simnet.Hostprofile.copy_ns_per_byte)
    in
    charge t (t.costs.sw_frame_ns + copy_ns) "rpcdev.sw_frame"
  end;
  let parse =
    if f.Offload.rpc_parse then begin
      let r = parse_call_header record in
      charge t t.costs.hw_parse_ns "rpcdev.parse";
      (match r with
      | Ok _ ->
          t.stats <- { t.stats with parse_hits = t.stats.parse_hits + 1 };
          Obs.Recorder.incr t.obs "rpcdev.parse_hit"
      | Error _ ->
          (* malformed header: the device punts the raw record to the host,
             which re-parses in software to produce the protocol error *)
          t.stats <- { t.stats with parse_rejects = t.stats.parse_rejects + 1 };
          Obs.Recorder.incr t.obs "rpcdev.parse_punt";
          charge t t.costs.sw_parse_ns "rpcdev.sw_parse");
      Some r
    end
    else begin
      charge t t.costs.sw_parse_ns "rpcdev.sw_parse";
      None
    end
  in
  let key =
    match parse with
    | Some (Ok p) when f.Offload.rpc_steer ->
        t.stats <- { t.stats with steered = t.stats.steered + 1 };
        Obs.Recorder.incr t.obs "rpcdev.steered";
        charge t t.costs.hw_steer_ns "rpcdev.steer";
        (p.proc, t.ident)
    | _ ->
        (* host routes the call itself through the dispatch tables *)
        charge t t.costs.sw_route_ns "rpcdev.sw_route";
        (-1, t.ident)
  in
  enqueue t key { record; ident = t.ident; parse }

(* Incremental record-marking reassembly (RFC 5531 §11): O(1) state per
   byte. Fragment payloads stage through the pool allocator — these are
   the device-steered buffers whose pow2-bin recycling the pool must get
   right. *)
let feed t chunk =
  let len = Bytes.length chunk in
  let pos = ref 0 in
  while !pos < len do
    if not t.in_frag then begin
      let take = min (4 - t.hdr_pos) (len - !pos) in
      Bytes.blit chunk !pos t.hdr t.hdr_pos take;
      t.hdr_pos <- t.hdr_pos + take;
      pos := !pos + take;
      if t.hdr_pos = 4 then begin
        let w = Bytes.get_int32_be t.hdr 0 in
        let last = Int32.logand w 0x80000000l <> 0l in
        let n = Int32.to_int (Int32.logand w 0x7fffffffl) in
        t.hdr_pos <- 0;
        t.in_frag <- true;
        t.frag_need <- n;
        t.frag_last <- last;
        if n > 0 then begin
          t.staging <- t.alloc n;
          t.staging_len <- 0;
          t.stats <-
            { t.stats with pool_acquires = t.stats.pool_acquires + 1 }
        end
      end
    end;
    if t.in_frag then begin
      let take = min t.frag_need (len - !pos) in
      if take > 0 then begin
        Bytes.blit chunk !pos t.staging t.staging_len take;
        t.staging_len <- t.staging_len + take;
        t.frag_need <- t.frag_need - take;
        pos := !pos + take
      end;
      if t.frag_need = 0 then begin
        t.in_frag <- false;
        if t.staging_len > 0 then begin
          Buffer.add_subbytes t.record t.staging 0 t.staging_len;
          t.free t.staging;
          t.staging <- Bytes.empty;
          t.staging_len <- 0
        end;
        if t.frag_last then begin
          let record = Buffer.contents t.record in
          Buffer.clear t.record;
          complete_record t record
        end
      end
    end
  done

(* Drain the steering queues round-robin in creation order — one entry per
   queue per round — until empty. Creation order is itself deterministic
   (derived from arrival order), so the drain order is too. *)
let drain t =
  let order = List.rev t.queue_order in
  let out = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.queues key with
        | None -> ()
        | Some q ->
            if not (Queue.is_empty q) then begin
              out := Queue.pop q :: !out;
              progress := true
            end)
      order
  done;
  List.rev !out

let pending t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0
