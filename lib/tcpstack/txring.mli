(** Offset-tracked send buffer for {!Endpoint}.

    Holds application data awaiting segmentation as a FIFO of immutable
    {!Xdr.Iovec.slice} views plus an offset into the head slice.
    {!take} carves the next [n] bytes off the front as an iovec {e
    aliasing} the queued storage — no payload byte is copied when a
    segment is cut, and consuming the front is O(slices touched) instead
    of the seed's O(remaining bytes) buffer rebuild per segment. *)

type t

val create : unit -> t

val length : t -> int
(** Unconsumed bytes queued. *)

val push_bytes : t -> bytes -> unit
(** Enqueue a copy of [b] (the caller may reuse [b] afterwards). *)

val push_slice : t -> Xdr.Iovec.slice -> unit
(** Enqueue a view; the caller must not mutate the underlying storage
    while it is queued or in flight (the {!Xdr.Iovec} contract). *)

val push_iovec : t -> Xdr.Iovec.t -> unit

val take : t -> int -> Xdr.Iovec.t
(** [take t n] removes and returns the front [n] bytes as slices sharing
    the queued storage. Raises [Invalid_argument] if fewer than [n] bytes
    are queued. *)

val clear : t -> unit
