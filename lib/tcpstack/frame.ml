(* A TCP segment whose payload is a scatter-gather view instead of a flat
   byte buffer. This is the representation the endpoint works with
   internally and hands to a {!Netdev}: payload slices alias the sender's
   queued data (or, on receive, the decoded wire bytes), so the guest side
   of the virtio path never copies payload per segment. {!to_segment}
   materializes the flat form for the byte-encoding {!Medium} path.

   Unlike {!Segment.t}'s wire form, [window] is not clamped to 16 bits:
   frames model a stack with window scaling negotiated (as the paper's
   100 GbE testbed stacks do), which a bulk transfer needs to fill the
   link. The clamp still applies when a frame is encoded to wire bytes. *)

type t = {
  src_port : int;
  dst_port : int;
  seq : Seqnum.t;
  ack : Seqnum.t;
  flags : Segment.flags;
  window : int;
  payload : Xdr.Iovec.t;
  payload_len : int;
}

let of_segment (s : Segment.t) =
  {
    src_port = s.Segment.src_port;
    dst_port = s.Segment.dst_port;
    seq = s.Segment.seq;
    ack = s.Segment.ack;
    flags = s.Segment.flags;
    window = s.Segment.window;
    payload =
      (if Bytes.length s.Segment.payload = 0 then []
       else [ Xdr.Iovec.of_bytes s.Segment.payload ]);
    payload_len = Bytes.length s.Segment.payload;
  }

let to_segment t =
  {
    Segment.src_port = t.src_port;
    dst_port = t.dst_port;
    seq = t.seq;
    ack = t.ack;
    flags = t.flags;
    window = t.window;
    payload = Bytes.unsafe_of_string (Xdr.Iovec.concat t.payload);
  }

let seq_length t =
  t.payload_len
  + (if t.flags.Segment.syn then 1 else 0)
  + if t.flags.Segment.fin then 1 else 0

(* [sub t pos len] is the data sub-range [pos, pos+len) of [t]'s payload
   as its own frame (sequence number advanced, payload aliased). SYN
   stays on the first byte of the sequence space, FIN on the last. *)
let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.payload_len then
    invalid_arg "Frame.sub";
  let before, _ = Xdr.Iovec.split t.payload (pos + len) in
  let _, payload = Xdr.Iovec.split before pos in
  let last = pos + len = t.payload_len in
  {
    t with
    seq = Seqnum.add t.seq (pos + if t.flags.Segment.syn && pos > 0 then 1 else 0);
    flags =
      {
        t.flags with
        Segment.syn = t.flags.Segment.syn && pos = 0;
        fin = t.flags.Segment.fin && last;
        psh = t.flags.Segment.psh && last;
      };
    payload;
    payload_len = len;
  }
