module Engine = Simnet.Engine
module Time = Simnet.Time
module Fault = Simnet.Fault
module Offload = Simnet.Offload
module Hostprofile = Simnet.Hostprofile
module Link = Simnet.Link

(* A virtio-net-style device between two endpoints. Where {!Medium} models
   a raw byte wire (encode, checksum, decode every segment), this models
   the NIC boundary the paper's §4.2 ablation is about: which side of the
   guest/device line does segmentation, checksumming, coalescing and
   copying — and at what cost.

   Feature bits are negotiated per guest (device ∩ driver, virtio 1.1
   §2.2) from the guest's {!Simnet.Hostprofile.t}:

   - [tso]: the endpoint's tx burst is raised to ~64 KiB; the device cuts
     super-frames into wire-MSS segments ({!Frame.sub} aliases, no copy).
   - [tx_checksum]/[rx_checksum]: with the offload the device stamps /
     validates for free; without it the guest pays
     [checksum_ns_per_byte] and the sum is actually computed/verified.
   - [gro]: the device re-coalesces up to {!gro_limit} in-order wire
     segments of one guest frame into a single rx unit.
   - [scatter_gather]: without it the device cannot follow the guest's
     slice list, so transmit pays an extra 0.5-copy staging pass (the
     payload is physically flattened).
   - [mrg_rxbuf]: interrupt batches are 4x larger.

   Costs mirror {!Simnet.Netcost}'s closed-form sender/receiver terms
   mechanistically: the same profile fields, charged per frame/segment/rx
   unit as they occur, rather than integrated over a transfer. Timing uses
   three per-direction cursors (guest tx CPU, wire, receiver CPU), each
   advancing [max(ready, cursor) + cost] — a pipeline whose steady-state
   throughput is set by the bottleneck stage, like Netcost's model.
   Syscall/wakeup costs are the socket layer's business, not the NIC's,
   and are charged by {!Unikernel.Tcpchannel}. *)

type stats = {
  guest_tx_frames : int;
  wire_segments : int;
  tso_frames : int;
  rx_units : int;
  gro_merged : int;
  sw_checksum_bytes : int;
  staging_copies : int;
  csum_drops : int;
  fcs_drops : int;
  payload_bytes : int;
}

let gro_limit = 8
let tso_burst_bytes = 65_536

(* virtio dependency clamps: segmentation offload requires the device to
   own transmit checksums, and receive coalescing requires validated
   receive checksums. *)
let effective (f : Offload.t) =
  { f with
    Offload.tso = f.Offload.tso && f.Offload.tx_checksum;
    gro = f.Offload.gro && f.Offload.rx_checksum }

(* One transmit direction: sender guest -> device -> wire -> receiver. *)
type dir = {
  peer : Endpoint.t;
  snd : Hostprofile.t;
  rcv : Hostprofile.t;
  feat_tx : Offload.t;  (* negotiated with the sending guest *)
  feat_rx : Offload.t;  (* negotiated with the receiving guest *)
  mutable tx_free : float;  (* guest tx CPU busy until (ns) *)
  mutable wire_free : float;
  mutable rx_free : float;
  mutable last_arrival : float;  (* FIFO floor for deliveries *)
  mutable kick_pending : int;  (* guest frames since last doorbell *)
  mutable irq_pending : int;  (* rx units since last interrupt *)
}

type t = {
  engine : Engine.t;
  link : Link.t;
  fault : Fault.t option;
  ab : dir;
  ba : dir;
  mutable guest_tx_frames : int;
  mutable wire_segments : int;
  mutable tso_frames : int;
  mutable rx_units : int;
  mutable gro_merged : int;
  mutable sw_checksum_bytes : int;
  mutable staging_copies : int;
  mutable csum_drops : int;
  mutable fcs_drops : int;
  mutable payload_bytes : int;
  mutable obs : Obs.Recorder.t;
}

let set_obs t obs = t.obs <- obs

let now_ns t = Int64.to_float (Engine.now t.engine)

(* --- sender side -------------------------------------------------------- *)

(* Charge the guest-side cost of handing one frame to the device and
   return the (possibly staged-flat) frame. *)
let guest_tx t d (f : Frame.t) =
  let n = f.Frame.payload_len in
  let p = d.snd in
  t.guest_tx_frames <- t.guest_tx_frames + 1;
  t.payload_bytes <- t.payload_bytes + n;
  let fn = Float.of_int n in
  let copies =
    p.Hostprofile.tx_copies
    +. if d.feat_tx.Offload.scatter_gather then 0.0 else 0.5
  in
  let cost =
    Float.of_int p.Hostprofile.per_packet_tx_ns
    +. (fn *. p.Hostprofile.copy_ns_per_byte *. copies)
    +.
    if d.feat_tx.Offload.tx_checksum then 0.0
    else begin
      t.sw_checksum_bytes <- t.sw_checksum_bytes + n;
      fn *. p.Hostprofile.checksum_ns_per_byte
    end
  in
  (* doorbell: one vmexit per [kick_batch] frames *)
  let cost =
    if not p.Hostprofile.virtualized then cost
    else begin
      d.kick_pending <- d.kick_pending + 1;
      if d.kick_pending >= p.Hostprofile.kick_batch then begin
        d.kick_pending <- 0;
        cost +. Float.of_int p.Hostprofile.vmexit_ns
      end
      else cost
    end
  in
  d.tx_free <- Float.max (now_ns t) d.tx_free +. cost;
  (* without scatter-gather the device needs contiguous staging: the
     flatten is performed, not just charged *)
  if (not d.feat_tx.Offload.scatter_gather) && n > 0 then begin
    t.staging_copies <- t.staging_copies + 1;
    Obs.Recorder.incr t.obs "net.staging_copy";
    { f with
      Frame.payload = Xdr.Iovec.of_string (Xdr.Iovec.concat f.Frame.payload)
    }
  end
  else f

(* --- receiver side ------------------------------------------------------ *)

(* Software checksum verification: recompute over the payload and compare
   with the stamped sum; a corrupted unit gets a byte of a private copy
   flipped first, so the mismatch is detected the way a real stack
   detects it. *)
let sw_verify t (u : Frame.t) ~csum ~corrupt =
  let computed =
    if corrupt then begin
      let b = Bytes.unsafe_of_string (Xdr.Iovec.concat u.Frame.payload) in
      if Bytes.length b > 0 then begin
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40))
      end;
      Checksum.finish (Checksum.sum b 0 (Bytes.length b))
    end
    else Checksum.finish (Checksum.sum_iovec u.Frame.payload)
  in
  t.sw_checksum_bytes <- t.sw_checksum_bytes + u.Frame.payload_len;
  match csum with
  | Some c when c <> computed ->
      t.csum_drops <- t.csum_drops + 1;
      false
  | _ -> not corrupt

(* Deliver one rx unit: charge receiver CPU on the rx cursor and schedule
   the endpoint callback at the cursor's new position. *)
let deliver_unit t d ~ready ~csum ~corrupt (u : Frame.t) =
  let p = d.rcv in
  let n = u.Frame.payload_len in
  t.rx_units <- t.rx_units + 1;
  let cost =
    Float.of_int p.Hostprofile.per_packet_rx_ns
    +. (Float.of_int n *. p.Hostprofile.copy_ns_per_byte
        *. p.Hostprofile.rx_copies)
    +.
    if d.feat_rx.Offload.rx_checksum then 0.0
    else Float.of_int n *. p.Hostprofile.checksum_ns_per_byte
  in
  let irq_batch =
    if d.feat_rx.Offload.mrg_rxbuf then p.Hostprofile.irq_batch * 4
    else p.Hostprofile.irq_batch
  in
  d.irq_pending <- d.irq_pending + 1;
  let cost =
    if d.irq_pending >= irq_batch then begin
      d.irq_pending <- 0;
      cost
      +. Float.of_int
           (p.Hostprofile.interrupt_ns
           + if p.Hostprofile.virtualized then p.Hostprofile.vmexit_ns else 0)
    end
    else cost
  in
  d.rx_free <- Float.max ready d.rx_free +. cost;
  let ok =
    if d.feat_rx.Offload.rx_checksum then true
    else sw_verify t u ~csum ~corrupt
  in
  if ok then begin
    let arrival = Float.max d.rx_free (d.last_arrival +. 1.0) in
    d.last_arrival <- arrival;
    let peer = d.peer in
    Engine.schedule_at t.engine (Time.of_float_ns arrival) (fun () ->
        Endpoint.on_frame peer u)
  end

(* --- wire --------------------------------------------------------------- *)

(* A wire segment annotated with its fate and timing. *)
type wseg = {
  pos : int;  (* payload offset within the parent frame *)
  len : int;
  decision : Fault.decision;
  done_at : float;  (* wire cursor after serialization (+ fault delay) *)
}

let latency t = Float.of_int t.link.Link.latency_ns

(* Cut a guest frame at wire MSS, move every segment across the wire, and
   re-coalesce in-order runs into rx units (GRO). A unit is flushed by
   reaching [gro_limit], by a faulted segment, or by the end of the
   frame; its ready time is the wire-done time of its last segment plus
   propagation latency. *)
let transmit t d (f : Frame.t) =
  let mss = Link.mss t.link in
  let n = f.Frame.payload_len in
  let nsegs = if n <= mss then 1 else (n + mss - 1) / mss in
  if nsegs > 1 then t.tso_frames <- t.tso_frames + 1;
  (* device-side checksum stamp: free for the guest; only materialized
     when the receiver will verify in software *)
  let stamp sub =
    if d.feat_rx.Offload.rx_checksum then None
    else Some (Checksum.finish (Checksum.sum_iovec sub.Frame.payload))
  in
  let wire_one ~pos ~len =
    t.wire_segments <- t.wire_segments + 1;
    let decision =
      match t.fault with
      | None -> Fault.Pass
      | Some fl -> Fault.decide ~now:(Engine.now t.engine) fl
    in
    let ser =
      Link.serialize_ns t.link ~payload:len ~packets:1
      +. match decision with Fault.Delay x -> Int64.to_float x | _ -> 0.0
    in
    d.wire_free <- Float.max d.tx_free d.wire_free +. ser;
    { pos; len; decision; done_at = d.wire_free }
  in
  let segs =
    if nsegs = 1 then [ wire_one ~pos:0 ~len:n ]
    else
      List.init nsegs (fun i ->
          let pos = i * mss in
          wire_one ~pos ~len:(min mss (n - pos)))
  in
  let gro = d.feat_rx.Offload.gro in
  (* accumulate [run] = consecutive passing segments to merge *)
  let flush run =
    match run with
    | [] -> ()
    | last :: _ ->
        let first = List.nth run (List.length run - 1) in
        let merged = List.length run in
        if merged > 1 then begin
          t.gro_merged <- t.gro_merged + (merged - 1);
          Obs.Recorder.incr t.obs ~by:(merged - 1) "net.gro_merged"
        end;
        let u =
          if first.pos = 0 && last.pos + last.len = n then f
          else Frame.sub f first.pos (last.pos + last.len - first.pos)
        in
        deliver_unit t d ~ready:(last.done_at +. latency t) ~csum:(stamp u)
          ~corrupt:false u
  in
  let run = ref [] in
  let run_len = ref 0 in
  List.iter
    (fun (s : wseg) ->
      let sub () =
        if s.pos = 0 && s.len = n then f else Frame.sub f s.pos s.len
      in
      match s.decision with
      | Fault.Pass | Fault.Delay _ ->
          if gro && !run_len < gro_limit then begin
            run := s :: !run;
            incr run_len
          end
          else begin
            flush !run;
            run := [ s ];
            run_len := 1
          end
      | Fault.Drop ->
          (* the hole breaks coalescing: flush what we have *)
          flush !run;
          run := [];
          run_len := 0
      | Fault.Corrupt ->
          flush !run;
          run := [];
          run_len := 0;
          if d.feat_rx.Offload.rx_checksum then
            (* the device's FCS/checksum validation catches it before the
               segment reaches a receive buffer: pure loss, no rx CPU *)
            t.fcs_drops <- t.fcs_drops + 1
          else
            let u = sub () in
            deliver_unit t d ~ready:(s.done_at +. latency t) ~csum:(stamp u)
              ~corrupt:true u
      | Fault.Duplicate ->
          flush !run;
          run := [];
          run_len := 0;
          let u = sub () in
          let ready = s.done_at +. latency t in
          deliver_unit t d ~ready ~csum:(stamp u) ~corrupt:false u;
          deliver_unit t d ~ready ~csum:(stamp u) ~corrupt:false u)
    segs;
  flush !run

let on_guest_frame t d (f : Frame.t) =
  let f = guest_tx t d f in
  transmit t d f

(* --- construction ------------------------------------------------------- *)

let connect ~engine ~link ?fault ?(device = Offload.all) ~a:(ea, pa)
    ~b:(eb, pb) () =
  let feat_a =
    effective (Offload.negotiate ~device ~guest:pa.Hostprofile.offloads)
  in
  let feat_b =
    effective (Offload.negotiate ~device ~guest:pb.Hostprofile.offloads)
  in
  let dir peer snd rcv feat_tx feat_rx =
    { peer; snd; rcv; feat_tx; feat_rx; tx_free = 0.0; wire_free = 0.0;
      rx_free = 0.0; last_arrival = 0.0; kick_pending = 0; irq_pending = 0 }
  in
  let t =
    { engine; link; fault;
      ab = dir eb pa pb feat_a feat_b;
      ba = dir ea pb pa feat_b feat_a;
      guest_tx_frames = 0; wire_segments = 0; tso_frames = 0; rx_units = 0;
      gro_merged = 0; sw_checksum_bytes = 0; staging_copies = 0;
      csum_drops = 0; fcs_drops = 0; payload_bytes = 0;
      obs = Obs.Recorder.null }
  in
  let mss = Link.mss link in
  let burst = max mss (tso_burst_bytes / mss * mss) in
  if feat_a.Offload.tso then Endpoint.set_tx_burst ea burst;
  if feat_b.Offload.tso then Endpoint.set_tx_burst eb burst;
  Endpoint.set_tx_frame ea (fun f -> on_guest_frame t t.ab f);
  Endpoint.set_tx_frame eb (fun f -> on_guest_frame t t.ba f);
  t

let negotiated_a t = t.ab.feat_tx
let negotiated_b t = t.ba.feat_tx

let stats t =
  { guest_tx_frames = t.guest_tx_frames; wire_segments = t.wire_segments;
    tso_frames = t.tso_frames; rx_units = t.rx_units;
    gro_merged = t.gro_merged; sw_checksum_bytes = t.sw_checksum_bytes;
    staging_copies = t.staging_copies; csum_drops = t.csum_drops;
    fcs_drops = t.fcs_drops; payload_bytes = t.payload_bytes }

let fault_stats t = Option.map Fault.stats t.fault

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<h>frames=%d wire=%d tso=%d rx_units=%d gro_merged=%d sw_csum=%dB \
     staging=%d csum_drops=%d fcs_drops=%d@]"
    s.guest_tx_frames s.wire_segments s.tso_frames s.rx_units s.gro_merged
    s.sw_checksum_bytes s.staging_copies s.csum_drops s.fcs_drops
