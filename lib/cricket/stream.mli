(** Client-side CUDA stream: a local command queue coalesced into one-way
    RPCs.

    Commands ([memcpy_h2d_async], [launch_async], …) are enqueued locally
    and only hit the wire when the stream flushes — explicitly via
    {!flush}, or implicitly by any blocking operation ({!synchronize},
    {!download}, {!event_elapsed_ms}, {!destroy}). Because the flushed
    RPCs are one-way (RFC 5531 §8), an entire batch plus the blocking
    call that follows costs a single network round trip: this is the
    pipeline that hides the guest's virtualized-network latency behind
    the stream, and the distance between synchronize points is the
    pipeline depth.

    Ordering: commands on one stream execute in enqueue order; commands
    on different streams of the same client are ordered by their flush
    order. For a cross-stream dependency, flush the stream that records
    the event before flushing the one that {!wait_event}s on it.

    Server-side failures of enqueued commands cannot be raised at enqueue
    time — they latch on the server and are raised (as
    {!Cudasim.Error.Cuda_error}) by the next blocking operation. *)

type t

val create : Client.t -> t
(** Creates a server-side stream (one blocking RPC). *)

val handle : t -> int64
val client : t -> Client.t

val pending : t -> int
(** Commands enqueued locally and not yet flushed. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a raw deferred command — run when the stream flushes, in
    order. Used by {!Lifetime} to re-validate buffer liveness at flush
    time; application code should prefer the typed operations. *)

val flush : t -> unit
(** Send all enqueued commands as one-way RPCs, in order. Does not block
    for the server. *)

(** {1 Stream-ordered commands (enqueue; no network traffic)} *)

val memcpy_h2d_async : t -> dst:int64 -> bytes -> unit
val memset_async : t -> ptr:int64 -> value:int -> len:int -> unit

val launch_async :
  t ->
  Client.func ->
  grid:Client.dim3 ->
  block:Client.dim3 ->
  ?shared_mem:int ->
  Gpusim.Kernels.arg array ->
  unit

val event_record : t -> int64 -> unit
(** Record an event (from {!Client.event_create}) after the work enqueued
    so far. *)

val wait_event : t -> int64 -> unit
(** Subsequent commands wait for the event's recorded time. *)

(** {1 Blocking operations (flush, then wait)} *)

val synchronize : t -> unit
(** Flush and block until the stream's work completes; raises any latched
    asynchronous error. *)

val download : t -> src:int64 -> len:int -> bytes
(** Flush, then stream-ordered device-to-host copy: blocks only on this
    stream, not the whole device. *)

val event_elapsed_ms : t -> start:int64 -> stop:int64 -> float

val destroy : t -> unit
(** Flush, then destroy the server-side stream. *)
