type entry = {
  seq : int;
  proc : int;
  proc_name : string;
  arg_bytes : int;
  at : Simnet.Time.t;
  duration : Simnet.Time.t;
}

let dummy =
  { seq = -1; proc = -1; proc_name = ""; arg_bytes = 0; at = Simnet.Time.zero;
    duration = Simnet.Time.zero }

(* [total] is the lifetime record count and the [seq] source: it survives
   [clear], so sequence numbers stay monotonic across clears and
   [recorded] never under-reports. The ring itself is described by
   [cursor] (next write slot) and [filled] (live entries, <= capacity);
   slots beyond [filled] still hold [dummy] but are never read, so
   [entries] needs no option type and no unreachable branch. *)
type t = {
  ring : entry array;
  mutable cursor : int;
  mutable filled : int;
  mutable total : int;
  mutable is_enabled : bool;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity";
  { ring = Array.make capacity dummy; cursor = 0; filled = 0; total = 0;
    is_enabled = false }

let enabled t = t.is_enabled
let set_enabled t v = t.is_enabled <- v

let record t ~now ~proc ~proc_name ~arg_bytes ~duration =
  if t.is_enabled then begin
    let entry =
      { seq = t.total; proc; proc_name; arg_bytes; at = now; duration }
    in
    let capacity = Array.length t.ring in
    t.ring.(t.cursor) <- entry;
    t.cursor <- (t.cursor + 1) mod capacity;
    if t.filled < capacity then t.filled <- t.filled + 1;
    t.total <- t.total + 1
  end

let entries t =
  let capacity = Array.length t.ring in
  (* Oldest live entry sits [filled] slots behind the cursor. *)
  let first = (t.cursor - t.filled + capacity * 2) mod capacity in
  List.init t.filled (fun i -> t.ring.((first + i) mod capacity))

let recorded t = t.total

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) dummy;
  t.cursor <- 0;
  t.filled <- 0

let pp_entry ppf e =
  Format.fprintf ppf "#%d %a %s (%d arg bytes, %a)" e.seq Simnet.Time.pp e.at
    e.proc_name e.arg_bytes Simnet.Time.pp e.duration
