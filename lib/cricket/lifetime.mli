(** Lifetime-tracked GPU allocations.

    RPC-Lib wraps [cudaMalloc]/[cudaFree] so GPU allocations behave like
    Rust heap allocations, ruling out use-after-free and double-free at
    compile time. OCaml has no borrow checker, so this module provides the
    same guarantee dynamically: every operation on a freed buffer raises
    {!Use_after_free}, a second free raises {!Double_free}, and
    {!with_buffer} scopes an allocation so it is freed exactly once on all
    exit paths. *)

exception Use_after_free
exception Double_free

type t

val alloc : Client.t -> int -> t
(** Allocate [n] device bytes. *)

val ptr : t -> int64
(** The raw device pointer; raises {!Use_after_free} once freed. *)

val size : t -> int
val is_live : t -> bool

val free : t -> unit
(** Raises {!Double_free} on a second call. *)

val upload : t -> bytes -> unit
(** H2D into this buffer; checks live-ness and size. *)

val upload_at : t -> offset:int -> bytes -> unit

val download : ?stream:Stream.t -> t -> bytes
(** D2H of the whole buffer. With [?stream], the copy is stream-ordered:
    the stream flushes its queued commands and blocks only on its own
    completion, not the whole device. *)

(** {1 Stream-ordered variants}

    Enqueue on a {!Stream} without blocking. Liveness is checked both at
    enqueue time and again when the stream flushes, so a buffer freed with
    commands still queued raises {!Use_after_free} at the flush — the
    enqueued-but-not-executed command can never touch freed memory. The
    stream must belong to the same client ([Invalid_argument] otherwise). *)

val upload_async : t -> Stream.t -> bytes -> unit
val fill_async : t -> Stream.t -> int -> unit

val download_part : t -> offset:int -> len:int -> bytes
val fill : t -> int -> unit
(** cudaMemset over the whole buffer. *)

val with_buffer : Client.t -> int -> (t -> 'a) -> 'a
(** Allocate, run, free — even on exceptions. *)
