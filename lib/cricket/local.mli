(** In-process client↔server wiring.

    Connects a {!Client} to a {!Server} without sockets or threads: client
    writes are buffered, and each complete record is dispatched to the
    server synchronously. Full record-marking framing still happens on the
    "wire", so fragmentation code paths are exercised. This is the default
    transport for tests, examples and the virtual-time benchmarks (where it
    is wrapped by the cost-charging channel in the [unikernel] library). *)

val transport : Server.t -> Oncrpc.Transport.t
(** A fresh client-side transport whose peer is [server]. *)

val transport_of_dispatch : (string -> string) -> Oncrpc.Transport.t
(** Same, over any record-level dispatch function. *)

val transport_for : Server.t -> tenant:string -> Oncrpc.Transport.t
(** Like {!transport}, but every record goes through
    {!Server.dispatch_for} on behalf of [tenant] — admission, per-tenant
    accounting and lease hooks apply. *)

val connect : Server.t -> Client.t
(** [Client.create] over {!transport}. *)

val connect_for : Server.t -> tenant:string -> Client.t
(** [Client.create] over {!transport_for}. *)
