(** Application-facing CUDA API forwarded through Cricket — the OCaml
    analogue of the paper's RPC-Lib client.

    All functions raise {!Cudasim.Error.Cuda_error} when the server reports
    a CUDA error, and {!Oncrpc.Client.Rpc_error} / {!Oncrpc.Transport.Closed}
    on protocol or connection failures.

    Kernel launches work as in the paper's extension: the application loads
    a compiled kernel module (cubin or fatbin) from bytes or a file, the
    client parses the metadata locally to learn each kernel's parameter
    layout, packs launch arguments into the exact buffer layout
    [cuLaunchKernel] expects, and the module bytes travel to the server
    once via [rpc_cuModuleLoadData].

    The [?charge] hook receives client-side CPU nanoseconds (used by the
    simulated-host runner to account application work such as C's slower
    launch path); [?launch_extra_ns] models the extra compatibility logic
    the C implementations run per kernel launch (§4.2: Rust is ≈6.3 %
    faster on launches because it omits the [<<<...>>>] path). *)

type t

type func
(** A kernel function handle plus its parameter metadata. *)

type dim3 = Gpusim.Kernels.dim3 = { x : int; y : int; z : int }

exception Session_lost of string
(** The session could not be recovered (see {!enable_recovery}): the
    server crashed during recovery, or the retry budget ran out. Sticky —
    once raised, {e every} further call on this client (sync, one-way or
    pipelined) raises it immediately rather than hanging on a dead
    connection. *)

val create :
  ?launch_extra_ns:int ->
  ?charge:(int -> unit) ->
  ?fragment_size:int ->
  ?doorbell:Oncrpc.Doorbell.policy ->
  ?doorbell_schedule:(int64 -> (unit -> unit) -> unit) ->
  transport:Oncrpc.Transport.t ->
  unit ->
  t
(** [doorbell] interposes an {!Oncrpc.Doorbell} batcher between the RPC
    client and [transport]: small calls coalesce into one wire submit per
    flush. [doorbell_schedule] clocks the flush deadline (pass
    [Simnet.Engine.schedule_after] for virtual time). *)

val close : t -> unit

val rpc : t -> Oncrpc.Client.t
(** The underlying RPC client (retry/timeout/reconnect counters live in
    its {!Oncrpc.Client.stats}). *)

val doorbell_stats : t -> Oncrpc.Doorbell.stats option

val doorbell_flush : t -> unit
(** Ring the doorbell now (no-op without a doorbell). *)

val set_obs : t -> Obs.Recorder.t -> unit
(** Attach an observability recorder to the client shim: every forwarded
    CUDA call opens a ["shim"]-layer span named by its RPCL procedure,
    with ["rpc"]-layer per-attempt spans nested inside (see
    {!Oncrpc.Client.set_obs}). *)

(** {1 Session recovery}

    With recovery enabled the client survives a server crash: the RPC
    layer reconnects (backing off in virtual time via [sleep]), the client
    restores the server from the latest checkpoint, replays the journal of
    state-mutating calls issued since, remaps any handle the server
    assigned differently, and the interrupted call is retransmitted — the
    application simply sees its call return. This is the client half of
    the paper's CRIU-style checkpoint/restart story, turned into
    transparent fault tolerance. *)

val enable_recovery :
  ?retry:Oncrpc.Client.retry_policy ->
  ?checkpoint_every:int ->
  ?checkpoint_name:string ->
  t ->
  now:(unit -> int64) ->
  sleep:(int64 -> unit) ->
  reconnect:(unit -> Oncrpc.Transport.t) ->
  unit ->
  unit
(** [checkpoint_every] (default 64) is the journal length that triggers an
    automatic server checkpoint (journal truncates only after the
    checkpoint RPC succeeds); [checkpoint_name] (default ["session-auto"])
    the server-side checkpoint file name. [now]/[sleep] clock the retry
    backoff — pass the simulation engine's virtual clock for deterministic
    runs. [reconnect] must return a fresh transport to the (restarted)
    server, or raise {!Oncrpc.Transport.Closed} while it is still down
    (e.g. {!Unikernel.Simchannel.reconnect}). *)

val session_lost : t -> bool
val recoveries : t -> int
(** Successful crash recoveries (restore + replay) completed. *)

val replayed_calls : t -> int
(** Journaled calls re-issued across all recoveries. *)

val checkpoints_taken : t -> int
(** Automatic checkpoints triggered by the journal cadence. *)

val recover : t -> unit
(** Restore the latest checkpoint and replay the journal tail. Runs
    automatically on reconnect; exposed so a duplicate recovery (lost ack)
    can be exercised directly — recovery is idempotent: running it twice
    yields byte-identical server state. No-op without recovery enabled. *)

(** {1 Statistics (per paper §4.1: API calls and transferred bytes)} *)

val api_calls : t -> int
val bytes_to_server : t -> int
val bytes_from_server : t -> int

val memcpy_bytes_up : t -> int
(** Payload bytes moved by [memcpy_h2d] — the paper's "memory transfers"
    metric counts these, not RPC argument bytes. *)

val memcpy_bytes_down : t -> int
val charge_host : t -> int -> unit
(** Account client-side CPU work (e.g. input-data generation). *)

(** {1 Device management} *)

val get_device_count : t -> int
val set_device : t -> int -> unit
val get_device : t -> int

type device_properties = {
  name : string;
  total_global_mem : int64;
  multi_processor_count : int;
  clock_rate_khz : int;
  compute_major : int;
  compute_minor : int;
  memory_bandwidth : int64;
}

val get_device_properties : t -> int -> device_properties
val device_synchronize : t -> unit
val device_reset : t -> unit

(** {1 Memory} *)

val malloc : t -> int -> int64
val free : t -> int64 -> unit
val memcpy_h2d : t -> dst:int64 -> bytes -> unit
val memcpy_d2h : t -> src:int64 -> len:int -> bytes
val memcpy_d2d : t -> dst:int64 -> src:int64 -> len:int -> unit
val memset : t -> ptr:int64 -> value:int -> len:int -> unit
val mem_get_info : t -> int64 * int64

(** {2 Stream-ordered (one-way) variants}

    These return once the request record is written; no reply exists on
    the wire (RFC 5531 §8 batching), so N of them plus one synchronizing
    call cost a single round trip. Server-side failures latch and are
    raised by the next synchronizing call. Prefer the higher-level
    {!Stream} module, which also defers the sends for explicit
    pipeline-depth control. *)

val memcpy_h2d_async : t -> dst:int64 -> stream:int64 -> bytes -> unit
val memset_async : t -> ptr:int64 -> value:int -> len:int -> stream:int64 -> unit

val memcpy_d2h_stream : t -> src:int64 -> len:int -> stream:int64 -> bytes
(** Blocking, but only drains [stream] (not the whole device). *)

(** {1 Streams and events} *)

val stream_create : t -> int64
val stream_destroy : t -> int64 -> unit
val stream_synchronize : t -> int64 -> unit
val event_create : t -> int64
val event_destroy : t -> int64 -> unit
val event_record : t -> event:int64 -> stream:int64 -> unit
val event_synchronize : t -> int64 -> unit
val event_elapsed_ms : t -> start:int64 -> stop:int64 -> float

val stream_wait_event : t -> stream:int64 -> event:int64 -> unit
(** One-way cudaStreamWaitEvent: [stream]'s subsequent work starts no
    earlier than the event's recorded time. *)

val event_record_async : t -> event:int64 -> stream:int64 -> unit
(** One-way {!event_record}. *)

(** {1 Kernel modules and launches} *)

val module_load : t -> string -> int64
(** Send a serialized cubin/fatbin to the server; parse metadata locally. *)

val module_load_file : t -> string -> int64
(** Read a module from disk first (the cubin-file flow the paper added). *)

val module_unload : t -> int64 -> unit

val get_function : t -> modul:int64 -> name:string -> func
val get_global : t -> modul:int64 -> name:string -> int64 * int
(** Device pointer and size of a module global. *)

val launch :
  t ->
  func ->
  grid:dim3 ->
  block:dim3 ->
  ?shared_mem:int ->
  ?stream:int64 ->
  Gpusim.Kernels.arg array ->
  unit

val launch_async :
  t ->
  func ->
  grid:dim3 ->
  block:dim3 ->
  ?shared_mem:int ->
  stream:int64 ->
  Gpusim.Kernels.arg array ->
  unit
(** One-way {!launch}: returns without waiting for the server. Launch
    errors latch and surface at the next synchronizing call. *)

(** {1 cuBLAS / cuSOLVER} *)

val cublas_create : t -> int64
val cublas_destroy : t -> int64 -> unit

val cublas_sgemm :
  t -> handle:int64 -> m:int -> n:int -> k:int -> alpha:float -> a:int64 ->
  lda:int -> b:int64 -> ldb:int -> beta:float -> c:int64 -> ldc:int -> unit

val cublas_sgemv :
  t -> handle:int64 -> m:int -> n:int -> alpha:float -> a:int64 -> lda:int ->
  x:int64 -> incx:int -> beta:float -> y:int64 -> incy:int -> unit

val cublas_sdot :
  t -> handle:int64 -> n:int -> x:int64 -> incx:int -> y:int64 -> incy:int ->
  float

val cublas_sscal :
  t -> handle:int64 -> n:int -> alpha:float -> x:int64 -> incx:int -> unit

val cublas_snrm2 : t -> handle:int64 -> n:int -> x:int64 -> incx:int -> float

val cusolver_create : t -> int64
val cusolver_destroy : t -> int64 -> unit

val cusolver_sgetrf_buffer_size :
  t -> handle:int64 -> m:int -> n:int -> a:int64 -> lda:int -> int

val cusolver_sgetrf :
  t -> handle:int64 -> m:int -> n:int -> a:int64 -> lda:int ->
  workspace:int64 -> ipiv:int64 -> int

val cusolver_sgetrs :
  t -> handle:int64 -> n:int -> nrhs:int -> a:int64 -> lda:int ->
  ipiv:int64 -> b:int64 -> ldb:int -> int

(** {1 Checkpoint / restart} *)

val checkpoint : t -> string -> unit
(** [checkpoint t name]: server writes its GPU state under [name]. *)

val restore : t -> string -> unit

(** {1 Live migration}

    Stubs for the destination side of a pre-copy migration; the source
    server (via {!Migrate} in [lib/migrate]) drives them over an ordinary
    RPC connection to the destination. *)

val migrate_begin : t -> string -> unit
(** [migrate_begin t tenant] opens an inbound migration. *)

val migrate_base : t -> bytes -> unit
(** Install the full base snapshot. *)

val migrate_delta : t -> bytes -> unit
(** Apply one dirty-page delta on top of the base. *)

val migrate_commit : t -> tenant:string -> bytes -> unit
(** Hand over the session; the bytes carry the serialized source lease
    (empty if the tenant held none). *)

val migrate_abort : t -> string -> unit
(** Discard any half-copied inbound state for this tenant. *)
