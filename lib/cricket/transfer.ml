type t =
  | Rpc_arguments
  | Parallel_tcp of int
  | Infiniband_rdma
  | Shared_memory

exception Unsupported of { strategy : t; reason : string }

let default = Rpc_arguments

let to_string = function
  | Rpc_arguments -> "rpc-arguments"
  | Parallel_tcp n -> Printf.sprintf "parallel-tcp(%d)" n
  | Infiniband_rdma -> "infiniband-rdma"
  | Shared_memory -> "shared-memory"

let () =
  Printexc.register_printer (function
    | Unsupported { strategy; reason } ->
        Some
          (Printf.sprintf "Cricket.Transfer.Unsupported(%s): %s"
             (to_string strategy) reason)
    | _ -> None)

let supported_by_unikernel = function
  | Rpc_arguments -> true
  | Parallel_tcp _ | Infiniband_rdma | Shared_memory -> false

let check_available ~unikernel strategy =
  match strategy with
  | _ when not unikernel -> ()
  | Rpc_arguments -> ()
  | Parallel_tcp _ ->
      raise
        (Unsupported
           { strategy;
             reason = "unikernel network stacks are single-queue; no \
                       multithreaded transfers" })
  | Infiniband_rdma ->
      raise
        (Unsupported
           { strategy; reason = "no InfiniBand drivers in the unikernel" })
  | Shared_memory ->
      raise
        (Unsupported
           { strategy;
             reason = "no shared memory between host and unikernel guest" })

(* How many times each payload byte is staged between the application
   buffer and the NIC (tx) under each strategy, now that the RPC-arguments
   path is scatter-gather: the XDR/record layers pass views and the
   transport performs the single staging copy. Matches the DESIGN.md
   datapath table; the paper's §4.2 offload discussion is exactly about
   losing this property in unikernels. *)
let staging_copies = function
  | Rpc_arguments -> 1 (* one transport copy; XDR + record marking are zero-copy *)
  | Parallel_tcp _ -> 2 (* per-connection split staging plus transport copy *)
  | Infiniband_rdma -> 0 (* HCA reads the registered buffer directly *)
  | Shared_memory -> 0 (* peer maps the same pages *)

let bandwidth_multiplier = function
  | Rpc_arguments -> 1.0
  | Parallel_tcp n ->
      (* staging buffer still serializes; diminishing returns past 4 *)
      let n = Float.of_int (max 1 n) in
      Float.min 3.2 (1.0 +. (0.75 *. (n -. 1.0) /. (1.0 +. (0.25 *. (n -. 1.0)))))
  | Infiniband_rdma -> 4.5 (* wire-rate, no staging copy *)
  | Shared_memory -> 6.0
