(** Device-memory transfer strategies (§4.2 of the paper).

    Cricket implements several ways to move data between application and
    GPU: inside RPC arguments (the only one usable from unikernels, and the
    one the paper evaluates), multiple parallel TCP sockets, GPUDirect RDMA
    over InfiniBand, and shared memory for co-located servers. The paper
    disables everything but the RPC-argument path because unikernels lack
    InfiniBand drivers and host shared memory.

    This module models the strategies' relative bandwidth so the ablation
    benchmark can show what the unikernels are missing. *)

type t =
  | Rpc_arguments  (** single TCP connection, single-threaded staging *)
  | Parallel_tcp of int  (** n sockets + n staging threads *)
  | Infiniband_rdma  (** GPUDirect: no staging buffer at all *)
  | Shared_memory  (** co-located client: memcpy through a shared segment *)

exception Unsupported of { strategy : t; reason : string }

val default : t
val to_string : t -> string

val supported_by_unikernel : t -> bool
(** Only {!Rpc_arguments}: no IB drivers, no host shared memory, and the
    unikernel network stacks are single-queue. *)

val check_available : unikernel:bool -> t -> unit
(** Raises {!Unsupported} with the paper's reason when a unikernel client
    selects an unavailable strategy. *)

val staging_copies : t -> int
(** How many times each payload byte is copied between the application
    buffer and the wire (tx side) under this strategy. With the
    scatter-gather RPC datapath the {!Rpc_arguments} path is down to the
    single transport staging copy; RDMA and shared memory avoid even
    that. Feeds the copies-per-transfer table in [DESIGN.md]. *)

val bandwidth_multiplier : t -> float
(** Steady-state bandwidth relative to {!Rpc_arguments} on the evaluation
    testbed: parallel sockets scale sub-linearly (still staged through a
    buffer), RDMA reaches the wire rate, shared memory the host memcpy
    rate. *)
