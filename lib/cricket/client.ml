module P = Proto.Rpc_cd_prog_def_v1.Client

type func = { handle : int64; info : Cubin.Image.kernel_info }

type dim3 = Gpusim.Kernels.dim3 = { x : int; y : int; z : int }

exception Session_lost of string

let () =
  Printexc.register_printer (function
    | Session_lost msg -> Some ("Cricket.Client.Session_lost: " ^ msg)
    | _ -> None)

(* Session recovery (tentpole of the fault-tolerance work):

   - the client journals every state-mutating call since the last
     checkpoint, as a closure that re-issues it;
   - every [checkpoint_every] journaled calls it asks the server to
     checkpoint, then truncates the journal;
   - when the connection dies, the RPC layer reconnects (backing off in
     virtual time) and runs [recover]: restore the latest checkpoint, then
     replay the journal tail in order — the failed call is retransmitted
     by the RPC retry loop afterwards, so the application never notices;
   - server handles may come back different after a replay, so the journal
     records a remap from the handle the application holds to the server's
     current one, applied at the wire boundary by [tr]. (Replay is
     deterministic, so remaps are identities in practice — but the
     mechanism is what makes that an optimization, not an assumption.)

   A crash during recovery, or an exhausted retry budget, marks the
   session lost: the transport is swapped for one that raises, so every
   subsequent call — sync, one-way or pipelined — fails fast with
   {!Session_lost} instead of hanging. *)
type recovery = {
  checkpoint_every : int;
  checkpoint_name : string;
  journal : (unit -> unit) Queue.t;
  remap : (int64, int64) Hashtbl.t;  (* app-visible handle -> server handle *)
  mutable has_checkpoint : bool;
  mutable recovering : bool;
  mutable lost : bool;
  mutable recoveries : int;
  mutable replayed : int;
  mutable checkpoints : int;
}

type t = {
  rpc : Oncrpc.Client.t;
  launch_extra_ns : int;
  charge : int -> unit;
  (* kernel metadata per loaded module, parsed client-side *)
  modules : (int64, Cubin.Image.t) Hashtbl.t;
  mutable memcpy_up : int;
  mutable memcpy_down : int;
  mutable recovery : recovery option;
  doorbell : Oncrpc.Doorbell.t option;
      (* present when this client batches small calls doorbell-style *)
}

(* Each client gets its own 16M-wide xid space: concurrent clients sharing
   one server (multi-tenancy) must never alias in the server's xid-keyed
   duplicate-request cache. Real clients randomize the origin instead.
   Atomic: sharded harnesses create clients from several domains at once. *)
let xid_space = Atomic.make 1

let create ?(launch_extra_ns = 0) ?(charge = fun _ -> ()) ?fragment_size
    ?doorbell ?doorbell_schedule ~transport () =
  (* with a doorbell policy the RPC client talks through the batching
     wrapper: N small calls coalesce into one wire submit, flushed by
     count/bytes/deadline and always before a blocking receive *)
  let doorbell =
    Option.map
      (fun policy ->
        Oncrpc.Doorbell.wrap ~policy ?schedule:doorbell_schedule transport)
      doorbell
  in
  let transport =
    match doorbell with
    | Some db -> Oncrpc.Doorbell.transport db
    | None -> transport
  in
  let rpc = P.create ?fragment_size ~transport () in
  let space = Atomic.fetch_and_add xid_space 1 in
  Oncrpc.Client.set_xid_origin rpc
    (Int32.mul (Int32.of_int space) 0x1000000l);
  {
    rpc;
    launch_extra_ns;
    charge;
    modules = Hashtbl.create 4;
    memcpy_up = 0;
    memcpy_down = 0;
    recovery = None;
    doorbell;
  }

let close t = Oncrpc.Client.close t.rpc
let rpc t = t.rpc
let doorbell_stats t = Option.map Oncrpc.Doorbell.stats t.doorbell
let doorbell_flush t = Option.iter Oncrpc.Doorbell.flush t.doorbell

let set_obs t obs =
  Oncrpc.Client.set_obs ~proc_name:Server.proc_name t.rpc obs;
  Option.iter (fun db -> Oncrpc.Doorbell.set_obs db obs) t.doorbell
let api_calls t = (Oncrpc.Client.stats t.rpc).Oncrpc.Client.calls
let bytes_to_server t = (Oncrpc.Client.stats t.rpc).Oncrpc.Client.bytes_sent

let bytes_from_server t =
  (Oncrpc.Client.stats t.rpc).Oncrpc.Client.bytes_received

let charge_host t ns = t.charge ns
let memcpy_bytes_up t = t.memcpy_up
let memcpy_bytes_down t = t.memcpy_down

let check err = Cudasim.Error.check (Cudasim.Error.of_code err)

let check_void (r : Proto.void_result) = check r.Proto.err

let check_int (r : Proto.int_result) =
  check r.Proto.err;
  r.Proto.data

let check_u64 (r : Proto.u64_result) =
  check r.Proto.err;
  r.Proto.data

let check_float (r : Proto.float_result) =
  check r.Proto.err;
  r.Proto.data

(* --- session recovery machinery --- *)

(* Translate an application-visible handle (device pointer, stream, event,
   module, function, library handle) to the server's current handle. *)
let tr t h =
  match t.recovery with
  | None -> h
  | Some r -> ( match Hashtbl.find_opt r.remap h with Some h' -> h' | None -> h)

let set_remap r ~old ~fresh =
  if Int64.equal old fresh then Hashtbl.remove r.remap old
  else Hashtbl.replace r.remap old fresh

let lose t msg =
  (match t.recovery with
  | None -> ()
  | Some r ->
      r.lost <- true;
      (* Sticky: every later use of this session — including one-way sends
         and pipelined batches — must fail fast, never hang on a dead
         connection. *)
      let raise_lost _ = raise (Session_lost msg) in
      Oncrpc.Client.set_transport t.rpc
        (Oncrpc.Transport.make
           ~send:(fun _ _ _ -> raise_lost ())
           ~recv:(fun _ _ _ -> raise_lost ())
           ~close:(fun () -> ())
           ()));
  Session_lost msg

let take_checkpoint t r =
  check_void (P.rpc_checkpoint t.rpc r.checkpoint_name);
  (* only truncate once the checkpoint RPC has succeeded: until then the
     journal tail is still the only copy of post-checkpoint state *)
  r.has_checkpoint <- true;
  r.checkpoints <- r.checkpoints + 1;
  Queue.clear r.journal

(* Append a replayable closure for a call that mutates server state. Runs
   after the call succeeded (sync) or its record was sent (one-way): replay
   rebuilds all state from the checkpoint, so a call that executed before
   the crash and its journaled replay never double-apply. *)
let journal t redo =
  match t.recovery with
  | None -> ()
  | Some r when r.recovering || r.lost -> ()
  | Some r ->
      Queue.add redo r.journal;
      (* Baseline at the first mutation: recovery is then always
         restore-then-replay. Without a baseline, replay lands on whatever
         state the server happens to hold — a duplicate recovery (lost ack,
         crash mid-replay) would double-apply the journal. *)
      if (not r.has_checkpoint) || Queue.length r.journal >= r.checkpoint_every
      then take_checkpoint t r

let recover t =
  match t.recovery with
  | None -> ()
  | Some r ->
      if r.lost then raise (Session_lost "session already lost");
      if r.recovering then
        (* the server crashed again while we were replaying into it *)
        raise (lose t "server crashed during recovery");
      r.recovering <- true;
      Fun.protect
        ~finally:(fun () -> r.recovering <- false)
        (fun () ->
          try
            if r.has_checkpoint then
              check_void (P.rpc_restore t.rpc r.checkpoint_name);
            Queue.iter (fun redo -> redo ()) r.journal;
            r.replayed <- r.replayed + Queue.length r.journal;
            r.recoveries <- r.recoveries + 1
          with
          | Session_lost _ as e -> raise e
          | e ->
              (* the server refused the restore or part of the replay (an
                 expired lease, a revoked credential): resuming would leave
                 the session on partially replayed state, so it is lost *)
              raise (lose t ("recovery refused: " ^ Printexc.to_string e)))

let enable_recovery ?(retry = Oncrpc.Client.default_retry)
    ?(checkpoint_every = 64) ?(checkpoint_name = "session-auto") t ~now ~sleep
    ~reconnect () =
  if checkpoint_every < 1 then invalid_arg "Client.enable_recovery";
  let r =
    {
      checkpoint_every;
      checkpoint_name;
      journal = Queue.create ();
      remap = Hashtbl.create 16;
      has_checkpoint = false;
      recovering = false;
      lost = false;
      recoveries = 0;
      replayed = 0;
      checkpoints = 0;
    }
  in
  t.recovery <- Some r;
  Oncrpc.Client.set_retry t.rpc (Some retry);
  Oncrpc.Client.set_clock t.rpc ~now ~sleep;
  Oncrpc.Client.set_reconnect t.rpc reconnect;
  Oncrpc.Client.set_on_reconnect t.rpc (fun () -> recover t);
  Oncrpc.Client.set_give_up t.rpc (fun exn ->
      match exn with Session_lost _ -> exn | _ -> lose t (Printexc.to_string exn))

let session_lost t =
  match t.recovery with None -> false | Some r -> r.lost

let recoveries t =
  match t.recovery with None -> 0 | Some r -> r.recoveries

let replayed_calls t =
  match t.recovery with None -> 0 | Some r -> r.replayed

let checkpoints_taken t =
  match t.recovery with None -> 0 | Some r -> r.checkpoints

(* --- device management --- *)

let get_device_count t = check_int (P.rpc_cudaGetDeviceCount t.rpc ())

let set_device t i =
  let issue () = check_void (P.rpc_cudaSetDevice t.rpc i) in
  issue ();
  journal t issue

let get_device t = check_int (P.rpc_cudaGetDevice t.rpc ())

type device_properties = {
  name : string;
  total_global_mem : int64;
  multi_processor_count : int;
  clock_rate_khz : int;
  compute_major : int;
  compute_minor : int;
  memory_bandwidth : int64;
}

let get_device_properties t i =
  let r = P.rpc_cudaGetDeviceProperties t.rpc i in
  check r.Proto.err;
  let p = r.Proto.props in
  {
    name = p.Proto.name;
    total_global_mem = p.Proto.total_global_mem;
    multi_processor_count = p.Proto.multi_processor_count;
    clock_rate_khz = p.Proto.clock_rate_khz;
    compute_major = p.Proto.compute_major;
    compute_minor = p.Proto.compute_minor;
    memory_bandwidth = p.Proto.memory_bandwidth;
  }

let device_synchronize t = check_void (P.rpc_cudaDeviceSynchronize t.rpc ())

let device_reset t =
  let issue () = check_void (P.rpc_cudaDeviceReset t.rpc ()) in
  issue ();
  journal t issue

(* --- memory --- *)

let malloc t size =
  let issue () = check_u64 (P.rpc_cudaMalloc t.rpc (Int64.of_int size)) in
  let ptr = issue () in
  (match t.recovery with
  | None -> ()
  | Some r -> journal t (fun () -> set_remap r ~old:ptr ~fresh:(issue ())));
  ptr

let free t ptr =
  let issue () = check_void (P.rpc_cudaFree t.rpc (tr t ptr)) in
  issue ();
  journal t issue

let memcpy_h2d t ~dst data =
  t.memcpy_up <- t.memcpy_up + Bytes.length data;
  let issue () = check_void (P.rpc_cudaMemcpyHtoD t.rpc (tr t dst) data) in
  issue ();
  journal t issue

(* Download fast path: decode the reply's mem_result by hand so the bulk
   payload is read through a no-copy view of the reply record
   (Xdr.Decode.opaque_slice) and materialised exactly once, instead of
   being copied by the generated struct decoder and again by the caller.
   Wire format is identical to the generated stub's. *)
let call_mem_slice t ~proc encode_args =
  Oncrpc.Client.call t.rpc ~proc encode_args (fun dec ->
      let err = Xdr.Decode.int dec in
      let data = Xdr.Decode.opaque_slice dec in
      check err;
      Xdr.Iovec.slice_to_bytes data)

let memcpy_d2h t ~src ~len =
  t.memcpy_down <- t.memcpy_down + len;
  call_mem_slice t ~proc:P.proc_rpc_cudaMemcpyDtoH (fun enc ->
      Xdr.Encode.uint64 enc (tr t src);
      Xdr.Encode.uint64 enc (Int64.of_int len))

let memcpy_d2d t ~dst ~src ~len =
  let issue () =
    check_void
      (P.rpc_cudaMemcpyDtoD t.rpc (tr t dst) (tr t src) (Int64.of_int len))
  in
  issue ();
  journal t issue

let memset t ~ptr ~value ~len =
  let issue () =
    check_void (P.rpc_cudaMemset t.rpc (tr t ptr) value (Int64.of_int len))
  in
  issue ();
  journal t issue

let mem_get_info t =
  let r = P.rpc_cudaMemGetInfo t.rpc () in
  check r.Proto.err;
  (r.Proto.free_bytes, r.Proto.total_bytes)

(* --- stream-ordered (one-way) operations ---

   These stubs return as soon as the record is written; no reply exists.
   Server-side failures latch and surface at the next synchronizing call
   (stream_synchronize / device_synchronize / memcpy_d2h_stream). *)

let memcpy_h2d_async t ~dst ~stream data =
  t.memcpy_up <- t.memcpy_up + Bytes.length data;
  let issue () =
    P.rpc_cudaMemcpyHtoDAsync t.rpc (tr t dst) data (tr t stream)
  in
  issue ();
  journal t issue

let memset_async t ~ptr ~value ~len ~stream =
  let issue () =
    P.rpc_cudaMemsetAsync t.rpc (tr t ptr) value (Int64.of_int len)
      (tr t stream)
  in
  issue ();
  journal t issue

let memcpy_d2h_stream t ~src ~len ~stream =
  t.memcpy_down <- t.memcpy_down + len;
  call_mem_slice t ~proc:P.proc_rpc_cudaMemcpyDtoHAsync (fun enc ->
      Xdr.Encode.uint64 enc (tr t src);
      Xdr.Encode.uint64 enc (Int64.of_int len);
      Xdr.Encode.uint64 enc (tr t stream))

(* --- streams and events --- *)

let stream_create t =
  let issue () = check_u64 (P.rpc_cudaStreamCreate t.rpc ()) in
  let h = issue () in
  (match t.recovery with
  | None -> ()
  | Some r -> journal t (fun () -> set_remap r ~old:h ~fresh:(issue ())));
  h

let stream_destroy t h =
  let issue () = check_void (P.rpc_cudaStreamDestroy t.rpc (tr t h)) in
  issue ();
  journal t issue

let stream_synchronize t h =
  check_void (P.rpc_cudaStreamSynchronize t.rpc (tr t h))

let event_create t =
  let issue () = check_u64 (P.rpc_cudaEventCreate t.rpc ()) in
  let h = issue () in
  (match t.recovery with
  | None -> ()
  | Some r -> journal t (fun () -> set_remap r ~old:h ~fresh:(issue ())));
  h

let event_destroy t h =
  let issue () = check_void (P.rpc_cudaEventDestroy t.rpc (tr t h)) in
  issue ();
  journal t issue

let event_record t ~event ~stream =
  let issue () =
    check_void (P.rpc_cudaEventRecord t.rpc (tr t event) (tr t stream))
  in
  issue ();
  journal t issue

let event_synchronize t h =
  check_void (P.rpc_cudaEventSynchronize t.rpc (tr t h))

let event_elapsed_ms t ~start ~stop =
  check_float (P.rpc_cudaEventElapsedTime t.rpc (tr t start) (tr t stop))

let stream_wait_event t ~stream ~event =
  let issue () =
    P.rpc_cudaStreamWaitEvent t.rpc (tr t stream) (tr t event)
  in
  issue ();
  journal t issue

let event_record_async t ~event ~stream =
  let issue () =
    P.rpc_cudaEventRecordAsync t.rpc (tr t event) (tr t stream)
  in
  issue ();
  journal t issue

(* --- modules and launches --- *)

let parse_module_metadata data =
  if Cubin.Fatbin.is_fatbin data then begin
    match Cubin.Fatbin.parse data with
    | Error _ -> None
    | Ok fatbin -> (
        (* Keep metadata of the newest-arch image; the server picks per
           device, but parameter layouts are identical across arches. *)
        match fatbin.Cubin.Fatbin.images with
        | [] -> None
        | images -> (
            let _, best =
              List.fold_left
                (fun ((bcc, _) as best) ((cc, img) : (int * int) * string) ->
                  if cc > bcc then (cc, img) else best)
                (List.hd images |> fun (cc, img) -> (cc, img))
                images
            in
            match Cubin.Image.parse best with Ok i -> Some i | Error _ -> None))
  end
  else
    match Cubin.Image.parse data with Ok i -> Some i | Error _ -> None

let module_load t data =
  match parse_module_metadata data with
  | None -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_value)
  | Some image ->
      let issue () =
        check_u64 (P.rpc_cuModuleLoadData t.rpc (Bytes.of_string data))
      in
      let handle = issue () in
      Hashtbl.replace t.modules handle image;
      (match t.recovery with
      | None -> ()
      | Some r ->
          journal t (fun () -> set_remap r ~old:handle ~fresh:(issue ())));
      handle

let module_load_file t path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  module_load t data

let module_unload t handle =
  let issue () = check_void (P.rpc_cuModuleUnload t.rpc (tr t handle)) in
  issue ();
  journal t issue;
  Hashtbl.remove t.modules handle

let get_function t ~modul ~name =
  let info =
    match Hashtbl.find_opt t.modules modul with
    | None -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_handle)
    | Some image -> (
        match Cubin.Image.find_kernel image name with
        | None -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Not_found)
        | Some info -> info)
  in
  let issue () =
    check_u64 (P.rpc_cuModuleGetFunction t.rpc (tr t modul) name)
  in
  let handle = issue () in
  (match t.recovery with
  | None -> ()
  | Some r -> journal t (fun () -> set_remap r ~old:handle ~fresh:(issue ())));
  { handle; info }

let get_global t ~modul ~name =
  let issue () =
    let r = P.rpc_cuModuleGetGlobal t.rpc (tr t modul) name in
    check r.Proto.err;
    (r.Proto.ptr, Int64.to_int r.Proto.size)
  in
  let ptr, size = issue () in
  (match t.recovery with
  | None -> ()
  | Some r ->
      (* read-only, but the returned device pointer is a handle the app
         will pass back — keep its remap fresh across replays *)
      journal t (fun () -> set_remap r ~old:ptr ~fresh:(fst (issue ()))));
  (ptr, size)

let tr_args t args =
  match t.recovery with
  | None -> args
  | Some _ ->
      Array.map
        (function
          | Gpusim.Kernels.Ptr p ->
              Gpusim.Kernels.Ptr (Int64.to_int (tr t (Int64.of_int p)))
          | a -> a)
        args

let launch t func ~grid ~block ?(shared_mem = 0) ?(stream = 0L) args =
  if t.launch_extra_ns > 0 then t.charge t.launch_extra_ns;
  let issue () =
    match Cubin.Image.pack_args func.info (tr_args t args) with
    | Error _ -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_value)
    | Ok params ->
        check_void
          (P.rpc_cuLaunchKernel t.rpc
             {
               Proto.function_handle = tr t func.handle;
               grid_x = grid.x;
               grid_y = grid.y;
               grid_z = grid.z;
               block_x = block.x;
               block_y = block.y;
               block_z = block.z;
               shared_mem_bytes = shared_mem;
               stream = tr t stream;
             }
             params)
  in
  issue ();
  journal t issue

let launch_async t func ~grid ~block ?(shared_mem = 0) ~stream args =
  if t.launch_extra_ns > 0 then t.charge t.launch_extra_ns;
  let issue () =
    match Cubin.Image.pack_args func.info (tr_args t args) with
    | Error _ -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_value)
    | Ok params ->
        P.rpc_cuLaunchKernelAsync t.rpc
          {
            Proto.function_handle = tr t func.handle;
            grid_x = grid.x;
            grid_y = grid.y;
            grid_z = grid.z;
            block_x = block.x;
            block_y = block.y;
            block_z = block.z;
            shared_mem_bytes = shared_mem;
            stream = tr t stream;
          }
          params
  in
  issue ();
  journal t issue

(* --- cuBLAS / cuSOLVER --- *)

let cublas_create t =
  let issue () = check_u64 (P.rpc_cublasCreate t.rpc ()) in
  let h = issue () in
  (match t.recovery with
  | None -> ()
  | Some r -> journal t (fun () -> set_remap r ~old:h ~fresh:(issue ())));
  h

let cublas_destroy t h =
  let issue () = check_void (P.rpc_cublasDestroy t.rpc (tr t h)) in
  issue ();
  journal t issue

let cublas_sgemm t ~handle ~m ~n ~k ~alpha ~a ~lda ~b ~ldb ~beta ~c ~ldc =
  let issue () =
    check_void
      (P.rpc_cublasSgemm t.rpc
         {
           Proto.handle = tr t handle;
           m;
           n;
           k;
           alpha;
           a = tr t a;
           lda;
           b = tr t b;
           ldb;
           beta;
           c = tr t c;
           ldc;
         })
  in
  issue ();
  journal t issue

let cublas_sgemv t ~handle ~m ~n ~alpha ~a ~lda ~x ~incx ~beta ~y ~incy =
  let issue () =
    check_void
      (P.rpc_cublasSgemv t.rpc
         {
           Proto.handle = tr t handle;
           m;
           n;
           alpha;
           a = tr t a;
           lda;
           x = tr t x;
           incx;
           beta;
           y = tr t y;
           incy;
         })
  in
  issue ();
  journal t issue

let cublas_sdot t ~handle ~n ~x ~incx ~y ~incy =
  check_float
    (P.rpc_cublasSdot t.rpc
       { Proto.handle = tr t handle; n; x = tr t x; incx; y = tr t y; incy })

let cublas_sscal t ~handle ~n ~alpha ~x ~incx =
  let issue () =
    check_void
      (P.rpc_cublasSscal t.rpc
         { Proto.handle = tr t handle; n; alpha; x = tr t x; incx })
  in
  issue ();
  journal t issue

let cublas_snrm2 t ~handle ~n ~x ~incx =
  check_float
    (P.rpc_cublasSnrm2 t.rpc { Proto.handle = tr t handle; n; x = tr t x; incx })

let cusolver_create t =
  let issue () = check_u64 (P.rpc_cusolverDnCreate t.rpc ()) in
  let h = issue () in
  (match t.recovery with
  | None -> ()
  | Some r -> journal t (fun () -> set_remap r ~old:h ~fresh:(issue ())));
  h

let cusolver_destroy t h =
  let issue () = check_void (P.rpc_cusolverDnDestroy t.rpc (tr t h)) in
  issue ();
  journal t issue

let cusolver_sgetrf_buffer_size t ~handle ~m ~n ~a ~lda =
  check_int
    (P.rpc_cusolverDnSgetrf_bufferSize t.rpc
       { Proto.handle = tr t handle; m; n; a = tr t a; lda })

let cusolver_sgetrf t ~handle ~m ~n ~a ~lda ~workspace ~ipiv =
  let issue () =
    check_int
      (P.rpc_cusolverDnSgetrf t.rpc
         {
           Proto.handle = tr t handle;
           m;
           n;
           a = tr t a;
           lda;
           workspace = tr t workspace;
           ipiv = tr t ipiv;
         })
  in
  let info = issue () in
  journal t (fun () -> ignore (issue ()));
  info

let cusolver_sgetrs t ~handle ~n ~nrhs ~a ~lda ~ipiv ~b ~ldb =
  let issue () =
    check_int
      (P.rpc_cusolverDnSgetrs t.rpc
         {
           Proto.handle = tr t handle;
           n;
           nrhs;
           a = tr t a;
           lda;
           ipiv = tr t ipiv;
           b = tr t b;
           ldb;
         })
  in
  let info = issue () in
  journal t (fun () -> ignore (issue ()));
  info

(* --- checkpoint / restart --- *)

let checkpoint t name = check_void (P.rpc_checkpoint t.rpc name)
let restore t name = check_void (P.rpc_restore t.rpc name)

(* --- live migration (source side drives these at a destination) --- *)

let migrate_begin t tenant = check_void (P.rpc_migrate_begin t.rpc tenant)
let migrate_base t data = check_void (P.rpc_migrate_base t.rpc data)
let migrate_delta t data = check_void (P.rpc_migrate_delta t.rpc data)

let migrate_commit t ~tenant blob =
  check_void (P.rpc_migrate_commit t.rpc tenant blob)

let migrate_abort t tenant = check_void (P.rpc_migrate_abort t.rpc tenant)
