module P = Proto.Rpc_cd_prog_def_v1.Client

type func = { handle : int64; info : Cubin.Image.kernel_info }

type dim3 = Gpusim.Kernels.dim3 = { x : int; y : int; z : int }

type t = {
  rpc : Oncrpc.Client.t;
  launch_extra_ns : int;
  charge : int -> unit;
  (* kernel metadata per loaded module, parsed client-side *)
  modules : (int64, Cubin.Image.t) Hashtbl.t;
  mutable memcpy_up : int;
  mutable memcpy_down : int;
}

let create ?(launch_extra_ns = 0) ?(charge = fun _ -> ()) ?fragment_size
    ~transport () =
  {
    rpc = P.create ?fragment_size ~transport ();
    launch_extra_ns;
    charge;
    modules = Hashtbl.create 4;
    memcpy_up = 0;
    memcpy_down = 0;
  }

let close t = Oncrpc.Client.close t.rpc
let api_calls t = (Oncrpc.Client.stats t.rpc).Oncrpc.Client.calls
let bytes_to_server t = (Oncrpc.Client.stats t.rpc).Oncrpc.Client.bytes_sent

let bytes_from_server t =
  (Oncrpc.Client.stats t.rpc).Oncrpc.Client.bytes_received

let charge_host t ns = t.charge ns
let memcpy_bytes_up t = t.memcpy_up
let memcpy_bytes_down t = t.memcpy_down

let check err = Cudasim.Error.check (Cudasim.Error.of_code err)

let check_void (r : Proto.void_result) = check r.Proto.err

let check_int (r : Proto.int_result) =
  check r.Proto.err;
  r.Proto.data

let check_u64 (r : Proto.u64_result) =
  check r.Proto.err;
  r.Proto.data

let check_mem (r : Proto.mem_result) =
  check r.Proto.err;
  r.Proto.data

let check_float (r : Proto.float_result) =
  check r.Proto.err;
  r.Proto.data

(* --- device management --- *)

let get_device_count t = check_int (P.rpc_cudaGetDeviceCount t.rpc ())
let set_device t i = check_void (P.rpc_cudaSetDevice t.rpc i)
let get_device t = check_int (P.rpc_cudaGetDevice t.rpc ())

type device_properties = {
  name : string;
  total_global_mem : int64;
  multi_processor_count : int;
  clock_rate_khz : int;
  compute_major : int;
  compute_minor : int;
  memory_bandwidth : int64;
}

let get_device_properties t i =
  let r = P.rpc_cudaGetDeviceProperties t.rpc i in
  check r.Proto.err;
  let p = r.Proto.props in
  {
    name = p.Proto.name;
    total_global_mem = p.Proto.total_global_mem;
    multi_processor_count = p.Proto.multi_processor_count;
    clock_rate_khz = p.Proto.clock_rate_khz;
    compute_major = p.Proto.compute_major;
    compute_minor = p.Proto.compute_minor;
    memory_bandwidth = p.Proto.memory_bandwidth;
  }

let device_synchronize t = check_void (P.rpc_cudaDeviceSynchronize t.rpc ())
let device_reset t = check_void (P.rpc_cudaDeviceReset t.rpc ())

(* --- memory --- *)

let malloc t size = check_u64 (P.rpc_cudaMalloc t.rpc (Int64.of_int size))
let free t ptr = check_void (P.rpc_cudaFree t.rpc ptr)
let memcpy_h2d t ~dst data =
  t.memcpy_up <- t.memcpy_up + Bytes.length data;
  check_void (P.rpc_cudaMemcpyHtoD t.rpc dst data)

let memcpy_d2h t ~src ~len =
  t.memcpy_down <- t.memcpy_down + len;
  check_mem (P.rpc_cudaMemcpyDtoH t.rpc src (Int64.of_int len))

let memcpy_d2d t ~dst ~src ~len =
  check_void (P.rpc_cudaMemcpyDtoD t.rpc dst src (Int64.of_int len))

let memset t ~ptr ~value ~len =
  check_void (P.rpc_cudaMemset t.rpc ptr value (Int64.of_int len))

let mem_get_info t =
  let r = P.rpc_cudaMemGetInfo t.rpc () in
  check r.Proto.err;
  (r.Proto.free_bytes, r.Proto.total_bytes)

(* --- stream-ordered (one-way) operations ---

   These stubs return as soon as the record is written; no reply exists.
   Server-side failures latch and surface at the next synchronizing call
   (stream_synchronize / device_synchronize / memcpy_d2h_stream). *)

let memcpy_h2d_async t ~dst ~stream data =
  t.memcpy_up <- t.memcpy_up + Bytes.length data;
  P.rpc_cudaMemcpyHtoDAsync t.rpc dst data stream

let memset_async t ~ptr ~value ~len ~stream =
  P.rpc_cudaMemsetAsync t.rpc ptr value (Int64.of_int len) stream

let memcpy_d2h_stream t ~src ~len ~stream =
  t.memcpy_down <- t.memcpy_down + len;
  check_mem (P.rpc_cudaMemcpyDtoHAsync t.rpc src (Int64.of_int len) stream)

(* --- streams and events --- *)

let stream_create t = check_u64 (P.rpc_cudaStreamCreate t.rpc ())
let stream_destroy t h = check_void (P.rpc_cudaStreamDestroy t.rpc h)
let stream_synchronize t h = check_void (P.rpc_cudaStreamSynchronize t.rpc h)
let event_create t = check_u64 (P.rpc_cudaEventCreate t.rpc ())
let event_destroy t h = check_void (P.rpc_cudaEventDestroy t.rpc h)

let event_record t ~event ~stream =
  check_void (P.rpc_cudaEventRecord t.rpc event stream)

let event_synchronize t h = check_void (P.rpc_cudaEventSynchronize t.rpc h)

let event_elapsed_ms t ~start ~stop =
  check_float (P.rpc_cudaEventElapsedTime t.rpc start stop)

let stream_wait_event t ~stream ~event =
  P.rpc_cudaStreamWaitEvent t.rpc stream event

let event_record_async t ~event ~stream =
  P.rpc_cudaEventRecordAsync t.rpc event stream

(* --- modules and launches --- *)

let parse_module_metadata data =
  if Cubin.Fatbin.is_fatbin data then begin
    match Cubin.Fatbin.parse data with
    | Error _ -> None
    | Ok fatbin -> (
        (* Keep metadata of the newest-arch image; the server picks per
           device, but parameter layouts are identical across arches. *)
        match fatbin.Cubin.Fatbin.images with
        | [] -> None
        | images -> (
            let _, best =
              List.fold_left
                (fun ((bcc, _) as best) ((cc, img) : (int * int) * string) ->
                  if cc > bcc then (cc, img) else best)
                (List.hd images |> fun (cc, img) -> (cc, img))
                images
            in
            match Cubin.Image.parse best with Ok i -> Some i | Error _ -> None))
  end
  else
    match Cubin.Image.parse data with Ok i -> Some i | Error _ -> None

let module_load t data =
  match parse_module_metadata data with
  | None -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_value)
  | Some image ->
      let handle = check_u64 (P.rpc_cuModuleLoadData t.rpc (Bytes.of_string data)) in
      Hashtbl.replace t.modules handle image;
      handle

let module_load_file t path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  module_load t data

let module_unload t handle =
  check_void (P.rpc_cuModuleUnload t.rpc handle);
  Hashtbl.remove t.modules handle

let get_function t ~modul ~name =
  let info =
    match Hashtbl.find_opt t.modules modul with
    | None -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_handle)
    | Some image -> (
        match Cubin.Image.find_kernel image name with
        | None -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Not_found)
        | Some info -> info)
  in
  let handle = check_u64 (P.rpc_cuModuleGetFunction t.rpc modul name) in
  { handle; info }

let get_global t ~modul ~name =
  let r = P.rpc_cuModuleGetGlobal t.rpc modul name in
  check r.Proto.err;
  (r.Proto.ptr, Int64.to_int r.Proto.size)

let launch t func ~grid ~block ?(shared_mem = 0) ?(stream = 0L) args =
  if t.launch_extra_ns > 0 then t.charge t.launch_extra_ns;
  match Cubin.Image.pack_args func.info args with
  | Error _ -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_value)
  | Ok params ->
      check_void
        (P.rpc_cuLaunchKernel t.rpc
           {
             Proto.function_handle = func.handle;
             grid_x = grid.x;
             grid_y = grid.y;
             grid_z = grid.z;
             block_x = block.x;
             block_y = block.y;
             block_z = block.z;
             shared_mem_bytes = shared_mem;
             stream;
           }
           params)

let launch_async t func ~grid ~block ?(shared_mem = 0) ~stream args =
  if t.launch_extra_ns > 0 then t.charge t.launch_extra_ns;
  match Cubin.Image.pack_args func.info args with
  | Error _ -> raise (Cudasim.Error.Cuda_error Cudasim.Error.Invalid_value)
  | Ok params ->
      P.rpc_cuLaunchKernelAsync t.rpc
        {
          Proto.function_handle = func.handle;
          grid_x = grid.x;
          grid_y = grid.y;
          grid_z = grid.z;
          block_x = block.x;
          block_y = block.y;
          block_z = block.z;
          shared_mem_bytes = shared_mem;
          stream;
        }
        params

(* --- cuBLAS / cuSOLVER --- *)

let cublas_create t = check_u64 (P.rpc_cublasCreate t.rpc ())
let cublas_destroy t h = check_void (P.rpc_cublasDestroy t.rpc h)

let cublas_sgemm t ~handle ~m ~n ~k ~alpha ~a ~lda ~b ~ldb ~beta ~c ~ldc =
  check_void
    (P.rpc_cublasSgemm t.rpc
       { Proto.handle; m; n; k; alpha; a; lda; b; ldb; beta; c; ldc })

let cublas_sgemv t ~handle ~m ~n ~alpha ~a ~lda ~x ~incx ~beta ~y ~incy =
  check_void
    (P.rpc_cublasSgemv t.rpc
       { Proto.handle; m; n; alpha; a; lda; x; incx; beta; y; incy })

let cublas_sdot t ~handle ~n ~x ~incx ~y ~incy =
  check_float (P.rpc_cublasSdot t.rpc { Proto.handle; n; x; incx; y; incy })

let cublas_sscal t ~handle ~n ~alpha ~x ~incx =
  check_void (P.rpc_cublasSscal t.rpc { Proto.handle; n; alpha; x; incx })

let cublas_snrm2 t ~handle ~n ~x ~incx =
  check_float (P.rpc_cublasSnrm2 t.rpc { Proto.handle; n; x; incx })

let cusolver_create t = check_u64 (P.rpc_cusolverDnCreate t.rpc ())
let cusolver_destroy t h = check_void (P.rpc_cusolverDnDestroy t.rpc h)

let cusolver_sgetrf_buffer_size t ~handle ~m ~n ~a ~lda =
  check_int
    (P.rpc_cusolverDnSgetrf_bufferSize t.rpc { Proto.handle; m; n; a; lda })

let cusolver_sgetrf t ~handle ~m ~n ~a ~lda ~workspace ~ipiv =
  check_int
    (P.rpc_cusolverDnSgetrf t.rpc { Proto.handle; m; n; a; lda; workspace; ipiv })

let cusolver_sgetrs t ~handle ~n ~nrhs ~a ~lda ~ipiv ~b ~ldb =
  check_int
    (P.rpc_cusolverDnSgetrs t.rpc { Proto.handle; n; nrhs; a; lda; ipiv; b; ldb })

(* --- checkpoint / restart --- *)

let checkpoint t name = check_void (P.rpc_checkpoint t.rpc name)
let restore t name = check_void (P.rpc_restore t.rpc name)
