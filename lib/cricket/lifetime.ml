exception Use_after_free
exception Double_free

let () =
  Printexc.register_printer (function
    | Use_after_free -> Some "Cricket.Lifetime.Use_after_free"
    | Double_free -> Some "Cricket.Lifetime.Double_free"
    | _ -> None)

type t = {
  client : Client.t;
  device_ptr : int64;
  length : int;
  mutable live : bool;
}

let alloc client n =
  if n <= 0 then invalid_arg "Lifetime.alloc: size must be positive";
  { client; device_ptr = Client.malloc client n; length = n; live = true }

let ensure_live t = if not t.live then raise Use_after_free

let ptr t =
  ensure_live t;
  t.device_ptr

let size t = t.length
let is_live t = t.live

let free t =
  if not t.live then raise Double_free;
  t.live <- false;
  Client.free t.client t.device_ptr

let check_bounds t ~offset ~len =
  if offset < 0 || len < 0 || offset + len > t.length then
    invalid_arg "Lifetime: access outside buffer"

let upload_at t ~offset data =
  ensure_live t;
  check_bounds t ~offset ~len:(Bytes.length data);
  Client.memcpy_h2d t.client
    ~dst:(Int64.add t.device_ptr (Int64.of_int offset))
    data

let upload t data = upload_at t ~offset:0 data

let download_part t ~offset ~len =
  ensure_live t;
  check_bounds t ~offset ~len;
  Client.memcpy_d2h t.client
    ~src:(Int64.add t.device_ptr (Int64.of_int offset))
    ~len

let same_client t stream op =
  if Stream.client stream != t.client then
    invalid_arg (op ^ ": stream belongs to a different client")

(* Stream variants check liveness twice: at enqueue (fail fast) and again
   inside the deferred command, so freeing a buffer between enqueue and
   flush still raises Use_after_free instead of touching freed memory. *)
let upload_async t stream data =
  ensure_live t;
  same_client t stream "Lifetime.upload_async";
  check_bounds t ~offset:0 ~len:(Bytes.length data);
  Stream.submit stream (fun () ->
      ensure_live t;
      Client.memcpy_h2d_async t.client ~dst:t.device_ptr
        ~stream:(Stream.handle stream) data)

let fill_async t stream value =
  ensure_live t;
  same_client t stream "Lifetime.fill_async";
  Stream.submit stream (fun () ->
      ensure_live t;
      Client.memset_async t.client ~ptr:t.device_ptr ~value ~len:t.length
        ~stream:(Stream.handle stream))

let download ?stream t =
  match stream with
  | None -> download_part t ~offset:0 ~len:t.length
  | Some s ->
      ensure_live t;
      same_client t s "Lifetime.download";
      Stream.download s ~src:t.device_ptr ~len:t.length

let fill t value =
  ensure_live t;
  Client.memset t.client ~ptr:t.device_ptr ~value ~len:t.length

let with_buffer client n f =
  let t = alloc client n in
  Fun.protect ~finally:(fun () -> if t.live then free t) (fun () -> f t)
