(* Split a raw byte stream of record-marked fragments into records. The
   RPC client always writes whole records before reading, so the buffered
   request passed to the loopback peer contains complete records. *)
let records_of_stream stream =
  let rec loop pos acc current =
    if pos >= String.length stream then List.rev acc
    else begin
      let last, len = Oncrpc.Record.decode_header (String.sub stream pos 4) in
      let fragment = String.sub stream (pos + 4) len in
      let current = fragment :: current in
      if last then
        loop (pos + 4 + len) (String.concat "" (List.rev current) :: acc) []
      else loop (pos + 4 + len) acc current
    end
  in
  loop 0 [] []

let transport_of_dispatch dispatch =
  Oncrpc.Transport.loopback ~peer:(fun request ->
      records_of_stream request
      |> List.filter_map (fun record ->
             match dispatch record with
             | "" -> None (* one-way call: no reply record *)
             | reply -> Some (Oncrpc.Record.to_wire reply))
      |> String.concat "")

let transport server = transport_of_dispatch (Server.dispatch server)

let transport_for server ~tenant =
  transport_of_dispatch (fun request ->
      Server.dispatch_for server ~tenant request)

let connect server = Client.create ~transport:(transport server) ()

let connect_for server ~tenant =
  Client.create ~transport:(transport_for server ~tenant) ()
