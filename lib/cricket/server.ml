module P = Proto.Rpc_cd_prog_def_v1

(* Multi-tenant serving hooks (installed by [Tenancy.Core]): the server
   stays tenancy-agnostic but exposes the interception points a serving
   core needs — an admission gate evaluated before dispatch, and
   per-tenant accounting of device allocations and streams so leases can
   cap and reclaim them. *)
type reject = [ `Lease_expired | `Over_quota | `Overloaded ]

let reject_to_auth_stat : reject -> Oncrpc.Message.auth_stat = function
  | `Lease_expired -> Oncrpc.Message.Auth_rejectedcred
  | `Over_quota -> Oncrpc.Message.Auth_tooweak
  | `Overloaded -> Oncrpc.Message.Auth_failed

let reject_of_auth_stat : Oncrpc.Message.auth_stat -> reject option = function
  | Oncrpc.Message.Auth_rejectedcred -> Some `Lease_expired
  | Oncrpc.Message.Auth_tooweak -> Some `Over_quota
  | Oncrpc.Message.Auth_failed -> Some `Overloaded
  | _ -> None

type tenant_hooks = {
  admit : tenant:string -> reject option;
      (** evaluated once per dispatched request; [Some r] denies the call
          with an auth rejection carrying [r] *)
  malloc_allowed : tenant:string -> size:int64 -> bool;
  note_malloc : tenant:string -> ptr:int64 -> size:int64 -> unit;
  note_free : tenant:string -> ptr:int64 -> unit;
  stream_allowed : tenant:string -> bool;
  note_stream_create : tenant:string -> handle:int64 -> unit;
  note_stream_destroy : tenant:string -> handle:int64 -> unit;
}

(* An in-progress inbound migration (this server is the destination).
   State installed before the base snapshot lands is refused; commit is
   only honoured for the tenant that began the migration. *)
type inbound = { in_tenant : string; mutable in_base : bool }

type t = {
  rpc : Oncrpc.Server.t;
  ctx : Cudasim.Context.t;
  checkpoint_dir : string;
  (* creation parameters, kept so a crashed server can be respawned as the
     same kind of process (fresh state, same GPUs, clock and checkpoints) *)
  spawn_devices : Gpusim.Device.t list option;
  spawn_memory_capacity : int option;
  spawn_capacity_clamp : int option;
  spawn_clock : Cudasim.Context.clock;
  mutable calls : int;
  per_proc : (int, int) Hashtbl.t;
  per_device : (int, int) Hashtbl.t;
  per_tenant : (string, int) Hashtbl.t;
  mutable current_tenant : string option;
  mutable tenant_hooks : tenant_hooks option;
  mutable inbound : inbound option;
  mutable adopt_lease : (tenant:string -> blob:string -> bool) option;
  mutable migrations_in : int;
  trace : Trace.t;
  mutable last_proc : int;
  mutable last_arg_bytes : int;
}

(* The dispatch path is synchronous, so the tenant of the in-flight call
   lives in a single mutable slot set by [dispatch_for]. *)
let hooked t =
  match (t.tenant_hooks, t.current_tenant) with
  | Some h, Some tenant -> Some (h, tenant)
  | _ -> None

let tenant_malloc_allowed t size =
  match hooked t with
  | Some (h, tenant) -> h.malloc_allowed ~tenant ~size
  | None -> true

let tenant_note_malloc t ~ptr ~size =
  match hooked t with
  | Some (h, tenant) -> h.note_malloc ~tenant ~ptr ~size
  | None -> ()

let tenant_note_free t ~ptr =
  match hooked t with
  | Some (h, tenant) -> h.note_free ~tenant ~ptr
  | None -> ()

let tenant_stream_allowed t =
  match hooked t with
  | Some (h, tenant) -> h.stream_allowed ~tenant
  | None -> true

let tenant_note_stream_create t ~handle =
  match hooked t with
  | Some (h, tenant) -> h.note_stream_create ~tenant ~handle
  | None -> ()

let tenant_note_stream_destroy t ~handle =
  match hooked t with
  | Some (h, tenant) -> h.note_stream_destroy ~tenant ~handle
  | None -> ()

let err_of = Cudasim.Error.code

let void_result e : Proto.void_result = { Proto.err = err_of e }

let int_result_ok v : Proto.int_result = { Proto.err = 0; data = v }

let int_result e : Proto.int_result = { Proto.err = err_of e; data = 0 }

let u64_result_ok v : Proto.u64_result = { Proto.err = 0; data = v }

let u64_result e : Proto.u64_result = { Proto.err = err_of e; data = 0L }

let mem_result_ok data : Proto.mem_result = { Proto.err = 0; data }

let mem_result e : Proto.mem_result = { Proto.err = err_of e; data = Bytes.empty }

let float_result_ok v : Proto.float_result = { Proto.err = 0; data = v }

let float_result e : Proto.float_result = { Proto.err = err_of e; data = 0.0 }

(* Checkpoint paths are confined to the configured directory. *)
let resolve_checkpoint_path t name =
  if String.length name = 0 || String.contains name '/' || name = ".." then
    None
  else Some (Filename.concat t.checkpoint_dir name)

let implementation t : P.Server.implementation =
  let ctx = t.ctx in
  {
    P.Server.rpc_cudaGetDeviceCount =
      (fun () -> int_result_ok (Cudasim.Api.get_device_count ctx));
    rpc_cudaSetDevice = (fun i -> void_result (Cudasim.Api.set_device ctx i));
    rpc_cudaGetDevice = (fun () -> int_result_ok (Cudasim.Api.get_device ctx));
    rpc_cudaGetDeviceProperties =
      (fun i ->
        match Cudasim.Api.get_device_properties ctx i with
        | Ok p ->
            {
              Proto.err = 0;
              props =
                {
                  Proto.name = p.Cudasim.Api.name;
                  total_global_mem = p.Cudasim.Api.total_global_mem;
                  multi_processor_count = p.Cudasim.Api.multi_processor_count;
                  clock_rate_khz = p.Cudasim.Api.clock_rate_khz;
                  compute_major = p.Cudasim.Api.compute_major;
                  compute_minor = p.Cudasim.Api.compute_minor;
                  memory_bandwidth = p.Cudasim.Api.memory_bandwidth;
                };
            }
        | Error e ->
            {
              Proto.err = err_of e;
              props =
                {
                  Proto.name = "";
                  total_global_mem = 0L;
                  multi_processor_count = 0;
                  clock_rate_khz = 0;
                  compute_major = 0;
                  compute_minor = 0;
                  memory_bandwidth = 0L;
                };
            });
    rpc_cudaDeviceSynchronize =
      (fun () -> void_result (Cudasim.Api.device_synchronize ctx));
    rpc_cudaDeviceReset = (fun () -> void_result (Cudasim.Api.device_reset ctx));
    rpc_cudaMalloc =
      (fun size ->
        (* the lease cap rejects like device OOM would: the tenant sees
           cudaErrorMemoryAllocation, other tenants' memory stays safe *)
        if not (tenant_malloc_allowed t size) then
          u64_result Cudasim.Error.Memory_allocation
        else
          match Cudasim.Api.malloc ctx size with
          | Ok ptr ->
              tenant_note_malloc t ~ptr ~size;
              u64_result_ok ptr
          | Error e -> u64_result e);
    rpc_cudaFree =
      (fun ptr ->
        let e = Cudasim.Api.free ctx ptr in
        (match e with
        | Cudasim.Error.Success -> tenant_note_free t ~ptr
        | _ -> ());
        void_result e);
    rpc_cudaMemcpyHtoD =
      (fun dst data -> void_result (Cudasim.Api.memcpy_h2d ctx ~dst data));
    rpc_cudaMemcpyDtoH =
      (fun src len ->
        match Cudasim.Api.memcpy_d2h ctx ~src ~len with
        | Ok data -> mem_result_ok data
        | Error e -> mem_result e);
    rpc_cudaMemcpyDtoD =
      (fun dst src len -> void_result (Cudasim.Api.memcpy_d2d ctx ~dst ~src ~len));
    rpc_cudaMemset =
      (fun ptr value len -> void_result (Cudasim.Api.memset ctx ~ptr ~value ~len));
    rpc_cudaMemGetInfo =
      (fun () ->
        let free_bytes, total_bytes = Cudasim.Api.mem_get_info ctx in
        { Proto.err = 0; free_bytes; total_bytes });
    rpc_cudaMemcpyHtoDAsync =
      (fun dst data stream -> Cudasim.Api.memcpy_h2d_async ctx ~dst data ~stream);
    rpc_cudaMemsetAsync =
      (fun ptr value len stream ->
        Cudasim.Api.memset_async ctx ~ptr ~value ~len ~stream);
    rpc_cudaMemcpyDtoHAsync =
      (fun src len stream ->
        match Cudasim.Api.memcpy_d2h_stream ctx ~src ~len ~stream with
        | Ok data -> mem_result_ok data
        | Error e -> mem_result e);
    rpc_cudaStreamCreate =
      (fun () ->
        if not (tenant_stream_allowed t) then
          u64_result Cudasim.Error.Memory_allocation
        else begin
          let h = Cudasim.Api.stream_create ctx in
          tenant_note_stream_create t ~handle:h;
          u64_result_ok h
        end);
    rpc_cudaStreamDestroy =
      (fun h ->
        let e = Cudasim.Api.stream_destroy ctx h in
        (match e with
        | Cudasim.Error.Success -> tenant_note_stream_destroy t ~handle:h
        | _ -> ());
        void_result e);
    rpc_cudaStreamSynchronize =
      (fun h -> void_result (Cudasim.Api.stream_synchronize ctx h));
    rpc_cudaEventCreate = (fun () -> u64_result_ok (Cudasim.Api.event_create ctx));
    rpc_cudaEventDestroy =
      (fun h -> void_result (Cudasim.Api.event_destroy ctx h));
    rpc_cudaEventRecord =
      (fun event stream -> void_result (Cudasim.Api.event_record ctx ~event ~stream));
    rpc_cudaEventSynchronize =
      (fun h -> void_result (Cudasim.Api.event_synchronize ctx h));
    rpc_cudaEventElapsedTime =
      (fun start stop ->
        match Cudasim.Api.event_elapsed_ms ctx ~start ~stop with
        | Ok ms -> float_result_ok ms
        | Error e -> float_result e);
    rpc_cudaStreamWaitEvent =
      (fun stream event -> Cudasim.Api.stream_wait_event ctx ~stream ~event);
    rpc_cudaEventRecordAsync =
      (fun event stream -> Cudasim.Api.event_record_async ctx ~event ~stream);
    rpc_cuModuleLoadData =
      (fun data ->
        match Cudasim.Api.module_load_data ctx (Bytes.to_string data) with
        | Ok h -> u64_result_ok h
        | Error e -> u64_result e);
    rpc_cuModuleUnload = (fun h -> void_result (Cudasim.Api.module_unload ctx h));
    rpc_cuModuleGetFunction =
      (fun modul name ->
        match Cudasim.Api.module_get_function ctx ~modul ~name with
        | Ok h -> u64_result_ok h
        | Error e -> u64_result e);
    rpc_cuModuleGetGlobal =
      (fun modul name ->
        match Cudasim.Api.module_get_global ctx ~modul ~name with
        | Ok (ptr, size) -> { Proto.err = 0; ptr; size }
        | Error e -> { Proto.err = err_of e; ptr = 0L; size = 0L });
    rpc_cuLaunchKernel =
      (fun (config : Proto.launch_config) params ->
        let open Gpusim.Kernels in
        void_result
          (Cudasim.Api.launch_kernel ctx
             {
               Cudasim.Api.function_handle = config.Proto.function_handle;
               grid =
                 { x = config.Proto.grid_x; y = config.Proto.grid_y;
                   z = config.Proto.grid_z };
               block =
                 { x = config.Proto.block_x; y = config.Proto.block_y;
                   z = config.Proto.block_z };
               shared_mem_bytes = config.Proto.shared_mem_bytes;
               stream = config.Proto.stream;
             }
             ~params));
    rpc_cuLaunchKernelAsync =
      (fun (config : Proto.launch_config) params ->
        let open Gpusim.Kernels in
        Cudasim.Api.launch_kernel_async ctx
          {
            Cudasim.Api.function_handle = config.Proto.function_handle;
            grid =
              { x = config.Proto.grid_x; y = config.Proto.grid_y;
                z = config.Proto.grid_z };
            block =
              { x = config.Proto.block_x; y = config.Proto.block_y;
                z = config.Proto.block_z };
            shared_mem_bytes = config.Proto.shared_mem_bytes;
            stream = config.Proto.stream;
          }
          ~params);
    rpc_cublasCreate = (fun () -> u64_result_ok (Cudasim.Cublas.create ctx));
    rpc_cublasDestroy = (fun h -> void_result (Cudasim.Cublas.destroy ctx h));
    rpc_cublasSgemm =
      (fun (a : Proto.sgemm_args) ->
        void_result
          (Cudasim.Cublas.sgemm ctx
             {
               Cudasim.Cublas.handle = a.Proto.handle;
               m = a.Proto.m;
               n = a.Proto.n;
               k = a.Proto.k;
               alpha = a.Proto.alpha;
               a = a.Proto.a;
               lda = a.Proto.lda;
               b = a.Proto.b;
               ldb = a.Proto.ldb;
               beta = a.Proto.beta;
               c = a.Proto.c;
               ldc = a.Proto.ldc;
             }));
    rpc_cublasSgemv =
      (fun (g : Proto.sgemv_args) ->
        void_result
          (Cudasim.Cublas.sgemv ctx
             {
               Cudasim.Cublas.gv_handle = g.Proto.handle;
               gv_m = g.Proto.m;
               gv_n = g.Proto.n;
               gv_alpha = g.Proto.alpha;
               gv_a = g.Proto.a;
               gv_lda = g.Proto.lda;
               gv_x = g.Proto.x;
               gv_incx = g.Proto.incx;
               gv_beta = g.Proto.beta;
               gv_y = g.Proto.y;
               gv_incy = g.Proto.incy;
             }));
    rpc_cublasSdot =
      (fun (a : Proto.dot_args) ->
        match
          Cudasim.Cublas.sdot ctx ~handle:a.Proto.handle ~n:a.Proto.n
            ~x:a.Proto.x ~incx:a.Proto.incx ~y:a.Proto.y ~incy:a.Proto.incy
        with
        | Ok v -> float_result_ok v
        | Error e -> float_result e);
    rpc_cublasSscal =
      (fun (a : Proto.scal_args) ->
        void_result
          (Cudasim.Cublas.sscal ctx ~handle:a.Proto.handle ~n:a.Proto.n
             ~alpha:a.Proto.alpha ~x:a.Proto.x ~incx:a.Proto.incx));
    rpc_cublasSnrm2 =
      (fun (a : Proto.nrm2_args) ->
        match
          Cudasim.Cublas.snrm2 ctx ~handle:a.Proto.handle ~n:a.Proto.n
            ~x:a.Proto.x ~incx:a.Proto.incx
        with
        | Ok v -> float_result_ok v
        | Error e -> float_result e);
    rpc_cusolverDnCreate =
      (fun () -> u64_result_ok (Cudasim.Cusolver.create ctx));
    rpc_cusolverDnDestroy =
      (fun h -> void_result (Cudasim.Cusolver.destroy ctx h));
    rpc_cusolverDnSgetrf_bufferSize =
      (fun (a : Proto.getrf_buffer_args) ->
        match
          Cudasim.Cusolver.sgetrf_buffer_size ctx ~handle:a.Proto.handle
            ~m:a.Proto.m ~n:a.Proto.n ~a:a.Proto.a ~lda:a.Proto.lda
        with
        | Ok lwork -> int_result_ok lwork
        | Error e -> int_result e);
    rpc_cusolverDnSgetrf =
      (fun (a : Proto.getrf_args) ->
        match
          Cudasim.Cusolver.sgetrf ctx ~handle:a.Proto.handle ~m:a.Proto.m
            ~n:a.Proto.n ~a:a.Proto.a ~lda:a.Proto.lda
            ~workspace:a.Proto.workspace ~ipiv:a.Proto.ipiv
        with
        | Ok info -> int_result_ok info
        | Error e -> int_result e);
    rpc_cusolverDnSgetrs =
      (fun (a : Proto.getrs_args) ->
        match
          Cudasim.Cusolver.sgetrs ctx ~handle:a.Proto.handle ~n:a.Proto.n
            ~nrhs:a.Proto.nrhs ~a:a.Proto.a ~lda:a.Proto.lda ~ipiv:a.Proto.ipiv
            ~b:a.Proto.b ~ldb:a.Proto.ldb
        with
        | Ok info -> int_result_ok info
        | Error e -> int_result e);
    rpc_checkpoint =
      (fun name ->
        match resolve_checkpoint_path t name with
        | None -> void_result Cudasim.Error.Invalid_value
        | Some path -> (
            (* Crash-safe: write to a temp file, rename into place. A crash
               mid-write leaves the previous checkpoint untouched; the stale
               .tmp is simply overwritten by the next attempt. *)
            let tmp = path ^ ".tmp" in
            match
              let data = Cudasim.Context.checkpoint ctx in
              let oc = open_out_bin tmp in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc data);
              Sys.rename tmp path
            with
            | () -> void_result Cudasim.Error.Success
            | exception Sys_error _ ->
                (try Sys.remove tmp with Sys_error _ -> ());
                void_result Cudasim.Error.Unknown));
    rpc_restore =
      (fun name ->
        match resolve_checkpoint_path t name with
        | None -> void_result Cudasim.Error.Invalid_value
        | Some path -> (
            match
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with
            | exception Sys_error _ -> void_result Cudasim.Error.Unknown
            | data -> (
                match Cudasim.Context.restore ctx data with
                | Ok () -> void_result Cudasim.Error.Success
                | Error _ -> void_result Cudasim.Error.Unknown)));
    rpc_migrate_begin =
      (fun tenant ->
        if String.length tenant = 0 then void_result Cudasim.Error.Invalid_value
        else begin
          (* A fresh begin supersedes any stale half-copied migration —
             e.g. a source that crashed and started over. *)
          t.inbound <- Some { in_tenant = tenant; in_base = false };
          void_result Cudasim.Error.Success
        end);
    rpc_migrate_base =
      (fun data ->
        match t.inbound with
        | None -> void_result Cudasim.Error.Invalid_value
        | Some i -> (
            match Cudasim.Context.restore ctx (Bytes.to_string data) with
            | Ok () ->
                i.in_base <- true;
                void_result Cudasim.Error.Success
            | Error _ -> void_result Cudasim.Error.Unknown));
    rpc_migrate_delta =
      (fun data ->
        match t.inbound with
        | Some i when i.in_base -> (
            match Cudasim.Context.restore_delta ctx (Bytes.to_string data) with
            | Ok () -> void_result Cudasim.Error.Success
            | Error _ -> void_result Cudasim.Error.Unknown)
        | Some _ | None -> void_result Cudasim.Error.Invalid_value);
    rpc_migrate_commit =
      (fun tenant blob ->
        match t.inbound with
        | Some i when i.in_base && i.in_tenant = tenant ->
            let adopted =
              match t.adopt_lease with
              | None -> true
              | Some adopt -> adopt ~tenant ~blob:(Bytes.to_string blob)
            in
            if adopted then begin
              t.inbound <- None;
              t.migrations_in <- t.migrations_in + 1;
              void_result Cudasim.Error.Success
            end
            else begin
              (* refused adoption aborts the migration server-side *)
              Cudasim.Context.wipe ctx;
              t.inbound <- None;
              void_result Cudasim.Error.Invalid_value
            end
        | Some _ | None -> void_result Cudasim.Error.Invalid_value);
    rpc_migrate_abort =
      (fun tenant ->
        (match t.inbound with
        | Some i when i.in_tenant = tenant ->
            Cudasim.Context.wipe ctx;
            t.inbound <- None
        | Some _ | None -> ());
        (* aborting an unknown migration is a no-op, not an error: the
           source may retry an abort whose first reply was lost *)
        void_result Cudasim.Error.Success);
  }

let create ?devices ?memory_capacity ?capacity_clamp ?(checkpoint_dir = ".")
    ~clock () =
  let ctx =
    Cudasim.Context.create ?devices ?memory_capacity ?capacity_clamp clock
  in
  let rpc = Oncrpc.Server.create ~name:"cricket" () in
  let t =
    { rpc; ctx; checkpoint_dir; spawn_devices = devices;
      spawn_memory_capacity = memory_capacity;
      spawn_capacity_clamp = capacity_clamp; spawn_clock = clock;
      calls = 0; per_proc = Hashtbl.create 64;
      per_device = Hashtbl.create 8;
      per_tenant = Hashtbl.create 64; current_tenant = None;
      tenant_hooks = None; inbound = None; adopt_lease = None;
      migrations_in = 0;
      trace = Trace.create (); last_proc = -1; last_arg_bytes = 0 }
  in
  P.Server.register (implementation t) rpc;
  (* At-most-once: a client retransmission (same xid) of a call whose reply
     was lost gets the recorded reply, so non-idempotent calls are safe to
     retry. *)
  Oncrpc.Server.set_dup_cache rpc;
  Oncrpc.Server.set_observer rpc (fun ~prog:_ ~vers:_ ~proc ~arg_bytes ->
      t.calls <- t.calls + 1;
      t.last_proc <- proc;
      t.last_arg_bytes <- arg_bytes;
      Hashtbl.replace t.per_proc proc
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_proc proc));
      (* Attribute the call to the device selected when it arrived — the
         fleet report's per-device RPC traffic. *)
      let d = Cudasim.Context.current t.ctx in
      Hashtbl.replace t.per_device d
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_device d)));
  t

(* procedure number -> name, from the RPCL spec itself *)
let proc_names =
  lazy
    (let env = Rpcl.Check.check (Rpcl.Parser.parse Rpcl.Specs.cricket) in
     let table = Hashtbl.create 64 in
     List.iter
       (fun (p : Rpcl.Ast.program_def) ->
         List.iter
           (fun (v : Rpcl.Ast.version_def) ->
             List.iter
               (fun (pr : Rpcl.Ast.procedure_def) ->
                 Hashtbl.replace table
                   (Int64.to_int (Rpcl.Check.resolve env pr.Rpcl.Ast.proc_number))
                   pr.Rpcl.Ast.proc_name)
               v.Rpcl.Ast.version_procedures)
           p.Rpcl.Ast.program_versions)
       (Rpcl.Check.programs env);
     table)

(* [Lazy.force] from two domains at once raises [RacyLazy]; serialize the
   first (and only) forcing. Reads after forcing are table lookups on a
   frozen Hashtbl — safe without the lock, but the lock is cheap and the
   call sites are cold (report rendering), so hold it throughout. *)
let proc_names_lock = Mutex.create ()

let forced_proc_names () =
  Mutex.lock proc_names_lock;
  let table = Lazy.force proc_names in
  Mutex.unlock proc_names_lock;
  table

let proc_name proc =
  match Hashtbl.find_opt (forced_proc_names ()) proc with
  | Some n -> n
  | None -> Printf.sprintf "proc_%d" proc

let set_obs t obs =
  Oncrpc.Server.set_obs
    ~proc_name:(fun ~prog:_ ~vers:_ ~proc -> proc_name proc)
    t.rpc obs;
  for d = 0 to Cudasim.Context.device_count t.ctx - 1 do
    match Cudasim.Context.gpu_at t.ctx d with
    | Some gpu -> Gpusim.Gpu.set_obs gpu obs
    | None -> ()
  done

let respawn t =
  create ?devices:t.spawn_devices ?memory_capacity:t.spawn_memory_capacity
    ?capacity_clamp:t.spawn_capacity_clamp ~checkpoint_dir:t.checkpoint_dir
    ~clock:t.spawn_clock ()

let dup_hits t = Oncrpc.Server.dup_hits t.rpc

let proc_stats t =
  Hashtbl.fold
    (fun proc count acc ->
      let name =
        match Hashtbl.find_opt (forced_proc_names ()) proc with
        | Some n -> n
        | None -> Printf.sprintf "proc_%d" proc
      in
      (name, count) :: acc)
    t.per_proc []
  |> List.sort (fun (na, a) (nb, b) ->
         match compare b a with 0 -> compare na nb | c -> c)

let rpc_server t = t.rpc
let context t = t.ctx
let trace t = t.trace

let dispatch_ident ?ident t request =
  if not (Trace.enabled t.trace) then Oncrpc.Server.dispatch ?ident t.rpc request
  else begin
    let clock = Cudasim.Context.clock t.ctx in
    t.last_proc <- -1;
    let t0 = clock.Cudasim.Context.now () in
    let reply = Oncrpc.Server.dispatch ?ident t.rpc request in
    if t.last_proc >= 0 then
      Trace.record t.trace ~now:t0 ~proc:t.last_proc
        ~proc_name:(proc_name t.last_proc) ~arg_bytes:t.last_arg_bytes
        ~duration:(Simnet.Time.sub (clock.Cudasim.Context.now ()) t0);
    reply
  end

let dispatch t request = dispatch_ident t request

(* Denied reply for a request refused at admission: parse just the header
   (for the xid), answer with an auth rejection carrying the typed reason.
   Requests too broken to parse fall through to normal dispatch, which
   produces the proper protocol error. *)
let denied_reply request (reason : reject) =
  let dec = Xdr.Decode.of_string request in
  match Oncrpc.Message.decode dec with
  | { Oncrpc.Message.xid; body = Oncrpc.Message.Call _ } ->
      let enc = Xdr.Encode.create () in
      Oncrpc.Message.encode enc
        (Oncrpc.Message.reply_denied ~xid
           (Oncrpc.Message.Auth_error (reject_to_auth_stat reason)));
      Some (Xdr.Encode.to_string enc)
  | _ | (exception Xdr.Types.Error _) -> None

let set_tenant_hooks t hooks = t.tenant_hooks <- Some hooks

let clear_tenant_hooks t = t.tenant_hooks <- None

let set_migration_adopt t f = t.adopt_lease <- Some f
let migrations_in t = t.migrations_in

let inbound_migration t =
  match t.inbound with None -> None | Some i -> Some i.in_tenant

let dispatch_for t ~tenant request =
  Hashtbl.replace t.per_tenant tenant
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_tenant tenant));
  let admit =
    match t.tenant_hooks with Some h -> h.admit ~tenant | None -> None
  in
  match admit with
  | Some reason -> (
      match denied_reply request reason with
      | Some reply -> reply
      | None -> dispatch_ident ~ident:tenant t request)
  | None ->
      t.current_tenant <- Some tenant;
      Fun.protect
        ~finally:(fun () -> t.current_tenant <- None)
        (fun () -> dispatch_ident ~ident:tenant t request)

(* The device-steered fast path for tenant calls: same accounting and
   admission as {!dispatch_for}, but the header was already parsed by the
   RPC engine — admission rejections answer with the known xid (no
   software re-parse), and admitted calls skip {!Oncrpc.Message.decode}
   via {!Oncrpc.Server.dispatch_preparsed}. *)
let dispatch_preparsed_for t ~tenant ~xid ~prog ~vers ~proc ~body_off request =
  Hashtbl.replace t.per_tenant tenant
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_tenant tenant));
  let admit =
    match t.tenant_hooks with Some h -> h.admit ~tenant | None -> None
  in
  match admit with
  | Some reason ->
      let enc = Xdr.Encode.create () in
      Oncrpc.Message.encode enc
        (Oncrpc.Message.reply_denied ~xid
           (Oncrpc.Message.Auth_error (reject_to_auth_stat reason)));
      Xdr.Encode.to_string enc
  | None ->
      t.current_tenant <- Some tenant;
      Fun.protect
        ~finally:(fun () -> t.current_tenant <- None)
        (fun () ->
          Option.value ~default:""
            (Oncrpc.Server.dispatch_preparsed ~ident:tenant t.rpc ~xid ~prog
               ~vers ~proc ~body_off request))

let tenant_calls t =
  Hashtbl.fold (fun tenant n acc -> (tenant, n) :: acc) t.per_tenant []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let device_calls t =
  List.init (Cudasim.Context.device_count t.ctx) (fun d ->
      (d, Option.value ~default:0 (Hashtbl.find_opt t.per_device d)))

let calls_served t = t.calls
