(** RPC call tracing.

    A bounded ring of recent calls with virtual timestamps, procedure
    names, argument sizes and dispatch durations. The original Cricket
    keeps an API-call record to support checkpoint/restart and debugging;
    here the trace also powers `benchctl`'s inspection output and the
    tests' interleaving assertions in multi-tenant runs.

    Recording is off by default and costs one branch per call when off. *)

type entry = {
  seq : int;  (** monotonically increasing per server *)
  proc : int;
  proc_name : string;
  arg_bytes : int;
  at : Simnet.Time.t;  (** virtual time when dispatch started *)
  duration : Simnet.Time.t;  (** virtual time spent in the handler *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity (default 1024, minimum 1). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record :
  t -> now:Simnet.Time.t -> proc:int -> proc_name:string -> arg_bytes:int ->
  duration:Simnet.Time.t -> unit

val entries : t -> entry list
(** Oldest first; at most [capacity] entries. *)

val recorded : t -> int
(** Total calls recorded since creation (may exceed capacity). Unaffected
    by {!clear}. *)

val clear : t -> unit
(** Drop the buffered entries. The lifetime count ({!recorded}) and the
    [seq] sequence are preserved: entries recorded after a clear continue
    the sequence rather than restarting at 0. *)

val pp_entry : Format.formatter -> entry -> unit
