type t = {
  client : Client.t;
  handle : int64;
  queue : (unit -> unit) Queue.t;  (* deferred one-way sends, FIFO *)
}

let create client =
  { client; handle = Client.stream_create client; queue = Queue.create () }

let handle t = t.handle
let client t = t.client
let pending t = Queue.length t.queue
let submit t cmd = Queue.add cmd t.queue

let flush t =
  while not (Queue.is_empty t.queue) do
    (Queue.pop t.queue) ()
  done

let memcpy_h2d_async t ~dst data =
  submit t (fun () ->
      Client.memcpy_h2d_async t.client ~dst ~stream:t.handle data)

let memset_async t ~ptr ~value ~len =
  submit t (fun () ->
      Client.memset_async t.client ~ptr ~value ~len ~stream:t.handle)

let launch_async t func ~grid ~block ?(shared_mem = 0) args =
  submit t (fun () ->
      Client.launch_async t.client func ~grid ~block ~shared_mem
        ~stream:t.handle args)

let event_record t event =
  submit t (fun () ->
      Client.event_record_async t.client ~event ~stream:t.handle)

let wait_event t event =
  submit t (fun () ->
      Client.stream_wait_event t.client ~stream:t.handle ~event)

let synchronize t =
  flush t;
  Client.stream_synchronize t.client t.handle

let download t ~src ~len =
  flush t;
  Client.memcpy_d2h_stream t.client ~src ~len ~stream:t.handle

let event_elapsed_ms t ~start ~stop =
  flush t;
  Client.event_elapsed_ms t.client ~start ~stop

let destroy t =
  flush t;
  Client.stream_destroy t.client t.handle
