(** The Cricket server: executes forwarded CUDA calls on the GPU node.

    Binds the generated RPC dispatch skeleton ({!Proto.Rpc_cd_prog_def_v1})
    to the {!Cudasim} API. One server owns one CUDA context (and thus the
    node's GPUs); any number of client connections — local unikernels, VMs
    or remote native processes — can share it, which is exactly the
    flexible-GPU-assignment story of the paper.

    The server never raises on malformed or failing CUDA calls: errors
    travel back as CUDA error codes inside the result structs, and
    RPC-protocol errors (bad procedure, garbage arguments) as RFC 5531
    accepted-stat errors. *)

type t

val create :
  ?devices:Gpusim.Device.t list ->
  ?memory_capacity:int ->
  ?capacity_clamp:int ->
  ?checkpoint_dir:string ->
  clock:Cudasim.Context.clock ->
  unit ->
  t
(** [checkpoint_dir] (default ["."]) is where [rpc_checkpoint] writes
    state files; paths in checkpoint RPCs are interpreted relative to it
    and may not escape it. [memory_capacity] / [capacity_clamp] are
    forwarded to {!Cudasim.Context.create} (and survive {!respawn}). *)

val respawn : t -> t
(** A fresh server process of the same kind: same GPUs, clock and
    checkpoint directory, but brand-new (empty) CUDA state and RPC
    bookkeeping. This is what a crash-restart supervisor starts — the
    recovering client then restores state from the latest checkpoint and
    replays its journal (see {!Client.enable_recovery}). *)

val dup_hits : t -> int
(** Calls answered from the at-most-once duplicate-request cache (always
    enabled on Cricket servers): client retransmissions whose original
    execution survived. *)

val rpc_server : t -> Oncrpc.Server.t
(** The underlying RPC server, for attaching transports or a portmapper. *)

val context : t -> Cudasim.Context.t
val dispatch : t -> string -> string
(** Request record → reply record (convenience re-export). *)

(** {1 Multi-tenant serving hooks}

    The serving core ({!Tenancy.Core} in [lib/tenancy]) sits between the
    transports and this server. The server itself stays tenancy-agnostic;
    it only exposes the interception points the core needs: a per-request
    admission gate and accounting callbacks for the calls that create or
    release per-tenant device resources. *)

type reject = [ `Lease_expired | `Over_quota | `Overloaded ]
(** Typed admission rejections. On the wire they travel as RFC 5531 auth
    rejections ([AUTH_REJECTEDCRED] / [AUTH_TOOWEAK] / [AUTH_FAILED]), so
    an unmodified client raises a structured {!Oncrpc.Client.Rpc_error}
    instead of hanging; {!reject_of_auth_stat} recovers the reason. *)

val reject_to_auth_stat : reject -> Oncrpc.Message.auth_stat
val reject_of_auth_stat : Oncrpc.Message.auth_stat -> reject option

type tenant_hooks = {
  admit : tenant:string -> reject option;
      (** evaluated once per dispatched request; [Some r] denies the call
          with an auth rejection carrying [r] *)
  malloc_allowed : tenant:string -> size:int64 -> bool;
      (** [false] fails the allocation with [cudaErrorMemoryAllocation]
          (the lease cap feels like device OOM to the tenant) *)
  note_malloc : tenant:string -> ptr:int64 -> size:int64 -> unit;
  note_free : tenant:string -> ptr:int64 -> unit;
  stream_allowed : tenant:string -> bool;
  note_stream_create : tenant:string -> handle:int64 -> unit;
  note_stream_destroy : tenant:string -> handle:int64 -> unit;
}

val set_tenant_hooks : t -> tenant_hooks -> unit
val clear_tenant_hooks : t -> unit

val dispatch_for : t -> tenant:string -> string -> string
(** Like {!dispatch}, but on behalf of a named tenant: the admission hook
    runs first (a rejection becomes a typed auth-denied reply), per-tenant
    call accounting is updated, the tenant identity keys the at-most-once
    duplicate-request cache (so tenants reusing the same xid space never
    collide), and resource-creating calls report to the tenant hooks. *)

val dispatch_preparsed_for :
  t ->
  tenant:string ->
  xid:int32 ->
  prog:int ->
  vers:int ->
  proc:int ->
  body_off:int ->
  string ->
  string
(** {!dispatch_for} for a device-parsed call (see [Tcpstack.Rpcdev]): same
    admission and per-tenant accounting, but an admission rejection is
    answered directly from the known [xid] and an admitted call skips the
    software header decode via {!Oncrpc.Server.dispatch_preparsed}. *)

val tenant_calls : t -> (string * int) list
(** Per-tenant dispatched-call counts, sorted by tenant name. *)

val device_calls : t -> (int * int) list
(** Per-device dispatched-call counts, one entry per device index in
    order. Each call is attributed to the device that was selected when
    it arrived, so a multi-device session's RPC traffic shows up against
    the devices it steered to. *)

(** {1 Live migration (destination side)}

    A source server drives the [rpc_migrate_*] procedures against this
    server to move a tenant session here: begin → base snapshot →
    dirty-page deltas → commit (or abort). The server accepts the copied
    state mechanically; lease adoption is delegated to the hook below so
    the server stays tenancy-agnostic. *)

val set_migration_adopt : t -> (tenant:string -> blob:string -> bool) -> unit
(** Called at commit with the serialized source lease ([blob] is [""] when
    the tenant held no lease). Returning [false] refuses the commit: the
    half-copied state is wiped and the source keeps the session. *)

val inbound_migration : t -> string option
(** Tenant of the in-progress inbound migration, if any. *)

val migrations_in : t -> int
(** Sessions successfully adopted by this server. *)

val calls_served : t -> int

val trace : t -> Trace.t
(** Call-trace ring (disabled by default; see {!Trace.set_enabled}). *)

val proc_stats : t -> (string * int) list
(** Per-procedure call counts, most-called first. Procedure names are
    resolved from the RPCL specification the stubs were generated from —
    the same single source of truth. *)

val proc_name : int -> string
(** Procedure number → RPCL procedure name (["proc_<n>"] for unknown
    numbers). *)

val set_obs : t -> Obs.Recorder.t -> unit
(** Attach an observability recorder to the whole server side: the
    underlying RPC server emits ["dispatch"]-layer spans named by RPCL
    procedure (see {!Oncrpc.Server.set_obs}) and every simulated GPU emits
    ["gpu"]-layer spans for its stream commands
    ({!Gpusim.Gpu.set_obs}). Must be re-applied after {!respawn} — a
    respawned server starts with recording detached, like a real fresh
    process. *)
