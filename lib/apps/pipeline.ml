module Time = Simnet.Time

type mode = Sync | Async of int

let mode_name = function
  | Sync -> "sync"
  | Async d -> Printf.sprintf "async/%d" d

type params = { rounds : int; elements : int }

let default = { rounds = 64; elements = 4096 }

type result = {
  mode : mode;
  rounds : int;
  elapsed : Time.t;
  api_calls : int;
  calls_per_s : float;
  digest : string;  (* MD5 of the final output buffer *)
}

(* One round uploads a fresh input vector and launches saxpy into the
   accumulator: y <- a*x + y. Inputs are deterministic so the sync and
   async executions must produce bit-identical output. *)
let input params i =
  Workload.f32_bytes
    (Array.init params.elements (fun j -> float_of_int (((i * 31) + j) mod 7)))

let run ?(params = default) mode (env : Unikernel.Runner.env) =
  let client = env.Unikernel.Runner.client in
  let engine = env.Unikernel.Runner.engine in
  let n = params.elements in
  let buf_bytes = 4 * n in
  let modul = Workload.load_standard_module client in
  let saxpy = Workload.get_kernel client ~modul Gpusim.Kernels.saxpy_name in
  let x = Cricket.Lifetime.alloc client buf_bytes in
  let y = Cricket.Lifetime.alloc client buf_bytes in
  Cricket.Lifetime.upload y (Workload.f32_bytes (Workload.fill_constant n 1.0));
  let grid = { Cricket.Client.x = (n + 255) / 256; y = 1; z = 1 } in
  let block = { Cricket.Client.x = 256; y = 1; z = 1 } in
  let args =
    [|
      Gpusim.Kernels.F32 0.5;
      Gpusim.Kernels.Ptr (Int64.to_int (Cricket.Lifetime.ptr x));
      Gpusim.Kernels.Ptr (Int64.to_int (Cricket.Lifetime.ptr y));
      Gpusim.Kernels.I32 (Int32.of_int n);
    |]
  in
  let t0 = Simnet.Engine.now engine in
  let calls0 = Cricket.Client.api_calls client in
  let output =
    match mode with
    | Sync ->
        for i = 1 to params.rounds do
          Cricket.Lifetime.upload x (input params i);
          Cricket.Client.launch client saxpy ~grid ~block args;
          Cricket.Client.device_synchronize client
        done;
        Cricket.Lifetime.download y
    | Async depth ->
        if depth <= 0 then invalid_arg "Pipeline.run: depth must be positive";
        let s = Cricket.Stream.create client in
        for i = 1 to params.rounds do
          Cricket.Lifetime.upload_async x s (input params i);
          Cricket.Stream.launch_async s saxpy ~grid ~block args;
          if i mod depth = 0 then Cricket.Stream.synchronize s
        done;
        let out = Cricket.Lifetime.download ~stream:s y in
        Cricket.Stream.destroy s;
        out
  in
  let elapsed = Time.sub (Simnet.Engine.now engine) t0 in
  let api_calls = Cricket.Client.api_calls client - calls0 in
  Cricket.Lifetime.free x;
  Cricket.Lifetime.free y;
  Cricket.Client.module_unload client modul;
  let seconds = Time.to_float_s elapsed in
  {
    mode;
    rounds = params.rounds;
    elapsed;
    api_calls;
    calls_per_s =
      (if seconds > 0.0 then float_of_int api_calls /. seconds else 0.0);
    digest = Digest.string (Bytes.to_string output);
  }

let measure ?params mode cfg =
  let result = ref None in
  let (_ : Unikernel.Runner.measurement) =
    Unikernel.Runner.run cfg (fun env -> result := Some (run ?params mode env))
  in
  Option.get !result
