(** Port of the CUDA-samples matrixMul proxy application (Fig. 5a).

    C(hA×wB) = A(hA×wA) × B(wA×wB), launched [iterations] times through
    Cricket. Matches the sample's profile: ~1 kernel launch per iteration
    plus a few dozen setup calls, ~2 MiB of memory transfers total. *)

type params = {
  ha : int;  (** rows of A (and C) *)
  wa : int;  (** cols of A = rows of B *)
  wb : int;  (** cols of B (and C) *)
  iterations : int;
}

val default : params
(** The sample's defaults: 320 × 320 × 640. *)

val paper : params
(** The paper's configuration: default dims, 100 000 iterations. *)

val run :
  ?verify:bool -> ?digest_out:string ref -> params -> Unikernel.Runner.env ->
  unit
(** Raises [Failure] if [verify] (default true) and the result is wrong.
    Only verify on functional runs. [digest_out] receives a hex digest of
    the downloaded result matrix — the fault-tolerance tests compare it
    against a fault-free run's digest bit for bit. *)
