(* Shortest-program superoptimizer over a one-byte accumulator ISA. *)

let opcode_count = 8

let op_names = [| "INC"; "DEC"; "NOT"; "NEG"; "SHL"; "SHR"; "ROL"; "SWAP" |]

let op_name o = op_names.(o)

let program_to_string p = String.concat ";" (List.map op_name p)

let apply_op op a =
  match op with
  | 0 -> (a + 1) land 0xff (* INC *)
  | 1 -> (a - 1) land 0xff (* DEC *)
  | 2 -> lnot a land 0xff (* NOT *)
  | 3 -> -a land 0xff (* NEG *)
  | 4 -> (a lsl 1) land 0xff (* SHL *)
  | 5 -> a lsr 1 (* SHR *)
  | 6 -> ((a lsl 1) lor (a lsr 7)) land 0xff (* ROL *)
  | 7 -> ((a lsl 4) lor (a lsr 4)) land 0xff (* SWAP — nibble swap *)
  | _ -> invalid_arg "Superopt.apply_op: bad opcode"

let run_program p input = List.fold_left (fun a op -> apply_op op a) input p

let table_of_program p =
  Bytes.init 256 (fun i -> Char.chr (run_program p i))

(* Candidate index -> program: base-8 digits, least significant digit is
   the first instruction, so consecutive indices share instruction
   prefixes and the first match in index order is well-defined. *)
let decode_candidate ~len idx =
  let rec go j idx acc =
    if j = len then List.rev acc
    else go (j + 1) (idx / opcode_count) ((idx mod opcode_count) :: acc)
  in
  go 0 idx []

(* --- the device kernel --- *)

let kernel_name = "superoptKernel"

let kernel =
  let open Gpusim.Kernels in
  let params = [ P_ptr; P_ptr; P_i64; P_i32; P_i32 ] in
  let name = kernel_name in
  let execute mem l =
    if Array.length l.args <> 5 then raise (Bad_args "superoptKernel: arity");
    let table, flags, base, batch, len =
      match l.args with
      | [| Ptr t; Ptr f; I64 b; I32 n; I32 k |] ->
          (t, f, Int64.to_int b, Int32.to_int n, Int32.to_int k)
      | _ -> raise (Bad_args "superoptKernel: arg types")
    in
    let program = Array.make len 0 in
    for c = 0 to batch - 1 do
      let idx = ref (base + c) in
      for j = 0 to len - 1 do
        program.(j) <- !idx mod opcode_count;
        idx := !idx / opcode_count
      done;
      let ok = ref true in
      let input = ref 0 in
      (* early exit mirrors a lane going idle; the cost model still
         charges the full interpretation (warps run to the slowest lane) *)
      while !ok && !input < 256 do
        let a = ref !input in
        for j = 0 to len - 1 do
          a := apply_op program.(j) !a
        done;
        if !a <> Gpusim.Memory.get_u8 mem (table + !input) then ok := false;
        incr input
      done;
      Gpusim.Memory.set_u8 mem (flags + c) (if !ok then 1 else 0)
    done
  in
  let cost d l =
    let batch =
      match l.args with [| _; _; _; I32 n; _ |] -> Int32.to_int n | _ -> 0
    in
    let len =
      match l.args with [| _; _; _; _; I32 k |] -> Int32.to_int k | _ -> 0
    in
    (* interpreter work per thread: decode (≈8 ops/instr) plus 256 probe
       inputs × len instructions × ≈8 device ops each (fetch, decode
       branch, ALU, compare) — charged in full, data-independently *)
    let ops_per_thread = Float.of_int ((len * 8) + (256 * len * 8) + 32) in
    let flops = Float.of_int batch *. ops_per_thread in
    let compute_ns = flops /. Gpusim.Device.effective_flops d `F32 *. 1e9 in
    let blocks = l.grid.x * l.grid.y * l.grid.z in
    let waves =
      Float.of_int blocks /. Float.of_int d.Gpusim.Device.multi_processor_count
    in
    compute_ns +. (Float.max 1.0 waves *. 500.0)
  in
  { name; params; execute; cost }

let () = Gpusim.Kernels.register kernel

let fatbin ~archs () =
  let images =
    List.map
      (fun arch -> (arch, Cubin.Image.build (Cubin.Image.of_registry ~arch [ kernel_name ])))
      archs
  in
  Cubin.Fatbin.build { Cubin.Fatbin.images }

(* --- search problems --- *)

type spec = { spec_name : string; reference : int list }

let demo_specs =
  [
    (* NOT;INC is two's complement: the search discovers the single NEG *)
    { spec_name = "neg"; reference = [ 2; 0 ] };
    (* four rotates move the high nibble down: ≡ SWAP *)
    { spec_name = "swap"; reference = [ 6; 6; 6; 6 ] };
    (* -a-2 — no length-1 equivalent exists, shortest is length 2 *)
    { spec_name = "negsub2"; reference = [ 2; 1 ] };
    (* longer pipelines with no equivalent below length 6: these force
       the search through every level and carry the benchmark's load *)
    { spec_name = "deep"; reference = [ 0; 6; 2; 7; 1; 5 ] };
    { spec_name = "deep2"; reference = [ 5; 0; 7; 2; 6; 1 ] };
  ]

type search_result = {
  program : int list option;
  candidates : int;
  launches : int;
}

let block_threads = 128

let search ~cluster ?(batch = 256) ~max_len spec =
  let archs =
    (* one image per distinct major arch in the fleet, at minor 0 so every
       device of that major can run it *)
    List.init (Fleet.Cluster.device_count cluster) (fun i ->
        (Fleet.Cluster.device cluster i).Gpusim.Device.compute_major)
    |> List.sort_uniq compare
    |> List.map (fun major -> (major, 0))
  in
  let data = fatbin ~archs () in
  match Fleet.Cluster.load_module cluster data with
  | Error _ as e -> e
  | Ok modul -> (
      match Fleet.Cluster.get_function cluster modul kernel_name with
      | Error _ as e -> e
      | Ok func ->
          let table = table_of_program spec.reference in
          (* per-device spec table and flags buffer *)
          let bufs =
            List.map
              (fun dev ->
                let gpu = Fleet.Cluster.gpu cluster dev in
                let mem = Gpusim.Gpu.memory gpu in
                let d_table = Gpusim.Memory.alloc mem 256 in
                let d_flags = Gpusim.Memory.alloc mem batch in
                ignore
                  (Gpusim.Gpu.memcpy_h2d gpu ~now:(Fleet.Cluster.now cluster)
                     ~dst:d_table table);
                (dev, (d_table, d_flags)))
              (Fleet.Cluster.eligible modul)
          in
          let table_ptr dev = fst (List.assoc dev bufs)
          and flags_ptr dev = snd (List.assoc dev bufs) in
          let candidates = ref 0 and launches = ref 0 in
          let found = ref None in
          let len = ref 1 in
          while !found = None && !len <= max_len do
            let l = !len in
            let total =
              int_of_float (Float.pow (Float.of_int opcode_count) (Float.of_int l))
            in
            let best = ref None in
            let base = ref 0 in
            (* batches ascend through the index space, so the first batch
               containing a verified match holds the lowest-numbered
               program of this length — stop submitting after it *)
            while !base < total && !best = None do
              let n = min batch (total - !base) in
              let b = !base in
              let mk dev =
                {
                  Gpusim.Kernels.grid =
                    {
                      x = (n + block_threads - 1) / block_threads;
                      y = 1;
                      z = 1;
                    };
                  block = { x = block_threads; y = 1; z = 1 };
                  shared_mem = 0;
                  args =
                    [|
                      Gpusim.Kernels.Ptr (table_ptr dev);
                      Gpusim.Kernels.Ptr (flags_ptr dev);
                      Gpusim.Kernels.I64 (Int64.of_int b);
                      Gpusim.Kernels.I32 (Int32.of_int n);
                      Gpusim.Kernels.I32 (Int32.of_int l);
                    |];
                }
              in
              (match Fleet.Cluster.launch cluster func mk with
              | Error e ->
                  failwith
                    (Printf.sprintf "superopt launch: %s"
                       (Fleet.Cluster.error_message e))
              | Ok (dev, _finish) ->
                  incr launches;
                  candidates := !candidates + n;
                  (* flags are valid immediately: data effects are eager,
                     only time is accounted on the device stream *)
                  let gpu = Fleet.Cluster.gpu cluster dev in
                  let _, data =
                    Gpusim.Gpu.memcpy_d2h gpu ~now:(Fleet.Cluster.now cluster)
                      ~src:(flags_ptr dev) n
                  in
                  (try
                     for c = 0 to n - 1 do
                       if Bytes.get data c = '\001' then begin
                         let p = decode_candidate ~len:l (b + c) in
                         (* re-verify host-side: a flag is a claim, the
                            truth table is the authority *)
                         if table_of_program p = table then begin
                           (match !best with
                           | Some (bi, _) when bi <= b + c -> ()
                           | _ -> best := Some (b + c, p));
                           raise Exit
                         end
                       end
                     done
                   with Exit -> ()));
              base := !base + batch
            done;
            (* level barrier: all devices drain before the next length *)
            ignore (Fleet.Cluster.barrier cluster);
            (match !best with Some (_, p) -> found := Some p | None -> ());
            incr len
          done;
          List.iter
            (fun (dev, (d_table, d_flags)) ->
              let mem = Gpusim.Gpu.memory (Fleet.Cluster.gpu cluster dev) in
              Gpusim.Memory.free mem d_table;
              Gpusim.Memory.free mem d_flags)
            bufs;
          Ok { program = !found; candidates = !candidates; launches = !launches })
