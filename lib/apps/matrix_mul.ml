type params = { ha : int; wa : int; wb : int; iterations : int }

let default = { ha = 320; wa = 320; wb = 640; iterations = 300 }
let paper = { default with iterations = 100_000 }

let block = 32

let run ?(verify = true) ?digest_out p (env : Unikernel.Runner.env) =
  if p.ha mod block <> 0 || p.wb mod block <> 0 then
    invalid_arg "matrixMul: dimensions must be multiples of 32";
  let client = env.Unikernel.Runner.client in
  let valcst_a = 1.0 and valcst_b = 0.01 in
  (* host-side input preparation: the sample fills with constants, so the
     cost is a plain memory fill, identical for the C and Rust ports *)
  Cricket.Client.charge_host client ((p.ha * p.wa) + (p.wa * p.wb));
  let h_a = Workload.fill_constant (p.ha * p.wa) valcst_a in
  let h_b = Workload.fill_constant (p.wa * p.wb) valcst_b in
  ignore (Cricket.Client.get_device_count client);
  ignore (Cricket.Client.get_device_properties client 0);
  Cricket.Client.set_device client 0;
  let bytes_a = 4 * p.ha * p.wa in
  let bytes_b = 4 * p.wa * p.wb in
  let bytes_c = 4 * p.ha * p.wb in
  let d_a = Cricket.Client.malloc client bytes_a in
  let d_b = Cricket.Client.malloc client bytes_b in
  let d_c = Cricket.Client.malloc client bytes_c in
  Cricket.Client.memcpy_h2d client ~dst:d_a (Workload.f32_bytes h_a);
  Cricket.Client.memcpy_h2d client ~dst:d_b (Workload.f32_bytes h_b);
  let modul = Workload.load_standard_module client in
  let func =
    Workload.get_kernel client ~modul Gpusim.Kernels.matrix_mul_name
  in
  let grid =
    { Cricket.Client.x = p.wb / block; y = p.ha / block; z = 1 }
  in
  let blk = { Cricket.Client.x = block; y = block; z = 1 } in
  let start = Cricket.Client.event_create client in
  let stop = Cricket.Client.event_create client in
  Cricket.Client.event_record client ~event:start ~stream:0L;
  for _ = 1 to p.iterations do
    Cricket.Client.launch client func ~grid ~block:blk
      [|
        Gpusim.Kernels.Ptr (Int64.to_int d_c);
        Gpusim.Kernels.Ptr (Int64.to_int d_a);
        Gpusim.Kernels.Ptr (Int64.to_int d_b);
        Gpusim.Kernels.I32 (Int32.of_int p.wa);
        Gpusim.Kernels.I32 (Int32.of_int p.wb);
      |]
  done;
  Cricket.Client.event_record client ~event:stop ~stream:0L;
  Cricket.Client.device_synchronize client;
  ignore (Cricket.Client.event_elapsed_ms client ~start ~stop);
  let result = Cricket.Client.memcpy_d2h client ~src:d_c ~len:bytes_c in
  (match digest_out with
  | Some r -> r := Digest.to_hex (Digest.bytes result)
  | None -> ());
  if verify then begin
    let c = Workload.f32_array result in
    let expected = Float.of_int p.wa *. valcst_a *. valcst_b in
    Array.iteri
      (fun i v ->
        if not (Workload.approx_equal ~tolerance:1e-3 v expected) then
          failwith
            (Printf.sprintf "matrixMul: C[%d] = %f, expected %f" i v expected))
      c
  end;
  Cricket.Client.event_destroy client start;
  Cricket.Client.event_destroy client stop;
  Cricket.Client.free client d_a;
  Cricket.Client.free client d_b;
  Cricket.Client.free client d_c;
  Cricket.Client.module_unload client modul
