(** Pipeline-depth ablation: the same upload+launch workload executed
    synchronously (one blocking RPC per call) and through the {!Cricket.Stream}
    command queue at several pipeline depths.

    Each round uploads a deterministic input vector and launches saxpy
    into an accumulator; the async variant synchronizes only every [depth]
    rounds, so [depth] rounds' worth of one-way RPCs share one network
    round trip. The final accumulator digest must be identical across all
    modes — stream ordering preserves the synchronous semantics exactly
    (device memory effects are applied eagerly in submission order). *)

type mode = Sync | Async of int  (** depth between synchronize points *)

val mode_name : mode -> string

type params = { rounds : int; elements : int  (** f32s per vector *) }

val default : params
(** 64 rounds of 4096-element (16 KiB) vectors. *)

type result = {
  mode : mode;
  rounds : int;
  elapsed : Simnet.Time.t;  (** virtual time for the measured loop *)
  api_calls : int;
  calls_per_s : float;  (** modeled API-call throughput *)
  digest : string;  (** MD5 of the final accumulator (bit-exactness) *)
}

val run : ?params:params -> mode -> Unikernel.Runner.env -> result
(** Run inside an existing simulated host (setup excluded from timing). *)

val measure : ?params:params -> mode -> Unikernel.Config.t -> result
(** Fresh engine + server + client per call, so modes don't share clocks. *)
