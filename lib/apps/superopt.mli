(** Exhaustive shortest-program superoptimizer — the fleet-scale workload.

    A tiny accumulator ISA over unsigned bytes (8 opcodes: INC, DEC, NOT,
    NEG, SHL, SHR, ROL, SWAP) and a specification given as a 256-entry
    truth table. The search enumerates every program of length 1, 2, … up
    to a bound, in index order, and returns the first (therefore shortest,
    lowest-numbered) program whose behaviour matches the table on all 256
    inputs — classic superoptimization, in the spirit of exhaustive
    Z80/6502 sequence searches.

    Candidates are evaluated on the GPU fleet: each batch of consecutive
    candidate indices is one kernel launch ([superoptKernel]), routed to a
    compatible device by {!Fleet.Cluster}; the kernel interprets each
    candidate against the truth table and writes a per-candidate match
    flag. A search at length 6 evaluates 8^1 + … + 8^6 = 299,592 candidate
    programs — hundreds of launches of thousands of simulated kernel
    threads each, which is what gives the fleet benchmark its load. *)

val opcode_count : int
val op_name : int -> string
val program_to_string : int list -> string

val run_program : int list -> int -> int
(** Host-side reference interpreter: apply the program to one input byte. *)

val table_of_program : int list -> bytes
(** The 256-entry truth table a reference program induces — the spec. *)

val kernel_name : string
(** ["superoptKernel"], registered in {!Gpusim.Kernels} at module init.
    Params: [Ptr table; Ptr flags; I64 base; I32 batch; I32 len]. Thread
    [c] interprets candidate [base+c] of length [len] against the
    256-entry table at [table] and writes [flags+c] ← 1 on a full match.
    The cost model charges the full 256-input interpretation per thread
    (warps do not early-exit), so virtual cost is data-independent. *)

val fatbin : archs:(int * int) list -> unit -> string
(** A serialized fat binary carrying the superopt kernel for each listed
    compute capability — what a build system targeting the fleet's
    architectures would emit. *)

type spec = { spec_name : string; reference : int list }
(** A search problem: find the shortest program equivalent to
    [reference]. *)

val demo_specs : spec list
(** Searches with known shorter answers: [NOT;INC] (two's complement, ≡
    NEG), [ROL;ROL;ROL;ROL] (≡ SWAP), and longer sequences that force the
    search through full levels. *)

type search_result = {
  program : int list option;  (** shortest equivalent, if found in bound *)
  candidates : int;  (** candidate programs evaluated (kernel threads) *)
  launches : int;  (** kernel launches issued to the fleet *)
}

val search :
  cluster:Fleet.Cluster.t ->
  ?batch:int ->
  max_len:int ->
  spec ->
  (search_result, Fleet.Cluster.error) result
(** Run the exhaustive search on the fleet: loads {!fatbin} built for the
    fleet's own architectures, uploads the spec table to every eligible
    device, then sweeps each length level in batches of [batch] (default
    256) candidates per launch, with a fleet barrier between levels. Every
    reported match is re-verified host-side against the full table. *)
