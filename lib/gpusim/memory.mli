(** Simulated GPU device memory: allocator plus typed access.

    Device pointers are plain integers in a private address space starting
    at a non-zero base. The allocator is a first-fit free list with 256-byte
    alignment (CUDA's allocation granularity guarantee) and full
    bookkeeping, so invalid frees and double frees are detected — the
    behaviour Cricket's client-side allocation wrapping relies on.

    Bulk [read]/[write]/[copy]/[memset] are bounds-checked against the
    owning allocation. Scalar accessors ([get_f32] …) used from inside
    kernels are only checked against the backing store, mirroring how real
    GPU kernels can address anywhere in device memory. *)

type t

type error =
  | Out_of_memory of { requested : int; free : int }
  | Invalid_pointer of int
  | Double_free of int
  | Out_of_bounds of { ptr : int; offset : int; len : int; alloc_size : int }

exception Error of error

val error_to_string : error -> string

val create : capacity:int -> t
(** [capacity] bounds the sum of live allocations; the backing store grows
    lazily as addresses are touched. *)

val alloc : t -> int -> int
(** Allocate [n] bytes ([n > 0]); returns the device pointer. *)

val free : t -> int -> unit
val is_allocated : t -> int -> bool
val allocation_size : t -> int -> int
(** Size of the allocation starting exactly at this pointer. *)

val find_allocation : t -> int -> (int * int) option
(** [(base, size)] of the allocation containing an address, if any. *)

val used_bytes : t -> int
val free_bytes : t -> int
val total_bytes : t -> int
val live_allocations : t -> int

(** {1 Bulk transfer (bounds-checked against the allocation)} *)

val write : t -> int -> bytes -> unit
val read : t -> int -> int -> bytes
val copy : t -> src:int -> dst:int -> len:int -> unit
val memset : t -> int -> int -> int -> unit
(** [memset t ptr byte len]. *)

(** {1 Scalar access (kernel use; backing-store checked)} *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_i32 : t -> int -> int32
val set_i32 : t -> int -> int32 -> unit
val get_f32 : t -> int -> float
val set_f32 : t -> int -> float -> unit
val get_f64 : t -> int -> float
val set_f64 : t -> int -> float -> unit

val reset : t -> unit
(** Free everything (cudaDeviceReset). *)

val snapshot : t -> string
(** Serialize allocator state + live memory contents (for checkpoint).
    Leaves the dirty-page set untouched, so a recovery checkpoint taken
    between migration rounds cannot silently rebase the delta stream. *)

val restore : string -> t
(** Rebuild from {!snapshot} output. The restored arena has dirty-page
    tracking disabled. *)

(** {1 Dirty-page tracking and incremental deltas}

    With tracking enabled every mutator marks the 4 KiB pages it touches.
    [delta] serializes the allocator tables plus only the dirty pages and
    clears the dirty set, so a stream of deltas applied on top of a full
    {!snapshot} reconstructs the arena with transfer cost bounded by the
    write rate, not the arena size. *)

val page_size : int
val set_tracking : t -> bool -> unit
val tracking : t -> bool
val clear_dirty : t -> unit
val dirty_page_count : t -> int

val delta : t -> string
(** Serialize allocator tables + dirty pages, then clear the dirty set.
    Raises [Invalid_argument] if tracking is disabled. *)

val apply_delta : t -> string -> (unit, string) result
(** Apply a {!delta} blob on top of this arena (typically restored from
    the matching base snapshot). Fails if capacities differ. *)
