module Time = Simnet.Time

type t = { id : int; mutable recorded : Time.t option }

let create ~id = { id; recorded = None }
let id t = t.id
let record t time = t.recorded <- Some time
let recorded t = t.recorded
let is_recorded t = t.recorded <> None

let elapsed_ms ~start ~stop =
  match (start.recorded, stop.recorded) with
  | Some a, Some b -> Time.to_float_ms (Time.sub b a)
  | _ -> raise Not_found
