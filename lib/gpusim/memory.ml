type error =
  | Out_of_memory of { requested : int; free : int }
  | Invalid_pointer of int
  | Double_free of int
  | Out_of_bounds of { ptr : int; offset : int; len : int; alloc_size : int }

exception Error of error

let error_to_string = function
  | Out_of_memory { requested; free } ->
      Printf.sprintf "out of device memory: requested %d, free %d" requested free
  | Invalid_pointer p -> Printf.sprintf "invalid device pointer 0x%x" p
  | Double_free p -> Printf.sprintf "double free of device pointer 0x%x" p
  | Out_of_bounds { ptr; offset; len; alloc_size } ->
      Printf.sprintf
        "out-of-bounds access: allocation 0x%x (size %d), offset %d, len %d"
        ptr alloc_size offset len

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Gpusim.Memory.Error: " ^ error_to_string e)
    | _ -> None)

let fail e = raise (Error e)
let base_address = 0x1000
let alignment = 256
let page_size = 4096

module Imap = Map.Make (Int)
module BA1 = Bigarray.Array1

(* The arena lives in a Bigarray, not Bytes: Bigarray data is malloc'd
   outside the OCaml heap, so concurrent access from several domains
   (each gpusim instance is owned by one shard, but snapshot/migration
   tooling may read across) never races the GC's moving of heap blocks,
   and large arenas add no marking pressure. *)
type arena = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) BA1.t

let arena_create len : arena =
  let a = BA1.create Bigarray.char Bigarray.c_layout len in
  BA1.fill a '\000';  (* Bigarray.Array1.create does not zero-fill *)
  a

let arena_len (a : arena) = BA1.dim a

(* Manual byte loops: Bytes/String <-> Bigarray have no stdlib blit.
   Callers bound-check first, so unsafe accessors are fine. *)
let blit_bytes_to_arena src srcoff (dst : arena) dstoff len =
  for i = 0 to len - 1 do
    BA1.unsafe_set dst (dstoff + i) (Bytes.unsafe_get src (srcoff + i))
  done

let blit_string_to_arena src srcoff (dst : arena) dstoff len =
  for i = 0 to len - 1 do
    BA1.unsafe_set dst (dstoff + i) (String.unsafe_get src (srcoff + i))
  done

let arena_sub_bytes (src : arena) off len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (BA1.unsafe_get src (off + i))
  done;
  b

let arena_sub_string src off len =
  Bytes.unsafe_to_string (arena_sub_bytes src off len)

type t = {
  capacity : int;
  mutable backing : arena;
  mutable allocations : int Imap.t;  (* base -> size *)
  mutable free_list : (int * int) list;  (* (base, size), sorted by base *)
  mutable used : int;
  mutable tracking : bool;
  mutable dirty : Bytes.t;  (* one byte per page; empty until tracking *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Memory.create: capacity";
  {
    capacity;
    backing = arena_create 4096;
    allocations = Imap.empty;
    free_list = [ (base_address, capacity) ];
    used = 0;
    tracking = false;
    dirty = Bytes.empty;
  }

let page_count t = (base_address + t.capacity + page_size - 1) / page_size

let set_tracking t on =
  if on then begin
    if Bytes.length t.dirty = 0 then t.dirty <- Bytes.make (page_count t) '\000';
    t.tracking <- true
  end
  else t.tracking <- false

let tracking t = t.tracking

let clear_dirty t =
  if Bytes.length t.dirty > 0 then
    Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000'

let dirty_page_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.dirty;
  !n

(* Mark the pages covering [addr, addr+len) dirty. Writes landing beyond
   the tracked range (scalar stores past capacity) are clamped; those
   bytes are outside any allocation and never checkpointed anyway. *)
let mark t addr len =
  if t.tracking && len > 0 then begin
    let npages = Bytes.length t.dirty in
    let first = addr / page_size in
    let last = min ((addr + len - 1) / page_size) (npages - 1) in
    for p = first to last do
      if p >= 0 && p < npages then Bytes.unsafe_set t.dirty p '\001'
    done
  end

let used_bytes t = t.used
let free_bytes t = t.capacity - t.used
let total_bytes t = t.capacity
let live_allocations t = Imap.cardinal t.allocations

let round_up n = (n + alignment - 1) / alignment * alignment

let alloc t n =
  if n <= 0 then invalid_arg "Memory.alloc: size must be positive";
  let size = round_up n in
  let rec take acc = function
    | [] -> fail (Out_of_memory { requested = n; free = free_bytes t })
    | (base, avail) :: rest when avail >= size ->
        let remaining =
          if avail = size then rest else (base + size, avail - size) :: rest
        in
        t.free_list <- List.rev_append acc remaining;
        t.allocations <- Imap.add base size t.allocations;
        t.used <- t.used + size;
        base
    | range :: rest -> take (range :: acc) rest
  in
  take [] t.free_list

(* Insert a range into the sorted free list, coalescing neighbours. *)
let release t base size =
  let rec insert = function
    | [] -> [ (base, size) ]
    | (b, s) :: rest when base + size = b -> (base, size + s) :: rest
    | (b, s) :: rest when b + s = base -> insert_merge b (s + size) rest
    | (b, s) :: rest when base < b -> (base, size) :: (b, s) :: rest
    | range :: rest -> range :: insert rest
  and insert_merge b s = function
    | (b2, s2) :: rest when b + s = b2 -> (b, s + s2) :: rest
    | rest -> (b, s) :: rest
  in
  t.free_list <- insert t.free_list

let free t ptr =
  match Imap.find_opt ptr t.allocations with
  | Some size ->
      t.allocations <- Imap.remove ptr t.allocations;
      t.used <- t.used - size;
      release t ptr size
  | None ->
      (* Distinguish never-allocated from already-freed: a pointer inside
         the managed range that is not a live base is a double free if it
         was plausibly a base (aligned), otherwise invalid. *)
      if ptr >= base_address && ptr < base_address + t.capacity
         && ptr mod alignment = 0
      then fail (Double_free ptr)
      else fail (Invalid_pointer ptr)

let is_allocated t ptr = Imap.mem ptr t.allocations

let allocation_size t ptr =
  match Imap.find_opt ptr t.allocations with
  | Some s -> s
  | None -> fail (Invalid_pointer ptr)

let find_allocation t addr =
  match Imap.find_last_opt (fun base -> base <= addr) t.allocations with
  | Some (base, size) when addr < base + size -> Some (base, size)
  | _ -> None

let ensure_backing t upto =
  if upto > arena_len t.backing then begin
    let capacity = ref (max 4096 (arena_len t.backing)) in
    while !capacity < upto do
      capacity := !capacity * 2
    done;
    let grown = arena_create !capacity in
    let old_len = arena_len t.backing in
    BA1.blit t.backing (BA1.sub grown 0 old_len);
    t.backing <- grown
  end

let check_range t ptr len =
  match find_allocation t ptr with
  | None -> fail (Invalid_pointer ptr)
  | Some (base, size) ->
      if ptr + len > base + size then
        fail (Out_of_bounds { ptr = base; offset = ptr - base; len;
                              alloc_size = size })

let write t ptr data =
  let len = Bytes.length data in
  if len > 0 then begin
    check_range t ptr len;
    ensure_backing t (ptr + len);
    blit_bytes_to_arena data 0 t.backing ptr len;
    mark t ptr len
  end

let read t ptr len =
  if len = 0 then Bytes.empty
  else begin
    check_range t ptr len;
    ensure_backing t (ptr + len);
    arena_sub_bytes t.backing ptr len
  end

let copy t ~src ~dst ~len =
  if len > 0 then begin
    check_range t src len;
    check_range t dst len;
    ensure_backing t (max (src + len) (dst + len));
    (* Array1.blit is memmove: overlapping device-to-device copies keep
       the same semantics the Bytes arena had. *)
    BA1.blit (BA1.sub t.backing src len) (BA1.sub t.backing dst len);
    mark t dst len
  end

let memset t ptr byte len =
  if len > 0 then begin
    check_range t ptr len;
    ensure_backing t (ptr + len);
    BA1.fill (BA1.sub t.backing ptr len) (Char.chr (byte land 0xff));
    mark t ptr len
  end

(* Scalar accessors: backing-bound checked only (kernel semantics). *)

let get_u8 t addr =
  ensure_backing t (addr + 1);
  Char.code (BA1.get t.backing addr)

let set_u8 t addr v =
  ensure_backing t (addr + 1);
  BA1.set t.backing addr (Char.chr (v land 0xff));
  mark t addr 1

(* Multi-byte accessors assemble little-endian by hand: Bigarray has no
   Bytes.get_int32_le equivalent for a char array. *)
let get_i32 t addr =
  ensure_backing t (addr + 4);
  let b = t.backing in
  let byte i = Int32.of_int (Char.code (BA1.unsafe_get b (addr + i))) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16)
          (Int32.shift_left (byte 3) 24)))

let set_i32 t addr v =
  ensure_backing t (addr + 4);
  let b = t.backing in
  let put i x =
    BA1.unsafe_set b (addr + i) (Char.unsafe_chr (Int32.to_int x land 0xff))
  in
  put 0 v;
  put 1 (Int32.shift_right_logical v 8);
  put 2 (Int32.shift_right_logical v 16);
  put 3 (Int32.shift_right_logical v 24);
  mark t addr 4

let get_f32 t addr = Int32.float_of_bits (get_i32 t addr)
let set_f32 t addr v = set_i32 t addr (Int32.bits_of_float v)

let get_i64 t addr =
  ensure_backing t (addr + 8);
  let b = t.backing in
  let byte i = Int64.of_int (Char.code (BA1.unsafe_get b (addr + i))) in
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc := Int64.logor (Int64.shift_left !acc 8) (byte i)
  done;
  !acc

let set_i64 t addr v =
  ensure_backing t (addr + 8);
  let b = t.backing in
  for i = 0 to 7 do
    BA1.unsafe_set b (addr + i)
      (Char.unsafe_chr
         (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done;
  mark t addr 8

let get_f64 t addr = Int64.float_of_bits (get_i64 t addr)
let set_f64 t addr v = set_i64 t addr (Int64.bits_of_float v)

let reset t =
  t.allocations <- Imap.empty;
  t.free_list <- [ (base_address, t.capacity) ];
  t.used <- 0;
  BA1.fill t.backing '\000';
  (* Every page changed (to zero); a delta baseline taken before the
     reset must resend them. *)
  mark t 0 (arena_len t.backing)

(* Checkpoint format: capacity, allocation table, and each live
   allocation's contents. *)
type snapshot_data = {
  snap_capacity : int;
  snap_allocs : (int * int) list;
  snap_free : (int * int) list;
  snap_contents : (int * string) list;
}

let snapshot t =
  let contents =
    Imap.fold
      (fun base size acc ->
        ensure_backing t (base + size);
        (base, arena_sub_string t.backing base size) :: acc)
      t.allocations []
  in
  Marshal.to_string
    {
      snap_capacity = t.capacity;
      snap_allocs = Imap.bindings t.allocations;
      snap_free = t.free_list;
      snap_contents = contents;
    }
    []

let restore s =
  let d : snapshot_data = Marshal.from_string s 0 in
  let t = create ~capacity:d.snap_capacity in
  t.allocations <-
    List.fold_left (fun m (b, sz) -> Imap.add b sz m) Imap.empty d.snap_allocs;
  t.free_list <- d.snap_free;
  t.used <- List.fold_left (fun acc (_, sz) -> acc + sz) 0 d.snap_allocs;
  List.iter
    (fun (base, data) ->
      ensure_backing t (base + String.length data);
      blit_string_to_arena data 0 t.backing base (String.length data))
    d.snap_contents;
  t

(* Delta format: allocator tables wholesale (they are tiny next to
   contents) plus the raw bytes of each dirty page. Page contents all
   come from one coherent arena state, so whole-page blits on apply
   cannot tear an allocation. Taking a delta clears the dirty set —
   the delta is the baseline for the next round. *)
type delta_data = {
  dl_capacity : int;
  dl_allocs : (int * int) list;
  dl_free : (int * int) list;
  dl_pages : (int * string) list;  (* page index -> contents *)
}

let delta t =
  if not t.tracking then invalid_arg "Memory.delta: tracking disabled";
  let backing_len = arena_len t.backing in
  let pages = ref [] in
  for p = Bytes.length t.dirty - 1 downto 0 do
    if Bytes.get t.dirty p <> '\000' then begin
      let start = p * page_size in
      if start < backing_len then
        let len = min page_size (backing_len - start) in
        pages := (p, arena_sub_string t.backing start len) :: !pages
    end
  done;
  clear_dirty t;
  Marshal.to_string
    {
      dl_capacity = t.capacity;
      dl_allocs = Imap.bindings t.allocations;
      dl_free = t.free_list;
      dl_pages = !pages;
    }
    []

let apply_delta t s =
  match (Marshal.from_string s 0 : delta_data) with
  | exception _ -> Stdlib.Error "unreadable memory delta"
  | d ->
      if d.dl_capacity <> t.capacity then
        Stdlib.Error
          (Printf.sprintf "delta capacity %d does not match arena capacity %d"
             d.dl_capacity t.capacity)
      else begin
        t.allocations <-
          List.fold_left
            (fun m (b, sz) -> Imap.add b sz m)
            Imap.empty d.dl_allocs;
        t.free_list <- d.dl_free;
        t.used <- List.fold_left (fun acc (_, sz) -> acc + sz) 0 d.dl_allocs;
        List.iter
          (fun (p, data) ->
            let start = p * page_size in
            let len = String.length data in
            ensure_backing t (start + len);
            blit_string_to_arena data 0 t.backing start len;
            mark t start len)
          d.dl_pages;
        Ok ()
      end
