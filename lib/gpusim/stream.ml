module Time = Simnet.Time

type op =
  | Kernel_launch of string
  | Memcpy_h2d of int
  | Memcpy_d2h of int
  | Memset of int
  | Wait_event of int

type command = { seq : int; op : op; start : Time.t; finish : Time.t }

type t = {
  id : int;
  queue : command Queue.t;  (* oldest first; retired at sync points *)
  mutable completion : Time.t;
}

let create ~id = { id; queue = Queue.create (); completion = Time.zero }
let id t = t.id
let completion t = t.completion
let pending t = Queue.length t.queue
let pending_commands t = List.of_seq (Queue.to_seq t.queue)
let max_t a b = if Time.compare a b > 0 then a else b

let enqueue t ~now ~seq ~op ~cost =
  let start = max_t t.completion now in
  let finish = Time.add start cost in
  Queue.add { seq; op; start; finish } t.queue;
  t.completion <- finish;
  finish

let wait_event t ~seq ~event ~time =
  (* An unrecorded event is a no-op, as in CUDA: the wait captures nothing.
     A recorded one becomes a zero-duration command that floors the
     stream's completion time, so every later command starts after it. *)
  match time with
  | None -> ()
  | Some time ->
      let start = max_t t.completion time in
      Queue.add { seq; op = Wait_event event; start; finish = start } t.queue;
      t.completion <- start

let retire t ~now =
  let rec drop () =
    match Queue.peek_opt t.queue with
    | Some c when Time.compare c.finish now <= 0 ->
        ignore (Queue.pop t.queue);
        drop ()
    | _ -> ()
  in
  drop ()
