(** A stream: a FIFO command queue with stream-ordered virtual-time
    accounting.

    Commands on one stream serialize — each starts at
    [max now stream_completion] — while different streams overlap freely;
    device-wide completion is the max over streams, not the sum. The queue
    retains a record per in-flight command (sequence number, operation,
    start/finish times) until a synchronisation point {!retire}s the
    commands whose finish time has passed, which is what lets callers
    introspect how deep the pipeline currently is.

    Data side effects are NOT performed here: the owning {!Gpu} applies
    them eagerly at enqueue time (see gpu.mli); streams only account for
    time and ordering. *)

module Time = Simnet.Time

type op =
  | Kernel_launch of string  (** kernel name *)
  | Memcpy_h2d of int  (** bytes *)
  | Memcpy_d2h of int  (** bytes *)
  | Memset of int  (** bytes *)
  | Wait_event of int  (** event handle waited on *)

type command = { seq : int; op : op; start : Time.t; finish : Time.t }

type t

val create : id:int -> t
val id : t -> int

val completion : t -> Time.t
(** Virtual time at which everything enqueued so far has finished. *)

val pending : t -> int
(** Commands enqueued but not yet {!retire}d. *)

val pending_commands : t -> command list
(** Oldest first. *)

val enqueue : t -> now:Time.t -> seq:int -> op:op -> cost:Time.t -> Time.t
(** Append a command starting at [max now completion] and lasting [cost];
    returns (and records as the new completion) its finish time. *)

val wait_event : t -> seq:int -> event:int -> time:Time.t option -> unit
(** cudaStreamWaitEvent: all commands enqueued after this one start no
    earlier than [time]. [time = None] (event never recorded) is a no-op,
    per CUDA semantics. *)

val retire : t -> now:Time.t -> unit
(** Drop leading commands whose finish time is [<= now]. *)
