(** A CUDA event: a named timestamp in stream order.

    Recording an event on a stream snapshots the stream's completion time;
    other streams can then {!Stream.wait_event} on that snapshot to model
    cross-stream dependencies, and the host can compute elapsed times
    between two recorded events (cudaEventElapsedTime). An event may be
    re-recorded; the latest snapshot wins, as in CUDA. *)

module Time = Simnet.Time

type t

val create : id:int -> t
val id : t -> int

val record : t -> Time.t -> unit
(** Overwrites any earlier recording. *)

val recorded : t -> Time.t option
(** [None] until first recorded. *)

val is_recorded : t -> bool

val elapsed_ms : start:t -> stop:t -> float
(** Raises [Not_found] if either event has not been recorded. *)
