(** One simulated GPU: device memory, streams, events, kernel execution.

    The GPU is asynchronous relative to the host: each stream tracks the
    virtual time at which its queued work completes. Launching executes the
    kernel's side effects immediately (device memory is updated eagerly)
    but time is accounted on the stream; synchronisation points return the
    completion time so the caller (the Cricket server) can advance the
    simulation clock. This mirrors the CUDA execution model closely enough
    for the paper's workloads, which always synchronise before reading
    results back. *)

module Time = Simnet.Time

type t

val default_capacity_clamp : int
(** 2 GiB — the default bound applied to [total_global_mem] when no
    explicit capacity is given. *)

val create : ?memory_capacity:int -> ?capacity_clamp:int -> Device.t -> t
(** [memory_capacity] defaults to the device's [total_global_mem] clamped
    to [capacity_clamp] (default {!default_capacity_clamp}, 2 GiB) to keep
    host memory bounded. The backing store only grows as touched, so a
    fleet that needs per-device OOM behaviour to match the catalog (a
    16 GiB T4 must OOM before a 40 GiB A100) can pass a clamp of
    [max_int] and pay host memory only for bytes actually written;
    allocations beyond the effective capacity fail with OOM, as on a
    smaller device. *)

val device : t -> Device.t
val memory : t -> Memory.t

val set_obs : t -> Obs.Recorder.t -> unit
(** Attach an observability recorder: every stream command (kernel launch,
    memcpy, memset) is recorded as a ["gpu"]-layer span covering its
    execution interval on the device timeline. Commands run in the virtual
    future — completion can lie past the RPC dispatch that enqueued them —
    so the spans are root-level events with explicit timestamps, not
    children of the dispatch span. One branch per command while the
    recorder is disabled. *)

(** {1 Streams} *)

val default_stream : int
(** Stream handle 0, always valid. *)

val stream_create : t -> int
val stream_destroy : t -> int -> unit
(** Raises [Not_found] for an unknown handle. *)

val stream_valid : t -> int -> bool

val stream_completion : t -> int -> Time.t
(** When this stream's queued work finishes. *)

val stream_pending : t -> int -> int
(** Commands enqueued on the stream and not yet retired by a
    synchronisation point — the current pipeline depth. *)

val stream_commands : t -> int -> Stream.command list
(** The pending commands, oldest first. *)

val stream_synchronize : t -> now:Time.t -> int -> Time.t
(** Time at which the host resumes: [max now (stream_completion)].
    Retires the stream's finished commands. *)

val stream_wait_event : t -> stream:int -> event:int -> unit
(** cudaStreamWaitEvent: commands enqueued on [stream] after this call
    start no earlier than the event's recorded time (no-op if the event
    was never recorded, per CUDA). Raises [Not_found] for an unknown
    stream or event. *)

(** {1 Stream-ordered work submission}

    Data side effects are applied eagerly, in submission order, while the
    time cost is accounted on the stream — the same convention as
    {!launch}. Because every mutation of device memory happens at enqueue
    time in one global submission order, results are bit-identical to a
    fully synchronous execution of the same command sequence. *)

val memcpy_h2d : t -> now:Time.t -> ?stream:int -> dst:int -> bytes -> Time.t
(** Host-to-device copy at PCIe bandwidth; returns the stream's new
    completion time. Raises [Not_found] for an unknown stream and
    {!Memory.Error} on bad pointers/bounds. *)

val memcpy_d2h :
  t -> now:Time.t -> ?stream:int -> src:int -> int -> Time.t * bytes
(** [memcpy_d2h t ~now ?stream ~src len] is a device-to-host copy of [len]
    bytes; returns (completion time, data). *)

val memset :
  t -> now:Time.t -> ?stream:int -> ptr:int -> value:int -> int -> Time.t
(** [memset t ~now ?stream ~ptr ~value len]: on-device fill at memory
    bandwidth. *)

(** {1 Kernel execution} *)

val launch :
  t -> now:Time.t -> ?stream:int -> Kernels.t -> Kernels.launch -> Time.t
(** Enqueue and (eagerly) execute. Returns the stream's new completion
    time. Raises [Not_found] for an unknown stream and
    {!Kernels.Bad_args} for malformed arguments. *)

val synchronize : t -> now:Time.t -> Time.t
(** cudaDeviceSynchronize: completion time across all streams. *)

(** {1 Events} *)

val event_create : t -> int
val event_destroy : t -> int -> unit
val event_valid : t -> int -> bool

val event_record : t -> now:Time.t -> event:int -> stream:int -> unit
(** The event fires when the stream's currently-queued work completes. *)

val event_synchronize : t -> now:Time.t -> int -> Time.t

val event_elapsed_ms : t -> start:int -> stop:int -> float
(** cudaEventElapsedTime. Raises [Not_found] if either event is unknown or
    not yet recorded. *)

(** {1 Whole-device operations} *)

val reset : t -> unit
(** cudaDeviceReset: drop all memory, streams and events. *)

val set_memory : t -> Memory.t -> unit
(** Replace the device's memory wholesale (checkpoint restore). *)

type handles = {
  hs_streams : int list;  (** live non-default stream handles *)
  hs_events : (int * Simnet.Time.t option) list;
      (** event handle, recorded time *)
  hs_next_handle : int;
  hs_next_seq : int;
}
(** Stream/event handle state, for checkpoints. Only meaningful when the
    device is quiesced (all streams retired): queued commands are not
    captured, just which handles exist and what events have recorded. *)

val handles : t -> handles
val set_handles : t -> handles -> unit
