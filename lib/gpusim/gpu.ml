module Time = Simnet.Time

type t = {
  device : Device.t;
  mutable memory : Memory.t;
  streams : (int, Stream.t) Hashtbl.t;
  events : (int, Event.t) Hashtbl.t;
  mutable next_handle : int;
  mutable next_seq : int;  (* device-wide submission order *)
  mutable obs : Obs.Recorder.t;
}

let default_stream = 0
let default_capacity_clamp = 2 lsl 30

let create ?memory_capacity ?(capacity_clamp = default_capacity_clamp) device
    =
  let capacity =
    match memory_capacity with
    | Some c -> c
    | None ->
        let mem = device.Device.total_global_mem in
        if Int64.compare mem (Int64.of_int capacity_clamp) > 0 then
          capacity_clamp
        else Int64.to_int mem
  in
  let t =
    {
      device;
      memory = Memory.create ~capacity;
      streams = Hashtbl.create 8;
      events = Hashtbl.create 8;
      next_handle = 1;
      next_seq = 0;
      obs = Obs.Recorder.null;
    }
  in
  Hashtbl.add t.streams default_stream (Stream.create ~id:default_stream);
  t

let set_obs t obs = t.obs <- obs

(* Stream commands execute in the virtual future: [finish] (the stream's
   completion time) may lie past the dispatch span that enqueued the
   command, so the span is recorded retroactively at root level with
   explicit timestamps rather than nested under the current open span. *)
let gpu_span t name ~finish ~cost =
  if Obs.Recorder.enabled t.obs then
    Obs.Recorder.span_event t.obs ~layer:"gpu" ~name
      ~start_ns:(Time.sub finish cost) ~stop_ns:finish

let device t = t.device
let memory t = t.memory

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let next_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let stream_create t =
  let h = fresh_handle t in
  Hashtbl.add t.streams h (Stream.create ~id:h);
  h

let stream_ref t handle = Hashtbl.find t.streams handle

let stream_destroy t handle =
  if handle = default_stream then invalid_arg "cannot destroy default stream";
  if not (Hashtbl.mem t.streams handle) then raise Not_found;
  Hashtbl.remove t.streams handle

let stream_valid t handle = Hashtbl.mem t.streams handle
let stream_completion t handle = Stream.completion (stream_ref t handle)
let stream_pending t handle = Stream.pending (stream_ref t handle)
let stream_commands t handle = Stream.pending_commands (stream_ref t handle)

let stream_synchronize t ~now handle =
  let stream = stream_ref t handle in
  let completion = Stream.completion stream in
  let resume = if Time.compare completion now > 0 then completion else now in
  Stream.retire stream ~now:resume;
  resume

(* Transfer costs: host<->device staging over PCIe, on-device fills at
   memory bandwidth. *)
let pcie_cost t bytes =
  Time.of_float_ns (Float.of_int bytes /. t.device.Device.pcie_bandwidth *. 1e9)

let membw_cost t bytes =
  Time.of_float_ns
    (Float.of_int bytes /. t.device.Device.memory_bandwidth *. 1e9)

let launch t ~now ?(stream = default_stream) kernel launch_params =
  let s = stream_ref t stream in
  let cost_ns = kernel.Kernels.cost t.device launch_params in
  let cost =
    Time.add
      (Time.ns t.device.Device.launch_overhead_ns)
      (Time.of_float_ns cost_ns)
  in
  kernel.Kernels.execute t.memory launch_params;
  let finish =
    Stream.enqueue s ~now ~seq:(next_seq t)
      ~op:(Stream.Kernel_launch kernel.Kernels.name)
      ~cost
  in
  gpu_span t kernel.Kernels.name ~finish ~cost;
  finish

let memcpy_h2d t ~now ?(stream = default_stream) ~dst data =
  let s = stream_ref t stream in
  Memory.write t.memory dst data;
  let len = Bytes.length data in
  let cost = pcie_cost t len in
  let finish =
    Stream.enqueue s ~now ~seq:(next_seq t) ~op:(Stream.Memcpy_h2d len) ~cost
  in
  gpu_span t "memcpy_h2d" ~finish ~cost;
  finish

let memcpy_d2h t ~now ?(stream = default_stream) ~src len =
  let s = stream_ref t stream in
  (* Eager data effects mean device memory already reflects everything
     enqueued before this command, so reading now is stream-ordered. *)
  let data = Memory.read t.memory src len in
  let cost = pcie_cost t len in
  let finish =
    Stream.enqueue s ~now ~seq:(next_seq t) ~op:(Stream.Memcpy_d2h len) ~cost
  in
  gpu_span t "memcpy_d2h" ~finish ~cost;
  (finish, data)

let memset t ~now ?(stream = default_stream) ~ptr ~value len =
  let s = stream_ref t stream in
  Memory.memset t.memory ptr value len;
  let cost = membw_cost t len in
  let finish =
    Stream.enqueue s ~now ~seq:(next_seq t) ~op:(Stream.Memset len) ~cost
  in
  gpu_span t "memset" ~finish ~cost;
  finish

let synchronize t ~now =
  let resume =
    Hashtbl.fold
      (fun _ s acc ->
        let c = Stream.completion s in
        if Time.compare c acc > 0 then c else acc)
      t.streams now
  in
  Hashtbl.iter (fun _ s -> Stream.retire s ~now:resume) t.streams;
  resume

let event_create t =
  let h = fresh_handle t in
  Hashtbl.add t.events h (Event.create ~id:h);
  h

let event_destroy t handle =
  if not (Hashtbl.mem t.events handle) then raise Not_found;
  Hashtbl.remove t.events handle

let event_valid t handle = Hashtbl.mem t.events handle

let event_record t ~now ~event ~stream =
  let e = Hashtbl.find t.events event in
  let s = stream_ref t stream in
  let completion = Stream.completion s in
  let when_ = if Time.compare completion now > 0 then completion else now in
  Event.record e when_

let event_synchronize t ~now handle =
  match Event.recorded (Hashtbl.find t.events handle) with
  | Some when_ -> if Time.compare when_ now > 0 then when_ else now
  | None -> now

let event_elapsed_ms t ~start ~stop =
  Event.elapsed_ms
    ~start:(Hashtbl.find t.events start)
    ~stop:(Hashtbl.find t.events stop)

let stream_wait_event t ~stream ~event =
  let e = Hashtbl.find t.events event in
  let s = stream_ref t stream in
  Stream.wait_event s ~seq:(next_seq t) ~event ~time:(Event.recorded e)

type handles = {
  hs_streams : int list;
  hs_events : (int * Time.t option) list;
  hs_next_handle : int;
  hs_next_seq : int;
}

let handles t =
  {
    hs_streams =
      Hashtbl.fold
        (fun h _ acc -> if h = default_stream then acc else h :: acc)
        t.streams [];
    hs_events =
      Hashtbl.fold (fun h e acc -> (h, Event.recorded e) :: acc) t.events [];
    hs_next_handle = t.next_handle;
    hs_next_seq = t.next_seq;
  }

let set_handles t hs =
  Hashtbl.reset t.streams;
  Hashtbl.add t.streams default_stream (Stream.create ~id:default_stream);
  List.iter
    (fun h -> Hashtbl.add t.streams h (Stream.create ~id:h))
    hs.hs_streams;
  Hashtbl.reset t.events;
  List.iter
    (fun (h, recorded) ->
      let e = Event.create ~id:h in
      (match recorded with Some tm -> Event.record e tm | None -> ());
      Hashtbl.add t.events h e)
    hs.hs_events;
  t.next_handle <- hs.hs_next_handle;
  t.next_seq <- hs.hs_next_seq

let reset t =
  Memory.reset t.memory;
  Hashtbl.reset t.streams;
  Hashtbl.reset t.events;
  Hashtbl.add t.streams default_stream (Stream.create ~id:default_stream);
  t.next_handle <- 1;
  t.next_seq <- 0

let set_memory t m = t.memory <- m
