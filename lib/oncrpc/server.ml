let src = Logs.Src.create "oncrpc.server" ~doc:"ONC RPC server"

module Log = (val Logs.src_log src : Logs.LOG)

type handler = Xdr.Decode.t -> Xdr.Encode.t -> unit

type service = { vers : int; procedures : (int, handler) Hashtbl.t }

(* At-most-once duplicate-request cache: remembers the reply produced for
   each (ident, xid, prog, vers, proc), so a client retransmission of a
   call whose reply was lost gets the original reply back instead of
   re-executing the handler. The leading [ident] is the caller's
   connection/tenant identity: two tenants reusing the same xid space must
   never collide into each other's cached replies, so identity is part of
   the key. Bounded FIFO; a live retransmission always targets a recent
   entry, so eviction of old xids is safe. *)
type dup_key = string * int32 * int * int * int

type dup_cache = {
  capacity : int;
  entries : (dup_key, string option) Hashtbl.t;
  order : dup_key Queue.t;
  mutable hits : int;
  lock : Mutex.t;
      (* guards entries/order/hits — servers are shared across domains
         by the sharded harnesses, and Hashtbl is not domain-safe *)
}

type protocol_error =
  | Unparseable_request of string
  | Unexpected_reply of { xid : int32 }

exception Protocol_error of protocol_error

let () =
  Printexc.register_printer (function
    | Protocol_error (Unparseable_request detail) ->
        Some
          (Printf.sprintf "Oncrpc.Server.Protocol_error(Unparseable_request %S)"
             detail)
    | Protocol_error (Unexpected_reply { xid }) ->
        Some
          (Printf.sprintf
             "Oncrpc.Server.Protocol_error(Unexpected_reply xid=%ld)" xid)
    | _ -> None)

type t = {
  name : string;
  programs : (int, service list ref) Hashtbl.t;
  oneway : (int * int * int, unit) Hashtbl.t;  (* (prog, vers, proc) *)
  mutable auth_check : Auth.t -> Message.auth_stat option;
  mutable has_auth_check : bool;
      (* whether a real auth hook is installed: the pre-parsed fast path
         must fall back to the full software decode when it is, because
         the device does not parse credentials *)
  mutable observer : prog:int -> vers:int -> proc:int -> arg_bytes:int -> unit;
  mutable dup_cache : dup_cache option;
  mutable obs : Obs.Recorder.t;
  mutable obs_proc_name : prog:int -> vers:int -> proc:int -> string;
}

let default_proc_name ~prog:_ ~vers:_ ~proc = "proc-" ^ string_of_int proc

let create ?(name = "oncrpc") () =
  {
    name;
    programs = Hashtbl.create 8;
    oneway = Hashtbl.create 8;
    auth_check = (fun _ -> None);
    has_auth_check = false;
    observer = (fun ~prog:_ ~vers:_ ~proc:_ ~arg_bytes:_ -> ());
    dup_cache = None;
    obs = Obs.Recorder.null;
    obs_proc_name = default_proc_name;
  }

let set_obs ?proc_name t obs =
  t.obs <- obs;
  match proc_name with
  | Some f -> t.obs_proc_name <- f
  | None -> ()

let set_dup_cache ?(capacity = 4096) t =
  if capacity < 1 then invalid_arg "Server.set_dup_cache";
  t.dup_cache <-
    Some
      {
        capacity;
        entries = Hashtbl.create capacity;
        order = Queue.create ();
        hits = 0;
        lock = Mutex.create ();
      }

let dup_hits t =
  match t.dup_cache with
  | None -> 0
  | Some c ->
      Mutex.lock c.lock;
      let n = c.hits in
      Mutex.unlock c.lock;
      n

let null_procedure (_ : Xdr.Decode.t) (_ : Xdr.Encode.t) = ()

let register t ~prog ~vers procedures =
  let services =
    match Hashtbl.find_opt t.programs prog with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.programs prog l;
        l
  in
  let service =
    match List.find_opt (fun s -> s.vers = vers) !services with
    | Some s -> s
    | None ->
        let s = { vers; procedures = Hashtbl.create 32 } in
        services := s :: !services;
        s
  in
  if not (Hashtbl.mem service.procedures 0) then
    Hashtbl.replace service.procedures 0 null_procedure;
  List.iter
    (fun (proc, h) -> Hashtbl.replace service.procedures proc h)
    procedures

let set_oneway t ~prog ~vers procs =
  List.iter (fun proc -> Hashtbl.replace t.oneway (prog, vers, proc) ()) procs

let is_oneway t ~prog ~vers ~proc = Hashtbl.mem t.oneway (prog, vers, proc)

let set_auth_check t f =
  t.auth_check <- f;
  t.has_auth_check <- true
let set_observer t f = t.observer <- f

let encode_reply msg results =
  let enc = Xdr.Encode.create () in
  Message.encode enc msg;
  (match results with Some f -> f enc | None -> ());
  Xdr.Encode.to_string enc

let version_range services =
  List.fold_left
    (fun (lo, hi) s -> (min lo s.vers, max hi s.vers))
    (max_int, min_int) services

let dispatch_call t dec ~xid c =
  match t.auth_check c.Message.cred with
      | Some stat ->
          Some
            (encode_reply
               (Message.reply_denied ~xid (Message.Auth_error stat))
               None)
      | None -> (
          match Hashtbl.find_opt t.programs c.Message.prog with
          | None ->
              Some
                (encode_reply (Message.reply_error ~xid Message.Prog_unavail)
                   None)
          | Some services -> (
              match
                List.find_opt (fun s -> s.vers = c.Message.vers) !services
              with
              | None ->
                  let low, high = version_range !services in
                  Some
                    (encode_reply
                       (Message.reply_error ~xid
                          (Message.Prog_mismatch { low; high }))
                       None)
              | Some service -> (
                  match Hashtbl.find_opt service.procedures c.Message.proc with
                  | None ->
                      Some
                        (encode_reply
                           (Message.reply_error ~xid Message.Proc_unavail)
                           None)
                  | Some handler ->
                      t.observer ~prog:c.Message.prog ~vers:c.Message.vers
                        ~proc:c.Message.proc
                        ~arg_bytes:(Xdr.Decode.remaining dec);
                      (* One-way ("batched") procedures never reply — not
                         even on error; failures are logged and otherwise
                         dropped, as RFC 5531 §8 prescribes. *)
                      let oneway =
                        is_oneway t ~prog:c.Message.prog ~vers:c.Message.vers
                          ~proc:c.Message.proc
                      in
                      let results = Xdr.Encode.create () in
                      let reply =
                        match
                          let () = handler dec results in
                          Xdr.Decode.finish dec
                        with
                        | () ->
                            encode_reply
                              (Message.reply_success ~xid ())
                              (* splice, don't flatten: a bulk download
                                 payload stays a slice until the final
                                 wire string is built *)
                              (Some
                                 (fun enc -> Xdr.Encode.append enc results))
                        | exception Xdr.Types.Error e ->
                            Log.debug (fun m ->
                                m "%s: garbage args for proc %d: %s" t.name
                                  c.Message.proc
                                  (Xdr.Types.error_to_string e));
                            encode_reply
                              (Message.reply_error ~xid Message.Garbage_args)
                              None
                        | exception e ->
                            Log.warn (fun m ->
                                m "%s: handler for proc %d raised %s" t.name
                                  c.Message.proc (Printexc.to_string e));
                            encode_reply
                              (Message.reply_error ~xid Message.System_err)
                              None
                      in
                      if oneway then None else Some reply)))

let dup_lookup t key =
  match t.dup_cache with
  | None -> None
  | Some cache ->
      Mutex.lock cache.lock;
      let hit = Hashtbl.find_opt cache.entries key in
      (match hit with Some _ -> cache.hits <- cache.hits + 1 | None -> ());
      Mutex.unlock cache.lock;
      hit

let dup_store t key reply =
  match t.dup_cache with
  | None -> ()
  | Some cache ->
      Mutex.lock cache.lock;
      if Queue.length cache.order >= cache.capacity then
        Hashtbl.remove cache.entries (Queue.pop cache.order);
      Queue.push key cache.order;
      Hashtbl.replace cache.entries key reply;
      Mutex.unlock cache.lock

(* The common tail of both dispatch paths: at-most-once cache around the
   dispatch-layer span around {!dispatch_call}. *)
let dispatch_cached ?(ident = "") t dec ~xid c =
  let key = (ident, xid, c.Message.prog, c.Message.vers, c.Message.proc) in
  match dup_lookup t key with
  | Some reply ->
      (* Retransmission of an already-executed call: serve the recorded
         reply (or, for a one-way call, suppress re-execution). *)
      Obs.Recorder.incr t.obs "rpc.dup_hit";
      Log.debug (fun m ->
          m "%s: duplicate xid %ld proc %d — replaying cached reply" t.name
            xid c.Message.proc);
      reply
  | None ->
      let sp =
        if Obs.Recorder.enabled t.obs then
          Obs.Recorder.span_begin t.obs ~layer:"dispatch"
            (Printf.sprintf "%s xid=%ld"
               (t.obs_proc_name ~prog:c.Message.prog ~vers:c.Message.vers
                  ~proc:c.Message.proc)
               xid)
        else Obs.Recorder.null_span
      in
      let reply =
        try dispatch_call t dec ~xid c
        with e ->
          Obs.Recorder.span_end t.obs sp;
          raise e
      in
      Obs.Recorder.span_end t.obs sp;
      dup_store t key reply;
      reply

let dispatch_opt ?ident t request =
  let dec = Xdr.Decode.of_string request in
  let msg =
    try Message.decode dec
    with Xdr.Types.Error e ->
      raise (Protocol_error (Unparseable_request (Xdr.Types.error_to_string e)))
  in
  let xid = msg.Message.xid in
  match msg.Message.body with
  | Message.Reply _ -> raise (Protocol_error (Unexpected_reply { xid }))
  | Message.Call c -> dispatch_cached ?ident t dec ~xid c

(* Fast path for device-parsed calls: the RPC engine already framed the
   record and parsed the header, so the host positions a decoder at the
   body and skips {!Message.decode} entirely. Replies are byte-identical
   to {!dispatch_opt} on the same record. When a real auth hook is
   installed we fall back to the software path — the device does not parse
   credentials, and the hook must see them. *)
let dispatch_preparsed ?ident t ~xid ~prog ~vers ~proc ~body_off request =
  if t.has_auth_check then dispatch_opt ?ident t request
  else begin
    if body_off < 0 || body_off > String.length request then
      raise
        (Protocol_error
           (Unparseable_request
              (Printf.sprintf "preparsed body offset %d out of bounds"
                 body_off)));
    let dec = Xdr.Decode.of_string ~pos:body_off request in
    let c =
      { Message.prog; vers; proc; cred = Auth.none; verf = Auth.none }
    in
    dispatch_cached ?ident t dec ~xid c
  end

let dispatch ?ident t request =
  Option.value (dispatch_opt ?ident t request) ~default:""

(* Per-connection identity for transports that carry no explicit tenant:
   each served connection gets a fresh ident, so concurrent clients with
   overlapping xid spaces keep separate at-most-once cache entries. *)
let conn_counter = ref 0
let conn_counter_mutex = Mutex.create ()

let fresh_conn_ident () =
  Mutex.lock conn_counter_mutex;
  incr conn_counter;
  let n = !conn_counter in
  Mutex.unlock conn_counter_mutex;
  Printf.sprintf "conn-%d" n

let serve_transport ?ident t transport =
  let ident =
    match ident with Some i -> i | None -> fresh_conn_ident ()
  in
  let rec loop () =
    match Record.read_opt transport with
    | None -> ()
    | Some request ->
        (match dispatch_opt ~ident t request with
        | None -> ()
        | Some reply -> Record.write transport reply);
        loop ()
  in
  (try loop () with
  | Transport.Closed -> ()
  | e ->
      Log.warn (fun m -> m "%s: connection error: %s" t.name (Printexc.to_string e)));
  transport.Transport.close ()

type tcp_server = {
  fd : Unix.file_descr;
  port : int;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
}

let serve_tcp t ?(backlog = 16) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd backlog;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let server = { fd; port; running = true; accept_thread = None } in
  let accept_loop () =
    while server.running do
      match Unix.accept fd with
      | conn, _ ->
          let transport = Transport.of_fd conn in
          ignore (Thread.create (fun () -> serve_transport t transport) ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          server.running <- false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  server.accept_thread <- Some (Thread.create accept_loop ());
  server

let tcp_port s = s.port

let shutdown_tcp s =
  s.running <- false;
  (try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close s.fd with Unix.Unix_error _ -> ());
  (* The accept loop exits on the next failed accept. *)
  match s.accept_thread with
  | Some thread -> ( try Thread.join thread with _ -> ())
  | None -> ()
