(* Staging-buffer pool for the record-marking datapath.

   Record reassembly and fragment staging need short-lived byte buffers
   whose sizes repeat call after call (the fragment size, the reply size).
   On 100k-iteration workloads, allocating them fresh each call makes the
   GC a datapath cost; this pool recycles them instead.

   Buffers are binned by power-of-two capacity. [acquire n] returns a
   buffer of capacity >= n (the caller uses the first n bytes); [release]
   returns it to its bin. Bins are bounded, and buffers above
   [max_buffer_size] bypass the pool entirely, so a burst of huge records
   cannot pin memory forever. Thread-safe: server connection threads share
   the default pool. *)

type stats = { hits : int; misses : int; releases : int; drops : int }

type t = {
  bins : bytes list array; (* index = log2 capacity *)
  counts : int array;
  per_bin : int;
  max_buffer_size : int;
  max_bin_cap : int;
      (* pow2 ceiling of max_buffer_size: the largest capacity [acquire]
         can actually hand out of a bin. [release] must accept up to this
         bound, not [max_buffer_size] — with a non-power-of-two
         [max_buffer_size], requests just under it round up to the next
         pow2 bin, and rejecting those buffers on release would leak every
         pooled buffer of the top bin to the GC, forever *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable releases : int;
  mutable drops : int;
}

let max_bin = 63

let log2_ceil n =
  let rec go k c = if c >= n then k else go (k + 1) (c * 2) in
  if n <= 1 then 0 else go 0 1

let create ?(per_bin = 8) ?(max_buffer_size = 8 lsl 20) () =
  if per_bin < 1 then invalid_arg "Pool.create";
  {
    bins = Array.make (max_bin + 1) [];
    counts = Array.make (max_bin + 1) 0;
    per_bin;
    max_buffer_size;
    max_bin_cap = 1 lsl log2_ceil max_buffer_size;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    releases = 0;
    drops = 0;
  }

let acquire t n =
  if n < 0 then invalid_arg "Pool.acquire";
  if n > t.max_buffer_size then begin
    Mutex.lock t.lock;
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    Bytes.create n
  end
  else begin
    let bin = log2_ceil n in
    Mutex.lock t.lock;
    match t.bins.(bin) with
    | b :: rest ->
        t.bins.(bin) <- rest;
        t.counts.(bin) <- t.counts.(bin) - 1;
        t.hits <- t.hits + 1;
        Mutex.unlock t.lock;
        b
    | [] ->
        t.misses <- t.misses + 1;
        Mutex.unlock t.lock;
        Bytes.create (1 lsl bin)
  end

let release t b =
  let cap = Bytes.length b in
  (* Only buffers the pool itself would hand out re-enter it: exact
     power-of-two capacity up to the top bin's capacity. Anything else is
     dropped to the GC, which makes releasing a foreign or oversized
     buffer harmless. *)
  if cap > 0 && cap <= t.max_bin_cap && cap land (cap - 1) = 0 then begin
    let bin = log2_ceil cap in
    Mutex.lock t.lock;
    if t.counts.(bin) < t.per_bin && not (List.memq b t.bins.(bin)) then begin
      t.bins.(bin) <- b :: t.bins.(bin);
      t.counts.(bin) <- t.counts.(bin) + 1;
      t.releases <- t.releases + 1
    end
    else t.drops <- t.drops + 1;
    Mutex.unlock t.lock
  end
  else begin
    Mutex.lock t.lock;
    t.drops <- t.drops + 1;
    Mutex.unlock t.lock
  end

let stats t =
  Mutex.lock t.lock;
  let s =
    { hits = t.hits; misses = t.misses; releases = t.releases; drops = t.drops }
  in
  Mutex.unlock t.lock;
  s

let default = create ()
