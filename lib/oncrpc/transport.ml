type t = {
  send : bytes -> int -> int -> unit;
  recv : bytes -> int -> int -> int;
  close : unit -> unit;
  sendv : (Xdr.Iovec.t -> unit) option;
  hdr_scratch : bytes;
}

exception Closed
exception Timeout

type connect_error = Resolution_failed of { host : string; port : int }

exception Connect_error of connect_error

let () =
  Printexc.register_printer (function
    | Closed -> Some "Oncrpc.Transport.Closed"
    | Timeout -> Some "Oncrpc.Transport.Timeout"
    | Connect_error (Resolution_failed { host; port }) ->
        Some
          (Printf.sprintf
             "Oncrpc.Transport.Connect_error(Resolution_failed %s:%d)" host
             port)
    | _ -> None)

let make ?sendv ~send ~recv ~close () =
  { send; recv; close; sendv; hdr_scratch = Bytes.create 4 }

let send_string t s = t.send (Bytes.unsafe_of_string s) 0 (String.length s)

(* Vectored write: one gather call when the transport supports it,
   otherwise a per-slice loop over [send]. Either way no slice is blitted
   into an intermediate buffer here — the transport's own copy (socket
   write, queue append) is the only one on this path. *)
let writev t iov =
  match t.sendv with
  | Some f -> f iov
  | None ->
      Xdr.Iovec.iter
        (fun s ->
          t.send
            (Bytes.unsafe_of_string s.Xdr.Iovec.base)
            s.Xdr.Iovec.off s.Xdr.Iovec.len)
        iov

let recv_exact t buf off len =
  let rec loop off len =
    if len > 0 then begin
      let n = t.recv buf off len in
      if n = 0 then raise Closed;
      loop (off + n) (len - n)
    end
  in
  loop off len

(* One direction of an in-memory pipe: a growable byte queue guarded by a
   mutex, with a condition to block readers until data or EOF arrives. *)
module Byte_queue = struct
  type q = {
    mutable data : Buffer.t;
    mutable closed : bool;
    lock : Mutex.t;
    cond : Condition.t;
  }

  let create () =
    { data = Buffer.create 1024; closed = false; lock = Mutex.create ();
      cond = Condition.create () }

  let push q buf off len =
    Mutex.lock q.lock;
    if q.closed then begin
      Mutex.unlock q.lock;
      raise Closed
    end;
    Buffer.add_subbytes q.data buf off len;
    Condition.signal q.cond;
    Mutex.unlock q.lock

  (* Gather write: all slices land under one lock acquisition, so a whole
     record (headers + payload views) is appended atomically. *)
  let pushv q iov =
    Mutex.lock q.lock;
    if q.closed then begin
      Mutex.unlock q.lock;
      raise Closed
    end;
    Xdr.Iovec.iter
      (fun s ->
        Buffer.add_substring q.data s.Xdr.Iovec.base s.Xdr.Iovec.off
          s.Xdr.Iovec.len)
      iov;
    Condition.signal q.cond;
    Mutex.unlock q.lock

  let pop q buf off len =
    Mutex.lock q.lock;
    while Buffer.length q.data = 0 && not q.closed do
      Condition.wait q.cond q.lock
    done;
    let avail = Buffer.length q.data in
    let n = min len avail in
    if n > 0 then begin
      Buffer.blit q.data 0 buf off n;
      (* Buffer has no efficient drop-front; rebuild the remainder. *)
      let rest = Buffer.sub q.data n (avail - n) in
      Buffer.clear q.data;
      Buffer.add_string q.data rest
    end;
    Mutex.unlock q.lock;
    n

  let close q =
    Mutex.lock q.lock;
    q.closed <- true;
    Condition.broadcast q.cond;
    Mutex.unlock q.lock
end

let pipe () =
  let a_to_b = Byte_queue.create () and b_to_a = Byte_queue.create () in
  let endpoint tx rx =
    make
      ~sendv:(fun iov -> Byte_queue.pushv tx iov)
      ~send:(fun buf off len -> Byte_queue.push tx buf off len)
      ~recv:(fun buf off len -> Byte_queue.pop rx buf off len)
      ~close:(fun () ->
        Byte_queue.close tx;
        Byte_queue.close rx)
      ()
  in
  (endpoint a_to_b b_to_a, endpoint b_to_a a_to_b)

let loopback ~peer =
  let out = Buffer.create 1024 in
  let pending = Buffer.create 1024 in
  let closed = ref false in
  let send buf off len =
    if !closed then raise Closed;
    Buffer.add_subbytes out buf off len
  in
  let sendv iov =
    if !closed then raise Closed;
    Xdr.Iovec.iter
      (fun s ->
        Buffer.add_substring out s.Xdr.Iovec.base s.Xdr.Iovec.off
          s.Xdr.Iovec.len)
      iov
  in
  let recv buf off len =
    if !closed then 0
    else begin
      if Buffer.length pending = 0 then begin
        if Buffer.length out = 0 then raise Closed;
        let request = Buffer.contents out in
        Buffer.clear out;
        Buffer.add_string pending (peer request)
      end;
      let avail = Buffer.length pending in
      let n = min len avail in
      Buffer.blit pending 0 buf off n;
      let rest = Buffer.sub pending n (avail - n) in
      Buffer.clear pending;
      Buffer.add_string pending rest;
      n
    end
  in
  make ~sendv ~send ~recv ~close:(fun () -> closed := true) ()

let of_fd fd =
  let send buf off len =
    let rec loop off len =
      if len > 0 then begin
        let n =
          try Unix.write fd buf off len
          with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            raise Closed
        in
        loop (off + n) (len - n)
      end
    in
    loop off len
  in
  (* No writev in the Unix module: gather by looping [send] per slice.
     Slices on this path are fragment-sized, so the syscall count matches
     the fragment count, not the byte count. *)
  let sendv iov =
    Xdr.Iovec.iter
      (fun s ->
        send (Bytes.unsafe_of_string s.Xdr.Iovec.base) s.Xdr.Iovec.off
          s.Xdr.Iovec.len)
      iov
  in
  let recv buf off len =
    try Unix.read fd buf off len
    with Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
  in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  make ~sendv ~send ~recv ~close ()

let tcp_connect ~host ~port =
  let addr =
    match Unix.getaddrinfo host (string_of_int port)
            [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
    | { Unix.ai_addr; _ } :: _ -> ai_addr
    | [] -> raise (Connect_error (Resolution_failed { host; port }))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd addr;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     Unix.close fd;
     raise e);
  of_fd fd
