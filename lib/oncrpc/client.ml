type error =
  | Call_rejected of Message.rejected
  | Call_failed of Message.accept_stat
  | Bad_reply of string

exception Rpc_error of error

let error_to_string = function
  | Call_rejected r -> Format.asprintf "call denied: %a" Message.pp_rejected r
  | Call_failed s -> Format.asprintf "call failed: %a" Message.pp_accept_stat s
  | Bad_reply s -> "bad reply: " ^ s

let () =
  Printexc.register_printer (function
    | Rpc_error e -> Some ("Oncrpc.Client.Rpc_error: " ^ error_to_string e)
    | _ -> None)

type stats = {
  calls : int;
  bytes_sent : int;
  bytes_received : int;
  wire_bytes_sent : int;
  wire_bytes_received : int;
}

let empty_stats =
  { calls = 0; bytes_sent = 0; bytes_received = 0; wire_bytes_sent = 0;
    wire_bytes_received = 0 }

type t = {
  transport : Transport.t;
  prog : int;
  vers : int;
  cred : Auth.t;
  fragment_size : int;
  mutable next_xid : int32;
  mutable stats : stats;
}

let create ?(cred = Auth.none) ?(fragment_size = Record.default_fragment_size)
    ?(first_xid = 1l) ~transport ~prog ~vers () =
  { transport; prog; vers; cred; fragment_size; next_xid = first_xid;
    stats = empty_stats }

let wire_length ~fragment_size payload =
  let fragments = max 1 ((payload + fragment_size - 1) / fragment_size) in
  payload + (4 * fragments)

let call t ~proc encode_args decode_results =
  let xid = t.next_xid in
  t.next_xid <- Int32.add t.next_xid 1l;
  let enc = Xdr.Encode.create () in
  Message.encode enc
    (Message.call ~cred:t.cred ~xid ~prog:t.prog ~vers:t.vers ~proc ());
  let header_len = Xdr.Encode.length enc in
  encode_args enc;
  let request = Xdr.Encode.to_string enc in
  let args_len = String.length request - header_len in
  Record.write ~fragment_size:t.fragment_size t.transport request;
  (* Skip replies to abandoned xids; block for ours. *)
  let rec await () =
    let reply = Record.read t.transport in
    let dec = Xdr.Decode.of_string reply in
    let msg =
      try Message.decode dec
      with Xdr.Types.Error e ->
        raise (Rpc_error (Bad_reply (Xdr.Types.error_to_string e)))
    in
    if msg.Message.xid <> xid then await ()
    else begin
      (match msg.Message.body with
      | Message.Call _ -> raise (Rpc_error (Bad_reply "received a CALL"))
      | Message.Reply (Message.Denied d) -> raise (Rpc_error (Call_rejected d))
      | Message.Reply (Message.Accepted { stat = Message.Success; _ }) -> ()
      | Message.Reply (Message.Accepted { stat; _ }) ->
          raise (Rpc_error (Call_failed stat)));
      (reply, dec)
    end
  in
  let reply, dec = await () in
  let results_start = Xdr.Decode.pos dec in
  let result =
    try
      let r = decode_results dec in
      Xdr.Decode.finish dec;
      r
    with Xdr.Types.Error e ->
      raise (Rpc_error (Bad_reply (Xdr.Types.error_to_string e)))
  in
  let results_len = String.length reply - results_start in
  let s = t.stats in
  t.stats <-
    {
      calls = s.calls + 1;
      bytes_sent = s.bytes_sent + args_len;
      bytes_received = s.bytes_received + results_len;
      wire_bytes_sent =
        s.wire_bytes_sent
        + wire_length ~fragment_size:t.fragment_size (String.length request);
      wire_bytes_received =
        s.wire_bytes_received
        + wire_length ~fragment_size:Record.default_fragment_size
            (String.length reply);
    };
  result

let call_void t ~proc encode_args = call t ~proc encode_args Xdr.Decode.void

(* RFC 5531 §8 "batching": send the call and do not wait for (or expect) a
   reply. The record sits in the transport's send path until a subsequent
   synchronous call flushes the connection, so N one-way calls followed by
   one blocking call cost a single round trip. *)
let call_oneway t ~proc encode_args =
  let xid = t.next_xid in
  t.next_xid <- Int32.add t.next_xid 1l;
  let enc = Xdr.Encode.create () in
  Message.encode enc
    (Message.call ~cred:t.cred ~xid ~prog:t.prog ~vers:t.vers ~proc ());
  let header_len = Xdr.Encode.length enc in
  encode_args enc;
  let request = Xdr.Encode.to_string enc in
  let args_len = String.length request - header_len in
  Record.write ~fragment_size:t.fragment_size t.transport request;
  let s = t.stats in
  t.stats <-
    {
      s with
      calls = s.calls + 1;
      bytes_sent = s.bytes_sent + args_len;
      wire_bytes_sent =
        s.wire_bytes_sent
        + wire_length ~fragment_size:t.fragment_size (String.length request);
    }
let stats t = t.stats
let reset_stats t = t.stats <- empty_stats
let close t = t.transport.Transport.close ()
