type error =
  | Call_rejected of Message.rejected
  | Call_failed of Message.accept_stat
  | Bad_reply of string
  | Deadline_exceeded of { elapsed_ns : int64 }

exception Rpc_error of error

let error_to_string = function
  | Call_rejected r -> Format.asprintf "call denied: %a" Message.pp_rejected r
  | Call_failed s -> Format.asprintf "call failed: %a" Message.pp_accept_stat s
  | Bad_reply s -> "bad reply: " ^ s
  | Deadline_exceeded { elapsed_ns } ->
      Printf.sprintf "deadline exceeded after %Ld ns" elapsed_ns

let () =
  Printexc.register_printer (function
    | Rpc_error e -> Some ("Oncrpc.Client.Rpc_error: " ^ error_to_string e)
    | _ -> None)

type retry_policy = {
  max_attempts : int;
  base_backoff_ns : int;
  max_backoff_ns : int;
  jitter : float;
  deadline_ns : int option;
}

let default_retry =
  {
    max_attempts = 8;
    base_backoff_ns = 100_000 (* 100 us *);
    max_backoff_ns = 50_000_000 (* 50 ms *);
    jitter = 0.1;
    deadline_ns = None;
  }

type stats = {
  calls : int;
  bytes_sent : int;
  bytes_received : int;
  wire_bytes_sent : int;
  wire_bytes_received : int;
  retries : int;
  timeouts : int;
  reconnects : int;
}

let empty_stats =
  { calls = 0; bytes_sent = 0; bytes_received = 0; wire_bytes_sent = 0;
    wire_bytes_received = 0; retries = 0; timeouts = 0; reconnects = 0 }

type t = {
  mutable transport : Transport.t;
  prog : int;
  vers : int;
  cred : Auth.t;
  fragment_size : int;
  next_xid : int Atomic.t;
      (* xid allocation is the one client-side operation multiple domains
         may legitimately race on (pipelined callers sharing a client);
         a fetch-and-add keeps xids unique without a lock. Stored as an
         int and truncated to int32 on use, so the space wraps exactly
         like the wire representation. *)
  mutable stats : stats;
  mutable retry : retry_policy option;
  mutable now : unit -> int64;  (* virtual-time clock, ns *)
  mutable sleep : int64 -> unit;  (* backoff; advances the virtual clock *)
  mutable reconnect : (unit -> Transport.t) option;
  mutable on_reconnect : unit -> unit;
  mutable give_up : exn -> exn;
  rng : Random.State.t;
  mutable obs : Obs.Recorder.t;
  mutable obs_proc_name : int -> string;
}

let create ?(cred = Auth.none) ?(fragment_size = Record.default_fragment_size)
    ?(first_xid = 1l) ?retry ?(seed = 1) ~transport ~prog ~vers () =
  {
    transport;
    prog;
    vers;
    cred;
    fragment_size;
    next_xid = Atomic.make (Int32.to_int first_xid);
    stats = empty_stats;
    retry;
    now = (fun () -> 0L);
    sleep = (fun _ -> ());
    reconnect = None;
    on_reconnect = (fun () -> ());
    give_up = Fun.id;
    rng = Random.State.make [| seed; 0x72657472 |];
    obs = Obs.Recorder.null;
    obs_proc_name = (fun proc -> "proc-" ^ string_of_int proc);
  }

let set_obs ?proc_name t obs =
  t.obs <- obs;
  match proc_name with Some f -> t.obs_proc_name <- f | None -> ()

let set_retry t policy = t.retry <- policy
let set_xid_origin t xid = Atomic.set t.next_xid (Int32.to_int xid)
let alloc_xid t = Int32.of_int (Atomic.fetch_and_add t.next_xid 1)
let set_clock t ~now ~sleep =
  t.now <- now;
  t.sleep <- sleep

let set_reconnect t f = t.reconnect <- Some f
let set_on_reconnect t f = t.on_reconnect <- f
let set_give_up t f = t.give_up <- f
let set_transport t transport = t.transport <- transport
let transport t = t.transport

let wire_length ~fragment_size payload =
  let fragments = max 1 ((payload + fragment_size - 1) / fragment_size) in
  payload + (4 * fragments)

(* Exponential backoff with deterministic jitter: the n-th retry (0-based)
   waits base * 2^n, clamped to max, scaled by a factor drawn from
   [1 - jitter, 1 + jitter] off the client's seeded PRNG. *)
let backoff_ns t (p : retry_policy) n =
  let base = float_of_int p.base_backoff_ns *. (2.0 ** float_of_int n) in
  let clamped = Float.min base (float_of_int p.max_backoff_ns) in
  let factor =
    if p.jitter <= 0.0 then 1.0
    else 1.0 -. p.jitter +. Random.State.float t.rng (2.0 *. p.jitter)
  in
  Int64.of_float (clamped *. factor)

(* One failed attempt under a retry policy: account it, enforce the
   deadline and attempt budget, back off (virtual time), and try to
   re-establish the connection if it is gone. Raises when the call must
   not be retried; returns to let the caller retransmit. *)
let handle_attempt_failure t ~started ~deadline_ns ~attempt exn =
  match t.retry with
  | None -> raise exn
  | Some p ->
      (match exn with
      | Transport.Timeout ->
          t.stats <- { t.stats with timeouts = t.stats.timeouts + 1 };
          Obs.Recorder.incr t.obs "rpc.timeout"
      | _ -> ());
      if attempt + 1 >= p.max_attempts then raise (t.give_up exn);
      let deadline = match deadline_ns with Some _ -> deadline_ns | None -> p.deadline_ns in
      (match deadline with
      | Some d when Int64.sub (t.now ()) started >= Int64.of_int d ->
          raise
            (t.give_up
               (Rpc_error
                  (Deadline_exceeded
                     { elapsed_ns = Int64.sub (t.now ()) started })))
      | _ -> ());
      t.sleep (backoff_ns t p attempt);
      t.stats <- { t.stats with retries = t.stats.retries + 1 };
      Obs.Recorder.incr t.obs "rpc.retry";
      match exn with
      | Transport.Closed -> (
          (* the connection is gone: without a reconnect hook a resend can
             only fail again, so give up immediately *)
          match t.reconnect with
          | None -> raise (t.give_up exn)
          | Some rc -> (
              match rc () with
              | transport ->
                  t.transport <- transport;
                  t.stats <-
                    { t.stats with reconnects = t.stats.reconnects + 1 };
                  Obs.Recorder.incr t.obs "rpc.reconnect";
                  t.on_reconnect ()
              | exception Transport.Closed ->
                  (* still down; the next attempt backs off again *) ()))
      | _ -> ()

(* The request is kept in vectored form end to end: bulk arguments appear
   as views of the caller's buffers, and [Record.writev] interleaves
   fragment headers without flattening. Retransmissions resend the same
   iovec — safe because the aliased buffers belong to the in-progress call
   and cannot be mutated until it returns. *)
let encode_call t ~xid ~proc encode_args =
  let enc = Xdr.Encode.create () in
  Message.encode enc
    (Message.call ~cred:t.cred ~xid ~prog:t.prog ~vers:t.vers ~proc ());
  let header_len = Xdr.Encode.length enc in
  encode_args enc;
  let request = Xdr.Encode.to_iovec enc in
  (request, Xdr.Iovec.length request - header_len)

let call ?deadline_ns t ~proc encode_args decode_results =
  let xid = alloc_xid t in
  let shim_sp =
    if Obs.Recorder.enabled t.obs then
      Obs.Recorder.span_begin t.obs ~layer:"shim" (t.obs_proc_name proc)
    else Obs.Recorder.null_span
  in
  try
  let request, args_len = encode_call t ~xid ~proc encode_args in
  (* Skip replies to abandoned xids; block for ours. *)
  let rec await () =
    let reply = Record.read t.transport in
    let dec = Xdr.Decode.of_string reply in
    let msg =
      try Message.decode dec
      with Xdr.Types.Error e ->
        raise (Rpc_error (Bad_reply (Xdr.Types.error_to_string e)))
    in
    if msg.Message.xid <> xid then await ()
    else begin
      (match msg.Message.body with
      | Message.Call _ -> raise (Rpc_error (Bad_reply "received a CALL"))
      | Message.Reply (Message.Denied d) -> raise (Rpc_error (Call_rejected d))
      | Message.Reply (Message.Accepted { stat = Message.Success; _ }) -> ()
      | Message.Reply (Message.Accepted { stat; _ }) ->
          raise (Rpc_error (Call_failed stat)));
      (reply, dec)
    end
  in
  let started = t.now () in
  (* Retransmissions reuse [xid]: together with the server's duplicate-
     request cache this gives at-most-once execution — a retry of a call
     whose reply was lost gets the cached reply, not a second execution. *)
  let rec attempt n =
    let rpc_sp =
      if Obs.Recorder.enabled t.obs then
        Obs.Recorder.span_begin t.obs ~layer:"rpc"
          (Printf.sprintf "call xid=%ld" xid)
      else Obs.Recorder.null_span
    in
    match
      Record.writev ~fragment_size:t.fragment_size t.transport request;
      await ()
    with
    | result ->
        Obs.Recorder.span_end t.obs rpc_sp;
        result
    | exception ((Transport.Timeout | Transport.Closed) as e) ->
        Obs.Recorder.span_end t.obs rpc_sp;
        handle_attempt_failure t ~started ~deadline_ns ~attempt:n e;
        attempt (n + 1)
    | exception e ->
        Obs.Recorder.span_end t.obs rpc_sp;
        raise e
  in
  let reply, dec = attempt 0 in
  let results_start = Xdr.Decode.pos dec in
  let result =
    try
      let r = decode_results dec in
      Xdr.Decode.finish dec;
      r
    with Xdr.Types.Error e ->
      raise (Rpc_error (Bad_reply (Xdr.Types.error_to_string e)))
  in
  let results_len = String.length reply - results_start in
  let s = t.stats in
  t.stats <-
    {
      s with
      calls = s.calls + 1;
      bytes_sent = s.bytes_sent + args_len;
      bytes_received = s.bytes_received + results_len;
      wire_bytes_sent =
        s.wire_bytes_sent
        + wire_length ~fragment_size:t.fragment_size
            (Xdr.Iovec.length request);
      wire_bytes_received =
        s.wire_bytes_received
        + wire_length ~fragment_size:Record.default_fragment_size
            (String.length reply);
    };
  Obs.Recorder.span_end t.obs shim_sp;
  result
  with e ->
    Obs.Recorder.span_end t.obs shim_sp;
    raise e

let call_void ?deadline_ns t ~proc encode_args =
  call ?deadline_ns t ~proc encode_args Xdr.Decode.void

(* RFC 5531 §8 "batching": send the call and do not wait for (or expect) a
   reply. The record sits in the transport's send path until a subsequent
   synchronous call flushes the connection, so N one-way calls followed by
   one blocking call cost a single round trip. *)
let call_oneway t ~proc encode_args =
  let xid = alloc_xid t in
  let shim_sp =
    if Obs.Recorder.enabled t.obs then
      Obs.Recorder.span_begin t.obs ~layer:"shim" (t.obs_proc_name proc)
    else Obs.Recorder.null_span
  in
  try
  let request, args_len = encode_call t ~xid ~proc encode_args in
  let started = t.now () in
  (* Only a failed *send* is retried (there is no reply to lose); a send
     that fails mid-connection-loss is resent after reconnection, and the
     reconnect hook's recovery protocol replays anything that was sent
     but not yet executed. *)
  let rec attempt n =
    match Record.writev ~fragment_size:t.fragment_size t.transport request with
    | () -> ()
    | exception (Transport.Closed as e) ->
        handle_attempt_failure t ~started ~deadline_ns:None ~attempt:n e;
        attempt (n + 1)
  in
  attempt 0;
  let s = t.stats in
  t.stats <-
    {
      s with
      calls = s.calls + 1;
      bytes_sent = s.bytes_sent + args_len;
      wire_bytes_sent =
        s.wire_bytes_sent
        + wire_length ~fragment_size:t.fragment_size
            (Xdr.Iovec.length request);
    };
  Obs.Recorder.span_end t.obs shim_sp
  with e ->
    Obs.Recorder.span_end t.obs shim_sp;
    raise e

let stats t = t.stats
let reset_stats t = t.stats <- empty_stats
let close t = t.transport.Transport.close ()
