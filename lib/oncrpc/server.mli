(** ONC RPC server: program registry and dispatch.

    A server hosts any number of (program, version) services; each service
    maps procedure numbers to handlers. Dispatch is a pure
    request-record → reply-record function, so the same server instance can
    be driven by a real TCP accept loop, an in-process {!Transport.loopback}
    transport, or the simulated-network channel used by the benchmarks.

    Error mapping follows RFC 5531: unknown program → [PROG_UNAVAIL],
    version out of range → [PROG_MISMATCH], unknown procedure →
    [PROC_UNAVAIL], argument decode failure → [GARBAGE_ARGS], handler
    exception → [SYSTEM_ERR]. Procedure 0 of every service defaults to the
    conventional NULL procedure when not registered explicitly. *)

type handler = Xdr.Decode.t -> Xdr.Encode.t -> unit
(** [handler args results] decodes arguments and encodes results. *)

type t

val create : ?name:string -> unit -> t

val register : t -> prog:int -> vers:int -> (int * handler) list -> unit
(** Register (or extend) a service. Later registrations of the same
    procedure replace earlier ones. *)

val set_oneway : t -> prog:int -> vers:int -> int list -> unit
(** Mark procedures of a service as one-way ("batched", RFC 5531 §8):
    their calls never produce a reply record, not even on handler failure
    (failures are logged and dropped). Protocol-level errors that resolve
    before the procedure — unknown program/version/procedure, denied
    credentials — still reply, because the server cannot know the caller
    meant a one-way procedure. *)

val is_oneway : t -> prog:int -> vers:int -> proc:int -> bool

val set_auth_check : t -> (Auth.t -> Message.auth_stat option) -> unit
(** Install a credential check; returning [Some stat] denies the call. *)

val set_dup_cache : ?capacity:int -> t -> unit
(** Enable the at-most-once duplicate-request cache. Every dispatched call
    records its reply under [(ident, xid, prog, vers, proc)] — the
    caller's connection/tenant identity (see {!dispatch_opt}) plus the RFC
    1831 duplicate key; a retransmission of the same call — the client
    reuses the xid, see {!Client.call} — gets the recorded reply back
    without re-executing the handler. This is what makes retrying
    non-idempotent procedures (allocation, launch, free) safe when a reply
    record is lost, and keying by identity means two tenants reusing the
    same xid space can never collide into each other's cached replies. For
    cached one-way calls the duplicate is swallowed entirely. The cache is
    a bounded FIFO ([capacity] entries, default 4096): a live
    retransmission always targets a recent xid, so evicting old entries is
    safe. *)

val dup_hits : t -> int
(** Number of calls answered from the duplicate-request cache. *)

val set_observer :
  t -> (prog:int -> vers:int -> proc:int -> arg_bytes:int -> unit) -> unit
(** Called once per successfully-parsed call before the handler runs. The
    Cricket benchmarks use this to charge simulated server CPU time. *)

val set_obs :
  ?proc_name:(prog:int -> vers:int -> proc:int -> string) -> t ->
  Obs.Recorder.t -> unit
(** Attach an observability recorder: each dispatched call gets a
    ["dispatch"]-layer span named ["<proc> xid=<xid>"] (the xid correlates
    it with the client's per-attempt span), and duplicate-cache replays
    bump the ["rpc.dup_hit"] counter. [proc_name] renders procedure
    numbers (default ["proc-<n>"]); Cricket installs its RPCL procedure
    table here. Costs one branch per dispatch while the recorder is
    disabled. *)

type protocol_error =
  | Unparseable_request of string
      (** the request record has no parseable RPC message (detail is the
          decoder error) *)
  | Unexpected_reply of { xid : int32 }
      (** the record parsed as a REPLY, but a server only accepts CALLs *)

exception Protocol_error of protocol_error
(** Raised by {!dispatch_opt} for requests too broken to produce an error
    reply, so callers can match on the cause instead of parsing a
    [Failure] string. *)

val dispatch_opt : ?ident:string -> t -> string -> string option
(** Map one request record to at most one reply record. [ident] (default
    [""]) is the caller's connection/tenant identity, used to scope the
    duplicate-request cache: calls from different identities never share
    cache entries even when their xid spaces overlap. [None] means the
    call resolved to a one-way procedure (see {!set_oneway}) and must not
    be answered. Never raises for malformed or unauthorized calls — those
    become protocol error replies. Raises {!Protocol_error} only if the
    request is too broken to produce a reply (no parseable xid, or a REPLY
    where a CALL belongs). *)

val dispatch : ?ident:string -> t -> string -> string
(** [dispatch t r] is [dispatch_opt t r] with [None] flattened to [""].
    The empty string is unambiguous — a real reply record is ≥ 12 bytes —
    and every transport adapter skips it rather than framing it. *)

val dispatch_preparsed :
  ?ident:string ->
  t ->
  xid:int32 ->
  prog:int ->
  vers:int ->
  proc:int ->
  body_off:int ->
  string ->
  string option
(** Fast path for device-parsed calls (see [Tcpstack.Rpcdev]): the caller
    supplies the already-parsed header fields and the byte offset of the
    procedure arguments within [request], and the server skips the
    software header decode entirely. Semantics — duplicate-request cache,
    one-way suppression, observer, obs span, error replies — and reply
    bytes are identical to {!dispatch_opt} on the same record. When an
    auth hook is installed ({!set_auth_check}) this falls back to the full
    software path, because the device does not parse credentials. *)

val serve_transport : ?ident:string -> t -> Transport.t -> unit
(** Read records and reply until the peer closes. Exceptions other than a
    clean close are logged and terminate the loop. [ident] defaults to a
    fresh per-connection identity ([conn-<n>]), so concurrent connections
    keep separate at-most-once cache entries. *)

(** {1 TCP serving (real sockets)} *)

type tcp_server

val serve_tcp : t -> ?backlog:int -> port:int -> unit -> tcp_server
(** Bind [127.0.0.1:port] (port 0 picks a free port), start an accept loop
    in a background thread, and serve each connection in its own thread. *)

val tcp_port : tcp_server -> int
val shutdown_tcp : tcp_server -> unit
