(** RFC 5531 §11 record marking.

    On stream transports every RPC message is sent as a {e record} composed
    of one or more {e fragments}. Each fragment is preceded by a 4-byte
    big-endian header whose most significant bit marks the last fragment of
    the record and whose remaining 31 bits give the fragment length.

    Multi-fragment support is load-bearing here: Cricket transfers GPU
    memory inside RPC arguments, so records routinely exceed any reasonable
    single-fragment limit. (The pre-existing Rust [onc_rpc] crate lacked
    exactly this, which is why the paper built RPC-Lib.)

    The tx path is scatter-gather: {!writev} frames an {!Xdr.Iovec.t}
    message by interleaving header slices with payload {e views}, so bulk
    payloads reach the transport without ever being blitted at this layer.
    The rx path reassembles into a single exactly-sized buffer, staging
    multi-fragment records through {!Pool} buffers. *)

val default_fragment_size : int
(** Fragment payload size used when none is given (1 MiB). *)

val max_fragment_size : int
(** Protocol maximum for one fragment: [2^31 - 1] bytes. *)

val writev : ?fragment_size:int -> Transport.t -> Xdr.Iovec.t -> unit
(** [writev t iov] sends the message described by [iov] as a record,
    splitting it into fragments of at most [fragment_size] bytes. Wire
    bytes are identical to [write t (Xdr.Iovec.concat iov)], but no payload
    byte is copied above the transport. An empty message is sent as a
    single empty last fragment. Raises [Invalid_argument] if
    [fragment_size] is not in [1 .. max_fragment_size]. *)

val write : ?fragment_size:int -> Transport.t -> string -> unit
(** [write t msg] is [writev t (Xdr.Iovec.of_string msg)]. *)

val wirev : ?fragment_size:int -> Xdr.Iovec.t -> Xdr.Iovec.t
(** The wire image {!writev} would send, as an iovec sharing the payload's
    storage (headers are the only fresh allocations). *)

exception Oversized of { claimed : int; limit : int }
(** A fragment header claimed a size that would take the record past
    [max_record_size]. Raised from the header alone, {e before} any buffer
    for the claimed bytes is allocated, so an adversarial length field
    cannot reserve unbounded memory. *)

val read : ?max_record_size:int -> ?pool:Pool.t -> Transport.t -> string
(** [read t] reassembles the next record into a single exactly-sized
    buffer. Single-fragment records are received directly into their final
    buffer; multi-fragment records stage fragments in [pool] buffers
    (default {!Pool.default}) and are assembled with one blit. Raises
    {!Transport.Closed} on end of stream mid-record (or before any
    fragment), and {!Oversized} if a header-claimed size would exceed
    [max_record_size] (default 1 GiB). *)

val read_opt :
  ?max_record_size:int -> ?pool:Pool.t -> Transport.t -> string option
(** Like {!read} but returns [None] when the stream ends cleanly before the
    first header byte — the normal way a peer hangs up between records. *)

(** {1 Pure helpers (unit-testable without transports)} *)

val encode_header : last:bool -> int -> string
(** 4-byte fragment header. *)

val decode_header : string -> bool * int
(** [decode_header s] is [(last, length)]; [s] must be 4 bytes. *)

val decode_header_bytes : bytes -> bool * int
(** Like {!decode_header} over the first 4 bytes of a reusable staging
    buffer — the allocation-free path used with
    [Transport.hdr_scratch]. *)

val to_wire : ?fragment_size:int -> string -> string
(** The exact bytes {!write} would put on the wire, built contiguously.
    This is the pre-vectorisation (copying) framing path, kept as the
    reference implementation: property tests assert {!writev} emits
    byte-identical output, and the datapath benchmarks measure the two
    against each other. *)
