(** Thread-safe ONC RPC client with concurrent outstanding calls.

    The plain {!Client} is synchronous — one call at a time, like RPC-Lib.
    libtirpc additionally supports several threads sharing one connection
    with interleaved replies matched by transaction id; this module
    provides that: senders serialize on a lock, a dedicated receiver thread
    demultiplexes replies to per-call mailboxes, and calls from any number
    of threads proceed concurrently.

    Used by the tests to demonstrate that reply matching by xid is what
    makes connection sharing sound (replies may arrive in any order). *)

type t

val create : transport:Transport.t -> prog:int -> vers:int -> unit -> t
(** Spawns the receiver thread. *)

val call :
  t -> proc:int -> (Xdr.Encode.t -> unit) -> (Xdr.Decode.t -> 'a) -> 'a
(** Semantics of {!Client.call}; safe from any thread. Raises
    {!Client.Rpc_error} on protocol failures and {!Transport.Closed} if the
    connection dies while the call is outstanding. Equivalent to
    [await (call_pipelined t ~proc encode decode)]. *)

type 'a promise
(** An in-flight pipelined call. *)

val call_pipelined :
  t ->
  proc:int ->
  (Xdr.Encode.t -> unit) ->
  (Xdr.Decode.t -> 'a) ->
  'a promise
(** Send the call and return immediately without waiting for the reply.
    Any number of calls may be in flight on the one transport; the
    receiver thread matches replies to promises by xid, so replies may
    arrive in any order. Raises {!Transport.Closed} if the connection is
    already down (the send itself failed). *)

val await : 'a promise -> 'a
(** Block until the promise's reply arrives and decode it. Raises
    {!Client.Rpc_error} on protocol failures and {!Transport.Closed} if
    the connection dies while the call is outstanding. Idempotent: a
    second [await] returns (or raises) the same outcome. *)

val is_ready : 'a promise -> bool
(** [true] once {!await} would return without blocking. *)

val outstanding : t -> int
(** Calls currently awaiting replies. *)

val close : t -> unit
(** Close the transport and fail all outstanding calls with
    {!Transport.Closed}; joins the receiver thread. *)
