let default_fragment_size = 1 lsl 20
let max_fragment_size = 0x7fffffff
let last_fragment_bit = 0x80000000

let encode_header ~last len =
  if len < 0 || len > max_fragment_size then invalid_arg "Record.encode_header";
  let v = if last then len lor last_fragment_bit else len in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int v);
  Bytes.unsafe_to_string b

let decode_header_fields b0 b1 b2 b3 =
  let v =
    (Char.code b0 lsl 24) lor (Char.code b1 lsl 16) lor (Char.code b2 lsl 8)
    lor Char.code b3
  in
  (v land last_fragment_bit <> 0, v land max_fragment_size)

let decode_header s =
  if String.length s <> 4 then invalid_arg "Record.decode_header";
  decode_header_fields s.[0] s.[1] s.[2] s.[3]

let decode_header_bytes b =
  if Bytes.length b < 4 then invalid_arg "Record.decode_header_bytes";
  decode_header_fields (Bytes.get b 0) (Bytes.get b 1) (Bytes.get b 2)
    (Bytes.get b 3)

let check_fragment_size n =
  if n < 1 || n > max_fragment_size then
    invalid_arg "Record: fragment_size out of range"

(* Iterate over the [(off, len, last)] fragments of a message. *)
let iter_fragments ~fragment_size msg f =
  let total = String.length msg in
  if total = 0 then f 0 0 true
  else begin
    let rec loop off =
      let len = min fragment_size (total - off) in
      let last = off + len >= total in
      f off len last;
      if not last then loop (off + len)
    in
    loop 0
  end

(* The wire image of an iovec message as an iovec: fragment headers
   interleaved with payload subviews. Nothing is blitted — each header is a
   fresh 4-byte string and every payload byte is reached through a view of
   the caller's original buffers. *)
let wirev ?(fragment_size = default_fragment_size) iov =
  check_fragment_size fragment_size;
  let total = Xdr.Iovec.length iov in
  if total = 0 then [ Xdr.Iovec.slice (encode_header ~last:true 0) ]
  else begin
    let rec fragments acc rest remaining =
      let len = min fragment_size remaining in
      let last = len = remaining in
      let payload, rest = Xdr.Iovec.split rest len in
      let acc =
        List.rev_append payload
          (Xdr.Iovec.slice (encode_header ~last len) :: acc)
      in
      if last then List.rev acc else fragments acc rest (remaining - len)
    in
    fragments [] iov total
  end

let writev ?fragment_size t iov = Transport.writev t (wirev ?fragment_size iov)

let write ?fragment_size t msg = writev ?fragment_size t (Xdr.Iovec.of_string msg)

let to_wire ?(fragment_size = default_fragment_size) msg =
  check_fragment_size fragment_size;
  let buf = Buffer.create (String.length msg + 16) in
  iter_fragments ~fragment_size msg (fun off len last ->
      Buffer.add_string buf (encode_header ~last len);
      Buffer.add_substring buf msg off len);
  Buffer.contents buf

let default_max_record_size = 1 lsl 30

exception Oversized of { claimed : int; limit : int }

let () =
  Printexc.register_printer (function
    | Oversized { claimed; limit } ->
        Some
          (Printf.sprintf
             "Oncrpc.Record.Oversized: header claims %d bytes (limit %d)"
             claimed limit)
    | _ -> None)

(* Reassembly allocates once per record in the common single-fragment case:
   the payload is received straight into its final buffer. Multi-fragment
   records stage each fragment in a pooled buffer and blit into an
   exactly-sized result once the last header has fixed the total — no
   Buffer regrowth, no trailing [Buffer.contents] copy. The 4-byte header
   staging buffer lives in the transport and is reused across records. *)
let read_body ~max_record_size ~pool t ~last ~len =
  let hdr = t.Transport.hdr_scratch in
  let check_claim sofar len =
    (* Size-check the header's *claim* before allocating anything: a hostile
       or corrupted header must not be able to reserve unbounded memory. *)
    if len > max_record_size || sofar + len > max_record_size then
      raise (Oversized { claimed = sofar + len; limit = max_record_size })
  in
  check_claim 0 len;
  if last then begin
    let b = Bytes.create len in
    Transport.recv_exact t b 0 len;
    Bytes.unsafe_to_string b
  end
  else begin
    (* chunks are (staging buffer, used length), newest first *)
    let chunks : (bytes * int) list ref = ref [] in
    let total = ref 0 in
    let release_all () =
      List.iter (fun (b, _) -> Pool.release pool b) !chunks
    in
    match
      let rec loop last len =
        let frag = Pool.acquire pool len in
        Transport.recv_exact t frag 0 len;
        chunks := (frag, len) :: !chunks;
        total := !total + len;
        if not last then begin
          Transport.recv_exact t hdr 0 4;
          let last, len = decode_header_bytes hdr in
          check_claim !total len;
          loop last len
        end
      in
      loop last len
    with
    | () ->
        let out = Bytes.create !total in
        let pos = ref !total in
        List.iter
          (fun (b, used) ->
            pos := !pos - used;
            Bytes.blit b 0 out !pos used)
          !chunks;
        release_all ();
        Bytes.unsafe_to_string out
    | exception e ->
        release_all ();
        raise e
  end

let read ?(max_record_size = default_max_record_size) ?(pool = Pool.default) t =
  let hdr = t.Transport.hdr_scratch in
  Transport.recv_exact t hdr 0 4;
  let last, len = decode_header_bytes hdr in
  read_body ~max_record_size ~pool t ~last ~len

let read_opt ?(max_record_size = default_max_record_size) ?(pool = Pool.default)
    t =
  let hdr = t.Transport.hdr_scratch in
  let n = t.Transport.recv hdr 0 4 in
  if n = 0 then None
  else begin
    if n < 4 then Transport.recv_exact t hdr n (4 - n);
    let last, len = decode_header_bytes hdr in
    Some (read_body ~max_record_size ~pool t ~last ~len)
  end
