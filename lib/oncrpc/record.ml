let default_fragment_size = 1 lsl 20
let max_fragment_size = 0x7fffffff
let last_fragment_bit = 0x80000000

let encode_header ~last len =
  if len < 0 || len > max_fragment_size then invalid_arg "Record.encode_header";
  let v = if last then len lor last_fragment_bit else len in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (v land 0xff));
  Bytes.unsafe_to_string b

let decode_header s =
  if String.length s <> 4 then invalid_arg "Record.decode_header";
  let v =
    (Char.code s.[0] lsl 24)
    lor (Char.code s.[1] lsl 16)
    lor (Char.code s.[2] lsl 8)
    lor Char.code s.[3]
  in
  (v land last_fragment_bit <> 0, v land max_fragment_size)

let check_fragment_size n =
  if n < 1 || n > max_fragment_size then
    invalid_arg "Record: fragment_size out of range"

(* Iterate over the [(off, len, last)] fragments of a message. *)
let iter_fragments ~fragment_size msg f =
  let total = String.length msg in
  if total = 0 then f 0 0 true
  else begin
    let rec loop off =
      let len = min fragment_size (total - off) in
      let last = off + len >= total in
      f off len last;
      if not last then loop (off + len)
    in
    loop 0
  end

let write ?(fragment_size = default_fragment_size) t msg =
  check_fragment_size fragment_size;
  iter_fragments ~fragment_size msg (fun off len last ->
      Transport.send_string t (encode_header ~last len);
      t.Transport.send (Bytes.unsafe_of_string msg) off len)

let to_wire ?(fragment_size = default_fragment_size) msg =
  check_fragment_size fragment_size;
  let buf = Buffer.create (String.length msg + 16) in
  iter_fragments ~fragment_size msg (fun off len last ->
      Buffer.add_string buf (encode_header ~last len);
      Buffer.add_substring buf msg off len);
  Buffer.contents buf

let default_max_record_size = 1 lsl 30

exception Oversized of { claimed : int; limit : int }

let () =
  Printexc.register_printer (function
    | Oversized { claimed; limit } ->
        Some
          (Printf.sprintf
             "Oncrpc.Record.Oversized: header claims %d bytes (limit %d)"
             claimed limit)
    | _ -> None)

let read_fragments ?(max_record_size = default_max_record_size) t ~first_header =
  let buf = Buffer.create 1024 in
  let hdr = Bytes.create 4 in
  let rec loop header =
    let last, len = decode_header header in
    (* Size-check the header's *claim* before allocating anything: a hostile
       or corrupted header must not be able to reserve unbounded memory. *)
    if len > max_record_size || Buffer.length buf + len > max_record_size then
      raise
        (Oversized { claimed = Buffer.length buf + len; limit = max_record_size });
    let frag = Bytes.create len in
    Transport.recv_exact t frag 0 len;
    Buffer.add_bytes buf frag;
    if last then Buffer.contents buf
    else begin
      Transport.recv_exact t hdr 0 4;
      loop (Bytes.to_string hdr)
    end
  in
  loop first_header

let read ?max_record_size t =
  let hdr = Bytes.create 4 in
  Transport.recv_exact t hdr 0 4;
  read_fragments ?max_record_size t ~first_header:(Bytes.to_string hdr)

let read_opt ?max_record_size t =
  let hdr = Bytes.create 4 in
  let n = t.Transport.recv hdr 0 4 in
  if n = 0 then None
  else begin
    if n < 4 then Transport.recv_exact t hdr n (4 - n);
    Some (read_fragments ?max_record_size t ~first_header:(Bytes.to_string hdr))
  end
