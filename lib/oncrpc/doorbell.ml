(* Doorbell-style batching of small wire records.

   The RPCAcc observation: in the small-call regime the per-submit cost
   (syscall, vmexit, per-packet work) dominates, so the guest should
   coalesce N call records into one device submit and ring the doorbell
   once. This module wraps an {!Transport.t}: writes are staged into a
   pending batch, and the batch goes to the underlying transport as ONE
   vectored send when the flush policy fires — on record count, on byte
   volume, on a virtual-time deadline armed when the batch opens, or
   unconditionally before a [recv] blocks (a reply cannot arrive for a
   call that was never submitted).

   The staged copy is deliberate and matches the channel's sk_buff
   contract: the encoder reuses its buffers as soon as a call returns, so
   slices must be materialized into the batch buffer at stage time.

   Retransmissions compose naturally: a retried call re-enters the current
   (fresh) batch with its original xid, so the server's at-most-once dup
   cache still recognizes it — pinned by the fault-plan tests. *)

type policy = {
  max_records : int;  (** flush when the batch holds this many records *)
  max_bytes : int;  (** flush when the batch holds this many bytes *)
  deadline_ns : int64 option;
      (** flush at [open + deadline] in virtual time (needs [schedule]) *)
}

let default_policy =
  { max_records = 32; max_bytes = 64 * 1024; deadline_ns = None }

type flush_cause = Records | Bytes | Deadline | Recv | Explicit

type stats = {
  flushes : int;
  flush_records : int;  (** count-triggered flushes *)
  flush_bytes : int;
  flush_deadline : int;
  flush_recv : int;
  batched : int;  (** total records staged *)
  max_batch : int;  (** largest batch flushed, in records *)
}

type t = {
  inner : Transport.t;
  policy : policy;
  schedule : (int64 -> (unit -> unit) -> unit) option;
      (* [schedule delay_ns k]: run [k] after [delay_ns] of virtual time *)
  buf : Buffer.t;
  mutable records : int;
  mutable generation : int;
      (* bumped on every flush so a pending deadline callback armed for an
         already-flushed batch recognizes itself as stale *)
  mutable stats : stats;
  mutable obs : Obs.Recorder.t;
  mutable transport : Transport.t;
}

let zero_stats =
  { flushes = 0; flush_records = 0; flush_bytes = 0; flush_deadline = 0;
    flush_recv = 0; batched = 0; max_batch = 0 }

let flush_counts t cause n =
  let s = t.stats in
  let s =
    match cause with
    | Records -> { s with flush_records = s.flush_records + 1 }
    | Bytes -> { s with flush_bytes = s.flush_bytes + 1 }
    | Deadline -> { s with flush_deadline = s.flush_deadline + 1 }
    | Recv -> { s with flush_recv = s.flush_recv + 1 }
    | Explicit -> s
  in
  t.stats <-
    { s with flushes = s.flushes + 1; max_batch = max s.max_batch n }

let flush_as t cause =
  if t.records > 0 then begin
    let batch = Buffer.contents t.buf in
    let n = t.records in
    Buffer.clear t.buf;
    t.records <- 0;
    t.generation <- t.generation + 1;
    flush_counts t cause n;
    Obs.Recorder.incr t.obs "rpc.doorbell_flush";
    Obs.Recorder.observe t.obs "rpc.batch_occupancy" (Int64.of_int n);
    (* one submit for the whole batch — the single doorbell ring *)
    Transport.writev t.inner (Xdr.Iovec.of_string batch)
  end

let arm_deadline t =
  match (t.policy.deadline_ns, t.schedule) with
  | Some d, Some schedule ->
      let gen = t.generation in
      schedule d (fun () ->
          if t.generation = gen && t.records > 0 then flush_as t Deadline)
  | _ -> ()

let stage t iov =
  if t.records = 0 then arm_deadline t;
  Xdr.Iovec.iter
    (fun s ->
      Buffer.add_substring t.buf s.Xdr.Iovec.base s.Xdr.Iovec.off
        s.Xdr.Iovec.len)
    iov;
  t.records <- t.records + 1;
  t.stats <- { t.stats with batched = t.stats.batched + 1 };
  if t.records >= t.policy.max_records then flush_as t Records
  else if Buffer.length t.buf >= t.policy.max_bytes then flush_as t Bytes

let wrap ?(policy = default_policy) ?schedule inner =
  if policy.max_records < 1 || policy.max_bytes < 1 then
    invalid_arg "Doorbell.wrap";
  let t =
    { inner; policy; schedule; buf = Buffer.create 4096; records = 0;
      generation = 0; stats = zero_stats; obs = Obs.Recorder.null;
      transport = inner }
  in
  let sendv iov = stage t iov in
  let send buf off len =
    stage t [ Xdr.Iovec.slice (Bytes.sub_string buf off len) ]
  in
  let recv buf off len =
    flush_as t Recv;
    t.inner.Transport.recv buf off len
  in
  let close () =
    flush_as t Explicit;
    t.inner.Transport.close ()
  in
  t.transport <- Transport.make ~sendv ~send ~recv ~close ();
  t

let transport t = t.transport
let flush t = flush_as t Explicit
let pending_records t = t.records
let pending_bytes t = Buffer.length t.buf
let stats t = t.stats
let set_obs t obs = t.obs <- obs
