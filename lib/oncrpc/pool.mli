(** Staging-buffer pool for the record datapath.

    Recycles the short-lived byte buffers the record layer needs for
    fragment staging and reassembly, so sustained RPC workloads do not pay
    a GC allocation per fragment. Buffers are binned by power-of-two
    capacity, bins are bounded, and oversized buffers bypass the pool.
    Thread-safe. *)

type t

type stats = { hits : int; misses : int; releases : int; drops : int }

val create : ?per_bin:int -> ?max_buffer_size:int -> unit -> t
(** [per_bin] bounds retained buffers per size class (default 8);
    [max_buffer_size] bounds pooled capacity (default 8 MiB — larger
    requests are plain allocations). When [max_buffer_size] is not a
    power of two, requests just under it still round up to the next pow2
    bin; the pool accepts those buffers back on release. *)

val acquire : t -> int -> bytes
(** [acquire t n] returns a buffer of capacity at least [n] (the next
    power of two); contents are arbitrary — callers overwrite the first
    [n] bytes. *)

val release : t -> bytes -> unit
(** Return a buffer for reuse. The caller must not touch it afterwards.
    Double-release of the same buffer, or release of a buffer the pool
    would never hand out, is detected and dropped rather than corrupting
    the free list. *)

val stats : t -> stats

val default : t
(** Process-wide pool used by {!Record} reads. *)
