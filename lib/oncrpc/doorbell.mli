(** Doorbell-style batching of small wire records.

    Wraps a {!Transport.t} so that writes stage into a pending batch and
    the underlying transport sees ONE vectored submit per batch — the
    doorbell ring. The flush policy fires on record count, byte volume, a
    virtual-time deadline armed when the batch opens, and always before a
    [recv] blocks (a reply cannot arrive for an unsubmitted call).

    A retransmitted call simply re-enters the current batch with its
    original xid, preserving the server's at-most-once semantics. *)

type policy = {
  max_records : int;  (** flush when the batch holds this many records *)
  max_bytes : int;  (** flush when the batch holds this many bytes *)
  deadline_ns : int64 option;
      (** flush this long (virtual ns) after the batch opens; requires
          [schedule] to be provided at {!wrap} time *)
}

val default_policy : policy
(** 32 records / 64 KiB, no deadline. *)

type stats = {
  flushes : int;
  flush_records : int;
  flush_bytes : int;
  flush_deadline : int;
  flush_recv : int;
  batched : int;  (** total records staged *)
  max_batch : int;  (** largest flushed batch, in records *)
}

type t

val wrap :
  ?policy:policy ->
  ?schedule:(int64 -> (unit -> unit) -> unit) ->
  Transport.t ->
  t
(** [schedule delay_ns k] must run [k] after [delay_ns] of virtual time
    (e.g. [Simnet.Engine.schedule_after]); without it the deadline clause
    is inert. *)

val transport : t -> Transport.t
(** The batching transport to hand to the RPC client. *)

val flush : t -> unit
(** Ring the doorbell now (no-op on an empty batch). *)

val pending_records : t -> int
val pending_bytes : t -> int
val stats : t -> stats

val set_obs : t -> Obs.Recorder.t -> unit
(** Counters: ["rpc.doorbell_flush"]; histogram ["rpc.batch_occupancy"]
    (records per flush). *)
