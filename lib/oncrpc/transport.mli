(** Byte-stream transports for ONC RPC.

    A transport is a reliable, ordered, bidirectional byte stream — the
    abstraction RFC 5531 record marking runs on top of. Four families are
    provided:

    - {!pipe}: an in-process duplex pair usable from two threads;
    - {!loopback}: a synchronous in-process client endpoint whose peer is a
      callback invoked with each complete write "flush" — used to connect an
      RPC client directly to an RPC server dispatch function in one thread
      (this is how the simulated-network benchmarks run);
    - {!of_fd} / TCP helpers: real sockets via [Unix];
    - the tcp_sim family ({!Unikernel.Tcpchannel}): a transport whose byte
      stream runs through the executable TCP stack —
      {!Tcpstack.Endpoint} segments and retransmits, {!Tcpstack.Netdev}
      applies negotiated virtio-net offloads — so RPC traffic pays the
      modelled network costs segment by segment. It implements [sendv],
      making the zero-copy gather path end-to-end executable.

    Writes of [n] bytes either succeed completely or raise. Reads return at
    least 1 byte unless the peer closed, in which case they return 0. *)

type t = private {
  send : bytes -> int -> int -> unit;  (** [send buf off len] writes all. *)
  recv : bytes -> int -> int -> int;
      (** [recv buf off len] reads 1..len bytes; 0 means end of stream. *)
  close : unit -> unit;
  sendv : (Xdr.Iovec.t -> unit) option;
      (** Optional gather write: all slices, in order, atomically with
          respect to concurrent senders. Used by {!writev}. *)
  hdr_scratch : bytes;
      (** 4-byte staging buffer for record-marking headers, owned by the
          transport's (single) reader and reused across records so header
          parsing allocates nothing. *)
}

val make :
  ?sendv:(Xdr.Iovec.t -> unit) ->
  send:(bytes -> int -> int -> unit) ->
  recv:(bytes -> int -> int -> int) ->
  close:(unit -> unit) ->
  unit ->
  t
(** Construct a transport. Without [sendv], {!writev} falls back to a
    per-slice loop over [send] — still a single-copy path, just without
    gather batching. *)

val writev : t -> Xdr.Iovec.t -> unit
(** Vectored write of all slices in order. The transport's internal copy
    (socket write / queue append) is the only copy this performs. *)

exception Closed
(** Raised when sending on a transport whose peer is gone. *)

exception Timeout
(** Raised by fault-aware transports (e.g. {!Unikernel.Simchannel} under a
    fault plan) when an expected reply never arrives within the modelled
    retransmission timeout. The connection is still usable: the caller may
    retransmit — {!Client} does so automatically under a retry policy. *)

val send_string : t -> string -> unit
(** Write a whole string. *)

val recv_exact : t -> bytes -> int -> int -> unit
(** Read exactly [len] bytes or raise {!Closed} on premature end of
    stream. *)

val pipe : unit -> t * t
(** Thread-safe in-memory duplex pair: bytes sent on one endpoint become
    readable on the other. Closing either endpoint makes further reads on
    the peer return the buffered data then 0. *)

val loopback : peer:(string -> string) -> t
(** [loopback ~peer] is a client-side transport for strictly
    request/response protocols in a single thread. Bytes written are
    buffered; the first [recv] after one or more sends passes the buffered
    request bytes to [peer] and serves its return value as the read data.
    [peer] receives whole request records because the RPC client always
    writes a complete record before reading. *)

val of_fd : Unix.file_descr -> t
(** Transport over a connected socket or pipe fd. [close] closes the fd. *)

type connect_error = Resolution_failed of { host : string; port : int }
(** [Resolution_failed] — the host name did not resolve to any address of
    the requested socket type. *)

exception Connect_error of connect_error
(** Typed connection-establishment failure, so callers can match on the
    cause instead of parsing a [Failure] string. *)

val tcp_connect : host:string -> port:int -> t
(** Connect a TCP socket (with TCP_NODELAY) and wrap it. Raises
    {!Connect_error} when [host] cannot be resolved and [Unix.Unix_error]
    when the connection itself fails. *)
