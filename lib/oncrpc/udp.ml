let max_datagram = 8960

exception Timeout

let () =
  Printexc.register_printer (function
    | Timeout -> Some "Oncrpc.Udp.Timeout"
    | _ -> None)

type stats = {
  sends : int;
  suppressed : int;
  duplicated : int;
  delayed : int;
  retries : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "sends=%d suppressed=%d duplicated=%d delayed=%d retries=%d" s.sends
    s.suppressed s.duplicated s.delayed s.retries

type client = {
  fd : Unix.file_descr;
  addr : Unix.sockaddr;
  prog : int;
  vers : int;
  timeout_s : float;
  retries : int;
  fault : Simnet.Fault.t option;
  engine : Simnet.Engine.t option;
  mutable next_xid : int32;
  mutable n_sends : int;
  mutable n_suppressed : int;
  mutable n_duplicated : int;
  mutable n_delayed : int;
  mutable n_retries : int;
}

let connect ?(timeout_s = 1.0) ?(retries = 3) ?fault ?engine ~host ~port ~prog
    ~vers () =
  let inet_addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  { fd; addr = Unix.ADDR_INET (inet_addr, port); prog; vers; timeout_s;
    retries; fault; engine; next_xid = 1l; n_sends = 0; n_suppressed = 0;
    n_duplicated = 0; n_delayed = 0; n_retries = 0 }

let stats t =
  { sends = t.n_sends; suppressed = t.n_suppressed;
    duplicated = t.n_duplicated; delayed = t.n_delayed;
    retries = t.n_retries }

let close_client t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let timeout_ns t = Int64.of_float (t.timeout_s *. 1e9)

(* When a client is bound to a simulation engine, a select(2) should never
   have to wait for real time proportional to the configured RPC timeout:
   loopback replies arrive in microseconds, and certain losses are detected
   without selecting at all. This bound is a liveness escape hatch for a
   wedged environment, not a tuned timeout. *)
let real_liveness_bound_s = 5.0

let call t ~proc encode_args decode_results =
  let xid = t.next_xid in
  t.next_xid <- Int32.add t.next_xid 1l;
  let enc = Xdr.Encode.create () in
  Message.encode enc (Message.call ~xid ~prog:t.prog ~vers:t.vers ~proc ());
  encode_args enc;
  let request = Xdr.Encode.to_bytes enc in
  if Bytes.length request > max_datagram then
    invalid_arg "Oncrpc.Udp.call: arguments exceed max_datagram";
  let reply_buf = Bytes.create 65536 in
  let sendto () =
    t.n_sends <- t.n_sends + 1;
    ignore (Unix.sendto t.fd request 0 (Bytes.length request) [] t.addr)
  in
  let delay d =
    t.n_delayed <- t.n_delayed + 1;
    match t.engine with
    | Some engine -> Simnet.Engine.advance engine d
    | None -> Unix.sleepf (Int64.to_float d /. 1e9)
  in
  (* Each (re)transmission consults the fault plan as one datagram. Dropped
     and corrupted datagrams never reach the server — a corrupt datagram
     fails the receiver's UDP checksum and is discarded, so both manifest
     as loss here, and the timeout/retransmit path takes over. Duplicates
     reach the server twice with the same xid, which is exactly what the
     duplicate-request cache and the client's stale-xid skipping exist
     for. Returns the number of datagrams actually put on the wire. *)
  let send () =
    match t.fault with
    | None ->
        sendto ();
        1
    | Some f -> (
        match Simnet.Fault.decide f with
        | Simnet.Fault.Pass ->
            sendto ();
            1
        | Simnet.Fault.Drop | Simnet.Fault.Corrupt ->
            t.n_suppressed <- t.n_suppressed + 1;
            0
        | Simnet.Fault.Duplicate ->
            t.n_duplicated <- t.n_duplicated + 1;
            sendto ();
            sendto ();
            2
        | Simnet.Fault.Delay d ->
            delay d;
            sendto ();
            1)
  in
  let decode_reply n =
    let dec = Xdr.Decode.of_bytes ~len:n reply_buf in
    match Message.decode dec with
    | exception Xdr.Types.Error _ -> None (* garbage datagram *)
    | msg when msg.Message.xid <> xid -> None (* stale reply *)
    | msg -> (
        match msg.Message.body with
        | Message.Reply (Message.Accepted { stat = Message.Success; _ }) ->
            let r = decode_results dec in
            Xdr.Decode.finish dec;
            Some r
        | Message.Reply (Message.Accepted { stat; _ }) ->
            raise (Client.Rpc_error (Client.Call_failed stat))
        | Message.Reply (Message.Denied d) ->
            raise (Client.Rpc_error (Client.Call_rejected d))
        | Message.Call _ ->
            raise (Client.Rpc_error (Client.Bad_reply "received CALL")))
  in
  (* send, then wait for our xid; resend on timeout. [deadline] is a real
     (wall-clock) instant; the virtual cost of a timeout is charged to the
     engine separately by [on_expired]. *)
  let rec attempt remaining =
    if remaining <= 0 then raise Timeout;
    let on_expired () =
      (match t.engine with
      | Some engine -> Simnet.Engine.advance engine (timeout_ns t)
      | None -> ());
      t.n_retries <- t.n_retries + 1;
      attempt (remaining - 1)
    in
    let wire_count = send () in
    match t.engine with
    | Some engine when wire_count = 0 ->
        (* Nothing reached the wire, so no reply can come: the timeout is
           certain. Charge it in virtual time without touching select, so
           the run is deterministic and takes no real time. *)
        Simnet.Engine.advance engine (timeout_ns t);
        t.n_retries <- t.n_retries + 1;
        attempt (remaining - 1)
    | engine_opt ->
        let budget_s =
          match engine_opt with
          | Some _ -> real_liveness_bound_s
          | None -> t.timeout_s
        in
        let deadline = Unix.gettimeofday () +. budget_s in
        let rec await () =
          let budget = deadline -. Unix.gettimeofday () in
          if budget <= 0.0 then on_expired ()
          else begin
            match Unix.select [ t.fd ] [] [] budget with
            | [], _, _ -> on_expired ()
            | _ -> (
                let n, _ = Unix.recvfrom t.fd reply_buf 0 65536 [] in
                match decode_reply n with
                | None -> await ()
                | Some r -> r)
          end
        in
        await ()
  in
  attempt (t.retries + 1)

type server = {
  sfd : Unix.file_descr;
  sport : int;
  mutable running : bool;
  mutable thread : Thread.t option;
}

let serve rpc_server ~port:requested =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, requested));
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let server = { sfd = fd; sport = bound; running = true; thread = None } in
  let loop () =
    let buf = Bytes.create 65536 in
    while server.running do
      match Unix.recvfrom fd buf 0 65536 [] with
      | n, peer -> (
          match Server.dispatch_opt rpc_server (Bytes.sub_string buf 0 n) with
          | None -> (* one-way call: no reply datagram *) ()
          | Some reply ->
              ignore
                (Unix.sendto fd
                   (Bytes.unsafe_of_string reply)
                   0 (String.length reply) [] peer)
          | exception _ -> (* unparseable datagram: drop, per the RFC *) ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          server.running <- false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  server.thread <- Some (Thread.create loop ());
  server

let port s = s.sport

let shutdown s =
  s.running <- false;
  (* closing the fd does not wake a thread blocked in recvfrom; poke the
     loop with a junk datagram so it observes [running = false] *)
  (try
     let poke = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
     ignore
       (Unix.sendto poke (Bytes.create 1) 0 1 []
          (Unix.ADDR_INET (Unix.inet_addr_loopback, s.sport)));
     Unix.close poke
   with Unix.Unix_error _ -> ());
  (match s.thread with
  | Some t -> ( try Thread.join t with _ -> ())
  | None -> ());
  try Unix.close s.sfd with Unix.Unix_error _ -> ()
