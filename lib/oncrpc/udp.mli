(** ONC RPC over UDP (RFC 5531 §10).

    Datagram transport: one message per datagram, no record marking. The
    classic transport for the portmapper and for small idempotent calls.
    Includes the standard client-side reliability shim — resend after a
    timeout, up to a retry limit — since UDP gives no delivery guarantee.

    Datagrams are limited to {!max_datagram}; Cricket's bulk transfers
    need TCP's fragmented records, which is exactly why RPC-Lib is
    TCP-based. Attempting a larger call raises [Invalid_argument]. *)

val max_datagram : int
(** 8960 bytes — a jumbo-frame-sized safe UDP payload. *)

(** {1 Client} *)

type client

exception Timeout
(** No reply after all retries. *)

val connect :
  ?timeout_s:float ->
  ?retries:int ->
  ?fault:Simnet.Fault.t ->
  ?engine:Simnet.Engine.t ->
  host:string ->
  port:int ->
  prog:int ->
  vers:int ->
  unit ->
  client
(** Defaults: 1 s timeout, 3 retries. [fault] injects at datagram
    granularity on the client's send path: each (re)transmission consults
    the plan once. [Drop] and [Corrupt] both manifest as loss (a corrupt
    datagram fails the receiver's UDP checksum), [Duplicate] delivers the
    request twice with the same xid, [Delay] pauses before sending.

    [engine] switches the retry machinery from wall-clock to virtual time:
    timeouts advance the engine's clock by [timeout_s] instead of being
    measured against [Unix.gettimeofday], and [Delay] faults advance it by
    the delay instead of sleeping. With a seeded fault plan this makes a
    faulty run deterministic — the engine's final time and the client's
    {!stats} depend only on the plan, never on scheduling — and losses
    cost no real time at all (a datagram the plan suppressed can have no
    reply, so the timeout is charged without waiting). Without [engine]
    the client keeps the classic wall-clock behaviour. *)

val call :
  client -> proc:int -> (Xdr.Encode.t -> unit) -> (Xdr.Decode.t -> 'a) -> 'a
(** One remote call. Raises {!Timeout}, {!Oncrpc.Client.Rpc_error}-style
    errors are raised as {!Client.Rpc_error}. Retransmissions after a
    timeout reuse the original xid, so a server-side duplicate-request
    cache ({!Server.set_dup_cache}) recognises them. Stale replies (wrong
    xid, e.g. the late reply to an earlier call's duplicate) are
    discarded, never matched to the current call. *)

val close_client : client -> unit

type stats = {
  sends : int;  (** datagrams actually handed to the socket *)
  suppressed : int;  (** datagrams the fault plan dropped or corrupted *)
  duplicated : int;  (** send events the plan turned into two datagrams *)
  delayed : int;  (** send events the plan delayed *)
  retries : int;  (** timeout-triggered retransmission attempts *)
}

val stats : client -> stats
(** Lifetime counters. Every field is a pure function of the fault plan's
    seeded decision sequence, so two runs of the same workload with
    identically seeded plans report identical stats. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Server} *)

type server

val serve : Server.t -> port:int -> server
(** Bind a UDP socket on [127.0.0.1:port] (0 picks a free port) and answer
    each datagram with one reply datagram from a background thread. *)

val port : server -> int
val shutdown : server -> unit
