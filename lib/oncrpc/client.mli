(** Synchronous ONC RPC client.

    One client instance is bound to a transport and a (program, version)
    pair — the shape of Cricket's RPC-Lib client. Calls serialize arguments
    with a user-supplied encoder, send the record (fragmenting as needed),
    block for the matching reply and decode results. Transaction ids are
    sequential; replies with a stale xid (e.g. from an abandoned earlier
    call) are skipped.

    Per-client counters record the number of calls and the exact argument /
    result payload bytes — these are the statistics the paper reports per
    application (e.g. matrixMul ≈ 100 041 calls, 1.95 MiB transferred). *)

type error =
  | Call_rejected of Message.rejected
  | Call_failed of Message.accept_stat  (** accepted, but not [Success] *)
  | Bad_reply of string  (** reply header or results failed to decode *)

exception Rpc_error of error

val error_to_string : error -> string

type stats = {
  calls : int;
  bytes_sent : int;  (** argument payload bytes (excl. RPC/record headers) *)
  bytes_received : int;  (** result payload bytes *)
  wire_bytes_sent : int;  (** full records incl. headers and fragmentation *)
  wire_bytes_received : int;
}

type t

val create :
  ?cred:Auth.t ->
  ?fragment_size:int ->
  ?first_xid:int32 ->
  transport:Transport.t ->
  prog:int ->
  vers:int ->
  unit ->
  t

val call :
  t -> proc:int -> (Xdr.Encode.t -> unit) -> (Xdr.Decode.t -> 'a) -> 'a
(** [call t ~proc encode_args decode_results] performs one RPC. Raises
    {!Rpc_error} on protocol-level failure and {!Transport.Closed} if the
    connection drops. *)

val call_void : t -> proc:int -> (Xdr.Encode.t -> unit) -> unit
(** A call whose result type is [void]. *)

val call_oneway : t -> proc:int -> (Xdr.Encode.t -> unit) -> unit
(** A batched call per RFC 5531 §8: the request record is written but no
    reply is awaited (the server must not send one — see
    {!Server.set_oneway}). One-way calls accumulate in the transport until
    the next synchronous {!call} flushes them, so a pipeline of N one-way
    calls plus one blocking call costs a single round trip. Counted in
    {!stats} like any other call. *)

val stats : t -> stats
val reset_stats : t -> unit
val close : t -> unit
