(** Synchronous ONC RPC client.

    One client instance is bound to a transport and a (program, version)
    pair — the shape of Cricket's RPC-Lib client. Calls serialize arguments
    with a user-supplied encoder, send the record (fragmenting as needed),
    block for the matching reply and decode results. Transaction ids are
    sequential; replies with a stale xid (e.g. from an abandoned earlier
    call) are skipped.

    {b Reliability.} With a {!retry_policy} installed, a call that fails
    with {!Transport.Timeout} or {!Transport.Closed} is retransmitted after
    an exponential backoff with deterministic jitter. Backoffs sleep
    through the [sleep] hook ({!set_clock}), so under the simulated network
    they advance virtual time and runs stay bit-reproducible.
    Retransmissions reuse the original xid: paired with
    {!Server.set_dup_cache} this yields {e at-most-once} execution, the
    property that makes retrying non-idempotent calls such as [cudaMalloc]
    safe. A lost connection is re-established through the {!set_reconnect}
    hook; {!set_on_reconnect} lets a session layer (e.g.
    [Cricket.Client]'s recovery protocol) restore server state before the
    failed call is retransmitted.

    Per-client counters record the number of calls and the exact argument /
    result payload bytes — these are the statistics the paper reports per
    application (e.g. matrixMul ≈ 100 041 calls, 1.95 MiB transferred). *)

type error =
  | Call_rejected of Message.rejected
  | Call_failed of Message.accept_stat  (** accepted, but not [Success] *)
  | Bad_reply of string  (** reply header or results failed to decode *)
  | Deadline_exceeded of { elapsed_ns : int64 }
      (** the call's virtual-time budget ran out before a reply arrived *)

exception Rpc_error of error

val error_to_string : error -> string

type retry_policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_backoff_ns : int;  (** backoff before the first retry *)
  max_backoff_ns : int;  (** exponential growth is clamped here *)
  jitter : float;  (** backoff scaled by [1 ± jitter], seeded PRNG *)
  deadline_ns : int option;  (** default per-call budget in virtual time *)
}

val default_retry : retry_policy
(** 8 attempts, 100 µs base, 50 ms cap, 10 % jitter, no deadline. *)

type stats = {
  calls : int;
  bytes_sent : int;  (** argument payload bytes (excl. RPC/record headers) *)
  bytes_received : int;  (** result payload bytes *)
  wire_bytes_sent : int;  (** full records incl. headers and fragmentation *)
  wire_bytes_received : int;
  retries : int;  (** retransmissions (not counted in [calls]) *)
  timeouts : int;  (** attempts that ended in {!Transport.Timeout} *)
  reconnects : int;  (** successful reconnections after a lost connection *)
}

type t

val create :
  ?cred:Auth.t ->
  ?fragment_size:int ->
  ?first_xid:int32 ->
  ?retry:retry_policy ->
  ?seed:int ->
  transport:Transport.t ->
  prog:int ->
  vers:int ->
  unit ->
  t
(** [retry] defaults to none (failures propagate immediately); [seed]
    drives the jitter PRNG. *)

(** {1 Reliability hooks} *)

val set_retry : t -> retry_policy option -> unit

val set_xid_origin : t -> int32 -> unit
(** Reposition the xid counter. Concurrent clients sharing one server must
    use disjoint xid spaces (real clients randomize their origin): the
    server's at-most-once duplicate-request cache is keyed by xid, so two
    clients counting from the same origin would alias each other's calls. *)

val alloc_xid : t -> int32
(** Reserve the next xid (atomic fetch-and-add): callers on any domain
    get distinct values. Every call allocates through this. *)

val set_clock : t -> now:(unit -> int64) -> sleep:(int64 -> unit) -> unit
(** Install the virtual clock used for deadlines and backoff sleeps. The
    defaults ([now] constant [0], [sleep] a no-op) keep retries functional
    but timeless. *)

val set_obs : ?proc_name:(int -> string) -> t -> Obs.Recorder.t -> unit
(** Attach an observability recorder. Every call opens a ["shim"]-layer
    span named by [proc_name] (default ["proc-<n>"]; Cricket installs its
    RPCL procedure table) covering encode, all transmission attempts,
    backoff and decode; each transmission attempt nests an ["rpc"]-layer
    span named ["call xid=<xid>"], xid-correlated with the server's
    dispatch span. Retry-path counters: ["rpc.timeout"], ["rpc.retry"],
    ["rpc.reconnect"]. Costs one branch per call while the recorder is
    disabled. *)

val set_reconnect : t -> (unit -> Transport.t) -> unit
(** [f ()] must return a fresh transport to the same server or raise
    {!Transport.Closed} if the server is still unreachable (the retry loop
    backs off and tries again). *)

val set_on_reconnect : t -> (unit -> unit) -> unit
(** Runs after every successful reconnection, before the failed call is
    retransmitted. May itself issue RPCs on this client — this is where
    [Cricket]'s checkpoint-restore + replay recovery runs. *)

val set_give_up : t -> (exn -> exn) -> unit
(** Maps the final exception once a retry policy is exhausted (attempts or
    deadline spent, or connection lost with no reconnect hook). Lets a
    session layer substitute its own sticky error. Default: identity. *)

val set_transport : t -> Transport.t -> unit
val transport : t -> Transport.t

(** {1 Calls} *)

val call :
  ?deadline_ns:int ->
  t -> proc:int -> (Xdr.Encode.t -> unit) -> (Xdr.Decode.t -> 'a) -> 'a
(** [call t ~proc encode_args decode_results] performs one RPC. Raises
    {!Rpc_error} on protocol-level failure and {!Transport.Closed} /
    {!Transport.Timeout} if the connection fails and no retry policy (or
    an exhausted one) is in place. [deadline_ns] overrides the policy's
    per-call budget. *)

val call_void : ?deadline_ns:int -> t -> proc:int -> (Xdr.Encode.t -> unit) -> unit
(** A call whose result type is [void]. *)

val call_oneway : t -> proc:int -> (Xdr.Encode.t -> unit) -> unit
(** A batched call per RFC 5531 §8: the request record is written but no
    reply is awaited (the server must not send one — see
    {!Server.set_oneway}). One-way calls accumulate in the transport until
    the next synchronous {!call} flushes them, so a pipeline of N one-way
    calls plus one blocking call costs a single round trip. Counted in
    {!stats} like any other call. Under a retry policy, a send that fails
    with {!Transport.Closed} is resent after reconnection. *)

val stats : t -> stats
val reset_stats : t -> unit
val close : t -> unit
