type slot = {
  slot_lock : Mutex.t;
  slot_cond : Condition.t;
  mutable reply : string option;  (* raw reply record *)
  mutable failed : exn option;
}

type t = {
  transport : Transport.t;
  prog : int;
  vers : int;
  send_lock : Mutex.t;
  table_lock : Mutex.t;
  pending : (int32, slot) Hashtbl.t;
  next_xid : int Atomic.t;  (* lock-free; truncated to int32 on use *)
  mutable alive : bool;
  mutable receiver : Thread.t option;
}

let fail_all t exn =
  Mutex.lock t.table_lock;
  t.alive <- false;
  Hashtbl.iter
    (fun _ slot ->
      Mutex.lock slot.slot_lock;
      slot.failed <- Some exn;
      Condition.signal slot.slot_cond;
      Mutex.unlock slot.slot_lock)
    t.pending;
  Hashtbl.reset t.pending;
  Mutex.unlock t.table_lock

let receiver_loop t =
  let rec loop () =
    match Record.read_opt t.transport with
    | None -> fail_all t Transport.Closed
    | Some reply -> (
        match Message.decode (Xdr.Decode.of_string reply) with
        | exception Xdr.Types.Error _ -> loop () (* unparseable: skip *)
        | msg -> (
            Mutex.lock t.table_lock;
            let slot = Hashtbl.find_opt t.pending msg.Message.xid in
            Hashtbl.remove t.pending msg.Message.xid;
            Mutex.unlock t.table_lock;
            (match slot with
            | Some slot ->
                Mutex.lock slot.slot_lock;
                slot.reply <- Some reply;
                Condition.signal slot.slot_cond;
                Mutex.unlock slot.slot_lock
            | None -> (* reply to an abandoned call *) ());
            loop ()))
  in
  try loop () with
  | Transport.Closed -> fail_all t Transport.Closed
  | e -> fail_all t e

let create ~transport ~prog ~vers () =
  let t =
    {
      transport;
      prog;
      vers;
      send_lock = Mutex.create ();
      table_lock = Mutex.create ();
      pending = Hashtbl.create 16;
      next_xid = Atomic.make 1;
      alive = true;
      receiver = None;
    }
  in
  t.receiver <- Some (Thread.create receiver_loop t);
  t

let outstanding t =
  Mutex.lock t.table_lock;
  let n = Hashtbl.length t.pending in
  Mutex.unlock t.table_lock;
  n

type 'a promise = { p_slot : slot; p_decode : Xdr.Decode.t -> 'a }

let call_pipelined t ~proc encode_args decode_results =
  let slot =
    { slot_lock = Mutex.create (); slot_cond = Condition.create ();
      reply = None; failed = None }
  in
  (* register, then send under the write lock *)
  Mutex.lock t.table_lock;
  if not t.alive then begin
    Mutex.unlock t.table_lock;
    raise Transport.Closed
  end;
  let xid = Int32.of_int (Atomic.fetch_and_add t.next_xid 1) in
  Hashtbl.add t.pending xid slot;
  Mutex.unlock t.table_lock;
  let enc = Xdr.Encode.create () in
  Message.encode enc
    (Message.call ~xid ~prog:t.prog ~vers:t.vers ~proc ());
  encode_args enc;
  (match
     Mutex.lock t.send_lock;
     Fun.protect
       ~finally:(fun () -> Mutex.unlock t.send_lock)
       (fun () -> Record.writev t.transport (Xdr.Encode.to_iovec enc))
   with
  | () -> ()
  | exception e ->
      Mutex.lock t.table_lock;
      Hashtbl.remove t.pending xid;
      Mutex.unlock t.table_lock;
      raise e);
  { p_slot = slot; p_decode = decode_results }

let await { p_slot = slot; p_decode = decode_results } =
  (* wait for the receiver to fill our slot *)
  Mutex.lock slot.slot_lock;
  while slot.reply = None && slot.failed = None do
    Condition.wait slot.slot_cond slot.slot_lock
  done;
  let outcome = (slot.reply, slot.failed) in
  Mutex.unlock slot.slot_lock;
  match outcome with
  | _, Some exn -> raise exn
  | Some reply, None -> (
      let dec = Xdr.Decode.of_string reply in
      let msg = Message.decode dec in
      match msg.Message.body with
      | Message.Reply (Message.Accepted { stat = Message.Success; _ }) ->
          let r = decode_results dec in
          Xdr.Decode.finish dec;
          r
      | Message.Reply (Message.Accepted { stat; _ }) ->
          raise (Client.Rpc_error (Client.Call_failed stat))
      | Message.Reply (Message.Denied d) ->
          raise (Client.Rpc_error (Client.Call_rejected d))
      | Message.Call _ ->
          raise (Client.Rpc_error (Client.Bad_reply "received a CALL")))
  | None, None -> assert false

let is_ready { p_slot = slot; _ } =
  Mutex.lock slot.slot_lock;
  let ready = slot.reply <> None || slot.failed <> None in
  Mutex.unlock slot.slot_lock;
  ready

let call t ~proc encode_args decode_results =
  await (call_pipelined t ~proc encode_args decode_results)

let close t =
  t.alive <- false;
  t.transport.Transport.close ();
  (match t.receiver with
  | Some thread -> ( try Thread.join thread with _ -> ())
  | None -> ());
  fail_all t Transport.Closed
